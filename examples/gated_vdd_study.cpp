/**
 * @file
 * Circuit-level design-space study of gated-Vdd (Section 3 /
 * Section 5.1 of the paper, expanding on [19]): threshold-voltage
 * scaling, gating-transistor width sizing, variant comparison, and
 * temperature sensitivity — all from the analytical substrate.
 */

#include <cstdio>
#include <initializer_list>
#include <utility>

#include "circuit/area_model.hh"
#include "circuit/gated_vdd.hh"
#include "circuit/sram_cell.hh"

using namespace drisim::circuit;

int
main()
{
    const Technology tech = Technology::scaled018();

    // --- 1. Why leakage forces this paper: Vt scaling ------------
    std::printf("1) SRAM cell leakage vs threshold voltage "
                "(0.18um, 1.0V, 110C)\n");
    std::printf("%8s  %22s  %14s\n", "Vt (V)",
                "active leak (nJ/cycle)", "rel. read time");
    for (double vt = 0.40; vt > 0.14; vt -= 0.05) {
        const SramCell cell(tech, vt);
        std::printf("%8.2f  %22.3e  %14.2f\n", vt,
                    cell.activeLeakagePerCycle(),
                    cell.relativeReadTime());
    }
    std::printf("-> each 50 mV of Vt costs ~2.4x leakage; "
                "scaling 0.4->0.2 V buys 2.2x speed for 35x "
                "leakage. Gated-Vdd breaks the trade-off.\n\n");

    // --- 2. Sizing the gating transistor --------------------------
    std::printf("2) NMOS dual-Vt gated-Vdd width sizing "
                "(per-cell width, charge pump +0.5V)\n");
    std::printf("%12s  %18s  %14s  %8s\n", "width (um)",
                "standby (nJ/cyc)", "rel. read time", "area");
    const SramCell cell(tech, tech.vtLow);
    for (double w : {0.4, 0.8, 1.1, 1.6, 2.4, 4.0}) {
        GatedVddConfig cfg;
        cfg.widthPerCellUm = w;
        const GatedVdd g(tech, cell, cfg);
        std::printf("%12.1f  %18.3e  %14.3f  %7.1f%%\n", w,
                    g.standbyLeakagePerCycle(),
                    g.relativeReadTime(),
                    100.0 * g.areaOverheadFraction());
    }
    std::printf("-> the paper's point at ~1.1 um/cell: 53e-9 nJ "
                "standby, 1.08 read, ~5%% area (Table 2).\n\n");

    // --- 3. Variants ----------------------------------------------
    std::printf("3) Gating variants at the Table 2 operating "
                "point\n");
    std::printf("%-22s  %16s  %9s  %11s  %7s\n", "variant",
                "standby (nJ/cyc)", "savings", "read time", "area");
    const std::pair<GatingKind, const char *> kinds[] = {
        {GatingKind::NmosDualVt, "NMOS dual-Vt + pump"},
        {GatingKind::NmosLowVt, "NMOS low-Vt"},
        {GatingKind::PmosDualVt, "PMOS dual-Vt"},
    };
    for (const auto &[kind, kname] : kinds) {
        GatedVddConfig cfg;
        cfg.kind = kind;
        const GatedVdd g(tech, cell, cfg);
        std::printf("%-22s  %16.3e  %8.1f%%  %11.3f  %6.1f%%\n",
                    kname, g.standbyLeakagePerCycle(),
                    100.0 * g.leakageSavingsFraction(),
                    g.relativeReadTime(),
                    100.0 * g.areaOverheadFraction());
    }
    std::printf("-> PMOS gating leaves the bitline-to-ground path "
                "through the access transistors unbroken and needs "
                "wider devices; the paper picks wide NMOS dual-Vt "
                "with a charge pump.\n\n");

    // --- 4. Temperature --------------------------------------------
    std::printf("4) Temperature sensitivity (NMOS dual-Vt)\n");
    std::printf("%8s  %20s  %18s\n", "T (C)",
                "active leak (nJ/cyc)", "standby (nJ/cyc)");
    for (double celsius : {30.0, 70.0, 110.0}) {
        const Technology t2 =
            tech.atTemperature(celsius + 273.15);
        const SramCell c2(t2, t2.vtLow);
        const GatedVdd g2(t2, c2, GatedVddConfig{});
        std::printf("%8.0f  %20.3e  %18.3e\n", celsius,
                    c2.activeLeakagePerCycle(),
                    g2.standbyLeakagePerCycle());
    }
    std::printf("-> Table 2 is quoted at the 110 C worst case; "
                "gating keeps its ~30x margin across the range.\n");
    return 0;
}
