/**
 * @file
 * Building your own workload: define a three-phase synthetic
 * program with the PhaseSpec DSL (big setup, tiny hot loop,
 * medium analysis pass), then watch a DRI i-cache adapt to it.
 */

#include <cstdio>

#include "energy/accounting.hh"
#include "harness/runner.hh"
#include "workload/program.hh"

using namespace drisim;

int
main()
{
    // --- 1. Describe the program ---------------------------------
    ProgramSpec spec;
    spec.name = "mytool";
    spec.seed = 2026;

    PhaseSpec setup;
    setup.name = "setup";
    setup.codeBytes = 40 * 1024;   // touches lots of code once
    setup.dynInstrs = 800 * 1000;
    setup.callIrregularity = 0.5;

    PhaseSpec hot;
    hot.name = "hot_loop";
    hot.codeBytes = 1536;          // a tight kernel
    hot.dynInstrs = 2500 * 1000;
    hot.meanInnerTrips = 32;
    hot.mix.fpFrac = 0.3;
    hot.dataBytes = 512 * 1024;

    PhaseSpec analyze;
    analyze.name = "analyze";
    analyze.codeBytes = 12 * 1024;
    analyze.dynInstrs = 700 * 1000;

    spec.phases = {setup, hot, analyze};

    BenchmarkInfo bench;
    bench.name = spec.name;
    bench.benchClass = 3;
    bench.spec = spec;

    // --- 2. Paired runs -------------------------------------------
    RunConfig cfg;
    cfg.maxInstrs = 4000 * 1000;

    const RunOutput conv = runConventional(bench, cfg);

    DriParams dri;
    dri.sizeBoundBytes = 2048;
    dri.missBound = 150;
    dri.senseInterval = 100000;
    const RunOutput adaptive = runDri(bench, cfg, dri);

    const ComparisonResult cmp = compareRuns(
        EnergyConstants::paper(), conv.meas, adaptive.meas);

    // --- 3. Report -------------------------------------------------
    std::printf("custom workload '%s': %zu phases, total footprint "
                "%.1f KB\n",
                spec.name.c_str(), spec.phases.size(),
                (40.0 + 1.5 + 12.0));
    std::printf("\n%-28s %14s %14s\n", "", "conventional", "DRI");
    std::printf("%-28s %14llu %14llu\n", "cycles",
                static_cast<unsigned long long>(conv.meas.cycles),
                static_cast<unsigned long long>(
                    adaptive.meas.cycles));
    std::printf("%-28s %13.3f%% %13.3f%%\n", "L1I miss rate",
                100.0 * conv.meas.missRate(),
                100.0 * adaptive.meas.missRate());
    std::printf("%-28s %14s %13.1f%%\n", "avg active size", "100%",
                100.0 * cmp.averageSizeFraction());
    std::printf("%-28s %14s %14llu\n", "resizes", "-",
                static_cast<unsigned long long>(adaptive.resizes));

    std::printf("\nslowdown %.2f%%, relative energy-delay %.3f "
                "(%.1f%% leakage energy-delay reduction)\n",
                cmp.slowdownPercent(), cmp.relativeEnergyDelay(),
                100.0 * (1.0 - cmp.relativeEnergyDelay()));

    std::printf("\nThe DRI cache held ~64K through 'setup', fell to "
                "the bound for 'hot_loop', and resized again for "
                "'analyze' — exactly the class 3 behaviour of "
                "Section 5.3.\n");
    return 0;
}
