/**
 * @file
 * Phase explorer: watches a DRI i-cache track a phased workload
 * (hydro2d-style init-then-loops by default) and draws the active
 * cache size over time as an ASCII strip chart — the behaviour
 * Section 5.3 describes for class 3 benchmarks.
 *
 *   ./phase_explorer [benchmark] [instructions]
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/dri_icache.hh"
#include "cpu/ooo_core.hh"
#include "mem/hierarchy.hh"
#include "workload/generator.hh"
#include "workload/spec_suite.hh"

using namespace drisim;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "hydro2d";
    const InstCount instrs =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 4000000;

    const BenchmarkInfo &bench = findBenchmark(name);
    const ProgramImage image = buildProgram(bench.spec);

    stats::StatGroup root("sim");
    Hierarchy hier(HierarchyParams{}, &root, false);
    DriParams dp;
    dp.sizeBoundBytes = 1024;
    dp.senseInterval = 100000;
    dp.missBound = 150;
    DriICache icache(dp, &hier.l2(), &root);
    hier.setL1I(&icache);
    OooCore core(OooParams{}, &icache, &hier.l1d(), &root);
    core.setDri(&icache);

    TraceGenerator gen(image);

    std::printf("%s: DRI active size per %llu-instruction interval "
                "(# = 4K active)\n\n",
                bench.name.c_str(),
                static_cast<unsigned long long>(dp.senseInterval));
    std::printf("%10s  %-16s  %s\n", "instrs", "phase", "active size");

    // Step the core one sense interval at a time and sample.
    InstCount done = 0;
    while (done < instrs) {
        core.run(gen, dp.senseInterval);
        done += dp.senseInterval;
        const std::uint64_t kb = icache.currentSizeBytes() / 1024;
        std::string bar(static_cast<size_t>(kb / 4), '#');
        const std::string phase =
            image.phases[gen.currentPhase()].name;
        std::printf("%10llu  %-16s  |%-16s| %3lluK\n",
                    static_cast<unsigned long long>(done),
                    phase.c_str(), bar.c_str(),
                    static_cast<unsigned long long>(kb));
    }

    std::printf("\nsummary: avg active fraction %.3f, "
                "%llu downsizes, %llu upsizes, %llu blocks lost to "
                "gating, miss rate %.3f%%\n",
                icache.averageActiveFraction(),
                static_cast<unsigned long long>(icache.downsizes()),
                static_cast<unsigned long long>(icache.upsizes()),
                static_cast<unsigned long long>(icache.blocksLost()),
                100.0 * icache.missRate());
    return 0;
}
