/**
 * @file
 * Phase explorer: watches a DRI i-cache track a phased workload
 * (hydro2d-style init-then-loops by default) and draws the active
 * cache size over time as an ASCII strip chart — the behaviour
 * Section 5.3 describes for class 3 benchmarks.
 *
 * Accepts a comma-separated benchmark list; each benchmark's chart
 * is computed as an executor job (so a list explores in parallel at
 * --jobs > 1) and printed in list order. With --l2 the hierarchy's
 * L2 resizes too (mem/hierarchy.hh) and each sample line carries a
 * second strip for the L2 active size.
 *
 *   ./phase_explorer [benchmark[,benchmark...]] [instructions]
 *                    [--jobs N] [--l2]
 */

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "core/dri_icache.hh"
#include "cpu/ooo_core.hh"
#include "harness/executor.hh"
#include "harness/runner.hh"
#include "mem/hierarchy.hh"
#include "workload/generator.hh"
#include "workload/spec_suite.hh"

using namespace drisim;

namespace
{

/** Run one benchmark and render its strip chart into a string. */
std::string
exploreOne(const BenchmarkInfo &bench, InstCount instrs, bool l2Dri)
{
    const ProgramImage &image = programImageFor(bench);

    stats::StatGroup root("sim");
    HierarchyParams hp;
    hp.l2Dri = l2Dri;
    hp.l2DriParams.senseInterval = 100000;
    hp.l2DriParams.missBound = 30;
    Hierarchy hier(hp, &root, false);
    DriParams dp;
    dp.sizeBoundBytes = 1024;
    dp.senseInterval = 100000;
    dp.missBound = 150;
    DriICache icache(dp, hier.l2Level(), &root);
    hier.setL1I(&icache);
    OooCore core(OooParams{}, &icache, &hier.l1d(), &root);
    core.setDri(&icache);
    core.addResizable(hier.driL2());

    TraceGenerator gen(image);

    std::ostringstream os;
    char line[200];
    std::snprintf(line, sizeof(line),
                  "%s: DRI active size per %llu-instruction interval "
                  "(# = 4K active%s)\n\n",
                  bench.name.c_str(),
                  static_cast<unsigned long long>(dp.senseInterval),
                  l2Dri ? "; L2 strip: @ = 64K active" : "");
    os << line;
    if (l2Dri)
        std::snprintf(line, sizeof(line), "%10s  %-16s  %-20s %s\n",
                      "instrs", "phase", "L1I active", "L2 active");
    else
        std::snprintf(line, sizeof(line), "%10s  %-16s  %s\n",
                      "instrs", "phase", "active size");
    os << line;

    // Step the core one sense interval at a time and sample.
    InstCount done = 0;
    while (done < instrs) {
        core.run(gen, dp.senseInterval);
        done += dp.senseInterval;
        const std::uint64_t kb = icache.currentSizeBytes() / 1024;
        std::string bar(static_cast<size_t>(kb / 4), '#');
        const std::string phase =
            image.phases[gen.currentPhase()].name;
        if (l2Dri) {
            const std::uint64_t l2kb =
                hier.driL2()->currentSizeBytes() / 1024;
            std::string l2bar(static_cast<size_t>(l2kb / 64), '@');
            std::snprintf(line, sizeof(line),
                          "%10llu  %-16s  |%-16s| %3lluK |%-16s| "
                          "%4lluK\n",
                          static_cast<unsigned long long>(done),
                          phase.c_str(), bar.c_str(),
                          static_cast<unsigned long long>(kb),
                          l2bar.c_str(),
                          static_cast<unsigned long long>(l2kb));
        } else {
            std::snprintf(line, sizeof(line),
                          "%10llu  %-16s  |%-16s| %3lluK\n",
                          static_cast<unsigned long long>(done),
                          phase.c_str(), bar.c_str(),
                          static_cast<unsigned long long>(kb));
        }
        os << line;
    }

    std::snprintf(
        line, sizeof(line),
        "\nsummary: avg active fraction %.3f, "
        "%llu downsizes, %llu upsizes, %llu blocks lost to "
        "gating, miss rate %.3f%%\n",
        icache.averageActiveFraction(),
        static_cast<unsigned long long>(icache.downsizes()),
        static_cast<unsigned long long>(icache.upsizes()),
        static_cast<unsigned long long>(icache.blocksLost()),
        100.0 * icache.missRate());
    os << line;
    if (l2Dri) {
        ResizableCache *l2 = hier.driL2();
        std::snprintf(
            line, sizeof(line),
            "L2: avg active fraction %.3f, %llu downsizes, "
            "%llu upsizes, %llu resize writebacks, miss rate "
            "%.3f%%\n",
            l2->averageActiveFraction(),
            static_cast<unsigned long long>(l2->downsizes()),
            static_cast<unsigned long long>(l2->upsizes()),
            static_cast<unsigned long long>(l2->resizeWritebacks()),
            100.0 * l2->missRate());
        os << line;
    }
    return os.str();
}

} // namespace

int
main(int argc, char **argv)
{
    std::string names = "hydro2d";
    InstCount instrs = 4000000;
    unsigned jobs = 0;
    bool l2Dri = false;
    std::vector<std::string> positional;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        std::string value;
        if (arg == "--l2") {
            l2Dri = true;
            continue;
        } else if (arg == "--jobs" || arg == "-j") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value after %s\n",
                             arg.c_str());
                return 2;
            }
            value = argv[++i];
        } else if (arg.rfind("--jobs=", 0) == 0) {
            value = arg.substr(7);
        } else {
            positional.push_back(arg);
            continue;
        }
        if (!parseJobsValue(value, jobs)) {
            std::fprintf(stderr, "bad jobs value '%s'\n",
                         value.c_str());
            return 2;
        }
    }
    if (!positional.empty())
        names = positional[0];
    if (positional.size() > 1)
        instrs = std::strtoull(positional[1].c_str(), nullptr, 10);

    std::vector<const BenchmarkInfo *> benches;
    std::stringstream ss(names);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            benches.push_back(&findBenchmark(item));
    if (benches.empty()) {
        std::fprintf(stderr, "no benchmarks given\n");
        return 2;
    }

    // Charts land in index-addressed slots and print in list order
    // whatever the completion interleaving.
    std::vector<std::string> charts(benches.size());
    Executor exec(jobs);
    exec.forEachIndex("phase_explorer", benches.size(),
                      [&](std::size_t i, const JobContext &) {
                          charts[i] = exploreOne(*benches[i], instrs,
                                                 l2Dri);
                      });

    for (std::size_t i = 0; i < charts.size(); ++i) {
        if (i > 0)
            std::printf("\n%s\n\n",
                        std::string(64, '=').c_str());
        std::fputs(charts[i].c_str(), stdout);
    }
    return 0;
}
