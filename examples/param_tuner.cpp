/**
 * @file
 * Parameter tuner: sweeps the (miss-bound, size-bound) grid for one
 * benchmark — the search the paper runs per benchmark in Section
 * 5.3 — and prints the full energy-delay landscape with the
 * constrained and unconstrained winners marked. The grid runs on the
 * harness executor; the landscape and winners are identical at any
 * --jobs value.
 *
 *   ./param_tuner [benchmark] [instructions] [--jobs N]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "harness/executor.hh"
#include "harness/runner.hh"
#include "harness/sweep.hh"
#include "harness/table.hh"
#include "util/str.hh"

using namespace drisim;

int
main(int argc, char **argv)
{
    std::string name = "ijpeg";
    InstCount instrs = 3000000;
    unsigned jobs = 0;
    std::vector<std::string> positional;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        std::string value;
        if (arg == "--jobs" || arg == "-j") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value after %s\n",
                             arg.c_str());
                return 2;
            }
            value = argv[++i];
        } else if (arg.rfind("--jobs=", 0) == 0) {
            value = arg.substr(7);
        } else {
            positional.push_back(arg);
            continue;
        }
        if (!parseJobsValue(value, jobs)) {
            std::fprintf(stderr, "bad jobs value '%s'\n",
                         value.c_str());
            return 2;
        }
    }
    if (!positional.empty())
        name = positional[0];
    if (positional.size() > 1)
        instrs = std::strtoull(positional[1].c_str(), nullptr, 10);

    const BenchmarkInfo &bench = findBenchmark(name);
    RunConfig cfg;
    cfg.maxInstrs = instrs;
    cfg.jobs = jobs;

    std::printf("detailed conventional baseline for %s "
                "(%u workers)...\n",
                bench.name.c_str(), resolveJobCount(cfg.jobs));
    const RunOutput conv = runConventional(bench, cfg);
    std::printf("  %llu cycles, miss rate %.3f%%\n\n",
                static_cast<unsigned long long>(conv.meas.cycles),
                100.0 * conv.meas.missRate());

    SearchSpace space; // default 7 size-bounds x 4 miss factors
    DriParams tmpl;
    tmpl.senseInterval = 100000;

    const EnergyConstants constants = EnergyConstants::paper();
    const SearchResult constrained = searchBestEnergyDelay(
        bench, cfg, tmpl, space, constants, 4.0, conv);

    // Rows are filled by slot index, the same aggregation scheme
    // the executor uses for the search itself.
    Table t({"size-bound", "miss-bound", "rel-ED", "avg size",
             "slowdown", "<=4%?"});
    t.reserveRows(constrained.evaluated.size());
    for (std::size_t i = 0; i < constrained.evaluated.size(); ++i) {
        const SearchCandidate &cand = constrained.evaluated[i];
        t.setRow(i, {bytesToString(cand.dri.sizeBoundBytes),
                     std::to_string(cand.dri.missBound),
                     fmtDouble(cand.cmp.relativeEnergyDelay(), 3),
                     fmtDouble(cand.cmp.averageSizeFraction(), 3),
                     fmtDouble(cand.cmp.slowdownPercent(), 2) + "%",
                     cand.feasible ? "yes" : "NO"});
    }
    std::printf("fast-model landscape (%zu configurations):\n",
                constrained.evaluated.size());
    t.print(std::cout);

    const auto &best = constrained.best;
    std::printf("\nbest constrained configuration "
                "(re-run on the detailed core):\n");
    std::printf("  size-bound %s, miss-bound %llu\n",
                bytesToString(best.dri.sizeBoundBytes).c_str(),
                static_cast<unsigned long long>(best.dri.missBound));
    std::printf("  relative energy-delay %.3f (%.1f%% reduction), "
                "slowdown %.2f%%, avg size %.3f\n",
                best.cmp.relativeEnergyDelay(),
                100.0 * (1 - best.cmp.relativeEnergyDelay()),
                best.cmp.slowdownPercent(),
                best.cmp.averageSizeFraction());

    const SearchResult unconstrained = searchBestEnergyDelay(
        bench, cfg, tmpl, space, constants, -1.0, conv);
    const auto &ubest = unconstrained.best;
    std::printf("\nbest unconstrained configuration:\n");
    std::printf("  size-bound %s, miss-bound %llu\n",
                bytesToString(ubest.dri.sizeBoundBytes).c_str(),
                static_cast<unsigned long long>(
                    ubest.dri.missBound));
    std::printf("  relative energy-delay %.3f, slowdown %.2f%%\n",
                ubest.cmp.relativeEnergyDelay(),
                ubest.cmp.slowdownPercent());
    return 0;
}
