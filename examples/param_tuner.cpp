/**
 * @file
 * Parameter tuner: sweeps the (miss-bound, size-bound) grid for one
 * benchmark — the search the paper runs per benchmark in Section
 * 5.3 — and prints the full energy-delay landscape with the
 * constrained and unconstrained winners marked.
 *
 *   ./param_tuner [benchmark] [instructions]
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "harness/runner.hh"
#include "harness/sweep.hh"
#include "harness/table.hh"
#include "util/str.hh"

using namespace drisim;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "ijpeg";
    const InstCount instrs =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 3000000;

    const BenchmarkInfo &bench = findBenchmark(name);
    RunConfig cfg;
    cfg.maxInstrs = instrs;

    std::printf("detailed conventional baseline for %s...\n",
                bench.name.c_str());
    const RunOutput conv = runConventional(bench, cfg);
    std::printf("  %llu cycles, miss rate %.3f%%\n\n",
                static_cast<unsigned long long>(conv.meas.cycles),
                100.0 * conv.meas.missRate());

    SearchSpace space; // default 7 size-bounds x 4 miss factors
    DriParams tmpl;
    tmpl.senseInterval = 100000;

    const EnergyConstants constants = EnergyConstants::paper();
    const SearchResult constrained = searchBestEnergyDelay(
        bench, cfg, tmpl, space, constants, 4.0, conv);

    Table t({"size-bound", "miss-bound", "rel-ED", "avg size",
             "slowdown", "<=4%?"});
    for (const auto &cand : constrained.evaluated) {
        t.addRow({bytesToString(cand.dri.sizeBoundBytes),
                  std::to_string(cand.dri.missBound),
                  fmtDouble(cand.cmp.relativeEnergyDelay(), 3),
                  fmtDouble(cand.cmp.averageSizeFraction(), 3),
                  fmtDouble(cand.cmp.slowdownPercent(), 2) + "%",
                  cand.feasible ? "yes" : "NO"});
    }
    std::printf("fast-model landscape (%zu configurations):\n",
                constrained.evaluated.size());
    t.print(std::cout);

    const auto &best = constrained.best;
    std::printf("\nbest constrained configuration "
                "(re-run on the detailed core):\n");
    std::printf("  size-bound %s, miss-bound %llu\n",
                bytesToString(best.dri.sizeBoundBytes).c_str(),
                static_cast<unsigned long long>(best.dri.missBound));
    std::printf("  relative energy-delay %.3f (%.1f%% reduction), "
                "slowdown %.2f%%, avg size %.3f\n",
                best.cmp.relativeEnergyDelay(),
                100.0 * (1 - best.cmp.relativeEnergyDelay()),
                best.cmp.slowdownPercent(),
                best.cmp.averageSizeFraction());

    const SearchResult unconstrained = searchBestEnergyDelay(
        bench, cfg, tmpl, space, constants, -1.0, conv);
    const auto &ubest = unconstrained.best;
    std::printf("\nbest unconstrained configuration:\n");
    std::printf("  size-bound %s, miss-bound %llu\n",
                bytesToString(ubest.dri.sizeBoundBytes).c_str(),
                static_cast<unsigned long long>(
                    ubest.dri.missBound));
    std::printf("  relative energy-delay %.3f, slowdown %.2f%%\n",
                ubest.cmp.relativeEnergyDelay(),
                ubest.cmp.slowdownPercent());
    return 0;
}
