/**
 * @file
 * Parameter tuner: sweeps the (miss-bound, size-bound) grid for one
 * benchmark — the search the paper runs per benchmark in Section
 * 5.3 — and prints the full energy-delay landscape with the
 * constrained and unconstrained winners marked. The grid runs on the
 * harness executor; the landscape and winners are identical at any
 * --jobs value.
 *
 * With --l2 the tuner switches to the multi-level scenario: the
 * (L1 size-bound x L2 size-bound) grid over a hierarchy whose L2
 * resizes too, scored by hierarchy energy-delay with per-level
 * energy rows (harness/multilevel.hh).
 *
 * With --cores N the tuner switches to the multiprogrammed CMP
 * scenario (system/cmp.hh): the (per-core L1 miss-bound x shared
 * L2 size-bound) grid, scored by *system* energy-delay. The
 * benchmark positional may be a comma-separated mix assigned to
 * the cores round-robin:
 *
 *   ./param_tuner compress,li --cores 2 --jobs 4
 *
 * With --policy the tuner switches to the leakage-policy
 * head-to-head (harness/policies.hh): the (policy x parameter)
 * grid — DRI vs Decay vs Drowsy vs StaticWays on a 64K 4-way L1I —
 * with per-policy winners and the state-preserving vs
 * state-destroying energy split.
 *
 *   ./param_tuner [benchmark[,benchmark...]] [instructions]
 *                 [--jobs N] [--l2 | --cores N | --policy]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "harness/executor.hh"
#include "harness/multilevel.hh"
#include "harness/policies.hh"
#include "harness/runner.hh"
#include "harness/sweep.hh"
#include "harness/table.hh"
#include "util/parse.hh"
#include "util/str.hh"

using namespace drisim;

namespace
{

/** The --l2 mode: multi-level grid, per-level energy rows. */
int
tuneMultiLevel(const BenchmarkInfo &bench, const RunConfig &cfg)
{
    std::printf("detailed conventional baseline for %s "
                "(%u workers)...\n",
                bench.name.c_str(), resolveJobCount(cfg.jobs));
    const RunOutput conv = runConventional(bench, cfg);
    std::printf("  %llu cycles, L1I miss rate %.3f%%, L2 miss rate "
                "%.3f%%\n\n",
                static_cast<unsigned long long>(conv.meas.cycles),
                100.0 * conv.meas.missRate(),
                100.0 * conv.l2MissRate);

    DriParams l1Tmpl;
    l1Tmpl.senseInterval = 100000;
    DriParams l2Tmpl = HierarchyParams::defaultL2DriParams();
    l2Tmpl.senseInterval = 100000;

    const MultiLevelConstants constants =
        MultiLevelConstants::paper();
    const MultiLevelSpace space;
    const MultiLevelSearchResult sr =
        searchMultiLevel(bench, cfg, l1Tmpl, l2Tmpl, space, constants,
                         4.0, conv);

    Table t({"L1-bound", "L1-mb", "L2-bound", "L2-mb", "rel-ED",
             "L1-size", "L2-size", "slowdown", "<=4%?"});
    for (const MultiLevelCandidate &cand : sr.evaluated) {
        t.addRow({bytesToString(cand.l1.sizeBoundBytes),
                  std::to_string(cand.l1.missBound),
                  bytesToString(cand.l2.sizeBoundBytes),
                  std::to_string(cand.l2.missBound),
                  fmtDouble(cand.cmp.relativeEnergyDelay(), 3),
                  fmtDouble(cand.cmp.l1AverageSizeFraction(), 3),
                  fmtDouble(cand.cmp.l2AverageSizeFraction(), 3),
                  fmtDouble(cand.cmp.slowdownPercent(), 2) + "%",
                  cand.feasible ? "yes" : "NO"});
    }
    std::printf("detailed landscape (%zu configurations):\n",
                sr.evaluated.size());
    t.print(std::cout);

    const MultiLevelCandidate &best = sr.best;
    std::printf("\nbest configuration (lowest feasible hierarchy "
                "energy-delay):\n");
    std::printf("  L1 bound %s / miss-bound %llu, L2 bound %s / "
                "miss-bound %llu\n",
                bytesToString(best.l1.sizeBoundBytes).c_str(),
                static_cast<unsigned long long>(best.l1.missBound),
                bytesToString(best.l2.sizeBoundBytes).c_str(),
                static_cast<unsigned long long>(best.l2.missBound));
    std::printf("  hierarchy energy-delay %.3f (%.1f%% reduction), "
                "slowdown %.2f%%\n\n",
                best.cmp.relativeEnergyDelay(),
                100.0 * (1 - best.cmp.relativeEnergyDelay()),
                best.cmp.slowdownPercent());

    std::printf("per-level energy (nJ; rows sum to the hierarchy "
                "total):\n");
    Table e({"level", "leakage", "dynamic", "total"});
    addHierarchyEnergyRows(e, best.cmp.dri);
    e.print(std::cout);
    return 0;
}

/** The --policy mode: policy x parameter head-to-head grid. */
int
tunePolicies(const BenchmarkInfo &bench, RunConfig cfg)
{
    // Selective-ways needs associativity to gate; give every
    // policy the same 64K 4-way geometry (head-to-head fairness).
    cfg.hier.l1i.assoc = 4;

    std::printf("detailed conventional baseline for %s "
                "(64K 4-way L1I, %u workers)...\n",
                bench.name.c_str(), resolveJobCount(cfg.jobs));
    const RunOutput conv = runConventional(bench, cfg);
    std::printf("  %llu cycles, L1I miss rate %.3f%%\n\n",
                static_cast<unsigned long long>(conv.meas.cycles),
                100.0 * conv.meas.missRate());

    PolicyConfig tmpl;
    tmpl.dri.senseInterval = 100000;
    const PolicySpace space;
    const PolicySearchResult sr = searchPolicies(
        bench, cfg, tmpl, space, PolicyEnergyConstants::paper(),
        4.0, conv);

    Table t({"policy", "params", "rel-ED", "active", "drowsy",
             "wakes", "slowdown", "<=4%?"});
    for (const PolicyCandidate &cand : sr.evaluated) {
        std::vector<std::string> cells =
            policyRowCells(bench.name, cand);
        cells.erase(cells.begin()); // drop the benchmark column
        cells.push_back(cand.feasible ? "yes" : "NO");
        t.addRow(cells);
    }
    std::printf("detailed landscape (%zu configurations):\n",
                sr.evaluated.size());
    t.print(std::cout);

    std::printf("\nper-policy winners (lowest feasible "
                "energy-delay):\n");
    for (const PolicyCandidate &best : sr.bestPerKind) {
        if (best.cmp.run.meas.cycles == 0)
            continue; // kind had no cells in this grid
        std::printf("  %-6s %-24s rel-ED %.3f (%.1f%% reduction), "
                    "slowdown %.2f%%%s\n",
                    policyKindName(best.config.kind),
                    best.config.paramSummary().c_str(),
                    best.cmp.relativeEnergyDelay(),
                    100.0 * (1 - best.cmp.relativeEnergyDelay()),
                    best.cmp.slowdownPercent(),
                    best.feasible ? "" : " (infeasible)");
        std::printf("        energy rows (nJ):");
        for (const auto &[label, nj] : best.cmp.policy.rows())
            std::printf(" %s=%.1f", label.c_str(), nj);
        std::printf("\n");
    }
    return 0;
}

/** The --cores mode: CMP grid, system energy-delay objective. */
int
tuneCmp(const std::vector<std::string> &benches, unsigned cores,
        const RunConfig &cfg)
{
    CmpConfig cmp;
    cmp.cores = cores;
    for (unsigned k = 0; k < cores; ++k) {
        CmpCoreConfig core;
        core.bench = benches[k % benches.size()];
        cmp.coreConfigs.push_back(std::move(core));
    }
    const std::vector<std::string> names =
        cmpBenchNames(cmp, benches[0]);
    const std::string mix = cmpMixName(names);

    std::printf("detailed conventional CMP baseline for %s "
                "(%u workers)...\n",
                mix.c_str(), resolveJobCount(cfg.jobs));
    const CmpRunOutput conv = runCmp(cfg, cmp, benches[0]);
    for (std::size_t k = 0; k < conv.cores.size(); ++k)
        std::printf("  core %zu %-9s %llu cycles, L1I miss rate "
                    "%.3f%%, L2 share %llu accesses\n",
                    k, conv.cores[k].bench.c_str(),
                    static_cast<unsigned long long>(
                        conv.cores[k].meas.cycles),
                    100.0 * conv.cores[k].meas.missRate(),
                    static_cast<unsigned long long>(
                        conv.cores[k].l2Accesses));
    std::printf("  system: %llu cycles, L2 miss rate %.3f%%, "
                "%llu contention events\n\n",
                static_cast<unsigned long long>(conv.systemCycles),
                100.0 * conv.l2MissRate,
                static_cast<unsigned long long>(
                    conv.l2ContentionEvents));

    DriParams l1Tmpl;
    l1Tmpl.senseInterval = 100000;
    DriParams l2Tmpl = HierarchyParams::defaultL2DriParams();
    l2Tmpl.senseInterval = 100000;

    const MultiLevelConstants constants =
        MultiLevelConstants::paper();
    const CmpSpace space;
    const CmpSearchResult sr =
        searchCmp(cfg, cmp, benches[0], l1Tmpl, l2Tmpl, space,
                  constants, 4.0, conv);
    if (sr.sharedFactorSweep)
        std::printf("note: per-core factor cross product exceeded "
                    "the cell cap; all cores swept one shared "
                    "miss-bound factor\n");

    Table t({"L1-mb", "L2-bound", "L2-mb", "rel-ED", "L1-sizes",
             "L2-size", "slowdown", "<=4%?"});
    for (const CmpCandidate &cand : sr.evaluated) {
        std::vector<std::string> cells = cmpRowCells(mix, cand);
        cells.erase(cells.begin()); // drop the mix column
        cells.push_back(cand.feasible ? "yes" : "NO");
        t.addRow(cells);
    }
    std::printf("detailed CMP landscape (%zu configurations):\n",
                sr.evaluated.size());
    t.print(std::cout);

    const CmpCandidate &best = sr.best;
    std::printf("\nbest configuration (lowest feasible system "
                "energy-delay):\n  L1 miss-bounds");
    for (const DriParams &p : best.l1)
        std::printf(" %llu",
                    static_cast<unsigned long long>(p.missBound));
    std::printf(", L2 bound %s / miss-bound %llu\n",
                bytesToString(best.l2.sizeBoundBytes).c_str(),
                static_cast<unsigned long long>(best.l2.missBound));
    std::printf("  system energy-delay %.3f (%.1f%% reduction), "
                "slowdown %.2f%%\n\n",
                best.cmp.relativeEnergyDelay(),
                100.0 * (1 - best.cmp.relativeEnergyDelay()),
                best.cmp.slowdownPercent());

    std::printf("per-level energy (nJ; rows sum to the system "
                "total):\n");
    Table e({"level", "leakage", "dynamic", "total"});
    addHierarchyEnergyRows(e, best.cmp.dri);
    e.print(std::cout);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string name = "ijpeg";
    InstCount instrs = 3000000;
    unsigned jobs = 0;
    bool multilevel = false;
    bool policies = false;
    unsigned cmpCores = 0;
    std::vector<std::string> positional;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        std::string value;
        if (arg == "--l2") {
            multilevel = true;
            continue;
        } else if (arg == "--policy") {
            policies = true;
            continue;
        } else if (arg == "--cores") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value after %s\n",
                             arg.c_str());
                return 2;
            }
            std::uint64_t v = 0;
            if (!parsePositiveValue(argv[++i], v, kMaxCmpCores)) {
                std::fprintf(stderr, "bad cores value '%s'\n",
                             argv[i]);
                return 2;
            }
            cmpCores = static_cast<unsigned>(v);
            continue;
        } else if (arg == "--jobs" || arg == "-j") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value after %s\n",
                             arg.c_str());
                return 2;
            }
            value = argv[++i];
        } else if (arg.rfind("--jobs=", 0) == 0) {
            value = arg.substr(7);
        } else {
            positional.push_back(arg);
            continue;
        }
        if (!parseJobsValue(value, jobs)) {
            std::fprintf(stderr, "bad jobs value '%s'\n",
                         value.c_str());
            return 2;
        }
    }
    if (!positional.empty())
        name = positional[0];
    if (positional.size() > 1)
        instrs = std::strtoull(positional[1].c_str(), nullptr, 10);

    RunConfig cfg;
    cfg.maxInstrs = instrs;
    cfg.jobs = jobs;

    if (cmpCores > 0) {
        // The positional may be a comma-separated mix; validate
        // every name up front.
        std::vector<std::string> benches = strSplit(name, ',');
        for (const std::string &b : benches)
            findBenchmark(b);
        return tuneCmp(benches, cmpCores, cfg);
    }

    const BenchmarkInfo &bench = findBenchmark(
        name.find(',') == std::string::npos
            ? name
            : strSplit(name, ',')[0]);

    if (multilevel)
        return tuneMultiLevel(bench, cfg);

    if (policies)
        return tunePolicies(bench, cfg);

    std::printf("detailed conventional baseline for %s "
                "(%u workers)...\n",
                bench.name.c_str(), resolveJobCount(cfg.jobs));
    const RunOutput conv = runConventional(bench, cfg);
    std::printf("  %llu cycles, miss rate %.3f%%\n\n",
                static_cast<unsigned long long>(conv.meas.cycles),
                100.0 * conv.meas.missRate());

    SearchSpace space; // default 7 size-bounds x 4 miss factors
    DriParams tmpl;
    tmpl.senseInterval = 100000;

    const EnergyConstants constants = EnergyConstants::paper();
    const SearchResult constrained = searchBestEnergyDelay(
        bench, cfg, tmpl, space, constants, 4.0, conv);

    // Rows are filled by slot index, the same aggregation scheme
    // the executor uses for the search itself.
    Table t({"size-bound", "miss-bound", "rel-ED", "avg size",
             "slowdown", "<=4%?"});
    t.reserveRows(constrained.evaluated.size());
    for (std::size_t i = 0; i < constrained.evaluated.size(); ++i) {
        const SearchCandidate &cand = constrained.evaluated[i];
        t.setRow(i, {bytesToString(cand.dri.sizeBoundBytes),
                     std::to_string(cand.dri.missBound),
                     fmtDouble(cand.cmp.relativeEnergyDelay(), 3),
                     fmtDouble(cand.cmp.averageSizeFraction(), 3),
                     fmtDouble(cand.cmp.slowdownPercent(), 2) + "%",
                     cand.feasible ? "yes" : "NO"});
    }
    std::printf("fast-model landscape (%zu configurations):\n",
                constrained.evaluated.size());
    t.print(std::cout);

    const auto &best = constrained.best;
    std::printf("\nbest constrained configuration "
                "(re-run on the detailed core):\n");
    std::printf("  size-bound %s, miss-bound %llu\n",
                bytesToString(best.dri.sizeBoundBytes).c_str(),
                static_cast<unsigned long long>(best.dri.missBound));
    std::printf("  relative energy-delay %.3f (%.1f%% reduction), "
                "slowdown %.2f%%, avg size %.3f\n",
                best.cmp.relativeEnergyDelay(),
                100.0 * (1 - best.cmp.relativeEnergyDelay()),
                best.cmp.slowdownPercent(),
                best.cmp.averageSizeFraction());

    const SearchResult unconstrained = searchBestEnergyDelay(
        bench, cfg, tmpl, space, constants, -1.0, conv);
    const auto &ubest = unconstrained.best;
    std::printf("\nbest unconstrained configuration:\n");
    std::printf("  size-bound %s, miss-bound %llu\n",
                bytesToString(ubest.dri.sizeBoundBytes).c_str(),
                static_cast<unsigned long long>(
                    ubest.dri.missBound));
    std::printf("  relative energy-delay %.3f, slowdown %.2f%%\n",
                ubest.cmp.relativeEnergyDelay(),
                ubest.cmp.slowdownPercent());
    return 0;
}
