/**
 * @file
 * Quickstart: simulate one benchmark with a conventional 64K L1
 * i-cache and with a DRI i-cache, and print the energy story.
 *
 *   ./quickstart [benchmark] [instructions] [key=value ...]
 *
 * Positionals keep the one-liner friendly; any further key=value
 * token goes through config/options (geometry, every DRI knob, the
 * l2.* multi-level keys — `optionsUsage()` lists them). With
 * `l2.dri=1` the DRI leg resizes the L2 as well and the report
 * switches to the per-level hierarchy accounting.
 *
 * With `policy=decay|drowsy|ways` the adaptive leg swaps the DRI
 * i-cache for the chosen leakage policy (policy/leakage_policy.hh)
 * and the report switches to the policy accounting with its
 * state-preserving/state-destroying leakage split:
 *
 *   ./quickstart compress policy=drowsy policy.drowsy.interval=50000
 *
 * With `cores=N` (N >= 2) the run becomes a multiprogrammed CMP
 * (system/cmp.hh): every core runs the positional benchmark unless
 * `coreK.bench=` says otherwise, the DRI leg gives each core a
 * private DRI L1I (opt out per core with `coreK.dri=0`, or swap
 * techniques per core with `coreK.policy=`), and `l2.dri=1`
 * additionally makes the shared L2 resizable. Example:
 *
 *   ./quickstart compress cores=2 core1.bench=li l2.dri=1
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "config/options.hh"
#include "energy/accounting.hh"
#include "harness/multilevel.hh"
#include "harness/policies.hh"
#include "harness/runner.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"

using namespace drisim;

namespace
{

/** The policy=decay|drowsy|ways mode: conventional vs policy L1I. */
int
runPolicyQuickstart(const Options &opts, const BenchmarkInfo &bench)
{
    // The conventional baseline always runs a fixed L2; the managed
    // leg keeps the user's l2.dri choice (runPolicy wires a
    // resizable L2 into the core's broadcast alongside the policy).
    RunConfig convCfg = opts.run;
    const bool l2Dri = convCfg.hier.l2Dri;
    convCfg.hier.l2Dri = false;
    RunConfig policyCfg = opts.run;
    PolicyConfig pc = opts.policyConfig();
    pc.dri = driParamsForLevel(convCfg.hier.l1i, pc.dri);

    std::printf("running %s (class %d) for %llu instructions...\n",
                bench.name.c_str(), bench.benchClass,
                static_cast<unsigned long long>(
                    convCfg.maxInstrs));
    const RunOutput conv = runConventional(bench, convCfg);
    const RunOutput managed = runPolicy(bench, policyCfg, pc);

    const PolicyComparison cmp = comparePolicyRuns(
        PolicyEnergyConstants::paper(), conv.meas,
        toPolicyMeasurement(managed));

    std::printf("\nconventional L1 i-cache:\n");
    std::printf("  cycles            %llu (IPC %.2f)\n",
                static_cast<unsigned long long>(conv.meas.cycles),
                conv.ipc);
    std::printf("  L1I miss rate     %.3f%%\n",
                100.0 * conv.meas.missRate());

    std::printf("\n%s policy (%s):\n", policyKindName(pc.kind),
                pc.paramSummary().c_str());
    std::printf("  cycles            %llu (slowdown %.2f%%)\n",
                static_cast<unsigned long long>(
                    managed.meas.cycles),
                cmp.slowdownPercent());
    std::printf("  L1I miss rate     %.3f%%\n",
                100.0 * managed.meas.missRate());
    std::printf("  avg full-power    %.1f%%, drowsy %.1f%%, gated "
                "%.1f%%\n",
                100.0 * cmp.averageActiveFraction(),
                100.0 * cmp.averageDrowsyFraction(),
                100.0 * std::max(0.0,
                                 1.0 - cmp.averageActiveFraction() -
                                     cmp.averageDrowsyFraction()));
    std::printf("  wake transitions  %llu (%llu stall cycles)\n",
                static_cast<unsigned long long>(
                    managed.wakeTransitions),
                static_cast<unsigned long long>(
                    managed.wakeStallCycles));
    if (l2Dri)
        std::printf("  L2 avg active     %.1f%% of %lluK "
                    "(%llu resizes; policy accounting below "
                    "covers the L1I)\n",
                    100.0 * managed.l2AvgActiveFraction,
                    static_cast<unsigned long long>(
                        managed.l2SizeBytes / 1024),
                    static_cast<unsigned long long>(
                        managed.l2Resizes));
    if (managed.policyBlocksLost > 0)
        std::printf("  blocks destroyed  %llu (state-destroying "
                    "gating)\n",
                    static_cast<unsigned long long>(
                        managed.policyBlocksLost));

    std::printf("\nenergy (nJ; state-preserving vs "
                "state-destroying split):\n");
    for (const auto &[label, nj] : cmp.policy.rows())
        std::printf("  %-11s %14.1f\n", label.c_str(), nj);
    std::printf("  relative energy-delay %.3f (%.1f%% reduction)\n",
                cmp.relativeEnergyDelay(),
                100.0 * (1.0 - cmp.relativeEnergyDelay()));
    return 0;
}

/** The cores=N mode: conventional vs DRI multiprogrammed CMP. */
int
runCmpQuickstart(const Options &opts)
{
    const bool l2Dri = opts.run.hier.l2Dri;

    // 1. Conventional CMP baseline: every L1I fixed, fixed L2.
    RunConfig convCfg = opts.run;
    convCfg.hier.l2Dri = false;
    const CmpConfig convCmp = opts.cmpConfig(false);
    const std::vector<std::string> names =
        cmpBenchNames(convCmp, opts.benchmark);
    std::printf("running %u-core mix", convCmp.cores);
    for (const std::string &n : names)
        std::printf(" %s", n.c_str());
    std::printf(" for %llu instructions per core...\n",
                static_cast<unsigned long long>(
                    convCfg.maxInstrs));
    const CmpRunOutput conv =
        runCmp(convCfg, convCmp, opts.benchmark);

    // 2. The DRI CMP: private DRI L1Is (per-core knobs from
    //    coreK.dri.*), shared L2 resizable iff l2.dri=1.
    RunConfig driCfg = opts.run;
    driCfg.hier.l2Dri = l2Dri;
    const CmpConfig driCmp = opts.cmpConfig(true);
    const CmpRunOutput adaptive =
        runCmp(driCfg, driCmp, opts.benchmark);

    // 3. Compare with the per-level CMP accounting.
    const CmpComparison cmp = compareCmp(
        MultiLevelConstants::paper(), toCmpMeasurement(conv),
        toCmpMeasurement(adaptive));

    std::printf("\nper core (conventional -> DRI):\n");
    for (std::size_t k = 0; k < adaptive.cores.size(); ++k) {
        const CmpCoreOutput &cc = conv.cores[k];
        const CmpCoreOutput &dc = adaptive.cores[k];
        std::printf("  core %zu %-9s IPC %.2f -> %.2f, L1I miss "
                    "%.3f%% -> %.3f%%, avg size %.1f%%, "
                    "%llu resizes",
                    k, dc.bench.c_str(), cc.ipc, dc.ipc,
                    100.0 * cc.meas.missRate(),
                    100.0 * dc.meas.missRate(),
                    100.0 * dc.meas.avgActiveFraction,
                    static_cast<unsigned long long>(dc.resizes));
        if (dc.wakeTransitions > 0)
            std::printf(", drowsy %.1f%%, %llu wakes",
                        100.0 * dc.l1DrowsyFraction,
                        static_cast<unsigned long long>(
                            dc.wakeTransitions));
        std::printf("\n");
    }
    std::printf("\nshared L2: miss rate %.3f%% -> %.3f%%, "
                "contention events %llu -> %llu",
                100.0 * conv.l2MissRate, 100.0 * adaptive.l2MissRate,
                static_cast<unsigned long long>(
                    conv.l2ContentionEvents),
                static_cast<unsigned long long>(
                    adaptive.l2ContentionEvents));
    if (l2Dri)
        std::printf(", avg active %.1f%% (%llu resizes)",
                    100.0 * adaptive.l2AvgActiveFraction,
                    static_cast<unsigned long long>(
                        adaptive.l2Resizes));
    std::printf("\nsystem time: %llu -> %llu cycles "
                "(slowdown %.2f%%)\n",
                static_cast<unsigned long long>(conv.systemCycles),
                static_cast<unsigned long long>(
                    adaptive.systemCycles),
                cmp.slowdownPercent());

    std::printf("\nsystem energy (per level, nJ; rows sum to the "
                "total):\n");
    for (const LevelEnergy &l : cmp.dri.levels)
        std::printf("  %-9s leakage %12.1f  dynamic %10.1f\n",
                    l.level.c_str(), l.leakageNJ, l.dynamicNJ);
    std::printf("  %-9s leakage %12.1f  dynamic %10.1f\n", "system",
                cmp.dri.totalLeakageNJ(),
                cmp.dri.totalDynamicNJ());
    std::printf("  relative system energy-delay %.3f "
                "(%.1f%% reduction)\n",
                cmp.relativeEnergyDelay(),
                100.0 * (1.0 - cmp.relativeEnergyDelay()));
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    // Leading positionals ([benchmark] [instructions]), then
    // key=value overrides on top of the quickstart defaults below.
    Options opts;
    opts.run.maxInstrs = 2000000;
    opts.dri.sizeBoundBytes = 2048;
    opts.dri.senseInterval = 100000;
    opts.dri.missBound = 200;
    int first_kv = 1;
    if (argc > 1 && std::string(argv[1]).find('=') ==
                        std::string::npos) {
        opts.benchmark = argv[1];
        first_kv = 2;
        if (argc > 2 && std::string(argv[2]).find('=') ==
                            std::string::npos) {
            opts.run.maxInstrs =
                std::strtoull(argv[2], nullptr, 10);
            first_kv = 3;
        }
    }
    std::vector<const char *> kv{argv[0]};
    for (int i = first_kv; i < argc; ++i)
        kv.push_back(argv[i]);
    std::string err;
    if (!parseOptions(static_cast<int>(kv.size()), kv.data(), opts,
                      err)) {
        std::fprintf(stderr, "%s\n%s\n", err.c_str(),
                     optionsUsage().c_str());
        return 2;
    }
    for (const std::string &key : opts.unknown)
        std::fprintf(stderr, "warning: unknown option '%s'\n",
                     key.c_str());

    // trace=/metrics= install the observability sinks; a flusher
    // writes them out whichever return path the run takes.
    if (!opts.tracePath.empty())
        obs::initTrace(opts.tracePath);
    if (!opts.metricsPath.empty())
        obs::initMetrics(opts.metricsPath,
                         opts.metricsInterval
                             ? opts.metricsInterval
                             : obs::kDefaultMetricsInterval);
    struct ObsFlush
    {
        ~ObsFlush()
        {
            std::string err;
            if (obs::TraceWriter *tw = obs::trace())
                if (!tw->write(err))
                    std::fprintf(stderr, "%s\n", err.c_str());
            if (obs::TimeSeriesRecorder *m = obs::metrics())
                if (!m->write(err))
                    std::fprintf(stderr, "%s\n", err.c_str());
        }
    } obsFlush;

    if (opts.cores > 1)
        return runCmpQuickstart(opts);

    const BenchmarkInfo &bench = findBenchmark(opts.benchmark);

    if (opts.policy.kind != PolicyKind::Dri)
        return runPolicyQuickstart(opts, bench);

    // 1. The Table 1 system with conventional caches throughout.
    RunConfig cfg = opts.run;
    const bool l2Dri = cfg.hier.l2Dri;
    cfg.hier.l2Dri = false;
    std::printf("running %s (class %d) for %llu instructions...\n",
                bench.name.c_str(), bench.benchClass,
                static_cast<unsigned long long>(cfg.maxInstrs));
    const RunOutput conv = runConventional(bench, cfg);

    // 2. The same system with a DRI i-cache (and, with l2.dri=1, a
    //    DRI L2): downsize whenever an interval sees fewer than
    //    missBound misses; never shrink below the size-bound.
    const DriParams &dri = opts.dri;
    RunConfig driCfg = cfg;
    driCfg.hier.l2Dri = l2Dri;
    const RunOutput adaptive = runDri(bench, driCfg, dri);

    // 3. Compare using the paper's energy model (Section 5.2).
    const ComparisonResult cmp = compareRuns(
        EnergyConstants::paper(), conv.meas, adaptive.meas);

    std::printf("\nconventional 64K i-cache:\n");
    std::printf("  cycles            %llu (IPC %.2f)\n",
                static_cast<unsigned long long>(conv.meas.cycles),
                conv.ipc);
    std::printf("  L1I miss rate     %.3f%%\n",
                100.0 * conv.meas.missRate());

    std::printf("\nDRI i-cache (miss-bound %llu / %llu-instr "
                "interval, size-bound %llu B):\n",
                static_cast<unsigned long long>(dri.missBound),
                static_cast<unsigned long long>(dri.senseInterval),
                static_cast<unsigned long long>(dri.sizeBoundBytes));
    std::printf("  cycles            %llu (slowdown %.2f%%)\n",
                static_cast<unsigned long long>(
                    adaptive.meas.cycles),
                cmp.slowdownPercent());
    std::printf("  L1I miss rate     %.3f%%\n",
                100.0 * adaptive.meas.missRate());
    std::printf("  avg active size   %.1f%% of 64K (%llu resizes)\n",
                100.0 * cmp.averageSizeFraction(),
                static_cast<unsigned long long>(adaptive.resizes));
    if (l2Dri)
        std::printf("  L2 avg active     %.1f%% of %lluK "
                    "(%llu resizes)\n",
                    100.0 * adaptive.l2AvgActiveFraction,
                    static_cast<unsigned long long>(
                        adaptive.l2SizeBytes / 1024),
                    static_cast<unsigned long long>(
                        adaptive.l2Resizes));

    std::printf("\nenergy (normalized to the conventional cache):\n");
    std::printf("  relative energy-delay   %.3f\n",
                cmp.relativeEnergyDelay());
    std::printf("    leakage component     %.3f\n",
                cmp.relativeEdLeakage());
    std::printf("    extra dynamic         %.3f\n",
                cmp.relativeEdDynamic());
    std::printf("  => leakage energy-delay reduced by %.1f%%\n",
                100.0 * (1.0 - cmp.relativeEnergyDelay()));

    if (l2Dri) {
        // Per-level hierarchy accounting (the multi-level study).
        const MultiLevelComparison ml = compareMultiLevel(
            MultiLevelConstants::paper(),
            toMultiLevelMeasurement(conv),
            toMultiLevelMeasurement(adaptive));
        std::printf("\nhierarchy energy (per level, nJ; rows sum to "
                    "the total):\n");
        for (const LevelEnergy &l : ml.dri.levels)
            std::printf("  %-9s leakage %12.1f  dynamic %10.1f\n",
                        l.level.c_str(), l.leakageNJ, l.dynamicNJ);
        std::printf("  %-9s leakage %12.1f  dynamic %10.1f\n",
                    "hierarchy", ml.dri.totalLeakageNJ(),
                    ml.dri.totalDynamicNJ());
        std::printf("  relative hierarchy energy-delay %.3f "
                    "(%.1f%% reduction)\n",
                    ml.relativeEnergyDelay(),
                    100.0 * (1.0 - ml.relativeEnergyDelay()));
    }
    return 0;
}
