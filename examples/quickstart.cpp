/**
 * @file
 * Quickstart: simulate one benchmark with a conventional 64K L1
 * i-cache and with a DRI i-cache, and print the energy story.
 *
 *   ./quickstart [benchmark] [instructions]
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "energy/accounting.hh"
#include "harness/runner.hh"

using namespace drisim;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "compress";
    const InstCount instrs =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 2000000;

    const BenchmarkInfo &bench = findBenchmark(name);

    // 1. The Table 1 system with a conventional i-cache.
    RunConfig cfg;
    cfg.maxInstrs = instrs;
    std::printf("running %s (class %d) for %llu instructions...\n",
                bench.name.c_str(), bench.benchClass,
                static_cast<unsigned long long>(instrs));
    const RunOutput conv = runConventional(bench, cfg);

    // 2. The same system with a DRI i-cache: downsize whenever an
    //    interval sees fewer than missBound misses; never shrink
    //    below 2 KB.
    DriParams dri;
    dri.sizeBoundBytes = 2048;
    dri.senseInterval = 100000;
    dri.missBound = 200;
    const RunOutput adaptive = runDri(bench, cfg, dri);

    // 3. Compare using the paper's energy model (Section 5.2).
    const ComparisonResult cmp = compareRuns(
        EnergyConstants::paper(), conv.meas, adaptive.meas);

    std::printf("\nconventional 64K i-cache:\n");
    std::printf("  cycles            %llu (IPC %.2f)\n",
                static_cast<unsigned long long>(conv.meas.cycles),
                conv.ipc);
    std::printf("  L1I miss rate     %.3f%%\n",
                100.0 * conv.meas.missRate());

    std::printf("\nDRI i-cache (miss-bound %llu / %llu-instr "
                "interval, size-bound %llu B):\n",
                static_cast<unsigned long long>(dri.missBound),
                static_cast<unsigned long long>(dri.senseInterval),
                static_cast<unsigned long long>(dri.sizeBoundBytes));
    std::printf("  cycles            %llu (slowdown %.2f%%)\n",
                static_cast<unsigned long long>(
                    adaptive.meas.cycles),
                cmp.slowdownPercent());
    std::printf("  L1I miss rate     %.3f%%\n",
                100.0 * adaptive.meas.missRate());
    std::printf("  avg active size   %.1f%% of 64K (%llu resizes)\n",
                100.0 * cmp.averageSizeFraction(),
                static_cast<unsigned long long>(adaptive.resizes));

    std::printf("\nenergy (normalized to the conventional cache):\n");
    std::printf("  relative energy-delay   %.3f\n",
                cmp.relativeEnergyDelay());
    std::printf("    leakage component     %.3f\n",
                cmp.relativeEdLeakage());
    std::printf("    extra dynamic         %.3f\n",
                cmp.relativeEdDynamic());
    std::printf("  => leakage energy-delay reduced by %.1f%%\n",
                100.0 * (1.0 - cmp.relativeEnergyDelay()));
    return 0;
}
