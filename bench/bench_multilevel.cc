/**
 * @file
 * Multi-level DRI study — the scenario the paper defers: gated-Vdd
 * resizing applied to the L2 as well as the L1 i-cache, evaluated
 * with per-level leakage/dynamic accounting and a hierarchy-total
 * figure of merit (after Bai et al., "Power-Performance Trade-Offs
 * in Nanometer-Scale Multi-Level Caches Considering Total Leakage";
 * see docs/REPRODUCTION.md, Multi-level study).
 *
 * For every benchmark the (L1 size-bound x L2 size-bound) grid is
 * searched under the paper's 4% slowdown constraint, every cell on
 * the detailed core — the fast model carries no d-cache traffic,
 * so L2 behaviour is wrong there (see harness/multilevel.hh) — and
 * the winner's energy is reported split by level; the per-level
 * rows sum to the printed hierarchy total by construction (locked
 * by tests).
 */

#include <iostream>

#include "bench_common.hh"
#include "harness/multilevel.hh"
#include "util/str.hh"

using namespace drisim;
using namespace drisim::bench;

int
main(int argc, char **argv)
{
    BenchContext ctx = defaultContext();
    std::string err;
    if (!parseBenchArgs(argc, argv, ctx, err,
                        /*acceptCores=*/false, /*acceptShort=*/false,
                        /*acceptShard=*/true)) {
        std::cerr << err << "\n";
        return 2;
    }
    if (ctx.listOnly)
        return listBenchmarks();

    printHeader("Multi-level DRI: per-level leakage accounting",
                "extension of Section 5 after Bai et al. "
                "(PAPERS.md)");
    std::cout << "grid: (L1 size-bound x L2 size-bound), <=4% "
                 "slowdown, hierarchy energy-delay objective\n\n";
    std::cout << "run length: " << ctx.cfg.maxInstrs
              << " instructions, sense interval "
              << ctx.driTemplate.senseInterval << ", "
              << workerBanner(ctx) << "\n";

    const MultiLevelConstants constants = MultiLevelConstants::paper();
    const MultiLevelSpace space;
    DriParams l2Template = HierarchyParams::defaultL2DriParams();
    l2Template.senseInterval = ctx.driTemplate.senseInterval;

    const std::vector<std::string> cols{
        "benchmark", "L1-bound", "L1-mb",   "L2-bound", "L2-mb",
        "rel-ED",    "L1-size",  "L2-size", "slowdown"};
    Table summary(cols);
    // JSON rows additionally carry the winner's canonical config
    // hash (harness/runner.hh runKeyDri over the multi-level run
    // config), joinable with the --result-cache sidecar.
    std::vector<std::string> jsonCols = cols;
    jsonCols.push_back("config_hash");
    SweepDriver drv(ctx, "bench_multilevel", "multilevel", jsonCols);

    struct PerBench
    {
        std::string name;
        MultiLevelCandidate best;
    };
    std::vector<PerBench> winners;

    double sum_ed = 0.0;
    double sum_l1_size = 0.0;
    double sum_l2_size = 0.0;
    const auto &suite = specSuite();
    for (std::size_t i = 0; i < suite.size(); ++i) {
        const auto &b = suite[i];
        if (!drv.shouldRun(i))
            continue;
        const RunOutput conv = runConventional(b, ctx.cfg);
        const MultiLevelSearchResult sr = searchMultiLevel(
            b, ctx.cfg, ctx.driTemplate, l2Template, space, constants,
            ctx.maxSlowdownPct, conv, &benchExecutor(ctx));
        std::vector<std::string> row =
            multiLevelRowCells(b.name, sr.best);
        summary.addRow(row);
        RunConfig ml = ctx.cfg;
        ml.hier.l2Dri = true;
        ml.hier.l2DriParams = sr.best.l2;
        row.push_back(runKeyDri(b, ml, sr.best.l1).hashHex());
        drv.unitDone(i, {std::move(row)});
        winners.push_back({b.name, sr.best});
        sum_ed += sr.best.cmp.relativeEnergyDelay();
        sum_l1_size += sr.best.cmp.l1AverageSizeFraction();
        sum_l2_size += sr.best.cmp.l2AverageSizeFraction();
        std::cerr << "  [multilevel] " << b.name << " done\n";
    }

    std::cout << "\n-- best configurations (<=4% slowdown) --\n";
    summary.print(std::cout);

    std::cout << "\n-- per-level energy of each winner (nJ; rows sum "
                 "to the hierarchy total) --\n";
    for (const PerBench &w : winners) {
        std::cout << "\n" << w.name << ":\n";
        Table t({"level", "leakage", "dynamic", "total"});
        addHierarchyEnergyRows(t, w.best.cmp.dri);
        t.print(std::cout);
    }

    // Means cover the units this process ran (all of them
    // unsharded; this shard's subset under --shard).
    const double n = static_cast<double>(
        winners.empty() ? 1 : winners.size());
    std::cout << "\n== headline ==\n";
    std::cout << "mean hierarchy energy-delay reduction: "
              << fmtReduction(sum_ed / n) << "\n";
    std::cout << "mean L1 active size: "
              << fmtDouble(sum_l1_size / n, 3)
              << ", mean L2 active size: "
              << fmtDouble(sum_l2_size / n, 3) << "\n";
    drv.finish();
    reportFastSim(ctx);
    return 0;
}
