/**
 * @file
 * Table 1 — "System configuration parameters": prints the simulated
 * system's actual configuration, read back from the live objects so
 * the table cannot drift from the implementation.
 */

#include <cstdio>
#include <iostream>
#include <sstream>

#include "bench_common.hh"
#include "cpu/ooo_core.hh"
#include "mem/hierarchy.hh"
#include "util/str.hh"

using namespace drisim;

namespace
{

std::string
cacheDesc(const CacheParams &p)
{
    std::ostringstream os;
    os << bytesToString(p.sizeBytes) << ", ";
    if (p.assoc == 1)
        os << "direct-mapped";
    else
        os << p.assoc << "-way (LRU)";
    os << ", " << p.hitLatency << " cycle latency";
    return os.str();
}

} // namespace

int
main(int argc, char **argv)
{
    // Table 1 runs no simulations, but accepts the common flags so
    // every bench binary has a uniform command line.
    bench::BenchContext ctx = bench::defaultContext();
    std::string err;
    if (!bench::parseBenchArgs(argc, argv, ctx, err)) {
        std::cerr << err << "\n";
        return 2;
    }
    if (ctx.listOnly)
        return bench::listBenchmarks();

    bench::printHeader("Table 1: system configuration parameters",
                       "Section 4, Table 1");

    const HierarchyParams h;
    const OooParams core;

    Table t({"parameter", "simulated value", "paper value"});
    t.addRow({"instruction issue & decode bandwidth",
              std::to_string(core.issueWidth) + " issues per cycle",
              "8 issues per cycle"});
    t.addRow({"L1 i-cache / L1 DRI i-cache", cacheDesc(h.l1i),
              "64K, direct-mapped, 1 cycle latency"});
    t.addRow({"L1 d-cache", cacheDesc(h.l1d),
              "64K, 2-way (LRU), 1 cycle latency"});
    t.addRow({"L2 cache",
              cacheDesc(h.l2) + " (unified)",
              "1M, 4-way, unified, 12 cycle latency"});
    t.addRow({"memory access latency",
              std::to_string(MainMemory::kBaseLatency) +
                  " cycles + " +
                  std::to_string(MainMemory::kPerChunk) +
                  " cycles per " +
                  std::to_string(MainMemory::kChunkBytes) + " bytes",
              "80 cycles + 4 cycles per 8 bytes"});
    t.addRow({"reorder buffer size", std::to_string(core.robSize),
              "128"});
    t.addRow({"LSQ size", std::to_string(core.lsqSize), "128"});
    t.addRow({"branch predictor", "2-level hybrid (bimodal + gshare "
                                  "+ chooser), BTB, RAS",
              "2-level hybrid"});
    t.print(std::cout);
    reportFastSim(ctx);
    return 0;
}
