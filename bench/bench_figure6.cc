/**
 * @file
 * Figure 6 — "Varying conventional cache parameters": the DRI
 * i-cache evaluated as (A) 64K 4-way, (B) 64K direct-mapped and
 * (C) 128K direct-mapped, each normalized against a conventional
 * i-cache of the same geometry. Miss-bound and size-bound come from
 * the 64K direct-mapped constrained base; the 128K cache uses one
 * extra resizing tag bit so its size-bound matches (Section 5.5).
 */

#include <iostream>

#include "bench_common.hh"

using namespace drisim;
using namespace drisim::bench;

namespace
{

struct GeometryCase
{
    const char *label;
    std::uint64_t sizeBytes;
    unsigned assoc;
};

} // namespace

int
main(int argc, char **argv)
{
    BenchContext ctx = defaultContext();
    std::string err;
    if (!parseBenchArgs(argc, argv, ctx, err,
                        /*acceptCores=*/false, /*acceptShort=*/false,
                        /*acceptShard=*/true)) {
        std::cerr << err << "\n";
        return 2;
    }
    if (ctx.listOnly)
        return listBenchmarks();

    printHeader("Figure 6: varying conventional cache parameters",
                "Section 5.5, Figure 6");
    std::cout << "A = 64K 4-way, B = 64K direct-mapped (base), "
                 "C = 128K direct-mapped; each vs a conventional "
                 "cache of equal geometry\n"
              << workerBanner(ctx) << "\n\n";
    const GeometryCase cases[] = {
        {"A 64K/4w", 64 * 1024, 4},
        {"B 64K/dm", 64 * 1024, 1},
        {"C 128K/dm", 128 * 1024, 1},
    };

    const std::vector<std::string> cols{
        "benchmark", "ED A",   "ED B",   "ED C",   "size A",
        "size B",    "size C", "slow A", "slow B", "slow C"};
    Table t(cols);
    // JSON rows additionally carry the unit's canonical config hash
    // (runKeyConventional + the sweep tag), the farm's shard/merge
    // join key.
    std::vector<std::string> jsonCols = cols;
    jsonCols.push_back("config_hash");
    SweepDriver drv(ctx, "bench_figure6", "figure6", jsonCols);

    const auto &suite = specSuite();
    for (std::size_t i = 0; i < suite.size(); ++i) {
        const auto &b = suite[i];
        if (!drv.shouldRun(i))
            continue;
        // The base 64K direct-mapped search supplies the bounds.
        const BaseResult base = computeBase(b, ctx);
        const DriParams &bp = base.constrained.dri;

        // Cases A and C each need their own conventional baseline
        // plus a DRI re-run — four detailed simulations. Run both
        // cases as executor jobs; case B reuses the base result.
        ComparisonResult offBase[2];
        benchExecutor(ctx).forEachIndex(
            b.name + "/geometry", 2,
            [&](std::size_t k, const JobContext &) {
                const GeometryCase &g = cases[k == 0 ? 0 : 2];

                RunConfig cfg = ctx.cfg;
                cfg.hier.l1i.sizeBytes = g.sizeBytes;
                cfg.hier.l1i.assoc = g.assoc;

                DriParams p = bp;
                p.sizeBytes = g.sizeBytes;
                p.assoc = g.assoc;
                // Keep the size-bound's absolute magnitude; the
                // 128K cache just gains one resizing bit (Section
                // 5.5). A 4-way set needs at least one full set.
                if (p.sizeBoundBytes <
                    static_cast<std::uint64_t>(p.blockBytes) *
                        p.assoc)
                    p.sizeBoundBytes =
                        static_cast<std::uint64_t>(p.blockBytes) *
                        p.assoc;

                const RunOutput conv = runConventional(b, cfg);
                offBase[k] = evaluateDetailed(b, cfg, p,
                                              ctx.constants, conv);
            });

        std::string ed[3];
        std::string size[3];
        std::string slow[3];
        const ComparisonResult *cmps[3] = {
            &offBase[0], &base.constrained.cmp, &offBase[1]};
        for (int i = 0; i < 3; ++i) {
            ed[i] = fmtDouble(cmps[i]->relativeEnergyDelay(), 3);
            size[i] = fmtDouble(cmps[i]->averageSizeFraction(), 3);
            slow[i] = fmtDouble(cmps[i]->slowdownPercent(), 1) + "%";
        }
        std::vector<std::string> row{
            b.name,  ed[0],   ed[1],   ed[2],   size[0],
            size[1], size[2], slow[0], slow[1], slow[2]};
        t.addRow(row);
        row.push_back(drv.unit(i).hashHex);
        drv.unitDone(i, {std::move(row)});
        std::cerr << "  [figure6] " << b.name << " done\n";
    }
    t.print(std::cout);
    std::cout
        << "\npaper: capacity-bound codes (applu, apsi, compress, "
           "fpppp, ijpeg, li, mgrid) match across A and B; "
           "conflict-prone codes (gcc, go, hydro2d, su2cor, swim, "
           "tomcatv) downsize further at 4 ways; the 128K cache "
           "gives a smaller *fraction* (bigger standby share) where "
           "the working set still fits\n";
    drv.finish();
    reportFastSim(ctx);
    return 0;
}
