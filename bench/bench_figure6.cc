/**
 * @file
 * Figure 6 — "Varying conventional cache parameters": the DRI
 * i-cache evaluated as (A) 64K 4-way, (B) 64K direct-mapped and
 * (C) 128K direct-mapped, each normalized against a conventional
 * i-cache of the same geometry. Miss-bound and size-bound come from
 * the 64K direct-mapped constrained base; the 128K cache uses one
 * extra resizing tag bit so its size-bound matches (Section 5.5).
 */

#include <iostream>

#include "bench_common.hh"

using namespace drisim;
using namespace drisim::bench;

namespace
{

struct GeometryCase
{
    const char *label;
    std::uint64_t sizeBytes;
    unsigned assoc;
};

} // namespace

int
main()
{
    printHeader("Figure 6: varying conventional cache parameters",
                "Section 5.5, Figure 6");
    std::cout << "A = 64K 4-way, B = 64K direct-mapped (base), "
                 "C = 128K direct-mapped; each vs a conventional "
                 "cache of equal geometry\n\n";

    const BenchContext ctx = defaultContext();
    const GeometryCase cases[] = {
        {"A 64K/4w", 64 * 1024, 4},
        {"B 64K/dm", 64 * 1024, 1},
        {"C 128K/dm", 128 * 1024, 1},
    };

    Table t({"benchmark", "ED A", "ED B", "ED C", "size A", "size B",
             "size C", "slow A", "slow B", "slow C"});

    for (const auto &b : specSuite()) {
        // The base 64K direct-mapped search supplies the bounds.
        const BaseResult base = computeBase(b, ctx);
        const DriParams &bp = base.constrained.dri;

        std::string ed[3];
        std::string size[3];
        std::string slow[3];
        for (int i = 0; i < 3; ++i) {
            const GeometryCase &g = cases[i];

            RunConfig cfg = ctx.cfg;
            cfg.hier.l1i.sizeBytes = g.sizeBytes;
            cfg.hier.l1i.assoc = g.assoc;

            DriParams p = bp;
            p.sizeBytes = g.sizeBytes;
            p.assoc = g.assoc;
            // Keep the size-bound's absolute magnitude; the 128K
            // cache just gains one resizing bit (Section 5.5). A
            // 4-way set needs at least one full set.
            if (p.sizeBoundBytes <
                static_cast<std::uint64_t>(p.blockBytes) * p.assoc)
                p.sizeBoundBytes =
                    static_cast<std::uint64_t>(p.blockBytes) *
                    p.assoc;

            const ComparisonResult c =
                i == 1 ? base.constrained.cmp
                       : [&] {
                             const RunOutput conv =
                                 runConventional(b, cfg);
                             return evaluateDetailed(
                                 b, cfg, p, ctx.constants, conv);
                         }();
            ed[i] = fmtDouble(c.relativeEnergyDelay(), 3);
            size[i] = fmtDouble(c.averageSizeFraction(), 3);
            slow[i] = fmtDouble(c.slowdownPercent(), 1) + "%";
        }
        t.addRow({b.name, ed[0], ed[1], ed[2], size[0], size[1],
                  size[2], slow[0], slow[1], slow[2]});
        std::cerr << "  [figure6] " << b.name << " done\n";
    }
    t.print(std::cout);
    std::cout
        << "\npaper: capacity-bound codes (applu, apsi, compress, "
           "fpppp, ijpeg, li, mgrid) match across A and B; "
           "conflict-prone codes (gcc, go, hydro2d, su2cor, swim, "
           "tomcatv) downsize further at 4 ways; the 128K cache "
           "gives a smaller *fraction* (bigger standby share) where "
           "the working set still fits\n";
    return 0;
}
