/**
 * @file
 * Table 2 — "Energy, speed, and area trade-off of varying threshold
 * voltage and gated-Vdd": regenerated from the circuit substrate and
 * printed next to the paper's published values.
 */

#include <iostream>
#include <iterator>
#include <utility>

#include "bench_common.hh"
#include "circuit/area_model.hh"
#include "circuit/gated_vdd.hh"
#include "circuit/sram_cell.hh"

using namespace drisim;
using namespace drisim::circuit;

int
main(int argc, char **argv)
{
    bench::BenchContext ctx = bench::defaultContext();
    std::string err;
    if (!bench::parseBenchArgs(argc, argv, ctx, err)) {
        std::cerr << err << "\n";
        return 2;
    }
    if (ctx.listOnly)
        return bench::listBenchmarks();

    bench::printHeader(
        "Table 2: threshold voltage and gated-Vdd trade-offs",
        "Section 5.1, Table 2 (0.18um, Vdd = 1.0 V, 110 C)");

    const Technology tech = Technology::scaled018();
    const SramCell high_vt(tech, tech.vtHigh);
    const SramCell low_vt(tech, tech.vtLow);
    const GatedVddConfig cfg; // the paper's preferred NMOS dual-Vt
    const GatedVdd gated(tech, low_vt, cfg);

    auto nj = [](double e) { return fmtDouble(e * 1e9, 1); };

    Table t({"row", "base high-Vt", "base low-Vt",
             "NMOS gated-Vdd", "paper (hi/lo/gated)"});
    t.addRow({"gated-Vdd Vt (V)", "n/a", "n/a",
              fmtDouble(tech.vtHigh, 2), "-/-/0.40"});
    t.addRow({"SRAM Vt (V)", fmtDouble(tech.vtHigh, 2),
              fmtDouble(tech.vtLow, 2), fmtDouble(tech.vtLow, 2),
              "0.40/0.20/0.20"});
    t.addRow({"relative read time",
              fmtDouble(high_vt.relativeReadTime(), 2),
              fmtDouble(low_vt.relativeReadTime(), 2),
              fmtDouble(gated.relativeReadTime(), 2),
              "2.22/1.00/1.08"});
    t.addRow({"active leakage energy (x1e-9 nJ/cycle)",
              nj(high_vt.activeLeakagePerCycle()),
              nj(low_vt.activeLeakagePerCycle()),
              nj(low_vt.activeLeakagePerCycle()), "50/1740/1740"});
    t.addRow({"standby leakage energy (x1e-9 nJ/cycle)", "n/a",
              "n/a", nj(gated.standbyLeakagePerCycle()),
              "-/-/53"});
    t.addRow({"energy savings (%)", "n/a", "n/a",
              fmtDouble(100.0 * gated.leakageSavingsFraction(), 1),
              "-/-/97"});
    t.addRow({"area increase (%)", "n/a", "n/a",
              fmtDouble(100.0 * gated.areaOverheadFraction(), 1),
              "-/-/5"});
    t.print(std::cout);

    std::cout << "\nGated-Vdd variants (model extension; "
                 "Section 3 discussion):\n";
    Table v({"variant", "standby (x1e-9 nJ)", "savings",
             "rel. read time", "area"});
    // Evaluated as executor jobs filling index-addressed row slots:
    // the rendered table is identical at any --jobs value.
    const std::pair<GatingKind, const char *> variants[] = {
        {GatingKind::NmosDualVt, "NMOS dual-Vt + pump"},
        {GatingKind::NmosLowVt, "NMOS low-Vt"},
        {GatingKind::PmosDualVt, "PMOS dual-Vt"}};
    v.reserveRows(std::size(variants));
    bench::benchExecutor(ctx).forEachIndex(
        "table2/variant", std::size(variants),
        [&](std::size_t i, const JobContext &) {
            const auto &[kind, name] = variants[i];
            GatedVddConfig c;
            c.kind = kind;
            const GatedVdd g(tech, low_vt, c);
            v.setRow(i, {name, nj(g.standbyLeakagePerCycle()),
                         fmtPercent(g.leakageSavingsFraction(), 1),
                         fmtDouble(g.relativeReadTime(), 2),
                         fmtPercent(g.areaOverheadFraction(), 1)});
        });
    v.print(std::cout);

    std::cout << "\nDerived Section 5.2 constants "
                 "(model vs paper):\n";
    Table c({"constant", "model", "paper"});
    const EnergyConstants derived = EnergyConstants::derived(
        tech, l1Geometry(), l2Geometry());
    c.addRow({"64K L1 leakage (nJ/cycle)",
              fmtDouble(derived.l1LeakPerCycleNJ, 3), "0.91"});
    c.addRow({"resizing bitline (nJ/access)",
              fmtDouble(derived.bitlinePerAccessNJ, 5), "0.0022"});
    c.addRow({"L2 access (nJ)", fmtDouble(derived.l2PerAccessNJ, 2),
              "3.6"});
    c.print(std::cout);
    reportFastSim(ctx);
    return 0;
}
