/**
 * @file
 * Leakage-policy head-to-head — the study the paper's related-work
 * section sketches and Bai et al. motivate (docs/REPRODUCTION.md,
 * Policy comparison study): DRI resizing vs Cache Decay vs Drowsy
 * vs static Selective-Ways on the same workloads, same geometry,
 * same energy accounting.
 *
 * The L1 i-cache runs 64 KB 4-way here (not the paper's
 * direct-mapped Table 1 base): selective-ways gating needs
 * associativity to have anything to gate, and a shared geometry is
 * what makes the comparison head-to-head. For every benchmark the
 * (policy x parameter) grid is searched under the paper's 4%
 * slowdown constraint (harness/policies.hh) and each policy's
 * winner is reported with its state-preserving/state-destroying
 * leakage split.
 *
 *   ./bench_policies [--jobs N] [--short] [--json PATH] [--list]
 *
 * --short restricts to compress+li (the CI smoke); --json writes
 * the winner rows + wall-clock machine-readably.
 */

#include <iostream>
#include <map>

#include "bench_common.hh"
#include "harness/policies.hh"
#include "util/str.hh"

using namespace drisim;
using namespace drisim::bench;

int
main(int argc, char **argv)
{
    BenchContext ctx = defaultContext();
    std::string err;
    if (!parseBenchArgs(argc, argv, ctx, err,
                        /*acceptCores=*/false, /*acceptShort=*/true,
                        /*acceptShard=*/true)) {
        std::cerr << err << "\n";
        return 2;
    }
    if (ctx.listOnly)
        return listBenchmarks();

    // Shared head-to-head geometry: 64 KB / 4-way / 32 B.
    ctx.cfg.hier.l1i.assoc = 4;

    printHeader("Leakage-policy head-to-head: DRI vs Decay vs "
                "Drowsy vs StaticWays",
                "design-space study after the paper's related work "
                "and Bai et al. (PAPERS.md)");
    std::cout << "L1I: 64K 4-way; <=4% slowdown; policy "
                 "energy-delay objective\n";
    std::cout << "run length: " << ctx.cfg.maxInstrs
              << " instructions, sense interval "
              << ctx.driTemplate.senseInterval << ", "
              << workerBanner(ctx) << "\n";

    const PolicyEnergyConstants constants =
        PolicyEnergyConstants::paper();
    const PolicySpace space;
    PolicyConfig tmpl;
    tmpl.dri = ctx.driTemplate;

    const std::vector<std::string> cols{
        "benchmark", "policy", "params",  "rel-ED",
        "active",    "drowsy", "wakes",   "slowdown"};
    Table summary(cols);
    // JSON rows additionally carry the winner's canonical config
    // hash (harness/runner.hh runKeyPolicy), joinable with the
    // --result-cache sidecar and the checkpoint store.
    std::vector<std::string> jsonCols = cols;
    jsonCols.push_back("config_hash");
    SweepDriver drv(ctx, "bench_policies", "policies", jsonCols);
    std::map<std::string, unsigned> wins;
    // Means are over *feasible* winners only, matching the <=4%
    // banner (an infeasible fallback's ED is not achievable under
    // the constraint).
    std::map<std::string, double> edSums;
    std::map<std::string, unsigned> edCounts;

    std::vector<BenchmarkInfo> benches;
    for (const auto &b : specSuite()) {
        if (ctx.shortRun && b.name != "compress" && b.name != "li")
            continue;
        benches.push_back(b);
    }

    for (std::size_t i = 0; i < benches.size(); ++i) {
        const auto &b = benches[i];
        if (!drv.shouldRun(i))
            continue;
        const RunOutput conv = runConventional(b, ctx.cfg);
        const PolicySearchResult sr = searchPolicies(
            b, ctx.cfg, tmpl, space, constants, ctx.maxSlowdownPct,
            conv, &benchExecutor(ctx));

        std::vector<std::vector<std::string>> unitRows;
        bool have_winner = false;
        double best_ed = 0.0;
        std::string winner;
        for (const PolicyCandidate &cand : sr.bestPerKind) {
            if (cand.cmp.run.meas.cycles == 0)
                continue; // kind had no cells in this grid
            std::vector<std::string> row =
                policyRowCells(b.name, cand);
            if (!cand.feasible)
                row.back() += " (infeasible)";
            summary.addRow(row);
            row.push_back(
                runKeyPolicy(b, ctx.cfg, cand.config).hashHex());
            unitRows.push_back(std::move(row));
            const double ed = cand.cmp.relativeEnergyDelay();
            const char *name = policyKindName(cand.config.kind);
            if (cand.feasible) {
                edSums[name] += ed;
                ++edCounts[name];
                if (!have_winner || ed < best_ed) {
                    have_winner = true;
                    best_ed = ed;
                    winner = name;
                }
            }
        }
        if (have_winner)
            ++wins[winner];
        drv.unitDone(i, std::move(unitRows));
        std::cerr << "  [policies] " << b.name << " done ("
                  << (have_winner ? winner : std::string("none"))
                  << " wins)\n";
    }

    std::cout << "\n-- per-policy winners (<=4% slowdown) --\n";
    summary.print(std::cout);

    std::cout << "\n== headline (feasible winners only) ==\n";
    for (const auto &[policy, sum] : edSums)
        std::cout << "  " << policy
                  << ": mean energy-delay reduction "
                  << fmtReduction(
                         sum / static_cast<double>(
                                   edCounts[policy]))
                  << " over " << edCounts[policy] << " workloads, "
                  << "wins " << wins[policy] << "/"
                  << benches.size() << "\n";

    drv.finish();
    reportFastSim(ctx);
    return 0;
}
