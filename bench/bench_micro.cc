/**
 * @file
 * Simulator micro-benchmarks (google-benchmark): raw throughput of
 * the hot paths — cache access, DRI access + resize, trace
 * generation, branch prediction, and whole-core simulation. Not a
 * paper figure; guards against performance regressions in drisim
 * itself.
 */

#include <benchmark/benchmark.h>

#include "core/dri_icache.hh"
#include "cpu/branch_pred.hh"
#include "cpu/ooo_core.hh"
#include "cpu/simple_core.hh"
#include "mem/cache.hh"
#include "mem/hierarchy.hh"
#include "workload/generator.hh"
#include "workload/spec_suite.hh"

namespace
{

using namespace drisim;

void
BM_CacheHit(benchmark::State &state)
{
    stats::StatGroup root("b");
    Cache c(CacheParams{"c", 64 * 1024, 1, 32, 1, ReplPolicy::LRU},
            nullptr, &root);
    Addr addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            c.access(addr & 0xFFFF, AccessType::InstFetch));
        addr += 32;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheHit);

void
BM_CacheMissSweep(benchmark::State &state)
{
    stats::StatGroup root("b");
    Cache c(CacheParams{"c", 64 * 1024, 1, 32, 1, ReplPolicy::LRU},
            nullptr, &root);
    Addr addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            c.access(addr, AccessType::InstFetch));
        addr += 32; // endless sweep: all capacity misses
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheMissSweep);

void
BM_DriAccess(benchmark::State &state)
{
    stats::StatGroup root("b");
    DriParams p;
    DriICache c(p, nullptr, &root);
    Addr addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            c.access(addr & 0xFFFF, AccessType::InstFetch));
        addr += 32;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DriAccess);

void
BM_DriResizeCycle(benchmark::State &state)
{
    // Cost of a full interval boundary + resize (the rare path).
    stats::StatGroup root("b");
    DriParams p;
    p.senseInterval = 1;
    p.missBound = 1;
    DriICache c(p, nullptr, &root);
    bool up = false;
    for (auto _ : state) {
        // Alternate pressure to force a resize each interval.
        if (up)
            for (Addr a = 0; a < 64 * 64; a += 32)
                c.access(a, AccessType::InstFetch);
        benchmark::DoNotOptimize(c.retireInstructions(1));
        up = !up;
    }
}
BENCHMARK(BM_DriResizeCycle);

void
BM_BranchPredict(benchmark::State &state)
{
    stats::StatGroup root("b");
    BranchPredictor bp(BranchPredParams{}, &root);
    Addr pc = 0x1000;
    bool taken = false;
    for (auto _ : state) {
        auto pred = bp.predict(pc, OpClass::Branch);
        benchmark::DoNotOptimize(pred);
        bp.update(pc, OpClass::Branch, taken, pc + 64);
        pc = 0x1000 + ((pc + 4) & 0xFFF);
        taken = !taken;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BranchPredict);

void
BM_TraceGeneration(benchmark::State &state)
{
    const ProgramImage &img = [] {
        static ProgramImage i =
            buildProgram(findBenchmark("compress").spec);
        return i;
    }();
    TraceGenerator gen(img);
    Instr instr;
    for (auto _ : state) {
        gen.next(instr);
        benchmark::DoNotOptimize(instr);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceGeneration);

void
BM_FastModelMIPS(benchmark::State &state)
{
    stats::StatGroup root("b");
    Hierarchy hier(HierarchyParams{}, &root, true);
    static ProgramImage img =
        buildProgram(findBenchmark("li").spec);
    for (auto _ : state) {
        state.PauseTiming();
        TraceGenerator gen(img);
        SimpleCore core(SimpleCoreParams{}, hier.l1i());
        state.ResumeTiming();
        core.run(gen, 200000);
    }
    state.SetItemsProcessed(state.iterations() * 200000);
}
BENCHMARK(BM_FastModelMIPS)->Unit(benchmark::kMillisecond);

void
BM_DetailedCoreMIPS(benchmark::State &state)
{
    static ProgramImage img =
        buildProgram(findBenchmark("li").spec);
    for (auto _ : state) {
        state.PauseTiming();
        stats::StatGroup root("b");
        Hierarchy hier(HierarchyParams{}, &root, true);
        OooCore core(OooParams{}, hier.l1i(), &hier.l1d(), &root);
        TraceGenerator gen(img);
        state.ResumeTiming();
        core.run(gen, 100000);
    }
    state.SetItemsProcessed(state.iterations() * 100000);
}
BENCHMARK(BM_DetailedCoreMIPS)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
