#include "bench_common.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "farm/merge.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "sim/checkpoint.hh"
#include "util/parse.hh"
#include "util/str.hh"

namespace drisim::bench
{

BenchContext
defaultContext()
{
    BenchContext ctx;
    ctx.cfg.maxInstrs = defaultRunInstrs();
    // Keep the paper's interval-to-run ratio: the paper senses
    // every 1M instructions over full SPEC runs; we sense every
    // 100K over 10M-instruction runs (docs/DESIGN.md, Scaling
    // methodology).
    ctx.driTemplate.senseInterval = 100 * 1000;
    ctx.driTemplate.divisibility = 2;
    return ctx;
}

bool
parseBenchArgs(int argc, char **argv, BenchContext &ctx,
               std::string &error, bool acceptCores,
               bool acceptShort, bool acceptShard)
{
    const std::string usage =
        std::string("usage: ") + (argc > 0 ? argv[0] : "bench") +
        " [--jobs N]" +
        (acceptCores ? " [--cores N] [--coherent]" : "") +
        (acceptShort ? " [--short]" : "") +
        (acceptShard ? " [--shard K/N] [--part PATH]" : "") +
        " [--json PATH] [--dram-banked] [--sample]"
        " [--checkpoint-dir DIR]"
        " [--result-cache FILE] [--trace PATH] [--metrics PATH]"
        " [--metrics-interval N] [--list]   (jobs 0 = DRISIM_JOBS "
        "env, else serial; --list prints the workload names)";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        std::string value;
        bool is_cores = false;
        if (arg == "--list") {
            ctx.listOnly = true;
            continue;
        } else if (arg == "--short") {
            if (!acceptShort) {
                error = "this binary does not take --short\n" +
                        usage;
                return false;
            }
            ctx.shortRun = true;
            continue;
        } else if (arg == "--json") {
            if (i + 1 >= argc) {
                error = "missing value after " + arg + "\n" + usage;
                return false;
            }
            ctx.jsonPath = argv[++i];
            continue;
        } else if (arg.rfind("--json=", 0) == 0) {
            ctx.jsonPath = arg.substr(7);
            continue;
        } else if (arg == "--coherent") {
            if (!acceptCores) {
                error = "this binary does not take --coherent (the "
                        "CMP study is bench_cmp)\n" +
                        usage;
                return false;
            }
            ctx.coherent = true;
            continue;
        } else if (arg == "--dram-banked") {
            // Non-blocking memory system: banked queued DRAM plus
            // default MSHR files at every cache level. Without the
            // flag the flat Table 1 memory stays bit-identical.
            ctx.cfg.hier.dram.banked = true;
            ctx.cfg.hier.l1i.mshrs = 4;
            ctx.cfg.hier.l1d.mshrs = 4;
            ctx.cfg.hier.l2.mshrs = 8;
            ctx.driTemplate.mshrs = 4;
            continue;
        } else if (arg == "--sample") {
            ctx.cfg.sampling.enabled = true;
            continue;
        } else if (arg == "--checkpoint-dir") {
            if (i + 1 >= argc) {
                error = "missing value after " + arg + "\n" + usage;
                return false;
            }
            ctx.cfg.checkpointDir = argv[++i];
            continue;
        } else if (arg.rfind("--checkpoint-dir=", 0) == 0) {
            ctx.cfg.checkpointDir = arg.substr(17);
            continue;
        } else if (arg == "--trace") {
            if (i + 1 >= argc) {
                error = "missing value after " + arg + "\n" + usage;
                return false;
            }
            ctx.tracePath = argv[++i];
            continue;
        } else if (arg.rfind("--trace=", 0) == 0) {
            ctx.tracePath = arg.substr(8);
            continue;
        } else if (arg == "--metrics") {
            if (i + 1 >= argc) {
                error = "missing value after " + arg + "\n" + usage;
                return false;
            }
            ctx.metricsPath = argv[++i];
            continue;
        } else if (arg.rfind("--metrics=", 0) == 0) {
            ctx.metricsPath = arg.substr(10);
            continue;
        } else if (arg == "--metrics-interval" ||
                   arg.rfind("--metrics-interval=", 0) == 0) {
            std::string spec;
            if (arg == "--metrics-interval") {
                if (i + 1 >= argc) {
                    error = "missing value after " + arg + "\n" +
                            usage;
                    return false;
                }
                spec = argv[++i];
            } else {
                spec = arg.substr(19);
            }
            std::uint64_t v = 0;
            if (!parsePositiveValue(spec, v,
                                    std::uint64_t(1) << 40)) {
                error = "bad metrics interval '" + spec + "'\n" +
                        usage;
                return false;
            }
            ctx.metricsInterval = v;
            continue;
        } else if (arg == "--result-cache") {
            if (i + 1 >= argc) {
                error = "missing value after " + arg + "\n" + usage;
                return false;
            }
            ctx.cfg.resultCache =
                std::make_shared<sim::ResultCache>(argv[++i]);
            continue;
        } else if (arg.rfind("--result-cache=", 0) == 0) {
            ctx.cfg.resultCache =
                std::make_shared<sim::ResultCache>(arg.substr(15));
            continue;
        } else if (arg == "--shard" || arg.rfind("--shard=", 0) == 0) {
            if (!acceptShard) {
                error = "this binary has no sweep to shard "
                        "(--shard)\n" +
                        usage;
                return false;
            }
            std::string spec;
            if (arg == "--shard") {
                if (i + 1 >= argc) {
                    error = "missing value after " + arg + "\n" +
                            usage;
                    return false;
                }
                spec = argv[++i];
            } else {
                spec = arg.substr(8);
            }
            std::string shardErr;
            if (!farm::parseShardSpec(spec, ctx.cfg.shard,
                                      shardErr)) {
                error = shardErr + "\n" + usage;
                return false;
            }
            continue;
        } else if (arg == "--part") {
            if (!acceptShard) {
                error = "this binary has no sweep to shard "
                        "(--part)\n" +
                        usage;
                return false;
            }
            if (i + 1 >= argc) {
                error = "missing value after " + arg + "\n" + usage;
                return false;
            }
            ctx.partPath = argv[++i];
            continue;
        } else if (arg.rfind("--part=", 0) == 0) {
            if (!acceptShard) {
                error = "this binary has no sweep to shard "
                        "(--part)\n" +
                        usage;
                return false;
            }
            ctx.partPath = arg.substr(7);
            continue;
        } else if (arg == "--jobs" || arg == "-j") {
            if (i + 1 >= argc) {
                error = "missing value after " + arg + "\n" + usage;
                return false;
            }
            value = argv[++i];
        } else if (arg.rfind("--jobs=", 0) == 0) {
            value = arg.substr(7);
        } else if (arg.rfind("jobs=", 0) == 0) {
            value = arg.substr(5);
        } else if (arg == "--cores") {
            if (i + 1 >= argc) {
                error = "missing value after " + arg + "\n" + usage;
                return false;
            }
            value = argv[++i];
            is_cores = true;
        } else if (arg.rfind("--cores=", 0) == 0) {
            value = arg.substr(8);
            is_cores = true;
        } else if (arg.rfind("cores=", 0) == 0) {
            value = arg.substr(6);
            is_cores = true;
        } else {
            error = "unknown argument '" + arg + "'\n" + usage;
            return false;
        }
        if (is_cores) {
            if (!acceptCores) {
                error = "this binary does not take --cores (the "
                        "CMP study is bench_cmp)\n" +
                        usage;
                return false;
            }
            std::uint64_t v = 0;
            if (!parsePositiveValue(value, v, kMaxCmpCores)) {
                error = "bad cores value '" + value + "'\n" + usage;
                return false;
            }
            ctx.cores = static_cast<unsigned>(v);
        } else {
            unsigned v = 0;
            if (!parseJobsValue(value, v)) {
                error = "bad jobs value '" + value + "'\n" + usage;
                return false;
            }
            ctx.cfg.jobs = v;
        }
    }
    ctx.exec.reset(); // rebuilt lazily with the parsed worker count
    // Install the global observability sinks now so every layer's
    // hooks (executor, runner, sampling, farm) see them without
    // threading a handle through; both stay null — one dead branch
    // per hook — unless asked for.
    if (!ctx.tracePath.empty())
        obs::initTrace(ctx.tracePath);
    if (!ctx.metricsPath.empty())
        obs::initMetrics(ctx.metricsPath,
                         ctx.metricsInterval > 0
                             ? ctx.metricsInterval
                             : obs::kDefaultMetricsInterval);
    error.clear();
    return true;
}

bool
writeJsonReport(const BenchContext &ctx,
                const std::string &benchName,
                const std::vector<std::string> &columns,
                const std::vector<std::vector<std::string>> &rows)
{
    if (ctx.jsonPath.empty())
        return true;
    double wall =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - ctx.startTime)
            .count();
    // Pinning the wall clock makes reports reproducible, so a
    // merged sharded run can be compared byte-for-byte against an
    // unsharded one (the CI farm leg sets 0).
    if (const char *env = std::getenv("DRISIM_JSON_WALL_SECONDS")) {
        char *end = nullptr;
        const double v = std::strtod(env, &end);
        if (end != env && *end == '\0')
            wall = v;
    }
    const std::string doc = farm::renderBenchJson(
        benchName, ctx.cfg.shard, wall,
        resolveJobCount(ctx.cfg.jobs), columns, rows);
    std::FILE *f = std::fopen(ctx.jsonPath.c_str(), "w");
    if (!f) {
        std::fprintf(stderr,
                     "warning: cannot write JSON report '%s'\n",
                     ctx.jsonPath.c_str());
        return false;
    }
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
    return true;
}

farm::SweepSetup
sweepSetup(const BenchContext &ctx)
{
    farm::SweepSetup s;
    s.cfg = ctx.cfg;
    s.cores = ctx.cores > 0 ? ctx.cores : 2;
    s.shortRun = ctx.shortRun;
    return s;
}

SweepDriver::SweepDriver(const BenchContext &ctx,
                         std::string benchName,
                         const std::string &sweepName,
                         std::vector<std::string> jsonColumns)
    : ctx_(ctx), benchName_(std::move(benchName)),
      columns_(std::move(jsonColumns)),
      units_(farm::sweepUnits(sweepName, sweepSetup(ctx)))
{
    if (!ctx.partPath.empty()) {
        writer_ = std::make_unique<farm::FragmentWriter>(
            ctx.partPath, benchName_, ctx.cfg.shard, columns_,
            units_);
        // Adopt resumed rows so a resumed shard's own --json (and
        // its finalized fragment) still covers every owned unit.
        for (const farm::FragmentRecord &r :
             writer_->fragment().records)
            rows_[r.index] = r.rows;
        if (writer_->resumedRecords() > 0)
            std::fprintf(
                stderr,
                "[farm] shard %s: resumed %zu completed unit%s "
                "from %s\n",
                ctx.cfg.shard.spec().c_str(),
                writer_->resumedRecords(),
                writer_->resumedRecords() == 1 ? "" : "s",
                ctx.partPath.c_str());
    }
    if (ctx.cfg.shard.active()) {
        std::size_t owned = 0;
        for (const farm::SweepUnit &u : units_)
            if (ctx.cfg.shard.owns(u.hash))
                ++owned;
        std::fprintf(stderr,
                     "[farm] shard %s owns %zu of %zu sweep "
                     "units\n",
                     ctx.cfg.shard.spec().c_str(), owned,
                     units_.size());
    }
}

bool
SweepDriver::shouldRun(std::size_t i) const
{
    if (!ctx_.cfg.shard.owns(units_[i].hash))
        return false;
    if (writer_ && writer_->hasRecord(i))
        return false;
    unitStart_[i] = std::chrono::steady_clock::now();
    return true;
}

void
SweepDriver::unitDone(std::size_t i,
                      std::vector<std::vector<std::string>> rows)
{
    // Per-unit wall clock, pinned by the same switch as the report
    // wall clock so sharded byte-comparisons stay stable.
    double unitWall = 0.0;
    const auto started = unitStart_.find(i);
    if (started != unitStart_.end()) {
        unitWall = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() -
                       started->second)
                       .count();
        unitStart_.erase(started);
    }
    double pinnedWall = 0.0;
    const bool pinned = obs::pinnedWallSeconds(pinnedWall);
    if (pinned)
        unitWall = pinnedWall;
    if (obs::TraceWriter *tw = obs::trace()) {
        obs::TraceSpan span;
        span.cat = "farm";
        span.name = benchName_ + "/unit/" + units_[i].hashHex;
        if (!tw->pinned()) {
            span.dur = static_cast<std::uint64_t>(unitWall * 1e6);
            const std::uint64_t now = tw->nowMicros();
            span.ts = now > span.dur ? now - span.dur : 0;
        }
        span.args.emplace_back("label", units_[i].label);
        tw->complete(std::move(span));
    }
    if (writer_)
        writer_->addRecord(i, units_[i], rows,
                           strFormat("%.3f", unitWall));
    rows_[i] = std::move(rows);
    // Unit boundary = durability point: with the rows safely in the
    // fragment, persist the unit's memoized sub-runs too, so a kill
    // during the next unit loses only that unit's work.
    if (ctx_.cfg.resultCache)
        ctx_.cfg.resultCache->flush();
}

std::size_t
SweepDriver::resumedUnits() const
{
    return writer_ ? writer_->resumedRecords() : 0;
}

void
SweepDriver::finish()
{
    if (writer_)
        writer_->finalize();
    std::vector<std::vector<std::string>> all;
    for (const auto &[index, unitRows] : rows_)
        for (const std::vector<std::string> &row : unitRows)
            all.push_back(row);
    writeJsonReport(ctx_, benchName_, columns_, all);
}

int
listBenchmarks()
{
    std::printf("available SPEC workloads (paper Section 5.3):\n");
    for (const BenchmarkInfo &b : specSuite())
        std::printf("  %-10s (class %d)\n", b.name.c_str(),
                    b.benchClass);
    return 0;
}

Executor &
benchExecutor(const BenchContext &ctx)
{
    if (!ctx.exec)
        ctx.exec = std::make_shared<Executor>(ctx.cfg.jobs);
    return *ctx.exec;
}

std::string
workerBanner(const BenchContext &ctx)
{
    const unsigned n = resolveJobCount(ctx.cfg.jobs);
    return strFormat("%u worker%s (--jobs)", n, n == 1 ? "" : "s");
}

void
reportFastSim(const BenchContext &ctx)
{
    if (ctx.cfg.resultCache) {
        ctx.cfg.resultCache->flush();
        const sim::ResultCache::Counters c =
            ctx.cfg.resultCache->counters();
        std::fprintf(
            stderr,
            "result-cache: hits=%llu misses=%llu stores=%llu (%s)\n",
            static_cast<unsigned long long>(c.hits),
            static_cast<unsigned long long>(c.misses),
            static_cast<unsigned long long>(c.stores),
            ctx.cfg.resultCache->path().c_str());
    }
    if (!ctx.cfg.checkpointDir.empty()) {
        const sim::CheckpointCounters c = sim::checkpointCounters();
        std::fprintf(
            stderr, "checkpoints: saves=%llu restores=%llu (%s)\n",
            static_cast<unsigned long long>(c.saves),
            static_cast<unsigned long long>(c.restores),
            ctx.cfg.checkpointDir.c_str());
    }
    // Observability artifacts flush here, after the report, so a
    // trace covers the whole run; like the lines above, the summary
    // goes to stderr to keep stdout byte-comparable.
    if (obs::TraceWriter *tw = obs::trace()) {
        std::string err;
        if (!tw->write(err))
            std::fprintf(stderr, "warning: %s\n", err.c_str());
        std::fprintf(stderr, "trace: %zu spans -> %s\n",
                     tw->spanCount(), tw->path().c_str());
    }
    if (obs::TimeSeriesRecorder *m = obs::metrics()) {
        std::string err;
        if (!m->write(err))
            std::fprintf(stderr, "warning: %s\n", err.c_str());
        std::fprintf(stderr, "metrics: %zu samples -> %s\n",
                     m->sampleCount(), m->path().c_str());
    }
}

BaseResult
computeBase(const BenchmarkInfo &bench, const BenchContext &ctx)
{
    BaseResult out;

    struct Cell
    {
        std::uint64_t sizeBound;
        double factor;
    };
    std::vector<Cell> cells;
    for (std::uint64_t size_bound : ctx.space.sizeBounds) {
        if (size_bound > ctx.driTemplate.sizeBytes)
            continue;
        for (double factor : ctx.space.missBoundFactors)
            cells.push_back({size_bound, factor});
    }

    Executor &exec = benchExecutor(ctx);
    JobGraph graph;

    // Content-addressed job keys: the base-config hash makes every
    // key unique per configuration, so job-keyed artifacts (seeds,
    // traces) never collide across differently-configured sweeps.
    const std::string cfgHash =
        runKeyConventional(bench, ctx.cfg).hashHex();

    const JobId conv = graph.add(
        bench.name + "/conv-detailed#" + cfgHash,
        [&](const JobContext &) {
            out.conv = runConventional(bench, ctx.cfg);
        });

    FastCalibration cal;
    RunOutput conv_fast;
    double conv_mpi = 0.0;
    const JobId calibrate = graph.add(
        bench.name + "/calibrate",
        [&](const JobContext &) {
            cal = calibrateFast(bench, ctx.cfg, out.conv);
            conv_fast = runConventionalFast(bench, ctx.cfg, cal);
            const double intervals =
                static_cast<double>(ctx.cfg.maxInstrs) /
                static_cast<double>(ctx.driTemplate.senseInterval);
            conv_mpi =
                static_cast<double>(conv_fast.meas.l1iMisses) /
                intervals;
        },
        {conv});

    struct CellResult
    {
        DriParams dri;
        double ed = 0.0;
        double slowdown = 0.0;
    };
    std::vector<CellResult> slots(cells.size());
    std::vector<JobId> grid;
    grid.reserve(cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
        grid.push_back(graph.add(
            strFormat("%s/sb=%llu/mbf=%g#%s", bench.name.c_str(),
                      static_cast<unsigned long long>(
                          cells[i].sizeBound),
                      cells[i].factor, cfgHash.c_str()),
            [&, i](const JobContext &) {
                DriParams p = ctx.driTemplate;
                p.sizeBoundBytes = cells[i].sizeBound;
                p.missBound = std::max<std::uint64_t>(
                    ctx.space.missBoundFloor,
                    static_cast<std::uint64_t>(cells[i].factor *
                                               conv_mpi));

                const RunOutput d =
                    runDriFast(bench, ctx.cfg, p, cal);
                const ComparisonResult cmp = compareRuns(
                    ctx.constants, conv_fast.meas, d.meas);
                slots[i] = {p, cmp.relativeEnergyDelay(),
                            cmp.slowdownPercent()};
            },
            {calibrate}));
    }

    // Listing calibrate explicitly also covers the empty-grid case,
    // where select (and the winner jobs behind it) would otherwise
    // run unordered with respect to conv-detailed and calibrate.
    std::vector<JobId> selectDeps = grid;
    selectDeps.push_back(calibrate);

    DriParams params_c = ctx.driTemplate;
    DriParams params_u = ctx.driTemplate;
    bool u_distinct = false;
    const JobId select = graph.add(
        bench.name + "/select",
        [&](const JobContext &) {
            // Index-order scan: independent of which worker finished
            // which cell first.
            bool have_c = false;
            bool have_u = false;
            double best_c = 0.0;
            double best_u = 0.0;
            for (const CellResult &cell : slots) {
                if (!have_u || cell.ed < best_u) {
                    have_u = true;
                    best_u = cell.ed;
                    params_u = cell.dri;
                }
                if (cell.slowdown <= ctx.maxSlowdownPct &&
                    (!have_c || cell.ed < best_c)) {
                    have_c = true;
                    best_c = cell.ed;
                    params_c = cell.dri;
                }
            }
            if (!have_c) {
                // Constraint unreachable (fpppp-like): pin to full
                // size.
                params_c = ctx.driTemplate;
                params_c.sizeBoundBytes = ctx.driTemplate.sizeBytes;
                params_c.missBound = std::max<std::uint64_t>(
                    ctx.space.missBoundFloor,
                    static_cast<std::uint64_t>(2.0 * conv_mpi));
            }
            u_distinct =
                have_u && !(params_u.sizeBoundBytes ==
                                params_c.sizeBoundBytes &&
                            params_u.missBound == params_c.missBound);
        },
        selectDeps);

    graph.add(
        bench.name + "/winner-constrained",
        [&](const JobContext &) {
            out.constrained.dri = params_c;
            out.constrained.cmp = evaluateDetailed(
                bench, ctx.cfg, params_c, ctx.constants, out.conv);
            out.constrained.feasible =
                out.constrained.cmp.slowdownPercent() <=
                ctx.maxSlowdownPct;
        },
        {select});

    graph.add(
        bench.name + "/winner-unconstrained",
        [&](const JobContext &) {
            // Runs concurrently with the constrained winner; when
            // both searches picked the same cell the copy happens
            // after the graph (the constrained job may still be in
            // flight here).
            if (!u_distinct)
                return;
            out.unconstrained.dri = params_u;
            out.unconstrained.cmp = evaluateDetailed(
                bench, ctx.cfg, params_u, ctx.constants, out.conv);
        },
        {select});

    exec.run(graph);

    if (!u_distinct)
        out.unconstrained = out.constrained;
    out.unconstrained.feasible = true;
    return out;
}

void
printHeader(const std::string &title, const std::string &paperRef)
{
    std::printf("\n================================================="
                "=============\n");
    std::printf("%s\n", title.c_str());
    std::printf("paper reference: %s\n", paperRef.c_str());
    std::printf("==================================================="
                "===========\n");
}

std::string
fmtReduction(double relative)
{
    return fmtDouble(100.0 * (1.0 - relative), 1) + "%";
}

} // namespace drisim::bench
