#include "bench_common.hh"

#include <algorithm>
#include <cstdio>

namespace drisim::bench
{

BenchContext
defaultContext()
{
    BenchContext ctx;
    ctx.cfg.maxInstrs = defaultRunInstrs();
    // Keep the paper's interval-to-run ratio: the paper senses
    // every 1M instructions over full SPEC runs; we sense every
    // 100K over 10M-instruction runs (docs/DESIGN.md, Scaling
    // methodology).
    ctx.driTemplate.senseInterval = 100 * 1000;
    ctx.driTemplate.divisibility = 2;
    return ctx;
}

BaseResult
computeBase(const BenchmarkInfo &bench, const BenchContext &ctx)
{
    BaseResult out;
    out.conv = runConventional(bench, ctx.cfg);

    const FastCalibration cal =
        calibrateFast(bench, ctx.cfg, out.conv);
    const RunOutput conv_fast =
        runConventionalFast(bench, ctx.cfg, cal);

    const double intervals =
        static_cast<double>(ctx.cfg.maxInstrs) /
        static_cast<double>(ctx.driTemplate.senseInterval);
    const double conv_mpi =
        static_cast<double>(conv_fast.meas.l1iMisses) / intervals;

    bool have_c = false;
    bool have_u = false;
    double best_c = 0.0;
    double best_u = 0.0;
    DriParams params_c = ctx.driTemplate;
    DriParams params_u = ctx.driTemplate;

    for (std::uint64_t size_bound : ctx.space.sizeBounds) {
        if (size_bound > ctx.driTemplate.sizeBytes)
            continue;
        for (double factor : ctx.space.missBoundFactors) {
            DriParams p = ctx.driTemplate;
            p.sizeBoundBytes = size_bound;
            p.missBound = std::max<std::uint64_t>(
                ctx.space.missBoundFloor,
                static_cast<std::uint64_t>(factor * conv_mpi));

            const RunOutput d = runDriFast(bench, ctx.cfg, p, cal);
            const ComparisonResult cmp =
                compareRuns(ctx.constants, conv_fast.meas, d.meas);
            const double ed = cmp.relativeEnergyDelay();

            if (!have_u || ed < best_u) {
                have_u = true;
                best_u = ed;
                params_u = p;
            }
            if (cmp.slowdownPercent() <= ctx.maxSlowdownPct &&
                (!have_c || ed < best_c)) {
                have_c = true;
                best_c = ed;
                params_c = p;
            }
        }
    }

    if (!have_c) {
        // Constraint unreachable (fpppp-like): pin to full size.
        params_c = ctx.driTemplate;
        params_c.sizeBoundBytes = ctx.driTemplate.sizeBytes;
        params_c.missBound = std::max<std::uint64_t>(
            ctx.space.missBoundFloor,
            static_cast<std::uint64_t>(2.0 * conv_mpi));
    }

    out.constrained.dri = params_c;
    out.constrained.cmp = evaluateDetailed(
        bench, ctx.cfg, params_c, ctx.constants, out.conv);
    out.constrained.feasible =
        out.constrained.cmp.slowdownPercent() <= ctx.maxSlowdownPct;

    if (have_u && !(params_u.sizeBoundBytes ==
                        params_c.sizeBoundBytes &&
                    params_u.missBound == params_c.missBound)) {
        out.unconstrained.dri = params_u;
        out.unconstrained.cmp = evaluateDetailed(
            bench, ctx.cfg, params_u, ctx.constants, out.conv);
    } else {
        out.unconstrained = out.constrained;
    }
    out.unconstrained.feasible = true;
    return out;
}

void
printHeader(const std::string &title, const std::string &paperRef)
{
    std::printf("\n================================================="
                "=============\n");
    std::printf("%s\n", title.c_str());
    std::printf("paper reference: %s\n", paperRef.c_str());
    std::printf("==================================================="
                "===========\n");
}

std::string
fmtReduction(double relative)
{
    return fmtDouble(100.0 * (1.0 - relative), 1) + "%";
}

} // namespace drisim::bench
