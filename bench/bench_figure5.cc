/**
 * @file
 * Figure 5 — "Impact of varying the size-bound": each benchmark's
 * base performance-constrained configuration re-run with the
 * size-bound doubled and halved (2x / 1x / 0.5x). Doubling wastes
 * leakage for class 1; halving thrashes class 2 (fpppp's 2x row is
 * "not applicable" because its base size-bound is already 64K).
 */

#include <iostream>

#include "bench_common.hh"
#include "util/str.hh"

using namespace drisim;
using namespace drisim::bench;

int
main(int argc, char **argv)
{
    BenchContext ctx = defaultContext();
    std::string err;
    if (!parseBenchArgs(argc, argv, ctx, err,
                        /*acceptCores=*/false, /*acceptShort=*/false,
                        /*acceptShard=*/true)) {
        std::cerr << err << "\n";
        return 2;
    }
    if (ctx.listOnly)
        return listBenchmarks();

    printHeader("Figure 5: impact of varying the size-bound",
                "Section 5.4.2, Figure 5");
    std::cout << workerBanner(ctx) << "\n";

    const std::vector<std::string> cols{
        "benchmark", "base sb", "ED 2x",   "ED 1x (base)",
        "ED 0.5x",   "slow 2x", "slow 1x", "slow 0.5x"};
    Table t(cols);
    // JSON rows additionally carry the unit's canonical config hash
    // (runKeyConventional + the sweep tag), the farm's shard/merge
    // join key.
    std::vector<std::string> jsonCols = cols;
    jsonCols.push_back("config_hash");
    SweepDriver drv(ctx, "bench_figure5", "figure5", jsonCols);

    const auto &suite = specSuite();
    for (std::size_t i = 0; i < suite.size(); ++i) {
        const auto &b = suite[i];
        if (!drv.shouldRun(i))
            continue;
        const BaseResult base = computeBase(b, ctx);
        const DriParams &bp = base.constrained.dri;

        // Collect the applicable off-base size-bounds, batch the
        // detailed re-runs through the executor, then map back.
        std::string ed[3];
        std::string slow[3];
        const double factors[3] = {2.0, 1.0, 0.5};
        std::vector<DriParams> variants;
        std::vector<int> variantSlot;
        for (int i = 0; i < 3; ++i) {
            std::uint64_t sb = static_cast<std::uint64_t>(
                factors[i] *
                static_cast<double>(bp.sizeBoundBytes));
            if (sb > bp.sizeBytes ||
                sb < static_cast<std::uint64_t>(bp.blockBytes) *
                         bp.assoc) {
                ed[i] = "N/A";
                slow[i] = "N/A";
                continue;
            }
            if (i == 1)
                continue; // base result already in hand
            DriParams p = bp;
            p.sizeBoundBytes = sb;
            variants.push_back(p);
            variantSlot.push_back(i);
        }
        const std::vector<ComparisonResult> batch =
            evaluateDetailedBatch(b, ctx.cfg, variants,
                                  ctx.constants, base.conv,
                                  &benchExecutor(ctx));
        ed[1] = fmtDouble(
            base.constrained.cmp.relativeEnergyDelay(), 3);
        slow[1] =
            fmtDouble(base.constrained.cmp.slowdownPercent(), 1) +
            "%";
        for (std::size_t k = 0; k < batch.size(); ++k) {
            ed[variantSlot[k]] =
                fmtDouble(batch[k].relativeEnergyDelay(), 3);
            slow[variantSlot[k]] =
                fmtDouble(batch[k].slowdownPercent(), 1) + "%";
        }
        std::vector<std::string> row{
            b.name, bytesToString(bp.sizeBoundBytes),
            ed[0],  ed[1],
            ed[2],  slow[0],
            slow[1], slow[2]};
        t.addRow(row);
        row.push_back(drv.unit(i).hashHex);
        drv.unitDone(i, {std::move(row)});
        std::cerr << "  [figure5] " << b.name << " done\n";
    }
    t.print(std::cout);
    std::cout << "\npaper: class 1 pays for a doubled size-bound "
                 "(leakage) and for a halved one (extra L2 "
                 "traffic); class 2 thrashes when pushed below its "
                 "working set; fpppp's 2x case is not applicable\n";
    drv.finish();
    reportFastSim(ctx);
    return 0;
}
