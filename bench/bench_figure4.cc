/**
 * @file
 * Figure 4 — "Impact of varying the miss-bound": each benchmark's
 * base performance-constrained configuration re-run with the
 * miss-bound halved and doubled (0.5x / 1x / 2x), reporting the
 * normalized energy-delay and slowdown. The paper's claim: the
 * scheme is robust — most energy-delay products barely move over a
 * 4x miss-bound range.
 */

#include <algorithm>
#include <cmath>
#include <iostream>

#include "bench_common.hh"

using namespace drisim;
using namespace drisim::bench;

int
main(int argc, char **argv)
{
    BenchContext ctx = defaultContext();
    std::string err;
    if (!parseBenchArgs(argc, argv, ctx, err,
                        /*acceptCores=*/false, /*acceptShort=*/true,
                        /*acceptShard=*/true)) {
        std::cerr << err << "\n";
        return 2;
    }
    if (ctx.listOnly)
        return listBenchmarks();

    printHeader("Figure 4: impact of varying the miss-bound",
                "Section 5.4.1, Figure 4");
    std::cout << workerBanner(ctx) << "\n";

    const std::vector<std::string> cols{
        "benchmark", "ED 0.5x", "ED 1x (base)", "ED 2x",
        "slow 0.5x", "slow 1x",  "slow 2x",     "max ED spread"};
    Table t(cols);
    // JSON rows additionally carry the unit's canonical config hash
    // (runKeyConventional + the sweep tag), the farm's shard/merge
    // join key.
    std::vector<std::string> jsonCols = cols;
    jsonCols.push_back("config_hash");
    SweepDriver drv(ctx, "bench_figure4", "figure4", jsonCols);

    double worst_spread = 0.0;
    std::string worst_name;

    // --short keeps compress+li, the same filter the sweep registry
    // applies, so loop indices keep matching the plan.
    std::vector<BenchmarkInfo> suite;
    for (const auto &b : specSuite()) {
        if (ctx.shortRun && b.name != "compress" && b.name != "li")
            continue;
        suite.push_back(b);
    }
    for (std::size_t i = 0; i < suite.size(); ++i) {
        const auto &b = suite[i];
        if (!drv.shouldRun(i))
            continue;
        const BaseResult base = computeBase(b, ctx);
        const DriParams &bp = base.constrained.dri;

        // The 0.5x and 2x re-runs are independent detailed
        // simulations; batch them through the executor.
        std::vector<DriParams> variants;
        for (const double f : {0.5, 2.0}) {
            DriParams p = bp;
            p.missBound = std::max<std::uint64_t>(
                1, static_cast<std::uint64_t>(
                       f * static_cast<double>(bp.missBound)));
            variants.push_back(p);
        }
        const std::vector<ComparisonResult> batch =
            evaluateDetailedBatch(b, ctx.cfg, variants,
                                  ctx.constants, base.conv,
                                  &benchExecutor(ctx));

        double ed[3];
        double slow[3];
        const ComparisonResult *cmps[3] = {
            &batch[0], &base.constrained.cmp, &batch[1]};
        for (int i = 0; i < 3; ++i) {
            ed[i] = cmps[i]->relativeEnergyDelay();
            slow[i] = cmps[i]->slowdownPercent();
        }
        const double spread =
            std::max({ed[0], ed[1], ed[2]}) -
            std::min({ed[0], ed[1], ed[2]});
        if (spread > worst_spread) {
            worst_spread = spread;
            worst_name = b.name;
        }
        std::vector<std::string> row{
            b.name,
            fmtDouble(ed[0], 3),
            fmtDouble(ed[1], 3),
            fmtDouble(ed[2], 3),
            fmtDouble(slow[0], 1) + "%",
            fmtDouble(slow[1], 1) + "%",
            fmtDouble(slow[2], 1) + "%",
            fmtDouble(spread, 3)};
        t.addRow(row);
        row.push_back(drv.unit(i).hashHex);
        drv.unitDone(i, {std::move(row)});
        std::cerr << "  [figure4] " << b.name << " done\n";
    }
    t.print(std::cout);
    std::cout << "\nlargest energy-delay spread over the 4x "
                 "miss-bound range: "
              << fmtDouble(worst_spread, 3) << " (" << worst_name
              << ")\n";
    std::cout << "paper: most benchmarks move little; gcc, go, "
                 "perl, tomcatv downsize more at high miss-bounds "
                 "at 5-8% slowdown\n";
    drv.finish();
    reportFastSim(ctx);
    return 0;
}
