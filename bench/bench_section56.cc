/**
 * @file
 * Section 5.6 — "Varying sense-interval length and divisibility",
 * plus a throttle on/off ablation (docs/DESIGN.md, Throttling).
 *
 * Paper claims: energy-delay varies by < 1% across a 16x interval
 * range for all but go (< 5%); divisibility 4 or 8 coarsens
 * resizing and hurts.
 */

#include <cmath>
#include <iostream>

#include "bench_common.hh"

using namespace drisim;
using namespace drisim::bench;

int
main(int argc, char **argv)
{
    BenchContext ctx = defaultContext();
    std::string err;
    if (!parseBenchArgs(argc, argv, ctx, err,
                        /*acceptCores=*/false, /*acceptShort=*/false,
                        /*acceptShard=*/true)) {
        std::cerr << err << "\n";
        return 2;
    }
    if (ctx.listOnly)
        return listBenchmarks();

    printHeader("Section 5.6: sense interval, divisibility, throttle",
                "Section 5.6 (text)");
    std::cout << workerBanner(ctx) << "\n";

    // Paper sweeps 250K..4M around a 1M base (scaled here 4x down
    // around the 100K base, same 16x dynamic range).
    const InstCount intervals[] = {25000, 50000, 100000, 200000,
                                   400000};
    Table ti({"benchmark", "ED 0.25x", "ED 0.5x", "ED 1x", "ED 2x",
              "ED 4x", "max dev"});
    Table td({"benchmark", "ED div2 (base)", "ED div4", "ED div8"});
    Table tt({"benchmark", "ED throttled (base)", "ED no-throttle",
              "resizes base", "resizes no-throttle"});

    // JSON rows: the interval sweep's cells plus the unit's
    // canonical config hash (runKeyConventional + the sweep tag),
    // the farm's shard/merge join key.
    const std::vector<std::string> jsonCols{
        "benchmark", "ED 0.25x", "ED 0.5x", "ED 1x",
        "ED 2x",     "ED 4x",    "max dev", "config_hash"};
    SweepDriver drv(ctx, "bench_section56", "section56", jsonCols);

    double worst_dev = 0.0;
    std::string worst_name;

    const auto &suite = specSuite();
    for (std::size_t i = 0; i < suite.size(); ++i) {
        const auto &b = suite[i];
        if (!drv.shouldRun(i))
            continue;
        const BaseResult base = computeBase(b, ctx);
        const DriParams &bp = base.constrained.dri;

        // --- interval sweep + divisibility ----------------------
        // All off-base variants of both ablations are independent
        // detailed runs; batch them through one executor pass.
        double base_ed = base.constrained.cmp.relativeEnergyDelay();
        std::vector<DriParams> variants;
        std::vector<const ComparisonResult *> ivCmp;
        for (InstCount iv : intervals) {
            if (iv == bp.senseInterval) {
                ivCmp.push_back(&base.constrained.cmp);
                continue;
            }
            DriParams p = bp;
            p.senseInterval = iv;
            // Miss-bound is per interval: scale it with the length.
            p.missBound = std::max<std::uint64_t>(
                1, static_cast<std::uint64_t>(
                       std::llround(static_cast<double>(bp.missBound) *
                                    static_cast<double>(iv) /
                                    static_cast<double>(
                                        bp.senseInterval))));
            variants.push_back(p);
            ivCmp.push_back(nullptr); // filled from the batch below
        }
        const std::size_t divFirst = variants.size();
        for (unsigned div : {4u, 8u}) {
            DriParams p = bp;
            p.divisibility = div;
            variants.push_back(p);
        }
        const std::vector<ComparisonResult> batch =
            evaluateDetailedBatch(b, ctx.cfg, variants,
                                  ctx.constants, base.conv,
                                  &benchExecutor(ctx));

        std::vector<std::string> row{b.name};
        double dev = 0.0;
        std::size_t next = 0;
        for (const ComparisonResult *&slot : ivCmp) {
            if (!slot)
                slot = &batch[next++];
            row.push_back(
                fmtDouble(slot->relativeEnergyDelay(), 3));
            dev = std::max(dev,
                           std::abs(slot->relativeEnergyDelay() -
                                    base_ed));
        }
        row.push_back(fmtDouble(dev, 3));
        ti.addRow(row);
        std::vector<std::string> jsonRow = row;
        jsonRow.push_back(drv.unit(i).hashHex);
        if (dev > worst_dev) {
            worst_dev = dev;
            worst_name = b.name;
        }

        std::vector<std::string> drow{b.name,
                                      fmtDouble(base_ed, 3)};
        for (std::size_t k = divFirst; k < variants.size(); ++k)
            drow.push_back(
                fmtDouble(batch[k].relativeEnergyDelay(), 3));
        td.addRow(drow);

        // --- throttle ablation ----------------------------------
        DriParams p = bp;
        p.throttleHoldIntervals = 0; // trigger becomes a no-op
        RunOutput no_thr;
        RunOutput with_thr;
        benchExecutor(ctx).forEachIndex(
            b.name + "/throttle", 2,
            [&](std::size_t k, const JobContext &) {
                if (k == 0)
                    no_thr = runDri(b, ctx.cfg, p);
                else
                    with_thr = runDri(b, ctx.cfg, bp);
            });
        const ComparisonResult c = compareRuns(
            ctx.constants, base.conv.meas, no_thr.meas);
        tt.addRow({b.name, fmtDouble(base_ed, 3),
                   fmtDouble(c.relativeEnergyDelay(), 3),
                   std::to_string(with_thr.resizes),
                   std::to_string(no_thr.resizes)});
        drv.unitDone(i, {std::move(jsonRow)});
        std::cerr << "  [section56] " << b.name << " done\n";
    }

    std::cout << "\n-- sense-interval sweep (miss-bound scaled "
                 "proportionally) --\n";
    ti.print(std::cout);
    std::cout << "largest deviation: " << fmtDouble(worst_dev, 3)
              << " (" << worst_name
              << "); paper: <0.01 for all but go (<0.05)\n";

    std::cout << "\n-- divisibility --\n";
    td.print(std::cout);
    std::cout << "paper: divisibility 4/8 'prohibitively increases "
                 "the resizing granularity'\n";

    std::cout << "\n-- throttle ablation (not plotted in the paper; "
                 "docs/DESIGN.md, Throttling) --\n";
    tt.print(std::cout);
    drv.finish();
    reportFastSim(ctx);
    return 0;
}
