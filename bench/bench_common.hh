/**
 * @file
 * Shared plumbing for the per-figure bench binaries: default run
 * configuration, the paper's best-case (miss-bound, size-bound)
 * search evaluated once per benchmark for both the performance-
 * constrained and unconstrained cases, and output helpers.
 */

#ifndef DRISIM_BENCH_BENCH_COMMON_HH
#define DRISIM_BENCH_BENCH_COMMON_HH

#include <string>

#include "harness/runner.hh"
#include "harness/sweep.hh"
#include "harness/table.hh"

namespace drisim::bench
{

/** Everything a figure bench needs. */
struct BenchContext
{
    RunConfig cfg;
    EnergyConstants constants = EnergyConstants::paper();
    SearchSpace space;
    /** The paper's performance constraint (Section 5.3). */
    double maxSlowdownPct = 4.0;
    /** DRI knobs not searched. */
    DriParams driTemplate;
};

/** Default context: Table 1 system, scaled run length. */
BenchContext defaultContext();

/** Figure 3's two design points for one benchmark. */
struct BaseResult
{
    RunOutput conv;                ///< detailed conventional run
    SearchCandidate constrained;   ///< best with <= 4% slowdown
    SearchCandidate unconstrained; ///< best regardless of slowdown
};

/**
 * Evaluate the (size-bound x miss-bound) grid once on the fast
 * model and detail-run both winners (the paper's "empirically
 * searching the combination space", Section 5.3).
 */
BaseResult computeBase(const BenchmarkInfo &bench,
                       const BenchContext &ctx);

/** Print a figure/table banner. */
void printHeader(const std::string &title,
                 const std::string &paperRef);

/** "62%" style reduction formatting from a relative value. */
std::string fmtReduction(double relative);

} // namespace drisim::bench

#endif // DRISIM_BENCH_BENCH_COMMON_HH
