/**
 * @file
 * Shared plumbing for the per-figure bench binaries: default run
 * configuration, common flag parsing (--jobs), the paper's best-case
 * (miss-bound, size-bound) search evaluated once per benchmark for
 * both the performance-constrained and unconstrained cases, and
 * output helpers. The search runs as an executor JobGraph
 * (harness/executor.hh); results are identical at any --jobs value.
 */

#ifndef DRISIM_BENCH_BENCH_COMMON_HH
#define DRISIM_BENCH_BENCH_COMMON_HH

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "harness/executor.hh"
#include "harness/runner.hh"
#include "harness/sweep.hh"
#include "harness/table.hh"

namespace drisim::bench
{

/** Everything a figure bench needs. */
struct BenchContext
{
    RunConfig cfg;
    EnergyConstants constants = EnergyConstants::paper();
    SearchSpace space;
    /** The paper's performance constraint (Section 5.3). */
    double maxSlowdownPct = 4.0;
    /** DRI knobs not searched. */
    DriParams driTemplate;

    /** Worker pool shared by every sweep in this bench run; created
     *  lazily by benchExecutor() so the worker threads spawn once,
     *  not per benchmark. Copies of the context share it. */
    mutable std::shared_ptr<Executor> exec;

    /** --cores N (bench_cmp's CMP width; 0 = the bench's default). */
    unsigned cores = 0;

    /** --coherent (bench_cmp only): run the sharing workloads under
     *  MSI coherence (mem/directory.hh) instead of the
     *  multiprogrammed private-data mixes. */
    bool coherent = false;

    /** --list: print the SPEC workload names and exit. */
    bool listOnly = false;

    /**
     * --json PATH: write the bench's winner rows + wall-clock as a
     * machine-readable report (writeJsonReport()). Empty = off.
     */
    std::string jsonPath;

    /** --short: restrict to a quick workload subset (binaries that
     *  accept it; the CI smoke uses it). */
    bool shortRun = false;

    /** Wall-clock anchor for the JSON report (context creation). */
    std::chrono::steady_clock::time_point startTime =
        std::chrono::steady_clock::now();
};

/** The context's pool, created on first use with cfg.jobs workers. */
Executor &benchExecutor(const BenchContext &ctx);

/** Default context: Table 1 system, scaled run length. */
BenchContext defaultContext();

/**
 * Parse the flags every bench binary accepts (--jobs N, --jobs=N,
 * jobs=N, --list, --json PATH) into @p ctx. Returns false and fills
 * @p error (usage included) on anything unrecognized. After a
 * successful parse check ctx.listOnly: --list asks the binary to
 * print the available SPEC workload names (listBenchmarks()) and
 * exit instead of failing later on a typo. `--cores N` and
 * `--coherent` are accepted only when @p acceptCores is set
 * (bench_cmp) — every other binary rejects them instead of silently
 * running single-core — and `--short` only when @p acceptShort is
 * set (bench_policies).
 *
 * `--dram-banked` switches the memory system to the banked queued
 * DRAM model with default MSHR files at every cache level
 * (mem/dram.hh); without it the flat Table 1 memory is used and
 * results stay bit-identical to earlier versions.
 *
 * Fast-simulation flags (sim/ layer, accepted everywhere):
 *  - `--sample`             phase sampling (detailed windows +
 *                           functional fast-forward; approximate)
 *  - `--checkpoint-dir DIR` midpoint snapshot store (bit-exact)
 *  - `--result-cache FILE`  content-addressed result memoization
 *                           (bit-exact; shared across binaries)
 */
bool parseBenchArgs(int argc, char **argv, BenchContext &ctx,
                    std::string &error, bool acceptCores = false,
                    bool acceptShort = false);

/**
 * One stderr line per configured fast-simulation mechanism
 * ("result-cache: hits=... misses=... stores=..." and
 * "checkpoints: saves=... restores=..."); silent when neither was
 * configured. Flushes the result cache first, so a bench that was
 * killed right after its report still leaves a complete sidecar.
 * stderr keeps stdout byte-comparable across cached/uncached runs.
 */
void reportFastSim(const BenchContext &ctx);

/**
 * Write the bench's winner rows + wall-clock since context creation
 * to ctx.jsonPath ({"bench", "wall_seconds", "columns", "winners"}
 * — one object per row, keyed by column). No-op when --json was not
 * given; warns and returns false when the file cannot be written.
 */
bool writeJsonReport(const BenchContext &ctx,
                     const std::string &benchName,
                     const std::vector<std::string> &columns,
                     const std::vector<std::vector<std::string>> &rows);

/** Print the SPEC workload names with their paper class; returns 0
 *  (the --list exit status). */
int listBenchmarks();

/** "<resolved workers> worker(s)" banner line for run headers. */
std::string workerBanner(const BenchContext &ctx);

/** Figure 3's two design points for one benchmark. */
struct BaseResult
{
    RunOutput conv;                ///< detailed conventional run
    SearchCandidate constrained;   ///< best with <= 4% slowdown
    SearchCandidate unconstrained; ///< best regardless of slowdown
};

/**
 * Evaluate the (size-bound x miss-bound) grid once on the fast
 * model and detail-run both winners (the paper's "empirically
 * searching the combination space", Section 5.3). Internally a
 * JobGraph: conv-detailed -> calibrate -> grid -> select -> the two
 * detailed winner runs in parallel.
 */
BaseResult computeBase(const BenchmarkInfo &bench,
                       const BenchContext &ctx);

/** Print a figure/table banner. */
void printHeader(const std::string &title,
                 const std::string &paperRef);

/** "62%" style reduction formatting from a relative value. */
std::string fmtReduction(double relative);

} // namespace drisim::bench

#endif // DRISIM_BENCH_BENCH_COMMON_HH
