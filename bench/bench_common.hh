/**
 * @file
 * Shared plumbing for the per-figure bench binaries: default run
 * configuration, common flag parsing (--jobs), the paper's best-case
 * (miss-bound, size-bound) search evaluated once per benchmark for
 * both the performance-constrained and unconstrained cases, and
 * output helpers. The search runs as an executor JobGraph
 * (harness/executor.hh); results are identical at any --jobs value.
 */

#ifndef DRISIM_BENCH_BENCH_COMMON_HH
#define DRISIM_BENCH_BENCH_COMMON_HH

#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "farm/fragment.hh"
#include "farm/sweep_registry.hh"
#include "harness/executor.hh"
#include "harness/runner.hh"
#include "harness/sweep.hh"
#include "harness/table.hh"

namespace drisim::bench
{

/** Everything a figure bench needs. */
struct BenchContext
{
    RunConfig cfg;
    EnergyConstants constants = EnergyConstants::paper();
    SearchSpace space;
    /** The paper's performance constraint (Section 5.3). */
    double maxSlowdownPct = 4.0;
    /** DRI knobs not searched. */
    DriParams driTemplate;

    /** Worker pool shared by every sweep in this bench run; created
     *  lazily by benchExecutor() so the worker threads spawn once,
     *  not per benchmark. Copies of the context share it. */
    mutable std::shared_ptr<Executor> exec;

    /** --cores N (bench_cmp's CMP width; 0 = the bench's default). */
    unsigned cores = 0;

    /** --coherent (bench_cmp only): run the sharing workloads under
     *  MSI coherence (mem/directory.hh) instead of the
     *  multiprogrammed private-data mixes. */
    bool coherent = false;

    /** --list: print the SPEC workload names and exit. */
    bool listOnly = false;

    /**
     * --json PATH: write the bench's winner rows + wall-clock as a
     * machine-readable report (writeJsonReport()). Empty = off.
     */
    std::string jsonPath;

    /** --short: restrict to a quick workload subset (binaries that
     *  accept it; the CI smoke uses it). */
    bool shortRun = false;

    /**
     * --part PATH: stream every completed sweep unit into a
     * resumable fragment at PATH (farm/fragment.hh), written
     * record-at-a-time with atomic rename. tools/farm_runner points
     * each shard here. Empty = off.
     */
    std::string partPath;

    /**
     * Observability sinks (src/obs/) — strictly execution-only:
     * none of these enters any ConfigKey, and with all three unset
     * every output byte is identical to a build without them.
     *  - --trace PATH            Perfetto/chrome://tracing span file
     *  - --metrics PATH          interval time-series CSV
     *  - --metrics-interval N    sampling interval in instructions
     *                            (0 = obs::kDefaultMetricsInterval)
     * parseBenchArgs installs the global obs sinks on success;
     * reportFastSim() flushes them to disk.
     */
    std::string tracePath;
    std::string metricsPath;
    InstCount metricsInterval = 0;

    /** Wall-clock anchor for the JSON report (context creation). */
    std::chrono::steady_clock::time_point startTime =
        std::chrono::steady_clock::now();
};

/** The context's pool, created on first use with cfg.jobs workers. */
Executor &benchExecutor(const BenchContext &ctx);

/** Default context: Table 1 system, scaled run length. */
BenchContext defaultContext();

/**
 * Parse the flags every bench binary accepts (--jobs N, --jobs=N,
 * jobs=N, --list, --json PATH) into @p ctx. Returns false and fills
 * @p error (usage included) on anything unrecognized. After a
 * successful parse check ctx.listOnly: --list asks the binary to
 * print the available SPEC workload names (listBenchmarks()) and
 * exit instead of failing later on a typo. `--cores N` and
 * `--coherent` are accepted only when @p acceptCores is set
 * (bench_cmp) — every other binary rejects them instead of silently
 * running single-core — and `--short` only when @p acceptShort is
 * set (bench_policies).
 *
 * `--dram-banked` switches the memory system to the banked queued
 * DRAM model with default MSHR files at every cache level
 * (mem/dram.hh); without it the flat Table 1 memory is used and
 * results stay bit-identical to earlier versions.
 *
 * Fast-simulation flags (sim/ layer, accepted everywhere):
 *  - `--sample`             phase sampling (detailed windows +
 *                           functional fast-forward; approximate)
 *  - `--checkpoint-dir DIR` midpoint snapshot store (bit-exact)
 *  - `--result-cache FILE`  content-addressed result memoization
 *                           (bit-exact; shared across binaries)
 *
 * Sweep-farm flags, accepted only when @p acceptShard is set (the
 * sweep binaries; bench_table1/2 have no sweep to shard):
 *  - `--shard K/N`          run only the sweep units whose config
 *                           hash lands on 1-based shard K of N
 *                           (strict parse, farm/shard_plan.hh)
 *  - `--part PATH`          stream completed units into a resumable
 *                           fragment (farm/fragment.hh)
 */
bool parseBenchArgs(int argc, char **argv, BenchContext &ctx,
                    std::string &error, bool acceptCores = false,
                    bool acceptShort = false,
                    bool acceptShard = false);

/**
 * One stderr line per configured fast-simulation mechanism
 * ("result-cache: hits=... misses=... stores=..." and
 * "checkpoints: saves=... restores=..."); silent when neither was
 * configured. Flushes the result cache first, so a bench that was
 * killed right after its report still leaves a complete sidecar.
 * stderr keeps stdout byte-comparable across cached/uncached runs.
 */
void reportFastSim(const BenchContext &ctx);

/**
 * Write the bench's winner rows + wall-clock since context creation
 * to ctx.jsonPath. Serialized by farm::renderBenchJson — schema 2:
 * {"bench", "schema_version", "shard", "of_shards",
 * "wall_seconds", "workers", "columns", "winners"} with one winner
 * object per row, keyed by column; shard/of_shards are 0 unless
 * this process ran under --shard. The DRISIM_JSON_WALL_SECONDS
 * environment variable overrides the measured wall clock (the CI
 * farm leg pins it to compare sharded-merged against unsharded
 * output byte for byte). No-op when --json was not given; warns and
 * returns false when the file cannot be written.
 */
bool writeJsonReport(const BenchContext &ctx,
                     const std::string &benchName,
                     const std::vector<std::string> &columns,
                     const std::vector<std::vector<std::string>> &rows);

/** The registry setup describing this process's sweep (resolved CMP
 *  width, --short, final cfg). */
farm::SweepSetup sweepSetup(const BenchContext &ctx);

/**
 * Drives one binary's sweep loop through the farm layer. The binary
 * asks shouldRun(i) before computing unit i — false when another
 * shard owns the unit (--shard) or a resumed fragment already holds
 * it (--part after a kill) — and hands the unit's finished report
 * rows to unitDone(i, rows), which appends them to the fragment
 * (rename-atomic) and flushes the result cache so a later kill
 * loses at most the in-flight unit. finish() finalizes the fragment
 * and writes the --json report from all recorded rows in plan
 * order. Unsharded without --part, the driver degrades to plain
 * row bookkeeping and changes nothing.
 */
class SweepDriver
{
  public:
    /**
     * @param sweepName registry name (farm/sweep_registry.hh);
     *        the unit list/order must match the binary's loop.
     * @param jsonColumns full --json column set.
     */
    SweepDriver(const BenchContext &ctx, std::string benchName,
                const std::string &sweepName,
                std::vector<std::string> jsonColumns);

    std::size_t size() const { return units_.size(); }
    const farm::SweepUnit &unit(std::size_t i) const
    {
        return units_[i];
    }

    /** Should this process compute unit @p i now? */
    bool shouldRun(std::size_t i) const;

    /** Hand over unit @p i's finished report rows. */
    void unitDone(std::size_t i,
                  std::vector<std::vector<std::string>> rows);

    /** Units adopted from a resumed fragment (skipped this run). */
    std::size_t resumedUnits() const;

    /** Finalize the fragment and write the --json report. */
    void finish();

  private:
    const BenchContext &ctx_;
    std::string benchName_;
    std::vector<std::string> columns_;
    std::vector<farm::SweepUnit> units_;
    std::unique_ptr<farm::FragmentWriter> writer_;
    /** Rows per completed unit, keyed by plan index. */
    std::map<std::uint64_t, std::vector<std::vector<std::string>>>
        rows_;
    /** When each in-flight unit started (set by shouldRun(i) ==
     *  true, consumed by unitDone(i) for the fragment's per-unit
     *  wall seconds and the "farm" trace span). */
    mutable std::map<std::uint64_t,
                     std::chrono::steady_clock::time_point>
        unitStart_;
};

/** Print the SPEC workload names with their paper class; returns 0
 *  (the --list exit status). */
int listBenchmarks();

/** "<resolved workers> worker(s)" banner line for run headers. */
std::string workerBanner(const BenchContext &ctx);

/** Figure 3's two design points for one benchmark. */
struct BaseResult
{
    RunOutput conv;                ///< detailed conventional run
    SearchCandidate constrained;   ///< best with <= 4% slowdown
    SearchCandidate unconstrained; ///< best regardless of slowdown
};

/**
 * Evaluate the (size-bound x miss-bound) grid once on the fast
 * model and detail-run both winners (the paper's "empirically
 * searching the combination space", Section 5.3). Internally a
 * JobGraph: conv-detailed -> calibrate -> grid -> select -> the two
 * detailed winner runs in parallel.
 */
BaseResult computeBase(const BenchmarkInfo &bench,
                       const BenchContext &ctx);

/** Print a figure/table banner. */
void printHeader(const std::string &title,
                 const std::string &paperRef);

/** "62%" style reduction formatting from a relative value. */
std::string fmtReduction(double relative);

} // namespace drisim::bench

#endif // DRISIM_BENCH_BENCH_COMMON_HH
