/**
 * @file
 * Multiprogrammed CMP study — the scale-out scenario the paper's
 * single-core evaluation leaves open: N cores with private DRI L1
 * i-caches competing for one shared resizable L2 (after Safayenikoo
 * et al. on CMP last-level-cache leakage and Bai et al. on
 * multi-level leakage trade-offs; see docs/REPRODUCTION.md,
 * Multiprogrammed CMP study).
 *
 * For each benchmark mix the (per-core L1 miss-bound x shared L2
 * size-bound) grid is searched under the paper's 4% slowdown
 * constraint applied to *system* time, every cell a detailed
 * CmpSystem run dispatched as an independent executor job
 * (byte-identical results at any --jobs; locked by golden tests).
 * The winner's energy is reported split into per-core l1i[k] rows
 * plus shared l2/mem rows whose sums define the system total.
 *
 * With --coherent the study switches from multiprogrammed private
 * data to the class-4 sharing workloads under the MSI protocol
 * (mem/directory.hh): every core touches one shared window, stores
 * invalidate remote copies, and the leakage policies pay
 * coherence-induced wakes (drowsy) and refetches (decay/DRI) that
 * the 2001 single-core paper never modelled.
 *
 *   ./bench_cmp [--cores N] [--jobs N] [--dram-banked] [--coherent]
 *               [--shard K/N] [--part PATH] [--json PATH] [--list]
 */

#include <iostream>

#include "bench_common.hh"
#include "harness/multilevel.hh"
#include "util/str.hh"

using namespace drisim;
using namespace drisim::bench;

namespace
{

/**
 * The --coherent study: sharing mixes under MSI, a conventional
 * baseline against a leakage-managed build whose L1Is alternate
 * drowsy and decay, so both coherence-induced wakes and refetches
 * appear in one run.
 */
int
runCoherentStudy(BenchContext &ctx, unsigned n)
{
    printHeader("Coherent CMP: MSI over private L1s, sharing "
                "workloads",
                "extension of Section 5; coherence costs the 2001 "
                "paper never modelled (docs/DESIGN.md)");
    std::cout << "cores: " << n << ", run length: "
              << ctx.cfg.maxInstrs
              << " instructions per core, drowsy/decay L1I "
                 "alternation, "
              << workerBanner(ctx) << "\n";

    const MultiLevelConstants constants =
        MultiLevelConstants::paper();

    const std::vector<std::vector<std::string>> mixes =
        farm::cmpCoherentMixes(n);

    const std::vector<std::string> cols{
        "mix",       "sys-cycles", "inval",   "downgr",
        "coh-wb",    "msg-cyc",    "dir-ev",  "wakes",
        "refetches", "rel-ED"};
    Table summary(cols);
    std::vector<std::string> jsonCols = cols;
    jsonCols.push_back("config_hash");
    SweepDriver drv(ctx, "bench_cmp_coherent", "cmp_coherent",
                    jsonCols);

    for (std::size_t m = 0; m < mixes.size(); ++m) {
        if (!drv.shouldRun(m))
            continue;
        const std::vector<std::string> &benches = mixes[m];
        const std::string mix = cmpMixName(benches);

        CmpConfig conv_cmp;
        conv_cmp.cores = n;
        conv_cmp.coherence.enabled = true;
        for (const std::string &b : benches) {
            CmpCoreConfig core;
            core.bench = b;
            conv_cmp.coreConfigs.push_back(std::move(core));
        }

        CmpConfig pol_cmp = conv_cmp;
        for (unsigned k = 0; k < n; ++k) {
            CmpCoreConfig &core = pol_cmp.coreConfigs[k];
            core.dri = true;
            core.policyKind = k % 2 == 0 ? PolicyKind::Drowsy
                                         : PolicyKind::Decay;
        }

        const CmpRunOutput conv =
            runCmp(ctx.cfg, conv_cmp, benches[0]);
        const CmpRunOutput pol =
            runCmp(ctx.cfg, pol_cmp, benches[0]);
        const CmpComparison cc =
            compareCmp(constants, toCmpMeasurement(conv),
                       toCmpMeasurement(pol));

        std::uint64_t wakes = 0;
        std::uint64_t refetches = 0;
        for (const CmpCoreOutput &c : pol.cores) {
            wakes += c.coherenceWakes;
            refetches += c.coherenceRefetches;
        }

        std::vector<std::string> row{
            mix,
            std::to_string(pol.systemCycles),
            std::to_string(pol.coherenceInvalidations),
            std::to_string(pol.coherenceDowngrades),
            std::to_string(pol.coherenceWritebacks),
            std::to_string(pol.coherenceMsgCycles),
            std::to_string(pol.directoryEvictions),
            std::to_string(wakes),
            std::to_string(refetches),
            fmtDouble(cc.relativeEnergyDelay(), 3)};
        summary.addRow(row);
        row.push_back(
            runKeyCmp(ctx.cfg, pol_cmp, benches[0]).hashHex());
        drv.unitDone(m, {std::move(row)});

        std::cout << "\n" << mix
                  << ": per-core coherence attribution "
                     "(leakage-managed run)\n";
        Table t({"core", "benchmark", "policy", "inval-recv",
                 "inval-caused", "downgr", "coh-wb", "msg-cyc",
                 "wakes", "refetches"});
        for (std::size_t k = 0; k < pol.cores.size(); ++k) {
            const CmpCoreOutput &c = pol.cores[k];
            t.addRow({std::to_string(k), c.bench,
                      k % 2 == 0 ? "drowsy" : "decay",
                      std::to_string(
                          c.coherenceInvalidationsReceived),
                      std::to_string(c.coherenceInvalidationsCaused),
                      std::to_string(c.coherenceDowngrades),
                      std::to_string(c.coherenceWritebacks),
                      std::to_string(c.coherenceMsgCycles),
                      std::to_string(c.coherenceWakes),
                      std::to_string(c.coherenceRefetches)});
        }
        t.print(std::cout);
        std::cerr << "  [cmp] " << mix << " done\n";
    }

    std::cout << "\n-- coherent sharing mixes (leakage-managed vs "
                 "conventional, both under MSI) --\n";
    summary.print(std::cout);
    drv.finish();
    reportFastSim(ctx);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchContext ctx = defaultContext();
    std::string err;
    if (!parseBenchArgs(argc, argv, ctx, err,
                        /*acceptCores=*/true, /*acceptShort=*/false,
                        /*acceptShard=*/true)) {
        std::cerr << err << "\n";
        return 2;
    }
    if (ctx.listOnly)
        return listBenchmarks();
    const unsigned n = ctx.cores > 0 ? ctx.cores : 2;
    if (ctx.coherent)
        return runCoherentStudy(ctx, n);

    printHeader("CMP scale-out: private DRI L1Is over a shared "
                "resizable L2",
                "extension of Section 5 after Safayenikoo et al. "
                "and Bai et al. (PAPERS.md)");
    std::cout << "grid: (per-core L1 miss-bound x shared L2 "
                 "size-bound), <=4% system slowdown, system "
                 "energy-delay objective\n\n";
    std::cout << "cores: " << n << ", run length: "
              << ctx.cfg.maxInstrs
              << " instructions per core, sense interval "
              << ctx.driTemplate.senseInterval << ", "
              << workerBanner(ctx) << "\n";

    const MultiLevelConstants constants =
        MultiLevelConstants::paper();
    const CmpSpace space;
    DriParams l2Template = HierarchyParams::defaultL2DriParams();
    l2Template.senseInterval = ctx.driTemplate.senseInterval;

    const std::vector<std::string> cols{
        "mix",    "L1-mb",    "L2-bound", "L2-mb",
        "rel-ED", "L1-sizes", "L2-size",  "slowdown"};
    Table summary(cols);
    // JSON rows additionally carry a canonical config hash. CMP
    // runs are not result-cached (multi-stream), so this hash is a
    // stable row identity rather than a cache join key.
    std::vector<std::string> jsonCols = cols;
    jsonCols.push_back("config_hash");
    // Under --dram-banked the rows additionally report the
    // non-blocking memory system's activity from the conventional
    // baseline run: MSHR coalescing/occupancy, DRAM row-buffer and
    // queue behaviour (per-bank row hits "h0|h1|..."), and the
    // per-core L2 demand-miss latency ("c0|c1|...") whose
    // load-dependence the acceptance study checks.
    const bool banked = ctx.cfg.hier.dram.banked;
    if (banked)
        for (const char *c :
             {"mshr_coalesced", "mshr_full_stalls", "mshr_peak",
              "dram_row_hits", "dram_row_misses", "dram_queue_full",
              "dram_bank_row_hits", "core_miss_latency"})
            jsonCols.push_back(c);
    SweepDriver drv(ctx, "bench_cmp", "cmp", jsonCols);

    struct PerMix
    {
        std::string name;
        CmpSearchResult sr;
    };
    std::vector<PerMix> results;

    double sum_ed = 0.0;
    for (unsigned m = 0; m < farm::kDefaultCmpMixes; ++m) {
        if (!drv.shouldRun(m))
            continue;
        const std::vector<std::string> benches =
            farm::cmpMixBenches(m, n);
        const std::string mix = cmpMixName(benches);

        CmpConfig cmp;
        cmp.cores = n;
        for (const std::string &b : benches) {
            CmpCoreConfig core;
            core.bench = b;
            cmp.coreConfigs.push_back(std::move(core));
        }

        const CmpRunOutput conv =
            runCmp(ctx.cfg, cmp, benches[0]);
        const CmpSearchResult sr = searchCmp(
            ctx.cfg, cmp, benches[0], ctx.driTemplate, l2Template,
            space, constants, ctx.maxSlowdownPct, conv,
            &benchExecutor(ctx));

        if (sr.sharedFactorSweep)
            std::cout << "note: " << mix
                      << " swept one shared miss-bound factor "
                         "(per-core cross product over the cell "
                         "cap)\n";
        std::vector<std::string> row = cmpRowCells(mix, sr.best);
        summary.addRow(row);
        {
            sim::ConfigKey k;
            k.add("mode", "cmp");
            k.add("mix", mix);
            k.add("cores", static_cast<std::uint64_t>(n));
            k.add("instrs", ctx.cfg.maxInstrs);
            k.add("l2.size_bound", sr.best.l2.sizeBoundBytes);
            k.add("l2.miss_bound", sr.best.l2.missBound);
            for (std::size_t c = 0; c < sr.best.l1.size(); ++c)
                k.add("l1." + std::to_string(c) + ".miss_bound",
                      sr.best.l1[c].missBound);
            row.push_back(k.hashHex());
        }
        if (banked) {
            row.push_back(std::to_string(conv.mshrCoalesced));
            row.push_back(std::to_string(conv.mshrFullStalls));
            row.push_back(std::to_string(conv.mshrPeakOccupancy));
            row.push_back(std::to_string(conv.dramRowHits));
            row.push_back(std::to_string(conv.dramRowMisses));
            row.push_back(
                std::to_string(conv.dramQueueFullEvents));
            std::string banks;
            for (std::size_t b = 0;
                 b < conv.dramBankRowHits.size(); ++b) {
                if (b)
                    banks += "|";
                banks += std::to_string(conv.dramBankRowHits[b]);
            }
            row.push_back(banks);
            std::string lat;
            for (std::size_t c = 0; c < conv.cores.size(); ++c) {
                if (c)
                    lat += "|";
                lat += std::to_string(
                    conv.cores[c].l2MissLatencyCycles);
            }
            row.push_back(lat);
        }
        drv.unitDone(m, {std::move(row)});
        sum_ed += sr.best.cmp.relativeEnergyDelay();
        results.push_back({mix, sr});
        std::cerr << "  [cmp] " << mix << " done\n";
    }

    std::cout << "\n-- best configurations (<=4% system slowdown) "
                 "--\n";
    summary.print(std::cout);

    for (const PerMix &r : results) {
        std::cout << "\n" << r.name
                  << ": conventional baseline per core\n";
        Table t({"core", "benchmark", "IPC", "L1I-miss",
                 "L2-share", "L2-misses", "contention"});
        const CmpRunOutput &conv = r.sr.convDetailed;
        for (std::size_t k = 0; k < conv.cores.size(); ++k) {
            const CmpCoreOutput &c = conv.cores[k];
            const double share =
                conv.l2Accesses == 0
                    ? 0.0
                    : static_cast<double>(c.l2Accesses) /
                          static_cast<double>(conv.l2Accesses);
            t.addRow({std::to_string(k), c.bench,
                      fmtDouble(c.ipc, 2),
                      fmtDouble(100.0 * c.meas.missRate(), 3) + "%",
                      fmtDouble(100.0 * share, 1) + "%",
                      std::to_string(c.l2Misses),
                      std::to_string(c.l2ContentionEvents)});
        }
        t.print(std::cout);

        std::cout << "\n" << r.name
                  << ": winner energy (nJ; per-core l1i[k] rows + "
                     "shared l2/mem rows sum to the system total)\n";
        Table e({"level", "leakage", "dynamic", "total"});
        addHierarchyEnergyRows(e, r.sr.best.cmp.dri);
        e.print(std::cout);
    }

    std::cout << "\n== headline ==\n";
    std::cout << "mean system energy-delay reduction over "
              << results.size() << " mixes: "
              << fmtReduction(
                     sum_ed /
                     static_cast<double>(
                         results.empty() ? 1 : results.size()))
              << "\n";
    drv.finish();
    reportFastSim(ctx);
    return 0;
}
