/**
 * @file
 * Figure 3 — "Base energy-delay and average cache size
 * measurements": for every benchmark, the best-case DRI i-cache
 * energy-delay (normalized to the conventional i-cache), split into
 * its leakage and extra-dynamic components, plus the average active
 * cache size — for both the performance-constrained (<= 4%
 * slowdown) and performance-unconstrained design points.
 */

#include <iostream>

#include "bench_common.hh"
#include "util/str.hh"

using namespace drisim;
using namespace drisim::bench;

namespace
{

std::vector<std::string>
rowCells(const std::string &name, int cls,
         const SearchCandidate &cand)
{
    const ComparisonResult &c = cand.cmp;
    return {name, std::to_string(cls),
            bytesToString(cand.dri.sizeBoundBytes),
            std::to_string(cand.dri.missBound),
            fmtDouble(c.relativeEnergyDelay(), 3),
            fmtDouble(c.relativeEdLeakage(), 3),
            fmtDouble(c.relativeEdDynamic(), 3),
            fmtDouble(c.averageSizeFraction(), 3),
            fmtDouble(c.slowdownPercent(), 2) + "%",
            fmtPercent(c.driRun.missRate(), 2)};
}

} // namespace

int
main(int argc, char **argv)
{
    BenchContext ctx = defaultContext();
    std::string err;
    if (!parseBenchArgs(argc, argv, ctx, err,
                        /*acceptCores=*/false, /*acceptShort=*/false,
                        /*acceptShard=*/true)) {
        std::cerr << err << "\n";
        return 2;
    }
    if (ctx.listOnly)
        return listBenchmarks();

    printHeader("Figure 3: base energy-delay and average cache size",
                "Section 5.3, Figure 3 (64K direct-mapped DRI)");
    std::cout << "C = performance-constrained (<=4% slowdown), "
                 "U = unconstrained\n\n";

    std::cout << "run length: " << ctx.cfg.maxInstrs
              << " instructions, sense interval "
              << ctx.driTemplate.senseInterval << ", "
              << workerBanner(ctx) << "\n";

    const std::vector<std::string> cols{
        "benchmark", "class",  "size-bound", "miss-bound",
        "rel-ED",    "ED-leak", "ED-dyn",    "avg-size",
        "slowdown",  "miss-rate"};
    Table tc(cols);
    Table tu = tc;
    // JSON rows additionally carry the winner's canonical config
    // hash (harness/runner.hh runKeyDri), joinable with the
    // --result-cache sidecar and the checkpoint store.
    std::vector<std::string> jsonCols = cols;
    jsonCols.push_back("config_hash");
    SweepDriver drv(ctx, "bench_figure3", "figure3", jsonCols);

    double sum_ed_c = 0.0;
    double sum_ed_u = 0.0;
    double sum_size_c = 0.0;
    std::vector<std::pair<std::string, double>> bars_c;
    std::vector<std::pair<std::string, double>> bars_size;

    const auto &suite = specSuite();
    for (std::size_t i = 0; i < suite.size(); ++i) {
        const auto &b = suite[i];
        if (!drv.shouldRun(i))
            continue;
        const BaseResult base = computeBase(b, ctx);
        std::vector<std::string> rc =
            rowCells(b.name, b.benchClass, base.constrained);
        tc.addRow(rc);
        rc.push_back(
            runKeyDri(b, ctx.cfg, base.constrained.dri).hashHex());
        drv.unitDone(i, {rc});
        tu.addRow(rowCells(b.name, b.benchClass,
                           base.unconstrained));
        sum_ed_c += base.constrained.cmp.relativeEnergyDelay();
        sum_ed_u += base.unconstrained.cmp.relativeEnergyDelay();
        sum_size_c += base.constrained.cmp.averageSizeFraction();
        bars_c.emplace_back(
            b.name, base.constrained.cmp.relativeEnergyDelay());
        bars_size.emplace_back(
            b.name, base.constrained.cmp.averageSizeFraction());
        std::cerr << "  [figure3] " << b.name << " done\n";
    }

    std::cout << "\n-- performance-constrained (left bars) --\n";
    tc.print(std::cout);
    std::cout << "\n-- performance-unconstrained (right bars) --\n";
    tu.print(std::cout);

    // Means cover the units this process ran (all of them
    // unsharded; this shard's subset under --shard).
    const double n = static_cast<double>(
        bars_c.empty() ? 1 : bars_c.size());
    std::cout << "\nrelative energy-delay (constrained), 0..1:\n";
    for (const auto &[name, v] : bars_c)
        std::cout << "  " << name << std::string(10 - name.size(), ' ')
                  << "|" << asciiBar(v) << "| "
                  << fmtDouble(v, 3) << "\n";
    std::cout << "\naverage cache size (constrained), 0..1:\n";
    for (const auto &[name, v] : bars_size)
        std::cout << "  " << name << std::string(10 - name.size(), ' ')
                  << "|" << asciiBar(v) << "| "
                  << fmtDouble(v, 3) << "\n";

    std::cout << "\n== headline ==\n";
    std::cout << "mean energy-delay reduction, constrained:   "
              << fmtReduction(sum_ed_c / n) << "  (paper: ~62%)\n";
    std::cout << "mean energy-delay reduction, unconstrained: "
              << fmtReduction(sum_ed_u / n) << "  (paper: ~67%)\n";
    std::cout << "mean cache size reduction, constrained:     "
              << fmtReduction(sum_size_c / n) << "  (paper: ~62%)\n";
    drv.finish();
    reportFastSim(ctx);
    return 0;
}
