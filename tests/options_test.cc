/**
 * @file
 * Option-parser tests.
 */

#include <gtest/gtest.h>

#include "config/options.hh"

namespace drisim
{
namespace
{

bool
parse(std::initializer_list<const char *> args, Options &out,
      std::string &err)
{
    std::vector<const char *> argv{"prog"};
    argv.insert(argv.end(), args.begin(), args.end());
    return parseOptions(static_cast<int>(argv.size()), argv.data(),
                        out, err);
}

TEST(Options, Defaults)
{
    Options o;
    std::string err;
    ASSERT_TRUE(parse({}, o, err));
    EXPECT_EQ(o.benchmark, "compress");
    EXPECT_EQ(o.dri.sizeBytes, 64u * 1024);
    EXPECT_TRUE(o.unknown.empty());
}

TEST(Options, ParsesRunAndBenchmark)
{
    Options o;
    std::string err;
    ASSERT_TRUE(
        parse({"instrs=500000", "benchmark=gcc"}, o, err));
    EXPECT_EQ(o.run.maxInstrs, 500000u);
    EXPECT_EQ(o.benchmark, "gcc");
}

TEST(Options, ParsesGeometryWithSuffixes)
{
    Options o;
    std::string err;
    ASSERT_TRUE(parse({"l1i.size=128K", "l1i.assoc=4",
                       "l1i.block=64"},
                      o, err));
    EXPECT_EQ(o.run.hier.l1i.sizeBytes, 128u * 1024);
    EXPECT_EQ(o.dri.sizeBytes, 128u * 1024);
    EXPECT_EQ(o.dri.assoc, 4u);
    EXPECT_EQ(o.dri.blockBytes, 64u);
    EXPECT_EQ(o.run.core.fetchBlockBytes, 64u);
}

TEST(Options, ParsesDriKnobs)
{
    Options o;
    std::string err;
    ASSERT_TRUE(parse({"dri.size_bound=2K", "dri.miss_bound=123",
                       "dri.interval=50000", "dri.divisibility=4",
                       "dri.throttle_hold=7", "dri.adaptive=0"},
                      o, err));
    EXPECT_EQ(o.dri.sizeBoundBytes, 2048u);
    EXPECT_EQ(o.dri.missBound, 123u);
    EXPECT_EQ(o.dri.senseInterval, 50000u);
    EXPECT_EQ(o.dri.divisibility, 4u);
    EXPECT_EQ(o.dri.throttleHoldIntervals, 7u);
    EXPECT_FALSE(o.dri.adaptive);
}

TEST(Options, CollectsUnknownKeys)
{
    Options o;
    std::string err;
    ASSERT_TRUE(parse({"nonsense=1", "instrs=10"}, o, err));
    ASSERT_EQ(o.unknown.size(), 1u);
    EXPECT_EQ(o.unknown[0], "nonsense");
    EXPECT_EQ(o.run.maxInstrs, 10u);
}

TEST(Options, RejectsMalformedTokens)
{
    Options o;
    std::string err;
    EXPECT_FALSE(parse({"no_equals"}, o, err));
    EXPECT_FALSE(err.empty());
    EXPECT_FALSE(parse({"=value"}, o, err));
}

TEST(Options, RejectsBadValues)
{
    Options o;
    std::string err;
    EXPECT_FALSE(parse({"instrs=abc"}, o, err));
    EXPECT_FALSE(parse({"instrs=0"}, o, err));
    EXPECT_FALSE(parse({"l1i.size=banana"}, o, err));
    EXPECT_FALSE(parse({"dri.divisibility=1"}, o, err));
    EXPECT_FALSE(parse({"dri.adaptive=maybe"}, o, err));
}

TEST(Options, ParsesL2GeometryAndDriKnobs)
{
    Options o;
    std::string err;
    ASSERT_TRUE(parse({"l2.size=512K", "l2.assoc=8", "l2.block=128",
                       "l2.dri=1", "l2.size_bound=32K",
                       "l2.miss_bound=40", "l2.interval=200000"},
                      o, err));
    EXPECT_EQ(o.run.hier.l2.sizeBytes, 512u * 1024);
    EXPECT_EQ(o.run.hier.l2.assoc, 8u);
    EXPECT_EQ(o.run.hier.l2.blockBytes, 128u);
    EXPECT_TRUE(o.run.hier.l2Dri);
    EXPECT_EQ(o.run.hier.l2DriParams.sizeBoundBytes, 32u * 1024);
    EXPECT_EQ(o.run.hier.l2DriParams.missBound, 40u);
    EXPECT_EQ(o.run.hier.l2DriParams.senseInterval, 200000u);
    EXPECT_TRUE(o.unknown.empty());
}

TEST(Options, L2DriDefaultsOff)
{
    Options o;
    std::string err;
    ASSERT_TRUE(parse({}, o, err));
    EXPECT_FALSE(o.run.hier.l2Dri);
    ASSERT_TRUE(parse({"l2.dri=0"}, o, err));
    EXPECT_FALSE(o.run.hier.l2Dri);
}

TEST(Options, RejectsBadL2Values)
{
    Options o;
    std::string err;
    EXPECT_FALSE(parse({"l2.size=banana"}, o, err));
    EXPECT_FALSE(parse({"l2.dri=maybe"}, o, err));
    EXPECT_FALSE(parse({"l2.interval=0"}, o, err));
    EXPECT_FALSE(parse({"l2.size_bound=0"}, o, err));
}

TEST(Options, UsageMentionsEveryKey)
{
    const std::string u = optionsUsage();
    for (const char *key :
         {"instrs", "benchmark", "l1i.size", "l1i.assoc",
          "l1i.block", "dri.size_bound", "dri.miss_bound",
          "dri.interval", "dri.divisibility", "dri.throttle_hold",
          "dri.adaptive", "l2.size", "l2.assoc", "l2.block",
          "l2.dri", "l2.size_bound", "l2.miss_bound",
          "l2.interval"})
        EXPECT_NE(u.find(key), std::string::npos) << key;
}

} // namespace
} // namespace drisim
