/**
 * @file
 * Option-parser tests, including the semantic-key guard: every key
 * optionsUsage() advertises either demonstrably changes a canonical
 * run key (so the result cache and checkpoint store can never serve
 * stale artifacts across it) or is explicitly execution-only.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>

#include "config/options.hh"
#include "harness/runner.hh"
#include "workload/spec_suite.hh"

namespace drisim
{
namespace
{

bool
parse(std::initializer_list<const char *> args, Options &out,
      std::string &err)
{
    std::vector<const char *> argv{"prog"};
    argv.insert(argv.end(), args.begin(), args.end());
    return parseOptions(static_cast<int>(argv.size()), argv.data(),
                        out, err);
}

TEST(Options, Defaults)
{
    Options o;
    std::string err;
    ASSERT_TRUE(parse({}, o, err));
    EXPECT_EQ(o.benchmark, "compress");
    EXPECT_EQ(o.dri.sizeBytes, 64u * 1024);
    EXPECT_TRUE(o.unknown.empty());
}

TEST(Options, ParsesRunAndBenchmark)
{
    Options o;
    std::string err;
    ASSERT_TRUE(
        parse({"instrs=500000", "benchmark=gcc"}, o, err));
    EXPECT_EQ(o.run.maxInstrs, 500000u);
    EXPECT_EQ(o.benchmark, "gcc");
}

TEST(Options, ParsesGeometryWithSuffixes)
{
    Options o;
    std::string err;
    ASSERT_TRUE(parse({"l1i.size=128K", "l1i.assoc=4",
                       "l1i.block=64"},
                      o, err));
    EXPECT_EQ(o.run.hier.l1i.sizeBytes, 128u * 1024);
    EXPECT_EQ(o.dri.sizeBytes, 128u * 1024);
    EXPECT_EQ(o.dri.assoc, 4u);
    EXPECT_EQ(o.dri.blockBytes, 64u);
    EXPECT_EQ(o.run.core.fetchBlockBytes, 64u);
}

TEST(Options, ParsesDriKnobs)
{
    Options o;
    std::string err;
    ASSERT_TRUE(parse({"dri.size_bound=2K", "dri.miss_bound=123",
                       "dri.interval=50000", "dri.divisibility=4",
                       "dri.throttle_hold=7", "dri.adaptive=0"},
                      o, err));
    EXPECT_EQ(o.dri.sizeBoundBytes, 2048u);
    EXPECT_EQ(o.dri.missBound, 123u);
    EXPECT_EQ(o.dri.senseInterval, 50000u);
    EXPECT_EQ(o.dri.divisibility, 4u);
    EXPECT_EQ(o.dri.throttleHoldIntervals, 7u);
    EXPECT_FALSE(o.dri.adaptive);
}

TEST(Options, CollectsUnknownKeys)
{
    Options o;
    std::string err;
    ASSERT_TRUE(parse({"nonsense=1", "instrs=10"}, o, err));
    ASSERT_EQ(o.unknown.size(), 1u);
    EXPECT_EQ(o.unknown[0], "nonsense");
    EXPECT_EQ(o.run.maxInstrs, 10u);
}

TEST(Options, RejectsMalformedTokens)
{
    Options o;
    std::string err;
    EXPECT_FALSE(parse({"no_equals"}, o, err));
    EXPECT_FALSE(err.empty());
    EXPECT_FALSE(parse({"=value"}, o, err));
}

TEST(Options, RejectsBadValues)
{
    Options o;
    std::string err;
    EXPECT_FALSE(parse({"instrs=abc"}, o, err));
    EXPECT_FALSE(parse({"instrs=0"}, o, err));
    EXPECT_FALSE(parse({"l1i.size=banana"}, o, err));
    EXPECT_FALSE(parse({"dri.divisibility=1"}, o, err));
    EXPECT_FALSE(parse({"dri.adaptive=maybe"}, o, err));
}

TEST(Options, ParsesFastSimKeys)
{
    Options o;
    std::string err;
    ASSERT_TRUE(parse({"sample=1", "sample.window=5000",
                       "sample.period=40000",
                       "checkpoint_dir=/tmp/ck",
                       "result_cache=/tmp/rc.json"},
                      o, err));
    EXPECT_TRUE(o.run.sampling.enabled);
    EXPECT_EQ(o.run.sampling.detailedWindow, 5000u);
    EXPECT_EQ(o.run.sampling.period, 40000u);
    EXPECT_EQ(o.run.checkpointDir, "/tmp/ck");
    ASSERT_NE(o.run.resultCache, nullptr);
    EXPECT_EQ(o.run.resultCache->path(), "/tmp/rc.json");
}

TEST(Options, FastSimDefaultsOff)
{
    Options o;
    std::string err;
    ASSERT_TRUE(parse({"instrs=10"}, o, err));
    EXPECT_FALSE(o.run.sampling.enabled);
    EXPECT_TRUE(o.run.checkpointDir.empty());
    EXPECT_EQ(o.run.resultCache, nullptr);
}

TEST(Options, RejectsBadFastSimValues)
{
    Options o;
    std::string err;
    EXPECT_FALSE(parse({"sample=maybe"}, o, err));
    EXPECT_FALSE(parse({"sample.window=0"}, o, err));
    EXPECT_FALSE(parse({"sample.period=-1"}, o, err));
    EXPECT_FALSE(parse({"checkpoint_dir="}, o, err));
    EXPECT_FALSE(parse({"result_cache="}, o, err));
}

TEST(Options, ParsesObservabilityKeys)
{
    Options o;
    std::string err;
    ASSERT_TRUE(parse({"trace=/tmp/t.json", "metrics=/tmp/m.csv",
                       "metrics.interval=50000"},
                      o, err));
    EXPECT_EQ(o.tracePath, "/tmp/t.json");
    EXPECT_EQ(o.metricsPath, "/tmp/m.csv");
    EXPECT_EQ(o.metricsInterval, 50000u);
    // Defaults: both sinks off, interval 0 (= library default).
    Options d;
    ASSERT_TRUE(parse({}, d, err));
    EXPECT_TRUE(d.tracePath.empty());
    EXPECT_TRUE(d.metricsPath.empty());
    EXPECT_EQ(d.metricsInterval, 0u);
    EXPECT_FALSE(parse({"trace="}, o, err));
    EXPECT_FALSE(parse({"metrics="}, o, err));
    EXPECT_FALSE(parse({"metrics.interval=0"}, o, err));
    EXPECT_FALSE(parse({"metrics.interval=-1"}, o, err));
}

TEST(Options, ParsesL2GeometryAndDriKnobs)
{
    Options o;
    std::string err;
    ASSERT_TRUE(parse({"l2.size=512K", "l2.assoc=8", "l2.block=128",
                       "l2.dri=1", "l2.size_bound=32K",
                       "l2.miss_bound=40", "l2.interval=200000"},
                      o, err));
    EXPECT_EQ(o.run.hier.l2.sizeBytes, 512u * 1024);
    EXPECT_EQ(o.run.hier.l2.assoc, 8u);
    EXPECT_EQ(o.run.hier.l2.blockBytes, 128u);
    EXPECT_TRUE(o.run.hier.l2Dri);
    EXPECT_EQ(o.run.hier.l2DriParams.sizeBoundBytes, 32u * 1024);
    EXPECT_EQ(o.run.hier.l2DriParams.missBound, 40u);
    EXPECT_EQ(o.run.hier.l2DriParams.senseInterval, 200000u);
    EXPECT_TRUE(o.unknown.empty());
}

TEST(Options, L2DriDefaultsOff)
{
    Options o;
    std::string err;
    ASSERT_TRUE(parse({}, o, err));
    EXPECT_FALSE(o.run.hier.l2Dri);
    ASSERT_TRUE(parse({"l2.dri=0"}, o, err));
    EXPECT_FALSE(o.run.hier.l2Dri);
}

TEST(Options, RejectsBadL2Values)
{
    Options o;
    std::string err;
    EXPECT_FALSE(parse({"l2.size=banana"}, o, err));
    EXPECT_FALSE(parse({"l2.dri=maybe"}, o, err));
    EXPECT_FALSE(parse({"l2.interval=0"}, o, err));
    EXPECT_FALSE(parse({"l2.size_bound=0"}, o, err));
}

TEST(Options, UsageMentionsEveryKey)
{
    const std::string u = optionsUsage();
    for (const char *key :
         {"instrs", "benchmark", "l1i.size", "l1i.assoc",
          "l1i.block", "dri.size_bound", "dri.miss_bound",
          "dri.interval", "dri.divisibility", "dri.throttle_hold",
          "dri.adaptive", "l2.size", "l2.assoc", "l2.block",
          "l2.dri", "l2.size_bound", "l2.miss_bound",
          "l2.interval", "cores", "coreK.bench", "coreK.dri",
          "sample", "sample.window", "sample.period",
          "checkpoint_dir", "result_cache", "trace", "metrics",
          "metrics.interval", "l1.mshrs", "l2.mshrs",
          "dram.banked", "dram.banks", "dram.row_hit",
          "dram.row_miss", "dram.queue"})
        EXPECT_NE(u.find(key), std::string::npos) << key;
}

TEST(Options, ParsesMemorySystemKeys)
{
    Options o;
    std::string err;
    ASSERT_TRUE(parse({"l1.mshrs=4", "l2.mshrs=8", "dram.banked=1",
                       "dram.banks=16", "dram.row_hit=30",
                       "dram.row_miss=90", "dram.queue=4"},
                      o, err));
    // l1.mshrs reaches both private L1s and the DRI template.
    EXPECT_EQ(o.run.hier.l1i.mshrs, 4u);
    EXPECT_EQ(o.run.hier.l1d.mshrs, 4u);
    EXPECT_EQ(o.dri.mshrs, 4u);
    EXPECT_EQ(o.run.hier.l2.mshrs, 8u);
    EXPECT_TRUE(o.run.hier.dram.banked);
    EXPECT_EQ(o.run.hier.dram.banks, 16u);
    EXPECT_EQ(o.run.hier.dram.rowHitLatency, 30u);
    EXPECT_EQ(o.run.hier.dram.rowMissLatency, 90u);
    EXPECT_EQ(o.run.hier.dram.queueDepth, 4u);
    EXPECT_TRUE(o.unknown.empty());
}

TEST(Options, MemorySystemDefaultsToBlockingFlat)
{
    Options o;
    std::string err;
    ASSERT_TRUE(parse({}, o, err));
    EXPECT_EQ(o.run.hier.l1i.mshrs, 0u);
    EXPECT_EQ(o.run.hier.l1d.mshrs, 0u);
    EXPECT_EQ(o.run.hier.l2.mshrs, 0u);
    EXPECT_EQ(o.dri.mshrs, 0u);
    EXPECT_FALSE(o.run.hier.dram.banked);
}

TEST(Options, RejectsBadMemorySystemValues)
{
    Options o;
    std::string err;
    EXPECT_FALSE(parse({"l1.mshrs=-1"}, o, err));
    EXPECT_FALSE(parse({"l1.mshrs=257"}, o, err));
    EXPECT_FALSE(parse({"l2.mshrs=banana"}, o, err));
    EXPECT_FALSE(parse({"dram.banked=maybe"}, o, err));
    EXPECT_FALSE(parse({"dram.banks=0"}, o, err));
    EXPECT_FALSE(parse({"dram.banks=65"}, o, err));
    EXPECT_FALSE(parse({"dram.row_hit=0"}, o, err));
    EXPECT_FALSE(parse({"dram.row_miss=-1"}, o, err));
    EXPECT_FALSE(parse({"dram.queue=0"}, o, err));
    EXPECT_FALSE(parse({"dram.queue=1025"}, o, err));
    // MSHRs may be disabled explicitly.
    EXPECT_TRUE(parse({"l1.mshrs=0", "l2.mshrs=0"}, o, err));
}

/** Combined canonical form of every single-core run-key flavour:
 *  a knob is "semantic" iff changing it changes this string. */
std::string
canonicalOf(const Options &o)
{
    const BenchmarkInfo &b = findBenchmark(o.benchmark);
    return runKeyConventional(b, o.run).canonical() + "|" +
           runKeyDri(b, o.run, o.dri).canonical() + "|" +
           runKeyPolicy(b, o.run, o.policyConfig()).canonical();
}

/**
 * The satellite guard: a new Options knob that changes simulation
 * results but is missing from the canonical config key would make
 * the result cache and checkpoint store silently serve stale
 * artifacts across it. Every key optionsUsage() advertises must
 * therefore either (a) have a probe here proving it reaches the
 * canonical string, or (b) be on the explicit execution-only list.
 * Adding a key to usage without extending one of the two fails this
 * test by name.
 */
TEST(Options, EveryUsageKeyIsSemanticOrExplicitlyExecutionOnly)
{
    // Execution-strategy keys deliberately outside the run key:
    // jobs/checkpoint_dir/result_cache cannot change results, and
    // the cores/coreK.*/coherence.* families configure CMP runs,
    // which are never result-cached (bench_cmp derives its own
    // row-identity key; coherent identity is locked by runKeyCmp,
    // tests/checkpoint_test.cc).
    const std::set<std::string> executionOnly{
        "jobs",
        "shard", // farm partition assignment (src/farm/shard_plan.hh)
        "checkpoint_dir",
        "result_cache",
        // Observability sinks (src/obs/): pure output taps that can
        // never change simulation results, so goldens stay
        // byte-identical whether or not tracing is on.
        "trace",
        "metrics",
        "metrics.interval",
        "cores",
        "coherence",
        "coherence.entries",
        "coherence.msg_latency",
        "coreK.bench",
        "coreK.dri",
        "coreK.dri.size_bound",
        "coreK.dri.miss_bound",
        "coreK.dri.interval",
        "coreK.policy",
        "coreK.policy.decay.interval",
        "coreK.policy.decay.limit",
        "coreK.policy.drowsy.interval",
        "coreK.policy.drowsy.wake",
        "coreK.policy.ways.active",
    };

    // base = context making a conditional key participate (e.g.
    // sample.window only enters the key once sampling is on);
    // variant = base + a value different from the default.
    struct Probe
    {
        std::vector<const char *> base;
        std::vector<const char *> variant;
    };
    const std::map<std::string, Probe> probes{
        {"instrs", {{}, {"instrs=1234"}}},
        {"benchmark", {{}, {"benchmark=gcc"}}},
        {"l1i.size", {{}, {"l1i.size=128K"}}},
        {"l1i.assoc", {{}, {"l1i.assoc=4"}}},
        {"l1i.block", {{}, {"l1i.block=64"}}},
        {"dri.size_bound", {{}, {"dri.size_bound=2K"}}},
        {"dri.miss_bound", {{}, {"dri.miss_bound=123"}}},
        {"dri.interval", {{}, {"dri.interval=50000"}}},
        {"dri.divisibility", {{}, {"dri.divisibility=4"}}},
        {"dri.throttle_hold", {{}, {"dri.throttle_hold=7"}}},
        {"dri.adaptive", {{}, {"dri.adaptive=0"}}},
        {"policy", {{}, {"policy=decay"}}},
        {"policy.decay.interval", {{}, {"policy.decay.interval=40000"}}},
        {"policy.decay.limit", {{}, {"policy.decay.limit=2"}}},
        {"policy.drowsy.interval",
         {{}, {"policy.drowsy.interval=50000"}}},
        {"policy.drowsy.wake", {{}, {"policy.drowsy.wake=2"}}},
        {"policy.ways.active", {{}, {"policy.ways.active=3"}}},
        {"sample", {{}, {"sample=1"}}},
        {"sample.window",
         {{"sample=1"}, {"sample=1", "sample.window=5000"}}},
        {"sample.period",
         {{"sample=1"}, {"sample=1", "sample.period=40000"}}},
        {"l2.size", {{}, {"l2.size=512K"}}},
        {"l2.assoc", {{}, {"l2.assoc=8"}}},
        {"l2.block", {{}, {"l2.block=128"}}},
        {"l2.dri", {{}, {"l2.dri=1"}}},
        {"l2.size_bound",
         {{"l2.dri=1"}, {"l2.dri=1", "l2.size_bound=32K"}}},
        {"l2.miss_bound",
         {{"l2.dri=1"}, {"l2.dri=1", "l2.miss_bound=40"}}},
        {"l2.interval",
         {{"l2.dri=1"}, {"l2.dri=1", "l2.interval=200000"}}},
        {"l1.mshrs", {{}, {"l1.mshrs=4"}}},
        {"l2.mshrs", {{}, {"l2.mshrs=8"}}},
        {"dram.banked", {{}, {"dram.banked=1"}}},
        {"dram.banks",
         {{"dram.banked=1"}, {"dram.banked=1", "dram.banks=16"}}},
        {"dram.row_hit",
         {{"dram.banked=1"}, {"dram.banked=1", "dram.row_hit=30"}}},
        {"dram.row_miss",
         {{"dram.banked=1"}, {"dram.banked=1", "dram.row_miss=90"}}},
        {"dram.queue",
         {{"dram.banked=1"}, {"dram.banked=1", "dram.queue=4"}}},
    };

    // Every key the usage string advertises, in "key=..." tokens.
    std::istringstream usage(optionsUsage());
    std::string tok;
    std::vector<std::string> keys;
    while (usage >> tok) {
        const std::size_t eq = tok.find('=');
        if (eq != std::string::npos && eq > 0)
            keys.push_back(tok.substr(0, eq));
    }
    ASSERT_GT(keys.size(), 30u); // the usage string really parsed

    for (const std::string &key : keys) {
        if (executionOnly.count(key))
            continue;
        const auto it = probes.find(key);
        ASSERT_NE(it, probes.end())
            << "usage key '" << key
            << "' has neither a semantic probe nor an execution-only "
               "entry: a knob outside the canonical key serves stale "
               "cached results";
        SCOPED_TRACE(key);
        Options base, variant;
        std::string err;
        std::vector<const char *> argvBase{"prog"};
        argvBase.insert(argvBase.end(), it->second.base.begin(),
                        it->second.base.end());
        ASSERT_TRUE(parseOptions(
            static_cast<int>(argvBase.size()), argvBase.data(),
            base, err))
            << err;
        std::vector<const char *> argvVar{"prog"};
        argvVar.insert(argvVar.end(), it->second.variant.begin(),
                       it->second.variant.end());
        ASSERT_TRUE(parseOptions(static_cast<int>(argvVar.size()),
                                 argvVar.data(), variant, err))
            << err;
        EXPECT_NE(canonicalOf(base), canonicalOf(variant))
            << "'" << key << "' parses but never reaches the "
            << "canonical config string";
    }
}

TEST(Options, ParsesShardSpec)
{
    Options o;
    std::string err;
    ASSERT_TRUE(parse({"shard=2/3"}, o, err));
    EXPECT_TRUE(o.run.shard.active());
    EXPECT_EQ(o.run.shard.shard, 1u); // 0-based internally
    EXPECT_EQ(o.run.shard.ofShards, 3u);
    EXPECT_EQ(o.run.shard.spec(), "2/3");
    // 1/1 parses but does not partition.
    ASSERT_TRUE(parse({"shard=1/1"}, o, err));
    EXPECT_FALSE(o.run.shard.active());
}

TEST(Options, RejectsBadShardSpecs)
{
    Options o;
    std::string err;
    // Strict parsing: the shard index is 1-based and bounded by the
    // shard count; signs, junk and missing halves are all rejected.
    EXPECT_FALSE(parse({"shard=0/3"}, o, err));
    EXPECT_FALSE(parse({"shard=4/3"}, o, err));
    EXPECT_FALSE(parse({"shard=-1/3"}, o, err));
    EXPECT_FALSE(parse({"shard=2/-3"}, o, err));
    EXPECT_FALSE(parse({"shard=2"}, o, err));
    EXPECT_FALSE(parse({"shard=2/"}, o, err));
    EXPECT_FALSE(parse({"shard=/3"}, o, err));
    EXPECT_FALSE(parse({"shard=a/b"}, o, err));
    EXPECT_FALSE(parse({"shard=2/4097"}, o, err)); // > kMaxShards
    EXPECT_FALSE(err.empty());
}

TEST(Options, ParsesCoresAndPerCoreKeys)
{
    Options o;
    std::string err;
    ASSERT_TRUE(parse({"cores=2", "benchmark=compress",
                       "core1.bench=li", "core1.dri.miss_bound=77",
                       "core1.dri.size_bound=2K",
                       "core1.dri.interval=50000"},
                      o, err));
    EXPECT_EQ(o.cores, 2u);
    EXPECT_TRUE(o.unknown.empty());

    const std::vector<CmpCoreConfig> cfgs = o.cmpCores(true);
    ASSERT_EQ(cfgs.size(), 2u);
    EXPECT_EQ(cfgs[0].bench, "compress");
    EXPECT_TRUE(cfgs[0].dri);
    EXPECT_EQ(cfgs[1].bench, "li");
    EXPECT_TRUE(cfgs[1].dri);
    EXPECT_EQ(cfgs[1].driParams.missBound, 77u);
    EXPECT_EQ(cfgs[1].driParams.sizeBoundBytes, 2048u);
    EXPECT_EQ(cfgs[1].driParams.senseInterval, 50000u);

    // A conventional baseline resolution is conventional on every
    // core — tuning a core's DRI knobs must never pollute the
    // baseline leg it is compared against.
    const std::vector<CmpCoreConfig> conv = o.cmpCores(false);
    EXPECT_FALSE(conv[0].dri);
    EXPECT_FALSE(conv[1].dri);
}

TEST(Options, GlobalDriKeysReachUnconfiguredCoresRegardlessOfOrder)
{
    Options o;
    std::string err;
    // core1.bench creates override records; a *later* global dri.*
    // key must still reach both cores (only explicit coreK.dri.*
    // knobs freeze a core's template).
    ASSERT_TRUE(parse({"cores=2", "core1.bench=li",
                       "dri.miss_bound=999"},
                      o, err));
    const std::vector<CmpCoreConfig> cfgs = o.cmpCores(true);
    ASSERT_EQ(cfgs.size(), 2u);
    EXPECT_EQ(cfgs[0].driParams.missBound, 999u);
    EXPECT_EQ(cfgs[1].driParams.missBound, 999u);
}

TEST(Options, PerCoreKnobsSeedFromGlobalTemplate)
{
    Options o;
    std::string err;
    // Global dri.* keys first, then the per-core override: the
    // override inherits the template and changes only its own key.
    ASSERT_TRUE(parse({"cores=2", "dri.miss_bound=123",
                       "core0.dri.size_bound=4K"},
                      o, err));
    const std::vector<CmpCoreConfig> cfgs = o.cmpCores(true);
    ASSERT_EQ(cfgs.size(), 2u);
    EXPECT_EQ(cfgs[0].driParams.missBound, 123u);
    EXPECT_EQ(cfgs[0].driParams.sizeBoundBytes, 4096u);
    // Core 1 has no override record: it takes the global template.
    EXPECT_EQ(cfgs[1].driParams.missBound, 123u);
}

TEST(Options, CoreDriFlagDisablesPerCore)
{
    Options o;
    std::string err;
    ASSERT_TRUE(parse({"cores=2", "core0.dri=0"}, o, err));
    const std::vector<CmpCoreConfig> cfgs = o.cmpCores(true);
    EXPECT_FALSE(cfgs[0].dri); // explicit opt-out wins
    EXPECT_TRUE(cfgs[1].dri);

    CmpConfig cmp = o.cmpConfig(true);
    EXPECT_EQ(cmp.cores, 2u);
    ASSERT_EQ(cmp.coreConfigs.size(), 2u);
    EXPECT_FALSE(cmp.coreConfigs[0].dri);
}

TEST(Options, RejectsBadCoresValues)
{
    Options o;
    std::string err;
    // cores=0 and the "-1" wraparound are rejected by the shared
    // strict parser (util/parse.hh) — everywhere, not just here.
    EXPECT_FALSE(parse({"cores=0"}, o, err));
    EXPECT_FALSE(parse({"cores=-1"}, o, err));
    EXPECT_FALSE(parse({"cores=65"}, o, err)); // kMaxCmpCores = 64
    EXPECT_FALSE(parse({"jobs=-1"}, o, err));
    EXPECT_FALSE(parse({"dri.interval=-1"}, o, err));
    EXPECT_FALSE(parse({"l2.interval=-1"}, o, err));
    EXPECT_FALSE(parse({"core0.dri.interval=-1"}, o, err));
    EXPECT_FALSE(parse({"core0.dri.interval=0"}, o, err));
    EXPECT_FALSE(parse({"instrs=-1"}, o, err));
}

TEST(Options, ParsesPolicyKeys)
{
    Options o;
    std::string err;
    ASSERT_TRUE(parse({"policy=drowsy", "policy.drowsy.interval=50000",
                       "policy.drowsy.wake=2",
                       "policy.decay.interval=25000",
                       "policy.decay.limit=2",
                       "policy.ways.active=3", "dri.size_bound=2K"},
                      o, err));
    EXPECT_EQ(o.policy.kind, PolicyKind::Drowsy);
    EXPECT_EQ(o.policy.drowsy.drowsyInterval, 50000u);
    EXPECT_EQ(o.policy.drowsy.wakeLatency, 2u);
    EXPECT_EQ(o.policy.decay.decayInterval, 25000u);
    EXPECT_EQ(o.policy.decay.counterLimit, 2u);
    EXPECT_EQ(o.policy.ways.activeWays, 3u);
    // policyConfig() syncs the final dri.* template into the
    // embedded geometry/knobs.
    EXPECT_EQ(o.policyConfig().dri.sizeBoundBytes, 2048u);
    EXPECT_EQ(o.policyConfig().kind, PolicyKind::Drowsy);
}

TEST(Options, RejectsBadPolicyValues)
{
    Options o;
    std::string err;
    EXPECT_FALSE(parse({"policy=banana"}, o, err));
    // Every new interval/wake/ways key rides the strict bounded
    // parser (util/parse.hh): "-1" cannot wrap, 0 is rejected where
    // it is meaningless, and way 0 can never be gated away.
    EXPECT_FALSE(parse({"policy.decay.interval=-1"}, o, err));
    EXPECT_FALSE(parse({"policy.decay.interval=0"}, o, err));
    EXPECT_FALSE(parse({"policy.decay.limit=-1"}, o, err));
    EXPECT_FALSE(parse({"policy.drowsy.interval=-1"}, o, err));
    EXPECT_FALSE(parse({"policy.drowsy.interval=0"}, o, err));
    EXPECT_FALSE(parse({"policy.drowsy.wake=-1"}, o, err));
    EXPECT_FALSE(parse({"policy.ways.active=-1"}, o, err));
    EXPECT_FALSE(parse({"policy.ways.active=0"}, o, err));
    EXPECT_FALSE(parse({"core0.policy=banana"}, o, err));
    EXPECT_FALSE(parse({"core0.policy.drowsy.wake=-1"}, o, err));
    EXPECT_FALSE(parse({"core0.policy.ways.active=0"}, o, err));
    // A wake latency of 0 (idealized instant wake) stays legal.
    EXPECT_TRUE(parse({"policy.drowsy.wake=0"}, o, err));
}

TEST(Options, PerCorePolicyOverrides)
{
    Options o;
    std::string err;
    ASSERT_TRUE(parse({"cores=2", "policy=decay",
                       "policy.decay.interval=40000",
                       "core1.policy=drowsy",
                       "core1.policy.drowsy.wake=3"},
                      o, err));
    const std::vector<CmpCoreConfig> cfgs = o.cmpCores(true);
    ASSERT_EQ(cfgs.size(), 2u);
    // Core 0 follows the global template; core 1 overrides, seeded
    // from the global policy as parsed so far.
    EXPECT_EQ(cfgs[0].policyKind, PolicyKind::Decay);
    EXPECT_EQ(cfgs[0].decay.decayInterval, 40000u);
    EXPECT_EQ(cfgs[1].policyKind, PolicyKind::Drowsy);
    EXPECT_EQ(cfgs[1].drowsy.wakeLatency, 3u);
    EXPECT_EQ(cfgs[1].decay.decayInterval, 40000u);
    // A conventional baseline ignores every per-core policy knob.
    const std::vector<CmpCoreConfig> conv = o.cmpCores(false);
    EXPECT_FALSE(conv[1].dri);
}

TEST(Options, UnknownPolicySubkeysCollected)
{
    Options o;
    std::string err;
    ASSERT_TRUE(parse({"policy.banana=1", "core0.policy.banana=1"},
                      o, err));
    ASSERT_EQ(o.unknown.size(), 2u);
    EXPECT_EQ(o.unknown[0], "policy.banana");
    EXPECT_EQ(o.unknown[1], "core0.policy.banana");
    // The unknown coreK.policy.* key must not have made core 0's
    // policy authoritative.
    EXPECT_TRUE(o.coreOverrides.empty() ||
                !o.coreOverrides[0].policySet);
}

TEST(Options, UnknownCoreSubkeysCollected)
{
    Options o;
    std::string err;
    ASSERT_TRUE(parse({"core0.banana=1", "core999.bench=li",
                       "corex.bench=li"},
                      o, err));
    // core0.banana: valid core prefix, unknown subkey.
    // core999: index past kMaxCmpCores does not match the coreK
    // shape. corex: not a decimal index.
    ASSERT_EQ(o.unknown.size(), 3u);
    EXPECT_EQ(o.unknown[0], "core0.banana");
    EXPECT_EQ(o.unknown[1], "core999.bench");
    EXPECT_EQ(o.unknown[2], "corex.bench");
}

} // namespace
} // namespace drisim
