/**
 * @file
 * Size-mask tests (Figure 1): index selection across resizing.
 */

#include <gtest/gtest.h>

#include "core/size_mask.hh"

namespace drisim
{
namespace
{

// 64 KB direct-mapped, 32 B blocks, 1 KB size-bound:
// offset 5 bits, index 5..11 bits.
SizeMask
mask64K()
{
    return SizeMask(5, 5, 11);
}

TEST(SizeMask, StartsAtMaximum)
{
    SizeMask m = mask64K();
    EXPECT_EQ(m.numSets(), 2048u);
    EXPECT_TRUE(m.atMaximum());
    EXPECT_FALSE(m.atMinimum());
    EXPECT_EQ(m.mask(), 0x7FFull);
}

TEST(SizeMask, ShrinkHalvesSets)
{
    SizeMask m = mask64K();
    EXPECT_TRUE(m.shrink(2));
    EXPECT_EQ(m.numSets(), 1024u);
    EXPECT_TRUE(m.shrink(2));
    EXPECT_EQ(m.numSets(), 512u);
}

TEST(SizeMask, ShrinkClampsAtMinimum)
{
    SizeMask m = mask64K();
    for (int i = 0; i < 10; ++i)
        m.shrink(2);
    EXPECT_EQ(m.numSets(), 32u);
    EXPECT_TRUE(m.atMinimum());
    EXPECT_FALSE(m.shrink(2));
}

TEST(SizeMask, GrowClampsAtMaximum)
{
    SizeMask m = mask64K();
    m.setNumSets(32);
    EXPECT_TRUE(m.grow(2));
    EXPECT_EQ(m.numSets(), 64u);
    for (int i = 0; i < 10; ++i)
        m.grow(2);
    EXPECT_EQ(m.numSets(), 2048u);
    EXPECT_FALSE(m.grow(2));
}

TEST(SizeMask, Divisibility4StepsTwoBits)
{
    SizeMask m = mask64K();
    EXPECT_TRUE(m.shrink(4));
    EXPECT_EQ(m.numSets(), 512u);
    EXPECT_TRUE(m.grow(4));
    EXPECT_EQ(m.numSets(), 2048u);
}

TEST(SizeMask, PartialStepClampsToBound)
{
    SizeMask m(5, 5, 6); // 32..64 sets only
    EXPECT_TRUE(m.shrink(4)); // would go to 16; clamps to 32
    EXPECT_EQ(m.numSets(), 32u);
}

TEST(SizeMask, IndexUsesMaskedBits)
{
    SizeMask m = mask64K();
    const Addr addr = 0x0001'2345;
    // Full size: bits [15:5].
    EXPECT_EQ(m.indexFor(addr), (addr >> 5) & 0x7FF);
    m.setNumSets(32);
    // 1 KB: bits [9:5].
    EXPECT_EQ(m.indexFor(addr), (addr >> 5) & 0x1F);
    // Min-index helper is size independent.
    EXPECT_EQ(m.minIndexFor(addr), (addr >> 5) & 0x1F);
}

TEST(SizeMask, DownsizingRemovesHighestNumberedSets)
{
    // Paper: "downsizing removes the highest-numbered sets in
    // groups of powers of two" — indexes below the new set count
    // are unchanged by resizing.
    SizeMask m = mask64K();
    const Addr addr = 0x40; // block 2, set 2 at any size
    const auto idx_full = m.indexFor(addr);
    m.setNumSets(32);
    EXPECT_EQ(m.indexFor(addr), idx_full);
}

TEST(SizeMask, SetNumSetsValidatesRange)
{
    SizeMask m = mask64K();
    m.setNumSets(256);
    EXPECT_EQ(m.indexBits(), 8u);
    EXPECT_EQ(m.minSets(), 32u);
    EXPECT_EQ(m.maxSets(), 2048u);
}

} // namespace
} // namespace drisim
