/**
 * @file
 * Harness tests: runner determinism, fast-model calibration,
 * best-case search, table printing.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "harness/runner.hh"
#include "harness/sweep.hh"
#include "harness/table.hh"

namespace drisim
{
namespace
{

RunConfig
quickConfig()
{
    RunConfig c;
    c.maxInstrs = 400 * 1000;
    return c;
}

TEST(Runner, ConventionalRunsAreDeterministic)
{
    const auto &b = findBenchmark("compress");
    const RunConfig cfg = quickConfig();
    const auto r1 = runConventional(b, cfg);
    const auto r2 = runConventional(b, cfg);
    EXPECT_EQ(r1.meas.cycles, r2.meas.cycles);
    EXPECT_EQ(r1.meas.l1iMisses, r2.meas.l1iMisses);
    EXPECT_EQ(r1.meas.l1iAccesses, r2.meas.l1iAccesses);
}

TEST(Runner, ConventionalMeasurementSanity)
{
    const auto &b = findBenchmark("li");
    const auto r = runConventional(b, quickConfig());
    EXPECT_EQ(r.meas.instructions, 400000u);
    EXPECT_GT(r.meas.cycles, 400000u / 8);
    EXPECT_GT(r.meas.l1iAccesses, 0u);
    EXPECT_DOUBLE_EQ(r.meas.avgActiveFraction, 1.0);
    EXPECT_EQ(r.meas.resizingTagBits, 0u);
    EXPECT_GT(r.ipc, 0.5);
    EXPECT_LT(r.ipc, 8.0);
}

TEST(Runner, DriRunPopulatesResizingState)
{
    const auto &b = findBenchmark("compress");
    DriParams dp;
    dp.missBound = 1000;
    dp.sizeBoundBytes = 1024;
    dp.senseInterval = 50000;
    const auto r = runDri(b, quickConfig(), dp);
    EXPECT_EQ(r.meas.resizingTagBits, 6u);
    EXPECT_LE(r.meas.avgActiveFraction, 1.0);
    EXPECT_GT(r.meas.avgActiveFraction, 0.0);
    // compress's tiny loops let it shrink.
    EXPECT_GT(r.resizes, 0u);
}

TEST(Runner, FastCalibrationReproducesDetailedCycles)
{
    const auto &b = findBenchmark("mgrid");
    const RunConfig cfg = quickConfig();
    const auto conv = runConventional(b, cfg);
    const auto cal = calibrateFast(b, cfg, conv);
    const auto fast = runConventionalFast(b, cfg, cal);
    const double err =
        std::abs(static_cast<double>(fast.meas.cycles) -
                 static_cast<double>(conv.meas.cycles)) /
        static_cast<double>(conv.meas.cycles);
    EXPECT_LT(err, 0.02);
    // Cache behaviour is exact, not approximated.
    EXPECT_EQ(fast.meas.l1iMisses, conv.meas.l1iMisses);
}

TEST(Runner, DefaultRunInstrsHonoursScaleEnv)
{
    unsetenv("DRISIM_SCALE");
    EXPECT_EQ(defaultRunInstrs(), 10u * 1000 * 1000);
    setenv("DRISIM_SCALE", "0.5", 1);
    EXPECT_EQ(defaultRunInstrs(), 5u * 1000 * 1000);
    setenv("DRISIM_SCALE", "bogus", 1);
    EXPECT_EQ(defaultRunInstrs(), 10u * 1000 * 1000);
    unsetenv("DRISIM_SCALE");
}

TEST(Sweep, FindsFeasibleConfigForClass1)
{
    const auto &b = findBenchmark("applu");
    const RunConfig cfg = quickConfig();
    const auto conv = runConventional(b, cfg);

    SearchSpace space;
    space.sizeBounds = {1024, 4096, 65536};
    space.missBoundFactors = {4.0, 32.0};

    DriParams tmpl;
    tmpl.senseInterval = 50000;
    const auto sr = searchBestEnergyDelay(
        b, cfg, tmpl, space, EnergyConstants::paper(), 4.0, conv);

    EXPECT_EQ(sr.evaluated.size(), 6u);
    EXPECT_TRUE(sr.best.feasible);
    EXPECT_LE(sr.best.cmp.slowdownPercent(), 4.0 + 0.5);
    // applu must find substantial savings.
    EXPECT_LT(sr.best.cmp.relativeEnergyDelay(), 0.6);
}

TEST(Sweep, UnconstrainedNeverWorseThanConstrained)
{
    const auto &b = findBenchmark("ijpeg");
    const RunConfig cfg = quickConfig();
    const auto conv = runConventional(b, cfg);

    SearchSpace space;
    space.sizeBounds = {1024, 8192, 65536};
    space.missBoundFactors = {4.0, 64.0};
    DriParams tmpl;
    tmpl.senseInterval = 50000;

    const auto constrained = searchBestEnergyDelay(
        b, cfg, tmpl, space, EnergyConstants::paper(), 4.0, conv);
    const auto unconstrained = searchBestEnergyDelay(
        b, cfg, tmpl, space, EnergyConstants::paper(), -1.0, conv);
    // Compare on the fast-model candidates (shared baseline).
    double best_c = 1e9;
    double best_u = 1e9;
    for (const auto &cand : constrained.evaluated)
        if (cand.feasible)
            best_c =
                std::min(best_c, cand.cmp.relativeEnergyDelay());
    for (const auto &cand : unconstrained.evaluated)
        best_u = std::min(best_u, cand.cmp.relativeEnergyDelay());
    EXPECT_LE(best_u, best_c + 1e-12);
}

TEST(Table, AlignsAndCounts)
{
    Table t({"name", "value"});
    t.addRow({"a", "1"});
    t.addRow({"longer", "22"});
    EXPECT_EQ(t.rows(), 2u);
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer"), std::string::npos);
    EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Table, SetRowFillsSlotsInOrderIndependentOfWriteOrder)
{
    Table t({"a", "b"});
    t.reserveRows(3);
    EXPECT_EQ(t.rows(), 3u);
    // Filled out of order — rendered in slot order.
    t.setRow(2, {"3", "z"});
    t.setRow(0, {"1", "x"});
    t.setRow(1, {"2", "y"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\n1,x\n2,y\n3,z\n");
}

TEST(Table, ReserveRowsAppendsToExistingRows)
{
    Table t({"h"});
    t.addRow({"first"});
    t.reserveRows(1);
    t.setRow(1, {"second"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "h\nfirst\nsecond\n");
}

TEST(Table, CsvOutput)
{
    Table t({"a", "b"});
    t.addRow({"1", "2"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, Formatters)
{
    EXPECT_EQ(fmtDouble(1.23456, 2), "1.23");
    EXPECT_EQ(fmtPercent(0.5, 1), "50.0%");
    EXPECT_EQ(asciiBar(0.5, 10), "#####     ");
    EXPECT_EQ(asciiBar(2.0, 4), "####");
    EXPECT_EQ(asciiBar(-1.0, 4), "    ");
}

} // namespace
} // namespace drisim
