/**
 * @file
 * Property-based tests for the DRI i-cache, parameterized over
 * geometry (size, associativity, block size, size-bound,
 * divisibility). Invariants checked against a reference model and
 * against the cache's own bookkeeping under randomized access and
 * resize sequences.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <numeric>
#include <set>

#include "core/dri_icache.hh"
#include "energy/accounting.hh"
#include "harness/runner.hh"
#include "mem/cache.hh"
#include "stats/stats.hh"
#include "util/random.hh"

namespace drisim
{
namespace
{

struct Geometry
{
    std::uint64_t sizeBytes;
    unsigned assoc;
    unsigned blockBytes;
    std::uint64_t sizeBound;
    unsigned divisibility;
};

class DriPropertyTest : public ::testing::TestWithParam<Geometry>
{
};

DriParams
paramsFor(const Geometry &g)
{
    DriParams p;
    p.sizeBytes = g.sizeBytes;
    p.assoc = g.assoc;
    p.blockBytes = g.blockBytes;
    p.sizeBoundBytes = g.sizeBound;
    p.divisibility = g.divisibility;
    p.missBound = 50;
    p.senseInterval = 500;
    return p;
}

/**
 * Invariant: a hit in the DRI i-cache implies the block was fetched
 * earlier and not destroyed by an intervening downsize of its set
 * nor remapped by a resize. We track a shadow set of "certainly
 * absent" blocks: any block never accessed must never hit.
 */
TEST_P(DriPropertyTest, NeverHitsUnfetchedBlocks)
{
    const Geometry g = GetParam();
    stats::StatGroup root("t");
    DriICache c(paramsFor(g), nullptr, &root);
    Rng rng(g.sizeBytes + g.assoc * 131 + g.divisibility);

    std::set<Addr> fetched;
    for (int i = 0; i < 20000; ++i) {
        const Addr block = rng.range(4096);
        const Addr addr = block * g.blockBytes;
        const bool hit = c.access(addr, AccessType::InstFetch).hit;
        if (hit) {
            EXPECT_TRUE(fetched.count(block)) << "phantom hit";
        }
        fetched.insert(block);
        if (i % 100 == 0)
            c.retireInstructions(100);
    }
}

/** Invariant: the set count is always a power of two within
 *  [minSets, maxSets], whatever the resize history. */
TEST_P(DriPropertyTest, SetCountStaysInRange)
{
    const Geometry g = GetParam();
    stats::StatGroup root("t");
    DriICache c(paramsFor(g), nullptr, &root);
    Rng rng(g.sizeBytes * 3 + g.blockBytes);

    const std::uint64_t min_sets = c.sizeMask().minSets();
    const std::uint64_t max_sets = c.sizeMask().maxSets();
    for (int i = 0; i < 300; ++i) {
        const int burst = static_cast<int>(rng.range(200));
        for (int j = 0; j < burst; ++j)
            c.access(rng.range(1 << 20) * g.blockBytes,
                     AccessType::InstFetch);
        c.retireInstructions(rng.range(1000));
        const std::uint64_t sets = c.currentSets();
        EXPECT_GE(sets, min_sets);
        EXPECT_LE(sets, max_sets);
        EXPECT_EQ(sets & (sets - 1), 0u) << "not a power of two";
    }
}

/** Invariant: accesses = hits + misses, and the active fraction
 *  equals currentSets / maxSets at all times. */
TEST_P(DriPropertyTest, CountsAreConsistent)
{
    const Geometry g = GetParam();
    stats::StatGroup root("t");
    DriICache c(paramsFor(g), nullptr, &root);
    Rng rng(g.sizeBound + 17);

    std::uint64_t hits = 0;
    const int n = 5000;
    for (int i = 0; i < n; ++i) {
        const Addr addr = rng.range(2048) * g.blockBytes;
        hits += c.access(addr, AccessType::InstFetch).hit ? 1 : 0;
        if (i % 500 == 0)
            c.retireInstructions(500);
        EXPECT_DOUBLE_EQ(
            c.activeFraction(),
            static_cast<double>(c.currentSets()) /
                static_cast<double>(c.sizeMask().maxSets()));
    }
    EXPECT_EQ(c.accesses(), static_cast<std::uint64_t>(n));
    EXPECT_EQ(c.accesses() - c.misses(), hits);
}

/**
 * Behavioural equivalence: with adaptation disabled, the DRI
 * i-cache at full size must produce exactly the same hit/miss
 * sequence as a conventional direct-mapped/set-associative cache
 * of the same geometry.
 */
TEST_P(DriPropertyTest, NonAdaptiveMatchesConventional)
{
    const Geometry g = GetParam();
    stats::StatGroup root("t");
    DriParams p = paramsFor(g);
    p.adaptive = false;
    DriICache dri(p, nullptr, &root);

    CacheParams cp;
    cp.name = "ref";
    cp.sizeBytes = g.sizeBytes;
    cp.assoc = g.assoc;
    cp.blockBytes = g.blockBytes;
    Cache ref(cp, nullptr, &root);

    Rng rng(g.sizeBytes ^ 0xdead);
    for (int i = 0; i < 20000; ++i) {
        const Addr addr = rng.range(1 << 14) * g.blockBytes;
        const bool a = dri.access(addr, AccessType::InstFetch).hit;
        const bool b = ref.access(addr, AccessType::InstFetch).hit;
        ASSERT_EQ(a, b) << "divergence at access " << i;
    }
}

/**
 * Invariant: blocks whose min-size index keeps them in the powered
 * region survive an immediate downsize; a hit after downsizing is
 * only legal for such blocks.
 */
TEST_P(DriPropertyTest, SurvivorsAreLowSets)
{
    const Geometry g = GetParam();
    if (g.sizeBound == g.sizeBytes)
        GTEST_SKIP() << "no resizing range";
    stats::StatGroup root("t");
    DriParams p = paramsFor(g);
    p.missBound = 1000000; // force downsizing at every interval
    DriICache c(p, nullptr, &root);

    // Touch every set once.
    const std::uint64_t sets = c.currentSets();
    for (std::uint64_t s = 0; s < sets; ++s)
        c.access(s * g.blockBytes, AccessType::InstFetch);

    c.retireInstructions(p.senseInterval); // downsize
    const std::uint64_t new_sets = c.currentSets();
    ASSERT_LT(new_sets, sets);

    for (std::uint64_t s = 0; s < sets; ++s) {
        const bool hit =
            c.access(s * g.blockBytes, AccessType::InstFetch).hit;
        if (s < new_sets) {
            EXPECT_TRUE(hit) << "low set " << s << " lost";
        } else {
            EXPECT_FALSE(hit) << "gated set " << s << " retained";
        }
    }
}

/**
 * Invariant: at every legal size (every power-of-two set count in
 * [minSets, maxSets]) the mask and the index arithmetic agree —
 * mask = numSets-1, every index lands inside the powered region,
 * and the current-size index is congruent to the minimum-size index
 * modulo minSets (the property that makes resizing tag bits and the
 * alias sweep correct).
 */
TEST_P(DriPropertyTest, MaskIndexConsistentAtEveryLegalSize)
{
    const Geometry g = GetParam();
    DriParams p = paramsFor(g);
    SizeMask mask = makeSizeMask(p);
    Rng rng(g.sizeBytes * 7 + g.blockBytes);

    for (unsigned bits = mask.minIndexBits();
         bits <= mask.maxIndexBits(); ++bits) {
        const std::uint64_t sets = std::uint64_t{1} << bits;
        mask.setNumSets(sets);
        ASSERT_EQ(mask.numSets(), sets);
        EXPECT_EQ(mask.mask(), sets - 1);
        EXPECT_EQ(mask.indexBits(), bits);
        EXPECT_EQ(mask.atMinimum(), bits == mask.minIndexBits());
        EXPECT_EQ(mask.atMaximum(), bits == mask.maxIndexBits());

        for (int i = 0; i < 200; ++i) {
            const Addr addr = rng.range(1u << 26);
            const std::uint64_t idx = mask.indexFor(addr);
            EXPECT_LT(idx, sets);
            EXPECT_EQ(idx, (addr >> mask.offsetBits()) & (sets - 1));
            // Congruence with the minimum-size index: the low
            // minIndexBits never change across sizes.
            EXPECT_EQ(idx & (mask.minSets() - 1),
                      mask.minIndexFor(addr));
        }
    }
}

/**
 * Invariant: forced downsizing clamps exactly at the size-bound —
 * the set count walks down (by the divisibility, clamping a final
 * partial step) and then stays pinned at minSets forever, however
 * many further downsize-favouring intervals elapse.
 */
TEST_P(DriPropertyTest, DownsizeClampsAtMinimumSize)
{
    const Geometry g = GetParam();
    stats::StatGroup root("t");
    DriParams p = paramsFor(g);
    p.missBound = 1000000; // zero misses < bound: always downsize
    DriICache c(p, nullptr, &root);

    const std::uint64_t min_sets = c.sizeMask().minSets();
    std::uint64_t prev = c.currentSets();
    for (int interval = 0; interval < 40; ++interval) {
        c.retireInstructions(p.senseInterval);
        const std::uint64_t sets = c.currentSets();
        if (prev > min_sets) {
            // Either a full divisibility step or the clamped
            // remainder of one.
            EXPECT_TRUE(sets == prev / p.divisibility ||
                        sets == min_sets)
                << prev << " -> " << sets;
        } else {
            EXPECT_EQ(sets, min_sets) << "left the size-bound";
        }
        EXPECT_GE(sets, min_sets);
        prev = sets;
    }
    EXPECT_EQ(c.currentSets(), min_sets);
}

/**
 * Invariant: the size changes only at sense-interval boundaries and
 * at most once per boundary — between boundaries no access pattern
 * may move it, so an upsize can never chase a downsize (or vice
 * versa) within one sense interval, whatever the miss mix.
 */
TEST_P(DriPropertyTest, NeverResizesWithinASenseInterval)
{
    const Geometry g = GetParam();
    stats::StatGroup root("t");
    DriParams p = paramsFor(g);
    DriICache c(p, nullptr, &root);
    Rng rng(g.sizeBound * 977 + g.assoc);

    std::uint64_t boundaries = 0;
    for (int step = 0; step < 3000; ++step) {
        const std::uint64_t before = c.currentSets();
        const std::uint64_t intervals_before =
            c.controller().intervals();

        // A burst of accesses (misses included) mid-interval...
        const int burst = static_cast<int>(rng.range(50));
        for (int j = 0; j < burst; ++j)
            c.access(rng.range(1 << 18) * g.blockBytes,
                     AccessType::InstFetch);
        // ...and a sub-interval retirement batch.
        const bool resized = c.retireInstructions(
            rng.range(static_cast<std::uint64_t>(p.senseInterval)) /
            4);

        const std::uint64_t crossed =
            c.controller().intervals() - intervals_before;
        ASSERT_LE(crossed, 1u) << "sub-interval batch crossed twice";
        boundaries += crossed;
        if (crossed == 0) {
            EXPECT_EQ(c.currentSets(), before)
                << "resized mid-interval at step " << step;
            EXPECT_FALSE(resized);
        } else if (c.currentSets() != before) {
            // One boundary: at most one divisibility step (or the
            // clamp at either end of the range).
            const std::uint64_t after = c.currentSets();
            const std::uint64_t lo = std::min(before, after);
            const std::uint64_t hi = std::max(before, after);
            EXPECT_TRUE(hi == lo * p.divisibility ||
                        after == c.sizeMask().minSets() ||
                        after == c.sizeMask().maxSets())
                << before << " -> " << after;
        }
    }
    EXPECT_GT(boundaries, 0u) << "test never crossed a boundary";
}

/**
 * Order-independence property behind the parallel sweep engine: the
 * harness aggregates per-cell results into index-addressed slots and
 * reduces them in slot order, so *any* interleaving of job
 * completion must yield totals identical to the serial walk.
 *
 * Exercised with a deliberately-shuffled mock executor: the "jobs"
 * are real DRI runs over a parameter grid, executed in random
 * permutations of the grid order, writing into slots exactly the way
 * harness/sweep.cc does.
 */
TEST(AggregationProperty, ShuffledCompletionOrderMatchesSerialSum)
{
    // The grid: distinct (size-bound, miss-bound) cells.
    struct Cell
    {
        std::uint64_t sizeBound;
        std::uint64_t missBound;
    };
    std::vector<Cell> cells;
    for (std::uint64_t sb : {1024u, 2048u, 8192u})
        for (std::uint64_t mb : {20u, 200u, 2000u})
            cells.push_back({sb, mb});

    // One "job": a short randomized run against a DRI cache with
    // that cell's parameters, producing an energy-relevant
    // measurement. Deterministic per cell (seeded from the cell),
    // like executor jobs seeded from their key.
    auto evaluateCell = [](const Cell &cell) {
        stats::StatGroup root("agg");
        DriParams p;
        p.sizeBytes = 16 * 1024;
        p.sizeBoundBytes = cell.sizeBound;
        p.missBound = cell.missBound;
        p.senseInterval = 500;
        DriICache c(p, nullptr, &root);
        Rng rng(cell.sizeBound * 131 + cell.missBound);
        for (int i = 0; i < 4000; ++i) {
            c.access(rng.range(1024) * 32, AccessType::InstFetch);
            if (i % 250 == 0)
                c.retireInstructions(250);
        }
        RunMeasurement m;
        m.cycles = c.accesses() + 10 * c.misses();
        m.instructions = 4000;
        m.l1iAccesses = c.accesses();
        m.l1iMisses = c.misses();
        m.avgActiveFraction = c.averageActiveFraction();
        m.l1iBytes = p.sizeBytes;
        return m;
    };

    // Serial reference: walk the grid in index order.
    std::vector<RunMeasurement> serialSlots(cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i)
        serialSlots[i] = evaluateCell(cells[i]);

    const EnergyConstants constants = EnergyConstants::paper();
    auto aggregate = [&](const std::vector<RunMeasurement> &slots) {
        // The reductions the table/figure paths perform: energy and
        // miss totals over slots in index order.
        std::uint64_t misses = 0;
        std::uint64_t cycles = 0;
        double energy = 0.0;
        for (std::size_t i = 0; i < slots.size(); ++i) {
            misses += slots[i].l1iMisses;
            cycles += slots[i].cycles;
            energy += compareRuns(constants, slots[0], slots[i])
                          .relativeEnergyDelay();
        }
        return std::tuple{misses, cycles, energy};
    };
    const auto serialTotals = aggregate(serialSlots);

    // Mock executor: complete the same jobs in shuffled order,
    // writing each result into its slot (never appending).
    Rng shuffleRng(0xc0ffee);
    for (int trial = 0; trial < 8; ++trial) {
        std::vector<std::size_t> perm(cells.size());
        std::iota(perm.begin(), perm.end(), 0u);
        for (std::size_t i = perm.size(); i > 1; --i)
            std::swap(perm[i - 1], perm[shuffleRng.range(i)]);

        std::vector<RunMeasurement> slots(cells.size());
        for (const std::size_t job : perm)
            slots[job] = evaluateCell(cells[job]);

        const auto totals = aggregate(slots);
        EXPECT_EQ(std::get<0>(totals), std::get<0>(serialTotals))
            << "miss total diverged on trial " << trial;
        EXPECT_EQ(std::get<1>(totals), std::get<1>(serialTotals))
            << "cycle total diverged on trial " << trial;
        // Bit-identical, not EXPECT_DOUBLE_EQ: summation order is
        // fixed by the slot scan, not by completion order.
        EXPECT_EQ(std::get<2>(totals), std::get<2>(serialTotals))
            << "energy total diverged on trial " << trial;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, DriPropertyTest,
    ::testing::Values(
        Geometry{8 * 1024, 1, 32, 1024, 2},
        Geometry{8 * 1024, 2, 32, 1024, 2},
        Geometry{16 * 1024, 4, 32, 2048, 2},
        Geometry{8 * 1024, 1, 64, 2048, 2},
        Geometry{64 * 1024, 1, 32, 1024, 2},
        Geometry{64 * 1024, 4, 32, 4096, 4},
        Geometry{16 * 1024, 1, 16, 1024, 8},
        Geometry{4 * 1024, 1, 32, 4 * 1024, 2}),
    [](const ::testing::TestParamInfo<Geometry> &info) {
        const Geometry &g = info.param;
        return std::to_string(g.sizeBytes / 1024) + "K_a" +
               std::to_string(g.assoc) + "_b" +
               std::to_string(g.blockBytes) + "_sb" +
               std::to_string(g.sizeBound / 1024) + "K_d" +
               std::to_string(g.divisibility);
    });

} // namespace
} // namespace drisim
