/**
 * @file
 * Property-based tests for the DRI i-cache, parameterized over
 * geometry (size, associativity, block size, size-bound,
 * divisibility). Invariants checked against a reference model and
 * against the cache's own bookkeeping under randomized access and
 * resize sequences.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/dri_icache.hh"
#include "mem/cache.hh"
#include "stats/stats.hh"
#include "util/random.hh"

namespace drisim
{
namespace
{

struct Geometry
{
    std::uint64_t sizeBytes;
    unsigned assoc;
    unsigned blockBytes;
    std::uint64_t sizeBound;
    unsigned divisibility;
};

class DriPropertyTest : public ::testing::TestWithParam<Geometry>
{
};

DriParams
paramsFor(const Geometry &g)
{
    DriParams p;
    p.sizeBytes = g.sizeBytes;
    p.assoc = g.assoc;
    p.blockBytes = g.blockBytes;
    p.sizeBoundBytes = g.sizeBound;
    p.divisibility = g.divisibility;
    p.missBound = 50;
    p.senseInterval = 500;
    return p;
}

/**
 * Invariant: a hit in the DRI i-cache implies the block was fetched
 * earlier and not destroyed by an intervening downsize of its set
 * nor remapped by a resize. We track a shadow set of "certainly
 * absent" blocks: any block never accessed must never hit.
 */
TEST_P(DriPropertyTest, NeverHitsUnfetchedBlocks)
{
    const Geometry g = GetParam();
    stats::StatGroup root("t");
    DriICache c(paramsFor(g), nullptr, &root);
    Rng rng(g.sizeBytes + g.assoc * 131 + g.divisibility);

    std::set<Addr> fetched;
    for (int i = 0; i < 20000; ++i) {
        const Addr block = rng.range(4096);
        const Addr addr = block * g.blockBytes;
        const bool hit = c.access(addr, AccessType::InstFetch).hit;
        if (hit) {
            EXPECT_TRUE(fetched.count(block)) << "phantom hit";
        }
        fetched.insert(block);
        if (i % 100 == 0)
            c.retireInstructions(100);
    }
}

/** Invariant: the set count is always a power of two within
 *  [minSets, maxSets], whatever the resize history. */
TEST_P(DriPropertyTest, SetCountStaysInRange)
{
    const Geometry g = GetParam();
    stats::StatGroup root("t");
    DriICache c(paramsFor(g), nullptr, &root);
    Rng rng(g.sizeBytes * 3 + g.blockBytes);

    const std::uint64_t min_sets = c.sizeMask().minSets();
    const std::uint64_t max_sets = c.sizeMask().maxSets();
    for (int i = 0; i < 300; ++i) {
        const int burst = static_cast<int>(rng.range(200));
        for (int j = 0; j < burst; ++j)
            c.access(rng.range(1 << 20) * g.blockBytes,
                     AccessType::InstFetch);
        c.retireInstructions(rng.range(1000));
        const std::uint64_t sets = c.currentSets();
        EXPECT_GE(sets, min_sets);
        EXPECT_LE(sets, max_sets);
        EXPECT_EQ(sets & (sets - 1), 0u) << "not a power of two";
    }
}

/** Invariant: accesses = hits + misses, and the active fraction
 *  equals currentSets / maxSets at all times. */
TEST_P(DriPropertyTest, CountsAreConsistent)
{
    const Geometry g = GetParam();
    stats::StatGroup root("t");
    DriICache c(paramsFor(g), nullptr, &root);
    Rng rng(g.sizeBound + 17);

    std::uint64_t hits = 0;
    const int n = 5000;
    for (int i = 0; i < n; ++i) {
        const Addr addr = rng.range(2048) * g.blockBytes;
        hits += c.access(addr, AccessType::InstFetch).hit ? 1 : 0;
        if (i % 500 == 0)
            c.retireInstructions(500);
        EXPECT_DOUBLE_EQ(
            c.activeFraction(),
            static_cast<double>(c.currentSets()) /
                static_cast<double>(c.sizeMask().maxSets()));
    }
    EXPECT_EQ(c.accesses(), static_cast<std::uint64_t>(n));
    EXPECT_EQ(c.accesses() - c.misses(), hits);
}

/**
 * Behavioural equivalence: with adaptation disabled, the DRI
 * i-cache at full size must produce exactly the same hit/miss
 * sequence as a conventional direct-mapped/set-associative cache
 * of the same geometry.
 */
TEST_P(DriPropertyTest, NonAdaptiveMatchesConventional)
{
    const Geometry g = GetParam();
    stats::StatGroup root("t");
    DriParams p = paramsFor(g);
    p.adaptive = false;
    DriICache dri(p, nullptr, &root);

    CacheParams cp;
    cp.name = "ref";
    cp.sizeBytes = g.sizeBytes;
    cp.assoc = g.assoc;
    cp.blockBytes = g.blockBytes;
    Cache ref(cp, nullptr, &root);

    Rng rng(g.sizeBytes ^ 0xdead);
    for (int i = 0; i < 20000; ++i) {
        const Addr addr = rng.range(1 << 14) * g.blockBytes;
        const bool a = dri.access(addr, AccessType::InstFetch).hit;
        const bool b = ref.access(addr, AccessType::InstFetch).hit;
        ASSERT_EQ(a, b) << "divergence at access " << i;
    }
}

/**
 * Invariant: blocks whose min-size index keeps them in the powered
 * region survive an immediate downsize; a hit after downsizing is
 * only legal for such blocks.
 */
TEST_P(DriPropertyTest, SurvivorsAreLowSets)
{
    const Geometry g = GetParam();
    if (g.sizeBound == g.sizeBytes)
        GTEST_SKIP() << "no resizing range";
    stats::StatGroup root("t");
    DriParams p = paramsFor(g);
    p.missBound = 1000000; // force downsizing at every interval
    DriICache c(p, nullptr, &root);

    // Touch every set once.
    const std::uint64_t sets = c.currentSets();
    for (std::uint64_t s = 0; s < sets; ++s)
        c.access(s * g.blockBytes, AccessType::InstFetch);

    c.retireInstructions(p.senseInterval); // downsize
    const std::uint64_t new_sets = c.currentSets();
    ASSERT_LT(new_sets, sets);

    for (std::uint64_t s = 0; s < sets; ++s) {
        const bool hit =
            c.access(s * g.blockBytes, AccessType::InstFetch).hit;
        if (s < new_sets) {
            EXPECT_TRUE(hit) << "low set " << s << " lost";
        } else {
            EXPECT_FALSE(hit) << "gated set " << s << " retained";
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, DriPropertyTest,
    ::testing::Values(
        Geometry{8 * 1024, 1, 32, 1024, 2},
        Geometry{8 * 1024, 2, 32, 1024, 2},
        Geometry{16 * 1024, 4, 32, 2048, 2},
        Geometry{8 * 1024, 1, 64, 2048, 2},
        Geometry{64 * 1024, 1, 32, 1024, 2},
        Geometry{64 * 1024, 4, 32, 4096, 4},
        Geometry{16 * 1024, 1, 16, 1024, 8},
        Geometry{4 * 1024, 1, 32, 4 * 1024, 2}),
    [](const ::testing::TestParamInfo<Geometry> &info) {
        const Geometry &g = info.param;
        return std::to_string(g.sizeBytes / 1024) + "K_a" +
               std::to_string(g.assoc) + "_b" +
               std::to_string(g.blockBytes) + "_sb" +
               std::to_string(g.sizeBound / 1024) + "K_d" +
               std::to_string(g.divisibility);
    });

} // namespace
} // namespace drisim
