/**
 * @file
 * Synthetic SPEC95 suite tests: the 15 paper benchmarks plus the
 * class-4 sharing workloads exist, class properties hold, images
 * build with the right footprints.
 */

#include <gtest/gtest.h>

#include <set>

#include "workload/generator.hh"
#include "workload/spec_suite.hh"

namespace drisim
{
namespace
{

TEST(SpecSuite, PaperBenchmarksThenSharingWorkloadsInOrder)
{
    const auto &suite = specSuite();
    ASSERT_EQ(suite.size(), 18u);
    const std::vector<std::string> expected = {
        "applu", "compress", "li", "mgrid", "swim",
        "apsi", "fpppp", "go", "m88ksim", "perl",
        "gcc", "hydro2d", "ijpeg", "su2cor", "tomcatv",
        "shared_image", "producer", "consumer"};
    for (size_t i = 0; i < expected.size(); ++i)
        EXPECT_EQ(suite[i].name, expected[i]);
}

TEST(SpecSuite, ClassAssignmentsMatchSection53)
{
    const std::set<std::string> class1 = {"applu", "compress", "li",
                                          "mgrid", "swim"};
    const std::set<std::string> class2 = {"apsi", "fpppp", "go",
                                          "m88ksim", "perl"};
    const std::set<std::string> class4 = {"shared_image", "producer",
                                          "consumer"};
    for (const auto &b : specSuite()) {
        if (class1.count(b.name))
            EXPECT_EQ(b.benchClass, 1) << b.name;
        else if (class2.count(b.name))
            EXPECT_EQ(b.benchClass, 2) << b.name;
        else if (class4.count(b.name))
            EXPECT_EQ(b.benchClass, 4) << b.name;
        else
            EXPECT_EQ(b.benchClass, 3) << b.name;
    }
}

TEST(SpecSuite, SeedsAreUnique)
{
    std::set<std::uint64_t> seeds;
    for (const auto &b : specSuite())
        EXPECT_TRUE(seeds.insert(b.spec.seed).second) << b.name;
}

TEST(SpecSuite, Class1HasSmallMainFootprint)
{
    for (const auto &b : specSuite()) {
        if (b.benchClass != 1)
            continue;
        // The dominant (longest) phase must have a small footprint.
        const PhaseSpec *longest = &b.spec.phases[0];
        for (const auto &p : b.spec.phases)
            if (p.dynInstrs > longest->dynInstrs)
                longest = &p;
        EXPECT_LE(longest->codeBytes, 4u * 1024) << b.name;
    }
}

TEST(SpecSuite, Class2HasLargeFootprint)
{
    for (const auto &b : specSuite()) {
        if (b.benchClass != 2)
            continue;
        std::uint64_t max_code = 0;
        for (const auto &p : b.spec.phases)
            max_code = std::max(max_code, p.codeBytes);
        EXPECT_GE(max_code, 20u * 1024) << b.name;
    }
}

TEST(SpecSuite, Class3HasMultiplePhases)
{
    for (const auto &b : specSuite()) {
        if (b.benchClass != 3)
            continue;
        EXPECT_GE(b.spec.phases.size(), 2u) << b.name;
    }
}

TEST(SpecSuite, FppppNearlyFillsTheCache)
{
    const auto &fpppp = findBenchmark("fpppp");
    EXPECT_GE(fpppp.spec.phases[0].codeBytes, 56u * 1024);
    EXPECT_LE(fpppp.spec.phases[0].codeBytes, 64u * 1024);
}

TEST(SpecSuite, ConflictBenchmarksUseBanks)
{
    // Figure 6's conflict set: gcc, go, hydro2d, su2cor, swim,
    // tomcatv place code in 64 KB-strided banks.
    for (const char *name :
         {"gcc", "go", "hydro2d", "su2cor", "swim", "tomcatv"}) {
        const auto &b = findBenchmark(name);
        bool banked = false;
        for (const auto &p : b.spec.phases)
            banked |= p.conflictBanks > 1;
        EXPECT_TRUE(banked) << name;
    }
}

TEST(SpecSuite, AllImagesBuildWithSaneFootprints)
{
    for (const auto &b : specSuite()) {
        const ProgramImage img = buildProgram(b.spec);
        ASSERT_EQ(img.phases.size(), b.spec.phases.size()) << b.name;
        for (size_t p = 0; p < img.phases.size(); ++p) {
            const double actual =
                static_cast<double>(img.phaseCodeBytes(p));
            const double target =
                static_cast<double>(b.spec.phases[p].codeBytes);
            EXPECT_NEAR(actual / target, 1.0, 0.2)
                << b.name << " phase " << p;
        }
    }
}

TEST(SpecSuite, AllStreamsGenerate)
{
    for (const auto &b : specSuite()) {
        const ProgramImage img = buildProgram(b.spec);
        TraceGenerator gen(img);
        Instr ins;
        for (int i = 0; i < 2000; ++i)
            ASSERT_TRUE(gen.next(ins)) << b.name;
    }
}

TEST(SpecSuite, SharingWorkloadsShareOneWindowOthersNone)
{
    // Class-4 benchmarks draw part of their data stream from one
    // cross-core shared window (same base on every core); every
    // paper benchmark keeps sharedBytes == 0, which also pins the
    // generator's sharing-free RNG sequence (workload/generator.cc).
    for (const auto &b : specSuite()) {
        bool shares = false;
        for (const auto &p : b.spec.phases) {
            if (p.sharedBytes == 0)
                continue;
            shares = true;
            EXPECT_GT(p.sharedFraction, 0.0) << b.name;
            EXPECT_LT(p.sharedFraction, 1.0) << b.name;
            EXPECT_EQ(p.sharedBase, 0x2000'0000u) << b.name;
        }
        EXPECT_EQ(shares, b.benchClass == 4) << b.name;
    }
}

TEST(SpecSuite, FindBenchmarkDiesOnUnknown)
{
    EXPECT_DEATH(
        { findBenchmark("doom"); }, "");
}

} // namespace
} // namespace drisim
