/**
 * @file
 * Sweep-farm tests: the shard-plan algebra every registered sweep
 * must satisfy (pairwise disjoint, covering, stable across
 * execution order), strict --shard spec parsing, fragment
 * round-trip and resume adoption, and merge semantics (dedup under
 * the result-cache rule, hash-collision rejection, hole detection
 * with owner-shard attribution, manifest round-trip).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <random>
#include <set>
#include <unistd.h>

#include "farm/fragment.hh"
#include "farm/merge.hh"
#include "farm/shard_plan.hh"
#include "farm/sweep_registry.hh"
#include "sim/checkpoint.hh"
#include "sim/result_cache.hh"

namespace drisim::farm
{
namespace
{

std::string
tempPath(const std::string &name)
{
    return (std::filesystem::temp_directory_path() /
            ("drisim_farm_" + std::to_string(::getpid()) + "_" +
             name))
        .string();
}

SweepSetup
defaultSetup()
{
    SweepSetup s;
    s.cfg.maxInstrs = 1000000;
    return s;
}

// ---------------------------------------------------------------
// Shard-plan algebra
// ---------------------------------------------------------------

TEST(ShardPlan, UnshardedOwnsEverything)
{
    const ShardPlan p{};
    EXPECT_FALSE(p.active());
    EXPECT_TRUE(p.owns(0u));
    EXPECT_TRUE(p.owns(0xdeadbeefu));
    EXPECT_EQ(p.spec(), "1/1");
}

TEST(ShardPlan, SpecRoundTrips)
{
    ShardPlan p;
    std::string err;
    ASSERT_TRUE(parseShardSpec("2/3", p, err)) << err;
    EXPECT_EQ(p.shard, 1u);
    EXPECT_EQ(p.ofShards, 3u);
    EXPECT_TRUE(p.active());
    EXPECT_EQ(p.spec(), "2/3");

    ShardPlan again;
    ASSERT_TRUE(parseShardSpec(p.spec(), again, err)) << err;
    EXPECT_EQ(p, again);
}

TEST(ShardPlan, StrictSpecParsing)
{
    ShardPlan p;
    std::string err;
    for (const char *bad :
         {"", "/", "2", "2/", "/3", "0/3", "4/3", "-1/3", "2/-3",
          "+1/3", "a/b", "1/0", "2/4097", "1/3/5", "1 /3"}) {
        err.clear();
        EXPECT_FALSE(parseShardSpec(bad, p, err)) << bad;
        EXPECT_FALSE(err.empty()) << bad;
    }
    EXPECT_TRUE(parseShardSpec("1/1", p, err));
    EXPECT_FALSE(p.active());
    EXPECT_TRUE(parseShardSpec("4096/4096", p, err));
    EXPECT_EQ(p.ofShards, 4096u);
}

/**
 * The core farm invariant, proven against the real registry: for
 * every registered sweep and every width, the shard plans form a
 * partition of the unit list — each unit is owned by exactly one
 * shard — and ownership depends only on the unit's stable hash, so
 * any execution order shards identically.
 */
TEST(ShardPlan, PartitionsEveryRegisteredSweep)
{
    const SweepSetup setup = defaultSetup();
    for (const std::string &sweep : sweepNames()) {
        SCOPED_TRACE(sweep);
        const std::vector<SweepUnit> units = sweepUnits(sweep, setup);
        ASSERT_FALSE(units.empty());

        // Unit hashes must be distinct, or two units would be
        // indistinguishable to the merge dedup.
        std::set<std::uint64_t> hashes;
        for (const SweepUnit &u : units) {
            EXPECT_TRUE(hashes.insert(u.hash).second)
                << "duplicate unit hash for " << u.label;
            EXPECT_EQ(u.hashHex, sim::toHex64(u.hash));
        }

        for (unsigned n : {1u, 2u, 3u, 7u}) {
            SCOPED_TRACE(n);
            std::size_t owned = 0;
            for (const SweepUnit &u : units) {
                unsigned owners = 0;
                for (unsigned k = 0; k < n; ++k) {
                    const ShardPlan plan{k, n};
                    if (plan.owns(u.hash))
                        ++owners;
                }
                EXPECT_EQ(owners, 1u)
                    << u.label << " owned by " << owners
                    << " shards at width " << n;
                owned += owners;
            }
            EXPECT_EQ(owned, units.size());
        }

        // Stability under execution order: ownership is a pure
        // function of the hash, so shuffling the unit list changes
        // nothing about who owns what.
        std::vector<SweepUnit> shuffled = units;
        std::mt19937 rng(12345);
        std::shuffle(shuffled.begin(), shuffled.end(), rng);
        const ShardPlan plan{1, 3};
        std::set<std::string> a, b;
        for (const SweepUnit &u : units)
            if (plan.owns(u.hash))
                a.insert(u.config);
        for (const SweepUnit &u : shuffled)
            if (plan.owns(u.hash))
                b.insert(u.config);
        EXPECT_EQ(a, b);
    }
}

/** Re-enumerating a sweep yields identical units: labels, configs
 *  and hashes — the registry is deterministic, which is what makes
 *  fragments from different processes joinable. */
TEST(SweepRegistry, EnumerationIsStable)
{
    const SweepSetup setup = defaultSetup();
    for (const std::string &sweep : sweepNames()) {
        const auto once = sweepUnits(sweep, setup);
        const auto twice = sweepUnits(sweep, setup);
        ASSERT_EQ(once.size(), twice.size());
        for (std::size_t i = 0; i < once.size(); ++i) {
            EXPECT_EQ(once[i].label, twice[i].label);
            EXPECT_EQ(once[i].config, twice[i].config);
            EXPECT_EQ(once[i].hash, twice[i].hash);
        }
    }
}

/** A config change re-keys every unit (the shard key is semantic):
 *  sharding a different experiment never aliases the old one. */
TEST(SweepRegistry, UnitHashesTrackConfig)
{
    SweepSetup a = defaultSetup();
    SweepSetup b = a;
    b.cfg.maxInstrs = a.cfg.maxInstrs * 2;
    const auto ua = sweepUnits("figure4", a);
    const auto ub = sweepUnits("figure4", b);
    ASSERT_EQ(ua.size(), ub.size());
    for (std::size_t i = 0; i < ua.size(); ++i)
        EXPECT_NE(ua[i].hash, ub[i].hash) << ua[i].label;
}

// ---------------------------------------------------------------
// Fragments
// ---------------------------------------------------------------

Fragment
sampleFragment(unsigned shard, unsigned ofShards)
{
    Fragment f;
    f.bench = "bench_test";
    f.shard = ShardPlan{shard, ofShards};
    f.columns = {"benchmark", "value", "config_hash"};
    for (std::uint64_t i = 0; i < 4; ++i)
        f.plan.push_back({i, sim::toHex64(0x1000 + i)});
    return f;
}

SweepUnit
sampleUnit(std::uint64_t i)
{
    SweepUnit u;
    u.label = "unit" + std::to_string(i);
    u.config = "bench=unit" + std::to_string(i) + ";instrs=1000;";
    u.hash = 0x1000 + i;
    u.hashHex = sim::toHex64(u.hash);
    return u;
}

FragmentRecord
sampleRecord(std::uint64_t i)
{
    const SweepUnit u = sampleUnit(i);
    FragmentRecord r;
    r.index = i;
    r.hash = u.hashHex;
    r.config = u.config;
    r.rows = {{u.label, std::to_string(i * 10), u.hashHex}};
    return r;
}

TEST(Fragment, RenderReadRoundTrip)
{
    Fragment f = sampleFragment(1, 3);
    f.records.push_back(sampleRecord(1));
    f.records.back().wallSeconds = "1.234";
    f.records.push_back(sampleRecord(3));
    f.complete = true;

    const std::string path = tempPath("roundtrip.part.json");
    std::string err;
    ASSERT_TRUE(writeFileAtomic(path, renderFragment(f), err)) << err;

    Fragment g;
    ASSERT_TRUE(readFragment(path, g, err)) << err;
    EXPECT_EQ(g.bench, f.bench);
    EXPECT_EQ(g.shard, f.shard);
    EXPECT_EQ(g.columns, f.columns);
    ASSERT_EQ(g.plan.size(), f.plan.size());
    for (std::size_t i = 0; i < f.plan.size(); ++i) {
        EXPECT_EQ(g.plan[i].index, f.plan[i].index);
        EXPECT_EQ(g.plan[i].hash, f.plan[i].hash);
    }
    ASSERT_EQ(g.records.size(), 2u);
    EXPECT_EQ(g.records[0].config, f.records[0].config);
    EXPECT_EQ(g.records[0].wallSeconds, "1.234");
    EXPECT_EQ(g.records[1].rows, f.records[1].rows);
    EXPECT_EQ(g.records[1].wallSeconds, "0.000");
    EXPECT_TRUE(g.complete);
    std::filesystem::remove(path);
}

TEST(Fragment, ReadRejectsGarbage)
{
    const std::string path = tempPath("garbage.part.json");
    std::ofstream(path) << "{\"not\": \"a fragment\"}";
    Fragment f;
    std::string err;
    EXPECT_FALSE(readFragment(path, f, err));
    EXPECT_FALSE(err.empty());
    std::filesystem::remove(path);

    EXPECT_FALSE(readFragment(tempPath("nonexistent"), f, err));
}

TEST(FragmentWriter, StreamsAndResumes)
{
    const std::string path = tempPath("writer.part.json");
    std::filesystem::remove(path);
    std::vector<SweepUnit> units;
    for (std::uint64_t i = 0; i < 4; ++i)
        units.push_back(sampleUnit(i));
    const std::vector<std::string> cols{"benchmark", "value",
                                        "config_hash"};
    const ShardPlan shard{1, 3};

    {
        FragmentWriter w(path, "bench_test", shard, cols, units);
        EXPECT_EQ(w.resumedRecords(), 0u);
        w.addRecord(1, units[1], {{"unit1", "10", units[1].hashHex}},
                    "2.500");
        // No finalize: simulates a shard killed mid-sweep. The
        // record-at-a-time rewrite means the file on disk already
        // holds unit 1.
    }

    {
        // Same identity: the fragment is adopted.
        FragmentWriter w(path, "bench_test", shard, cols, units);
        EXPECT_EQ(w.resumedRecords(), 1u);
        EXPECT_TRUE(w.hasRecord(1));
        EXPECT_FALSE(w.hasRecord(2));
        w.addRecord(2, units[2], {{"unit2", "20", units[2].hashHex}});
        w.finalize();
    }

    Fragment f;
    std::string err;
    ASSERT_TRUE(readFragment(path, f, err)) << err;
    EXPECT_TRUE(f.complete);
    ASSERT_EQ(f.records.size(), 2u);
    EXPECT_EQ(f.records[0].index, 1u);
    // The resumed record keeps its original per-unit wall seconds.
    EXPECT_EQ(f.records[0].wallSeconds, "2.500");
    EXPECT_EQ(f.records[1].index, 2u);

    {
        // Different plan (a changed config): the stale fragment is
        // discarded, not silently merged into the new experiment.
        std::vector<SweepUnit> other = units;
        other[0].hash ^= 0xff;
        other[0].hashHex = sim::toHex64(other[0].hash);
        FragmentWriter w(path, "bench_test", shard, cols, other);
        EXPECT_EQ(w.resumedRecords(), 0u);
        EXPECT_FALSE(w.hasRecord(1));
    }
    std::filesystem::remove(path);
}

// ---------------------------------------------------------------
// Merge
// ---------------------------------------------------------------

/** Write fragment @p f to a temp file and return the path. */
std::string
writeFrag(const Fragment &f, const std::string &name)
{
    const std::string path = tempPath(name);
    std::string err;
    EXPECT_TRUE(writeFileAtomic(path, renderFragment(f), err)) << err;
    return path;
}

TEST(Merge, JoinsDisjointFragmentsInPlanOrder)
{
    Fragment a = sampleFragment(0, 2);
    a.records.push_back(sampleRecord(2));
    a.records.push_back(sampleRecord(0));
    a.complete = true;
    Fragment b = sampleFragment(1, 2);
    b.records.push_back(sampleRecord(3));
    b.records.push_back(sampleRecord(1));
    b.complete = true;

    const std::string pa = writeFrag(a, "merge_a.part.json");
    const std::string pb = writeFrag(b, "merge_b.part.json");
    MergeResult out;
    std::string err;
    ASSERT_TRUE(mergeFragments({pa, pb}, out, err)) << err;
    EXPECT_TRUE(out.missing.empty());
    EXPECT_EQ(out.duplicates, 0u);
    ASSERT_EQ(out.rows.size(), 4u);
    // Rows come out in plan order however the shards finished.
    for (std::uint64_t i = 0; i < 4; ++i)
        EXPECT_EQ(out.rows[i][0], "unit" + std::to_string(i));
    std::filesystem::remove(pa);
    std::filesystem::remove(pb);
}

TEST(Merge, DropsExactDuplicates)
{
    Fragment a = sampleFragment(0, 2);
    a.records.push_back(sampleRecord(0));
    a.records.push_back(sampleRecord(1)); // overlap with b
    Fragment b = sampleFragment(1, 2);
    b.records.push_back(sampleRecord(1));
    // Dedup compares config+rows only: a re-run's differing wall
    // seconds never turns an exact duplicate into a conflict.
    b.records.back().wallSeconds = "9.999";
    b.records.push_back(sampleRecord(2));
    b.records.push_back(sampleRecord(3));

    const std::string pa = writeFrag(a, "dup_a.part.json");
    const std::string pb = writeFrag(b, "dup_b.part.json");
    MergeResult out;
    std::string err;
    ASSERT_TRUE(mergeFragments({pa, pb}, out, err)) << err;
    EXPECT_EQ(out.duplicates, 1u);
    EXPECT_EQ(out.rows.size(), 4u);
    std::filesystem::remove(pa);
    std::filesystem::remove(pb);
}

TEST(Merge, RejectsHashCollision)
{
    // Same hash, different canonical config: the result-cache rule
    // makes this a hard error, never a silent pick.
    Fragment a = sampleFragment(0, 2);
    a.records.push_back(sampleRecord(1));
    Fragment b = sampleFragment(1, 2);
    FragmentRecord r = sampleRecord(1);
    r.config = "bench=imposter;instrs=1000;";
    b.records.push_back(r);

    const std::string pa = writeFrag(a, "coll_a.part.json");
    const std::string pb = writeFrag(b, "coll_b.part.json");
    MergeResult out;
    std::string err;
    EXPECT_FALSE(mergeFragments({pa, pb}, out, err));
    EXPECT_NE(err.find("collision"), std::string::npos) << err;
    std::filesystem::remove(pa);
    std::filesystem::remove(pb);
}

TEST(Merge, RejectsConflictingDuplicateRows)
{
    Fragment a = sampleFragment(0, 2);
    a.records.push_back(sampleRecord(1));
    Fragment b = sampleFragment(1, 2);
    FragmentRecord r = sampleRecord(1);
    r.rows[0][1] = "different";
    b.records.push_back(r);

    const std::string pa = writeFrag(a, "conf_a.part.json");
    const std::string pb = writeFrag(b, "conf_b.part.json");
    MergeResult out;
    std::string err;
    EXPECT_FALSE(mergeFragments({pa, pb}, out, err));
    std::filesystem::remove(pa);
    std::filesystem::remove(pb);
}

TEST(Merge, RejectsMismatchedSweeps)
{
    Fragment a = sampleFragment(0, 2);
    Fragment b = sampleFragment(1, 3); // different width
    const std::string pa = writeFrag(a, "mm_a.part.json");
    const std::string pb = writeFrag(b, "mm_b.part.json");
    MergeResult out;
    std::string err;
    EXPECT_FALSE(mergeFragments({pa, pb}, out, err));

    Fragment c = sampleFragment(1, 2);
    c.bench = "bench_other";
    const std::string pc = writeFrag(c, "mm_c.part.json");
    EXPECT_FALSE(mergeFragments({pa, pc}, out, err));
    std::filesystem::remove(pa);
    std::filesystem::remove(pb);
    std::filesystem::remove(pc);
}

TEST(Merge, ReportsHolesWithOwnerShard)
{
    // Shard 1/2's fragment is missing entirely; shard 2/2 delivered
    // only part of its work.
    Fragment b = sampleFragment(1, 2);
    b.records.push_back(sampleRecord(1));
    const std::string pb = writeFrag(b, "holes_b.part.json");

    MergeResult out;
    std::string err;
    ASSERT_TRUE(mergeFragments({pb}, out, err)) << err;
    ASSERT_EQ(out.missing.size(), 3u);
    for (const MissingUnit &m : out.missing) {
        // Owner = hash % N + 1 (1-based), straight from the plan.
        const unsigned expect = static_cast<unsigned>(
            sim::fromHex64(m.hash) % 2 + 1);
        EXPECT_EQ(m.shard, expect);
    }

    // Manifest round-trip.
    const std::string doc =
        renderResumeManifest(out.bench, out.ofShards, out.missing);
    const std::string mp = tempPath("holes.resume.json");
    ASSERT_TRUE(writeFileAtomic(mp, doc, err)) << err;
    ResumeManifest manifest;
    ASSERT_TRUE(parseResumeManifest(mp, manifest, err)) << err;
    EXPECT_EQ(manifest.bench, "bench_test");
    EXPECT_EQ(manifest.ofShards, 2u);
    ASSERT_EQ(manifest.missing.size(), 3u);
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_EQ(manifest.missing[i].index, out.missing[i].index);
        EXPECT_EQ(manifest.missing[i].hash, out.missing[i].hash);
        EXPECT_EQ(manifest.missing[i].shard, out.missing[i].shard);
    }
    const std::vector<unsigned> shards = manifest.shards();
    EXPECT_TRUE(std::is_sorted(shards.begin(), shards.end()));
    EXPECT_TRUE(std::set<unsigned>(shards.begin(), shards.end())
                    .size() == shards.size());
    std::filesystem::remove(pb);
    std::filesystem::remove(mp);
}

TEST(Merge, RenderBenchJsonMatchesSchema)
{
    const std::string doc = renderBenchJson(
        "bench_test", ShardPlan{}, 0.0, 1,
        {"benchmark", "value"}, {{"compress", "1"}, {"li", "2"}});
    EXPECT_EQ(doc,
              "{\n"
              "  \"bench\": \"bench_test\",\n"
              "  \"schema_version\": 2,\n"
              "  \"shard\": 0,\n"
              "  \"of_shards\": 0,\n"
              "  \"wall_seconds\": 0.000,\n"
              "  \"workers\": 1,\n"
              "  \"columns\": [\"benchmark\", \"value\"],\n"
              "  \"winners\": [\n"
              "    {\"benchmark\": \"compress\", \"value\": \"1\"},\n"
              "    {\"benchmark\": \"li\", \"value\": \"2\"}\n"
              "  ]\n"
              "}\n");

    // An active shard stamps 1-based provenance.
    const std::string sharded = renderBenchJson(
        "bench_test", ShardPlan{1, 3}, 0.0, 1, {"c"}, {});
    EXPECT_NE(sharded.find("\"shard\": 2,"), std::string::npos);
    EXPECT_NE(sharded.find("\"of_shards\": 3,"), std::string::npos);
}

TEST(Checkpoint, HexRoundTrip)
{
    for (std::uint64_t v :
         {std::uint64_t{0}, std::uint64_t{1},
          std::uint64_t{0xdeadbeefcafebabe},
          ~std::uint64_t{0}})
        EXPECT_EQ(sim::fromHex64(sim::toHex64(v)), v);
    EXPECT_EQ(sim::fromHex64(""), 0u);
    EXPECT_EQ(sim::fromHex64("zz"), 0u);
}

} // namespace
} // namespace drisim::farm
