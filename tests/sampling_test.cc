/**
 * @file
 * Phase-sampling tests: sampled-vs-full accuracy against the
 * documented error bounds (docs/REPRODUCTION.md, "Fast mode"),
 * exact determinism across repeats and worker counts, and
 * non-aliasing of sampled and full results in the result cache.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>

#include "harness/multilevel.hh"
#include "harness/runner.hh"
#include "sim/result_cache.hh"
#include "workload/spec_suite.hh"

namespace drisim
{
namespace
{

/**
 * Documented sampling error bounds for the shape exercised here
 * (window 50 k / period 250 k over 1 M instructions, i.e. 20 %
 * detailed). Measured errors on compress/li sit at roughly half of
 * each bound; docs/REPRODUCTION.md quotes the same numbers.
 */
constexpr double kCpiBound = 0.15;
constexpr double kL1FracBound = 0.15;
constexpr double kL2FracBound = 0.20;
constexpr double kLeakBound = 0.30;

RunConfig
fullConfig()
{
    RunConfig cfg;
    cfg.maxInstrs = 1000 * 1000;
    return cfg;
}

RunConfig
sampledConfig()
{
    RunConfig cfg = fullConfig();
    cfg.sampling.enabled = true;
    cfg.sampling.detailedWindow = 50 * 1000;
    cfg.sampling.period = 250 * 1000;
    return cfg;
}

DriParams
quickDri()
{
    DriParams p;
    p.senseInterval = 20 * 1000;
    p.sizeBoundBytes = 1024;
    p.missBound = 100;
    return p;
}

double
relErr(double sampled, double full)
{
    return std::abs(sampled - full) / full;
}

void
expectWithinBounds(const BenchmarkInfo &bench)
{
    const RunConfig full = fullConfig();
    const RunConfig samp = sampledConfig();
    const DriParams dri = quickDri();

    // Conventional and DRI CPI.
    const RunOutput fc = runConventional(bench, full);
    const RunOutput sc = runConventional(bench, samp);
    EXPECT_LT(relErr(1.0 / sc.ipc, 1.0 / fc.ipc), kCpiBound);

    const RunOutput fd = runDri(bench, full, dri);
    const RunOutput sd = runDri(bench, samp, dri);
    EXPECT_LT(relErr(1.0 / sd.ipc, 1.0 / fd.ipc), kCpiBound);

    // L1 leakage: powered fraction, and the leakage-energy proxy
    // (fraction x cycles — the per-cycle constant cancels).
    EXPECT_LT(relErr(sd.meas.avgActiveFraction,
                     fd.meas.avgActiveFraction),
              kL1FracBound);
    EXPECT_LT(
        relErr(sd.meas.avgActiveFraction *
                   static_cast<double>(sd.meas.cycles),
               fd.meas.avgActiveFraction *
                   static_cast<double>(fd.meas.cycles)),
        kLeakBound);

    // L2 leakage under a DRI L2.
    RunConfig fullL2 = full;
    fullL2.hier.l2Dri = true;
    RunConfig sampL2 = samp;
    sampL2.hier.l2Dri = true;
    const RunOutput f2 = runConventional(bench, fullL2);
    const RunOutput s2 = runConventional(bench, sampL2);
    EXPECT_LT(relErr(1.0 / s2.ipc, 1.0 / f2.ipc), kCpiBound);
    EXPECT_LT(relErr(s2.l2AvgActiveFraction, f2.l2AvgActiveFraction),
              kL2FracBound);
    EXPECT_LT(relErr(s2.l2AvgActiveFraction *
                         static_cast<double>(s2.meas.cycles),
                     f2.l2AvgActiveFraction *
                         static_cast<double>(f2.meas.cycles)),
              kLeakBound);
}

// Every field of two RunOutputs, compared exactly.
void
expectSameRun(const RunOutput &a, const RunOutput &b)
{
    EXPECT_EQ(a.meas.cycles, b.meas.cycles);
    EXPECT_EQ(a.meas.instructions, b.meas.instructions);
    EXPECT_EQ(a.meas.l1iAccesses, b.meas.l1iAccesses);
    EXPECT_EQ(a.meas.l1iMisses, b.meas.l1iMisses);
    EXPECT_EQ(a.meas.avgActiveFraction, b.meas.avgActiveFraction);
    EXPECT_EQ(a.meas.resizingTagBits, b.meas.resizingTagBits);
    EXPECT_EQ(a.meas.l1iBytes, b.meas.l1iBytes);
    EXPECT_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.l1dMissRate, b.l1dMissRate);
    EXPECT_EQ(a.l2MissRate, b.l2MissRate);
    EXPECT_EQ(a.l2Accesses, b.l2Accesses);
    EXPECT_EQ(a.l2Misses, b.l2Misses);
    EXPECT_EQ(a.memAccesses, b.memAccesses);
    EXPECT_EQ(a.resizes, b.resizes);
    EXPECT_EQ(a.throttleEvents, b.throttleEvents);
    EXPECT_EQ(a.l2SizeBytes, b.l2SizeBytes);
    EXPECT_EQ(a.l2AvgActiveFraction, b.l2AvgActiveFraction);
    EXPECT_EQ(a.l2ResizingTagBits, b.l2ResizingTagBits);
    EXPECT_EQ(a.l2Resizes, b.l2Resizes);
    EXPECT_EQ(a.l1DrowsyFraction, b.l1DrowsyFraction);
    EXPECT_EQ(a.wakeTransitions, b.wakeTransitions);
    EXPECT_EQ(a.wakeStallCycles, b.wakeStallCycles);
    EXPECT_EQ(a.policyBlocksLost, b.policyBlocksLost);
}

/** Self-deleting scratch directory for result-cache sidecars. */
class TempDir
{
  public:
    TempDir()
    {
        char tmpl[] = "/tmp/drisim_samp_XXXXXX";
        path_ = mkdtemp(tmpl);
    }
    ~TempDir()
    {
        std::error_code ec;
        std::filesystem::remove_all(path_, ec);
    }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

// --- accuracy ---------------------------------------------------------

TEST(SamplingAccuracy, CompressWithinDocumentedBounds)
{
    expectWithinBounds(findBenchmark("compress"));
}

TEST(SamplingAccuracy, LiWithinDocumentedBounds)
{
    expectWithinBounds(findBenchmark("li"));
}

// --- determinism ------------------------------------------------------

TEST(SamplingDeterminism, IdenticalAcrossRepeats)
{
    const auto &b = findBenchmark("compress");
    const RunConfig cfg = sampledConfig();
    const DriParams dri = quickDri();
    expectSameRun(runDri(b, cfg, dri), runDri(b, cfg, dri));

    RunConfig l2cfg = cfg;
    l2cfg.hier.l2Dri = true;
    expectSameRun(runConventional(b, l2cfg),
                  runConventional(b, l2cfg));
}

TEST(SamplingDeterminism, DeterministicAcrossWorkerCounts)
{
    const auto &b = findBenchmark("compress");
    RunConfig cfg;
    cfg.maxInstrs = 100 * 1000;
    cfg.sampling.enabled = true;
    cfg.sampling.detailedWindow = 10 * 1000;
    cfg.sampling.period = 50 * 1000;

    MultiLevelSpace space;
    space.l1SizeBounds = {1024, 65536};
    space.l2SizeBounds = {64 * 1024, 1024 * 1024};
    DriParams l1Tmpl;
    l1Tmpl.senseInterval = 20 * 1000;
    DriParams l2Tmpl = HierarchyParams::defaultL2DriParams();
    l2Tmpl.senseInterval = 20 * 1000;
    const MultiLevelConstants constants =
        MultiLevelConstants::paper();

    const RunOutput conv = runConventional(b, cfg);

    auto run = [&](unsigned jobs) {
        RunConfig c2 = cfg;
        c2.jobs = jobs;
        return searchMultiLevel(b, c2, l1Tmpl, l2Tmpl, space,
                                constants, 4.0, conv);
    };
    const MultiLevelSearchResult serial = run(1);
    const MultiLevelSearchResult parallel = run(4);

    ASSERT_EQ(serial.evaluated.size(), parallel.evaluated.size());
    for (std::size_t i = 0; i < serial.evaluated.size(); ++i) {
        const MultiLevelCandidate &a = serial.evaluated[i];
        const MultiLevelCandidate &c = parallel.evaluated[i];
        EXPECT_EQ(a.l1.sizeBoundBytes, c.l1.sizeBoundBytes);
        EXPECT_EQ(a.l2.sizeBoundBytes, c.l2.sizeBoundBytes);
        EXPECT_EQ(a.cmp.relativeEnergyDelay(),
                  c.cmp.relativeEnergyDelay());
        EXPECT_EQ(a.cmp.slowdownPercent(), c.cmp.slowdownPercent());
        EXPECT_EQ(a.feasible, c.feasible);
    }
    EXPECT_EQ(serial.best.l1.sizeBoundBytes,
              parallel.best.l1.sizeBoundBytes);
    EXPECT_EQ(serial.best.l2.sizeBoundBytes,
              parallel.best.l2.sizeBoundBytes);
    EXPECT_EQ(serial.best.cmp.relativeEnergyDelay(),
              parallel.best.cmp.relativeEnergyDelay());
}

// --- result-cache identity --------------------------------------------

TEST(SamplingKeys, SampledAndFullNeverAlias)
{
    const auto &b = findBenchmark("compress");
    const RunConfig full = fullConfig();
    const RunConfig samp = sampledConfig();

    // Every sampling knob is part of the run identity.
    const std::string fullHash = runKeyConventional(b, full).hashHex();
    EXPECT_NE(runKeyConventional(b, samp).hashHex(), fullHash);
    RunConfig widened = samp;
    widened.sampling.detailedWindow += 1;
    EXPECT_NE(runKeyConventional(b, widened).hashHex(),
              runKeyConventional(b, samp).hashHex());
    RunConfig stretched = samp;
    stretched.sampling.period += 1;
    EXPECT_NE(runKeyConventional(b, stretched).hashHex(),
              runKeyConventional(b, samp).hashHex());

    // A shared result cache keeps them apart: a full run's entry is
    // never served to a sampled run, and each replays from its own.
    TempDir dir;
    auto cache = std::make_shared<sim::ResultCache>(dir.path() +
                                                    "/results.json");
    RunConfig fullC = full;
    fullC.resultCache = cache;
    RunConfig sampC = samp;
    sampC.resultCache = cache;

    const RunOutput fc = runConventional(b, fullC);
    const RunOutput sc = runConventional(b, sampC);
    EXPECT_EQ(cache->counters().hits, 0u);
    EXPECT_EQ(cache->counters().misses, 2u);
    EXPECT_EQ(cache->counters().stores, 2u);
    EXPECT_NE(fc.meas.cycles, sc.meas.cycles);

    expectSameRun(fc, runConventional(b, fullC));
    expectSameRun(sc, runConventional(b, sampC));
    EXPECT_EQ(cache->counters().hits, 2u);
}

} // namespace
} // namespace drisim
