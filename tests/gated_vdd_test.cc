/**
 * @file
 * Gated-Vdd tests: the paper's preferred configuration must land on
 * the published Table 2 column, and the variants must order
 * sensibly.
 */

#include <gtest/gtest.h>

#include "circuit/area_model.hh"
#include "circuit/gated_vdd.hh"

namespace drisim::circuit
{
namespace
{

const Technology tech = Technology::scaled018();

GatedVdd
makeGated(GatingKind kind)
{
    SramCell cell(tech, tech.vtLow);
    GatedVddConfig cfg;
    cfg.kind = kind;
    return GatedVdd(tech, cell, cfg);
}

TEST(GatedVdd, Table2StandbyLeakage)
{
    const GatedVdd g = makeGated(GatingKind::NmosDualVt);
    // Table 2: 53e-9 nJ/cycle in standby.
    EXPECT_NEAR(g.standbyLeakagePerCycle(), 53e-9, 8e-9);
}

TEST(GatedVdd, Table2EnergySavings)
{
    const GatedVdd g = makeGated(GatingKind::NmosDualVt);
    // Table 2: 97% savings.
    EXPECT_NEAR(g.leakageSavingsFraction(), 0.97, 0.01);
}

TEST(GatedVdd, Table2ReadTime)
{
    const GatedVdd g = makeGated(GatingKind::NmosDualVt);
    // Table 2: relative read time 1.08.
    EXPECT_NEAR(g.relativeReadTime(), 1.08, 0.02);
}

TEST(GatedVdd, Table2AreaOverhead)
{
    const GatedVdd g = makeGated(GatingKind::NmosDualVt);
    // Table 2: ~5% area increase.
    EXPECT_NEAR(g.areaOverheadFraction(), 0.05, 0.015);
}

TEST(GatedVdd, StandbyConfinedToHighVtLevels)
{
    // The paper: gating "confines the leakage to high-Vt levels
    // while maintaining low-Vt speeds."
    const GatedVdd g = makeGated(GatingKind::NmosDualVt);
    const SramCell high_vt(tech, tech.vtHigh);
    EXPECT_LT(g.standbyLeakagePerCycle(),
              2.0 * high_vt.activeLeakagePerCycle());
    EXPECT_LT(g.relativeReadTime(),
              0.6 * SramCell(tech, tech.vtHigh).relativeReadTime());
}

TEST(GatedVdd, LowVtGateSavesLessThanDualVt)
{
    const GatedVdd dual = makeGated(GatingKind::NmosDualVt);
    const GatedVdd single = makeGated(GatingKind::NmosLowVt);
    EXPECT_GT(single.standbyLeakageCurrentPerCell(),
              dual.standbyLeakageCurrentPerCell());
    // Stacking alone still helps (weakly in the DIBL-free default
    // corner, strongly once DIBL is modeled).
    const SramCell cell(tech, tech.vtLow);
    EXPECT_LT(single.standbyLeakageCurrentPerCell(),
              0.75 * cell.activeLeakageCurrent());

    Technology dibl_tech = tech;
    dibl_tech.diblEta = 0.1;
    SramCell dibl_cell(dibl_tech, dibl_tech.vtLow);
    GatedVddConfig cfg;
    cfg.kind = GatingKind::NmosLowVt;
    const GatedVdd dibl_single(dibl_tech, dibl_cell, cfg);
    EXPECT_LT(dibl_single.standbyLeakageCurrentPerCell(),
              0.3 * dibl_cell.activeLeakageCurrent());
}

TEST(GatedVdd, PmosMissesAccessTransistorLeakage)
{
    const GatedVdd pmos = makeGated(GatingKind::PmosDualVt);
    const GatedVdd nmos = makeGated(GatingKind::NmosDualVt);
    // PMOS gating cannot stop bitline->access->ground leakage.
    EXPECT_GT(pmos.standbyLeakageCurrentPerCell(),
              nmos.standbyLeakageCurrentPerCell());
    // But it does not slow the read path at all.
    EXPECT_DOUBLE_EQ(pmos.readTimeFactor(), 1.0);
    // And it needs more area for equivalent drive.
    EXPECT_GT(pmos.areaOverheadFraction(),
              nmos.areaOverheadFraction());
}

TEST(GatedVdd, WiderGateLeaksMoreButReadsFaster)
{
    SramCell cell(tech, tech.vtLow);
    GatedVddConfig narrow;
    narrow.widthPerCellUm = 0.6;
    GatedVddConfig wide;
    wide.widthPerCellUm = 2.4;
    const GatedVdd n(tech, cell, narrow);
    const GatedVdd w(tech, cell, wide);
    EXPECT_LT(n.standbyLeakageCurrentPerCell(),
              w.standbyLeakageCurrentPerCell());
    EXPECT_GT(n.readTimeFactor(), w.readTimeFactor());
    EXPECT_LT(n.areaOverheadFraction(), w.areaOverheadFraction());
}

TEST(GatedVdd, ChargePumpReducesReadPenalty)
{
    SramCell cell(tech, tech.vtLow);
    GatedVddConfig pumped;
    GatedVddConfig unpumped;
    unpumped.chargePumpBoostV = 0.0;
    const GatedVdd p(tech, cell, pumped);
    const GatedVdd u(tech, cell, unpumped);
    EXPECT_LT(p.readTimeFactor(), u.readTimeFactor());
    // Standby leakage is unaffected (pump off in standby).
    EXPECT_DOUBLE_EQ(p.standbyLeakageCurrentPerCell(),
                     u.standbyLeakageCurrentPerCell());
}

TEST(GatedVdd, NoneKindIsTransparent)
{
    SramCell cell(tech, tech.vtLow);
    GatedVddConfig cfg;
    cfg.kind = GatingKind::None;
    const GatedVdd g(tech, cell, cfg);
    EXPECT_DOUBLE_EQ(g.leakageSavingsFraction(), 0.0);
    EXPECT_DOUBLE_EQ(g.areaOverheadFraction(), 0.0);
    EXPECT_DOUBLE_EQ(g.readTimeFactor(), 1.0);
}

TEST(AreaModel, LineOverheadMatchesConfig)
{
    const GatedVddConfig cfg;
    const LineAreaModel line(tech, 32 * 8, cfg);
    EXPECT_NEAR(line.overheadFraction(), 0.05, 0.015);
    EXPECT_GE(line.fingerRows(), 1u);
}

TEST(AreaModel, ArrayAreaGrowsWithGating)
{
    const GatedVddConfig gated;
    GatedVddConfig none;
    none.kind = GatingKind::None;
    const double a0 = dataArrayAreaUm2(tech, 64 * 1024, 32, none);
    const double a1 = dataArrayAreaUm2(tech, 64 * 1024, 32, gated);
    EXPECT_GT(a1, a0);
    EXPECT_NEAR(a1 / a0, 1.05, 0.02);
}

} // namespace
} // namespace drisim::circuit
