/**
 * @file
 * DRI d-cache tests: the dirty-block handling the paper defers.
 * Downsizing must write back dirty state before gating; upsizing
 * must evict remapped blocks (no stale aliases for data).
 */

#include <gtest/gtest.h>

#include "core/dri_dcache.hh"
#include "mem/memory.hh"
#include "stats/stats.hh"
#include "util/random.hh"

namespace drisim
{
namespace
{

DriParams
smallDri(std::uint64_t missBound = 10)
{
    DriParams p;
    p.sizeBytes = 8 * 1024;  // 256 sets
    p.sizeBoundBytes = 1024; // 32 sets
    p.blockBytes = 32;
    p.missBound = missBound;
    p.senseInterval = 1000;
    return p;
}

/** Tracks store traffic arriving from writebacks. */
class CountingMemory : public MemoryLevel
{
  public:
    AccessResult
    access(Addr addr, AccessType type) override
    {
        if (type == AccessType::Store) {
            ++stores;
            lastStore = addr;
        } else {
            ++loads;
        }
        return {true, 10};
    }

    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    Addr lastStore = kInvalidAddr;
};

TEST(DriDCache, LoadStoreHitMiss)
{
    stats::StatGroup root("t");
    CountingMemory mem;
    DriDCache c(smallDri(), &mem, &root);
    EXPECT_FALSE(c.access(0x100, AccessType::Load).hit);
    EXPECT_TRUE(c.access(0x100, AccessType::Load).hit);
    EXPECT_TRUE(c.access(0x104, AccessType::Store).hit);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(DriDCache, DowsizeWritesBackDirtyBlocks)
{
    stats::StatGroup root("t");
    CountingMemory mem;
    DriDCache c(smallDri(), &mem, &root);

    // Dirty a block in set 200 (doomed by the first downsize).
    const Addr doomed = 32 * 200;
    c.access(doomed, AccessType::Store);
    const std::uint64_t stores_before = mem.stores;

    c.retireInstructions(1000); // quiet interval -> downsize
    ASSERT_EQ(c.currentSets(), 128u);
    EXPECT_EQ(c.resizeWritebacks(), 1u);
    EXPECT_EQ(mem.stores, stores_before + 1);
    EXPECT_EQ(mem.lastStore, doomed);
}

TEST(DriDCache, CleanBlocksAreDroppedSilently)
{
    stats::StatGroup root("t");
    CountingMemory mem;
    DriDCache c(smallDri(), &mem, &root);
    c.access(32 * 200, AccessType::Load); // clean block, set 200
    const std::uint64_t stores_before = mem.stores;
    c.retireInstructions(1000);
    EXPECT_EQ(c.resizeWritebacks(), 0u);
    EXPECT_EQ(mem.stores, stores_before);
}

TEST(DriDCache, UpsizeEvictsRemappedDirtyBlocks)
{
    stats::StatGroup root("t");
    CountingMemory mem;
    DriDCache c(smallDri(), &mem, &root);

    // Shrink to 32 sets.
    for (int i = 0; i < 3; ++i)
        c.retireInstructions(1000);
    ASSERT_EQ(c.currentSets(), 32u);

    // Dirty a block whose 64-set index differs from its 32-set one
    // (block 40: set 8 at 32 sets, set 40 at 64 sets).
    const Addr remapped = 32 * 40;
    c.access(remapped, AccessType::Store);
    ASSERT_TRUE(c.access(remapped, AccessType::Load).hit);

    // Force an upsize with conflict misses confined to set 0, so
    // the dirty block in set 8 survives until the resize itself.
    for (Addr a = 1 << 20; a < (1 << 20) + 20 * 1024; a += 1024)
        c.access(a, AccessType::Load);
    c.retireInstructions(1000);
    ASSERT_GT(c.currentSets(), 32u);

    // The dirty block was remapped: written back and invalidated;
    // a re-load misses but sees the written-back data below.
    EXPECT_GE(c.resizeWritebacks(), 1u);
    EXPECT_TRUE(c.mappingConsistent());
    EXPECT_FALSE(c.access(remapped, AccessType::Load).hit);
}

TEST(DriDCache, MappingConsistencyUnderRandomTraffic)
{
    // Property: after any access/resize history, no powered frame
    // disagrees with the current index mask — the invariant that
    // makes data resizing safe.
    stats::StatGroup root("t");
    CountingMemory mem;
    DriDCache c(smallDri(50), &mem, &root);
    Rng rng(99);
    for (int step = 0; step < 400; ++step) {
        const int burst = static_cast<int>(rng.range(150));
        for (int i = 0; i < burst; ++i) {
            const Addr a = rng.range(1 << 16) & ~Addr{7};
            c.access(a, rng.chance(0.3) ? AccessType::Store
                                        : AccessType::Load);
        }
        c.retireInstructions(rng.range(1500));
        ASSERT_TRUE(c.mappingConsistent()) << "step " << step;
    }
}

TEST(DriDCache, NoDirtyDataIsEverLost)
{
    // Property: every store is eventually visible below — either
    // via an eviction writeback, a resize writeback, or a final
    // flush. We count unique dirtied blocks and writebacks.
    stats::StatGroup root("t");
    CountingMemory mem;
    DriDCache c(smallDri(50), &mem, &root);
    Rng rng(7);
    std::uint64_t stores_issued = 0;
    for (int step = 0; step < 200; ++step) {
        for (int i = 0; i < 100; ++i) {
            const Addr a = rng.range(1 << 15) & ~Addr{7};
            if (rng.chance(0.4)) {
                c.access(a, AccessType::Store);
                ++stores_issued;
            } else {
                c.access(a, AccessType::Load);
            }
        }
        c.retireInstructions(rng.range(1200));
    }
    c.invalidateAll(); // final flush
    // Below-level stores can exceed dirtied blocks (rewrites) but
    // must be nonzero and bounded by issued stores.
    EXPECT_GT(mem.stores, 0u);
    EXPECT_LE(mem.stores, stores_issued);
    EXPECT_TRUE(c.mappingConsistent());
}

TEST(DriDCache, ResizesUnderTheSameControllerRules)
{
    stats::StatGroup root("t");
    CountingMemory mem;
    DriDCache c(smallDri(), &mem, &root);
    c.retireInstructions(1000);
    c.retireInstructions(1000);
    EXPECT_EQ(c.downsizes(), 2u);
    EXPECT_DOUBLE_EQ(c.activeFraction(), 0.25);
    c.integrateCycles(100);
    EXPECT_DOUBLE_EQ(c.averageActiveFraction(), 0.25);
}

TEST(DriDCache, RejectsInstructionFetches)
{
    stats::StatGroup root("t");
    DriDCache c(smallDri(), nullptr, &root);
    EXPECT_DEATH(
        { c.access(0x0, AccessType::InstFetch); }, "");
}

} // namespace
} // namespace drisim
