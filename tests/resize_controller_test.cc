/**
 * @file
 * Resize-controller tests: miss-bound decisions, interval
 * accounting, and the oscillation throttle (Section 2.1).
 */

#include <gtest/gtest.h>

#include "core/resize_controller.hh"

namespace drisim
{
namespace
{

DriParams
params(std::uint64_t missBound = 100, InstCount interval = 1000)
{
    DriParams p;
    p.missBound = missBound;
    p.senseInterval = interval;
    return p;
}

TEST(ResizeController, IntervalBoundaryDetection)
{
    ResizeController c(params(100, 1000));
    EXPECT_FALSE(c.recordInstructions(999));
    EXPECT_TRUE(c.recordInstructions(1));
    // Large batches can cross multiple boundaries.
    EXPECT_TRUE(c.recordInstructions(2500));
    EXPECT_TRUE(c.recordInstructions(0));
    EXPECT_FALSE(c.recordInstructions(0));
}

TEST(ResizeController, FewMissesMeansDownsize)
{
    ResizeController c(params(100));
    c.recordMiss(10);
    EXPECT_EQ(c.endInterval(false, false), ResizeDecision::Downsize);
}

TEST(ResizeController, ManyMissesMeansUpsize)
{
    ResizeController c(params(100));
    c.recordMiss(500);
    EXPECT_EQ(c.endInterval(false, false), ResizeDecision::Upsize);
}

TEST(ResizeController, ExactBoundHolds)
{
    ResizeController c(params(100));
    c.recordMiss(100);
    EXPECT_EQ(c.endInterval(false, false), ResizeDecision::Hold);
}

TEST(ResizeController, BoundsSuppressResizing)
{
    ResizeController c(params(100));
    c.recordMiss(10);
    EXPECT_EQ(c.endInterval(true, false), ResizeDecision::Hold);
    c.recordMiss(500);
    EXPECT_EQ(c.endInterval(false, true), ResizeDecision::Hold);
}

TEST(ResizeController, MissCounterResetsEachInterval)
{
    ResizeController c(params(100));
    c.recordMiss(500);
    c.endInterval(false, false);
    EXPECT_EQ(c.missCount(), 0u);
    c.recordMiss(10);
    EXPECT_EQ(c.endInterval(false, false), ResizeDecision::Downsize);
}

TEST(ResizeController, NonAdaptiveAlwaysHolds)
{
    DriParams p = params(100);
    p.adaptive = false;
    ResizeController c(p);
    c.recordMiss(10000);
    EXPECT_EQ(c.endInterval(false, false), ResizeDecision::Hold);
}

TEST(ResizeController, OscillationTriggersThrottle)
{
    // 3-bit counter triggers at 4 reversals (MSB rule); the freeze
    // then blocks downsizing for throttleHoldIntervals intervals.
    DriParams p = params(100);
    ResizeController c(p);

    auto flip = [&](bool up) {
        c.recordMiss(up ? 500 : 0);
        ResizeDecision d = c.endInterval(false, false);
        c.noteApplied(d);
        return d;
    };

    // Alternate down/up; each non-first resize is a reversal.
    flip(false);
    int reversals = 0;
    bool up = true;
    while (c.throttleEvents() == 0 && reversals < 20) {
        flip(up);
        up = !up;
        ++reversals;
    }
    EXPECT_EQ(c.throttleEvents(), 1u);
    EXPECT_EQ(reversals, 4);
    EXPECT_TRUE(c.downsizeFrozen());

    // While frozen, few misses must not downsize.
    c.recordMiss(0);
    EXPECT_EQ(c.endInterval(false, false), ResizeDecision::Hold);
    // But upsizing stays allowed.
    c.recordMiss(500);
    EXPECT_EQ(c.endInterval(false, false), ResizeDecision::Upsize);
}

TEST(ResizeController, FreezeExpiresAfterHoldIntervals)
{
    DriParams p = params(100);
    p.throttleHoldIntervals = 3;
    ResizeController c(p);

    auto flip = [&](bool up) {
        c.recordMiss(up ? 500 : 0);
        c.noteApplied(c.endInterval(false, false));
    };
    flip(false);
    for (int i = 0; i < 4; ++i)
        flip(i % 2 == 0);
    ASSERT_TRUE(c.downsizeFrozen());

    // Three Hold intervals tick the freeze down.
    for (int i = 0; i < 3; ++i) {
        c.recordMiss(100); // exact bound -> hold
        c.endInterval(false, false);
    }
    EXPECT_FALSE(c.downsizeFrozen());
    c.recordMiss(0);
    EXPECT_EQ(c.endInterval(false, false), ResizeDecision::Downsize);
}

TEST(ResizeController, SteadyResizingDoesNotThrottle)
{
    // Monotone downsizing (no reversals) must never freeze.
    ResizeController c(params(100));
    for (int i = 0; i < 10; ++i) {
        c.recordMiss(0);
        ResizeDecision d = c.endInterval(false, false);
        EXPECT_EQ(d, ResizeDecision::Downsize);
        c.noteApplied(d);
    }
    EXPECT_EQ(c.throttleEvents(), 0u);
}

TEST(ResizeController, IntervalCountAdvances)
{
    ResizeController c(params());
    c.endInterval(false, false);
    c.endInterval(false, false);
    EXPECT_EQ(c.intervals(), 2u);
}

// --- boundary behaviour around the miss-bound threshold ---------------

TEST(ResizeController, ThresholdOneBelowOneAbove)
{
    // The decision flips exactly at the bound: bound-1 misses is
    // still "fits with slack", bound+1 is "too small", the bound
    // itself holds (Figure 1's strict comparisons).
    ResizeController below(params(100));
    below.recordMiss(99);
    EXPECT_EQ(below.endInterval(false, false),
              ResizeDecision::Downsize);

    ResizeController at(params(100));
    at.recordMiss(100);
    EXPECT_EQ(at.endInterval(false, false), ResizeDecision::Hold);

    ResizeController above(params(100));
    above.recordMiss(101);
    EXPECT_EQ(above.endInterval(false, false),
              ResizeDecision::Upsize);
}

TEST(ResizeController, ThresholdAtBoundsStillHolds)
{
    // The bound comparison never overrides the size bounds: exactly
    // at threshold the cache holds whatever its size.
    ResizeController c(params(100));
    c.recordMiss(100);
    EXPECT_EQ(c.endInterval(true, false), ResizeDecision::Hold);
    c.recordMiss(100);
    EXPECT_EQ(c.endInterval(false, true), ResizeDecision::Hold);
}

TEST(ResizeController, ZeroMissBoundNeverDownsizes)
{
    // missBound = 0: no miss count can be strictly below it, so the
    // controller can only hold or upsize.
    ResizeController c(params(0));
    EXPECT_EQ(c.endInterval(false, false), ResizeDecision::Hold);
    c.recordMiss(1);
    EXPECT_EQ(c.endInterval(false, false), ResizeDecision::Upsize);
}

// --- at most one decision per sense interval --------------------------

TEST(ResizeController, OneBoundaryPerIntervalOfInstructions)
{
    // Sub-interval batches can cross at most one boundary: after a
    // crossing, another full senseInterval of instructions must
    // retire before the next one.
    ResizeController c(params(100, 1000));
    EXPECT_FALSE(c.recordInstructions(999));
    EXPECT_TRUE(c.recordInstructions(1));
    EXPECT_FALSE(c.recordInstructions(0));
    EXPECT_FALSE(c.recordInstructions(999));
    EXPECT_TRUE(c.recordInstructions(1));
    EXPECT_FALSE(c.recordInstructions(0));
}

TEST(ResizeController, MissesWithinIntervalNeverDecide)
{
    // No quantity of misses produces a decision mid-interval; only
    // the instruction-count boundary does.
    ResizeController c(params(100, 1000));
    for (int i = 0; i < 50; ++i) {
        c.recordMiss(1000);
        EXPECT_FALSE(c.recordInstructions(10));
    }
    EXPECT_EQ(c.intervals(), 0u);
}

} // namespace
} // namespace drisim
