/**
 * @file
 * Branch-predictor tests: bimodal/gshare learning, chooser
 * arbitration, BTB targets, RAS behaviour.
 */

#include <gtest/gtest.h>

#include "cpu/branch_pred.hh"
#include "stats/stats.hh"

namespace drisim
{
namespace
{

class BranchPredTest : public ::testing::Test
{
  protected:
    BranchPredTest() : root_("t"), bp_(BranchPredParams{}, &root_) {}

    /** Train and measure accuracy on an outcome pattern. */
    double
    accuracy(Addr pc, const std::vector<bool> &pattern, int reps)
    {
        int correct = 0;
        int total = 0;
        for (int r = 0; r < reps; ++r) {
            for (bool taken : pattern) {
                auto pred = bp_.predict(pc, OpClass::Branch);
                const Addr target = taken ? pc + 64 : pc + 4;
                if (pred.taken == taken)
                    ++correct;
                ++total;
                bp_.update(pc, OpClass::Branch, taken, target);
            }
        }
        return static_cast<double>(correct) / total;
    }

    stats::StatGroup root_;
    BranchPredictor bp_;
};

TEST_F(BranchPredTest, LearnsAlwaysTaken)
{
    const double acc = accuracy(0x1000, {true}, 200);
    EXPECT_GT(acc, 0.97);
}

TEST_F(BranchPredTest, LearnsAlwaysNotTaken)
{
    const double acc = accuracy(0x1000, {false}, 200);
    EXPECT_GT(acc, 0.97);
}

TEST_F(BranchPredTest, GshareLearnsAlternatingPattern)
{
    // Bimodal cannot learn T,N,T,N...; gshare (with history) can.
    const double acc = accuracy(0x2000, {true, false}, 300);
    EXPECT_GT(acc, 0.9);
}

TEST_F(BranchPredTest, GshareLearnsLoopExitPattern)
{
    // 7 taken + 1 not-taken, the classic loop-latch shape.
    std::vector<bool> pattern(8, true);
    pattern[7] = false;
    const double acc = accuracy(0x3000, pattern, 200);
    EXPECT_GT(acc, 0.9);
}

TEST_F(BranchPredTest, BtbProvidesTargets)
{
    const Addr pc = 0x4000;
    const Addr target = 0x5000;
    // First prediction: no BTB entry yet.
    auto p1 = bp_.predict(pc, OpClass::Jump);
    EXPECT_TRUE(p1.taken);
    EXPECT_EQ(p1.target, kInvalidAddr);
    bp_.update(pc, OpClass::Jump, true, target);
    auto p2 = bp_.predict(pc, OpClass::Jump);
    EXPECT_EQ(p2.target, target);
}

TEST_F(BranchPredTest, RasPredictsReturns)
{
    const Addr call_pc = 0x6000;
    const Addr ret_pc = 0x7000;
    auto pc_call = bp_.predict(call_pc, OpClass::Call);
    (void)pc_call;
    bp_.update(call_pc, OpClass::Call, true, 0x7000);
    auto pr = bp_.predict(ret_pc, OpClass::Return);
    EXPECT_TRUE(pr.taken);
    EXPECT_EQ(pr.target, call_pc + kInstrBytes);
}

TEST_F(BranchPredTest, RasNestedCalls)
{
    bp_.predict(0x100, OpClass::Call);
    bp_.predict(0x200, OpClass::Call);
    auto r1 = bp_.predict(0x300, OpClass::Return);
    EXPECT_EQ(r1.target, 0x200u + kInstrBytes);
    auto r2 = bp_.predict(0x400, OpClass::Return);
    EXPECT_EQ(r2.target, 0x100u + kInstrBytes);
}

TEST_F(BranchPredTest, MispredictedDetectsDirectionAndTarget)
{
    BranchPrediction p;
    p.taken = true;
    p.target = 0x100;
    EXPECT_FALSE(BranchPredictor::mispredicted(p, true, 0x100));
    EXPECT_TRUE(BranchPredictor::mispredicted(p, false, 0x0));
    EXPECT_TRUE(BranchPredictor::mispredicted(p, true, 0x200));
    p.taken = false;
    EXPECT_FALSE(BranchPredictor::mispredicted(p, false, 0x0));
}

TEST_F(BranchPredTest, StatsAccumulate)
{
    accuracy(0x8000, {true, true, false}, 50);
    EXPECT_GT(bp_.lookups(), 0u);
}

} // namespace
} // namespace drisim
