/**
 * @file
 * Executor tests: JobGraph scheduling, deterministic per-job
 * seeding, exception propagation/cancellation, and the determinism
 * regression suite — the same search grid run at jobs=1, jobs=4 and
 * jobs=hardware_concurrency() must produce byte-identical results.
 * Also the ThreadSanitizer smoke for concurrent harness runs.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <set>
#include <stdexcept>

#include "harness/executor.hh"
#include "harness/runner.hh"
#include "harness/sweep.hh"

namespace drisim
{
namespace
{

// --------------------------------------------------------------
// Seeding and worker-count resolution
// --------------------------------------------------------------

TEST(JobSeed, DeterministicAndKeySensitive)
{
    EXPECT_EQ(jobSeed("compress/sb=4096/mbf=32"),
              jobSeed("compress/sb=4096/mbf=32"));
    EXPECT_NE(jobSeed("compress/sb=4096/mbf=32"),
              jobSeed("compress/sb=4096/mbf=2"));
    EXPECT_NE(jobSeed("a"), jobSeed("b"));
    EXPECT_NE(jobSeed(""), jobSeed("a"));
}

TEST(JobSeed, GridNeighboursLandFarApart)
{
    // The SplitMix finalizer must avalanche near-identical keys.
    std::set<std::uint64_t> seeds;
    for (int sb : {1024, 2048, 4096})
        for (int f : {2, 8, 32})
            seeds.insert(jobSeed("li/sb=" + std::to_string(sb) +
                                 "/mbf=" + std::to_string(f)));
    EXPECT_EQ(seeds.size(), 9u);
}

TEST(JobCount, ParseRejectsGarbageAndWraparound)
{
    unsigned v = 77;
    EXPECT_TRUE(parseJobsValue("0", v));
    EXPECT_EQ(v, 0u);
    EXPECT_TRUE(parseJobsValue("16", v));
    EXPECT_EQ(v, 16u);
    EXPECT_TRUE(parseJobsValue("4096", v));

    v = 77;
    EXPECT_FALSE(parseJobsValue("", v));
    EXPECT_FALSE(parseJobsValue("-1", v)); // no 4-billion-thread pool
    EXPECT_FALSE(parseJobsValue("+4", v));
    EXPECT_FALSE(parseJobsValue("4x", v));
    EXPECT_FALSE(parseJobsValue("4097", v));
    EXPECT_FALSE(parseJobsValue("99999999", v));
    EXPECT_EQ(v, 77u); // failures leave the output untouched
}

TEST(JobCount, ResolutionHonoursEnvAndRequest)
{
    unsetenv("DRISIM_JOBS");
    EXPECT_EQ(resolveJobCount(0), 1u); // serial unless opted in
    EXPECT_EQ(resolveJobCount(3), 3u);

    setenv("DRISIM_JOBS", "5", 1);
    EXPECT_EQ(resolveJobCount(0), 5u);
    EXPECT_EQ(resolveJobCount(2), 2u); // explicit beats env

    setenv("DRISIM_JOBS", "0", 1);
    EXPECT_EQ(resolveJobCount(0), hardwareJobCount()); // 0 = auto

    setenv("DRISIM_JOBS", "bogus", 1);
    EXPECT_EQ(resolveJobCount(0), 1u);
    unsetenv("DRISIM_JOBS");
}

// --------------------------------------------------------------
// Graph scheduling
// --------------------------------------------------------------

TEST(Executor, ForEachIndexRunsEveryIndexExactlyOnce)
{
    for (const unsigned jobs : {1u, 4u}) {
        std::vector<int> hits(100, 0);
        std::atomic<int> total{0};
        Executor exec(jobs);
        exec.forEachIndex("cover", hits.size(),
                          [&](std::size_t i, const JobContext &) {
                              ++hits[i]; // distinct slots: no lock
                              total.fetch_add(1);
                          });
        EXPECT_EQ(total.load(), 100);
        for (const int h : hits)
            EXPECT_EQ(h, 1);
    }
}

TEST(Executor, DependenciesOrderEffects)
{
    for (const unsigned jobs : {1u, 4u}) {
        std::vector<int> order;
        JobGraph g;
        const JobId a = g.add("a", [&](const JobContext &) {
            order.push_back(0);
        });
        const JobId b = g.add(
            "b", [&](const JobContext &) { order.push_back(1); },
            {a});
        g.add(
            "c", [&](const JobContext &) { order.push_back(2); },
            {b});
        Executor exec(jobs);
        exec.run(g);
        // A chain serializes whatever the worker count: the vector
        // is safe to mutate without a lock and must come out sorted.
        EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
        EXPECT_EQ(g.state(a), JobState::Done);
        EXPECT_EQ(g.state(b), JobState::Done);
    }
}

TEST(Executor, DiamondDependencyJoins)
{
    // a -> {b, c} -> d: d must observe both branches.
    int left = 0;
    int right = 0;
    int sum = 0;
    JobGraph g;
    const JobId a =
        g.add("a", [&](const JobContext &) { left = 3; });
    const JobId b = g.add(
        "b", [&](const JobContext &) { right = 4; }, {a});
    const JobId c = g.add(
        "c", [&](const JobContext &) { left *= 2; }, {a});
    g.add(
        "d", [&](const JobContext &) { sum = left + right; },
        {b, c});
    Executor exec(4);
    exec.run(g);
    EXPECT_EQ(sum, 10);
}

TEST(Executor, ContextCarriesKeySeedAndWorker)
{
    std::uint64_t seen = 0;
    unsigned worker = 99;
    JobGraph g;
    g.add("seed-check", [&](const JobContext &ctx) {
        seen = ctx.seed;
        worker = ctx.worker;
    });
    Executor exec(1);
    exec.run(g);
    EXPECT_EQ(seen, jobSeed("seed-check"));
    EXPECT_EQ(worker, 0u); // serial: the calling thread ran it
}

TEST(Executor, GraphCanBeRerun)
{
    int runs = 0;
    JobGraph g;
    const JobId a =
        g.add("a", [&](const JobContext &) { ++runs; });
    g.add(
        "b", [&](const JobContext &) { ++runs; }, {a});
    Executor exec(2);
    exec.run(g);
    exec.run(g);
    EXPECT_EQ(runs, 4);
}

TEST(Executor, ManyIndependentJobsAcrossWorkers)
{
    std::atomic<int> total{0};
    JobGraph g;
    for (int i = 0; i < 200; ++i)
        g.add("job/" + std::to_string(i),
              [&](const JobContext &) { total.fetch_add(1); });
    Executor exec(4);
    EXPECT_EQ(exec.workers(), 4u);
    exec.run(g);
    EXPECT_EQ(total.load(), 200);
    for (JobId id = 0; id < g.size(); ++id)
        EXPECT_EQ(g.state(id), JobState::Done);
}

// --------------------------------------------------------------
// Exceptions and cancellation
// --------------------------------------------------------------

TEST(Executor, ExceptionPropagatesAndCancelsDependents)
{
    for (const unsigned jobs : {1u, 4u}) {
        std::atomic<int> ran{0};
        JobGraph g;
        const JobId boom = g.add("boom", [](const JobContext &) {
            throw std::runtime_error("boom");
        });
        std::vector<JobId> children;
        for (int i = 0; i < 6; ++i)
            children.push_back(g.add(
                "child/" + std::to_string(i),
                [&](const JobContext &) { ran.fetch_add(1); },
                {boom}));
        Executor exec(jobs);
        EXPECT_THROW(exec.run(g), std::runtime_error);
        EXPECT_EQ(g.state(boom), JobState::Failed);
        EXPECT_EQ(ran.load(), 0);
        for (const JobId c : children)
            EXPECT_EQ(g.state(c), JobState::Skipped);
    }
}

TEST(Executor, MidChainFailureSkipsOnlyDownstream)
{
    JobGraph g;
    const JobId a = g.add("a", [](const JobContext &) {});
    const JobId b = g.add(
        "b",
        [](const JobContext &) {
            throw std::logic_error("mid-chain");
        },
        {a});
    const JobId c = g.add(
        "c", [](const JobContext &) {}, {b});
    const JobId d = g.add(
        "d", [](const JobContext &) {}, {c});
    Executor exec(1);
    EXPECT_THROW(exec.run(g), std::logic_error);
    EXPECT_EQ(g.state(a), JobState::Done);
    EXPECT_EQ(g.state(b), JobState::Failed);
    EXPECT_EQ(g.state(c), JobState::Skipped);
    EXPECT_EQ(g.state(d), JobState::Skipped);
}

TEST(Executor, ParallelFailureStillDrainsTheGraph)
{
    // One of many parallel jobs throws; the run must terminate,
    // rethrow, and leave every job in a terminal state.
    JobGraph g;
    for (int i = 0; i < 32; ++i) {
        if (i == 7)
            g.add("thrower", [](const JobContext &) {
                throw std::runtime_error("x");
            });
        else
            g.add("ok/" + std::to_string(i),
                  [](const JobContext &) {});
    }
    Executor exec(4);
    EXPECT_THROW(exec.run(g), std::runtime_error);
    int failed = 0;
    for (JobId id = 0; id < g.size(); ++id) {
        const JobState s = g.state(id);
        EXPECT_TRUE(s == JobState::Done || s == JobState::Failed ||
                    s == JobState::Skipped);
        failed += s == JobState::Failed ? 1 : 0;
    }
    EXPECT_EQ(failed, 1);
}

// --------------------------------------------------------------
// Determinism regression suite (the point of the executor)
// --------------------------------------------------------------

RunConfig
searchConfig(unsigned jobs)
{
    RunConfig c;
    c.maxInstrs = 200 * 1000;
    c.jobs = jobs;
    return c;
}

SearchResult
searchAt(unsigned jobs)
{
    const auto &b = findBenchmark("compress");
    const RunConfig cfg = searchConfig(jobs);
    const RunOutput conv = runConventional(b, cfg);
    SearchSpace space;
    space.sizeBounds = {1024, 4096, 65536};
    space.missBoundFactors = {4.0, 32.0};
    DriParams tmpl;
    tmpl.senseInterval = 50000;
    return searchBestEnergyDelay(b, cfg, tmpl, space,
                                 EnergyConstants::paper(), 4.0, conv);
}

void
expectSameParams(const DriParams &a, const DriParams &b)
{
    EXPECT_EQ(a.sizeBoundBytes, b.sizeBoundBytes);
    EXPECT_EQ(a.missBound, b.missBound);
    EXPECT_EQ(a.senseInterval, b.senseInterval);
    EXPECT_EQ(a.divisibility, b.divisibility);
}

void
expectSameComparison(const ComparisonResult &a,
                     const ComparisonResult &b)
{
    // Bit-identical, not approximately equal: the parallel schedule
    // must not perturb a single floating-point operation.
    EXPECT_EQ(a.relativeEnergyDelay(), b.relativeEnergyDelay());
    EXPECT_EQ(a.slowdownPercent(), b.slowdownPercent());
    EXPECT_EQ(a.averageSizeFraction(), b.averageSizeFraction());
    EXPECT_EQ(a.driRun.cycles, b.driRun.cycles);
    EXPECT_EQ(a.driRun.l1iMisses, b.driRun.l1iMisses);
    EXPECT_EQ(a.convRun.cycles, b.convRun.cycles);
}

TEST(Determinism, SearchIsIdenticalAtAnyWorkerCount)
{
    const SearchResult serial = searchAt(1);
    ASSERT_EQ(serial.evaluated.size(), 6u);

    for (const unsigned jobs : {4u, hardwareJobCount()}) {
        const SearchResult parallel = searchAt(jobs);

        expectSameParams(serial.best.dri, parallel.best.dri);
        EXPECT_EQ(serial.best.feasible, parallel.best.feasible);
        expectSameComparison(serial.best.cmp, parallel.best.cmp);

        // The evaluated vector must be identically *ordered*, not
        // just equal as a set.
        ASSERT_EQ(serial.evaluated.size(), parallel.evaluated.size());
        for (std::size_t i = 0; i < serial.evaluated.size(); ++i) {
            expectSameParams(serial.evaluated[i].dri,
                             parallel.evaluated[i].dri);
            EXPECT_EQ(serial.evaluated[i].feasible,
                      parallel.evaluated[i].feasible);
            expectSameComparison(serial.evaluated[i].cmp,
                                 parallel.evaluated[i].cmp);
        }
    }
}

TEST(Determinism, EmptyGridFallbackStillOrdersCalibration)
{
    // Every candidate size-bound is filtered out (16 < one block),
    // so the grid is empty and the fallback miss-bound comes from
    // the calibration stage. The select/winner jobs must still be
    // sequenced after calibrate — at any worker count, and with the
    // same result.
    const auto &b = findBenchmark("compress");
    SearchSpace space;
    space.sizeBounds = {16};
    space.missBoundFactors = {2.0};
    DriParams tmpl;
    tmpl.senseInterval = 50000;

    SearchResult results[2];
    const unsigned counts[2] = {1, 4};
    for (int k = 0; k < 2; ++k) {
        const RunConfig cfg = searchConfig(counts[k]);
        const RunOutput conv = runConventional(b, cfg);
        results[k] = searchBestEnergyDelay(
            b, cfg, tmpl, space, EnergyConstants::paper(), 4.0,
            conv);
        EXPECT_TRUE(results[k].evaluated.empty());
        // Fallback pins to full size with a 2x-conventional-MPI
        // miss-bound, which needs the calibration output: well
        // above the 16-miss floor for this run length.
        EXPECT_EQ(results[k].best.dri.sizeBoundBytes,
                  tmpl.sizeBytes);
        EXPECT_GT(results[k].best.dri.missBound, 16u);
    }
    expectSameParams(results[0].best.dri, results[1].best.dri);
    expectSameComparison(results[0].best.cmp, results[1].best.cmp);
}

TEST(Determinism, DetailedBatchMatchesSingleEvaluations)
{
    const auto &b = findBenchmark("li");
    const RunConfig cfg = searchConfig(4);
    const RunOutput conv = runConventional(b, cfg);
    const EnergyConstants constants = EnergyConstants::paper();

    std::vector<DriParams> variants;
    for (const std::uint64_t sb : {1024u, 4096u, 65536u}) {
        DriParams p;
        p.sizeBoundBytes = sb;
        p.missBound = 200;
        p.senseInterval = 50000;
        variants.push_back(p);
    }
    const std::vector<ComparisonResult> batch =
        evaluateDetailedBatch(b, cfg, variants, constants, conv);
    ASSERT_EQ(batch.size(), variants.size());
    for (std::size_t i = 0; i < variants.size(); ++i) {
        const ComparisonResult one = evaluateDetailed(
            b, cfg, variants[i], constants, conv);
        expectSameComparison(one, batch[i]);
    }
}

// --------------------------------------------------------------
// ThreadSanitizer smoke: concurrent harness runs (exercises the
// shared program-image cache and every per-run object under real
// parallelism; run with DRISIM_SANITIZE=thread in CI)
// --------------------------------------------------------------

TEST(Executor, ConcurrentRunnersShareImagesSafely)
{
    const RunConfig cfg = searchConfig(0);
    const char *names[] = {"compress", "li", "mgrid", "applu"};

    // Serial reference.
    std::vector<std::uint64_t> refCycles;
    for (const char *n : names) {
        const auto out = runConventional(findBenchmark(n), cfg);
        refCycles.push_back(out.meas.cycles);
    }

    // Two parallel lanes per benchmark, all workers hammering the
    // image cache at once.
    std::vector<std::uint64_t> cycles(8, 0);
    Executor exec(4);
    exec.forEachIndex(
        "tsan-smoke", 8, [&](std::size_t i, const JobContext &) {
            const auto &bench = findBenchmark(names[i % 4]);
            cycles[i] = runConventional(bench, cfg).meas.cycles;
        });
    for (std::size_t i = 0; i < cycles.size(); ++i)
        EXPECT_EQ(cycles[i], refCycles[i % 4]) << names[i % 4];
}

} // namespace
} // namespace drisim
