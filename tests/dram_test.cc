/**
 * @file
 * Non-blocking memory system tests: the banked/queued DRAM model
 * (row buffers, bank serialization, queue pressure, writeback
 * isolation), the MSHR file (secondary-miss coalescing, structural
 * stalls), flat-memory read/writeback accounting, checkpoint
 * round-trips of both structures, and the CMP acceptance property —
 * miss latency is load-dependent while every event count stays
 * identical. The search-determinism test drives a worker pool, so
 * this file carries the `concurrency` label (see CMakeLists.txt).
 */

#include <gtest/gtest.h>

#include "harness/multilevel.hh"
#include "harness/runner.hh"
#include "mem/cache.hh"
#include "mem/dram.hh"
#include "mem/memory.hh"
#include "mem/mshr.hh"
#include "sim/checkpoint.hh"
#include "stats/stats.hh"

namespace drisim
{
namespace
{

/** Lower level with a fixed fill latency (isolates MSHR timing). */
struct FixedLevel : MemoryLevel
{
    Cycles lat;
    std::uint64_t calls = 0;

    explicit FixedLevel(Cycles l) : lat(l) {}

    AccessResult access(Addr, AccessType) override
    {
        ++calls;
        return {true, lat};
    }
};

/** 64-byte-block direct-mapped cache with @p mshrs registers. */
CacheParams
mshrCache(unsigned mshrs)
{
    CacheParams p;
    p.name = "c";
    p.sizeBytes = 1024;
    p.assoc = 1;
    p.blockBytes = 64;
    p.hitLatency = 1;
    p.mshrs = mshrs;
    return p;
}

DramParams
oneBank()
{
    DramParams p;
    p.banked = true;
    p.banks = 1;
    return p;
}

// Table 1 transfer term for 64-byte fills: 4 * (64/8) = 32.
constexpr Cycles kXfer = 32;

// ---------------------------------------------------------------
// Flat memory: read/writeback split (satellites 1 and 2)
// ---------------------------------------------------------------

TEST(FlatMemory, SplitsReadsFromWritebackProbes)
{
    stats::StatGroup root("t");
    MainMemory m(64, &root);

    const AccessResult read = m.access(0x1000, AccessType::Load);
    EXPECT_TRUE(read.hit);
    EXPECT_EQ(read.latency, m.transferLatency());

    const AccessResult wb = m.access(0x2000, AccessType::Store);
    EXPECT_TRUE(wb.hit);
    EXPECT_EQ(wb.latency, 0u); // drained through the write buffer

    EXPECT_EQ(m.accesses(), 2u);
    EXPECT_EQ(m.reads(), 1u);
    EXPECT_EQ(m.writebacks(), 1u);
}

TEST(FlatMemory, WritebackHeavyTrafficNeverPerturbsDemandLatency)
{
    stats::StatGroup root("t");
    MainMemory clean(64, &root);
    MainMemory dirty(64, &root);

    for (int i = 0; i < 8; ++i) {
        const Addr a = 0x1000 + 64 * static_cast<Addr>(i);
        const Cycles want =
            clean.access(a, AccessType::InstFetch).latency;
        // The same demand fill surrounded by writeback probes.
        for (int w = 0; w < 16; ++w)
            dirty.access(0x9000 + 64 * static_cast<Addr>(w),
                         AccessType::Store);
        EXPECT_EQ(dirty.access(a, AccessType::InstFetch).latency,
                  want);
    }
    EXPECT_EQ(clean.reads(), dirty.reads());
    EXPECT_EQ(dirty.writebacks(), 8u * 16u);
}

// ---------------------------------------------------------------
// Banked DRAM model
// ---------------------------------------------------------------

TEST(Dram, RowMissThenRowHitLatencies)
{
    stats::StatGroup root("t");
    Dram d(oneBank(), 64, &root);

    // Cold bank: row miss costs the Table 1 base + transfer.
    const AccessResult miss = d.accessAt(0, AccessType::Load, 0);
    EXPECT_TRUE(miss.hit);
    EXPECT_EQ(miss.latency, 80u + kXfer);

    // Same 8 KB row much later (bank idle): row-buffer hit.
    const AccessResult hit =
        d.accessAt(128, AccessType::Load, 10000);
    EXPECT_EQ(hit.latency, 40u + kXfer);

    EXPECT_EQ(d.rowMisses(), 1u);
    EXPECT_EQ(d.rowHits(), 1u);
    EXPECT_EQ(d.reads(), 2u);
    EXPECT_EQ(d.busyCycles(), (80u + kXfer) + (40u + kXfer));
}

TEST(Dram, SameBankSerializesSimultaneousFills)
{
    stats::StatGroup root("t");
    Dram d(oneBank(), 64, &root);

    // Both fills arrive at t=0 on the one bank: the second starts
    // when the first completes (and row-hits behind it).
    EXPECT_EQ(d.accessAt(0, AccessType::Load, 0).latency,
              80u + kXfer);
    EXPECT_EQ(d.accessAt(64, AccessType::Load, 0).latency,
              (80u + kXfer) + (40u + kXfer));
}

TEST(Dram, DifferentBanksServiceInParallel)
{
    stats::StatGroup root("t");
    DramParams p;
    p.banked = true;
    p.banks = 8;
    Dram d(p, 64, &root);

    // Consecutive transfer blocks interleave across banks.
    EXPECT_EQ(d.bankOf(0), 0u);
    EXPECT_EQ(d.bankOf(64), 1u);
    EXPECT_EQ(d.bankOf(64 * 8), 0u);

    // Two simultaneous fills to different banks each see an idle
    // bank: no serialization.
    EXPECT_EQ(d.accessAt(0, AccessType::Load, 0).latency,
              80u + kXfer);
    EXPECT_EQ(d.accessAt(64, AccessType::Load, 0).latency,
              80u + kXfer);
    EXPECT_EQ(d.rowMissesForBank(0), 1u);
    EXPECT_EQ(d.rowMissesForBank(1), 1u);
}

TEST(Dram, FullBankQueueIsCounted)
{
    stats::StatGroup root("t");
    DramParams p = oneBank();
    p.queueDepth = 1;
    Dram d(p, 64, &root);

    d.accessAt(0, AccessType::Load, 0);
    EXPECT_EQ(d.queueFullEvents(), 0u);
    // The first fill is still in flight at t=0: the queue is full.
    d.accessAt(64, AccessType::Load, 0);
    EXPECT_EQ(d.queueFullEvents(), 1u);
    // After the bank drains, arrivals find room again.
    d.accessAt(128, AccessType::Load, 100000);
    EXPECT_EQ(d.queueFullEvents(), 1u);
}

TEST(Dram, WritebackProbesNeverPerturbDemandTiming)
{
    // The satellite regression: a writeback-heavy run must report
    // exactly the latencies and row-buffer outcomes of a clean run
    // — Store probes are counted but touch no bank state.
    stats::StatGroup root("t");
    Dram clean(oneBank(), 64, &root);
    Dram dirty(oneBank(), 64, &root);

    const Addr demand[] = {0, 128, 3 * 8192, 64};
    Cycles t = 0;
    for (const Addr a : demand) {
        const Cycles want =
            clean.accessAt(a, AccessType::Load, t).latency;
        // Writebacks to *other rows of the same bank* between
        // demands: were they to occupy the bank or move the open
        // row, the demand latency would change.
        for (int w = 0; w < 8; ++w) {
            const AccessResult wb = dirty.accessAt(
                5 * 8192 + 64 * static_cast<Addr>(w),
                AccessType::Store, t);
            EXPECT_EQ(wb.latency, 0u);
        }
        EXPECT_EQ(dirty.accessAt(a, AccessType::Load, t).latency,
                  want);
        t += 50;
    }
    EXPECT_EQ(clean.rowHits(), dirty.rowHits());
    EXPECT_EQ(clean.rowMisses(), dirty.rowMisses());
    EXPECT_EQ(clean.busyCycles(), dirty.busyCycles());
    EXPECT_EQ(dirty.writebacks(), 4u * 8u);
    EXPECT_EQ(dirty.accesses(),
              clean.accesses() + dirty.writebacks());
}

// ---------------------------------------------------------------
// MSHR file behind a cache level
// ---------------------------------------------------------------

TEST(Mshr, SecondaryMissCoalescesOntoInflightFill)
{
    stats::StatGroup root("t");
    FixedLevel below(100);
    Cache c(mshrCache(2), &below, &root);

    // Primary miss at t=0: 1 (hit latency) + 100 (fill) = 101, so
    // the fill lands at t=101.
    EXPECT_EQ(c.accessAt(0, AccessType::Load, 0).latency, 101u);

    // Same block at t=50: the fill is still 51 cycles out — a
    // secondary miss that waits out the remainder, not a fresh
    // round trip.
    const AccessResult sec = c.accessAt(0, AccessType::Load, 50);
    EXPECT_EQ(sec.latency, 1u + 51u);
    EXPECT_EQ(c.mshrCoalesced(), 1u);
    EXPECT_EQ(below.calls, 1u);

    // After the fill completes it is a plain hit.
    EXPECT_EQ(c.accessAt(0, AccessType::Load, 200).latency, 1u);
    EXPECT_EQ(c.mshrCoalesced(), 1u);
    EXPECT_EQ(c.mshrPeakOccupancy(), 1u);
}

TEST(Mshr, FullFileStallsPrimaryMiss)
{
    stats::StatGroup root("t");
    FixedLevel below(100);
    Cache c(mshrCache(1), &below, &root);

    EXPECT_EQ(c.accessAt(0, AccessType::Load, 0).latency, 101u);
    // A different block at t=0 finds the single register busy: it
    // stalls to t=101 (the outstanding fill), then misses normally.
    const AccessResult r = c.accessAt(64, AccessType::Load, 0);
    EXPECT_EQ(r.latency, 101u + 1u + 100u);
    EXPECT_EQ(c.mshrFullStalls(), 1u);
    EXPECT_EQ(c.mshrFullStallCycles(), 101u);
}

TEST(Mshr, FillLandingExactlyAtNowIsRetiredNotCoalesced)
{
    // The prune boundary: an entry whose fill completes at exactly
    // `now` has delivered its data. prune() runs before find() in
    // the cache's access path, so the boundary access must see a
    // retired entry — never a zero-remainder coalesce target, which
    // would count the fill as both completed and in flight.
    MshrFile m(2);
    m.allocate(0x0, 101);
    m.prune(101);
    EXPECT_EQ(m.occupancy(), 0u);
    Cycles fillAt = 0;
    EXPECT_FALSE(m.find(0x0, fillAt));

    // One cycle earlier the same fill is still outstanding.
    MshrFile n(2);
    n.allocate(0x0, 101);
    n.prune(100);
    EXPECT_EQ(n.occupancy(), 1u);
    EXPECT_TRUE(n.find(0x0, fillAt));
    EXPECT_EQ(fillAt, 101u);
}

TEST(Mshr, AccessAtExactFillTimeFreesTheRegister)
{
    stats::StatGroup root("t");
    FixedLevel below(100);
    Cache c(mshrCache(1), &below, &root);

    // Primary miss at t=0 fills at t=101.
    EXPECT_EQ(c.accessAt(0, AccessType::Load, 0).latency, 101u);

    // A different block at t=101, the completion cycle itself: the
    // register is already free — a normal primary miss, no
    // structural stall.
    EXPECT_EQ(c.accessAt(64, AccessType::Load, 101).latency, 101u);
    EXPECT_EQ(c.mshrFullStalls(), 0u);

    // And the first block is home: a plain hit, not a coalesce.
    EXPECT_TRUE(c.accessAt(0, AccessType::Load, 202).hit);
    EXPECT_EQ(c.mshrCoalesced(), 0u);
}

TEST(Mshr, DisabledFileKeepsBlockingBehaviour)
{
    stats::StatGroup root("t");
    FixedLevel below(100);
    Cache c(mshrCache(0), &below, &root);

    EXPECT_EQ(c.accessAt(0, AccessType::Load, 0).latency, 101u);
    // With mshrs=0 the same-block re-reference at t=50 is a plain
    // hit — the historical blocking model charges no fill wait.
    EXPECT_EQ(c.accessAt(0, AccessType::Load, 50).latency, 1u);
    EXPECT_EQ(c.mshrCoalesced(), 0u);
    EXPECT_EQ(c.mshrFullStalls(), 0u);
    EXPECT_EQ(c.mshrPeakOccupancy(), 0u);
}

// ---------------------------------------------------------------
// Checkpoint round-trips (satellite: MSHR/DRAM state crosses the
// snapshot seam; the end-to-end splits live in checkpoint_test.cc)
// ---------------------------------------------------------------

TEST(MshrCheckpoint, LiveEntriesSurviveARoundTrip)
{
    MshrFile f(4);
    f.allocate(0x10, 100);
    f.allocate(0x20, 200);

    sim::CheckpointWriter w;
    f.snapshotTo(w);

    MshrFile g(4);
    sim::CheckpointReader r(w.bytes());
    g.restoreFrom(r);

    EXPECT_EQ(g.occupancy(), 2u);
    Cycles fill = 0;
    ASSERT_TRUE(g.find(0x10, fill));
    EXPECT_EQ(fill, 100u);
    EXPECT_EQ(g.earliestFillAt(), 100u);
    g.prune(150);
    EXPECT_EQ(g.occupancy(), 1u);
}

TEST(MshrCheckpoint, RestoreIntoASmallerFileThrows)
{
    MshrFile f(4);
    f.allocate(0x10, 100);
    f.allocate(0x20, 200);
    sim::CheckpointWriter w;
    f.snapshotTo(w);

    MshrFile tiny(1);
    sim::CheckpointReader r(w.bytes());
    EXPECT_THROW(tiny.restoreFrom(r), sim::CheckpointError);
}

TEST(DramCheckpoint, BankAndQueueStateSurviveARoundTrip)
{
    stats::StatGroup root("t");
    DramParams p = oneBank();
    Dram a(p, 64, &root);

    a.accessAt(0, AccessType::Load, 0);      // opens row 0, busy
    a.accessAt(3 * 8192, AccessType::Load, 0); // row 3 behind it
    a.accessAt(64, AccessType::Store, 0);

    sim::CheckpointWriter w;
    a.snapshotTo(w);

    stats::StatGroup root2("t");
    Dram b(p, 64, &root2);
    sim::CheckpointReader r(w.bytes());
    b.restoreFrom(r);

    EXPECT_EQ(b.reads(), a.reads());
    EXPECT_EQ(b.writebacks(), a.writebacks());
    EXPECT_EQ(b.rowHits(), a.rowHits());
    EXPECT_EQ(b.rowMisses(), a.rowMisses());
    EXPECT_EQ(b.busyCycles(), a.busyCycles());

    // The restored queue and open row reproduce the original's
    // future behaviour exactly.
    const AccessResult ra = a.accessAt(3 * 8192 + 64,
                                       AccessType::Load, 10);
    const AccessResult rb = b.accessAt(3 * 8192 + 64,
                                       AccessType::Load, 10);
    EXPECT_EQ(ra.latency, rb.latency);
    EXPECT_EQ(a.rowHits(), b.rowHits());
}

TEST(DramCheckpoint, BankCountMismatchThrows)
{
    stats::StatGroup root("t");
    Dram a(oneBank(), 64, &root);
    sim::CheckpointWriter w;
    a.snapshotTo(w);

    DramParams p8;
    p8.banked = true;
    p8.banks = 8;
    stats::StatGroup root2("t");
    Dram b(p8, 64, &root2);
    sim::CheckpointReader r(w.bytes());
    EXPECT_THROW(b.restoreFrom(r), sim::CheckpointError);
}

// ---------------------------------------------------------------
// CMP acceptance: load-dependent latency, identical event counts
// ---------------------------------------------------------------

RunConfig
bankedCmpConfig()
{
    RunConfig cfg;
    cfg.maxInstrs = 100 * 1000;
    cfg.hier.dram.banked = true;
    cfg.hier.l1i.mshrs = 4;
    cfg.hier.l1d.mshrs = 4;
    cfg.hier.l2.mshrs = 8;
    return cfg;
}

CmpConfig
fourCoreMix()
{
    CmpConfig cmp;
    cmp.cores = 4;
    const char *benches[] = {"compress", "li", "mgrid", "gcc"};
    for (const char *b : benches) {
        CmpCoreConfig c;
        c.bench = b;
        cmp.coreConfigs.push_back(std::move(c));
    }
    return cmp;
}

TEST(CmpBankedDram, MissLatencyIsLoadDependentNotEventDependent)
{
    // The same 4-core mix through a wide (8-bank) and a fully
    // serialized (1-bank, depth-1 queue) DRAM: the round-robin
    // quanta are instruction-based, so what is referenced cannot
    // change — only when it completes. Every event count must
    // match; the contended configuration must be strictly slower.
    const CmpConfig cmp = fourCoreMix();
    const RunConfig wide = bankedCmpConfig();
    RunConfig contended = wide;
    contended.hier.dram.banks = 1;
    contended.hier.dram.queueDepth = 1;

    const CmpRunOutput a = runCmp(wide, cmp, "compress");
    const CmpRunOutput b = runCmp(contended, cmp, "compress");

    ASSERT_EQ(a.cores.size(), 4u);
    ASSERT_EQ(b.cores.size(), 4u);
    EXPECT_EQ(a.l2Accesses, b.l2Accesses);
    EXPECT_EQ(a.l2Misses, b.l2Misses);
    EXPECT_EQ(a.memAccesses, b.memAccesses);
    std::uint64_t sum_a = 0;
    for (std::size_t k = 0; k < a.cores.size(); ++k) {
        EXPECT_EQ(a.cores[k].meas.instructions,
                  b.cores[k].meas.instructions);
        EXPECT_EQ(a.cores[k].meas.l1iMisses,
                  b.cores[k].meas.l1iMisses);
        EXPECT_EQ(a.cores[k].l2Accesses, b.cores[k].l2Accesses);
        EXPECT_EQ(a.cores[k].l2Misses, b.cores[k].l2Misses);
        // Per-core demand-miss latency is where the load shows.
        EXPECT_GT(b.cores[k].l2MissLatencyCycles,
                  a.cores[k].l2MissLatencyCycles);
        sum_a += a.cores[k].l2MissLatencyCycles;
    }
    EXPECT_EQ(sum_a, a.l2MissLatencyCycles);
    EXPECT_GT(a.l2MissLatencyCycles, 0u);
    EXPECT_GT(b.l2MissLatencyCycles, a.l2MissLatencyCycles);

    // The non-blocking stats surface in the run output.
    EXPECT_GT(a.mshrPeakOccupancy, 0u);
    EXPECT_EQ(a.dramRowHits + a.dramRowMisses,
              b.dramRowHits + b.dramRowMisses);
    ASSERT_EQ(a.dramBankRowHits.size(), 8u);
    std::uint64_t bank_sum = 0;
    for (const std::uint64_t h : a.dramBankRowHits)
        bank_sum += h;
    EXPECT_EQ(bank_sum, a.dramRowHits);
    EXPECT_GT(a.dramBusyCycles, 0u);
}

TEST(CmpBankedDram, FlatModeOutputCarriesNoDramActivity)
{
    RunConfig cfg;
    cfg.maxInstrs = 50 * 1000;
    CmpConfig cmp;
    cmp.cores = 2;
    const CmpRunOutput out = runCmp(cfg, cmp, "compress");
    EXPECT_EQ(out.mshrCoalesced, 0u);
    EXPECT_EQ(out.mshrFullStalls, 0u);
    EXPECT_EQ(out.mshrPeakOccupancy, 0u);
    EXPECT_EQ(out.dramRowHits, 0u);
    EXPECT_EQ(out.dramRowMisses, 0u);
    EXPECT_EQ(out.dramBusyCycles, 0u);
    EXPECT_TRUE(out.dramBankRowHits.empty());
}

/** Banked CMP search must stay byte-identical at any worker count
 *  (the --jobs determinism acceptance; run under TSan via the
 *  `concurrency` label). */
TEST(CmpBankedDramConcurrency, SearchIsJobCountInvariant)
{
    RunConfig cfg = bankedCmpConfig();
    cfg.maxInstrs = 30 * 1000;
    CmpConfig cmp;
    cmp.cores = 2;
    CmpCoreConfig c0, c1;
    c0.bench = "compress";
    c1.bench = "li";
    cmp.coreConfigs = {c0, c1};

    const CmpRunOutput conv = runCmp(cfg, cmp, "compress");

    CmpSpace space;
    space.l1MissBoundFactors = {2.0, 32.0};
    space.l2SizeBounds = {64 * 1024};
    DriParams l1Tmpl;
    l1Tmpl.senseInterval = 10000;
    l1Tmpl.mshrs = 4;
    DriParams l2Tmpl = HierarchyParams::defaultL2DriParams();
    l2Tmpl.senseInterval = 10000;

    RunConfig serial = cfg;
    serial.jobs = 1;
    const CmpSearchResult one = searchCmp(
        serial, cmp, "compress", l1Tmpl, l2Tmpl, space,
        MultiLevelConstants::paper(), -1.0, conv);

    RunConfig pooled = cfg;
    pooled.jobs = 4;
    const CmpSearchResult four = searchCmp(
        pooled, cmp, "compress", l1Tmpl, l2Tmpl, space,
        MultiLevelConstants::paper(), -1.0, conv);

    ASSERT_EQ(one.evaluated.size(), four.evaluated.size());
    for (std::size_t i = 0; i < one.evaluated.size(); ++i) {
        const CmpCandidate &x = one.evaluated[i];
        const CmpCandidate &y = four.evaluated[i];
        EXPECT_EQ(x.l2.sizeBoundBytes, y.l2.sizeBoundBytes);
        EXPECT_EQ(x.l2.missBound, y.l2.missBound);
        ASSERT_EQ(x.l1.size(), y.l1.size());
        for (std::size_t k = 0; k < x.l1.size(); ++k)
            EXPECT_EQ(x.l1[k].missBound, y.l1[k].missBound);
        // Bit-identical doubles, not approximately equal.
        EXPECT_EQ(x.cmp.relativeEnergyDelay(),
                  y.cmp.relativeEnergyDelay());
        EXPECT_EQ(x.cmp.slowdownPercent(), y.cmp.slowdownPercent());
        EXPECT_EQ(x.cmp.driRun.cycles, y.cmp.driRun.cycles);
        EXPECT_EQ(x.cmp.driRun.memAccesses, y.cmp.driRun.memAccesses);
        EXPECT_EQ(x.cmp.driRun.dramBusyCycles,
                  y.cmp.driRun.dramBusyCycles);
    }
    EXPECT_EQ(one.best.l2.sizeBoundBytes, four.best.l2.sizeBoundBytes);
}

} // namespace
} // namespace drisim
