/**
 * @file
 * Energy-accounting tests: the Section 5.2 formulas, the Section
 * 5.2.1 ratio checks, and agreement between the published constants
 * and the circuit-derived ones.
 */

#include <gtest/gtest.h>

#include "energy/accounting.hh"
#include "energy/energy_model.hh"

namespace drisim
{
namespace
{

RunMeasurement
conv(Cycles cycles = 1000000, std::uint64_t accesses = 1000000,
     std::uint64_t misses = 1000)
{
    RunMeasurement m;
    m.cycles = cycles;
    m.instructions = cycles;
    m.l1iAccesses = accesses;
    m.l1iMisses = misses;
    m.avgActiveFraction = 1.0;
    m.resizingTagBits = 0;
    return m;
}

TEST(EnergyModel, ConventionalLeakage)
{
    const EnergyConstants c = EnergyConstants::paper();
    const auto e = conventionalEnergy(c, conv());
    // 0.91 nJ/cycle * 1M cycles.
    EXPECT_NEAR(e.l1LeakageNJ, 0.91e6, 1.0);
    EXPECT_EQ(e.extraL1DynamicNJ, 0.0);
    EXPECT_EQ(e.extraL2DynamicNJ, 0.0);
}

TEST(EnergyModel, DriLeakageScalesWithActiveFraction)
{
    const EnergyConstants c = EnergyConstants::paper();
    RunMeasurement dri = conv();
    dri.avgActiveFraction = 0.25;
    const auto e = driEnergy(c, dri, conv());
    EXPECT_NEAR(e.l1LeakageNJ, 0.25 * 0.91e6, 1.0);
}

TEST(EnergyModel, ExtraL1DynamicFollowsResizingBits)
{
    const EnergyConstants c = EnergyConstants::paper();
    RunMeasurement dri = conv();
    dri.resizingTagBits = 5;
    const auto e = driEnergy(c, dri, conv());
    // 5 bits * 0.0022 nJ * 1M accesses.
    EXPECT_NEAR(e.extraL1DynamicNJ, 5 * 0.0022 * 1e6, 1.0);
}

TEST(EnergyModel, ExtraL2ChargesOnlyExtraMisses)
{
    const EnergyConstants c = EnergyConstants::paper();
    RunMeasurement dri = conv();
    dri.l1iMisses = 5000; // 4000 extra over the baseline's 1000
    const auto e = driEnergy(c, dri, conv());
    EXPECT_NEAR(e.extraL2DynamicNJ, 3.6 * 4000, 1e-6);

    // Fewer misses than conventional: clamped to zero.
    dri.l1iMisses = 500;
    const auto e2 = driEnergy(c, dri, conv());
    EXPECT_EQ(e2.extraL2DynamicNJ, 0.0);
}

TEST(EnergyModel, Section521L1DynamicRatio)
{
    // Paper: with 5 resizing bits and a 50% active fraction, the
    // extra L1 dynamic energy is ~2.4% of the L1 leakage energy
    // (accesses ~ cycles).
    const EnergyConstants c = EnergyConstants::paper();
    RunMeasurement dri = conv();
    dri.resizingTagBits = 5;
    dri.avgActiveFraction = 0.5;
    const auto e = driEnergy(c, dri, conv());
    EXPECT_NEAR(e.extraL1DynamicNJ / e.l1LeakageNJ, 0.024, 0.002);
}

TEST(EnergyModel, Section521L2DynamicRatio)
{
    // Paper: at a 1% absolute extra miss rate and 50% active
    // fraction, extra L2 dynamic is ~8% of L1 leakage.
    const EnergyConstants c = EnergyConstants::paper();
    RunMeasurement base = conv(1000000, 1000000, 0);
    RunMeasurement dri = base;
    dri.avgActiveFraction = 0.5;
    dri.l1iMisses = 10000; // 1% of accesses
    const auto e = driEnergy(c, dri, base);
    EXPECT_NEAR(e.extraL2DynamicNJ / e.l1LeakageNJ, 0.079, 0.005);
}

TEST(EnergyModel, LeakageScalesWithCacheSize)
{
    const EnergyConstants c = EnergyConstants::paper();
    EXPECT_NEAR(c.leakPerCycleNJ(128 * 1024), 1.82, 1e-9);
    EXPECT_NEAR(c.leakPerCycleNJ(32 * 1024), 0.455, 1e-9);
}

TEST(EnergyModel, DerivedConstantsMatchPaper)
{
    const EnergyConstants paper = EnergyConstants::paper();
    const EnergyConstants derived = EnergyConstants::derived(
        circuit::Technology::scaled018(), circuit::l1Geometry(),
        circuit::l2Geometry());
    EXPECT_NEAR(derived.l1LeakPerCycleNJ, paper.l1LeakPerCycleNJ,
                0.02);
    EXPECT_NEAR(derived.bitlinePerAccessNJ, paper.bitlinePerAccessNJ,
                0.0003);
    EXPECT_NEAR(derived.l2PerAccessNJ, paper.l2PerAccessNJ, 0.2);
}

TEST(Accounting, RelativeEnergyDelayOfIdenticalRunIsActiveFraction)
{
    // Same cycles/misses, full active fraction, no resizing bits:
    // the DRI run degenerates to the conventional cache.
    const EnergyConstants c = EnergyConstants::paper();
    const auto r = compareRuns(c, conv(), conv());
    EXPECT_NEAR(r.relativeEnergyDelay(), 1.0, 1e-9);
    EXPECT_NEAR(r.slowdownPercent(), 0.0, 1e-9);
}

TEST(Accounting, ComponentsSumToTotal)
{
    const EnergyConstants c = EnergyConstants::paper();
    RunMeasurement dri = conv();
    dri.avgActiveFraction = 0.3;
    dri.resizingTagBits = 6;
    dri.l1iMisses = 3000;
    dri.cycles = 1050000;
    const auto r = compareRuns(c, conv(), dri);
    EXPECT_NEAR(r.relativeEdLeakage() + r.relativeEdDynamic(),
                r.relativeEnergyDelay(), 1e-9);
}

TEST(Accounting, SlowdownSignsAreRight)
{
    const EnergyConstants c = EnergyConstants::paper();
    RunMeasurement dri = conv();
    dri.cycles = 1040000;
    auto r = compareRuns(c, conv(), dri);
    EXPECT_NEAR(r.slowdownPercent(), 4.0, 1e-6);
}

TEST(Accounting, HeadlineShapeA62PercentReduction)
{
    // A representative Figure 3 bar: active fraction ~0.35, 6
    // resizing bits, small extra misses, 2% slowdown -> relative
    // energy-delay lands in the 0.3-0.45 band (a 55-70% reduction).
    const EnergyConstants c = EnergyConstants::paper();
    RunMeasurement base = conv();
    RunMeasurement dri = base;
    dri.avgActiveFraction = 0.35;
    dri.resizingTagBits = 6;
    dri.l1iMisses = base.l1iMisses + 2000;
    dri.cycles = 1020000;
    const auto r = compareRuns(c, base, dri);
    EXPECT_GT(r.relativeEnergyDelay(), 0.30);
    EXPECT_LT(r.relativeEnergyDelay(), 0.45);
}

} // namespace
} // namespace drisim
