/**
 * @file
 * Unit tests for the utility layer: bit operations, RNG, strings.
 */

#include <gtest/gtest.h>

#include <set>

#include "util/bitops.hh"
#include "util/json.hh"
#include "util/parse.hh"
#include "util/random.hh"
#include "util/str.hh"

namespace drisim
{
namespace
{

TEST(BitOps, PowersOfTwo)
{
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(2));
    EXPECT_TRUE(isPowerOf2(1ull << 40));
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_FALSE(isPowerOf2(3));
    EXPECT_FALSE(isPowerOf2(65535));
}

TEST(BitOps, Log2Family)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(64 * 1024), 16u);
    EXPECT_EQ(exactLog2(32), 5u);
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(5), 3u);
    EXPECT_EQ(ceilLog2(8), 3u);
}

TEST(BitOps, Masks)
{
    EXPECT_EQ(maskLow(0), 0ull);
    EXPECT_EQ(maskLow(5), 0x1Full);
    EXPECT_EQ(maskLow(64), ~0ull);
    EXPECT_EQ(bits(0xABCDull, 7, 4), 0xCull);
    EXPECT_EQ(bits(~0ull, 63, 0), ~0ull);
}

TEST(BitOps, Rounding)
{
    EXPECT_EQ(roundUp(13, 8), 16ull);
    EXPECT_EQ(roundUp(16, 8), 16ull);
    EXPECT_EQ(roundDown(13, 8), 8ull);
}

TEST(Rng, Deterministic)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, RangeBounds)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i) {
        auto v = r.range(13);
        EXPECT_LT(v, 13u);
    }
    for (int i = 0; i < 1000; ++i) {
        auto v = r.between(5, 9);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 9u);
    }
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(3);
    double sum = 0.0;
    for (int i = 0; i < 20000; ++i) {
        double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(Rng, GeometricMean)
{
    Rng r(11);
    const double mean = 16.0;
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(r.geometric(mean));
    EXPECT_NEAR(sum / n, mean, mean * 0.05);
}

TEST(Rng, GeometricFloorsAtOne)
{
    Rng r(5);
    for (int i = 0; i < 1000; ++i)
        EXPECT_GE(r.geometric(0.5), 1u);
}

TEST(Str, Format)
{
    EXPECT_EQ(strFormat("%d-%s", 7, "x"), "7-x");
    EXPECT_EQ(strFormat("%.2f", 1.5), "1.50");
}

TEST(Str, SplitTrim)
{
    auto parts = strSplit("a,b,,c", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[2], "");
    EXPECT_EQ(strTrim("  hi \t"), "hi");
    EXPECT_EQ(strTrim(""), "");
}

TEST(Str, BytesRoundTrip)
{
    EXPECT_EQ(bytesToString(1024), "1K");
    EXPECT_EQ(bytesToString(64 * 1024), "64K");
    EXPECT_EQ(bytesToString(1024 * 1024), "1M");
    EXPECT_EQ(bytesToString(100), "100");

    std::uint64_t v = 0;
    EXPECT_TRUE(parseBytes("64K", v));
    EXPECT_EQ(v, 64u * 1024);
    EXPECT_TRUE(parseBytes("2M", v));
    EXPECT_EQ(v, 2u * 1024 * 1024);
    EXPECT_TRUE(parseBytes("512", v));
    EXPECT_EQ(v, 512u);
    EXPECT_FALSE(parseBytes("abc", v));
    EXPECT_FALSE(parseBytes("", v));
}

TEST(Parse, UnsignedAcceptsPlainDecimal)
{
    std::uint64_t v = 0;
    EXPECT_TRUE(parseUnsignedValue("0", v));
    EXPECT_EQ(v, 0u);
    EXPECT_TRUE(parseUnsignedValue("42", v));
    EXPECT_EQ(v, 42u);
    EXPECT_TRUE(parseUnsignedValue("007", v));
    EXPECT_EQ(v, 7u);
    EXPECT_TRUE(parseUnsignedValue("18446744073709551615", v));
    EXPECT_EQ(v, UINT64_MAX);
}

TEST(Parse, UnsignedRejectsSignWhitespaceAndJunk)
{
    std::uint64_t v = 99;
    // The wraparound bug the shared parser exists to kill: strtoull
    // would happily turn "-1" into 2^64-1.
    EXPECT_FALSE(parseUnsignedValue("-1", v));
    EXPECT_FALSE(parseUnsignedValue("+1", v));
    EXPECT_FALSE(parseUnsignedValue("", v));
    EXPECT_FALSE(parseUnsignedValue(" 1", v));
    EXPECT_FALSE(parseUnsignedValue("1 ", v));
    EXPECT_FALSE(parseUnsignedValue("1x", v));
    EXPECT_FALSE(parseUnsignedValue("0x10", v));
    EXPECT_FALSE(parseUnsignedValue("1e3", v));
    EXPECT_EQ(v, 99u); // untouched on failure
}

TEST(Parse, UnsignedEnforcesCapWithoutWrapping)
{
    std::uint64_t v = 0;
    EXPECT_TRUE(parseUnsignedValue("4096", v, 4096));
    EXPECT_EQ(v, 4096u);
    EXPECT_FALSE(parseUnsignedValue("4097", v, 4096));
    // Single digit past a small cap: the old guard's
    // `maxValue - digit` underflowed here and let it through
    // (caught by the farm's shard=K/N bound, K <= N).
    EXPECT_FALSE(parseUnsignedValue("4", v, 3));
    EXPECT_TRUE(parseUnsignedValue("3", v, 3));
    EXPECT_EQ(v, 3u);
    EXPECT_FALSE(parseUnsignedValue("9", v, 0));
    EXPECT_TRUE(parseUnsignedValue("0", v, 0));
    // Values overflowing u64 must fail, not wrap.
    EXPECT_FALSE(parseUnsignedValue("18446744073709551616", v));
    EXPECT_FALSE(
        parseUnsignedValue("99999999999999999999999999", v));
}

/** Escape, embed in a quoted literal, and parse back. */
std::string
jsonRoundTrip(const std::string &s, bool &ok)
{
    const std::string doc = "\"" + jsonEscape(s) + "\"";
    JsonParser p(doc);
    const std::string out = p.parseString();
    ok = p.ok && p.pos == doc.size();
    return out;
}

TEST(Json, EscapeRoundTripsControlCharacters)
{
    // Every byte below 0x20 plus the two mandatory escapes must
    // survive escape -> parse unchanged (the sidecar format is
    // line-oriented, so embedded newlines in particular must never
    // reach the output raw).
    std::string all;
    for (int c = 1; c < 0x20; ++c)
        all += static_cast<char>(c);
    all += "\"\\";
    EXPECT_EQ(jsonEscape("\n"), "\\n");
    EXPECT_EQ(jsonEscape("\x01"), "\\u0001");
    EXPECT_EQ(jsonEscape("\x1f"), "\\u001f");
    EXPECT_EQ(jsonEscape("\""), "\\\"");
    bool ok = false;
    EXPECT_EQ(jsonRoundTrip(all, ok), all);
    EXPECT_TRUE(ok);
    // The escaped form itself carries no raw control bytes.
    for (const char c : jsonEscape(all))
        EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
}

TEST(Json, EscapePassesUtf8MultibyteThrough)
{
    // Multibyte UTF-8 (all bytes >= 0x80) is not escaped — it
    // round-trips byte-for-byte.
    const std::string s = "caf\xc3\xa9 \xe6\xbc\xa2\xe5\xad\x97";
    EXPECT_EQ(jsonEscape(s), s);
    bool ok = false;
    EXPECT_EQ(jsonRoundTrip(s, ok), s);
    EXPECT_TRUE(ok);
}

TEST(Json, ParseStringUnescapesFourHexDigits)
{
    // The \uXXXX unescape path: both hex cases, bounds at 0x00ff,
    // and the strictness rules (short escapes, non-hex digits and
    // code points past 0xff all poison the parse).
    {
        const std::string doc = "\"\\u0041\\u00Ff\\u001F\"";
        JsonParser p(doc);
        const std::string out = p.parseString();
        ASSERT_TRUE(p.ok);
        EXPECT_EQ(out, std::string("A\xff\x1f"));
    }
    for (const char *bad :
         {"\"\\u12\"", "\"\\u12g4\"", "\"\\u0100\"", "\"\\uzzzz\"",
          "\"\\u123"}) {
        const std::string doc = bad;
        JsonParser p(doc);
        p.parseString();
        EXPECT_FALSE(p.ok) << bad;
    }
}

TEST(Parse, PositiveRejectsZero)
{
    std::uint64_t v = 7;
    EXPECT_FALSE(parsePositiveValue("0", v));
    EXPECT_FALSE(parsePositiveValue("-1", v));
    EXPECT_EQ(v, 7u);
    EXPECT_TRUE(parsePositiveValue("1", v));
    EXPECT_EQ(v, 1u);
    EXPECT_TRUE(parsePositiveValue("64", v, 64));
    EXPECT_FALSE(parsePositiveValue("65", v, 64));
}

} // namespace
} // namespace drisim
