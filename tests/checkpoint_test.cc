/**
 * @file
 * Checkpoint/restore equivalence layer.
 *
 * The load-bearing property is bit-identity: a run that snapshots
 * at its midpoint and a run that restores that snapshot into a
 * fresh system must both reproduce the uninterrupted run exactly —
 * every stat, energy input and resize decision — for each core
 * model, all four leakage policies and resizable L1/L2. The
 * type-tagged stream and the keyed store are covered directly:
 * tag/section mismatches throw, store corruption and key mismatch
 * are misses, never deserialized.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "harness/runner.hh"
#include "mem/hierarchy.hh"
#include "sim/checkpoint.hh"
#include "system/cmp.hh"

namespace drisim
{
namespace
{

/** Unique scratch directory, removed on destruction. */
struct TempDir
{
    std::string path;

    TempDir()
    {
        char buf[] = "/tmp/drisim_ckpt_XXXXXX";
        const char *p = ::mkdtemp(buf);
        EXPECT_NE(p, nullptr);
        path = p ? p : "";
    }

    ~TempDir()
    {
        if (!path.empty())
            std::filesystem::remove_all(path);
    }
};

/** Short detailed run: big enough to resize, small enough for CI. */
RunConfig
quickConfig()
{
    RunConfig c;
    c.maxInstrs = 200 * 1000;
    return c;
}

DriParams
quickDri()
{
    DriParams d;
    d.senseInterval = 20 * 1000;
    d.sizeBoundBytes = 1024;
    d.missBound = 100;
    return d;
}

/** quickConfig() with the non-blocking memory system: banked DRAM
 *  plus MSHR files at every level — the snapshot now carries live
 *  bank queues, row buffers and in-flight miss registers. */
RunConfig
bankedConfig()
{
    RunConfig c = quickConfig();
    c.hier.dram.banked = true;
    c.hier.l1i.mshrs = 4;
    c.hier.l1d.mshrs = 4;
    c.hier.l2.mshrs = 8;
    return c;
}

/** Every RunOutput field, compared exactly (doubles included). */
void
expectSameRun(const RunOutput &a, const RunOutput &b)
{
    EXPECT_EQ(a.meas.cycles, b.meas.cycles);
    EXPECT_EQ(a.meas.instructions, b.meas.instructions);
    EXPECT_EQ(a.meas.l1iAccesses, b.meas.l1iAccesses);
    EXPECT_EQ(a.meas.l1iMisses, b.meas.l1iMisses);
    EXPECT_EQ(a.meas.avgActiveFraction, b.meas.avgActiveFraction);
    EXPECT_EQ(a.meas.resizingTagBits, b.meas.resizingTagBits);
    EXPECT_EQ(a.meas.l1iBytes, b.meas.l1iBytes);
    EXPECT_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.l1dMissRate, b.l1dMissRate);
    EXPECT_EQ(a.l2MissRate, b.l2MissRate);
    EXPECT_EQ(a.l2Accesses, b.l2Accesses);
    EXPECT_EQ(a.l2Misses, b.l2Misses);
    EXPECT_EQ(a.memAccesses, b.memAccesses);
    EXPECT_EQ(a.memReads, b.memReads);
    EXPECT_EQ(a.memWritebacks, b.memWritebacks);
    EXPECT_EQ(a.resizes, b.resizes);
    EXPECT_EQ(a.throttleEvents, b.throttleEvents);
    EXPECT_EQ(a.mshrCoalesced, b.mshrCoalesced);
    EXPECT_EQ(a.mshrFullStalls, b.mshrFullStalls);
    EXPECT_EQ(a.dramRowHits, b.dramRowHits);
    EXPECT_EQ(a.dramRowMisses, b.dramRowMisses);
    EXPECT_EQ(a.l2SizeBytes, b.l2SizeBytes);
    EXPECT_EQ(a.l2AvgActiveFraction, b.l2AvgActiveFraction);
    EXPECT_EQ(a.l2ResizingTagBits, b.l2ResizingTagBits);
    EXPECT_EQ(a.l2Resizes, b.l2Resizes);
    EXPECT_EQ(a.l1DrowsyFraction, b.l1DrowsyFraction);
    EXPECT_EQ(a.wakeTransitions, b.wakeTransitions);
    EXPECT_EQ(a.wakeStallCycles, b.wakeStallCycles);
    EXPECT_EQ(a.policyBlocksLost, b.policyBlocksLost);
}

/**
 * Run @p fn three ways — uninterrupted, snapshot pass (simulates
 * both halves, persisting the midpoint), restore pass (restores the
 * midpoint into a fresh system, simulates only the tail) — and
 * require all three bit-identical. Also checks the process-wide
 * counters saw exactly one save then one restore.
 */
template <typename Fn>
void
expectSplitEquivalence(const RunConfig &base, Fn &&fn)
{
    TempDir dir;
    const RunOutput plain = fn(base);

    RunConfig ck = base;
    ck.checkpointDir = dir.path;
    const sim::CheckpointCounters before = sim::checkpointCounters();
    const RunOutput saved = fn(ck);
    const sim::CheckpointCounters mid = sim::checkpointCounters();
    EXPECT_EQ(mid.saves, before.saves + 1);
    EXPECT_EQ(mid.restores, before.restores);

    const RunOutput restored = fn(ck);
    const sim::CheckpointCounters after = sim::checkpointCounters();
    EXPECT_EQ(after.saves, mid.saves);
    EXPECT_EQ(after.restores, mid.restores + 1);

    expectSameRun(plain, saved);
    expectSameRun(plain, restored);
}

// ---------------------------------------------------------------
// Writer/reader stream primitives
// ---------------------------------------------------------------

TEST(CheckpointIO, RoundTripsEveryType)
{
    sim::CheckpointWriter w;
    w.beginSection("t");
    w.putU64(0);
    w.putU64(~std::uint64_t{0});
    w.putI64(-42);
    w.putF64(0.1);
    w.putBool(true);
    w.putBool(false);
    w.putString(std::string_view("hello\0world\n", 12));
    w.beginSection("nested");
    w.putU64(7);
    w.endSection();
    w.endSection();

    sim::CheckpointReader r(w.bytes());
    r.beginSection("t");
    EXPECT_EQ(r.getU64(), 0u);
    EXPECT_EQ(r.getU64(), ~std::uint64_t{0});
    EXPECT_EQ(r.getI64(), -42);
    EXPECT_EQ(r.getF64(), 0.1);
    EXPECT_TRUE(r.getBool());
    EXPECT_FALSE(r.getBool());
    EXPECT_EQ(r.getString(), std::string("hello\0world\n", 12));
    r.beginSection("nested");
    EXPECT_EQ(r.getU64(), 7u);
    r.endSection();
    r.endSection();
    EXPECT_TRUE(r.atEnd());
}

TEST(CheckpointIO, RoundTripsNanAndNegativeZero)
{
    sim::CheckpointWriter w;
    w.beginSection("f");
    w.putF64(std::nan(""));
    w.putF64(-0.0);
    w.endSection();

    sim::CheckpointReader r(w.bytes());
    r.beginSection("f");
    EXPECT_TRUE(std::isnan(r.getF64()));
    const double z = r.getF64();
    EXPECT_EQ(z, 0.0);
    EXPECT_TRUE(std::signbit(z));
    r.endSection();
}

TEST(CheckpointIO, TagMismatchThrows)
{
    sim::CheckpointWriter w;
    w.beginSection("t");
    w.putU64(1);
    w.endSection();

    sim::CheckpointReader r(w.bytes());
    r.beginSection("t");
    EXPECT_THROW(r.getI64(), sim::CheckpointError);
}

TEST(CheckpointIO, SectionNameMismatchThrows)
{
    sim::CheckpointWriter w;
    w.beginSection("cache");
    w.putU64(1);
    w.endSection();

    sim::CheckpointReader r(w.bytes());
    EXPECT_THROW(r.beginSection("core"), sim::CheckpointError);
}

TEST(CheckpointIO, TruncatedStreamThrows)
{
    sim::CheckpointWriter w;
    w.beginSection("t");
    w.putString("a long enough payload to truncate");
    w.endSection();

    const std::string &full = w.bytes();
    sim::CheckpointReader r(full.substr(0, full.size() / 2));
    r.beginSection("t");
    EXPECT_THROW(r.getString(), sim::CheckpointError);
}

// ---------------------------------------------------------------
// Keyed store
// ---------------------------------------------------------------

TEST(CheckpointStore, MissOnAbsentKey)
{
    TempDir dir;
    sim::CheckpointStore store(dir.path);
    std::string blob;
    EXPECT_FALSE(store.load("never-saved", blob));
}

TEST(CheckpointStore, SaveThenLoadRoundTrips)
{
    TempDir dir;
    sim::CheckpointStore store(dir.path);
    const std::string payload("\x00\x01\xff\xfe"
                              "binary",
                              10);
    store.save("k1", payload);
    std::string blob;
    ASSERT_TRUE(store.load("k1", blob));
    EXPECT_EQ(blob, payload);
    // A second store over the same dir sees the same file.
    sim::CheckpointStore again(dir.path);
    blob.clear();
    ASSERT_TRUE(again.load("k1", blob));
    EXPECT_EQ(blob, payload);
}

TEST(CheckpointStore, CorruptedFileIsAMissNotAnAnswer)
{
    TempDir dir;
    sim::CheckpointStore store(dir.path);
    store.save("k1", "payload-bytes");

    // Clobber the file: the magic/key verification must fail.
    for (const auto &ent :
         std::filesystem::directory_iterator(dir.path)) {
        std::ofstream f(ent.path(), std::ios::binary);
        f << "not a checkpoint at all";
    }
    std::string blob;
    EXPECT_FALSE(store.load("k1", blob));
}

TEST(CheckpointStore, TruncatedFileIsAMiss)
{
    TempDir dir;
    sim::CheckpointStore store(dir.path);
    store.save("k1", "payload that will get cut short");

    for (const auto &ent :
         std::filesystem::directory_iterator(dir.path)) {
        const auto full = std::filesystem::file_size(ent.path());
        std::filesystem::resize_file(ent.path(), full / 2);
    }
    std::string blob;
    EXPECT_FALSE(store.load("k1", blob));
}

TEST(CheckpointStore, DistinctKeysDoNotAlias)
{
    TempDir dir;
    sim::CheckpointStore store(dir.path);
    store.save("cfgA", "A");
    store.save("cfgB", "B");
    std::string blob;
    ASSERT_TRUE(store.load("cfgA", blob));
    EXPECT_EQ(blob, "A");
    ASSERT_TRUE(store.load("cfgB", blob));
    EXPECT_EQ(blob, "B");
}

// ---------------------------------------------------------------
// Split-run bit-identity: detailed core
// ---------------------------------------------------------------

TEST(CheckpointedRun, ConventionalDetailedSplitIsExact)
{
    const auto &b = findBenchmark("compress");
    expectSplitEquivalence(quickConfig(), [&](const RunConfig &c) {
        return runConventional(b, c);
    });
}

TEST(CheckpointedRun, DriDetailedSplitIsExact)
{
    const auto &b = findBenchmark("li");
    const DriParams dp = quickDri();
    expectSplitEquivalence(quickConfig(), [&](const RunConfig &c) {
        return runDri(b, c, dp);
    });
}

TEST(CheckpointedRun, DriL2SplitIsExact)
{
    const auto &b = findBenchmark("compress");
    RunConfig cfg = quickConfig();
    cfg.hier.l2Dri = true;
    cfg.hier.l2DriParams = HierarchyParams::defaultL2DriParams();
    cfg.hier.l2DriParams.senseInterval = 20 * 1000;
    const DriParams dp = quickDri();
    expectSplitEquivalence(cfg, [&](const RunConfig &c) {
        return runDri(b, c, dp);
    });
}

TEST(CheckpointedRun, EveryPolicySplitIsExact)
{
    const auto &b = findBenchmark("compress");
    RunConfig cfg = quickConfig();
    cfg.hier.l1i.assoc = 4; // selective-ways needs ways to gate

    for (const PolicyKind kind :
         {PolicyKind::Dri, PolicyKind::Decay, PolicyKind::Drowsy,
          PolicyKind::StaticWays}) {
        PolicyConfig pol;
        pol.kind = kind;
        pol.dri = quickDri();
        pol.dri.assoc = 4;
        pol.decay.decayInterval = 20 * 1000;
        pol.drowsy.drowsyInterval = 20 * 1000;
        pol.ways.activeWays = 2;
        SCOPED_TRACE(static_cast<int>(kind));
        expectSplitEquivalence(cfg, [&](const RunConfig &c) {
            return runPolicy(b, c, pol);
        });
    }
}

// ---------------------------------------------------------------
// Split-run bit-identity: banked DRAM + MSHRs (the snapshot must
// carry bank queues, open rows and in-flight miss registers)
// ---------------------------------------------------------------

TEST(CheckpointedRun, ConventionalBankedDramSplitIsExact)
{
    const auto &b = findBenchmark("compress");
    expectSplitEquivalence(bankedConfig(), [&](const RunConfig &c) {
        return runConventional(b, c);
    });
}

TEST(CheckpointedRun, DriBankedDramSplitIsExact)
{
    const auto &b = findBenchmark("li");
    DriParams dp = quickDri();
    dp.mshrs = 4;
    expectSplitEquivalence(bankedConfig(), [&](const RunConfig &c) {
        return runDri(b, c, dp);
    });
}

TEST(CheckpointedRun, DriL2BankedDramSplitIsExact)
{
    const auto &b = findBenchmark("compress");
    RunConfig cfg = bankedConfig();
    cfg.hier.l2Dri = true;
    cfg.hier.l2DriParams = HierarchyParams::defaultL2DriParams();
    cfg.hier.l2DriParams.senseInterval = 20 * 1000;
    DriParams dp = quickDri();
    dp.mshrs = 4;
    expectSplitEquivalence(cfg, [&](const RunConfig &c) {
        return runDri(b, c, dp);
    });
}

TEST(CheckpointedRun, EveryPolicyBankedDramSplitIsExact)
{
    const auto &b = findBenchmark("compress");
    RunConfig cfg = bankedConfig();
    cfg.hier.l1i.assoc = 4; // selective-ways needs ways to gate

    for (const PolicyKind kind :
         {PolicyKind::Dri, PolicyKind::Decay, PolicyKind::Drowsy,
          PolicyKind::StaticWays}) {
        PolicyConfig pol;
        pol.kind = kind;
        pol.dri = quickDri();
        pol.dri.assoc = 4;
        pol.dri.mshrs = 4;
        pol.decay.decayInterval = 20 * 1000;
        pol.drowsy.drowsyInterval = 20 * 1000;
        pol.ways.activeWays = 2;
        SCOPED_TRACE(static_cast<int>(kind));
        expectSplitEquivalence(cfg, [&](const RunConfig &c) {
            return runPolicy(b, c, pol);
        });
    }
}

TEST(CheckpointedRun, FastModelBankedDramSplitIsExact)
{
    const auto &b = findBenchmark("li");
    const RunConfig cfg = bankedConfig();
    const RunOutput conv = runConventional(b, cfg);
    const FastCalibration cal = calibrateFast(b, cfg, conv);
    DriParams dp = quickDri();
    dp.mshrs = 4;

    expectSplitEquivalence(cfg, [&](const RunConfig &c) {
        return runConventionalFast(b, c, cal);
    });
    expectSplitEquivalence(cfg, [&](const RunConfig &c) {
        return runDriFast(b, c, dp, cal);
    });
}

TEST(CheckpointedRun, DifferentDramConfigsNeverShareASnapshot)
{
    // Flat and banked runs of the same benchmark share a checkpoint
    // dir: the dram.* knobs are in the run key, so each flavour must
    // save its own snapshot and restore its own bit-identical run.
    const auto &b = findBenchmark("compress");
    TempDir dir;
    RunConfig flat = quickConfig();
    RunConfig banked = bankedConfig();

    const RunOutput plainFlat = runConventional(b, flat);
    const RunOutput plainBanked = runConventional(b, banked);

    flat.checkpointDir = dir.path;
    banked.checkpointDir = dir.path;
    const sim::CheckpointCounters before = sim::checkpointCounters();
    expectSameRun(plainFlat, runConventional(b, flat));
    expectSameRun(plainBanked, runConventional(b, banked));
    const sim::CheckpointCounters after = sim::checkpointCounters();
    EXPECT_EQ(after.saves, before.saves + 2);
    EXPECT_EQ(after.restores, before.restores);

    expectSameRun(plainFlat, runConventional(b, flat));
    expectSameRun(plainBanked, runConventional(b, banked));
    EXPECT_EQ(sim::checkpointCounters().restores,
              after.restores + 2);
}

// ---------------------------------------------------------------
// Split-run bit-identity: fast core (batched retirement)
// ---------------------------------------------------------------

TEST(CheckpointedRun, FastModelSplitIsExact)
{
    const auto &b = findBenchmark("li");
    const RunConfig cfg = quickConfig();
    const RunOutput conv = runConventional(b, cfg);
    const FastCalibration cal = calibrateFast(b, cfg, conv);
    const DriParams dp = quickDri();

    expectSplitEquivalence(cfg, [&](const RunConfig &c) {
        return runConventionalFast(b, c, cal);
    });
    expectSplitEquivalence(cfg, [&](const RunConfig &c) {
        return runDriFast(b, c, dp, cal);
    });
}

TEST(CheckpointedRun, FastPolicySplitIsExact)
{
    const auto &b = findBenchmark("compress");
    RunConfig cfg = quickConfig();
    cfg.hier.l1i.assoc = 4;
    const RunOutput conv = runConventional(b, cfg);
    const FastCalibration cal = calibrateFast(b, cfg, conv);

    PolicyConfig pol;
    pol.kind = PolicyKind::Drowsy;
    pol.dri = quickDri();
    pol.dri.assoc = 4;
    pol.drowsy.drowsyInterval = 20 * 1000;
    expectSplitEquivalence(cfg, [&](const RunConfig &c) {
        return runPolicyFast(b, c, pol, cal);
    });
}

// ---------------------------------------------------------------
// Interactions
// ---------------------------------------------------------------

TEST(CheckpointedRun, DifferentConfigsNeverShareASnapshot)
{
    // Two runs differing in one knob share a checkpoint dir; each
    // must save its own snapshot (different keys), and each restore
    // must reproduce its own plain run.
    const auto &b = findBenchmark("compress");
    TempDir dir;
    DriParams a = quickDri();
    DriParams c = quickDri();
    c.missBound = a.missBound + 1;

    RunConfig cfg = quickConfig();
    const RunOutput plainA = runDri(b, cfg, a);
    const RunOutput plainC = runDri(b, cfg, c);

    cfg.checkpointDir = dir.path;
    const sim::CheckpointCounters before = sim::checkpointCounters();
    expectSameRun(plainA, runDri(b, cfg, a));
    expectSameRun(plainC, runDri(b, cfg, c));
    const sim::CheckpointCounters after = sim::checkpointCounters();
    EXPECT_EQ(after.saves, before.saves + 2);
    EXPECT_EQ(after.restores, before.restores);

    expectSameRun(plainA, runDri(b, cfg, a));
    expectSameRun(plainC, runDri(b, cfg, c));
    EXPECT_EQ(sim::checkpointCounters().restores,
              after.restores + 2);
}

TEST(CheckpointedRun, DistinctCoherenceConfigsNeverShareAKey)
{
    // The CMP run identity must cover the coherence layer: a
    // coherent run restored into (or memoized for) a protocol-off
    // system — or one with a different directory size or message
    // latency — would replay a different machine. Every knob must
    // move the canonical key.
    RunConfig cfg;
    cfg.maxInstrs = 100 * 1000;
    CmpConfig off;
    off.cores = 2;

    CmpConfig on = off;
    on.coherence.enabled = true;
    CmpConfig bigDir = on;
    bigDir.coherence.directoryEntries = 512;
    CmpConfig slowMsg = on;
    slowMsg.coherence.msgLatency = 7;

    const std::string kOff =
        runKeyCmp(cfg, off, "compress").canonical();
    const std::string kOn =
        runKeyCmp(cfg, on, "compress").canonical();
    const std::string kBig =
        runKeyCmp(cfg, bigDir, "compress").canonical();
    const std::string kSlow =
        runKeyCmp(cfg, slowMsg, "compress").canonical();

    EXPECT_NE(kOff, kOn);
    EXPECT_NE(kOn, kBig);
    EXPECT_NE(kOn, kSlow);
    EXPECT_NE(kBig, kSlow);

    // With the protocol off the directory knobs are inert: they
    // must NOT perturb the key, or pre-coherence sidecar entries
    // and snapshots would be orphaned.
    CmpConfig offTuned = off;
    offTuned.coherence.directoryEntries = 512;
    offTuned.coherence.msgLatency = 7;
    EXPECT_EQ(kOff,
              runKeyCmp(cfg, offTuned, "compress").canonical());
}

TEST(CheckpointedRun, SamplingDisablesMidRunSnapshots)
{
    // Sampled runs are not checkpointed (the sampler owns the run
    // loop); the flag combination must run cleanly and leave the
    // counters untouched.
    const auto &b = findBenchmark("compress");
    TempDir dir;
    RunConfig cfg = quickConfig();
    cfg.sampling.enabled = true;
    cfg.sampling.detailedWindow = 20 * 1000;
    cfg.sampling.period = 50 * 1000;
    cfg.checkpointDir = dir.path;

    const sim::CheckpointCounters before = sim::checkpointCounters();
    const RunOutput s1 = runConventional(b, cfg);
    const RunOutput s2 = runConventional(b, cfg);
    const sim::CheckpointCounters after = sim::checkpointCounters();
    EXPECT_EQ(after.saves, before.saves);
    EXPECT_EQ(after.restores, before.restores);
    expectSameRun(s1, s2);
}

} // namespace
} // namespace drisim
