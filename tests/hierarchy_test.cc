/**
 * @file
 * Memory-system wiring tests against the Table 1 configuration.
 */

#include <gtest/gtest.h>

#include "mem/hierarchy.hh"

namespace drisim
{
namespace
{

TEST(Hierarchy, Table1Defaults)
{
    const HierarchyParams p;
    EXPECT_EQ(p.l1i.sizeBytes, 64u * 1024);
    EXPECT_EQ(p.l1i.assoc, 1u);
    EXPECT_EQ(p.l1i.hitLatency, 1u);
    EXPECT_EQ(p.l1d.sizeBytes, 64u * 1024);
    EXPECT_EQ(p.l1d.assoc, 2u);
    EXPECT_EQ(p.l2.sizeBytes, 1024u * 1024);
    EXPECT_EQ(p.l2.assoc, 4u);
    EXPECT_EQ(p.l2.hitLatency, 12u);
}

TEST(Hierarchy, BuildsConventionalL1i)
{
    stats::StatGroup root("t");
    Hierarchy h(HierarchyParams{}, &root, true);
    ASSERT_NE(h.convL1i(), nullptr);
    EXPECT_EQ(h.l1i(), h.convL1i());
}

TEST(Hierarchy, L1MissFillsL2)
{
    stats::StatGroup root("t");
    Hierarchy h(HierarchyParams{}, &root, true);
    h.l1i()->access(0x1000, AccessType::InstFetch);
    EXPECT_EQ(h.l2().accesses(), 1u);
    EXPECT_EQ(h.mem().accesses(), 1u);
    // L1 hit afterwards: no new L2 traffic.
    h.l1i()->access(0x1000, AccessType::InstFetch);
    EXPECT_EQ(h.l2().accesses(), 1u);
}

TEST(Hierarchy, L2SharedBetweenInstAndData)
{
    stats::StatGroup root("t");
    Hierarchy h(HierarchyParams{}, &root, true);
    // Instruction fetch brings the 64 B L2 line in; a data access
    // to the same line hits in L2.
    h.l1i()->access(0x2000, AccessType::InstFetch);
    auto r = h.l1d().access(0x2020, AccessType::Load);
    EXPECT_FALSE(r.hit); // L1D miss
    EXPECT_EQ(h.mem().accesses(), 1u); // but no second memory trip
}

TEST(Hierarchy, DcacheMissLatencyChain)
{
    stats::StatGroup root("t");
    Hierarchy h(HierarchyParams{}, &root, true);
    auto r = h.l1d().access(0x3000, AccessType::Load);
    // 1 (L1D) + 12 (L2) + 112 (memory 64 B) cycles.
    EXPECT_EQ(r.latency, 125u);
}

TEST(Hierarchy, ExternalL1iInstallable)
{
    stats::StatGroup root("t");
    Hierarchy h(HierarchyParams{}, &root, false);
    EXPECT_EQ(h.convL1i(), nullptr);
    // The DRI i-cache (or any MemoryLevel) can take the slot.
    MainMemory fake(32, &root);
    h.setL1I(&fake);
    EXPECT_EQ(h.l1i(), &fake);
}

} // namespace
} // namespace drisim
