/**
 * @file
 * Leakage-policy subsystem tests: per-policy edge cases (decay
 * counter saturation/reset, drowsy single-charge wake stalls,
 * static-ways way-0 protection), the Dri adapter's bit-for-bit
 * equivalence with the direct DRI path, the policy energy
 * accounting (including its exact reduction to the paper's
 * Section 5.2 model when the gated residual is zeroed), and the
 * per-core policy CMP wiring.
 */

#include <gtest/gtest.h>

#include "circuit/drowsy_cell.hh"
#include "energy/accounting.hh"
#include "harness/multilevel.hh"
#include "harness/policies.hh"
#include "harness/runner.hh"
#include "policy/decay_policy.hh"
#include "policy/dri_policy.hh"
#include "policy/drowsy_policy.hh"
#include "policy/static_ways.hh"

namespace drisim
{
namespace
{

/** A tiny direct-mapped geometry: 32 sets x 32 B lines. */
PolicyConfig
tinyConfig(PolicyKind kind)
{
    PolicyConfig c;
    c.kind = kind;
    c.dri.sizeBytes = 1024;
    c.dri.assoc = 1;
    c.dri.blockBytes = 32;
    c.dri.sizeBoundBytes = 1024;
    return c;
}

Addr
setAddr(std::uint64_t set, std::uint64_t tag = 0)
{
    return (tag * 32 + set) * 32; // 32 sets of 32-byte blocks
}

// ---------------------------------------------------------------
// Decay
// ---------------------------------------------------------------

TEST(DecayPolicy, CounterSaturatesAndGatesDeadLines)
{
    stats::StatGroup root("t");
    PolicyConfig cfg = tinyConfig(PolicyKind::Decay);
    cfg.decay.decayInterval = 1000;
    cfg.decay.counterLimit = 3;
    DecayCache cache(cfg, nullptr, &root);

    cache.access(setAddr(0), AccessType::InstFetch); // fill set 0
    EXPECT_TRUE(cache.linePowered(0, 0));
    EXPECT_EQ(cache.lineCounter(0, 0), 0u);

    // Two generations: the counter climbs but the line survives.
    cache.onRetire(2000);
    EXPECT_EQ(cache.generations(), 2u);
    EXPECT_EQ(cache.lineCounter(0, 0), 2u);
    EXPECT_TRUE(cache.access(setAddr(0), AccessType::InstFetch).hit);

    // The third generation saturates untouched lines and gates
    // them, destroying the one valid block.
    cache.onRetire(1000); // line 0 counter back at 1 (touch reset)
    EXPECT_EQ(cache.lineCounter(0, 0), 1u);
    cache.onRetire(2000);
    EXPECT_FALSE(cache.linePowered(0, 0));
    EXPECT_EQ(cache.decayGatedBlocks(), 1u);
    // Every other (invalid) frame is gated too, without loss.
    EXPECT_EQ(cache.poweredLineCount(), 0u);

    // The re-fetch misses (state was destroyed) and re-powers the
    // frame — a wake transition hidden under the fill.
    EXPECT_FALSE(
        cache.access(setAddr(0), AccessType::InstFetch).hit);
    EXPECT_TRUE(cache.linePowered(0, 0));
    EXPECT_EQ(cache.poweredLineCount(), 1u);
    EXPECT_EQ(cache.activity().wakeTransitions, 1u);
}

TEST(DecayPolicy, TouchResetKeepsHotLinesAlive)
{
    stats::StatGroup root("t");
    PolicyConfig cfg = tinyConfig(PolicyKind::Decay);
    cfg.decay.decayInterval = 1000;
    cfg.decay.counterLimit = 2;
    DecayCache cache(cfg, nullptr, &root);

    cache.access(setAddr(3), AccessType::InstFetch);
    // Touch every generation: the line must never decay.
    for (int g = 0; g < 10; ++g) {
        cache.onRetire(1000);
        EXPECT_TRUE(
            cache.access(setAddr(3), AccessType::InstFetch).hit)
            << "generation " << g;
    }
    EXPECT_EQ(cache.decayGatedBlocks(), 0u);
    EXPECT_TRUE(cache.linePowered(3, 0));
}

TEST(DecayPolicy, ActiveFractionIntegratesGatedTime)
{
    stats::StatGroup root("t");
    PolicyConfig cfg = tinyConfig(PolicyKind::Decay);
    cfg.decay.decayInterval = 1000;
    cfg.decay.counterLimit = 1;
    DecayCache cache(cfg, nullptr, &root);

    cache.onCycles(100); // fully powered
    cache.onRetire(1000); // everything decays at limit 1
    EXPECT_EQ(cache.poweredLineCount(), 0u);
    cache.onCycles(100); // fully gated
    const PolicyActivity a = cache.activity();
    EXPECT_DOUBLE_EQ(a.avgActiveFraction, 0.5);
    EXPECT_DOUBLE_EQ(a.avgDrowsyFraction, 0.0);
}

// ---------------------------------------------------------------
// Drowsy
// ---------------------------------------------------------------

TEST(DrowsyPolicy, WakeStallChargedExactlyOncePerWake)
{
    stats::StatGroup root("t");
    PolicyConfig cfg = tinyConfig(PolicyKind::Drowsy);
    cfg.drowsy.drowsyInterval = 1000;
    cfg.drowsy.wakeLatency = 2;
    DrowsyCache cache(cfg, nullptr, &root);

    cache.access(setAddr(0), AccessType::InstFetch); // fill, awake
    EXPECT_EQ(cache.access(setAddr(0), AccessType::InstFetch)
                  .latency,
              1u); // plain hit

    cache.onRetire(1000); // episode: the whole array goes drowsy
    EXPECT_EQ(cache.episodes(), 1u);
    EXPECT_EQ(cache.drowsyLineCount(), cache.totalLines());
    EXPECT_TRUE(cache.lineDrowsy(0, 0));

    // First touch pays the wake stall...
    AccessResult r = cache.access(setAddr(0), AccessType::InstFetch);
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(r.latency, 3u); // hit 1 + wake 2
    EXPECT_EQ(cache.activity().wakeStallCycles, 2u);
    EXPECT_EQ(cache.activity().wakeTransitions, 1u);

    // ...and exactly once: the line stays awake.
    r = cache.access(setAddr(0), AccessType::InstFetch);
    EXPECT_EQ(r.latency, 1u);
    EXPECT_EQ(cache.activity().wakeStallCycles, 2u);
    EXPECT_EQ(cache.activity().wakeTransitions, 1u);

    // A fill into a drowsy frame wakes it under the fill's own
    // latency: a transition, but no extra stall.
    EXPECT_FALSE(
        cache.access(setAddr(5), AccessType::InstFetch).hit);
    EXPECT_FALSE(cache.lineDrowsy(5, 0));
    EXPECT_EQ(cache.activity().wakeTransitions, 2u);
    EXPECT_EQ(cache.activity().wakeStallCycles, 2u);
}

TEST(DrowsyPolicy, FractionsPartitionTheArray)
{
    stats::StatGroup root("t");
    PolicyConfig cfg = tinyConfig(PolicyKind::Drowsy);
    cfg.drowsy.drowsyInterval = 1000;
    DrowsyCache cache(cfg, nullptr, &root);

    cache.onCycles(300); // all awake
    cache.onRetire(1000);
    cache.onCycles(100); // all drowsy
    const PolicyActivity a = cache.activity();
    EXPECT_DOUBLE_EQ(a.avgActiveFraction, 0.75);
    EXPECT_DOUBLE_EQ(a.avgDrowsyFraction, 0.25);
    // State-preserving: nothing is ever lost or invalidated.
    EXPECT_EQ(a.blocksLost, 0u);
}

// ---------------------------------------------------------------
// StaticWays
// ---------------------------------------------------------------

TEST(StaticWaysPolicy, NeverGatesWayZeroAndClampsToAssoc)
{
    stats::StatGroup root("t");
    PolicyConfig cfg = tinyConfig(PolicyKind::StaticWays);
    cfg.dri.sizeBytes = 4096;
    cfg.dri.assoc = 4;

    cfg.ways.activeWays = 0; // illegal: clamped up, way 0 survives
    StaticWaysCache clamped0(cfg, nullptr, &root);
    EXPECT_EQ(clamped0.activeWays(), 1u);

    cfg.ways.activeWays = 7; // past assoc: clamped down
    StaticWaysCache clamped7(cfg, nullptr, &root);
    EXPECT_EQ(clamped7.activeWays(), 4u);
}

TEST(StaticWaysPolicy, GatedWaysAreNeverAllocated)
{
    stats::StatGroup root("t");
    PolicyConfig cfg = tinyConfig(PolicyKind::StaticWays);
    cfg.dri.sizeBytes = 4096;
    cfg.dri.assoc = 4;
    cfg.ways.activeWays = 1;
    StaticWaysCache cache(cfg, nullptr, &root);

    // Two conflicting blocks: with only way 0 powered the cache
    // behaves direct-mapped — the second fill evicts the first.
    const Addr a = 0;
    const Addr b = 32u * 32u; // same set, different tag
    EXPECT_FALSE(cache.access(a, AccessType::InstFetch).hit);
    EXPECT_FALSE(cache.access(b, AccessType::InstFetch).hit);
    EXPECT_TRUE(cache.access(b, AccessType::InstFetch).hit);
    EXPECT_FALSE(cache.access(a, AccessType::InstFetch).hit);

    EXPECT_DOUBLE_EQ(cache.activeFraction(), 0.25);
    cache.onCycles(50);
    const PolicyActivity act = cache.activity();
    EXPECT_DOUBLE_EQ(act.avgActiveFraction, 0.25);
    EXPECT_EQ(act.wakeTransitions, 0u);

    // With all ways powered the same pair coexists.
    cfg.ways.activeWays = 4;
    StaticWaysCache full(cfg, nullptr, &root);
    full.access(a, AccessType::InstFetch);
    full.access(b, AccessType::InstFetch);
    EXPECT_TRUE(full.access(a, AccessType::InstFetch).hit);
    EXPECT_TRUE(full.access(b, AccessType::InstFetch).hit);
}

// ---------------------------------------------------------------
// Dri adapter equivalence
// ---------------------------------------------------------------

/** Field-by-field equality of the observables both paths fill. */
void
expectSameRun(const RunOutput &a, const RunOutput &b)
{
    EXPECT_EQ(a.meas.cycles, b.meas.cycles);
    EXPECT_EQ(a.meas.instructions, b.meas.instructions);
    EXPECT_EQ(a.meas.l1iAccesses, b.meas.l1iAccesses);
    EXPECT_EQ(a.meas.l1iMisses, b.meas.l1iMisses);
    EXPECT_EQ(a.meas.avgActiveFraction, b.meas.avgActiveFraction);
    EXPECT_EQ(a.meas.resizingTagBits, b.meas.resizingTagBits);
    EXPECT_EQ(a.meas.l1iBytes, b.meas.l1iBytes);
    EXPECT_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.l1dMissRate, b.l1dMissRate);
    EXPECT_EQ(a.l2Accesses, b.l2Accesses);
    EXPECT_EQ(a.l2Misses, b.l2Misses);
    EXPECT_EQ(a.memAccesses, b.memAccesses);
    EXPECT_EQ(a.resizes, b.resizes);
    EXPECT_EQ(a.throttleEvents, b.throttleEvents);
}

TEST(DriAdapter, DetailedRunBitForBitEqualsDirectPath)
{
    const auto &bench = findBenchmark("compress");
    RunConfig cfg;
    cfg.maxInstrs = 200 * 1000;
    DriParams dri;
    dri.sizeBoundBytes = 2048;
    dri.missBound = 200;
    dri.senseInterval = 50 * 1000;

    const RunOutput direct = runDri(bench, cfg, dri);
    PolicyConfig pc;
    pc.kind = PolicyKind::Dri;
    pc.dri = dri;
    const RunOutput adapted = runPolicy(bench, cfg, pc);
    expectSameRun(direct, adapted);
    // The adapter reports DRI's gated sets as plain inactive
    // fraction: no drowsy component, no wake events.
    EXPECT_EQ(adapted.l1DrowsyFraction, 0.0);
    EXPECT_EQ(adapted.wakeTransitions, 0u);
    EXPECT_EQ(adapted.wakeStallCycles, 0u);
}

TEST(DriAdapter, FastRunBitForBitEqualsDirectPath)
{
    const auto &bench = findBenchmark("li");
    RunConfig cfg;
    cfg.maxInstrs = 200 * 1000;
    DriParams dri;
    dri.sizeBoundBytes = 1024;
    dri.missBound = 64;
    dri.senseInterval = 50 * 1000;

    const RunOutput conv = runConventional(bench, cfg);
    const FastCalibration cal = calibrateFast(bench, cfg, conv);
    const RunOutput direct = runDriFast(bench, cfg, dri, cal);
    PolicyConfig pc;
    pc.kind = PolicyKind::Dri;
    pc.dri = dri;
    const RunOutput adapted = runPolicyFast(bench, cfg, pc, cal);
    expectSameRun(direct, adapted);
}

// ---------------------------------------------------------------
// Energy accounting
// ---------------------------------------------------------------

RunMeasurement
convMeas()
{
    RunMeasurement m;
    m.cycles = 1000000;
    m.instructions = 1000000;
    m.l1iAccesses = 800000;
    m.l1iMisses = 5000;
    return m;
}

TEST(PolicyEnergy, ReducesToPaperModelWithZeroGatedResidual)
{
    // With the gated residual zeroed and no drowsy component, the
    // policy accounting must reproduce Section 5.2 exactly — the
    // bridge between the new subsystem and the paper's numbers.
    PolicyEnergyConstants pc = PolicyEnergyConstants::paper();
    pc.gatedLeakFraction = 0.0;

    RunMeasurement conv = convMeas();
    PolicyMeasurement run;
    run.meas = conv;
    run.meas.cycles = 1010000;
    run.meas.l1iMisses = 9000;
    run.meas.avgActiveFraction = 0.4;
    run.meas.resizingTagBits = 6;

    const PolicyEnergy pe = policyEnergy(pc, run, conv);
    const EnergyBreakdown de =
        driEnergy(pc.base, run.meas, conv);
    EXPECT_DOUBLE_EQ(pe.activeLeakageNJ, de.l1LeakageNJ);
    EXPECT_DOUBLE_EQ(pe.extraL1DynamicNJ, de.extraL1DynamicNJ);
    EXPECT_DOUBLE_EQ(pe.extraL2DynamicNJ, de.extraL2DynamicNJ);
    EXPECT_DOUBLE_EQ(pe.effectiveNJ(), de.effectiveNJ());
    EXPECT_DOUBLE_EQ(pe.gatedLeakageNJ, 0.0);
    EXPECT_DOUBLE_EQ(pe.drowsyLeakageNJ, 0.0);
    EXPECT_DOUBLE_EQ(pe.wakeTransitionNJ, 0.0);
}

TEST(PolicyEnergy, SplitsStatePreservingFromStateDestroying)
{
    const PolicyEnergyConstants pc = PolicyEnergyConstants::paper();
    RunMeasurement conv = convMeas();

    // A drowsy-style run: 30% active, 70% state-preserving.
    PolicyMeasurement drowsy;
    drowsy.meas = conv;
    drowsy.meas.avgActiveFraction = 0.3;
    drowsy.avgDrowsyFraction = 0.7;
    drowsy.wakeTransitions = 1000;
    const PolicyEnergy de = policyEnergy(pc, drowsy, conv);
    EXPECT_GT(de.drowsyLeakageNJ, 0.0);
    EXPECT_DOUBLE_EQ(de.gatedLeakageNJ, 0.0);
    EXPECT_DOUBLE_EQ(de.wakeTransitionNJ,
                     1000.0 * pc.wakePerTransitionNJ);

    // A decay-style run: same inactive fraction, state-destroying.
    PolicyMeasurement decay;
    decay.meas = conv;
    decay.meas.avgActiveFraction = 0.3;
    const PolicyEnergy ce = policyEnergy(pc, decay, conv);
    EXPECT_GT(ce.gatedLeakageNJ, 0.0);
    EXPECT_DOUBLE_EQ(ce.drowsyLeakageNJ, 0.0);

    // The state-preserving residual costs more standby leakage
    // than gated-Vdd at equal inactive fraction — Bai et al.'s
    // trade (the drowsy run buys back the miss behaviour instead).
    EXPECT_GT(de.drowsyLeakageNJ, ce.gatedLeakageNJ);

    // The rows expose the split, in fixed order.
    const auto rows = de.rows();
    ASSERT_EQ(rows.size(), 6u);
    EXPECT_EQ(rows[1].first, "leak-gated");
    EXPECT_EQ(rows[2].first, "leak-drowsy");
    double sum = 0.0;
    for (const auto &[label, nj] : rows)
        sum += nj;
    EXPECT_DOUBLE_EQ(sum, de.effectiveNJ());
}

TEST(PolicyEnergy, DerivedConstantsMatchCircuitFigures)
{
    const circuit::Technology tech = circuit::Technology::scaled018();
    const PolicyEnergyConstants c = PolicyEnergyConstants::derived(
        tech, circuit::CacheGeometry{},
        circuit::CacheGeometry{1024 * 1024, 4, 64, 4096});
    // Gated-Vdd residual: Table 2's preferred scheme saves ~97%.
    EXPECT_NEAR(c.gatedLeakFraction, 0.03, 0.02);
    // Drowsy residual: the ~6x reduction regime.
    EXPECT_GT(c.drowsyLeakFraction, 0.08);
    EXPECT_LT(c.drowsyLeakFraction, 0.30);
    // Waking one 32-byte line costs far less than one L2 access.
    EXPECT_GT(c.wakePerTransitionNJ, 0.0);
    EXPECT_LT(c.wakePerTransitionNJ, c.base.l2PerAccessNJ);
}

TEST(DrowsyCellCircuit, StatePreservingFiguresAreSane)
{
    const circuit::Technology tech = circuit::Technology::scaled018();
    const circuit::SramCell cell(tech, tech.vtLow);
    const circuit::DrowsyCell drowsy(tech, cell,
                                     circuit::DrowsyCellConfig{});
    // Leakage falls substantially but nowhere near gated-Vdd's 97%.
    EXPECT_GT(drowsy.leakageSavingsFraction(), 0.5);
    EXPECT_LT(drowsy.leakageSavingsFraction(), 0.97);
    // Standby leaks less than active, more than zero.
    EXPECT_GT(drowsy.standbyLeakagePerCycle(),0.0);
    EXPECT_LT(drowsy.standbyLeakagePerCycle(),
              cell.activeLeakagePerCycle());
    // A deeper retention rail leaks less.
    circuit::DrowsyCellConfig deep;
    deep.standbyVddV = 0.2;
    const circuit::DrowsyCell deeper(tech, cell, deep);
    EXPECT_LT(deeper.standbyLeakageCurrentPerCell(),
              drowsy.standbyLeakageCurrentPerCell());
    // Wake energy scales with the line length.
    EXPECT_GT(drowsy.wakeEnergyPerLineNJ(512),
              drowsy.wakeEnergyPerLineNJ(256));
}

// ---------------------------------------------------------------
// CMP per-core policies
// ---------------------------------------------------------------

TEST(CmpPolicy, PerCoreTechniquesRunSideBySide)
{
    RunConfig cfg;
    cfg.maxInstrs = 150 * 1000;

    CmpConfig cmp;
    cmp.cores = 2;
    CmpCoreConfig c0;
    c0.bench = "compress";
    c0.dri = true;
    c0.policyKind = PolicyKind::Decay;
    c0.decay.decayInterval = 25 * 1000;
    CmpCoreConfig c1;
    c1.bench = "li";
    c1.dri = true;
    c1.policyKind = PolicyKind::Drowsy;
    c1.drowsy.drowsyInterval = 25 * 1000;
    cmp.coreConfigs = {c0, c1};

    const CmpRunOutput out = runCmp(cfg, cmp, "compress");
    ASSERT_EQ(out.cores.size(), 2u);

    // Decay core: state-destroying — inactive fraction, no drowsy.
    EXPECT_LT(out.cores[0].meas.avgActiveFraction, 1.0);
    EXPECT_EQ(out.cores[0].l1DrowsyFraction, 0.0);
    // Drowsy core: state-preserving fraction + wake stalls.
    EXPECT_GT(out.cores[1].l1DrowsyFraction, 0.0);
    EXPECT_GT(out.cores[1].wakeTransitions, 0u);
    EXPECT_GT(out.cores[1].wakeStallCycles, 0u);

    // The energy view carries the per-core split and still sums
    // exactly (HierarchyEnergy's rows-define-totals contract).
    const CmpConfig convCmp = [&] {
        CmpConfig c = cmp;
        for (CmpCoreConfig &cc : c.coreConfigs)
            cc.dri = false;
        return c;
    }();
    const CmpRunOutput conv = runCmp(cfg, convCmp, "compress");
    const CmpComparison cmpResult = compareCmp(
        MultiLevelConstants::paper(), toCmpMeasurement(conv),
        toCmpMeasurement(out));
    ASSERT_EQ(cmpResult.dri.levels.size(), 4u);
    double leak = 0.0;
    for (const LevelEnergy &l : cmpResult.dri.levels)
        leak += l.leakageNJ;
    EXPECT_EQ(leak, cmpResult.dri.totalLeakageNJ());
    // Both managed L1Is leak less than a fully-active array would
    // (the conventional comparison's l1i rows).
    EXPECT_LT(cmpResult.dri.levels[0].leakageNJ,
              cmpResult.conventional.levels[0].leakageNJ);
    EXPECT_LT(cmpResult.dri.levels[1].leakageNJ,
              cmpResult.conventional.levels[1].leakageNJ);

    // The CMP accounting charges the same standby residuals as the
    // single-core policyEnergy(): the decay core's gated fraction
    // carries the Table 2 residual on top of its active share, and
    // the drowsy core's standby fraction its drowsy residual.
    const MultiLevelConstants mc = MultiLevelConstants::paper();
    const CmpMeasurement meas = toCmpMeasurement(out);
    const double cycles = static_cast<double>(meas.cycles);
    for (std::size_t k = 0; k < 2; ++k) {
        const CmpCoreMeasurement &c = meas.cores[k];
        const double expected =
            (c.l1AvgActiveFraction +
             c.l1DrowsyFraction * mc.drowsyLeakFraction +
             c.l1GatedFraction * mc.gatedLeakFraction) *
            mc.l1.leakPerCycleNJ(c.l1Bytes) * cycles;
        EXPECT_DOUBLE_EQ(cmpResult.dri.levels[k].leakageNJ,
                         expected);
        // active + drowsy + gated partitions the array.
        EXPECT_NEAR(c.l1AvgActiveFraction + c.l1DrowsyFraction +
                        c.l1GatedFraction,
                    1.0, 1e-12);
    }
    // One definition point for the residuals: the CMP constants
    // are the policy constants.
    const PolicyEnergyConstants pec =
        PolicyEnergyConstants::paper();
    EXPECT_EQ(mc.gatedLeakFraction, pec.gatedLeakFraction);
    EXPECT_EQ(mc.drowsyLeakFraction, pec.drowsyLeakFraction);
    EXPECT_EQ(mc.wakePerTransitionNJ, pec.wakePerTransitionNJ);
}

// ---------------------------------------------------------------
// searchPolicies
// ---------------------------------------------------------------

TEST(SearchPolicies, FindsOneWinnerPerKindInOrder)
{
    const auto &bench = findBenchmark("compress");
    RunConfig cfg;
    cfg.maxInstrs = 150 * 1000;
    cfg.hier.l1i.assoc = 4;

    PolicyConfig tmpl;
    tmpl.dri.senseInterval = 50 * 1000;
    PolicySpace space;
    space.driSizeBounds = {4096};
    space.decayIntervals = {50 * 1000};
    space.drowsyIntervals = {50 * 1000};
    space.waysActive = {2};

    const RunOutput conv = runConventional(bench, cfg);
    const PolicySearchResult sr = searchPolicies(
        bench, cfg, tmpl, space, PolicyEnergyConstants::paper(),
        4.0, conv);

    ASSERT_EQ(sr.evaluated.size(), 4u);
    ASSERT_EQ(sr.bestPerKind.size(), 4u);
    EXPECT_EQ(sr.bestPerKind[0].config.kind, PolicyKind::Dri);
    EXPECT_EQ(sr.bestPerKind[1].config.kind, PolicyKind::Decay);
    EXPECT_EQ(sr.bestPerKind[2].config.kind, PolicyKind::Drowsy);
    EXPECT_EQ(sr.bestPerKind[3].config.kind,
              PolicyKind::StaticWays);
    // Four different techniques cannot land on the same
    // energy-delay: the comparison is meaningful.
    for (std::size_t i = 0; i < 4; ++i)
        for (std::size_t j = i + 1; j < 4; ++j)
            EXPECT_NE(
                sr.bestPerKind[i].cmp.relativeEnergyDelay(),
                sr.bestPerKind[j].cmp.relativeEnergyDelay());
}

} // namespace
} // namespace drisim
