/**
 * @file
 * Golden-value regression tests for the paper-reproduction path and
 * the multi-level DRI scenario.
 *
 * These tests lock in the searchBestEnergyDelay winner, the
 * searchMultiLevel winner, and the rendered table rows for two
 * small benchmarks at a fixed run length and grid. Everything in
 * the pipeline is deterministic — the workload generator is seeded
 * from the spec and per-job seeds derive from job keys — so exact
 * integer counts and formatted strings are stable; floating-point
 * golds allow a 1e-9 slack only for cross-toolchain drift. The
 * multi-level suite additionally asserts byte-identical results at
 * --jobs 1 and --jobs 4 and that the per-level energy rows sum to
 * the reported hierarchy total.
 *
 * If a change legitimately alters these numbers (e.g. a model fix),
 * re-baseline deliberately with tools/rebaseline.sh — which
 * regenerates the marked expectation block below from the same run
 * definitions (tests/golden_config.hh) — and say so in the PR.
 */

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "golden_config.hh"

namespace drisim
{
namespace
{

using golden::CmpGoldenCase;
using golden::CoherentCmpGoldenCase;
using golden::GoldenCase;
using golden::MultiLevelGoldenCase;
using golden::PolicyGoldenCase;

class GoldenSearch : public ::testing::TestWithParam<GoldenCase>
{
};

TEST_P(GoldenSearch, WinnerAndRowMatchGolden)
{
    const GoldenCase &gold = GetParam();
    const SearchResult sr = golden::runGoldenSearch(gold.benchmark);

    ASSERT_EQ(sr.evaluated.size(), 6u);
    EXPECT_EQ(sr.best.dri.sizeBoundBytes, gold.sizeBoundBytes);
    EXPECT_EQ(sr.best.dri.missBound, gold.missBound);
    EXPECT_EQ(sr.best.feasible, gold.feasible);

    EXPECT_NEAR(sr.best.cmp.relativeEnergyDelay(),
                gold.relativeEnergyDelay, 1e-9);
    EXPECT_NEAR(sr.best.cmp.slowdownPercent(), gold.slowdownPercent,
                1e-9);
    EXPECT_NEAR(sr.best.cmp.averageSizeFraction(),
                gold.averageSizeFraction, 1e-9);

    EXPECT_EQ(sr.convDetailed.meas.cycles, gold.convCycles);
    EXPECT_EQ(sr.convDetailed.meas.l1iMisses, gold.convMisses);

    EXPECT_EQ(golden::renderGoldenRow(gold.benchmark, sr), gold.row);
}

class MultiLevelGolden
    : public ::testing::TestWithParam<MultiLevelGoldenCase>
{
};

TEST_P(MultiLevelGolden, WinnerRowAndJobsInvarianceMatchGolden)
{
    const MultiLevelGoldenCase &gold = GetParam();
    const MultiLevelSearchResult sr =
        golden::runGoldenMultiSearch(gold.benchmark, 1);

    ASSERT_EQ(sr.evaluated.size(), 6u);
    EXPECT_EQ(sr.best.l1.sizeBoundBytes, gold.l1SizeBound);
    EXPECT_EQ(sr.best.l1.missBound, gold.l1MissBound);
    EXPECT_EQ(sr.best.l2.sizeBoundBytes, gold.l2SizeBound);
    EXPECT_EQ(sr.best.l2.missBound, gold.l2MissBound);
    EXPECT_EQ(sr.best.feasible, gold.feasible);

    EXPECT_NEAR(sr.best.cmp.relativeEnergyDelay(),
                gold.relativeEnergyDelay, 1e-9);
    EXPECT_NEAR(sr.best.cmp.slowdownPercent(), gold.slowdownPercent,
                1e-9);
    EXPECT_NEAR(sr.best.cmp.l1AverageSizeFraction(), gold.l1AvgSize,
                1e-9);
    EXPECT_NEAR(sr.best.cmp.l2AverageSizeFraction(), gold.l2AvgSize,
                1e-9);

    EXPECT_EQ(sr.convDetailed.meas.cycles, gold.convCycles);
    EXPECT_EQ(sr.convDetailed.l2Misses, gold.convL2Misses);

    EXPECT_EQ(golden::renderMultiLevelGoldenRow(gold.benchmark, sr),
              gold.row);

    // Per-level rows must sum to the reported hierarchy totals —
    // exactly, since the totals are defined as the row sums.
    const HierarchyEnergy &h = sr.best.cmp.dri;
    double leak = 0.0, dyn = 0.0, total = 0.0;
    for (const LevelEnergy &l : h.levels) {
        leak += l.leakageNJ;
        dyn += l.dynamicNJ;
        total += l.totalNJ();
    }
    EXPECT_EQ(leak, h.totalLeakageNJ());
    EXPECT_EQ(dyn, h.totalDynamicNJ());
    EXPECT_EQ(total, h.totalNJ());
    EXPECT_EQ(h.levels.size(), 3u); // l1i, l2, mem

    // The determinism contract: a 4-worker pool must produce a
    // byte-identical SearchResult (and hence identical rendered
    // rows) to the serial walk above.
    const MultiLevelSearchResult sr4 =
        golden::runGoldenMultiSearch(gold.benchmark, 4);
    EXPECT_EQ(golden::serializeMultiLevelResult(sr),
              golden::serializeMultiLevelResult(sr4));
    EXPECT_EQ(golden::renderMultiLevelGoldenRow(gold.benchmark, sr4),
              gold.row);
}

class CmpGolden : public ::testing::TestWithParam<CmpGoldenCase>
{
};

TEST_P(CmpGolden, WinnerRowAndJobsInvarianceMatchGolden)
{
    const CmpGoldenCase &gold = GetParam();
    const CmpSearchResult sr = golden::runGoldenCmpSearch(1);

    // 2 L2 bounds x 2^2 per-core factor combinations.
    ASSERT_EQ(sr.evaluated.size(), 8u);
    ASSERT_EQ(sr.best.l1.size(), 2u);
    EXPECT_EQ(sr.best.l1[0].missBound, gold.l1MissBound0);
    EXPECT_EQ(sr.best.l1[1].missBound, gold.l1MissBound1);
    EXPECT_EQ(sr.best.l2.sizeBoundBytes, gold.l2SizeBound);
    EXPECT_EQ(sr.best.l2.missBound, gold.l2MissBound);
    EXPECT_EQ(sr.best.feasible, gold.feasible);

    EXPECT_NEAR(sr.best.cmp.relativeEnergyDelay(),
                gold.relativeEnergyDelay, 1e-9);
    EXPECT_NEAR(sr.best.cmp.slowdownPercent(), gold.slowdownPercent,
                1e-9);
    EXPECT_NEAR(sr.best.cmp.coreAverageSizeFraction(0),
                gold.l1AvgSize0, 1e-9);
    EXPECT_NEAR(sr.best.cmp.coreAverageSizeFraction(1),
                gold.l1AvgSize1, 1e-9);
    EXPECT_NEAR(sr.best.cmp.l2AverageSizeFraction(), gold.l2AvgSize,
                1e-9);

    EXPECT_EQ(sr.convDetailed.systemCycles, gold.convSystemCycles);
    EXPECT_EQ(sr.convDetailed.l2Misses, gold.convL2Misses);
    EXPECT_EQ(sr.convDetailed.l2ContentionEvents,
              gold.convContentionEvents);

    EXPECT_EQ(golden::renderCmpGoldenRow(sr), gold.row);

    // Per-level rows — one l1i[k] per core plus shared l2/mem —
    // must sum to the reported system totals exactly.
    const HierarchyEnergy &h = sr.best.cmp.dri;
    double leak = 0.0, dyn = 0.0, total = 0.0;
    for (const LevelEnergy &l : h.levels) {
        leak += l.leakageNJ;
        dyn += l.dynamicNJ;
        total += l.totalNJ();
    }
    EXPECT_EQ(leak, h.totalLeakageNJ());
    EXPECT_EQ(dyn, h.totalDynamicNJ());
    EXPECT_EQ(total, h.totalNJ());
    ASSERT_EQ(h.levels.size(), 4u); // l1i[0], l1i[1], l2, mem
    EXPECT_EQ(h.levels[0].level, "l1i[0]");
    EXPECT_EQ(h.levels[1].level, "l1i[1]");
    EXPECT_EQ(h.levels[2].level, "l2");
    EXPECT_EQ(h.levels[3].level, "mem");

    // The determinism contract: a 4-worker pool must produce a
    // byte-identical CmpSearchResult (and hence identical rendered
    // rows) to the serial walk above.
    const CmpSearchResult sr4 = golden::runGoldenCmpSearch(4);
    EXPECT_EQ(golden::serializeCmpResult(sr),
              golden::serializeCmpResult(sr4));
    EXPECT_EQ(golden::renderCmpGoldenRow(sr4), gold.row);
}

class CoherentCmpGolden
    : public ::testing::TestWithParam<CoherentCmpGoldenCase>
{
};

TEST_P(CoherentCmpGolden, AttributionEnergyAndReplayMatchGolden)
{
    const CoherentCmpGoldenCase &gold = GetParam();
    const golden::CoherentCmpGoldenRun run =
        golden::runGoldenCoherentCmp();
    const CmpRunOutput &pol = run.pol;
    ASSERT_EQ(pol.cores.size(), 2u);
    const CmpCoreOutput &c0 = pol.cores[0];
    const CmpCoreOutput &c1 = pol.cores[1];

    // Pinned system view of the leakage-managed coherent run.
    EXPECT_EQ(pol.systemCycles, gold.systemCycles);
    EXPECT_EQ(pol.coherenceInvalidations, gold.invalidations);
    EXPECT_EQ(pol.coherenceDowngrades, gold.downgrades);
    EXPECT_EQ(pol.coherenceWritebacks, gold.writebacks);
    EXPECT_EQ(pol.coherenceMsgCycles, gold.msgCycles);
    EXPECT_EQ(pol.directoryEvictions, gold.directoryEvictions);

    // Per-core attribution: pinned, nonzero on both cores, and a
    // partition of the system totals.
    EXPECT_EQ(c0.coherenceInvalidationsReceived, gold.invalRecv0);
    EXPECT_EQ(c1.coherenceInvalidationsReceived, gold.invalRecv1);
    EXPECT_GT(gold.invalRecv0, 0u);
    EXPECT_GT(gold.invalRecv1, 0u);
    EXPECT_EQ(c0.coherenceInvalidationsReceived +
                  c1.coherenceInvalidationsReceived,
              pol.coherenceInvalidations);
    EXPECT_EQ(c0.coherenceInvalidationsCaused +
                  c1.coherenceInvalidationsCaused,
              pol.coherenceInvalidations);
    EXPECT_EQ(c0.coherenceMsgCycles + c1.coherenceMsgCycles,
              pol.coherenceMsgCycles);

    // Policy-visible effects: the drowsy core 0 reports
    // invalidation-induced wakes and refetches; the decay core 1
    // refetches but has no wakeable state.
    EXPECT_EQ(c0.coherenceWakes, gold.wakes0);
    EXPECT_EQ(c0.coherenceRefetches, gold.refetches0);
    EXPECT_EQ(c1.coherenceRefetches, gold.refetches1);
    EXPECT_GT(gold.wakes0, 0u);
    EXPECT_GT(gold.refetches0, 0u);
    EXPECT_GT(gold.refetches1, 0u);
    EXPECT_EQ(c1.coherenceWakes, 0u);

    // Energy plumbing: every probe (invalidation or downgrade) is
    // one L2-tier access charged on the shared l2 row — silencing
    // coherenceMessages must remove exactly that much dynamic nJ.
    const MultiLevelConstants constants =
        MultiLevelConstants::paper();
    const CmpMeasurement conv_m = toCmpMeasurement(run.conv);
    const CmpMeasurement pol_m = toCmpMeasurement(pol);
    EXPECT_EQ(pol_m.coherenceMessages,
              pol.coherenceInvalidations + pol.coherenceDowngrades);
    CmpMeasurement quiet_m = pol_m;
    quiet_m.coherenceMessages = 0;
    const HierarchyEnergy loud =
        cmpEnergy(constants, pol_m, conv_m);
    const HierarchyEnergy quiet =
        cmpEnergy(constants, quiet_m, conv_m);
    ASSERT_EQ(loud.levels.size(), 4u); // l1i[0], l1i[1], l2, mem
    EXPECT_EQ(loud.levels[2].level, "l2");
    EXPECT_NEAR(loud.levels[2].dynamicNJ -
                    quiet.levels[2].dynamicNJ,
                constants.l1.l2PerAccessNJ *
                    static_cast<double>(pol_m.coherenceMessages),
                1e-9);

    // Winner comparison and the rendered bench_cmp --coherent row.
    const CmpComparison cc =
        compareCmp(constants, conv_m, pol_m);
    EXPECT_NEAR(cc.relativeEnergyDelay(), gold.relativeEnergyDelay,
                1e-9);
    EXPECT_EQ(golden::renderCoherentCmpGoldenRow(run), gold.row);

    // The determinism contract: coherent runs racing on four
    // threads must each be byte-identical to the serial run (the
    // TSan leg executes this test via the concurrency label).
    const std::string serial = golden::serializeCoherentCmp(run);
    std::vector<std::string> replays(4);
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < replays.size(); ++t)
        threads.emplace_back([&replays, t] {
            replays[t] = golden::serializeCoherentCmp(
                golden::runGoldenCoherentCmp());
        });
    for (std::thread &th : threads)
        th.join();
    for (const std::string &s : replays)
        EXPECT_EQ(s, serial);
}

class PolicyGolden
    : public ::testing::TestWithParam<PolicyGoldenCase>
{
};

TEST_P(PolicyGolden, PerPolicyRowsAndJobsInvarianceMatchGolden)
{
    const PolicyGoldenCase &gold = GetParam();
    const PolicySearchResult sr =
        golden::runGoldenPolicySearch(gold.benchmark, 1);

    // One cell per policy kind in the golden space.
    ASSERT_EQ(sr.evaluated.size(), 4u);
    ASSERT_EQ(sr.bestPerKind.size(), 4u);

    EXPECT_NEAR(sr.bestPerKind[0].cmp.relativeEnergyDelay(),
                gold.driEd, 1e-9);
    EXPECT_NEAR(sr.bestPerKind[1].cmp.relativeEnergyDelay(),
                gold.decayEd, 1e-9);
    EXPECT_NEAR(sr.bestPerKind[2].cmp.relativeEnergyDelay(),
                gold.drowsyEd, 1e-9);
    EXPECT_NEAR(sr.bestPerKind[3].cmp.relativeEnergyDelay(),
                gold.waysEd, 1e-9);

    EXPECT_EQ(sr.convDetailed.meas.cycles, gold.convCycles);
    EXPECT_EQ(sr.convDetailed.meas.l1iMisses, gold.convMisses);

    EXPECT_EQ(golden::renderPolicyGoldenRow(gold.benchmark, sr, 0),
              gold.driRow);
    EXPECT_EQ(golden::renderPolicyGoldenRow(gold.benchmark, sr, 1),
              gold.decayRow);
    EXPECT_EQ(golden::renderPolicyGoldenRow(gold.benchmark, sr, 2),
              gold.drowsyRow);
    EXPECT_EQ(golden::renderPolicyGoldenRow(gold.benchmark, sr, 3),
              gold.waysRow);

    // The head-to-head is meaningful: four techniques, four
    // distinct energy-delay values.
    const double eds[4] = {gold.driEd, gold.decayEd,
                           gold.drowsyEd, gold.waysEd};
    for (int i = 0; i < 4; ++i)
        for (int j = i + 1; j < 4; ++j)
            EXPECT_NE(eds[i], eds[j]);

    // The determinism contract: a 4-worker pool must produce a
    // byte-identical PolicySearchResult to the serial walk.
    const PolicySearchResult sr4 =
        golden::runGoldenPolicySearch(gold.benchmark, 4);
    EXPECT_EQ(golden::serializePolicyResult(sr),
              golden::serializePolicyResult(sr4));
}

// GOLDEN-BASELINE-BEGIN (tools/rebaseline.sh regenerates this block)
INSTANTIATE_TEST_SUITE_P(
    PaperPath, GoldenSearch,
    ::testing::Values(
        GoldenCase{"compress", 4096, 2312, true,
                   0.304218293145288, 0, 0.301705092747997,
                   274076, 578,
                   "compress,4K,2312,0.304,0.302,0.00%"},
        GoldenCase{"li", 4096, 2236, true,
                   0.389214444022277, 0, 0.385553343060236,
                   192593, 559,
                   "li,4K,2236,0.389,0.386,0.00%"}),
    [](const ::testing::TestParamInfo<GoldenCase> &info) {
        return std::string(info.param.benchmark);
    });

INSTANTIATE_TEST_SUITE_P(
    MultiLevelPath, MultiLevelGolden,
    ::testing::Values(
        MultiLevelGoldenCase{"compress", 4096, 2312, 1048576, 4902, true,
                             0.959071664302664, 0,
                             0.301705092747997, 1,
                             274076, 4902,
                             "compress,4K,2312,1M,4902,0.959,0.302,1.000,0.00%"},
        MultiLevelGoldenCase{"li", 4096, 2236, 65536, 1820, true,
                             0.394640799074606, 1.12205531872913,
                             0.381968727214845, 0.381968727214845,
                             192593, 1820,
                             "li,4K,2236,64K,1820,0.395,0.382,0.382,1.12%"}),
    [](const ::testing::TestParamInfo<MultiLevelGoldenCase> &info) {
        return std::string(info.param.benchmark);
    });

INSTANTIATE_TEST_SUITE_P(
    CmpPath, CmpGolden,
    ::testing::Values(
        CmpGoldenCase{"compress+li", 192, 2981, 1048576, 3220, true,
                      0.933663763499536, 0.00347335287094186,
                      0.463711506818389, 0.332395991260144, 1,
                      230325, 4831, 126,
                      "compress+li,192/2981,1M,3220,0.934,0.464/0.332,1.000,0.00%"}),
    [](const ::testing::TestParamInfo<CmpGoldenCase> &) {
        return std::string("compress_li");
    });

INSTANTIATE_TEST_SUITE_P(
    CoherentCmpPath, CoherentCmpGolden,
    ::testing::Values(
        CoherentCmpGoldenCase{"shared_image+shared_image", 206322,
                              44124, 113, 18860, 133755, 43914,
                              22190, 21934,
                              95, 2315, 2317,
                              0.981542905589987,
                              "shared_image+shared_image,206322,44124,113,18860,133755,43914,95,4632,0.982"}),
    [](const ::testing::TestParamInfo<CoherentCmpGoldenCase> &) {
        return std::string("shared_image_x2");
    });

INSTANTIATE_TEST_SUITE_P(
    PolicyPath, PolicyGolden,
    ::testing::Values(
        PolicyGoldenCase{"compress",
                         0.340439575230682, 0.467471394248217,
                         0.344640583316577, 0.2725,
                         274076, 578,
                         "compress,dri,sb=4K/mb=2312,0.340,0.302,0.000,0,1.53%",
                         "compress,decay,interval=50000/limit=3,0.467,0.451,0.000,92,0.00%",
                         "compress,drowsy,interval=50000/wake=1,0.345,0.223,0.777,1363,0.22%",
                         "compress,ways,active=1/4,0.272,0.250,0.000,0,0.00%"},
        PolicyGoldenCase{"li",
                         0.422037355938535, 0.572133137007289,
                         0.390865524325395, 0.2725,
                         192593, 559,
                         "li,dri,sb=4K/mb=2236,0.422,0.383,0.000,0,1.45%",
                         "li,decay,interval=50000/limit=3,0.572,0.559,0.000,69,0.00%",
                         "li,drowsy,interval=50000/wake=1,0.391,0.277,0.723,1202,0.28%",
                         "li,ways,active=1/4,0.273,0.250,0.000,0,0.00%"}),
    [](const ::testing::TestParamInfo<PolicyGoldenCase> &info) {
        return std::string(info.param.benchmark);
    });
// GOLDEN-BASELINE-END

} // namespace
} // namespace drisim
