/**
 * @file
 * Golden-value regression tests for the paper-reproduction path.
 *
 * The executor refactor (and any future PR) must not silently shift
 * reproduced numbers: these tests lock in the searchBestEnergyDelay
 * winner and the rendered table row for two small benchmarks at a
 * fixed run length and grid. Everything in the pipeline is
 * deterministic — the workload generator is seeded from the spec and
 * per-job seeds derive from job keys — so exact integer counts and
 * formatted strings are stable; floating-point golds allow a 1e-9
 * slack only for cross-toolchain drift.
 *
 * If a change legitimately alters these numbers (e.g. a model fix),
 * re-baseline deliberately and say so in the PR.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "harness/runner.hh"
#include "harness/sweep.hh"
#include "harness/table.hh"
#include "util/str.hh"

namespace drisim
{
namespace
{

struct GoldenCase
{
    const char *benchmark;
    // Winner identity.
    std::uint64_t sizeBoundBytes;
    std::uint64_t missBound;
    bool feasible;
    // Winner detailed comparison.
    double relativeEnergyDelay;
    double slowdownPercent;
    double averageSizeFraction;
    // Detailed conventional baseline.
    std::uint64_t convCycles;
    std::uint64_t convMisses;
    // Rendered figure-3-style table row.
    const char *row;
};

SearchResult
runSearch(const std::string &name)
{
    const auto &b = findBenchmark(name);
    RunConfig cfg;
    cfg.maxInstrs = 400 * 1000;
    const RunOutput conv = runConventional(b, cfg);

    SearchSpace space;
    space.sizeBounds = {1024, 4096, 65536};
    space.missBoundFactors = {2.0, 32.0};
    DriParams tmpl;
    tmpl.senseInterval = 50000;
    return searchBestEnergyDelay(b, cfg, tmpl, space,
                                 EnergyConstants::paper(), 4.0, conv);
}

/** The cells bench_figure3 prints for a winner. */
std::string
renderRow(const std::string &name, const SearchResult &sr)
{
    Table t({"benchmark", "size-bound", "miss-bound", "rel-ED",
             "avg-size", "slowdown"});
    const SearchCandidate &c = sr.best;
    t.addRow({name, bytesToString(c.dri.sizeBoundBytes),
              std::to_string(c.dri.missBound),
              fmtDouble(c.cmp.relativeEnergyDelay(), 3),
              fmtDouble(c.cmp.averageSizeFraction(), 3),
              fmtDouble(c.cmp.slowdownPercent(), 2) + "%"});
    std::ostringstream os;
    t.printCsv(os);
    // Second CSV line is the row itself.
    const std::string out = os.str();
    const std::size_t nl = out.find('\n');
    return out.substr(nl + 1, out.find('\n', nl + 1) - nl - 1);
}

class GoldenSearch : public ::testing::TestWithParam<GoldenCase>
{
};

TEST_P(GoldenSearch, WinnerAndRowMatchGolden)
{
    const GoldenCase &gold = GetParam();
    const SearchResult sr = runSearch(gold.benchmark);

    ASSERT_EQ(sr.evaluated.size(), 6u);
    EXPECT_EQ(sr.best.dri.sizeBoundBytes, gold.sizeBoundBytes);
    EXPECT_EQ(sr.best.dri.missBound, gold.missBound);
    EXPECT_EQ(sr.best.feasible, gold.feasible);

    EXPECT_NEAR(sr.best.cmp.relativeEnergyDelay(),
                gold.relativeEnergyDelay, 1e-9);
    EXPECT_NEAR(sr.best.cmp.slowdownPercent(), gold.slowdownPercent,
                1e-9);
    EXPECT_NEAR(sr.best.cmp.averageSizeFraction(),
                gold.averageSizeFraction, 1e-9);

    EXPECT_EQ(sr.convDetailed.meas.cycles, gold.convCycles);
    EXPECT_EQ(sr.convDetailed.meas.l1iMisses, gold.convMisses);

    EXPECT_EQ(renderRow(gold.benchmark, sr), gold.row);
}

INSTANTIATE_TEST_SUITE_P(
    PaperPath, GoldenSearch,
    ::testing::Values(
        GoldenCase{"compress", 4096, 2312, true,
                   0.304218293145288, 0.0, 0.301705092747997,
                   274076, 578,
                   "compress,4K,2312,0.304,0.302,0.00%"},
        GoldenCase{"li", 4096, 2236, true,
                   0.389214444022277, 0.0, 0.385553343060236,
                   192593, 559,
                   "li,4K,2236,0.389,0.386,0.00%"}),
    [](const ::testing::TestParamInfo<GoldenCase> &info) {
        return std::string(info.param.benchmark);
    });

} // namespace
} // namespace drisim
