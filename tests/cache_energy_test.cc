/**
 * @file
 * CACTI-lite tests: the three Section 5.2 constants must fall out
 * of the geometry model.
 */

#include <gtest/gtest.h>

#include "circuit/cache_energy.hh"

namespace drisim::circuit
{
namespace
{

const Technology tech = Technology::scaled018();

TEST(CacheEnergy, Conventional64KLeakageIs091nJ)
{
    const CacheEnergyModel m(tech, l1Geometry());
    // Section 5.2: 0.91 nJ per cycle for the 64 KB i-cache.
    EXPECT_NEAR(m.fullLeakagePerCycleNJ(), 0.91, 0.02);
}

TEST(CacheEnergy, LeakageScalesWithActiveBytes)
{
    const CacheEnergyModel m(tech, l1Geometry());
    const double full = m.leakagePerCycleNJ(64 * 1024, tech.vtLow);
    const double half = m.leakagePerCycleNJ(32 * 1024, tech.vtLow);
    EXPECT_NEAR(half, full / 2.0, 1e-9);
}

TEST(CacheEnergy, LeakageCollapsesAtHighVt)
{
    const CacheEnergyModel m(tech, l1Geometry());
    const double lo = m.leakagePerCycleNJ(64 * 1024, tech.vtLow);
    const double hi = m.leakagePerCycleNJ(64 * 1024, tech.vtHigh);
    EXPECT_NEAR(lo / hi, 34.8, 2.0);
}

TEST(CacheEnergy, ResizingBitlineNear0022nJ)
{
    const CacheEnergyModel m(tech, l1Geometry());
    // Section 5.2: 0.0022 nJ per resizing bitline per access.
    // Our geometry model lands ~8% high (see EXPERIMENTS.md).
    EXPECT_NEAR(m.bitlineEnergyNJ(), 0.0022, 0.0003);
}

TEST(CacheEnergy, L2AccessNear36nJ)
{
    const CacheEnergyModel m(tech, l2Geometry());
    // Section 5.2: 3.6 nJ per L2 access.
    EXPECT_NEAR(m.accessEnergyNJ(), 3.6, 0.2);
}

TEST(CacheEnergy, L1AccessCheaperThanL2)
{
    const CacheEnergyModel l1(tech, l1Geometry());
    const CacheEnergyModel l2(tech, l2Geometry());
    EXPECT_LT(l1.accessEnergyNJ(), l2.accessEnergyNJ() / 3.0);
}

TEST(CacheEnergy, GeometryDerivedSets)
{
    EXPECT_EQ(l1Geometry().numSets(), 2048u);
    EXPECT_EQ(l2Geometry().numSets(), 4096u);
    EXPECT_EQ(l2Geometry().rowsPerSubarray(), 1024u);
}

TEST(CacheEnergy, AccessEnergyGrowsWithSize)
{
    CacheGeometry small = l2Geometry();
    small.sizeBytes = 256 * 1024;
    const CacheEnergyModel ms(tech, small);
    const CacheEnergyModel ml(tech, l2Geometry());
    EXPECT_LT(ms.accessEnergyNJ(), ml.accessEnergyNJ());
}

} // namespace
} // namespace drisim::circuit
