/**
 * @file
 * Fast fetch-driven model tests: the cycle estimate formula and the
 * exactness of its cache behaviour.
 */

#include <gtest/gtest.h>

#include "cpu/simple_core.hh"
#include "mem/cache.hh"
#include "mem/memory.hh"

namespace drisim
{
namespace
{

class SeqStream : public InstrStream
{
  public:
    SeqStream(Addr base, InstCount n) : pc_(base), left_(n) {}

    bool
    next(Instr &out) override
    {
        if (left_ == 0)
            return false;
        --left_;
        out = Instr{};
        out.pc = pc_;
        out.op = OpClass::IntAlu;
        out.nextPc = pc_ + kInstrBytes;
        pc_ += kInstrBytes;
        return true;
    }

  private:
    Addr pc_;
    InstCount left_;
};

TEST(SimpleCore, CycleFormula)
{
    stats::StatGroup root("t");
    MainMemory mem(32, &root);
    Cache icache(CacheParams{"ic", 1024, 1, 32, 1, ReplPolicy::LRU},
                 &mem, &root);
    SimpleCoreParams p;
    p.baseCpi = 0.5;
    p.missOverlap = 0.8;
    SimpleCore core(p, &icache);

    // 1024 sequential instructions sweep 128 blocks; the 1 KB cache
    // holds 32, so every block misses (cold + capacity on wrap).
    SeqStream s(0x0, 1024);
    auto r = core.run(s, 1u << 30);
    EXPECT_EQ(r.instructions, 1024u);
    const double expect = 0.5 * 1024.0 +
                          0.8 * static_cast<double>(
                                    core.missStallCycles());
    EXPECT_NEAR(static_cast<double>(r.cycles), expect, 1.0);
    EXPECT_EQ(icache.misses(), 128u);
    // Each miss stalls (1 + 12/L2miss...) here: L2-less chain to
    // memory: 80 + 16 = 96 + 1 - 1 hit cycle.
    EXPECT_EQ(core.missStallCycles(), 128u * (80 + 16));
}

TEST(SimpleCore, OneAccessPerBlockNotPerInstr)
{
    stats::StatGroup root("t");
    Cache icache(
        CacheParams{"ic", 64 * 1024, 1, 32, 1, ReplPolicy::LRU},
        nullptr, &root);
    SimpleCore core(SimpleCoreParams{}, &icache);
    SeqStream s(0x0, 800);
    core.run(s, 1u << 30);
    // 800 instructions = 100 blocks = 100 cache accesses.
    EXPECT_EQ(icache.accesses(), 100u);
}

TEST(SimpleCore, TakenBranchForcesNewBlockAccess)
{
    stats::StatGroup root("t");
    Cache icache(
        CacheParams{"ic", 64 * 1024, 1, 32, 1, ReplPolicy::LRU},
        nullptr, &root);
    SimpleCore core(SimpleCoreParams{}, &icache);

    // Two instructions in the SAME block, joined by a taken jump:
    // the refetch after the jump recharges the block access.
    class JumpStream : public InstrStream
    {
      public:
        bool
        next(Instr &out) override
        {
            if (n_ >= 100)
                return false;
            out = Instr{};
            out.pc = 0x1000 + (n_ % 2) * 4;
            out.op = OpClass::Jump;
            out.taken = true;
            out.nextPc = 0x1000 + ((n_ + 1) % 2) * 4;
            ++n_;
            return true;
        }

      private:
        int n_ = 0;
    } s;
    core.run(s, 1u << 30);
    EXPECT_EQ(icache.accesses(), 100u);
}

TEST(SimpleCore, RespectsMaxInstrs)
{
    stats::StatGroup root("t");
    Cache icache(
        CacheParams{"ic", 64 * 1024, 1, 32, 1, ReplPolicy::LRU},
        nullptr, &root);
    SimpleCore core(SimpleCoreParams{}, &icache);
    SeqStream s(0x0, 1000000);
    auto r = core.run(s, 2500);
    EXPECT_EQ(r.instructions, 2500u);
}

} // namespace
} // namespace drisim
