/**
 * @file
 * Multi-level DRI scenario tests: the unified ResizableCache used
 * as an L2, the DRI-L2 hierarchy wiring, per-level energy
 * accounting invariants, and the (L1 x L2) search's determinism.
 */

#include <gtest/gtest.h>

#include "harness/multilevel.hh"
#include "harness/runner.hh"
#include "mem/hierarchy.hh"
#include "stats/stats.hh"
#include "util/logging.hh"

namespace drisim
{
namespace
{

DriParams
smallL2Params()
{
    DriParams p;
    p.sizeBytes = 64 * 1024;
    p.assoc = 4;
    p.blockBytes = 64;
    p.hitLatency = 12;
    p.sizeBoundBytes = 8 * 1024;
    p.missBound = 10;
    p.senseInterval = 1000;
    return p;
}

// --- ResizableCache as a unified (L2-style) cache ---------------------

TEST(ResizableL2, ServesAllAccessTypes)
{
    stats::StatGroup root("t");
    ResizableCache l2(smallL2Params(), ResizePolicy::writeback(),
                      nullptr, &root, "dri_l2");
    EXPECT_FALSE(l2.access(0x1000, AccessType::InstFetch).hit);
    EXPECT_TRUE(l2.access(0x1000, AccessType::Load).hit);
    EXPECT_TRUE(l2.access(0x1000, AccessType::Store).hit);
    EXPECT_EQ(l2.accesses(), 3u);
    EXPECT_EQ(l2.misses(), 1u);
}

TEST(ResizableL2, DowncastWritesBackDirtyBlocks)
{
    stats::StatGroup root("t");
    MainMemory mem(64, &root);
    DriParams p = smallL2Params();
    p.missBound = 1000000; // always downsize
    ResizableCache l2(p, ResizePolicy::writeback(), &mem, &root,
                      "dri_l2");

    // Dirty a block in a set that the first downsize will gate off.
    const std::uint64_t sets = l2.currentSets();
    const Addr high_set_addr = (sets - 1) * 64;
    l2.access(high_set_addr, AccessType::Store);
    const std::uint64_t mem_before = mem.accesses();

    l2.retireInstructions(p.senseInterval);
    ASSERT_LT(l2.currentSets(), sets);
    EXPECT_EQ(l2.resizeWritebacks(), 1u);
    // The writeback reached the level below before the rail
    // dropped.
    EXPECT_EQ(mem.accesses(), mem_before + 1);
    EXPECT_TRUE(l2.mappingConsistent());
}

TEST(ResizableL2, UpsizeRemapsInsteadOfAliasing)
{
    stats::StatGroup root("t");
    DriParams p = smallL2Params();
    ResizableCache l2(p, ResizePolicy::writeback(), nullptr, &root,
                      "dri_l2");

    // Shrink, fill a low set with a block whose full-mask index is
    // higher, then grow: the block must be remapped out, never
    // left as a stale alias.
    p.missBound = 1000000;
    ResizableCache shrunk(p, ResizePolicy::writeback(), nullptr,
                          &root, "dri_l2b");
    shrunk.retireInstructions(p.senseInterval);
    const std::uint64_t small_sets = shrunk.currentSets();
    ASSERT_LT(small_sets, shrunk.sizeMask().maxSets());

    // Block that maps to set 0 at the small size but not at full.
    const Addr aliasing = small_sets * 64;
    shrunk.access(aliasing, AccessType::Store);
    ASSERT_TRUE(shrunk.mappingConsistent());

    // Force upsizes until full size.
    for (int i = 0; i < 20; ++i) {
        shrunk.access(i * 64 * 1024 + 32 * 64, AccessType::Load);
        shrunk.access((i + 100) * 64 * 1024, AccessType::Load);
        shrunk.retireInstructions(100);
        EXPECT_TRUE(shrunk.mappingConsistent())
            << "stale alias after resize step " << i;
    }
}

// --- hierarchy wiring -------------------------------------------------

TEST(DriL2Hierarchy, BuildsResizableL2)
{
    HierarchyParams hp;
    hp.l2Dri = true;
    stats::StatGroup root("t");
    Hierarchy h(hp, &root, true);
    ASSERT_NE(h.driL2(), nullptr);
    EXPECT_EQ(h.convL2(), nullptr);
    EXPECT_EQ(h.l2Level(), h.driL2());

    // Geometry follows the conventional L2 description.
    const DriParams &p = h.driL2()->params();
    EXPECT_EQ(p.sizeBytes, hp.l2.sizeBytes);
    EXPECT_EQ(p.assoc, hp.l2.assoc);
    EXPECT_EQ(p.blockBytes, hp.l2.blockBytes);
    EXPECT_EQ(p.hitLatency, hp.l2.hitLatency);

    // The L1s miss into the DRI L2.
    h.l1i()->access(0x4000, AccessType::InstFetch);
    h.l1d().access(0x8000, AccessType::Load);
    EXPECT_EQ(h.l2Accesses(), 2u);
    EXPECT_EQ(h.l2Misses(), 2u);
    EXPECT_EQ(h.mem().accesses(), 2u);
}

TEST(DriL2Hierarchy, DriParamsForLevelClampsBounds)
{
    CacheParams l2{"l2", 256 * 1024, 4, 64, 12, ReplPolicy::LRU};
    DriParams knobs;
    knobs.sizeBoundBytes = 1024 * 1024; // above the level size
    DriParams p = driParamsForLevel(l2, knobs);
    EXPECT_EQ(p.sizeBytes, 256u * 1024);
    EXPECT_EQ(p.sizeBoundBytes, 256u * 1024);

    knobs.sizeBoundBytes = 64; // below one set (64 B x 4 ways)
    p = driParamsForLevel(l2, knobs);
    EXPECT_EQ(p.sizeBoundBytes, 64u * 4);
    p.validate(); // must be a legal combination
}

TEST(DriL2Hierarchy, DetailedRunResizesTheL2)
{
    const auto &b = findBenchmark("li");
    RunConfig cfg;
    cfg.maxInstrs = 200 * 1000;
    cfg.hier.l2Dri = true;
    cfg.hier.l2DriParams.senseInterval = 20 * 1000;
    cfg.hier.l2DriParams.missBound = 1000000; // force downsizing
    cfg.hier.l2DriParams.sizeBoundBytes = 64 * 1024;

    DriParams l1;
    l1.senseInterval = 20 * 1000;
    const RunOutput out = runDri(b, cfg, l1);
    EXPECT_GT(out.l2Resizes, 0u) << "core never drove the L2";
    EXPECT_LT(out.l2AvgActiveFraction, 1.0);
    EXPECT_EQ(out.l2SizeBytes, cfg.hier.l2.sizeBytes);
    EXPECT_EQ(out.l2ResizingTagBits, 4u); // 1M -> 64K bound
}

TEST(DriL2Hierarchy, ConventionalRunLeavesL2Fixed)
{
    const auto &b = findBenchmark("li");
    RunConfig cfg;
    cfg.maxInstrs = 100 * 1000;
    const RunOutput out = runConventional(b, cfg);
    EXPECT_EQ(out.l2Resizes, 0u);
    EXPECT_DOUBLE_EQ(out.l2AvgActiveFraction, 1.0);
    EXPECT_EQ(out.l2ResizingTagBits, 0u);
    EXPECT_GT(out.l2Misses, 0u);
    EXPECT_EQ(out.memAccesses, out.l2Misses);
}

// --- per-level energy accounting --------------------------------------

TEST(MultiLevelEnergy, RowsSumToHierarchyTotal)
{
    MultiLevelConstants c = MultiLevelConstants::paper();
    MultiLevelMeasurement conv;
    conv.cycles = 1000000;
    conv.l1Accesses = 800000;
    conv.l1Misses = 5000;
    conv.l2Accesses = 9000;
    conv.l2Misses = 700;
    conv.memAccesses = 700;

    MultiLevelMeasurement dri = conv;
    dri.cycles = 1020000;
    dri.l1AvgActiveFraction = 0.4;
    dri.l1ResizingTagBits = 6;
    dri.l1Misses = 9000;
    dri.l2Accesses = 13000;
    dri.l2AvgActiveFraction = 0.5;
    dri.l2ResizingTagBits = 4;
    dri.memAccesses = 1500;

    const HierarchyEnergy h = multiLevelEnergy(c, dri, conv);
    ASSERT_EQ(h.levels.size(), 3u);
    EXPECT_EQ(h.levels[0].level, "l1i");
    EXPECT_EQ(h.levels[1].level, "l2");
    EXPECT_EQ(h.levels[2].level, "mem");

    double leak = 0.0, dyn = 0.0;
    for (const LevelEnergy &l : h.levels) {
        leak += l.leakageNJ;
        dyn += l.dynamicNJ;
    }
    EXPECT_EQ(h.totalLeakageNJ(), leak);
    EXPECT_EQ(h.totalDynamicNJ(), dyn);
    EXPECT_EQ(h.totalNJ(), leak + dyn);

    // Level rows carry the expected physics.
    EXPECT_DOUBLE_EQ(h.levels[0].leakageNJ,
                     0.4 * c.l1.leakPerCycleNJ(conv.l1Bytes) *
                         1020000.0);
    EXPECT_DOUBLE_EQ(h.levels[1].leakageNJ,
                     0.5 * c.l2LeakPerCycleFor(conv.l2Bytes) *
                         1020000.0);
    // Extra traffic: 4000 L2 accesses, 800 memory accesses.
    EXPECT_DOUBLE_EQ(h.levels[2].dynamicNJ,
                     c.memPerAccessNJ * 800.0);
    EXPECT_EQ(h.levels[2].leakageNJ, 0.0);
}

TEST(MultiLevelEnergy, ConventionalBaselineHasNoDynamicOverhead)
{
    MultiLevelConstants c = MultiLevelConstants::paper();
    MultiLevelMeasurement conv;
    conv.cycles = 500000;
    conv.l1Accesses = 400000;
    conv.l2Accesses = 4000;
    conv.memAccesses = 300;
    const HierarchyEnergy h = multiLevelEnergy(c, conv, conv);
    EXPECT_EQ(h.totalDynamicNJ(), 0.0);
    EXPECT_GT(h.totalLeakageNJ(), 0.0);
    // The L2 dominates the conventional hierarchy's leakage (the
    // Bai et al. observation motivating the scenario).
    EXPECT_GT(h.level("l2")->leakageNJ,
              10.0 * h.level("l1i")->leakageNJ);
}

TEST(MultiLevelEnergy, ExtraTrafficClampsAtZero)
{
    // A DRI run with *less* downstream traffic than baseline must
    // not produce negative dynamic energy.
    MultiLevelConstants c = MultiLevelConstants::paper();
    MultiLevelMeasurement conv;
    conv.cycles = 1000;
    conv.l2Accesses = 500;
    conv.memAccesses = 100;
    MultiLevelMeasurement dri = conv;
    dri.l2Accesses = 400;
    dri.memAccesses = 50;
    const HierarchyEnergy h = multiLevelEnergy(c, dri, conv);
    EXPECT_GE(h.level("l2")->dynamicNJ, 0.0);
    EXPECT_EQ(h.level("mem")->dynamicNJ, 0.0);
}

TEST(MultiLevelEnergy, DerivedConstantsMatchCircuitSubstrate)
{
    const auto levels = circuit::defaultHierarchyCircuit();
    ASSERT_EQ(levels.size(), 2u);
    const MultiLevelConstants c =
        MultiLevelConstants::derived(levels[0], levels[1]);
    // The derived L1 figures are the paper's constants (the circuit
    // substrate is calibrated to them); the L2 leakage then scales
    // with the 16x larger array.
    EXPECT_NEAR(c.l1.l1LeakPerCycleNJ, 0.91, 0.05);
    EXPECT_NEAR(c.l2LeakPerCycleNJ / c.l1.l1LeakPerCycleNJ, 16.0,
                0.1);
    EXPECT_GT(c.l2BitlinePerAccessNJ, 0.0);
    EXPECT_NEAR(c.l1.l2PerAccessNJ, 3.6, 0.2);
}

// --- the search itself ------------------------------------------------

TEST(MultiLevelSearch, DeterministicAcrossWorkerCounts)
{
    const auto &b = findBenchmark("compress");
    RunConfig cfg;
    cfg.maxInstrs = 100 * 1000;

    MultiLevelSpace space;
    space.l1SizeBounds = {1024, 65536};
    space.l2SizeBounds = {64 * 1024, 1024 * 1024};
    DriParams l1Tmpl;
    l1Tmpl.senseInterval = 20 * 1000;
    DriParams l2Tmpl = HierarchyParams::defaultL2DriParams();
    l2Tmpl.senseInterval = 20 * 1000;
    const MultiLevelConstants constants =
        MultiLevelConstants::paper();

    const RunOutput conv = runConventional(b, cfg);

    auto run = [&](unsigned jobs) {
        RunConfig c2 = cfg;
        c2.jobs = jobs;
        return searchMultiLevel(b, c2, l1Tmpl, l2Tmpl, space,
                                constants, 4.0, conv);
    };
    const MultiLevelSearchResult serial = run(1);
    const MultiLevelSearchResult parallel = run(4);

    ASSERT_EQ(serial.evaluated.size(), 4u);
    ASSERT_EQ(parallel.evaluated.size(), 4u);
    for (std::size_t i = 0; i < serial.evaluated.size(); ++i) {
        const MultiLevelCandidate &a = serial.evaluated[i];
        const MultiLevelCandidate &c = parallel.evaluated[i];
        EXPECT_EQ(a.l1.sizeBoundBytes, c.l1.sizeBoundBytes);
        EXPECT_EQ(a.l2.sizeBoundBytes, c.l2.sizeBoundBytes);
        EXPECT_EQ(a.cmp.relativeEnergyDelay(),
                  c.cmp.relativeEnergyDelay());
        EXPECT_EQ(a.cmp.slowdownPercent(), c.cmp.slowdownPercent());
        EXPECT_EQ(a.feasible, c.feasible);
    }
    EXPECT_EQ(serial.best.l1.sizeBoundBytes,
              parallel.best.l1.sizeBoundBytes);
    EXPECT_EQ(serial.best.l2.sizeBoundBytes,
              parallel.best.l2.sizeBoundBytes);
    EXPECT_EQ(serial.best.cmp.relativeEnergyDelay(),
              parallel.best.cmp.relativeEnergyDelay());
}

TEST(MultiLevelSearch, UnconstrainedAlwaysSelectsLowestEd)
{
    const auto &b = findBenchmark("li");
    RunConfig cfg;
    cfg.maxInstrs = 100 * 1000;

    MultiLevelSpace space;
    space.l1SizeBounds = {4096, 65536};
    space.l2SizeBounds = {64 * 1024, 1024 * 1024};
    DriParams tmpl;
    tmpl.senseInterval = 20 * 1000;
    DriParams l2Tmpl = HierarchyParams::defaultL2DriParams();
    l2Tmpl.senseInterval = 20 * 1000;

    const RunOutput conv = runConventional(b, cfg);
    const MultiLevelSearchResult sr = searchMultiLevel(
        b, cfg, tmpl, l2Tmpl, space, MultiLevelConstants::paper(),
        -1.0, conv);

    ASSERT_FALSE(sr.evaluated.empty());
    double min_ed = sr.evaluated[0].cmp.relativeEnergyDelay();
    for (const MultiLevelCandidate &cand : sr.evaluated)
        min_ed =
            std::min(min_ed, cand.cmp.relativeEnergyDelay());
    EXPECT_EQ(sr.best.cmp.relativeEnergyDelay(), min_ed);
    EXPECT_TRUE(sr.best.feasible);
}

// ---------------------------------------------------------------
// searchCmp factor-cap degradation
// ---------------------------------------------------------------

namespace caplog
{
std::vector<std::string> warnings; // hook target (single-threaded)

void
hook(LogLevel level, const std::string &msg)
{
    if (level == LogLevel::Warn)
        warnings.push_back(msg);
}
} // namespace caplog

TEST(CmpSearch, FactorCapDegradationIsFlaggedAndWarned)
{
    RunConfig cfg;
    cfg.maxInstrs = 30 * 1000;

    CmpConfig cmp;
    cmp.cores = 2;
    for (const char *b : {"compress", "li"}) {
        CmpCoreConfig core;
        core.bench = b;
        cmp.coreConfigs.push_back(std::move(core));
    }
    DriParams l1Tmpl;
    l1Tmpl.senseInterval = 10 * 1000;
    DriParams l2Tmpl = HierarchyParams::defaultL2DriParams();
    l2Tmpl.senseInterval = 10 * 1000;
    const CmpRunOutput conv = runCmp(cfg, cmp, "compress");

    // 33 factors over 2 cores: 33^2 = 1089 > the 1024-cell cap, so
    // the grid must degrade to one shared factor index — loudly
    // (a warning) and visibly (the result flag), never silently.
    CmpSpace wide;
    wide.l1MissBoundFactors.clear();
    for (int i = 0; i < 33; ++i)
        wide.l1MissBoundFactors.push_back(2.0 + i);
    wide.l2SizeBounds = {1024 * 1024};

    caplog::warnings.clear();
    setLogHook(&caplog::hook);
    const CmpSearchResult degraded = searchCmp(
        cfg, cmp, "compress", l1Tmpl, l2Tmpl, wide,
        MultiLevelConstants::paper(), -1.0, conv);
    setLogHook(nullptr);

    EXPECT_TRUE(degraded.sharedFactorSweep);
    EXPECT_EQ(degraded.evaluated.size(), 33u); // |factors| x 1 bound
    ASSERT_EQ(caplog::warnings.size(), 1u);
    EXPECT_NE(caplog::warnings[0].find("shared"),
              std::string::npos);
    // Shared index: both cores always share one factor position.
    for (const CmpCandidate &cand : degraded.evaluated)
        ASSERT_EQ(cand.l1.size(), 2u);

    // A grid under the cap keeps the full cross product and stays
    // unflagged.
    CmpSpace small;
    small.l1MissBoundFactors = {2.0, 32.0};
    small.l2SizeBounds = {1024 * 1024};
    caplog::warnings.clear();
    setLogHook(&caplog::hook);
    const CmpSearchResult full = searchCmp(
        cfg, cmp, "compress", l1Tmpl, l2Tmpl, small,
        MultiLevelConstants::paper(), -1.0, conv);
    setLogHook(nullptr);
    EXPECT_FALSE(full.sharedFactorSweep);
    EXPECT_EQ(full.evaluated.size(), 4u); // 2^2 x 1 bound
    EXPECT_TRUE(caplog::warnings.empty());
}

} // namespace
} // namespace drisim
