/**
 * @file
 * CMP system tests: the cores=1 degeneration contract (CmpSystem
 * reproduces the single-core runner bit-for-bit), shared-L2
 * attribution and bank contention, the per-level CMP energy
 * accounting invariants, and a TSan-targeted hammer that drives the
 * shared programImageFor() image cache from concurrent searchCmp
 * cells (this file is labelled `concurrency`; see CMakeLists.txt).
 */

#include <gtest/gtest.h>

#include "harness/multilevel.hh"
#include "harness/runner.hh"
#include "system/cmp.hh"

namespace drisim
{
namespace
{

TEST(CmpSystem, SingleCoreConventionalMatchesRunnerBitForBit)
{
    const BenchmarkInfo &b = findBenchmark("compress");
    RunConfig cfg;
    cfg.maxInstrs = 400 * 1000;
    const RunOutput single = runConventional(b, cfg);

    CmpConfig cmp;
    cmp.cores = 1; // default core config: conventional L1I
    const CmpRunOutput out = runCmp(cfg, cmp, "compress");

    ASSERT_EQ(out.cores.size(), 1u);
    const CmpCoreOutput &c = out.cores[0];
    EXPECT_EQ(c.bench, "compress");
    EXPECT_EQ(c.meas.cycles, single.meas.cycles);
    EXPECT_EQ(c.meas.instructions, single.meas.instructions);
    EXPECT_EQ(c.meas.l1iAccesses, single.meas.l1iAccesses);
    EXPECT_EQ(c.meas.l1iMisses, single.meas.l1iMisses);
    EXPECT_EQ(c.ipc, single.ipc);
    EXPECT_EQ(c.l1dMissRate, single.l1dMissRate);
    EXPECT_EQ(out.systemCycles, single.meas.cycles);
    EXPECT_EQ(out.l2Accesses, single.l2Accesses);
    EXPECT_EQ(out.l2Misses, single.l2Misses);
    EXPECT_EQ(out.l2MissRate, single.l2MissRate);
    EXPECT_EQ(out.memAccesses, single.memAccesses);
    EXPECT_EQ(out.l2ContentionEvents, 0u);
}

TEST(CmpSystem, SingleCoreDriWithDriL2MatchesRunnerBitForBit)
{
    // The full multi-level wiring: DRI L1I over a resizable L2.
    RunConfig cfg;
    cfg.maxInstrs = 400 * 1000;
    cfg.hier.l2Dri = true;
    DriParams l2p = HierarchyParams::defaultL2DriParams();
    l2p.senseInterval = 50000;
    cfg.hier.l2DriParams = l2p;

    DriParams dri;
    dri.senseInterval = 50000;
    dri.sizeBoundBytes = 4096;
    dri.missBound = 300;
    const DriParams resolved =
        driParamsForLevel(cfg.hier.l1i, dri);

    const BenchmarkInfo &b = findBenchmark("li");
    const RunOutput single = runDri(b, cfg, resolved);

    CmpConfig cmp;
    cmp.cores = 1;
    CmpCoreConfig core;
    core.bench = "li";
    core.dri = true;
    core.driParams = dri;
    cmp.coreConfigs.push_back(core);
    const CmpRunOutput out = runCmp(cfg, cmp, "li");

    ASSERT_EQ(out.cores.size(), 1u);
    const CmpCoreOutput &c = out.cores[0];
    EXPECT_EQ(c.meas.cycles, single.meas.cycles);
    EXPECT_EQ(c.meas.instructions, single.meas.instructions);
    EXPECT_EQ(c.meas.l1iAccesses, single.meas.l1iAccesses);
    EXPECT_EQ(c.meas.l1iMisses, single.meas.l1iMisses);
    EXPECT_EQ(c.meas.avgActiveFraction,
              single.meas.avgActiveFraction);
    EXPECT_EQ(c.meas.resizingTagBits, single.meas.resizingTagBits);
    EXPECT_EQ(c.resizes, single.resizes);
    EXPECT_EQ(c.throttleEvents, single.throttleEvents);
    EXPECT_EQ(out.l2Accesses, single.l2Accesses);
    EXPECT_EQ(out.l2Misses, single.l2Misses);
    EXPECT_EQ(out.memAccesses, single.memAccesses);
    EXPECT_EQ(out.l2SizeBytes, single.l2SizeBytes);
    EXPECT_EQ(out.l2AvgActiveFraction, single.l2AvgActiveFraction);
    EXPECT_EQ(out.l2ResizingTagBits, single.l2ResizingTagBits);
    EXPECT_EQ(out.l2Resizes, single.l2Resizes);
}

TEST(CmpSystem, AttributionSumsAndContentionFiresWithSharers)
{
    RunConfig cfg;
    cfg.maxInstrs = 200 * 1000;
    CmpConfig cmp;
    cmp.cores = 2;
    CmpCoreConfig c0, c1;
    c0.bench = "compress";
    c1.bench = "li";
    cmp.coreConfigs = {c0, c1};

    const CmpRunOutput out = runCmp(cfg, cmp, "compress");
    ASSERT_EQ(out.cores.size(), 2u);
    EXPECT_EQ(out.cores[0].bench, "compress");
    EXPECT_EQ(out.cores[1].bench, "li");

    // Attribution partitions the shared traffic.
    EXPECT_EQ(out.cores[0].l2Accesses + out.cores[1].l2Accesses,
              out.l2Accesses);
    EXPECT_EQ(out.cores[0].l2Misses + out.cores[1].l2Misses,
              out.l2Misses);
    EXPECT_GT(out.cores[0].l2Accesses, 0u);
    EXPECT_GT(out.cores[1].l2Accesses, 0u);

    // Two cores interleaving over the same banks must collide.
    EXPECT_GT(out.l2ContentionEvents, 0u);

    // System time is the slowest core.
    EXPECT_EQ(out.systemCycles,
              std::max(out.cores[0].meas.cycles,
                       out.cores[1].meas.cycles));
    // Both cores ran their full budget.
    EXPECT_EQ(out.cores[0].meas.instructions, cfg.maxInstrs);
    EXPECT_EQ(out.cores[1].meas.instructions, cfg.maxInstrs);
}

TEST(CmpSystem, ContentionPenaltyCostsCycles)
{
    RunConfig cfg;
    cfg.maxInstrs = 150 * 1000;
    CmpConfig cmp;
    cmp.cores = 2;
    CmpCoreConfig c0, c1;
    c0.bench = "compress";
    c1.bench = "mgrid";
    cmp.coreConfigs = {c0, c1};

    CmpConfig free = cmp;
    free.l2ContentionPenalty = 0;
    const CmpRunOutput base = runCmp(cfg, free, "compress");

    CmpConfig costly = cmp;
    costly.l2ContentionPenalty = 50;
    const CmpRunOutput slow = runCmp(cfg, costly, "compress");

    // The round-robin quanta are instruction-based, so the L2
    // access interleaving — and hence the contention count — is
    // identical; only the charged latency differs.
    EXPECT_EQ(base.l2ContentionEvents, slow.l2ContentionEvents);
    EXPECT_GT(base.l2ContentionEvents, 0u);
    EXPECT_GT(slow.systemCycles, base.systemCycles);
}

TEST(CmpSystem, ContentionAdderReachesTheTimedL2UnderBankedDram)
{
    // Regression (bank-contention sweep): the contention adder must
    // be threaded into the shared L2's accessAt() arrival time, not
    // only added to the returned latency — under banked DRAM the
    // timed path is arrival-dependent. A contended system can never
    // be faster than an uncontended one.
    RunConfig cfg;
    cfg.maxInstrs = 100 * 1000;
    cfg.hier.dram.banked = true;
    cfg.hier.l1i.mshrs = 4;
    cfg.hier.l1d.mshrs = 4;
    cfg.hier.l2.mshrs = 8;

    CmpConfig cmp;
    cmp.cores = 2;
    CmpCoreConfig c0, c1;
    c0.bench = "compress";
    c1.bench = "li";
    cmp.coreConfigs = {c0, c1};

    CmpConfig free = cmp;
    free.l2ContentionPenalty = 0;
    const CmpRunOutput base = runCmp(cfg, free, "compress");

    CmpConfig costly = cmp;
    costly.l2ContentionPenalty = 50;
    const CmpRunOutput slow = runCmp(cfg, costly, "compress");

    // Instruction-driven quanta: the reference stream — and the
    // contention count — is identical; only timing moves.
    EXPECT_EQ(base.l2ContentionEvents, slow.l2ContentionEvents);
    EXPECT_GT(base.l2ContentionEvents, 0u);
    EXPECT_EQ(base.l2Accesses, slow.l2Accesses);
    // (Only the end-to-end time is monotone: a later L2 arrival can
    // land MORE DRAM row hits, so the below-the-bus miss-latency
    // component alone may legitimately shrink.)
    EXPECT_GT(slow.systemCycles, base.systemCycles);
}

TEST(CmpCoherence, SharingWorkloadProducesAttributedInvalidations)
{
    RunConfig cfg;
    cfg.maxInstrs = 150 * 1000;
    CmpConfig cmp;
    cmp.cores = 2;
    cmp.coherence.enabled = true;
    CmpCoreConfig c0, c1;
    c0.bench = "shared_image";
    c1.bench = "shared_image";
    cmp.coreConfigs = {c0, c1};

    const CmpRunOutput out = runCmp(cfg, cmp, "shared_image");
    ASSERT_EQ(out.cores.size(), 2u);

    // Both cores hammer one shared window: each must both receive
    // and cause invalidations, and pay message cycles.
    for (const CmpCoreOutput &c : out.cores) {
        EXPECT_GT(c.coherenceInvalidationsReceived, 0u);
        EXPECT_GT(c.coherenceInvalidationsCaused, 0u);
        EXPECT_GT(c.coherenceMsgCycles, 0u);
    }

    // Attribution partitions the totals (both directions: probes
    // received and probes caused are two views of the same sends).
    std::uint64_t recv = 0, caused = 0, down = 0, wb = 0, msg = 0;
    for (const CmpCoreOutput &c : out.cores) {
        recv += c.coherenceInvalidationsReceived;
        caused += c.coherenceInvalidationsCaused;
        down += c.coherenceDowngrades;
        wb += c.coherenceWritebacks;
        msg += c.coherenceMsgCycles;
    }
    EXPECT_EQ(recv, out.coherenceInvalidations);
    EXPECT_EQ(caused, out.coherenceInvalidations);
    EXPECT_EQ(down, out.coherenceDowngrades);
    EXPECT_EQ(wb, out.coherenceWritebacks);
    EXPECT_EQ(msg, out.coherenceMsgCycles);
    EXPECT_GT(out.coherenceWritebacks, 0u);
}

TEST(CmpCoherence, DisabledProtocolReportsNoCoherenceActivity)
{
    // The same sharing mix without the protocol (the default):
    // every coherence counter stays zero — the pre-coherence
    // behaviour the sharing-free goldens pin.
    RunConfig cfg;
    cfg.maxInstrs = 100 * 1000;
    CmpConfig cmp;
    cmp.cores = 2;
    CmpCoreConfig c0, c1;
    c0.bench = "shared_image";
    c1.bench = "shared_image";
    cmp.coreConfigs = {c0, c1};

    const CmpRunOutput out = runCmp(cfg, cmp, "shared_image");
    EXPECT_EQ(out.coherenceInvalidations, 0u);
    EXPECT_EQ(out.coherenceDowngrades, 0u);
    EXPECT_EQ(out.coherenceWritebacks, 0u);
    EXPECT_EQ(out.coherenceMsgCycles, 0u);
    EXPECT_EQ(out.directoryEvictions, 0u);
    for (const CmpCoreOutput &c : out.cores) {
        EXPECT_EQ(c.coherenceInvalidationsReceived, 0u);
        EXPECT_EQ(c.coherenceMsgCycles, 0u);
    }
}

TEST(CmpCoherence, PolicyCoresReportWakesAndRefetches)
{
    // Drowsy and decay L1Is under the producer/consumer pair: the
    // drowsy core's probes charge wakes, both cores refetch frames
    // the directory stole — the leakage/coherence interaction the
    // 2001 paper never modelled.
    RunConfig cfg;
    cfg.maxInstrs = 150 * 1000;
    CmpConfig cmp;
    cmp.cores = 2;
    cmp.coherence.enabled = true;
    CmpCoreConfig c0, c1;
    c0.bench = "producer";
    c0.dri = true;
    c0.policyKind = PolicyKind::Drowsy;
    c1.bench = "consumer";
    c1.dri = true;
    c1.policyKind = PolicyKind::Decay;
    cmp.coreConfigs = {c0, c1};

    const CmpRunOutput out = runCmp(cfg, cmp, "producer");
    ASSERT_EQ(out.cores.size(), 2u);
    EXPECT_GT(out.coherenceInvalidations, 0u);
    EXPECT_GT(out.cores[0].coherenceRefetches, 0u);
    EXPECT_GT(out.cores[1].coherenceRefetches, 0u);
    // Decay never naps lines: wakes can only come from the drowsy
    // core.
    EXPECT_EQ(out.cores[1].coherenceWakes, 0u);

    // Determinism: the identical config replays bit-for-bit.
    const CmpRunOutput again = runCmp(cfg, cmp, "producer");
    EXPECT_EQ(again.systemCycles, out.systemCycles);
    EXPECT_EQ(again.coherenceInvalidations,
              out.coherenceInvalidations);
    EXPECT_EQ(again.coherenceMsgCycles, out.coherenceMsgCycles);
    EXPECT_EQ(again.cores[0].coherenceWakes,
              out.cores[0].coherenceWakes);
}

TEST(CmpAccounting, PerCoreRowsPlusSharedRowsSumToSystemTotal)
{
    CmpMeasurement conv;
    conv.cycles = 1000000;
    conv.cores.resize(2);
    conv.cores[0].l1Accesses = 500000;
    conv.cores[1].l1Accesses = 400000;
    conv.l2Accesses = 20000;
    conv.l2Misses = 2000;
    conv.memAccesses = 2000;

    CmpMeasurement dri = conv;
    dri.cycles = 1010000;
    dri.cores[0].l1AvgActiveFraction = 0.4;
    dri.cores[0].l1ResizingTagBits = 4;
    dri.cores[1].l1AvgActiveFraction = 0.7;
    dri.cores[1].l1ResizingTagBits = 2;
    dri.l2AvgActiveFraction = 0.5;
    dri.l2ResizingTagBits = 4;
    dri.l2Accesses = 25000; // extra traffic charged to the L2 row
    dri.memAccesses = 2600; // extra traffic charged to the mem row

    const CmpComparison cmp =
        compareCmp(MultiLevelConstants::paper(), conv, dri);

    // Row identities: one l1i[k] per core, then shared l2 and mem.
    ASSERT_EQ(cmp.dri.levels.size(), 4u);
    EXPECT_EQ(cmp.dri.levels[0].level, "l1i[0]");
    EXPECT_EQ(cmp.dri.levels[1].level, "l1i[1]");
    EXPECT_EQ(cmp.dri.levels[2].level, "l2");
    EXPECT_EQ(cmp.dri.levels[3].level, "mem");

    // Totals are the row sums by construction — exactly.
    double leak = 0.0, dyn = 0.0;
    for (const LevelEnergy &l : cmp.dri.levels) {
        leak += l.leakageNJ;
        dyn += l.dynamicNJ;
    }
    EXPECT_EQ(leak, cmp.dri.totalLeakageNJ());
    EXPECT_EQ(dyn, cmp.dri.totalDynamicNJ());

    // The conventional baseline pairs against itself: no extra
    // traffic, no resizing overhead, relative ED of exactly 1.
    EXPECT_DOUBLE_EQ(cmp.conventional.level("mem")->dynamicNJ, 0.0);
    const double conv_ed =
        cmp.conventional.energyDelay(conv.cycles);
    EXPECT_GT(conv_ed, 0.0);
    EXPECT_DOUBLE_EQ(
        compareCmp(MultiLevelConstants::paper(), conv, conv)
            .relativeEnergyDelay(),
        1.0);

    // Gating the arrays must have cut the DRI leakage below the
    // conventional leakage despite the longer run.
    EXPECT_LT(cmp.dri.totalLeakageNJ(),
              cmp.conventional.totalLeakageNJ() * 1.02);

    // The slowdown is computed on system time.
    EXPECT_NEAR(cmp.slowdownPercent(), 1.0, 1e-9);
    EXPECT_DOUBLE_EQ(cmp.coreAverageSizeFraction(0), 0.4);
    EXPECT_DOUBLE_EQ(cmp.coreAverageSizeFraction(1), 0.7);
    EXPECT_DOUBLE_EQ(cmp.l2AverageSizeFraction(), 0.5);
}

TEST(CmpSearch, WinnerAndGridShapeAreSane)
{
    RunConfig cfg;
    cfg.maxInstrs = 120 * 1000;
    CmpConfig cmp;
    cmp.cores = 2;
    CmpCoreConfig c0, c1;
    c0.bench = "compress";
    c1.bench = "li";
    cmp.coreConfigs = {c0, c1};

    const CmpRunOutput conv = runCmp(cfg, cmp, "compress");

    CmpSpace space;
    space.l1MissBoundFactors = {32.0};
    space.l2SizeBounds = {64 * 1024, 1024 * 1024};
    DriParams l1Tmpl;
    l1Tmpl.senseInterval = 50000;
    DriParams l2Tmpl = HierarchyParams::defaultL2DriParams();
    l2Tmpl.senseInterval = 50000;

    const CmpSearchResult sr = searchCmp(
        cfg, cmp, "compress", l1Tmpl, l2Tmpl, space,
        MultiLevelConstants::paper(), 4.0, conv);

    // |factors|^2 x |l2 bounds| = 1 x 2 cells, grid order.
    ASSERT_EQ(sr.evaluated.size(), 2u);
    EXPECT_EQ(sr.evaluated[0].l2.sizeBoundBytes, 64u * 1024);
    EXPECT_EQ(sr.evaluated[1].l2.sizeBoundBytes, 1024u * 1024);
    for (const CmpCandidate &cand : sr.evaluated) {
        ASSERT_EQ(cand.l1.size(), 2u);
        EXPECT_GE(cand.l1[0].missBound, space.missBoundFloor);
        // Per-level rows: l1i[0], l1i[1], l2, mem.
        ASSERT_EQ(cand.cmp.dri.levels.size(), 4u);
    }
    ASSERT_EQ(sr.best.l1.size(), 2u);
    EXPECT_GT(sr.best.cmp.relativeEnergyDelay(), 0.0);

    // The rendered row carries one miss-bound and one size per core.
    const std::vector<std::string> row =
        cmpRowCells("compress+li", sr.best);
    ASSERT_EQ(row.size(), 8u);
    EXPECT_EQ(row[0], "compress+li");
    EXPECT_NE(row[1].find('/'), std::string::npos);
    EXPECT_NE(row[5].find('/'), std::string::npos);
}

TEST(CmpSearch, WideCmpDegradesToSharedFactorSweep)
{
    // 2^12 per-core factor combinations blow the 1024-cell cap, so
    // the sweep must fall back to one shared factor index (cells =
    // |factors| x |l2 bounds|) instead of exploding or overflowing.
    RunConfig cfg;
    cfg.maxInstrs = 15 * 1000;
    CmpConfig cmp;
    cmp.cores = 12;
    const CmpRunOutput conv = runCmp(cfg, cmp, "compress");

    CmpSpace space;
    space.l1MissBoundFactors = {2.0, 32.0};
    space.l2SizeBounds = {64 * 1024};
    DriParams l1Tmpl;
    l1Tmpl.senseInterval = 5000;
    DriParams l2Tmpl = HierarchyParams::defaultL2DriParams();
    l2Tmpl.senseInterval = 5000;

    const CmpSearchResult sr = searchCmp(
        cfg, cmp, "compress", l1Tmpl, l2Tmpl, space,
        MultiLevelConstants::paper(), -1.0, conv);

    ASSERT_EQ(sr.evaluated.size(), 2u);
    for (std::size_t i = 0; i < sr.evaluated.size(); ++i) {
        const CmpCandidate &cand = sr.evaluated[i];
        ASSERT_EQ(cand.l1.size(), 12u);
        // Shared index: every core uses the same factor per cell.
        for (const DriParams &p : cand.l1)
            EXPECT_EQ(p.missBound, cand.l1[0].missBound);
        // Per-level rows: 12 l1i[k] + l2 + mem.
        EXPECT_EQ(cand.cmp.dri.levels.size(), 14u);
    }
    // The two cells differ (factor 2 vs factor 32).
    EXPECT_NE(sr.evaluated[0].l1[0].missBound,
              sr.evaluated[1].l1[0].missBound);
}

/**
 * The image-cache hammer: three cores running three benchmarks no
 * other test in this binary touches, searched with a 4-worker pool
 * and a hand-built baseline so the *cells* are the first users of
 * the shared programImageFor() cache — several workers race through
 * the cold-build path and then hit the shared-lock read path on
 * every subsequent cell. Run under TSan via the `concurrency`
 * label.
 */
TEST(CmpSearchConcurrency, ImageCacheHammeredFromConcurrentCells)
{
    RunConfig cfg;
    cfg.maxInstrs = 30 * 1000;
    cfg.jobs = 4;
    CmpConfig cmp;
    cmp.cores = 3;
    CmpCoreConfig c0, c1, c2;
    c0.bench = "gcc";
    c1.bench = "hydro2d";
    c2.bench = "su2cor";
    cmp.coreConfigs = {c0, c1, c2};

    // Plausible hand-built baseline (the real one would warm the
    // image cache serially and defeat the point of the test).
    CmpRunOutput conv;
    conv.cores.resize(3);
    for (CmpCoreOutput &c : conv.cores) {
        c.meas.instructions = cfg.maxInstrs;
        c.meas.cycles = cfg.maxInstrs;
        c.meas.l1iAccesses = cfg.maxInstrs / 4;
        c.meas.l1iMisses = 200;
        c.l2Accesses = 500;
        c.l2Misses = 100;
    }
    conv.systemCycles = cfg.maxInstrs;
    conv.l2Accesses = 1500;
    conv.l2Misses = 300;
    conv.memAccesses = 300;
    conv.l2SizeBytes = 1024 * 1024;

    CmpSpace space;
    space.l1MissBoundFactors = {2.0, 32.0};
    space.l2SizeBounds = {64 * 1024};
    DriParams l1Tmpl;
    l1Tmpl.senseInterval = 10000;
    DriParams l2Tmpl = HierarchyParams::defaultL2DriParams();
    l2Tmpl.senseInterval = 10000;

    const CmpSearchResult sr = searchCmp(
        cfg, cmp, "gcc", l1Tmpl, l2Tmpl, space,
        MultiLevelConstants::paper(), -1.0, conv);

    // 2^3 factor combinations x 1 bound.
    ASSERT_EQ(sr.evaluated.size(), 8u);
    for (const CmpCandidate &cand : sr.evaluated)
        EXPECT_EQ(cand.cmp.driRun.cores.size(), 3u);
}

} // namespace
} // namespace drisim
