/**
 * @file
 * Result-cache tests: canonical config hashing (order-invariance,
 * default-vs-explicit equality, single-knob sensitivity), sidecar
 * persistence and tamper resistance (corruption, truncation,
 * hash-collision protection, JSON escaping), and the runner-level
 * guarantee that a cached result is byte-identical to a recomputed
 * one and a damaged entry is recomputed, never served.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <sys/wait.h>
#include <unistd.h>
#include <vector>

#include "harness/runner.hh"
#include "sim/result_cache.hh"
#include "workload/spec_suite.hh"

namespace drisim
{
namespace
{

using sim::ConfigKey;
using sim::ResultCache;

/** Self-deleting scratch directory for sidecar files. */
class TempDir
{
  public:
    TempDir()
    {
        char tmpl[] = "/tmp/drisim_rc_XXXXXX";
        path_ = mkdtemp(tmpl);
    }
    ~TempDir()
    {
        std::error_code ec;
        std::filesystem::remove_all(path_, ec);
    }
    std::string file(const std::string &name) const
    {
        return path_ + "/" + name;
    }

  private:
    std::string path_;
};

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
}

void
spit(const std::string &path, const std::string &contents)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << contents;
}

// --- ConfigKey hashing ------------------------------------------------

TEST(ConfigKeyTest, InsertionOrderIsIrrelevant)
{
    ConfigKey a;
    a.add("bench", "compress").add("instrs", std::uint64_t{1000});
    a.addDouble("bound", 0.25);
    ConfigKey b;
    b.addDouble("bound", 0.25);
    b.add("instrs", std::uint64_t{1000}).add("bench", "compress");
    EXPECT_EQ(a.canonical(), b.canonical());
    EXPECT_EQ(a.hashHex(), b.hashHex());
}

TEST(ConfigKeyTest, DefaultAndExplicitConfigsHashEqual)
{
    const auto &b = findBenchmark("compress");
    const RunConfig defaults;
    RunConfig explicitCfg;
    explicitCfg.maxInstrs = defaults.maxInstrs;
    explicitCfg.hier = HierarchyParams{};
    explicitCfg.core = OooParams{};
    // jobs/checkpointDir/resultCache/shard cannot change results
    // and must not change the identity either (a unit computes the
    // same answer whichever farm shard runs it).
    explicitCfg.jobs = 7;
    explicitCfg.checkpointDir = "/nonexistent";
    explicitCfg.shard = farm::ShardPlan{1, 3};
    EXPECT_EQ(runKeyConventional(b, defaults).hashHex(),
              runKeyConventional(b, explicitCfg).hashHex());
}

TEST(ConfigKeyTest, FlippingAnySingleKnobChangesTheHash)
{
    const auto &b = findBenchmark("compress");
    const RunConfig base;
    std::vector<std::string> hashes;
    hashes.push_back(runKeyConventional(b, base).hashHex());

    {
        RunConfig c = base;
        c.maxInstrs += 1;
        hashes.push_back(runKeyConventional(b, c).hashHex());
    }
    {
        RunConfig c = base;
        c.hier.l2Dri = true;
        hashes.push_back(runKeyConventional(b, c).hashHex());
    }
    {
        RunConfig c = base;
        c.core.commitWidth += 1;
        hashes.push_back(runKeyConventional(b, c).hashHex());
    }
    {
        RunConfig c = base;
        c.core.bpred.historyBits += 1;
        hashes.push_back(runKeyConventional(b, c).hashHex());
    }
    {
        RunConfig c = base;
        c.sampling.enabled = true;
        hashes.push_back(runKeyConventional(b, c).hashHex());
    }
    hashes.push_back(runKeyConventional(findBenchmark("li"), base)
                         .hashHex());
    {
        DriParams d;
        hashes.push_back(runKeyDri(b, base, d).hashHex());
        DriParams d2 = d;
        d2.senseInterval += 1;
        hashes.push_back(runKeyDri(b, base, d2).hashHex());
        DriParams d3 = d;
        d3.missBound += 1;
        hashes.push_back(runKeyDri(b, base, d3).hashHex());
        DriParams d4 = d;
        d4.sizeBoundBytes *= 2;
        hashes.push_back(runKeyDri(b, base, d4).hashHex());
    }

    for (std::size_t i = 0; i < hashes.size(); ++i)
        for (std::size_t j = i + 1; j < hashes.size(); ++j)
            EXPECT_NE(hashes[i], hashes[j])
                << "knobs " << i << " and " << j << " alias";
}

// --- store / lookup / persistence -------------------------------------

TEST(ResultCacheTest, StoreThenLookupRoundTrips)
{
    TempDir dir;
    ResultCache cache(dir.file("rc.json"));
    ConfigKey key;
    key.add("bench", "compress").add("instrs", std::uint64_t{42});

    ResultCache::Fields miss;
    EXPECT_FALSE(cache.lookup(key, miss));
    EXPECT_EQ(cache.counters().misses, 1u);

    ResultCache::Fields f{{"ipc", "1.5"}, {"cycles", "28"}};
    cache.store(key, f);
    EXPECT_EQ(cache.counters().stores, 1u);

    ResultCache::Fields got;
    ASSERT_TRUE(cache.lookup(key, got));
    EXPECT_EQ(got, f);
    EXPECT_EQ(cache.counters().hits, 1u);
}

TEST(ResultCacheTest, PersistsAcrossInstances)
{
    TempDir dir;
    const std::string path = dir.file("rc.json");
    ConfigKey key;
    key.add("k", "v");
    const ResultCache::Fields f{{"cycles", "123"}};
    {
        ResultCache cache(path);
        cache.store(key, f);
        cache.flush();
    }
    ResultCache reopened(path);
    ResultCache::Fields got;
    ASSERT_TRUE(reopened.lookup(key, got));
    EXPECT_EQ(got, f);
}

TEST(ResultCacheTest, JsonEscapesRoundTrip)
{
    TempDir dir;
    const std::string path = dir.file("rc.json");
    ConfigKey key;
    key.add("path", "a\"b\\c\nd\te");
    ResultCache::Fields f{{"note", "line1\nline2 \"quoted\" \\slash"},
                          {"ctrl", std::string("\x01\x1f", 2)}};
    {
        ResultCache cache(path);
        cache.store(key, f);
    } // flush on destruction
    ResultCache reopened(path);
    ResultCache::Fields got;
    ASSERT_TRUE(reopened.lookup(key, got));
    EXPECT_EQ(got, f);
}

// --- tamper resistance ------------------------------------------------

TEST(ResultCacheTest, CorruptedSidecarIsRecomputedNotServed)
{
    TempDir dir;
    const std::string path = dir.file("rc.json");
    ConfigKey key;
    key.add("k", "v");
    {
        ResultCache cache(path);
        cache.store(key, {{"cycles", "1"}});
    }
    spit(path, "this is not json {{{");
    ResultCache cache(path);
    ResultCache::Fields got;
    EXPECT_FALSE(cache.lookup(key, got)); // parse fail -> empty cache
    cache.store(key, {{"cycles", "2"}});
    cache.flush();
    ResultCache again(path);
    ASSERT_TRUE(again.lookup(key, got));
    EXPECT_EQ(got.at("cycles"), "2");
}

TEST(ResultCacheTest, TruncatedSidecarIsAMiss)
{
    TempDir dir;
    const std::string path = dir.file("rc.json");
    ConfigKey key;
    key.add("k", "v");
    {
        ResultCache cache(path);
        cache.store(key, {{"cycles", "1"}});
    }
    const std::string full = slurp(path);
    ASSERT_GT(full.size(), 4u);
    spit(path, full.substr(0, full.size() / 2));
    ResultCache cache(path);
    ResultCache::Fields got;
    EXPECT_FALSE(cache.lookup(key, got));
}

TEST(ResultCacheTest, HashCollisionIsAMissNotAWrongAnswer)
{
    TempDir dir;
    const std::string path = dir.file("rc.json");
    ConfigKey key;
    key.add("a", "1");
    {
        ResultCache cache(path);
        cache.store(key, {{"cycles", "1"}});
    }
    // Simulate a collision: same hash slot, different config string.
    // The stored full config must be compared, so this entry can
    // never be served for `key`.
    const std::string full = slurp(path);
    const std::string edited =
        std::string(full).replace(full.find("a=1;"), 4, "a=9;");
    ASSERT_NE(full, edited);
    spit(path, edited);
    ResultCache cache(path);
    ResultCache::Fields got;
    EXPECT_FALSE(cache.lookup(key, got));
}

// --- concurrent multi-process writers (sweep farm) --------------------

ConfigKey
numberedKey(const std::string &who, int i)
{
    ConfigKey k;
    k.add("writer", who).add("cell", std::to_string(i));
    return k;
}

/**
 * The farm guarantee: any number of shard processes flushing to one
 * sidecar interleave whole records, never bytes (single O_APPEND
 * write per flush). Two real processes hammer the same file with
 * per-record flushes; afterwards a fresh reader must see every
 * record from both, intact.
 */
TEST(ResultCacheTest, TwoProcessHammerInterleavesWholeRecords)
{
    TempDir dir;
    const std::string path = dir.file("rc.json");
    constexpr int kRecords = 200;

    const pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        // Child: its own cache instance on the same sidecar. A long
        // payload makes a torn interleave overwhelmingly likely if
        // flushes ever split across writes.
        ResultCache cache(path);
        const std::string blob(256, 'c');
        for (int i = 0; i < kRecords; ++i) {
            cache.store(numberedKey("child", i),
                        {{"cycles", std::to_string(i)},
                         {"blob", blob}});
            cache.flush();
        }
        _exit(0);
    }
    {
        ResultCache cache(path);
        const std::string blob(256, 'p');
        for (int i = 0; i < kRecords; ++i) {
            cache.store(numberedKey("parent", i),
                        {{"cycles", std::to_string(i)},
                         {"blob", blob}});
            cache.flush();
        }
    }
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);

    ResultCache reader(path);
    EXPECT_EQ(reader.size(), 2u * kRecords);
    ResultCache::Fields got;
    for (int i = 0; i < kRecords; ++i) {
        EXPECT_TRUE(reader.lookup(numberedKey("parent", i), got))
            << i;
        EXPECT_TRUE(reader.lookup(numberedKey("child", i), got))
            << i;
        EXPECT_EQ(got.at("cycles"), std::to_string(i));
    }
}

TEST(ResultCacheTest, TornLineInvalidatesOnlyItself)
{
    TempDir dir;
    const std::string path = dir.file("rc.json");
    ConfigKey first = numberedKey("w", 1);
    ConfigKey second = numberedKey("w", 2);
    {
        ResultCache cache(path);
        cache.store(first, {{"cycles", "1"}});
        cache.flush();
    }
    // A writer killed mid-append leaves a torn line; records around
    // it must survive. Splice junk (newline-terminated) between two
    // valid records.
    std::string contents = slurp(path);
    contents += "{\"hash\":\"torn torn to";
    contents += '\n';
    spit(path, contents);
    {
        ResultCache cache(path);
        cache.store(second, {{"cycles", "2"}});
        cache.flush();
    }
    ResultCache reader(path);
    ResultCache::Fields got;
    EXPECT_TRUE(reader.lookup(first, got));
    EXPECT_TRUE(reader.lookup(second, got));
    EXPECT_EQ(reader.size(), 2u);
}

TEST(ResultCacheTest, AppendAfterUnterminatedTailIsNotLost)
{
    TempDir dir;
    const std::string path = dir.file("rc.json");
    // Junk tail with no trailing newline (torn final append): the
    // next flush must start on a fresh line or its first record is
    // glued to the junk and lost with it.
    spit(path, "this is not json {{{");
    ConfigKey key = numberedKey("w", 1);
    {
        ResultCache cache(path);
        cache.store(key, {{"cycles", "1"}});
        cache.flush();
    }
    ResultCache reader(path);
    ResultCache::Fields got;
    EXPECT_TRUE(reader.lookup(key, got));
    EXPECT_EQ(got.at("cycles"), "1");
}

TEST(ResultCacheTest, ReloadSeesOtherWritersRecords)
{
    TempDir dir;
    const std::string path = dir.file("rc.json");
    ConfigKey mine = numberedKey("a", 1);
    ConfigKey theirs = numberedKey("b", 1);

    ResultCache a(path);
    a.store(mine, {{"cycles", "1"}});
    a.flush();
    ResultCache::Fields got;
    EXPECT_FALSE(a.lookup(theirs, got)); // not written yet
    {
        // "Another process": an independent instance on the path.
        ResultCache b(path);
        b.store(theirs, {{"cycles", "2"}});
        b.flush();
    }
    // Without reload the stale in-memory view still misses...
    EXPECT_FALSE(a.lookup(theirs, got));
    // ...and reload (sweep_merge's re-read-on-merge) picks it up
    // without losing unflushed local state.
    a.store(numberedKey("a", 2), {{"cycles", "3"}});
    a.reload();
    EXPECT_TRUE(a.lookup(theirs, got));
    EXPECT_EQ(got.at("cycles"), "2");
    EXPECT_TRUE(a.lookup(numberedKey("a", 2), got));
}

// --- runner integration -----------------------------------------------

TEST(ResultCacheRunnerTest, CachedRunIsByteIdenticalToComputed)
{
    const auto &b = findBenchmark("compress");
    TempDir dir;
    RunConfig cfg;
    cfg.maxInstrs = 200 * 1000;
    cfg.resultCache =
        std::make_shared<ResultCache>(dir.file("rc.json"));
    DriParams dp;
    dp.senseInterval = 20 * 1000;
    dp.sizeBoundBytes = 1024;
    dp.missBound = 100;

    const RunOutput computed = runDri(b, cfg, dp);
    EXPECT_EQ(cfg.resultCache->counters().stores, 1u);
    const RunOutput cached = runDri(b, cfg, dp);
    EXPECT_EQ(cfg.resultCache->counters().hits, 1u);

    EXPECT_EQ(computed.meas.cycles, cached.meas.cycles);
    EXPECT_EQ(computed.meas.avgActiveFraction,
              cached.meas.avgActiveFraction);
    EXPECT_EQ(computed.ipc, cached.ipc);
    EXPECT_EQ(computed.l1dMissRate, cached.l1dMissRate);
    EXPECT_EQ(computed.resizes, cached.resizes);
    EXPECT_EQ(computed.l2Misses, cached.l2Misses);
}

TEST(ResultCacheRunnerTest, PartialEntryIsRecomputedNeverServed)
{
    const auto &b = findBenchmark("compress");
    TempDir dir;
    RunConfig cfg;
    cfg.maxInstrs = 200 * 1000;
    cfg.resultCache =
        std::make_shared<ResultCache>(dir.file("rc.json"));
    DriParams dp;
    dp.senseInterval = 20 * 1000;
    dp.sizeBoundBytes = 1024;
    dp.missBound = 100;

    // Poison the cache with an entry under the run's own key that
    // is missing most fields (e.g. written by a newer binary with a
    // different schema). Strict parsing must reject and recompute.
    cfg.resultCache->store(runKeyDri(b, cfg, dp),
                           {{"ipc", "9.0"}, {"cycles", "junk"}});

    const RunOutput out = runDri(b, cfg, dp);
    EXPECT_NE(out.ipc, 9.0);
    EXPECT_GT(out.meas.cycles, 0u);

    // The recompute overwrote the poisoned entry with a full one.
    RunConfig cfg2 = cfg;
    const RunOutput again = runDri(b, cfg2, dp);
    EXPECT_EQ(out.ipc, again.ipc);
    EXPECT_EQ(out.meas.cycles, again.meas.cycles);
}

TEST(ResultCacheRunnerTest, NonBlockingMemoryFieldsRoundTrip)
{
    // The payload must carry the non-blocking-memory columns: a
    // banked-DRAM run served from the cache has to reproduce them
    // exactly (they feed the bench tables), not as silent zeros.
    const auto &b = findBenchmark("compress");
    TempDir dir;
    RunConfig cfg;
    cfg.maxInstrs = 200 * 1000;
    cfg.hier.dram.banked = true;
    cfg.hier.l1i.mshrs = 2;
    cfg.hier.l1d.mshrs = 2;
    cfg.hier.l2.mshrs = 4;
    cfg.resultCache =
        std::make_shared<ResultCache>(dir.file("rc.json"));

    const RunOutput computed = runConventional(b, cfg);
    EXPECT_GT(computed.mshrPeakOccupancy, 0u);
    EXPECT_GT(computed.dramBusyCycles, 0u);

    const RunOutput cached = runConventional(b, cfg);
    EXPECT_EQ(cfg.resultCache->counters().hits, 1u);
    EXPECT_EQ(cached.mshrFullStallCycles,
              computed.mshrFullStallCycles);
    EXPECT_EQ(cached.mshrPeakOccupancy, computed.mshrPeakOccupancy);
    EXPECT_EQ(cached.dramQueueFullEvents,
              computed.dramQueueFullEvents);
    EXPECT_EQ(cached.dramBusyCycles, computed.dramBusyCycles);
}

TEST(ResultCacheRunnerTest, StalePayloadVersionIsAMissNotServed)
{
    // An entry written under the previous payload layout (before
    // the non-blocking-memory columns) carries payload_v=1 — or no
    // marker at all. Either must miss cleanly and be recomputed,
    // never served with the missing columns zeroed.
    const auto &b = findBenchmark("compress");
    TempDir dir;
    RunConfig cfg;
    cfg.maxInstrs = 200 * 1000;
    cfg.resultCache =
        std::make_shared<ResultCache>(dir.file("rc.json"));

    const RunOutput computed = runConventional(b, cfg);
    const sim::ConfigKey key = runKeyConventional(b, cfg);
    sim::ResultCache::Fields f;
    ASSERT_TRUE(cfg.resultCache->lookup(key, f));
    ASSERT_EQ(f.at("payload_v"), "2");

    // Rewrite the entry as an older binary would have left it.
    f["payload_v"] = "1";
    cfg.resultCache->store(key, f);
    const auto before = cfg.resultCache->counters();
    const RunOutput out = runConventional(b, cfg);
    EXPECT_EQ(cfg.resultCache->counters().stores,
              before.stores + 1);
    EXPECT_EQ(out.meas.cycles, computed.meas.cycles);

    // Same for an entry with the marker stripped entirely.
    f.erase("payload_v");
    cfg.resultCache->store(key, f);
    const auto before2 = cfg.resultCache->counters();
    const RunOutput again = runConventional(b, cfg);
    EXPECT_EQ(cfg.resultCache->counters().stores,
              before2.stores + 1);
    EXPECT_EQ(again.meas.cycles, computed.meas.cycles);
}

} // namespace
} // namespace drisim
