/**
 * @file
 * DRI i-cache tests: resizing-driven lookup correctness, alias
 * handling, gating-destroys-state semantics, miss-driven adaptation
 * (paper Sections 2.1, 2.2).
 */

#include <gtest/gtest.h>

#include "core/dri_icache.hh"
#include "stats/stats.hh"

namespace drisim
{
namespace
{

DriParams
smallDri()
{
    DriParams p;
    p.sizeBytes = 8 * 1024;   // 256 sets of 32 B
    p.sizeBoundBytes = 1024;  // 32 sets minimum
    p.blockBytes = 32;
    p.missBound = 10;
    p.senseInterval = 1000;
    return p;
}

TEST(DriParams, ResizingTagBits)
{
    // Paper: a 64 KB cache with a 1 KB size-bound keeps 6 resizing
    // tag bits (16 + 6 = 22 total).
    DriParams p;
    p.sizeBytes = 64 * 1024;
    p.sizeBoundBytes = 1024;
    EXPECT_EQ(p.resizingTagBits(), 6u);
    p.sizeBoundBytes = 64 * 1024;
    EXPECT_EQ(p.resizingTagBits(), 0u);
    p.sizeBoundBytes = 2 * 1024;
    EXPECT_EQ(p.resizingTagBits(), 5u);
}

TEST(DriICache, BasicHitMiss)
{
    stats::StatGroup root("t");
    DriICache c(smallDri(), nullptr, &root);
    EXPECT_FALSE(c.access(0x1000, AccessType::InstFetch).hit);
    EXPECT_TRUE(c.access(0x1000, AccessType::InstFetch).hit);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(DriICache, DownsizesWhenMissesAreLow)
{
    stats::StatGroup root("t");
    DriICache c(smallDri(), nullptr, &root);
    EXPECT_EQ(c.currentSets(), 256u);
    // One quiet interval (no misses beyond bound): downsize by 2.
    c.retireInstructions(1000);
    EXPECT_EQ(c.currentSets(), 128u);
    c.retireInstructions(1000);
    EXPECT_EQ(c.currentSets(), 64u);
}

TEST(DriICache, StopsAtSizeBound)
{
    stats::StatGroup root("t");
    DriICache c(smallDri(), nullptr, &root);
    for (int i = 0; i < 20; ++i)
        c.retireInstructions(1000);
    EXPECT_EQ(c.currentSets(), 32u);
    EXPECT_EQ(c.currentSizeBytes(), 1024u);
}

TEST(DriICache, UpsizesUnderMissPressure)
{
    stats::StatGroup root("t");
    DriICache c(smallDri(), nullptr, &root);
    c.retireInstructions(1000); // 128 sets
    c.retireInstructions(1000); // 64 sets
    ASSERT_EQ(c.currentSets(), 64u);
    // Generate conflict misses beyond the bound: sweep far more
    // blocks than 64 sets can hold.
    for (Addr a = 0; a < 64 * 1024; a += 32)
        c.access(a, AccessType::InstFetch);
    c.retireInstructions(1000);
    EXPECT_EQ(c.currentSets(), 128u);
}

TEST(DriICache, LookupCorrectAcrossDownsize)
{
    stats::StatGroup root("t");
    DriICache c(smallDri(), nullptr, &root);
    // Fill a block whose set index is below the minimum set count:
    // it survives downsizing (its frame stays powered).
    const Addr low = 32 * 2; // block 2 -> set 2 at every size
    c.access(low, AccessType::InstFetch);
    c.retireInstructions(1000);
    c.retireInstructions(1000);
    c.retireInstructions(1000); // now 32 sets
    ASSERT_EQ(c.currentSets(), 32u);
    EXPECT_TRUE(c.access(low, AccessType::InstFetch).hit);
}

TEST(DriICache, GatingDestroysDisabledSetContents)
{
    stats::StatGroup root("t");
    DriParams p = smallDri(); // missBound 10
    DriICache c(p, nullptr, &root);
    // Block in set 200 (past the post-shrink boundary of 128).
    const Addr high = 32 * 200;
    c.access(high, AccessType::InstFetch);
    // Quiet interval (1 miss < bound): downsize; set 200 gated off
    // and its contents destroyed.
    c.retireInstructions(1000);
    ASSERT_EQ(c.currentSets(), 128u);
    EXPECT_GE(c.blocksLost(), 1u);

    // Heavy misses force an upsize back to 256 sets.
    for (Addr a = 0; a < 64 * 1024; a += 32)
        c.access(a, AccessType::InstFetch);
    c.retireInstructions(1000);
    ASSERT_EQ(c.currentSets(), 256u);

    // Set 200 came back cold: the original block must miss (its
    // only powered copy after the sweep lives at the 128-set alias
    // position, set 72, which index 200 does not consult).
    EXPECT_FALSE(c.access(high, AccessType::InstFetch).hit);
    EXPECT_GE(c.downsizes(), 1u);
    EXPECT_GE(c.upsizes(), 1u);
}

TEST(DriICache, UpsizeCreatesHarmlessAliases)
{
    stats::StatGroup root("t");
    DriParams p = smallDri();
    DriICache c(p, nullptr, &root);
    // Shrink to the bound.
    for (int i = 0; i < 3; ++i)
        c.retireInstructions(1000);
    ASSERT_EQ(c.currentSets(), 32u);

    // Fetch a block whose full-size index differs from its 1 KB
    // index: block 0x40 -> set 64 at 256 sets, set 0 at 32 sets.
    const Addr block64 = 64 * 32;
    c.access(block64, AccessType::InstFetch);
    EXPECT_TRUE(c.access(block64, AccessType::InstFetch).hit);

    // Upsize via miss pressure.
    for (Addr a = 1 << 20; a < (1 << 20) + 64 * 1024; a += 32)
        c.access(a, AccessType::InstFetch);
    c.retireInstructions(1000);
    ASSERT_GT(c.currentSets(), 32u);

    // Lookup after upsizing goes to the new set and misses
    // (compulsory miss, Section 2.2), creating an alias.
    EXPECT_FALSE(c.access(block64, AccessType::InstFetch).hit);
    EXPECT_TRUE(c.access(block64, AccessType::InstFetch).hit);
}

TEST(DriICache, InvalidateBlockSweepsAllAliases)
{
    stats::StatGroup root("t");
    DriParams p = smallDri();
    DriICache c(p, nullptr, &root);
    // Create an alias as in the previous test.
    for (int i = 0; i < 3; ++i)
        c.retireInstructions(1000);
    const Addr block64 = 64 * 32;
    c.access(block64, AccessType::InstFetch); // lands in set 0
    for (Addr a = 1 << 20; a < (1 << 20) + 64 * 1024; a += 32)
        c.access(a, AccessType::InstFetch);
    c.retireInstructions(1000); // upsizes
    c.access(block64, AccessType::InstFetch); // alias in set 64

    // Invalidate all aliases (page-unmap semantics, Section 2.2).
    c.invalidateBlock(block64);
    EXPECT_FALSE(c.access(block64, AccessType::InstFetch).hit);
}

TEST(DriICache, InvalidateAllFlushes)
{
    stats::StatGroup root("t");
    DriICache c(smallDri(), nullptr, &root);
    c.access(0x100, AccessType::InstFetch);
    c.invalidateAll();
    EXPECT_FALSE(c.access(0x100, AccessType::InstFetch).hit);
}

TEST(DriICache, ActiveFractionTracksSets)
{
    stats::StatGroup root("t");
    DriICache c(smallDri(), nullptr, &root);
    EXPECT_DOUBLE_EQ(c.activeFraction(), 1.0);
    c.retireInstructions(1000);
    EXPECT_DOUBLE_EQ(c.activeFraction(), 0.5);
    EXPECT_EQ(c.gatedSets(), 128u);
}

TEST(DriICache, CycleIntegrationWeightsByTime)
{
    stats::StatGroup root("t");
    DriICache c(smallDri(), nullptr, &root);
    c.integrateCycles(100);           // 100 cycles at full size
    c.retireInstructions(1000);       // halve
    c.integrateCycles(100);           // 100 cycles at half size
    EXPECT_NEAR(c.averageActiveFraction(), 0.75, 1e-9);
}

TEST(DriICache, NonAdaptiveStaysFixed)
{
    stats::StatGroup root("t");
    DriParams p = smallDri();
    p.adaptive = false;
    DriICache c(p, nullptr, &root);
    for (int i = 0; i < 5; ++i)
        c.retireInstructions(1000);
    EXPECT_EQ(c.currentSets(), 256u);
}

TEST(DriICache, Divisibility4ResizesByFour)
{
    stats::StatGroup root("t");
    DriParams p = smallDri();
    p.divisibility = 4;
    DriICache c(p, nullptr, &root);
    c.retireInstructions(1000);
    EXPECT_EQ(c.currentSets(), 64u);
}

TEST(DriICache, SetAssociativeVariant)
{
    stats::StatGroup root("t");
    DriParams p = smallDri();
    p.assoc = 4; // 64 sets of 4 ways
    p.sizeBoundBytes = 2048; // 16 sets minimum
    DriICache c(p, nullptr, &root);
    EXPECT_EQ(c.currentSets(), 64u);
    // Conflicting blocks land in the same set without eviction.
    c.access(0, AccessType::InstFetch);
    c.access(8 * 1024, AccessType::InstFetch);
    c.access(16 * 1024, AccessType::InstFetch);
    EXPECT_TRUE(c.access(0, AccessType::InstFetch).hit);
    c.retireInstructions(1000);
    EXPECT_EQ(c.currentSets(), 32u);
}

TEST(DriICache, RejectsInvalidParams)
{
    DriParams p = smallDri();
    p.sizeBoundBytes = 3000; // not a power of two
    EXPECT_DEATH({ p.validate(); }, "");
}

TEST(DriICache, MissesRouteToLowerLevel)
{
    stats::StatGroup root("t");
    MainMemory mem(32, &root);
    DriICache c(smallDri(), &mem, &root);
    auto r = c.access(0x5000, AccessType::InstFetch);
    EXPECT_FALSE(r.hit);
    EXPECT_EQ(r.latency, 1u + 80u + 4u * 4u);
    EXPECT_EQ(mem.accesses(), 1u);
}

} // namespace
} // namespace drisim
