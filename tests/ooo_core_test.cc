/**
 * @file
 * Out-of-order core timing tests with scripted instruction streams.
 */

#include <gtest/gtest.h>

#include <vector>

#include "cpu/ooo_core.hh"
#include "mem/cache.hh"
#include "mem/memory.hh"

namespace drisim
{
namespace
{

/** Replays a fixed vector of instructions. */
class VecStream : public InstrStream
{
  public:
    explicit VecStream(std::vector<Instr> v) : v_(std::move(v)) {}

    bool
    next(Instr &out) override
    {
        if (idx_ >= v_.size())
            return false;
        out = v_[idx_++];
        return true;
    }

  private:
    std::vector<Instr> v_;
    size_t idx_ = 0;
};

Instr
alu(Addr pc, std::uint8_t dest, std::uint8_t src1 = 0,
    std::uint8_t src2 = 0)
{
    Instr i;
    i.pc = pc;
    i.op = OpClass::IntAlu;
    i.dest = dest;
    i.src1 = src1;
    i.src2 = src2;
    i.nextPc = pc + kInstrBytes;
    return i;
}

/** n independent single-cycle instructions, consecutive PCs. */
std::vector<Instr>
independent(int n, Addr base = 0x1000)
{
    std::vector<Instr> v;
    for (int i = 0; i < n; ++i)
        v.push_back(alu(base + static_cast<Addr>(i) * 4,
                        static_cast<std::uint8_t>(1 + (i % 30))));
    return v;
}

/** n chained instructions (each reads the previous result). */
std::vector<Instr>
chained(int n, Addr base = 0x1000)
{
    std::vector<Instr> v;
    std::uint8_t prev = 0;
    for (int i = 0; i < n; ++i) {
        const auto d = static_cast<std::uint8_t>(1 + (i % 30));
        v.push_back(alu(base + static_cast<Addr>(i) * 4, d, prev));
        prev = d;
    }
    return v;
}

struct CoreRig
{
    explicit CoreRig(Cycles icacheHit = 1)
        : root("t"),
          mem(32, &root),
          icache(
              CacheParams{"ic", 64 * 1024, 1, 32, icacheHit,
                          ReplPolicy::LRU},
              &mem, &root),
          dcache(
              CacheParams{"dc", 64 * 1024, 2, 32, 1, ReplPolicy::LRU},
              &mem, &root),
          core(OooParams{}, &icache, &dcache, &root)
    {
    }

    stats::StatGroup root;
    MainMemory mem;
    Cache icache;
    Cache dcache;
    OooCore core;
};

TEST(OooCore, CommitsEverything)
{
    CoreRig rig;
    VecStream s(independent(1000));
    auto r = rig.core.run(s, 1u << 30);
    EXPECT_EQ(r.instructions, 1000u);
    EXPECT_GT(r.cycles, 0u);
}

TEST(OooCore, MaxInstrsBoundsTheRun)
{
    CoreRig rig;
    VecStream s(independent(1000));
    auto r = rig.core.run(s, 100);
    EXPECT_EQ(r.instructions, 100u);
}

TEST(OooCore, IndependentStreamNearsFetchWidth)
{
    CoreRig rig;
    const int n = 4000;
    // Pre-warm the i-cache so fetch never misses.
    for (Addr a = 0x1000; a < 0x1000 + n * 4u; a += 32)
        rig.icache.access(a, AccessType::InstFetch);
    VecStream s(independent(n));
    auto r = rig.core.run(s, 1u << 30);
    // 8-wide fetch of 8-instruction blocks: IPC approaches 8.
    EXPECT_GT(r.ipc(), 5.0);
}

TEST(OooCore, DependentChainSerializes)
{
    CoreRig rig;
    const int n = 2000;
    VecStream s(chained(n));
    auto r = rig.core.run(s, 1u << 30);
    // One instruction per cycle at best.
    EXPECT_GE(r.cycles, static_cast<Cycles>(n));
    EXPECT_LT(r.ipc(), 1.1);
}

TEST(OooCore, ColdIcacheMissesCostFullFillLatency)
{
    CoreRig rig;
    // One instruction per 32 B block: every fetch is a new block.
    std::vector<Instr> v;
    const int n = 200;
    for (int i = 0; i < n; ++i) {
        Instr ins = alu(0x1000 + static_cast<Addr>(i) * 32, 1);
        ins.nextPc = ins.pc + 32; // pretend sequential-ish
        v.push_back(ins);
    }
    VecStream s(v);
    auto r = rig.core.run(s, 1u << 30);
    // Every block misses L1I -> L2 miss -> memory (1+12+96).
    EXPECT_GT(r.cycles, static_cast<Cycles>(n) * 80);
    EXPECT_EQ(rig.icache.misses(), static_cast<std::uint64_t>(n));
    EXPECT_GT(rig.core.icacheStallCycles(), 0u);
}

TEST(OooCore, PredictableLoopBranchesAreCheap)
{
    // A tight loop of 8 instructions, last one a taken branch back.
    std::vector<Instr> v;
    const int iters = 800;
    for (int it = 0; it < iters; ++it) {
        for (int i = 0; i < 7; ++i)
            v.push_back(alu(0x1000 + static_cast<Addr>(i) * 4,
                            static_cast<std::uint8_t>(1 + i)));
        Instr br;
        br.pc = 0x1000 + 7 * 4;
        br.op = OpClass::Branch;
        br.taken = it + 1 < iters;
        br.nextPc = br.taken ? 0x1000 : br.pc + 4;
        v.push_back(br);
    }
    CoreRig rig;
    VecStream s(v);
    auto r = rig.core.run(s, 1u << 30);
    // Predictor learns the loop; IPC stays healthy.
    EXPECT_GT(r.ipc(), 3.0);
}

TEST(OooCore, RandomBranchesStallFetch)
{
    // Same loop shape but with pseudo-random directions to two
    // different targets: the predictor cannot learn it.
    std::vector<Instr> v;
    std::uint32_t lfsr = 0xACE1u;
    Addr pc_a = 0x1000;
    Addr pc_b = 0x8000;
    Addr cur = pc_a;
    for (int it = 0; it < 1500; ++it) {
        for (int i = 0; i < 3; ++i)
            v.push_back(alu(cur + static_cast<Addr>(i) * 4,
                            static_cast<std::uint8_t>(1 + i)));
        lfsr = (lfsr >> 1) ^ (-(lfsr & 1u) & 0xB400u);
        const bool taken = lfsr & 1;
        Instr br;
        br.pc = cur + 3 * 4;
        br.op = OpClass::Branch;
        br.taken = taken;
        const Addr other = cur == pc_a ? pc_b : pc_a;
        br.nextPc = taken ? other : br.pc + 4;
        v.push_back(br);
        if (taken)
            cur = other;
        // continue from fallthrough? keep PCs consistent:
        if (!taken)
            cur = br.pc + 4 - 3 * 4; // restart block base
    }
    CoreRig rig;
    VecStream s(v);
    auto r = rig.core.run(s, 1u << 30);
    EXPECT_GT(rig.core.branchStallCycles(), r.cycles / 10);
    EXPECT_LT(r.ipc(), 3.0);
}

TEST(OooCore, LoadMissesSlowTheChain)
{
    // Chained loads: each load feeds the next address (pointer
    // chase) over a working set far larger than the L1D.
    std::vector<Instr> v;
    const int n = 400;
    std::uint8_t prev = 1;
    for (int i = 0; i < n; ++i) {
        Instr ld;
        ld.pc = 0x1000 + static_cast<Addr>(i % 8) * 4;
        ld.op = OpClass::Load;
        ld.dest = static_cast<std::uint8_t>(1 + (i % 30));
        ld.src1 = prev;
        ld.memAddr = 0x10000000 + static_cast<Addr>(i) * 4096;
        ld.nextPc = ld.pc + 4;
        prev = ld.dest;
        v.push_back(ld);
    }
    CoreRig rig;
    VecStream s(v);
    auto r = rig.core.run(s, 1u << 30);
    // Every load misses (d-cache 1 + memory 96 + AGU 1) in a
    // serial chain: ~98 cycles per load.
    EXPECT_GT(r.cycles, static_cast<Cycles>(n) * 95);
    EXPECT_LT(r.cycles, static_cast<Cycles>(n) * 105);
}

TEST(OooCore, StoreToLoadForwardingAvoidsDcache)
{
    std::vector<Instr> v;
    // store to X, then immediately load X, many times.
    for (int i = 0; i < 100; ++i) {
        Instr st;
        st.pc = 0x1000 + static_cast<Addr>(i % 8) * 4;
        st.op = OpClass::Store;
        st.src1 = 1;
        st.memAddr = 0x2000;
        st.nextPc = st.pc + 4;
        v.push_back(st);
        Instr ld;
        ld.pc = st.pc + 4;
        ld.op = OpClass::Load;
        ld.dest = 2;
        ld.memAddr = 0x2000;
        ld.nextPc = ld.pc + 4;
        v.push_back(ld);
    }
    CoreRig rig;
    VecStream s(v);
    rig.core.run(s, 1u << 30);
    // Forwarded loads never reach the d-cache; stores write at
    // commit. So d-cache sees (nearly) only store traffic.
    const auto *g = rig.dcache.statGroup().find("load_accesses");
    ASSERT_NE(g, nullptr);
    const auto *loads = dynamic_cast<const stats::Scalar *>(g);
    ASSERT_NE(loads, nullptr);
    // A handful of loads can slip past forwarding when the store
    // commits first; the overwhelming majority must forward.
    EXPECT_LE(loads->value(), 10u);
}

TEST(OooCore, DrainsAndStops)
{
    CoreRig rig;
    VecStream s(independent(10));
    auto r = rig.core.run(s, 1u << 30);
    EXPECT_EQ(r.instructions, 10u);
    // Run again with an empty stream: nothing more commits.
    VecStream empty({});
    auto r2 = rig.core.run(empty, 1u << 30);
    EXPECT_EQ(r2.instructions, 10u);
}

TEST(OooParams, ExecLatencies)
{
    EXPECT_EQ(OooParams::execLatency(OpClass::IntAlu), 1u);
    EXPECT_EQ(OooParams::execLatency(OpClass::IntMul), 3u);
    EXPECT_EQ(OooParams::execLatency(OpClass::FpAlu), 4u);
    EXPECT_EQ(OooParams::execLatency(OpClass::Branch), 1u);
}

} // namespace
} // namespace drisim
