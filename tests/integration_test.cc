/**
 * @file
 * End-to-end behavioural tests reproducing the paper's qualitative
 * claims on the full stack (workload -> OoO core -> hierarchy ->
 * DRI -> energy accounting).
 */

#include <gtest/gtest.h>

#include "energy/accounting.hh"
#include "harness/runner.hh"
#include "harness/sweep.hh"

namespace drisim
{
namespace
{

RunConfig
config(InstCount instrs = 2 * 1000 * 1000)
{
    RunConfig c;
    c.maxInstrs = instrs;
    return c;
}

DriParams
driFor(const RunOutput &conv, const RunConfig &cfg,
       std::uint64_t sizeBound, double missFactor)
{
    DriParams p;
    p.sizeBoundBytes = sizeBound;
    p.senseInterval = 100000;
    const double intervals = static_cast<double>(cfg.maxInstrs) /
                             static_cast<double>(p.senseInterval);
    p.missBound = std::max<std::uint64_t>(
        16, static_cast<std::uint64_t>(
                missFactor *
                static_cast<double>(conv.meas.l1iMisses) /
                intervals));
    return p;
}

TEST(Integration, ConventionalMissRatesAreLowAcrossTheSuite)
{
    // Paper Section 5.3: conventional i-cache miss rates < 1% for
    // all benchmarks. Our short runs over-weight cold misses, so
    // run a longer horizon here and allow a modest margin.
    for (const auto &b : specSuite()) {
        const auto conv =
            runConventional(b, config(4 * 1000 * 1000));
        EXPECT_LT(conv.meas.missRate(), 0.012) << b.name;
    }
}

TEST(Integration, Class1ShrinksToTheBoundWithTinySlowdown)
{
    // Paper: applu/compress/li/mgrid/swim "primarily stay at the
    // minimum size allowed by the size-bound". Size-bounds are the
    // benchmark's best-case values (>= the tight-loop footprint).
    const std::pair<const char *, std::uint64_t> cases[] = {
        {"applu", 2048}, {"li", 4096}, {"mgrid", 2048}};
    for (const auto &[name, size_bound] : cases) {
        const auto &b = findBenchmark(name);
        const RunConfig cfg = config();
        const auto conv = runConventional(b, cfg);
        const auto dri =
            runDri(b, cfg, driFor(conv, cfg, size_bound, 8.0));
        const auto cmp = compareRuns(EnergyConstants::paper(),
                                     conv.meas, dri.meas);
        EXPECT_LT(cmp.averageSizeFraction(), 0.35) << name;
        EXPECT_LT(cmp.slowdownPercent(), 5.0) << name;
        EXPECT_LT(cmp.relativeEnergyDelay(), 0.5) << name;
    }
}

TEST(Integration, FppppCannotDownsizeWithoutPain)
{
    // Paper: "fpppp requires the full-sized i-cache, so reducing
    // the size dramatically increases the miss rate."
    const auto &b = findBenchmark("fpppp");
    const RunConfig cfg = config();
    const auto conv = runConventional(b, cfg);

    // Forced downsizing (high miss-bound): large slowdown.
    const auto forced =
        runDri(b, cfg, driFor(conv, cfg, 1024, 200.0));
    const auto cmp_forced = compareRuns(EnergyConstants::paper(),
                                        conv.meas, forced.meas);
    EXPECT_GT(cmp_forced.slowdownPercent(), 5.0);

    // With the size-bound at 64K (the paper's fpppp setting),
    // behaviour is identical to conventional.
    const auto fixed =
        runDri(b, cfg, driFor(conv, cfg, 64 * 1024, 2.0));
    const auto cmp_fixed = compareRuns(EnergyConstants::paper(),
                                       conv.meas, fixed.meas);
    EXPECT_NEAR(cmp_fixed.averageSizeFraction(), 1.0, 1e-9);
    EXPECT_NEAR(cmp_fixed.slowdownPercent(), 0.0, 0.1);
}

TEST(Integration, PhasedBenchmarkTracksItsPhases)
{
    // hydro2d: big init phase then tiny loops; the DRI cache must
    // end small but have spent time large (fraction between the
    // extremes, well below 1).
    const auto &b = findBenchmark("hydro2d");
    const RunConfig cfg = config(3 * 1000 * 1000);
    const auto conv = runConventional(b, cfg);
    const auto dri = runDri(b, cfg, driFor(conv, cfg, 1024, 8.0));
    EXPECT_LT(dri.meas.avgActiveFraction, 0.8);
    EXPECT_GT(dri.resizes, 4u);
}

TEST(Integration, HigherAssociativityEncouragesDownsizing)
{
    // Paper Section 5.5 / Figure 6: 4-way DRI absorbs conflict
    // misses and reaches smaller sizes on conflict-prone programs.
    // Size-bound above the loop footprint so conflicts (not
    // capacity) dominate the residual misses.
    const auto &b = findBenchmark("swim");
    RunConfig cfg = config();
    const auto conv_dm = runConventional(b, cfg);

    DriParams dm = driFor(conv_dm, cfg, 4096, 8.0);
    const auto dri_dm = runDri(b, cfg, dm);

    RunConfig cfg4 = cfg;
    cfg4.hier.l1i.assoc = 4;
    // Warm comparison baseline for the 4-way geometry.
    const auto conv_4w = runConventional(b, cfg4);
    EXPECT_LE(conv_4w.meas.missRate(), conv_dm.meas.missRate());
    DriParams fourway = dm;
    fourway.assoc = 4;
    const auto dri_4w = runDri(b, cfg4, fourway);

    EXPECT_LE(dri_4w.meas.avgActiveFraction,
              dri_dm.meas.avgActiveFraction + 0.02);
    EXPECT_LT(dri_4w.meas.missRate(),
              dri_dm.meas.missRate() + 0.0005);
}

TEST(Integration, LargerCacheGivesLargerRelativeReduction)
{
    // Paper Section 5.5: the 128K cache downsizes to the same
    // absolute magnitude, halving the *fraction*.
    const auto &b = findBenchmark("compress");
    RunConfig cfg64 = config();
    const auto conv64 = runConventional(b, cfg64);
    DriParams p64 = driFor(conv64, cfg64, 1024, 8.0);
    const auto dri64 = runDri(b, cfg64, p64);

    RunConfig cfg128 = cfg64;
    cfg128.hier.l1i.sizeBytes = 128 * 1024;
    const auto conv128 = runConventional(b, cfg128);
    EXPECT_LE(conv128.meas.missRate(), conv64.meas.missRate() + 1e-4);
    DriParams p128 = p64;
    p128.sizeBytes = 128 * 1024;
    const auto dri128 = runDri(b, cfg128, p128);

    EXPECT_LT(dri128.meas.avgActiveFraction,
              dri64.meas.avgActiveFraction);
}

TEST(Integration, MissRateStaysNearMissBound)
{
    // Paper: "tight control over the miss rate ... close to a
    // preset value". The effective DRI miss rate must stay within
    // the same order as the bound, not explode past it.
    const auto &b = findBenchmark("ijpeg");
    const RunConfig cfg = config();
    const auto conv = runConventional(b, cfg);
    DriParams p = driFor(conv, cfg, 1024, 8.0);
    const auto dri = runDri(b, cfg, p);

    const double intervals =
        static_cast<double>(cfg.maxInstrs) /
        static_cast<double>(p.senseInterval);
    const double bound_rate =
        static_cast<double>(p.missBound) * intervals /
        static_cast<double>(dri.meas.l1iAccesses);
    // Effective rate within ~4x of the configured bound's rate.
    EXPECT_LT(dri.meas.missRate(), 4.0 * bound_rate + 0.002);
}

TEST(Integration, ExtraDynamicEnergyIsSmall)
{
    // Paper Section 5.3: "the energy-delay products' dynamic
    // component is small for all the benchmarks".
    for (const char *name : {"applu", "ijpeg"}) {
        const auto &b = findBenchmark(name);
        const RunConfig cfg = config();
        const auto conv = runConventional(b, cfg);
        const auto dri =
            runDri(b, cfg, driFor(conv, cfg, 1024, 8.0));
        const auto cmp = compareRuns(EnergyConstants::paper(),
                                     conv.meas, dri.meas);
        EXPECT_LT(cmp.relativeEdDynamic(),
                  0.35 * cmp.relativeEnergyDelay())
            << name;
    }
}

TEST(Integration, PairedRunsSeeIdenticalInstructionStreams)
{
    const auto &b = findBenchmark("m88ksim");
    const RunConfig cfg = config(500 * 1000);
    const auto conv = runConventional(b, cfg);
    DriParams p;
    const auto dri = runDri(b, cfg, p);
    EXPECT_EQ(conv.meas.instructions, dri.meas.instructions);
    // Same fetch stream: access counts match when no resizing
    // splits fetch groups differently... accesses are per block
    // transition, independent of the cache, so they must be equal.
    EXPECT_EQ(conv.meas.l1iAccesses, dri.meas.l1iAccesses);
}

} // namespace
} // namespace drisim
