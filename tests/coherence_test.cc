/**
 * @file
 * MSI coherence tests (mem/directory.hh): sparse-directory
 * allocation and deterministic LRU capacity eviction, the
 * controller's probe routing and per-core attribution, the
 * Cache/PolicyCacheBase client behaviour (dirty flush, granule
 * spanning, drowsy wake charging, decay refetch accounting), the
 * checkpoint v3 layout negotiation, and a TSan-targeted check that
 * independent controllers share no hidden mutable state (this file
 * is labelled `concurrency`; see CMakeLists.txt).
 */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "mem/cache.hh"
#include "mem/directory.hh"
#include "mem/tag_store.hh"
#include "policy/decay_policy.hh"
#include "policy/drowsy_policy.hh"
#include "sim/checkpoint.hh"
#include "stats/stats.hh"

namespace drisim
{
namespace
{

constexpr unsigned kGranule = 64;

CoherenceConfig
smallConfig()
{
    CoherenceConfig cfg;
    cfg.enabled = true;
    cfg.directoryEntries = 16;
    cfg.msgLatency = 3;
    return cfg;
}

/** Probe recorder with a scriptable reply. */
struct FakeClient : CoherenceClient
{
    struct Probe
    {
        Addr addr;
        unsigned bytes;
        bool invalidate;
    };
    std::vector<Probe> probes;
    CoherenceProbe reply;

    CoherenceProbe coherenceInvalidate(Addr addr,
                                       unsigned bytes) override
    {
        probes.push_back({addr, bytes, true});
        return reply;
    }
    CoherenceProbe coherenceDowngrade(Addr addr,
                                      unsigned bytes) override
    {
        probes.push_back({addr, bytes, false});
        return reply;
    }
};

/** Minimal requester-side adapter for wiring real caches to a
 *  controller without a full SharedL2Bus. */
struct AgentAdapter : CoherenceAgent
{
    CoherenceController *ctrl = nullptr;

    Cycles coherentFill(unsigned core, Addr addr,
                        bool exclusive) override
    {
        return ctrl->fill(core, addr, exclusive);
    }
    Cycles coherentUpgrade(unsigned core, Addr addr) override
    {
        return ctrl->upgrade(core, addr);
    }
};

CacheParams
l1Params(const std::string &name)
{
    CacheParams p;
    p.name = name;
    p.sizeBytes = 1024;
    p.assoc = 1;
    p.blockBytes = 32;
    p.hitLatency = 1;
    return p;
}

// ---------------------------------------------------------------
// SparseDirectory
// ---------------------------------------------------------------

TEST(SparseDirectory, AllocateFindAndFreeSlots)
{
    SparseDirectory dir(4);
    SparseDirectory::Entry victim;
    SparseDirectory::Entry &a = dir.allocate(0x10, &victim);
    EXPECT_FALSE(victim.valid);
    a.sharers = 0b01;
    dir.allocate(0x20, &victim);
    EXPECT_FALSE(victim.valid);

    EXPECT_EQ(dir.entriesInUse(), 2u);
    EXPECT_EQ(dir.allocations(), 2u);
    EXPECT_EQ(dir.capacityEvictions(), 0u);
    ASSERT_NE(dir.find(0x10), nullptr);
    EXPECT_EQ(dir.find(0x10)->sharers, 0b01u);
    EXPECT_EQ(dir.find(0x30), nullptr);
}

TEST(SparseDirectory, CapacityEvictionPicksLeastRecentlyTouched)
{
    SparseDirectory dir(2);
    SparseDirectory::Entry victim;
    SparseDirectory::Entry &a = dir.allocate(0xA, &victim);
    SparseDirectory::Entry &b = dir.allocate(0xB, &victim);
    b.sharers = 0b11;
    b.owner = 1;
    dir.touch(a); // A is now MRU; B becomes the LRU victim.

    dir.allocate(0xC, &victim);
    ASSERT_TRUE(victim.valid);
    EXPECT_EQ(victim.block, 0xBu);
    // The victim's prior holders ride out so the caller can
    // invalidate them.
    EXPECT_EQ(victim.sharers, 0b11u);
    EXPECT_EQ(victim.owner, 1);
    EXPECT_EQ(dir.capacityEvictions(), 1u);
    EXPECT_EQ(dir.find(0xB), nullptr);
    EXPECT_NE(dir.find(0xA), nullptr);
    EXPECT_NE(dir.find(0xC), nullptr);
    EXPECT_EQ(dir.entriesInUse(), 2u);
}

// ---------------------------------------------------------------
// CoherenceController over fake clients
// ---------------------------------------------------------------

TEST(CoherenceController, ReadSharersNeverProbeEachOther)
{
    CoherenceController ctrl(smallConfig(), 2, kGranule);
    FakeClient c0, c1;
    ctrl.addClient(0, &c0);
    ctrl.addClient(1, &c1);

    EXPECT_EQ(ctrl.fill(0, 0x1000, false), 0u);
    EXPECT_EQ(ctrl.fill(1, 0x1000, false), 0u);
    EXPECT_TRUE(c0.probes.empty());
    EXPECT_TRUE(c1.probes.empty());
    EXPECT_EQ(ctrl.invalidationsSent(), 0u);
    EXPECT_EQ(ctrl.downgradesSent(), 0u);
    EXPECT_EQ(ctrl.coreStats(0).messageCycles, 0u);
}

TEST(CoherenceController, SharedFillDowngradesForeignModifiedOwner)
{
    CoherenceController ctrl(smallConfig(), 2, kGranule);
    FakeClient c0, c1;
    c0.reply = {/*extraCycles=*/2, /*wasPresent=*/true,
                /*wasDirty=*/true};
    ctrl.addClient(0, &c0);
    ctrl.addClient(1, &c1);

    // Core 0 takes the block Modified: nobody else holds it, so no
    // probes and no latency.
    EXPECT_EQ(ctrl.fill(0, 0x1000, true), 0u);

    // Core 1 reads it: the owner is snooped (msgLatency) and its
    // wake stall (extraCycles) rides the requester's path.
    const Cycles lat = ctrl.fill(1, 0x1000, false);
    EXPECT_EQ(lat, 3u + 2u);
    ASSERT_EQ(c0.probes.size(), 1u);
    EXPECT_FALSE(c0.probes[0].invalidate);
    EXPECT_EQ(c0.probes[0].addr, 0x1000u / kGranule * kGranule);
    EXPECT_EQ(c0.probes[0].bytes, kGranule);

    EXPECT_EQ(ctrl.coreStats(0).downgradesReceived, 1u);
    EXPECT_EQ(ctrl.coreStats(0).coherenceWritebacks, 1u);
    EXPECT_EQ(ctrl.coreStats(1).messageCycles, 3u);
    EXPECT_EQ(ctrl.downgradesSent(), 1u);
    EXPECT_EQ(ctrl.invalidationsSent(), 0u);

    // A second read by core 1 finds no foreign owner: silent.
    EXPECT_EQ(ctrl.fill(1, 0x1000, false), 0u);
    EXPECT_EQ(c0.probes.size(), 1u);
}

TEST(CoherenceController, UpgradeInvalidatesSharersSparingRequester)
{
    CoherenceController ctrl(smallConfig(), 3, kGranule);
    FakeClient c0, c1, c2;
    for (FakeClient *c : {&c0, &c1, &c2})
        c->reply = {0, true, false};
    ctrl.addClient(0, &c0);
    ctrl.addClient(1, &c1);
    ctrl.addClient(2, &c2);

    ctrl.fill(0, 0x2000, false);
    ctrl.fill(1, 0x2000, false);
    ctrl.fill(2, 0x2000, false);

    // Core 1 writes its Shared copy: cores 0 and 2 are invalidated,
    // core 1 itself is spared.
    const Cycles lat = ctrl.upgrade(1, 0x2000);
    EXPECT_EQ(lat, 2u * 3u);
    ASSERT_EQ(c0.probes.size(), 1u);
    EXPECT_TRUE(c0.probes[0].invalidate);
    ASSERT_EQ(c2.probes.size(), 1u);
    EXPECT_TRUE(c2.probes[0].invalidate);
    EXPECT_TRUE(c1.probes.empty());

    EXPECT_EQ(ctrl.coreStats(0).invalidationsReceived, 1u);
    EXPECT_EQ(ctrl.coreStats(2).invalidationsReceived, 1u);
    EXPECT_EQ(ctrl.coreStats(1).invalidationsCaused, 2u);
    EXPECT_EQ(ctrl.coreStats(1).messageCycles, 2u * 3u);
    EXPECT_EQ(ctrl.invalidationsSent(), 2u);
}

TEST(CoherenceController, ExclusiveFillInvalidatesPriorHolders)
{
    CoherenceController ctrl(smallConfig(), 2, kGranule);
    FakeClient c0, c1;
    c0.reply = {0, true, true}; // dirty copy flushed on the probe
    ctrl.addClient(0, &c0);
    ctrl.addClient(1, &c1);

    ctrl.fill(0, 0x3000, true);
    // Core 1's store miss takes the block Modified: the old owner
    // is invalidated (not merely downgraded).
    const Cycles lat = ctrl.fill(1, 0x3000, true);
    EXPECT_EQ(lat, 3u);
    ASSERT_EQ(c0.probes.size(), 1u);
    EXPECT_TRUE(c0.probes[0].invalidate);
    EXPECT_EQ(ctrl.coreStats(0).invalidationsReceived, 1u);
    EXPECT_EQ(ctrl.coreStats(0).coherenceWritebacks, 1u);
    EXPECT_EQ(ctrl.coreStats(1).invalidationsCaused, 1u);
}

TEST(CoherenceController, DirectoryEvictionInvalidatesEveryHolder)
{
    CoherenceConfig cfg = smallConfig();
    cfg.directoryEntries = 1;
    CoherenceController ctrl(cfg, 2, kGranule);
    FakeClient c0, c1;
    c0.reply = {0, true, false};
    c1.reply = {0, true, false};
    ctrl.addClient(0, &c0);
    ctrl.addClient(1, &c1);

    ctrl.fill(0, 0x1000, false);
    ctrl.fill(1, 0x1000, false);

    // Core 0 touches a different granule: the single entry is
    // capacity-evicted and BOTH prior holders are invalidated —
    // including the requester, whose tracked copy is of the old
    // block (the conservative sparse-directory behaviour).
    const Cycles lat = ctrl.fill(0, 0x8000, false);
    EXPECT_EQ(lat, 2u * 3u);
    ASSERT_EQ(c0.probes.size(), 1u);
    EXPECT_TRUE(c0.probes[0].invalidate);
    EXPECT_EQ(c0.probes[0].addr, 0x1000u);
    ASSERT_EQ(c1.probes.size(), 1u);
    EXPECT_TRUE(c1.probes[0].invalidate);
    EXPECT_EQ(ctrl.directory().capacityEvictions(), 1u);
    EXPECT_EQ(ctrl.coreStats(0).invalidationsReceived, 1u);
    EXPECT_EQ(ctrl.coreStats(1).invalidationsReceived, 1u);
}

TEST(CoherenceController, AbsentCopiesAreNotCountedAsInvalidations)
{
    // A probe that finds nothing (the L1 evicted the line on its
    // own) must not inflate the attribution counters.
    CoherenceController ctrl(smallConfig(), 2, kGranule);
    FakeClient c0, c1;
    c0.reply = {0, /*wasPresent=*/false, false};
    ctrl.addClient(0, &c0);
    ctrl.addClient(1, &c1);

    ctrl.fill(0, 0x1000, false);
    ctrl.upgrade(1, 0x1000);
    EXPECT_EQ(c0.probes.size(), 1u);
    EXPECT_EQ(ctrl.coreStats(0).invalidationsReceived, 0u);
    EXPECT_EQ(ctrl.coreStats(1).invalidationsCaused, 0u);
    // The message was still sent and charged.
    EXPECT_EQ(ctrl.coreStats(1).messageCycles, 3u);
}

// ---------------------------------------------------------------
// Cache as a coherence client
// ---------------------------------------------------------------

TEST(CacheClient, InvalidateDropsEveryEnclosedLineAndFlushesDirty)
{
    stats::StatGroup root("t");
    Cache c(l1Params("l1d"), nullptr, &root);
    c.access(0x100, AccessType::Store);     // dirty line
    c.access(0x120, AccessType::InstFetch); // clean second line

    // One 64-byte granule covers both 32-byte L1 lines.
    const CoherenceProbe p = c.coherenceInvalidate(0x100, kGranule);
    EXPECT_TRUE(p.wasPresent);
    EXPECT_TRUE(p.wasDirty);
    EXPECT_EQ(c.coherenceInvalidations(), 2u);
    EXPECT_EQ(c.coherenceWritebacks(), 1u);
    EXPECT_FALSE(c.access(0x100, AccessType::Load).hit);
    EXPECT_FALSE(c.access(0x120, AccessType::InstFetch).hit);
}

TEST(CacheClient, DowngradeKeepsTheLineReadable)
{
    stats::StatGroup root("t");
    Cache c(l1Params("l1d"), nullptr, &root);
    c.access(0x100, AccessType::Store);

    const CoherenceProbe p = c.coherenceDowngrade(0x100, kGranule);
    EXPECT_TRUE(p.wasPresent);
    EXPECT_TRUE(p.wasDirty);
    EXPECT_TRUE(c.access(0x100, AccessType::Load).hit);

    // The flush cleared the dirty bit: a second downgrade finds a
    // clean Shared copy.
    const CoherenceProbe q = c.coherenceDowngrade(0x100, kGranule);
    EXPECT_TRUE(q.wasPresent);
    EXPECT_FALSE(q.wasDirty);
    EXPECT_EQ(c.coherenceWritebacks(), 1u);
}

TEST(CacheClient, ProbeOfAnAbsentGranuleIsSilent)
{
    stats::StatGroup root("t");
    Cache c(l1Params("l1d"), nullptr, &root);
    c.access(0x100, AccessType::Store);
    const CoherenceProbe p = c.coherenceInvalidate(0x800, kGranule);
    EXPECT_FALSE(p.wasPresent);
    EXPECT_FALSE(p.wasDirty);
    EXPECT_EQ(c.coherenceInvalidations(), 0u);
    EXPECT_TRUE(c.access(0x100, AccessType::Load).hit);
}

TEST(CacheClient, EndToEndMsiOverTheController)
{
    stats::StatGroup root("t");
    CoherenceController ctrl(smallConfig(), 2, kGranule);
    AgentAdapter agent;
    agent.ctrl = &ctrl;

    Cache d0(l1Params("l1d0"), nullptr, &root);
    Cache d1(l1Params("l1d1"), nullptr, &root);
    d0.setCoherence(&agent, 0);
    d1.setCoherence(&agent, 1);
    ctrl.addClient(0, &d0);
    ctrl.addClient(1, &d1);

    // Core 0 writes: exclusive fill, no other holders.
    d0.access(0x1000, AccessType::Store);
    EXPECT_EQ(ctrl.coreStats(0).messageCycles, 0u);

    // Core 1 reads the same block: core 0's Modified copy is
    // downgraded and its dirty data flushed.
    d1.access(0x1000, AccessType::Load);
    EXPECT_EQ(d0.coherenceDowngrades(), 1u);
    EXPECT_EQ(d0.coherenceWritebacks(), 1u);
    EXPECT_EQ(ctrl.coreStats(0).downgradesReceived, 1u);
    EXPECT_EQ(ctrl.coreStats(1).messageCycles, 3u);
    EXPECT_TRUE(d0.access(0x1000, AccessType::Load).hit);

    // Core 1 now writes its Shared copy: a write upgrade that
    // invalidates core 0.
    d1.access(0x1000, AccessType::Store);
    EXPECT_EQ(d0.coherenceInvalidations(), 1u);
    EXPECT_EQ(ctrl.coreStats(1).invalidationsCaused, 1u);
    EXPECT_FALSE(d0.access(0x1000, AccessType::Load).hit);
}

// ---------------------------------------------------------------
// Leakage policies under coherence probes
// ---------------------------------------------------------------

PolicyConfig
policyConfig(PolicyKind kind)
{
    PolicyConfig pc;
    pc.kind = kind;
    pc.dri.sizeBytes = 1024;
    pc.dri.assoc = 1;
    pc.dri.blockBytes = 32;
    pc.drowsy.drowsyInterval = 1000;
    pc.drowsy.wakeLatency = 2;
    pc.decay.decayInterval = 1000;
    return pc;
}

TEST(DrowsyCoherence, ProbeWakesTheLineAndChargesTheRequester)
{
    stats::StatGroup root("t");
    DrowsyCache c(policyConfig(PolicyKind::Drowsy), nullptr, &root);
    c.access(0x100, AccessType::InstFetch);
    c.onRetire(1000); // drowsy episode: the whole array naps
    // 0x100 with 32B blocks over 32 sets lands in set 8.
    ASSERT_TRUE(c.lineDrowsy(8, 0));

    // The invalidation cannot be answered at the retention voltage:
    // the probe pays the wake before the line is dropped.
    const CoherenceProbe p = c.coherenceInvalidate(0x100, kGranule);
    EXPECT_TRUE(p.wasPresent);
    EXPECT_EQ(p.extraCycles, 2u);

    PolicyActivity act = c.activity();
    EXPECT_EQ(act.coherenceWakes, 1u);
    EXPECT_EQ(act.coherenceInvalidations, 1u);
    EXPECT_GE(act.wakeStallCycles, 2u);
    EXPECT_EQ(act.coherenceRefetches, 0u);

    // Refilling the stolen frame is a directory-forced refetch.
    EXPECT_FALSE(c.access(0x100, AccessType::InstFetch).hit);
    EXPECT_EQ(c.activity().coherenceRefetches, 1u);
}

TEST(DrowsyCoherence, AwakeLinesAnswerProbesForFree)
{
    stats::StatGroup root("t");
    DrowsyCache c(policyConfig(PolicyKind::Drowsy), nullptr, &root);
    c.access(0x100, AccessType::InstFetch); // filled awake
    const CoherenceProbe p = c.coherenceInvalidate(0x100, kGranule);
    EXPECT_TRUE(p.wasPresent);
    EXPECT_EQ(p.extraCycles, 0u);
    EXPECT_EQ(c.activity().coherenceWakes, 0u);
}

TEST(DecayCoherence, InvalidatedFrameRefetchIsCountedNoWakes)
{
    stats::StatGroup root("t");
    DecayCache c(policyConfig(PolicyKind::Decay), nullptr, &root);
    c.access(0x100, AccessType::InstFetch);

    const CoherenceProbe p = c.coherenceInvalidate(0x100, kGranule);
    EXPECT_TRUE(p.wasPresent);
    // Decay keeps live lines at full supply: no wake to charge.
    EXPECT_EQ(p.extraCycles, 0u);
    EXPECT_EQ(c.activity().coherenceWakes, 0u);
    EXPECT_EQ(c.activity().coherenceInvalidations, 1u);

    EXPECT_FALSE(c.access(0x100, AccessType::InstFetch).hit);
    EXPECT_EQ(c.activity().coherenceRefetches, 1u);
}

// ---------------------------------------------------------------
// Checkpoint v3 layout negotiation + controller state round-trip
// ---------------------------------------------------------------

TEST(CheckpointV3, TagStoreRoundTripsCoherenceState)
{
    TagStore a(4, 2);
    a.insert(0, 0x40);
    int way = a.findWay(0, 0x40);
    ASSERT_NE(way, TagStore::kNoWay);
    a.setCoherenceState(0, static_cast<unsigned>(way),
                        CoherenceState::Modified);

    sim::CheckpointWriter w;
    a.snapshotTo(w);

    TagStore b(4, 2);
    sim::CheckpointReader r(w.bytes());
    b.restoreFrom(r);
    EXPECT_EQ(b.coherenceState(0, static_cast<unsigned>(way)),
              CoherenceState::Modified);
}

TEST(CheckpointV3, PreV3TagStoreStreamFailsLoudly)
{
    // A v1/v2 stream began directly with the geometry (numSets_, a
    // small power of two) where v3 puts the layout magic. Restoring
    // such a stream must throw, never misinterpret bytes.
    sim::CheckpointWriter w;
    w.beginSection("tags");
    w.putU64(4); // old layout: numSets_ first
    w.putU64(2);
    w.putU64(0);
    for (int i = 0; i < 8; ++i) {
        w.putU64(kInvalidAddr);
        w.putBool(false);
        w.putBool(false);
        w.putU64(0);
    }
    w.endSection();

    TagStore b(4, 2);
    sim::CheckpointReader r(w.bytes());
    EXPECT_THROW(b.restoreFrom(r), sim::CheckpointError);
}

TEST(CheckpointV3, ControllerRoundTripsDirectoryAndAttribution)
{
    CoherenceController a(smallConfig(), 2, kGranule);
    FakeClient a0, a1;
    a0.reply = {0, true, true};
    a.addClient(0, &a0);
    a.addClient(1, &a1);
    a.fill(0, 0x1000, true);
    a.fill(1, 0x1000, false); // downgrade + flush
    a.fill(1, 0x2000, false);

    sim::CheckpointWriter w;
    a.snapshotTo(w);

    CoherenceController b(smallConfig(), 2, kGranule);
    FakeClient b0, b1;
    b.addClient(0, &b0);
    b.addClient(1, &b1);
    sim::CheckpointReader r(w.bytes());
    b.restoreFrom(r);

    EXPECT_EQ(b.coreStats(0).downgradesReceived, 1u);
    EXPECT_EQ(b.coreStats(0).coherenceWritebacks, 1u);
    EXPECT_EQ(b.coreStats(1).messageCycles, 3u);
    EXPECT_EQ(b.directory().entriesInUse(), 2u);
    EXPECT_EQ(b.directory().allocations(), 2u);

    // The restored directory still remembers the sharer sets: a
    // write upgrade by core 0 probes core 1's restored copy.
    b1.reply = {0, true, false};
    b.upgrade(0, 0x1000);
    ASSERT_EQ(b1.probes.size(), 1u);
    EXPECT_TRUE(b1.probes[0].invalidate);
}

TEST(CheckpointV3, DirectoryRestoreRejectsDifferentCapacity)
{
    SparseDirectory a(8);
    SparseDirectory::Entry victim;
    a.allocate(0x10, &victim);
    sim::CheckpointWriter w;
    a.snapshotTo(w);

    SparseDirectory b(16);
    sim::CheckpointReader r(w.bytes());
    EXPECT_THROW(b.restoreFrom(r), sim::CheckpointError);
}

// ---------------------------------------------------------------
// Concurrency: independent controllers share no hidden state
// ---------------------------------------------------------------

TEST(CoherenceConcurrency, IndependentControllersAreRaceFree)
{
    // Each thread drives its own controller through an identical
    // sharing pattern; every replica must report identical stats.
    // Run under TSan (ctest -L concurrency) this also proves the
    // coherence layer keeps no mutable static state.
    constexpr int kThreads = 4;
    std::vector<std::uint64_t> msgCycles(kThreads, 0);
    std::vector<std::uint64_t> invals(kThreads, 0);
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([t, &msgCycles, &invals] {
            CoherenceConfig cfg;
            cfg.enabled = true;
            cfg.directoryEntries = 8;
            cfg.msgLatency = 3;
            CoherenceController ctrl(cfg, 2, kGranule);
            FakeClient c0, c1;
            c0.reply = {1, true, false};
            c1.reply = {1, true, false};
            ctrl.addClient(0, &c0);
            ctrl.addClient(1, &c1);
            for (Addr a = 0; a < 64 * kGranule; a += kGranule) {
                ctrl.fill(0, a, false);
                ctrl.fill(1, a, false);
                ctrl.upgrade(a % (2 * kGranule) == 0 ? 0 : 1, a);
            }
            msgCycles[t] = ctrl.coreStats(0).messageCycles +
                           ctrl.coreStats(1).messageCycles;
            invals[t] = ctrl.invalidationsSent();
        });
    }
    for (std::thread &th : threads)
        th.join();
    for (int t = 1; t < kThreads; ++t) {
        EXPECT_EQ(msgCycles[t], msgCycles[0]);
        EXPECT_EQ(invals[t], invals[0]);
    }
    EXPECT_GT(invals[0], 0u);
}

} // namespace
} // namespace drisim
