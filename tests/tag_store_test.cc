/**
 * @file
 * TagStore unit tests: lookup, insertion, LRU victims, invalidation.
 */

#include <gtest/gtest.h>

#include "mem/tag_store.hh"

namespace drisim
{
namespace
{

TEST(TagStore, MissThenHit)
{
    TagStore ts(16, 2);
    EXPECT_EQ(ts.findWay(3, 0xABC), TagStore::kNoWay);
    ts.insert(3, 0xABC);
    EXPECT_NE(ts.findWay(3, 0xABC), TagStore::kNoWay);
    EXPECT_EQ(ts.findWay(4, 0xABC), TagStore::kNoWay);
}

TEST(TagStore, FillsInvalidWaysFirst)
{
    TagStore ts(4, 4);
    for (Addr a = 0; a < 4; ++a) {
        CacheBlk evicted = ts.insert(0, 0x100 + a);
        EXPECT_FALSE(evicted.valid);
    }
    EXPECT_EQ(ts.validCount(), 4u);
}

TEST(TagStore, LruEvictsLeastRecentlyTouched)
{
    TagStore ts(1, 2);
    ts.insert(0, 0xA);
    ts.insert(0, 0xB);
    // Touch A so B becomes LRU.
    ts.touch(0, static_cast<unsigned>(ts.findWay(0, 0xA)));
    CacheBlk evicted = ts.insert(0, 0xC);
    EXPECT_TRUE(evicted.valid);
    EXPECT_EQ(evicted.blockAddr, 0xBu);
    EXPECT_NE(ts.findWay(0, 0xA), TagStore::kNoWay);
    EXPECT_EQ(ts.findWay(0, 0xB), TagStore::kNoWay);
}

TEST(TagStore, DirectMappedAlwaysReplaces)
{
    TagStore ts(8, 1);
    ts.insert(2, 0x10);
    CacheBlk evicted = ts.insert(2, 0x20);
    EXPECT_TRUE(evicted.valid);
    EXPECT_EQ(evicted.blockAddr, 0x10u);
}

TEST(TagStore, DirtyBitSurvivesUntilEviction)
{
    TagStore ts(2, 1);
    ts.insert(0, 0x1);
    ts.markDirty(0, 0);
    CacheBlk evicted = ts.insert(0, 0x2);
    EXPECT_TRUE(evicted.dirty);
}

TEST(TagStore, InvalidateSingle)
{
    TagStore ts(4, 2);
    ts.insert(1, 0x5);
    int way = ts.findWay(1, 0x5);
    ASSERT_NE(way, TagStore::kNoWay);
    ts.invalidate(1, static_cast<unsigned>(way));
    EXPECT_EQ(ts.findWay(1, 0x5), TagStore::kNoWay);
    EXPECT_EQ(ts.validCount(), 0u);
}

TEST(TagStore, InvalidateSetAndAll)
{
    TagStore ts(4, 2);
    for (std::uint64_t s = 0; s < 4; ++s)
        ts.insert(s, 0x100 + s);
    ts.invalidateSet(2);
    EXPECT_EQ(ts.validCount(), 3u);
    ts.invalidateAll();
    EXPECT_EQ(ts.validCount(), 0u);
}

TEST(TagStore, RandomPolicyStaysInBounds)
{
    TagStore ts(2, 4, ReplPolicy::Random);
    for (Addr a = 0; a < 100; ++a)
        ts.insert(0, a);
    EXPECT_EQ(ts.validCount(), 4u);
}

} // namespace
} // namespace drisim
