/**
 * @file
 * Unit tests for the statistics package.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "stats/stats.hh"

namespace drisim::stats
{
namespace
{

TEST(Scalar, CountsAndResets)
{
    StatGroup g("g");
    Scalar s(&g, "events", "event count");
    EXPECT_EQ(s.value(), 0u);
    ++s;
    s += 41;
    EXPECT_EQ(s.value(), 42u);
    s.reset();
    EXPECT_EQ(s.value(), 0u);
}

TEST(Scalar, SetOverwrites)
{
    StatGroup g("g");
    Scalar s(&g, "x", "");
    s.set(100);
    EXPECT_EQ(s.value(), 100u);
}

TEST(Average, Mean)
{
    StatGroup g("g");
    Average a(&g, "avg", "");
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    a.sample(1.0);
    a.sample(3.0);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);
    a.sample(2.0, 2);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);
    EXPECT_EQ(a.samples(), 4u);
}

TEST(Distribution, Buckets)
{
    StatGroup g("g");
    Distribution d(&g, "d", "", 0.0, 10.0, 5);
    d.sample(-1.0);
    d.sample(0.5);
    d.sample(2.5);
    d.sample(9.99);
    d.sample(10.0);
    d.sample(50.0);
    EXPECT_EQ(d.underflows(), 1u);
    EXPECT_EQ(d.overflows(), 2u);
    EXPECT_EQ(d.bucketCount(0), 1u);
    EXPECT_EQ(d.bucketCount(1), 1u);
    EXPECT_EQ(d.bucketCount(4), 1u);
    EXPECT_EQ(d.samples(), 6u);
}

TEST(Distribution, WeightedSamplesAndMean)
{
    StatGroup g("g");
    Distribution d(&g, "d", "", 0.0, 4.0, 4);
    d.sample(1.0, 3);
    d.sample(3.0, 1);
    EXPECT_EQ(d.samples(), 4u);
    EXPECT_DOUBLE_EQ(d.mean(), 1.5);
}

TEST(StatGroup, DumpHierarchy)
{
    StatGroup root("sim");
    StatGroup child(&root, "cache");
    Scalar hits(&child, "hits", "cache hits");
    hits += 7;

    std::ostringstream os;
    root.dump(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("sim.cache.hits 7"), std::string::npos);
    EXPECT_NE(out.find("# cache hits"), std::string::npos);
}

TEST(StatGroup, ResetAllRecurses)
{
    StatGroup root("sim");
    StatGroup child(&root, "c");
    Scalar a(&root, "a", "");
    Scalar b(&child, "b", "");
    a += 1;
    b += 2;
    root.resetAll();
    EXPECT_EQ(a.value(), 0u);
    EXPECT_EQ(b.value(), 0u);
}

TEST(StatGroup, FindByName)
{
    StatGroup g("g");
    Scalar s(&g, "needle", "");
    EXPECT_EQ(g.find("needle"), &s);
    EXPECT_EQ(g.find("missing"), nullptr);
}

} // namespace
} // namespace drisim::stats
