/**
 * @file
 * Trace-generator tests: stream consistency (the invariant that
 * each instruction's nextPc is the next instruction's pc),
 * determinism, op mix, phase cycling, footprint.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "workload/generator.hh"
#include "workload/program.hh"

namespace drisim
{
namespace
{

ProgramSpec
spec(std::uint64_t codeBytes = 8192, InstCount dynInstrs = 50000)
{
    ProgramSpec s;
    s.name = "gen";
    s.seed = 11;
    PhaseSpec p;
    p.name = "main";
    p.codeBytes = codeBytes;
    p.dynInstrs = dynInstrs;
    s.phases = {p};
    return s;
}

TEST(Generator, NextPcChainIsConsistent)
{
    // The core invariant of the executed path: instruction i's
    // nextPc is instruction i+1's pc. Fetch modeling depends on it.
    const ProgramImage img = buildProgram(spec());
    TraceGenerator gen(img);
    Instr prev;
    ASSERT_TRUE(gen.next(prev));
    for (int i = 0; i < 200000; ++i) {
        Instr cur;
        ASSERT_TRUE(gen.next(cur));
        ASSERT_EQ(prev.nextPc, cur.pc)
            << "broken chain at instruction " << i;
        prev = cur;
    }
}

TEST(Generator, Deterministic)
{
    const ProgramImage img = buildProgram(spec());
    TraceGenerator a(img);
    TraceGenerator b(img);
    for (int i = 0; i < 50000; ++i) {
        Instr x, y;
        ASSERT_TRUE(a.next(x));
        ASSERT_TRUE(b.next(y));
        ASSERT_EQ(x.pc, y.pc);
        ASSERT_EQ(static_cast<int>(x.op), static_cast<int>(y.op));
        ASSERT_EQ(x.taken, y.taken);
        ASSERT_EQ(x.memAddr, y.memAddr);
    }
}

TEST(Generator, ResetReplaysSameStream)
{
    const ProgramImage img = buildProgram(spec());
    TraceGenerator gen(img);
    std::vector<Addr> first;
    Instr ins;
    for (int i = 0; i < 10000; ++i) {
        gen.next(ins);
        first.push_back(ins.pc);
    }
    gen.reset();
    for (int i = 0; i < 10000; ++i) {
        gen.next(ins);
        ASSERT_EQ(ins.pc, first[static_cast<size_t>(i)]);
    }
}

TEST(Generator, ControlOpsHaveConsistentTargets)
{
    const ProgramImage img = buildProgram(spec());
    TraceGenerator gen(img);
    Instr ins;
    for (int i = 0; i < 100000; ++i) {
        ASSERT_TRUE(gen.next(ins));
        if (isControl(ins.op)) {
            if (!ins.taken) {
                EXPECT_EQ(ins.nextPc, ins.pc + kInstrBytes);
            }
            if (ins.op != OpClass::Branch) {
                EXPECT_TRUE(ins.taken);
            }
        } else {
            EXPECT_EQ(ins.nextPc, ins.pc + kInstrBytes);
        }
    }
}

TEST(Generator, OpMixApproximatesSpec)
{
    ProgramSpec s = spec(8192, 1u << 30);
    s.phases[0].mix.loadFrac = 0.25;
    s.phases[0].mix.storeFrac = 0.10;
    s.phases[0].mix.fpFrac = 0.20;
    const ProgramImage img = buildProgram(s);
    TraceGenerator gen(img);
    std::map<OpClass, int> counts;
    const int n = 200000;
    Instr ins;
    for (int i = 0; i < n; ++i) {
        gen.next(ins);
        counts[ins.op]++;
    }
    const double body = static_cast<double>(
        n - counts[OpClass::Branch] - counts[OpClass::Jump] -
        counts[OpClass::Call] - counts[OpClass::Return]);
    EXPECT_NEAR(counts[OpClass::Load] / body, 0.25, 0.03);
    EXPECT_NEAR(counts[OpClass::Store] / body, 0.10, 0.03);
    EXPECT_NEAR(counts[OpClass::FpAlu] / body, 0.20, 0.03);
    // Branches exist in sensible volume (loops + hammocks).
    EXPECT_GT(counts[OpClass::Branch], n / 40);
    EXPECT_GT(counts[OpClass::Call], 0);
    EXPECT_GT(counts[OpClass::Return], 0);
}

TEST(Generator, ExecutedFootprintMatchesPhaseCode)
{
    const std::uint64_t code = 8192;
    const ProgramImage img = buildProgram(spec(code, 1u << 30));
    TraceGenerator gen(img);
    std::set<Addr> blocks;
    Instr ins;
    for (int i = 0; i < 300000; ++i) {
        gen.next(ins);
        blocks.insert(ins.pc / 32);
    }
    const double touched =
        static_cast<double>(blocks.size()) * 32.0;
    // Executed footprint within 25% of the declared code size.
    EXPECT_NEAR(touched / static_cast<double>(code), 1.0, 0.25);
}

TEST(Generator, PhasesCycleAndJumpBetweenRegions)
{
    ProgramSpec s = spec(4096, 20000);
    PhaseSpec p2 = s.phases[0];
    p2.name = "p2";
    p2.codeBytes = 2048;
    p2.dynInstrs = 10000;
    s.phases.push_back(p2);
    const ProgramImage img = buildProgram(s);

    TraceGenerator gen(img);
    Instr ins;
    std::vector<size_t> seen;
    size_t last = 99;
    for (int i = 0; i < 120000; ++i) {
        gen.next(ins);
        if (gen.currentPhase() != last) {
            last = gen.currentPhase();
            seen.push_back(last);
        }
    }
    // 0 -> 1 -> 0 -> 1 ... cycling.
    ASSERT_GE(seen.size(), 4u);
    EXPECT_EQ(seen[0], 0u);
    EXPECT_EQ(seen[1], 1u);
    EXPECT_EQ(seen[2], 0u);
    EXPECT_EQ(seen[3], 1u);
}

TEST(Generator, PhaseDurationsRoughlyHonoured)
{
    ProgramSpec s = spec(4096, 30000);
    PhaseSpec p2 = s.phases[0];
    p2.name = "p2";
    p2.dynInstrs = 10000;
    s.phases.push_back(p2);
    const ProgramImage img = buildProgram(s);

    TraceGenerator gen(img);
    Instr ins;
    InstCount in_p0 = 0;
    InstCount in_p1 = 0;
    for (int i = 0; i < 200000; ++i) {
        gen.next(ins);
        (gen.currentPhase() == 0 ? in_p0 : in_p1)++;
    }
    const double ratio = static_cast<double>(in_p0) /
                         static_cast<double>(in_p1);
    EXPECT_NEAR(ratio, 3.0, 0.2);
}

TEST(Generator, MemoryAddressesStayInDataRegion)
{
    const ProgramImage img = buildProgram(spec());
    TraceGenerator gen(img);
    const Phase &ph = img.phases[0];
    Instr ins;
    for (int i = 0; i < 100000; ++i) {
        gen.next(ins);
        if (isMem(ins.op)) {
            EXPECT_GE(ins.memAddr, ph.dataBase);
            EXPECT_LT(ins.memAddr, ph.dataBase + ph.dataBytes);
        }
    }
}

} // namespace
} // namespace drisim
