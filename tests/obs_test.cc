/**
 * @file
 * Observability-layer tests (src/obs/): the probe registry, the
 * trace-event writer's canonical ordering and strict reader, the
 * interval time-series recorder's CSV canonicalization, and the
 * two locks the layer promises:
 *
 *  - with DRISIM_JSON_WALL_SECONDS pinned, trace and metrics output
 *    is byte-identical at --jobs 1 vs --jobs 4 (the span/sample
 *    *set*, not the scheduling, determines the bytes);
 *  - the interval CSV reconstructs the DRI active-size trajectory
 *    and the drowsy wake events per interval — the per-interval
 *    deltas integrate back to the end-of-run aggregates.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "harness/executor.hh"
#include "harness/runner.hh"
#include "obs/metrics.hh"
#include "obs/probe.hh"
#include "obs/report.hh"
#include "obs/trace.hh"
#include "workload/spec_suite.hh"

namespace drisim
{
namespace
{

/** Pin the wall clock for the enclosing scope (and reset the global
 *  sinks, which latch the pin at construction). */
class PinnedClock
{
  public:
    PinnedClock() { setenv("DRISIM_JSON_WALL_SECONDS", "0", 1); }
    ~PinnedClock()
    {
        unsetenv("DRISIM_JSON_WALL_SECONDS");
        obs::resetTrace();
        obs::resetMetrics();
    }
};

std::string
tempPath(const char *name)
{
    const char *dir = std::getenv("TMPDIR");
    return std::string(dir ? dir : "/tmp") + "/" + name;
}

// --------------------------------------------------------------
// Probe registry
// --------------------------------------------------------------

TEST(Probes, RegistrySamplesInRegistrationOrder)
{
    obs::MetricRegistry reg;
    double x = 1.0;
    reg.add("b", [&x] { return x; });
    reg.add("a", [] { return 42.0; });
    ASSERT_EQ(reg.probes().size(), 2u);
    auto s = reg.sample();
    ASSERT_EQ(s.size(), 2u);
    EXPECT_EQ(s[0].first, "b");
    EXPECT_EQ(s[0].second, 1.0);
    EXPECT_EQ(s[1].first, "a");
    EXPECT_EQ(s[1].second, 42.0);
    x = 7.0;
    EXPECT_EQ(reg.sample()[0].second, 7.0); // live readers
}

// --------------------------------------------------------------
// Trace writer: ordering, rendering, strict reader
// --------------------------------------------------------------

obs::TraceSpan
span(const char *cat, const char *name, std::uint64_t ts = 0,
     std::uint64_t dur = 0)
{
    obs::TraceSpan s;
    s.cat = cat;
    s.name = name;
    s.ts = ts;
    s.dur = dur;
    return s;
}

TEST(Trace, RenderReadRoundTrip)
{
    std::vector<obs::TraceSpan> spans;
    spans.push_back(span("run", "compress/dri", 10, 500));
    obs::TraceSpan withArgs = span("job", "li/sb=1024\n\"x\"", 5, 7);
    withArgs.tid = 3;
    withArgs.args.emplace_back("worker", "3");
    withArgs.args.emplace_back("stolen", "true");
    spans.push_back(withArgs);

    const std::string path = tempPath("obs_roundtrip.trace.json");
    std::string err;
    ASSERT_TRUE(obs::writeTraceFile(path, spans, err)) << err;

    std::vector<obs::TraceSpan> back;
    ASSERT_TRUE(obs::readTrace(path, back, err)) << err;
    ASSERT_EQ(back.size(), 2u);
    // Canonical order: category first ("job" < "run").
    EXPECT_EQ(back[0].cat, "job");
    EXPECT_EQ(back[0].name, "li/sb=1024\n\"x\"");
    EXPECT_EQ(back[0].ts, 5u);
    EXPECT_EQ(back[0].dur, 7u);
    EXPECT_EQ(back[0].tid, 3u);
    ASSERT_EQ(back[0].args.size(), 2u);
    EXPECT_EQ(back[0].args[0].first, "worker");
    EXPECT_EQ(back[0].args[1].second, "true");
    EXPECT_EQ(back[1].cat, "run");

    // Re-writing the parsed spans reproduces the file byte-for-byte.
    const std::string again = tempPath("obs_roundtrip2.trace.json");
    ASSERT_TRUE(obs::writeTraceFile(again, back, err)) << err;
    std::vector<obs::TraceSpan> twice;
    ASSERT_TRUE(obs::readTrace(again, twice, err)) << err;
    EXPECT_EQ(obs::renderTraceEvents(back),
              obs::renderTraceEvents(twice));
    std::remove(path.c_str());
    std::remove(again.c_str());
}

TEST(Trace, ReaderIsStrict)
{
    const std::string path = tempPath("obs_bad.trace.json");
    std::vector<obs::TraceSpan> out;
    std::string err;
    EXPECT_FALSE(obs::readTrace(path + ".missing", out, err));

    FILE *f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("{\"traceEvents\": [{\"name\": 7}]}", f);
    std::fclose(f);
    EXPECT_FALSE(obs::readTrace(path, out, err));
    EXPECT_FALSE(err.empty());
    std::remove(path.c_str());
}

TEST(Trace, MergedSpanCountIsSumOfInputs)
{
    // The sweep_merge contract: union = concatenate + canonical
    // re-sort, so the merged count is exactly the sum.
    std::string err;
    const std::string a = tempPath("obs_merge_a.trace.json");
    const std::string b = tempPath("obs_merge_b.trace.json");
    const std::string m = tempPath("obs_merge_out.trace.json");
    ASSERT_TRUE(obs::writeTraceFile(
        a, {span("farm", "u1"), span("farm", "u2")}, err));
    ASSERT_TRUE(obs::writeTraceFile(
        b, {span("farm", "u3"), span("job", "j"), span("farm", "u1")},
        err));
    std::vector<obs::TraceSpan> all, spans;
    ASSERT_TRUE(obs::readTrace(a, spans, err));
    all.insert(all.end(), spans.begin(), spans.end());
    ASSERT_TRUE(obs::readTrace(b, spans, err));
    all.insert(all.end(), spans.begin(), spans.end());
    ASSERT_TRUE(obs::writeTraceFile(m, all, err));
    std::vector<obs::TraceSpan> merged;
    ASSERT_TRUE(obs::readTrace(m, merged, err));
    EXPECT_EQ(merged.size(), 5u);
    std::remove(a.c_str());
    std::remove(b.c_str());
    std::remove(m.c_str());
}

// --------------------------------------------------------------
// Time-series recorder: CSV canonicalization
// --------------------------------------------------------------

TEST(Metrics, IntervalAlignsToRetireBatch)
{
    // Intervals align down to the fast model's 64-instruction
    // retire batch so chunked execution stays bit-identical.
    EXPECT_EQ(obs::TimeSeriesRecorder("x", 1000).interval(), 960u);
    EXPECT_EQ(obs::TimeSeriesRecorder("x", 64).interval(), 64u);
    EXPECT_EQ(obs::TimeSeriesRecorder("x", 63).interval(), 64u);
    EXPECT_EQ(obs::TimeSeriesRecorder("x", 1).interval(), 64u);
    EXPECT_EQ(obs::TimeSeriesRecorder("x", 100000).interval(),
              99968u);
}

TEST(Metrics, CsvIsCanonicalUnionOfColumns)
{
    obs::TimeSeriesRecorder rec("x", 64);
    // Recorded out of series order, with differing metric sets.
    rec.record("b/run#02", 64, {{"cpi", 1.5}, {"wakes", 3.0}});
    rec.record("a/run#01", 64, {{"cpi", 1.25}});
    rec.record("a/run#01", 128, {{"cpi", 2.0}, {"resizes", 1.0}});
    EXPECT_EQ(rec.sampleCount(), 3u);
    const std::string csv = rec.renderCsv();
    // Header: series,instrs then the sorted union of metric names;
    // series in name order; missing metrics render as 0.
    EXPECT_EQ(csv, "series,instrs,cpi,resizes,wakes\n"
                   "a/run#01,64,1.25,0,0\n"
                   "a/run#01,128,2,1,0\n"
                   "b/run#02,64,1.5,0,3\n");

    obs::MetricsCsv parsed;
    std::string err;
    ASSERT_TRUE(obs::parseMetricsCsvText(csv, parsed, err)) << err;
    ASSERT_EQ(parsed.columns.size(), 5u);
    ASSERT_EQ(parsed.rows.size(), 3u);
    EXPECT_EQ(parsed.rows[2].series, "b/run#02");
    EXPECT_EQ(parsed.rows[2].instrs, 64u);
    const int wakes = parsed.column("wakes");
    ASSERT_GE(wakes, 0);
    EXPECT_EQ(parsed.rows[2].values[wakes], 3.0);
    EXPECT_EQ(parsed.column("nonexistent"), -1);
}

// --------------------------------------------------------------
// Reconstruction: the interval CSV carries the run's trajectory
// --------------------------------------------------------------

RunConfig
shortConfig()
{
    RunConfig cfg;
    cfg.maxInstrs = 400 * 1000;
    return cfg;
}

TEST(MetricsReconstruction, DriActiveSizeTrajectoryAndResizes)
{
    PinnedClock pin;
    const std::string path = tempPath("obs_dri.metrics.csv");
    obs::initMetrics(path, 50 * 1000);

    const BenchmarkInfo &bench = findBenchmark("compress");
    const RunConfig cfg = shortConfig();
    DriParams dri;
    dri.sizeBoundBytes = 1024;
    dri.missBound = 100;
    dri.senseInterval = 50 * 1000;
    const RunOutput out = runDri(bench, cfg, dri);

    obs::MetricsCsv csv;
    std::string err;
    ASSERT_TRUE(
        obs::parseMetricsCsvText(obs::metrics()->renderCsv(), csv,
                                 err))
        << err;
    ASSERT_FALSE(csv.rows.empty());
    const int bytes = csv.column("active_bytes");
    const int resizes = csv.column("resizes");
    const int frac = csv.column("active_fraction");
    ASSERT_GE(bytes, 0);
    ASSERT_GE(resizes, 0);
    ASSERT_GE(frac, 0);

    // The active-size trajectory: every interval's instantaneous
    // size is a legal DRI size (bound <= size <= full, power of
    // two), and the per-interval resize deltas integrate back to
    // the run's resize total.
    double resizeSum = 0.0;
    for (const auto &row : csv.rows) {
        const double b = row.values[bytes];
        EXPECT_GE(b, static_cast<double>(dri.sizeBoundBytes));
        EXPECT_LE(b, static_cast<double>(dri.sizeBytes));
        EXPECT_EQ(static_cast<std::uint64_t>(b) &
                      (static_cast<std::uint64_t>(b) - 1),
                  0u);
        EXPECT_GE(row.values[frac], 0.0);
        EXPECT_LE(row.values[frac], 1.0);
        resizeSum += row.values[resizes];
    }
    EXPECT_EQ(static_cast<std::uint64_t>(resizeSum), out.resizes);
    // The run actually resized under this aggressive bound, so the
    // trajectory is non-trivial.
    EXPECT_GT(out.resizes, 0u);

    // The phase table renders these rows (the trace_report view).
    const std::string table = obs::renderPhaseTable(csv, "dri");
    EXPECT_NE(table.find("compress/dri#"), std::string::npos);
    EXPECT_NE(table.find("active_bytes"), std::string::npos);
}

TEST(MetricsReconstruction, DrowsyWakeDeltasIntegrateToTotal)
{
    PinnedClock pin;
    const std::string path = tempPath("obs_drowsy.metrics.csv");
    obs::initMetrics(path, 50 * 1000);

    const BenchmarkInfo &bench = findBenchmark("compress");
    const RunConfig cfg = shortConfig();
    PolicyConfig pc;
    pc.kind = PolicyKind::Drowsy;
    const RunOutput out = runPolicy(bench, cfg, pc);

    obs::MetricsCsv csv;
    std::string err;
    ASSERT_TRUE(
        obs::parseMetricsCsvText(obs::metrics()->renderCsv(), csv,
                                 err))
        << err;
    ASSERT_FALSE(csv.rows.empty());
    const int wakes = csv.column("wakes");
    const int drowsy = csv.column("drowsy_fraction");
    ASSERT_GE(wakes, 0);
    ASSERT_GE(drowsy, 0);
    double wakeSum = 0.0;
    for (const auto &row : csv.rows) {
        EXPECT_GE(row.values[drowsy], 0.0);
        EXPECT_LE(row.values[drowsy], 1.0);
        wakeSum += row.values[wakes];
    }
    EXPECT_EQ(static_cast<std::uint64_t>(wakeSum),
              out.wakeTransitions);
    EXPECT_GT(out.wakeTransitions, 0u);
}

TEST(MetricsReconstruction, MeteredRunMatchesUnmeteredResults)
{
    // Chunked (metered) execution must be bit-identical to the
    // plain run: metrics are a tap, never a perturbation.
    const BenchmarkInfo &bench = findBenchmark("li");
    const RunConfig cfg = shortConfig();
    DriParams dri;
    dri.sizeBoundBytes = 2048;
    dri.missBound = 100;
    const RunOutput plain = runDri(bench, cfg, dri);

    PinnedClock pin;
    obs::initMetrics(tempPath("obs_metered.metrics.csv"), 30 * 1000);
    const RunOutput metered = runDri(bench, cfg, dri);
    EXPECT_EQ(plain.meas.cycles, metered.meas.cycles);
    EXPECT_EQ(plain.meas.l1iMisses, metered.meas.l1iMisses);
    EXPECT_EQ(plain.resizes, metered.resizes);
    EXPECT_EQ(plain.meas.avgActiveFraction,
              metered.meas.avgActiveFraction);
}

// --------------------------------------------------------------
// Determinism: pinned trace + metrics bytes vs worker count
// --------------------------------------------------------------

/** One small sweep through the executor with both sinks installed;
 *  returns (trace bytes, csv bytes). */
std::pair<std::string, std::string>
pinnedSweepArtifacts(unsigned jobs)
{
    obs::resetTrace();
    obs::resetMetrics();
    obs::TraceWriter *tw =
        obs::initTrace(tempPath("obs_jobs.trace.json"));
    obs::initMetrics(tempPath("obs_jobs.metrics.csv"), 100 * 1000);

    const BenchmarkInfo &bench = findBenchmark("compress");
    const RunConfig cfg = shortConfig();
    std::vector<DriParams> grid;
    for (const std::uint64_t bound : {1024u, 2048u, 4096u}) {
        DriParams p;
        p.sizeBoundBytes = bound;
        p.missBound = 100;
        grid.push_back(p);
    }
    Executor exec(jobs);
    std::vector<RunOutput> outs(grid.size());
    exec.forEachIndex("obs_sweep", grid.size(),
                      [&](std::size_t i, const JobContext &) {
                          outs[i] = runDri(bench, cfg, grid[i]);
                      });
    EXPECT_TRUE(tw->pinned());
    return {obs::renderTraceEvents(tw->spans()),
            obs::metrics()->renderCsv()};
}

TEST(Determinism, PinnedArtifactsByteIdenticalAcrossJobCounts)
{
    PinnedClock pin;
    const auto serial = pinnedSweepArtifacts(1);
    const auto parallel = pinnedSweepArtifacts(4);
    EXPECT_EQ(serial.first, parallel.first);   // trace bytes
    EXPECT_EQ(serial.second, parallel.second); // metrics bytes
    // The trace really carries the sweep: one job span per grid
    // point plus one run span each.
    EXPECT_NE(serial.first.find("\"obs_sweep/0\""),
              std::string::npos);
    EXPECT_NE(serial.first.find("\"compress/dri#"),
              std::string::npos);
}

TEST(Determinism, UnpinnedSpansCarryWorkerAnnotations)
{
    obs::resetTrace();
    obs::resetMetrics();
    obs::TraceWriter *tw =
        obs::initTrace(tempPath("obs_live.trace.json"));
    ASSERT_FALSE(tw->pinned());
    Executor exec(2);
    exec.forEachIndex("live", 4,
                      [](std::size_t, const JobContext &) {});
    const std::string doc = obs::renderTraceEvents(tw->spans());
    EXPECT_NE(doc.find("\"worker\""), std::string::npos);
    EXPECT_NE(doc.find("\"stolen\""), std::string::npos);
    obs::resetTrace();
}

// --------------------------------------------------------------
// Report rendering
// --------------------------------------------------------------

TEST(Report, TraceReportBreaksDownByCategory)
{
    std::vector<obs::TraceSpan> spans;
    spans.push_back(span("job", "fast", 0, 1000));
    spans.push_back(span("job", "slow", 0, 9000));
    spans.push_back(span("run", "compress/dri#ab", 0, 5000));
    obs::sortSpans(spans);
    const std::string report = obs::renderTraceReport(spans, 2);
    EXPECT_NE(report.find("job"), std::string::npos);
    EXPECT_NE(report.find("run"), std::string::npos);
    EXPECT_NE(report.find("slow"), std::string::npos);
    // topK=2: the slowest spans are listed, slowest first.
    EXPECT_LT(report.find("slow"), report.rfind("compress/dri#ab"));
}

TEST(Report, PhaseTableFiltersBySeries)
{
    obs::TimeSeriesRecorder rec("x", 64);
    rec.record("a/conv#1", 64, {{"cpi", 1.0}});
    rec.record("b/dri#2", 64, {{"cpi", 2.0}, {"active_bytes", 4096.0}});
    obs::MetricsCsv csv;
    std::string err;
    ASSERT_TRUE(obs::parseMetricsCsvText(rec.renderCsv(), csv, err));
    const std::string all = obs::renderPhaseTable(csv, "");
    EXPECT_NE(all.find("a/conv#1"), std::string::npos);
    EXPECT_NE(all.find("b/dri#2"), std::string::npos);
    const std::string only = obs::renderPhaseTable(csv, "dri");
    EXPECT_EQ(only.find("a/conv#1"), std::string::npos);
    EXPECT_NE(only.find("b/dri#2"), std::string::npos);
}

} // namespace
} // namespace drisim
