/**
 * @file
 * Program-builder tests: footprints, layout, bank conflicts,
 * CFG well-formedness.
 */

#include <gtest/gtest.h>

#include <set>

#include "workload/program.hh"

namespace drisim
{
namespace
{

ProgramSpec
simpleSpec(std::uint64_t codeBytes = 8192)
{
    ProgramSpec s;
    s.name = "test";
    s.seed = 7;
    PhaseSpec p;
    p.name = "main";
    p.codeBytes = codeBytes;
    p.dynInstrs = 100000;
    s.phases = {p};
    return s;
}

TEST(ProgramBuilder, FootprintMatchesSpec)
{
    for (std::uint64_t kb : {2, 8, 32, 60}) {
        const ProgramImage img = buildProgram(simpleSpec(kb * 1024));
        const double actual =
            static_cast<double>(img.phaseCodeBytes(0));
        const double target = static_cast<double>(kb * 1024);
        EXPECT_NEAR(actual / target, 1.0, 0.15)
            << kb << "KiB footprint off";
    }
}

TEST(ProgramBuilder, FunctionsDoNotOverlap)
{
    const ProgramImage img = buildProgram(simpleSpec(32 * 1024));
    std::vector<std::pair<Addr, Addr>> extents;
    for (const auto &f : img.functions) {
        ASSERT_FALSE(f.blocks.empty());
        extents.emplace_back(f.blocks.front().startPc,
                             f.blocks.back().endPc());
    }
    for (size_t i = 0; i < extents.size(); ++i)
        for (size_t j = i + 1; j < extents.size(); ++j) {
            const bool disjoint =
                extents[i].second <= extents[j].first ||
                extents[j].second <= extents[i].first;
            EXPECT_TRUE(disjoint)
                << "functions " << i << " and " << j << " overlap";
        }
}

TEST(ProgramBuilder, BlocksAreContiguousWithinFunction)
{
    const ProgramImage img = buildProgram(simpleSpec());
    for (const auto &f : img.functions) {
        for (size_t b = 0; b + 1 < f.blocks.size(); ++b)
            EXPECT_EQ(f.blocks[b].endPc(), f.blocks[b + 1].startPc);
    }
}

TEST(ProgramBuilder, CfgTargetsInRange)
{
    const ProgramImage img = buildProgram(simpleSpec(16 * 1024));
    for (const auto &f : img.functions) {
        const int n = static_cast<int>(f.blocks.size());
        for (const auto &b : f.blocks) {
            if (b.term == BlockTerm::CondBranch ||
                b.term == BlockTerm::LoopLatch ||
                b.term == BlockTerm::Jump) {
                EXPECT_GE(b.target, 0);
                EXPECT_LT(b.target, n);
            }
            if (b.term != BlockTerm::Return &&
                b.term != BlockTerm::Jump) {
                EXPECT_GE(b.fallthrough, 0);
                EXPECT_LT(b.fallthrough, n);
            }
            if (b.term == BlockTerm::Call) {
                EXPECT_GE(b.callee, 0);
                EXPECT_LT(b.callee,
                          static_cast<int>(img.functions.size()));
            }
        }
        // Workers end in Return; drivers end in a backward Jump.
        const BlockTerm last = f.blocks.back().term;
        EXPECT_TRUE(last == BlockTerm::Return ||
                    last == BlockTerm::Jump);
    }
}

TEST(ProgramBuilder, LoopLatchesPointBackward)
{
    const ProgramImage img = buildProgram(simpleSpec(16 * 1024));
    for (const auto &f : img.functions)
        for (size_t b = 0; b < f.blocks.size(); ++b)
            if (f.blocks[b].term == BlockTerm::LoopLatch) {
                EXPECT_LT(f.blocks[b].target, static_cast<int>(b));
            }
}

TEST(ProgramBuilder, ConflictBanksAlias64K)
{
    ProgramSpec s = simpleSpec(16 * 1024);
    s.phases[0].conflictBanks = 2;
    s.phases[0].conflictFraction = 0.5;
    const ProgramImage img = buildProgram(s);

    // Some pair of functions must collide modulo 64 KB.
    bool found = false;
    for (size_t i = 0; i < img.functions.size() && !found; ++i) {
        for (size_t j = i + 1; j < img.functions.size(); ++j) {
            const Addr a = img.functions[i].blocks.front().startPc;
            const Addr b = img.functions[j].blocks.front().startPc;
            if (a != b && (a % (64 * 1024)) == (b % (64 * 1024))) {
                found = true;
                break;
            }
        }
    }
    // With conflictFraction 0.5 the banks hold interleaved ranges
    // that alias; at least extents must overlap mod 64 KB.
    std::set<Addr> mod_starts;
    bool overlap = false;
    for (const auto &f : img.functions) {
        for (const auto &blk : f.blocks) {
            const Addr m = blk.startPc % (64 * 1024);
            if (!mod_starts.insert(m).second)
                overlap = true;
        }
    }
    EXPECT_TRUE(found || overlap);
}

TEST(ProgramBuilder, SingleBankNeverAliases)
{
    const ProgramImage img = buildProgram(simpleSpec(16 * 1024));
    std::set<Addr> mods;
    for (const auto &f : img.functions)
        for (const auto &blk : f.blocks)
            for (unsigned i = 0; i < blk.numInstrs; ++i)
                EXPECT_TRUE(
                    mods.insert(blk.pcOf(i) % (1ull << 26)).second);
}

TEST(ProgramBuilder, MultiPhaseRegionsDisjoint)
{
    ProgramSpec s = simpleSpec();
    PhaseSpec p2 = s.phases[0];
    p2.name = "second";
    p2.codeBytes = 4096;
    s.phases.push_back(p2);
    const ProgramImage img = buildProgram(s);
    ASSERT_EQ(img.phases.size(), 2u);

    // Phase text regions must not overlap.
    auto extent = [&](size_t phase) {
        Addr lo = ~Addr{0};
        Addr hi = 0;
        for (int fid : img.phases[phase].functions) {
            const auto &f = img.functions[static_cast<size_t>(fid)];
            lo = std::min(lo, f.blocks.front().startPc);
            hi = std::max(hi, f.blocks.back().endPc());
        }
        return std::make_pair(lo, hi);
    };
    auto [lo0, hi0] = extent(0);
    auto [lo1, hi1] = extent(1);
    EXPECT_TRUE(hi0 <= lo1 || hi1 <= lo0);
}

TEST(ProgramBuilder, DeterministicForSameSeed)
{
    const ProgramImage a = buildProgram(simpleSpec());
    const ProgramImage b = buildProgram(simpleSpec());
    ASSERT_EQ(a.functions.size(), b.functions.size());
    for (size_t i = 0; i < a.functions.size(); ++i) {
        ASSERT_EQ(a.functions[i].blocks.size(),
                  b.functions[i].blocks.size());
        for (size_t j = 0; j < a.functions[i].blocks.size(); ++j) {
            EXPECT_EQ(a.functions[i].blocks[j].startPc,
                      b.functions[i].blocks[j].startPc);
            EXPECT_EQ(a.functions[i].blocks[j].numInstrs,
                      b.functions[i].blocks[j].numInstrs);
        }
    }
}

TEST(ProgramBuilder, IrregularityAddsCallSites)
{
    ProgramSpec s = simpleSpec(32 * 1024);
    const ProgramImage plain = buildProgram(s);
    s.phases[0].callIrregularity = 1.0;
    const ProgramImage irregular = buildProgram(s);

    auto driver_calls = [](const ProgramImage &img) {
        const auto &d = img.functions[static_cast<size_t>(
            img.phases[0].driver)];
        size_t n = 0;
        for (const auto &b : d.blocks)
            n += b.term == BlockTerm::Call;
        return n;
    };
    EXPECT_GT(driver_calls(irregular), driver_calls(plain));
}

} // namespace
} // namespace drisim
