/**
 * @file
 * The golden-test harness configuration, shared between
 * tests/golden_test.cc (which asserts against pinned expectations)
 * and tools/golden_baseline.cc (which regenerates those
 * expectations via tools/rebaseline.sh). Keeping the run
 * definitions in one header guarantees the re-baseline tool can
 * never drift from what the tests actually execute.
 */

#ifndef DRISIM_TESTS_GOLDEN_CONFIG_HH
#define DRISIM_TESTS_GOLDEN_CONFIG_HH

#include <cstdint>
#include <sstream>
#include <string>

#include "harness/multilevel.hh"
#include "harness/policies.hh"
#include "harness/runner.hh"
#include "harness/sweep.hh"
#include "harness/table.hh"
#include "util/str.hh"

namespace drisim::golden
{

/** Pinned expectations for one single-level search benchmark. */
struct GoldenCase
{
    const char *benchmark;
    // Winner identity.
    std::uint64_t sizeBoundBytes;
    std::uint64_t missBound;
    bool feasible;
    // Winner detailed comparison.
    double relativeEnergyDelay;
    double slowdownPercent;
    double averageSizeFraction;
    // Detailed conventional baseline.
    std::uint64_t convCycles;
    std::uint64_t convMisses;
    // Rendered figure-3-style table row.
    const char *row;
};

/** Pinned expectations for one multi-level search benchmark. */
struct MultiLevelGoldenCase
{
    const char *benchmark;
    // Winner identity.
    std::uint64_t l1SizeBound;
    std::uint64_t l1MissBound;
    std::uint64_t l2SizeBound;
    std::uint64_t l2MissBound;
    bool feasible;
    // Winner comparison.
    double relativeEnergyDelay;
    double slowdownPercent;
    double l1AvgSize;
    double l2AvgSize;
    // Detailed conventional baseline.
    std::uint64_t convCycles;
    std::uint64_t convL2Misses;
    // Rendered bench_multilevel-style summary row.
    const char *row;
};

/** Pinned expectations for the cores=2 (compress+li) CMP search. */
struct CmpGoldenCase
{
    const char *mix;
    // Winner identity (per-core L1 miss-bounds + shared L2 bound).
    std::uint64_t l1MissBound0;
    std::uint64_t l1MissBound1;
    std::uint64_t l2SizeBound;
    std::uint64_t l2MissBound;
    bool feasible;
    // Winner comparison.
    double relativeEnergyDelay;
    double slowdownPercent;
    double l1AvgSize0;
    double l1AvgSize1;
    double l2AvgSize;
    // Detailed conventional CMP baseline.
    std::uint64_t convSystemCycles;
    std::uint64_t convL2Misses;
    std::uint64_t convContentionEvents;
    // Rendered bench_cmp-style summary row.
    const char *row;
};

/**
 * Pinned expectations for the coherent cores=2 shared_image run:
 * both cores walk one shared window under MSI, core 0's L1I is
 * drowsy and core 1's is decay, so invalidation-induced wakes and
 * refetches both appear (system/cmp.hh, mem/directory.hh).
 */
struct CoherentCmpGoldenCase
{
    const char *mix;
    std::uint64_t systemCycles;
    // Coherence totals (leakage-managed run).
    std::uint64_t invalidations;
    std::uint64_t downgrades;
    std::uint64_t writebacks;
    std::uint64_t msgCycles;
    std::uint64_t directoryEvictions;
    // Per-core attribution — nonzero on both cores by design.
    std::uint64_t invalRecv0;
    std::uint64_t invalRecv1;
    // Policy-visible effects: drowsy core 0 wakes and refetches,
    // decay core 1 refetches only (no wakeable state).
    std::uint64_t wakes0;
    std::uint64_t refetches0;
    std::uint64_t refetches1;
    // Winner comparison vs the coherent conventional baseline.
    double relativeEnergyDelay;
    // Rendered bench_cmp --coherent summary row.
    const char *row;
};

/**
 * Pinned expectations for one benchmark's policy head-to-head: one
 * entry per policy kind in search order (dri, decay, drowsy, ways).
 */
struct PolicyGoldenCase
{
    const char *benchmark;
    /** Per-kind winner relative energy-delay (distinct by design —
     *  the head-to-head is meaningless otherwise; asserted). */
    double driEd;
    double decayEd;
    double drowsyEd;
    double waysEd;
    /** Detailed conventional baseline (64K 4-way L1I). */
    std::uint64_t convCycles;
    std::uint64_t convMisses;
    /** Rendered bench_policies-style winner rows, one per kind. */
    const char *driRow;
    const char *decayRow;
    const char *drowsyRow;
    const char *waysRow;
};

/** The fixed single-level golden run (Section 5.3 search). */
inline SearchResult
runGoldenSearch(const std::string &name)
{
    const auto &b = findBenchmark(name);
    RunConfig cfg;
    cfg.maxInstrs = 400 * 1000;
    const RunOutput conv = runConventional(b, cfg);

    SearchSpace space;
    space.sizeBounds = {1024, 4096, 65536};
    space.missBoundFactors = {2.0, 32.0};
    DriParams tmpl;
    tmpl.senseInterval = 50000;
    return searchBestEnergyDelay(b, cfg, tmpl, space,
                                 EnergyConstants::paper(), 4.0, conv);
}

/** The fixed multi-level golden run ((L1 x L2) bound grid). */
inline MultiLevelSearchResult
runGoldenMultiSearch(const std::string &name, unsigned jobs)
{
    const auto &b = findBenchmark(name);
    RunConfig cfg;
    cfg.maxInstrs = 400 * 1000;
    cfg.jobs = jobs;
    const RunOutput conv = runConventional(b, cfg);

    MultiLevelSpace space;
    space.l1SizeBounds = {1024, 4096, 65536};
    space.l2SizeBounds = {64 * 1024, 1024 * 1024};
    DriParams l1Tmpl;
    l1Tmpl.senseInterval = 50000;
    DriParams l2Tmpl = HierarchyParams::defaultL2DriParams();
    l2Tmpl.senseInterval = 50000;
    return searchMultiLevel(b, cfg, l1Tmpl, l2Tmpl, space,
                            MultiLevelConstants::paper(), 4.0, conv);
}

/**
 * The fixed policy head-to-head golden run: one cell per policy
 * kind over the shared 64K 4-way geometry bench_policies uses.
 */
inline PolicySearchResult
runGoldenPolicySearch(const std::string &name, unsigned jobs)
{
    const auto &b = findBenchmark(name);
    RunConfig cfg;
    cfg.maxInstrs = 400 * 1000;
    cfg.jobs = jobs;
    cfg.hier.l1i.assoc = 4;
    const RunOutput conv = runConventional(b, cfg);

    PolicyConfig tmpl;
    tmpl.dri.senseInterval = 50000;
    PolicySpace space;
    space.driSizeBounds = {4096};
    space.decayIntervals = {50000};
    space.drowsyIntervals = {50000};
    space.waysActive = {1};
    return searchPolicies(b, cfg, tmpl, space,
                          PolicyEnergyConstants::paper(), 4.0, conv);
}
inline const std::vector<std::string> &
goldenCmpBenches()
{
    static const std::vector<std::string> benches{"compress", "li"};
    return benches;
}

/** The fixed CMP golden run (per-core L1 mb x shared L2 bound). */
inline CmpSearchResult
runGoldenCmpSearch(unsigned jobs)
{
    RunConfig cfg;
    cfg.maxInstrs = 300 * 1000;
    cfg.jobs = jobs;

    CmpConfig cmp;
    cmp.cores = 2;
    for (const std::string &b : goldenCmpBenches()) {
        CmpCoreConfig core;
        core.bench = b;
        cmp.coreConfigs.push_back(std::move(core));
    }
    const CmpRunOutput conv =
        runCmp(cfg, cmp, goldenCmpBenches()[0]);

    CmpSpace space;
    space.l1MissBoundFactors = {2.0, 32.0};
    space.l2SizeBounds = {64 * 1024, 1024 * 1024};
    DriParams l1Tmpl;
    l1Tmpl.senseInterval = 50000;
    DriParams l2Tmpl = HierarchyParams::defaultL2DriParams();
    l2Tmpl.senseInterval = 50000;
    return searchCmp(cfg, cmp, goldenCmpBenches()[0], l1Tmpl,
                     l2Tmpl, space, MultiLevelConstants::paper(),
                     4.0, conv);
}

/** One CSV line from a Table (the row after the header). */
inline std::string
csvRow(Table &t)
{
    std::ostringstream os;
    t.printCsv(os);
    const std::string out = os.str();
    const std::size_t nl = out.find('\n');
    return out.substr(nl + 1, out.find('\n', nl + 1) - nl - 1);
}

/** The cells bench_figure3 prints for a winner, as CSV. */
inline std::string
renderGoldenRow(const std::string &name, const SearchResult &sr)
{
    Table t({"benchmark", "size-bound", "miss-bound", "rel-ED",
             "avg-size", "slowdown"});
    const SearchCandidate &c = sr.best;
    t.addRow({name, bytesToString(c.dri.sizeBoundBytes),
              std::to_string(c.dri.missBound),
              fmtDouble(c.cmp.relativeEnergyDelay(), 3),
              fmtDouble(c.cmp.averageSizeFraction(), 3),
              fmtDouble(c.cmp.slowdownPercent(), 2) + "%"});
    return csvRow(t);
}

/** The cells bench_multilevel prints for a winner, as CSV. */
inline std::string
renderMultiLevelGoldenRow(const std::string &name,
                          const MultiLevelSearchResult &sr)
{
    Table t({"benchmark", "L1-bound", "L1-mb", "L2-bound", "L2-mb",
             "rel-ED", "L1-size", "L2-size", "slowdown"});
    t.addRow(multiLevelRowCells(name, sr.best));
    return csvRow(t);
}

/** One bench_policies-style winner row for kind index @p k, as
 *  CSV. */
inline std::string
renderPolicyGoldenRow(const std::string &name,
                      const PolicySearchResult &sr, std::size_t k)
{
    Table t({"benchmark", "policy", "params", "rel-ED", "active",
             "drowsy", "wakes", "slowdown"});
    t.addRow(policyRowCells(name, sr.bestPerKind.at(k)));
    return csvRow(t);
}

/**
 * Full-precision serialization of every observable of a policy
 * search result — the --jobs determinism contract for
 * searchPolicies (two runs at different --jobs values must be
 * byte-identical).
 */
inline std::string
serializePolicyResult(const PolicySearchResult &sr)
{
    std::ostringstream os;
    auto cand = [&](const PolicyCandidate &c) {
        os << strFormat(
            "%s %s feasible=%d ed=%.17g slow=%.17g active=%.17g "
            "drowsy=%.17g wakes=%llu",
            policyKindName(c.config.kind),
            c.config.paramSummary().c_str(), c.feasible ? 1 : 0,
            c.cmp.relativeEnergyDelay(), c.cmp.slowdownPercent(),
            c.cmp.averageActiveFraction(),
            c.cmp.averageDrowsyFraction(),
            static_cast<unsigned long long>(
                c.cmp.run.wakeTransitions));
        for (const auto &[label, nj] : c.cmp.policy.rows())
            os << strFormat(" %s=%.17g", label.c_str(), nj);
        os << "\n";
    };
    os << "conv cycles=" << sr.convDetailed.meas.cycles
       << " misses=" << sr.convDetailed.meas.l1iMisses << "\n";
    for (const PolicyCandidate &c : sr.evaluated)
        cand(c);
    os << "best:\n";
    for (const PolicyCandidate &c : sr.bestPerKind)
        cand(c);
    return os.str();
}

/** The cells bench_cmp prints for a winner, as CSV. */
inline std::string
renderCmpGoldenRow(const CmpSearchResult &sr)
{
    Table t({"mix", "L1-mb", "L2-bound", "L2-mb", "rel-ED",
             "L1-sizes", "L2-size", "slowdown"});
    t.addRow(cmpRowCells(cmpMixName(goldenCmpBenches()), sr.best));
    return csvRow(t);
}

/**
 * Full-precision serialization of every observable of a CMP search
 * result — the --jobs determinism contract for searchCmp (two runs
 * at different --jobs values must be byte-identical).
 */
inline std::string
serializeCmpResult(const CmpSearchResult &sr)
{
    std::ostringstream os;
    auto cand = [&](const CmpCandidate &c) {
        for (const DriParams &p : c.l1)
            os << strFormat(
                "l1=%llu/%llu ",
                static_cast<unsigned long long>(p.sizeBoundBytes),
                static_cast<unsigned long long>(p.missBound));
        os << strFormat(
            "l2=%llu/%llu feasible=%d ed=%.17g slow=%.17g",
            static_cast<unsigned long long>(c.l2.sizeBoundBytes),
            static_cast<unsigned long long>(c.l2.missBound),
            c.feasible ? 1 : 0, c.cmp.relativeEnergyDelay(),
            c.cmp.slowdownPercent());
        for (std::size_t k = 0; k < c.l1.size(); ++k)
            os << strFormat(" sz%zu=%.17g", k,
                            c.cmp.coreAverageSizeFraction(k));
        for (const LevelEnergy &l : c.cmp.dri.levels)
            os << strFormat(" %s=%.17g+%.17g", l.level.c_str(),
                            l.leakageNJ, l.dynamicNJ);
        os << "\n";
    };
    os << "conv cycles=" << sr.convDetailed.systemCycles
       << " l2misses=" << sr.convDetailed.l2Misses
       << " contention=" << sr.convDetailed.l2ContentionEvents
       << " mem=" << sr.convDetailed.memAccesses << "\n";
    for (const CmpCandidate &c : sr.evaluated)
        cand(c);
    os << "best: ";
    cand(sr.best);
    return os.str();
}

/** Both halves of the fixed coherent CMP golden run. */
struct CoherentCmpGoldenRun
{
    CmpRunOutput conv; ///< conventional L1Is, protocol on
    CmpRunOutput pol;  ///< drowsy/decay L1Is, protocol on
};

/**
 * The fixed coherent CMP golden run — the same pairing bench_cmp
 * --coherent evaluates for the all-shared_image mix: MSI enabled in
 * both runs, the leakage-managed build alternating drowsy (core 0)
 * and decay (core 1) L1Is. A direct paired run, not a searchCmp
 * grid: the DRI-bound search varies knobs drowsy/decay cores never
 * consume, so a search golden would pin nothing coherent.
 */
inline CoherentCmpGoldenRun
runGoldenCoherentCmp()
{
    RunConfig cfg;
    cfg.maxInstrs = 300 * 1000;

    CmpConfig conv;
    conv.cores = 2;
    conv.coherence.enabled = true;
    for (unsigned k = 0; k < conv.cores; ++k) {
        CmpCoreConfig core;
        core.bench = "shared_image";
        conv.coreConfigs.push_back(std::move(core));
    }

    CmpConfig pol = conv;
    for (unsigned k = 0; k < pol.cores; ++k) {
        CmpCoreConfig &core = pol.coreConfigs[k];
        core.dri = true;
        core.policyKind =
            k % 2 == 0 ? PolicyKind::Drowsy : PolicyKind::Decay;
    }

    CoherentCmpGoldenRun out;
    out.conv = runCmp(cfg, conv, "shared_image");
    out.pol = runCmp(cfg, pol, "shared_image");
    return out;
}

/** The cells bench_cmp --coherent prints for a mix, as CSV. */
inline std::string
renderCoherentCmpGoldenRow(const CoherentCmpGoldenRun &run)
{
    const CmpComparison cc = compareCmp(
        MultiLevelConstants::paper(), toCmpMeasurement(run.conv),
        toCmpMeasurement(run.pol));
    std::uint64_t wakes = 0;
    std::uint64_t refetches = 0;
    for (const CmpCoreOutput &c : run.pol.cores) {
        wakes += c.coherenceWakes;
        refetches += c.coherenceRefetches;
    }
    Table t({"mix", "sys-cycles", "inval", "downgr", "coh-wb",
             "msg-cyc", "dir-ev", "wakes", "refetches", "rel-ED"});
    t.addRow({"shared_image+shared_image",
              std::to_string(run.pol.systemCycles),
              std::to_string(run.pol.coherenceInvalidations),
              std::to_string(run.pol.coherenceDowngrades),
              std::to_string(run.pol.coherenceWritebacks),
              std::to_string(run.pol.coherenceMsgCycles),
              std::to_string(run.pol.directoryEvictions),
              std::to_string(wakes), std::to_string(refetches),
              fmtDouble(cc.relativeEnergyDelay(), 3)});
    return csvRow(t);
}

/**
 * Full-precision serialization of every observable of one coherent
 * CMP run pair — the replay-determinism contract for the coherent
 * path (any two executions, including ones racing on different
 * threads, must be byte-identical).
 */
inline std::string
serializeCoherentCmp(const CoherentCmpGoldenRun &run)
{
    std::ostringstream os;
    auto half = [&](const char *tag, const CmpRunOutput &o) {
        os << strFormat(
            "%s sys=%llu inval=%llu downgr=%llu wb=%llu msg=%llu "
            "dirEv=%llu l2acc=%llu l2miss=%llu mem=%llu\n",
            tag, static_cast<unsigned long long>(o.systemCycles),
            static_cast<unsigned long long>(
                o.coherenceInvalidations),
            static_cast<unsigned long long>(o.coherenceDowngrades),
            static_cast<unsigned long long>(o.coherenceWritebacks),
            static_cast<unsigned long long>(o.coherenceMsgCycles),
            static_cast<unsigned long long>(o.directoryEvictions),
            static_cast<unsigned long long>(o.l2Accesses),
            static_cast<unsigned long long>(o.l2Misses),
            static_cast<unsigned long long>(o.memAccesses));
        for (const CmpCoreOutput &c : o.cores)
            os << strFormat(
                "  core cyc=%llu recv=%llu caused=%llu downgr=%llu "
                "wb=%llu msg=%llu wakes=%llu refetch=%llu "
                "drowsy=%.17g gated=%.17g\n",
                static_cast<unsigned long long>(c.meas.cycles),
                static_cast<unsigned long long>(
                    c.coherenceInvalidationsReceived),
                static_cast<unsigned long long>(
                    c.coherenceInvalidationsCaused),
                static_cast<unsigned long long>(
                    c.coherenceDowngrades),
                static_cast<unsigned long long>(
                    c.coherenceWritebacks),
                static_cast<unsigned long long>(
                    c.coherenceMsgCycles),
                static_cast<unsigned long long>(c.coherenceWakes),
                static_cast<unsigned long long>(
                    c.coherenceRefetches),
                c.l1DrowsyFraction, c.l1GatedFraction);
    };
    half("conv", run.conv);
    half("pol", run.pol);
    return os.str();
}

/**
 * Full-precision serialization of every observable of a multi-level
 * search result. Two runs at different --jobs values must produce
 * byte-identical serializations (the determinism contract of the
 * executor, harness/executor.hh).
 */
inline std::string
serializeMultiLevelResult(const MultiLevelSearchResult &sr)
{
    std::ostringstream os;
    auto cand = [&](const MultiLevelCandidate &c) {
        os << strFormat(
            "l1=%llu/%llu l2=%llu/%llu feasible=%d "
            "ed=%.17g slow=%.17g l1sz=%.17g l2sz=%.17g",
            static_cast<unsigned long long>(c.l1.sizeBoundBytes),
            static_cast<unsigned long long>(c.l1.missBound),
            static_cast<unsigned long long>(c.l2.sizeBoundBytes),
            static_cast<unsigned long long>(c.l2.missBound),
            c.feasible ? 1 : 0, c.cmp.relativeEnergyDelay(),
            c.cmp.slowdownPercent(), c.cmp.l1AverageSizeFraction(),
            c.cmp.l2AverageSizeFraction());
        for (const LevelEnergy &l : c.cmp.dri.levels)
            os << strFormat(" %s=%.17g+%.17g", l.level.c_str(),
                            l.leakageNJ, l.dynamicNJ);
        os << "\n";
    };
    os << "conv cycles=" << sr.convDetailed.meas.cycles
       << " l2misses=" << sr.convDetailed.l2Misses
       << " mem=" << sr.convDetailed.memAccesses << "\n";
    for (const MultiLevelCandidate &c : sr.evaluated)
        cand(c);
    os << "best: ";
    cand(sr.best);
    return os.str();
}

} // namespace drisim::golden

#endif // DRISIM_TESTS_GOLDEN_CONFIG_HH
