/**
 * @file
 * Circuit substrate tests: transistor current models, stacking
 * effect, and the SRAM cell against the paper's Table 2 anchors.
 */

#include <gtest/gtest.h>

#include "circuit/sram_cell.hh"
#include "circuit/technology.hh"
#include "circuit/transistor.hh"

namespace drisim::circuit
{
namespace
{

const Technology tech = Technology::scaled018();

TEST(Transistor, OffCurrentFallsExponentiallyWithVt)
{
    const Mosfet lo{Polarity::Nmos, 1.0, 0.2};
    const Mosfet hi{Polarity::Nmos, 1.0, 0.4};
    const double ratio = offCurrent(tech, lo) / offCurrent(tech, hi);
    // Table 2: 1740/50 ~ 34.8x between Vt = 0.2 V and 0.4 V.
    EXPECT_NEAR(ratio, 34.8, 2.0);
}

TEST(Transistor, OffCurrentScalesLinearlyWithWidth)
{
    const Mosfet w1{Polarity::Nmos, 1.0, 0.2};
    const Mosfet w2{Polarity::Nmos, 2.0, 0.2};
    EXPECT_NEAR(offCurrent(tech, w2) / offCurrent(tech, w1), 2.0,
                1e-9);
}

TEST(Transistor, LeakageGrowsWithTemperature)
{
    const Mosfet m{Polarity::Nmos, 1.0, 0.3};
    const Technology cold = tech.atTemperature(300.0);
    const Technology hot = tech.atTemperature(383.15);
    EXPECT_GT(offCurrent(hot, m), 3.0 * offCurrent(cold, m));
}

TEST(Transistor, OnCurrentAlphaPower)
{
    const Mosfet lo{Polarity::Nmos, 1.0, 0.2};
    const Mosfet hi{Polarity::Nmos, 1.0, 0.4};
    const double ratio = onCurrent(tech, lo, tech.vdd) /
                         onCurrent(tech, hi, tech.vdd);
    // (0.8/0.6)^alpha = 2.22 by calibration.
    EXPECT_NEAR(ratio, 2.22, 0.02);
    EXPECT_EQ(onCurrent(tech, hi, 0.3), 0.0); // below threshold
}

TEST(Transistor, PmosWeakerThanNmos)
{
    const Mosfet n{Polarity::Nmos, 1.0, 0.2};
    const Mosfet p{Polarity::Pmos, 1.0, 0.2};
    EXPECT_LT(offCurrent(tech, p), offCurrent(tech, n));
    EXPECT_LT(onCurrent(tech, p, 1.0), onCurrent(tech, n, 1.0));
}

TEST(Transistor, NoCurrentWithoutDrainBias)
{
    const Mosfet m{Polarity::Nmos, 1.0, 0.2};
    EXPECT_EQ(subthresholdCurrent(tech, m, 0.0, 0.0), 0.0);
}

TEST(Stack, SelfReverseBiasReducesLeakage)
{
    // The stacking effect [32]: series off-transistors self
    // reverse-bias at the shared node.
    const Mosfet top{Polarity::Nmos, 1.0, 0.2};
    const Mosfet bottom{Polarity::Nmos, 1.0, 0.2};
    const StackResult r = solveSeriesStack(tech, top, bottom);
    EXPECT_LT(r.current, 0.7 * offCurrent(tech, top));
    EXPECT_GT(r.internalNodeV, 0.0);
    EXPECT_LT(r.internalNodeV, tech.vdd);
}

TEST(Stack, DiblDeepensTheStackingEffect)
{
    // With DIBL modeled, the stacked device's small Vds raises its
    // effective Vt: equal-Vt stacks then cut leakage ~5-10x, the
    // textbook figure.
    Technology dibl_tech = tech;
    dibl_tech.diblEta = 0.1;
    const Mosfet top{Polarity::Nmos, 1.0, 0.2};
    const Mosfet bottom{Polarity::Nmos, 1.0, 0.2};
    const StackResult r = solveSeriesStack(dibl_tech, top, bottom);
    EXPECT_LT(r.current, offCurrent(dibl_tech, top) / 5.0);

    const StackResult flat = solveSeriesStack(tech, top, bottom);
    // Comparing relative reductions (i0 cancels).
    EXPECT_LT(r.current / offCurrent(dibl_tech, top),
              flat.current / offCurrent(tech, top));
}

TEST(Stack, CurrentBalances)
{
    const Mosfet top{Polarity::Nmos, 1.035, 0.2};
    const Mosfet bottom{Polarity::Nmos, 1.1, 0.4};
    const StackResult r = solveSeriesStack(tech, top, bottom);
    const double i_top =
        subthresholdCurrent(tech, top, -r.internalNodeV,
                            tech.vdd - r.internalNodeV);
    EXPECT_NEAR(i_top / r.current, 1.0, 1e-3);
}

TEST(SramCell, Table2ActiveLeakageLowVt)
{
    const SramCell cell(tech, tech.vtLow);
    // Table 2: 1740e-9 nJ per 1 ns cycle.
    EXPECT_NEAR(cell.activeLeakagePerCycle(), 1740e-9, 60e-9);
}

TEST(SramCell, Table2ActiveLeakageHighVt)
{
    const SramCell cell(tech, tech.vtHigh);
    // Table 2: 50e-9 nJ per 1 ns cycle.
    EXPECT_NEAR(cell.activeLeakagePerCycle(), 50e-9, 5e-9);
}

TEST(SramCell, Table2RelativeReadTimes)
{
    const SramCell lo(tech, tech.vtLow);
    const SramCell hi(tech, tech.vtHigh);
    EXPECT_NEAR(lo.relativeReadTime(), 1.00, 0.01);
    EXPECT_NEAR(hi.relativeReadTime(), 2.22, 0.05);
}

TEST(SramCell, LeakageEnergyScalesWithCycleTime)
{
    const SramCell cell(tech, tech.vtLow);
    EXPECT_NEAR(cell.activeLeakagePerCycle(2.0),
                2.0 * cell.activeLeakagePerCycle(1.0), 1e-15);
}

TEST(SramCell, ReadTimeGrowsWithRowsAndSeriesResistance)
{
    const SramCell cell(tech, tech.vtLow);
    EXPECT_GT(cell.readTimeNs(512), cell.readTimeNs(256));
    EXPECT_GT(cell.readTimeNs(256, 1000.0), cell.readTimeNs(256));
}

} // namespace
} // namespace drisim::circuit
