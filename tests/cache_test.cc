/**
 * @file
 * Conventional cache tests: hit/miss behaviour, latencies, conflict
 * and capacity behaviour, writeback accounting.
 */

#include <gtest/gtest.h>

#include "mem/cache.hh"
#include "mem/memory.hh"
#include "stats/stats.hh"

namespace drisim
{
namespace
{

CacheParams
smallCache()
{
    CacheParams p;
    p.name = "c";
    p.sizeBytes = 1024;
    p.assoc = 1;
    p.blockBytes = 32;
    p.hitLatency = 1;
    return p;
}

TEST(Cache, ColdMissThenHit)
{
    stats::StatGroup root("t");
    Cache c(smallCache(), nullptr, &root);
    auto r1 = c.access(0x100, AccessType::InstFetch);
    EXPECT_FALSE(r1.hit);
    auto r2 = c.access(0x100, AccessType::InstFetch);
    EXPECT_TRUE(r2.hit);
    EXPECT_EQ(r2.latency, 1u);
    // Same block, different byte: still a hit.
    auto r3 = c.access(0x11F, AccessType::InstFetch);
    EXPECT_TRUE(r3.hit);
    EXPECT_EQ(c.misses(), 1u);
    EXPECT_EQ(c.accesses(), 3u);
}

TEST(Cache, MissLatencyIncludesLowerLevel)
{
    stats::StatGroup root("t");
    MainMemory mem(64, &root);
    CacheParams p2 = smallCache();
    p2.name = "l2";
    p2.sizeBytes = 4096;
    p2.blockBytes = 64;
    p2.hitLatency = 12;
    Cache l2(p2, &mem, &root);
    Cache l1(smallCache(), &l2, &root);

    // Cold L1 miss -> L2 miss -> memory: 1 + 12 + (80 + 4*8) = 125.
    auto r = l1.access(0x2000, AccessType::InstFetch);
    EXPECT_FALSE(r.hit);
    EXPECT_EQ(r.latency, 1u + 12u + 80u + 4u * 8u);

    // Second block in the same L2 line: L1 miss, L2 hit -> 13.
    auto r2 = l1.access(0x2020, AccessType::InstFetch);
    EXPECT_FALSE(r2.hit);
    EXPECT_EQ(r2.latency, 13u);
}

TEST(Cache, DirectMappedConflict)
{
    stats::StatGroup root("t");
    Cache c(smallCache(), nullptr, &root); // 32 sets
    // 0x0 and 0x400 (1024 apart) map to the same set.
    c.access(0x0, AccessType::InstFetch);
    c.access(0x400, AccessType::InstFetch);
    auto r = c.access(0x0, AccessType::InstFetch);
    EXPECT_FALSE(r.hit);
    EXPECT_EQ(c.misses(), 3u);
}

TEST(Cache, AssociativityAbsorbsConflict)
{
    stats::StatGroup root("t");
    CacheParams p = smallCache();
    p.assoc = 2;
    Cache c(p, nullptr, &root);
    c.access(0x0, AccessType::InstFetch);
    c.access(0x400, AccessType::InstFetch);
    auto r = c.access(0x0, AccessType::InstFetch);
    EXPECT_TRUE(r.hit);
}

TEST(Cache, LruWithinSet)
{
    stats::StatGroup root("t");
    CacheParams p = smallCache();
    p.assoc = 2; // 16 sets; stride 512 collides
    Cache c(p, nullptr, &root);
    c.access(0x000, AccessType::InstFetch);
    c.access(0x200, AccessType::InstFetch);
    c.access(0x000, AccessType::InstFetch);   // A now MRU
    c.access(0x400, AccessType::InstFetch);   // evicts 0x200
    EXPECT_TRUE(c.access(0x000, AccessType::InstFetch).hit);
    EXPECT_FALSE(c.access(0x200, AccessType::InstFetch).hit);
}

TEST(Cache, CapacitySweepEvictsEverything)
{
    stats::StatGroup root("t");
    Cache c(smallCache(), nullptr, &root);
    // Two full passes over 2x the capacity: every access misses.
    for (int pass = 0; pass < 2; ++pass)
        for (Addr a = 0; a < 2048; a += 32)
            c.access(a, AccessType::InstFetch);
    EXPECT_EQ(c.misses(), c.accesses());
}

TEST(Cache, FitsInCacheNoRepeatMisses)
{
    stats::StatGroup root("t");
    Cache c(smallCache(), nullptr, &root);
    for (int pass = 0; pass < 3; ++pass)
        for (Addr a = 0; a < 1024; a += 32)
            c.access(a, AccessType::InstFetch);
    // Only the cold pass misses.
    EXPECT_EQ(c.misses(), 32u);
    EXPECT_NEAR(c.missRate(), 1.0 / 3.0, 1e-9);
}

TEST(Cache, WritebackOnDirtyEviction)
{
    stats::StatGroup root("t");
    MainMemory mem(32, &root);
    Cache c(smallCache(), &mem, &root);
    c.access(0x000, AccessType::Store); // dirty
    c.access(0x400, AccessType::InstFetch); // evicts dirty block
    EXPECT_EQ(c.writebacks(), 1u);
    // Clean eviction: no writeback.
    c.access(0x800, AccessType::InstFetch);
    EXPECT_EQ(c.writebacks(), 1u);
}

TEST(Cache, ContainsProbeDoesNotTouch)
{
    stats::StatGroup root("t");
    Cache c(smallCache(), nullptr, &root);
    EXPECT_FALSE(c.contains(0x100));
    c.access(0x100, AccessType::Load);
    const auto accesses_before = c.accesses();
    EXPECT_TRUE(c.contains(0x100));
    EXPECT_EQ(c.accesses(), accesses_before);
}

TEST(Cache, InvalidateAllColdsTheCache)
{
    stats::StatGroup root("t");
    Cache c(smallCache(), nullptr, &root);
    c.access(0x100, AccessType::InstFetch);
    c.invalidateAll();
    EXPECT_FALSE(c.access(0x100, AccessType::InstFetch).hit);
}

TEST(MainMemory, Table1Latency)
{
    stats::StatGroup root("t");
    // Table 1: 80 cycles + 4 per 8 bytes. 64 B line -> 112.
    MainMemory mem(64, &root);
    EXPECT_EQ(mem.transferLatency(), 112u);
    auto r = mem.access(0x0, AccessType::Load);
    EXPECT_TRUE(r.hit);
    EXPECT_EQ(r.latency, 112u);
    EXPECT_EQ(mem.accesses(), 1u);
}

} // namespace
} // namespace drisim
