/**
 * @file
 * Multi-process sweep-farm driver (docs/REPRODUCTION.md, Farm
 * mode): spawns N shard processes of one bench binary, each with
 * `--shard k/N --part DIR/shard_k.part.json`, and waits for them.
 * Shards stream completed units into their fragments record-at-a-
 * time (rename-atomic, farm/fragment.hh), so a shard killed at any
 * instant loses at most its in-flight unit; tools/sweep_merge joins
 * the fragments and emits a resume manifest for the holes.
 *
 *   farm_runner --bin PATH --shards N --dir DIR [--args "..."]
 *               [--trace] [--resume MANIFEST]
 *               [--kill-shard K [--kill-after-records M]]
 *
 *   --bin PATH       sweep binary (bench_figure4, bench_cmp, ...)
 *   --shards N       farm width (each child gets --shard k/N)
 *   --dir DIR        fragment/log directory (created if missing);
 *                    child k writes shard_k.part.json and logs to
 *                    shard_k.out / shard_k.err
 *   --args "..."     extra arguments passed through to every child,
 *                    split on whitespace (e.g. "--jobs 1
 *                    --result-cache DIR/cache.json")
 *   --trace          give each child --trace=DIR/shard_k.trace.json
 *                    (obs/trace.hh); sweep_merge --trace/--trace-out
 *                    joins the per-shard files into one trace
 *   --resume M       spawn only the shards a sweep_merge resume
 *                    manifest names as owning missing units; their
 *                    existing fragments are adopted, so completed
 *                    units are never recomputed
 *   --kill-shard K   fault injection for the CI farm leg: SIGKILL
 *                    child K once its fragment holds at least
 *                    --kill-after-records records (default 1) —
 *                    deterministic, because the hash partition is
 *
 * Exit codes: 0 every child exited 0 (an intentionally killed shard
 * is expected to die and doesn't fail the run), 2 usage/setup
 * error, 3 a child failed.
 */

#include <sys/types.h>
#include <sys/wait.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fcntl.h>
#include <filesystem>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "farm/fragment.hh"
#include "farm/merge.hh"
#include "util/parse.hh"

using namespace drisim;

namespace
{

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --bin PATH --shards N --dir DIR [--args \"...\"]\n"
        "          [--trace] [--resume MANIFEST]\n"
        "          [--kill-shard K [--kill-after-records M]]\n",
        argv0);
    return 2;
}

/** Whitespace-split of the --args passthrough string. */
std::vector<std::string>
splitArgs(const std::string &text)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : text) {
        if (c == ' ' || c == '\t' || c == '\n') {
            if (!cur.empty())
                out.push_back(std::move(cur));
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    if (!cur.empty())
        out.push_back(std::move(cur));
    return out;
}

struct Child
{
    unsigned shard = 0; ///< 1-based
    pid_t pid = -1;
    bool done = false;
    int status = 0;
    std::string partPath;
    /** Spawn time, for the exit summary's wall seconds. */
    std::chrono::steady_clock::time_point start;
};

/** Fork+exec one shard child with stdout/stderr redirected. */
bool
spawnShard(const std::string &bin,
           const std::vector<std::string> &passthrough,
           const std::string &dir, unsigned k, unsigned n,
           bool trace, Child &out)
{
    const std::string stem =
        dir + "/shard_" + std::to_string(k);
    out.shard = k;
    out.partPath = stem + ".part.json";
    out.start = std::chrono::steady_clock::now();

    const pid_t pid = fork();
    if (pid < 0) {
        std::perror("fork");
        return false;
    }
    if (pid == 0) {
        const int fdOut = ::open((stem + ".out").c_str(),
                                 O_WRONLY | O_CREAT | O_TRUNC, 0644);
        const int fdErr = ::open((stem + ".err").c_str(),
                                 O_WRONLY | O_CREAT | O_TRUNC, 0644);
        if (fdOut < 0 || fdErr < 0 || dup2(fdOut, 1) < 0 ||
            dup2(fdErr, 2) < 0)
            _exit(127);
        ::close(fdOut);
        ::close(fdErr);

        std::vector<std::string> args;
        args.push_back(bin);
        for (const std::string &a : passthrough)
            args.push_back(a);
        args.push_back("--shard=" + std::to_string(k) + "/" +
                       std::to_string(n));
        args.push_back("--part=" + out.partPath);
        if (trace)
            args.push_back("--trace=" + stem + ".trace.json");
        std::vector<char *> argvp;
        for (std::string &a : args)
            argvp.push_back(a.data());
        argvp.push_back(nullptr);
        execv(bin.c_str(), argvp.data());
        _exit(127);
    }
    out.pid = pid;
    std::fprintf(stderr, "[farm_runner] spawned shard %u/%u pid %d "
                         "(part %s)\n",
                 k, n, static_cast<int>(pid), out.partPath.c_str());
    return true;
}

/** Completed-record count of a shard's fragment (0 if absent);
 *  also reports the full plan size when asked. */
std::size_t
fragmentRecords(const std::string &path,
                std::size_t *planSize = nullptr)
{
    if (!std::filesystem::exists(path))
        return 0;
    farm::Fragment f;
    std::string err;
    if (!farm::readFragment(path, f, err))
        return 0;
    if (planSize)
        *planSize = f.plan.size();
    return f.records.size();
}

} // namespace

int
main(int argc, char **argv)
{
    std::string bin;
    std::string dir;
    std::string argsText;
    std::string resumePath;
    bool trace = false;
    std::uint64_t shards = 0;
    std::uint64_t killShard = 0;
    std::uint64_t killAfter = 1;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&](std::string &dst) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value after %s\n",
                             arg.c_str());
                return false;
            }
            dst = argv[++i];
            return true;
        };
        std::string value;
        if (arg == "--bin") {
            if (!next(bin))
                return usage(argv[0]);
        } else if (arg == "--dir") {
            if (!next(dir))
                return usage(argv[0]);
        } else if (arg == "--args") {
            if (!next(argsText))
                return usage(argv[0]);
        } else if (arg == "--resume") {
            if (!next(resumePath))
                return usage(argv[0]);
        } else if (arg == "--trace") {
            trace = true;
        } else if (arg == "--shards") {
            if (!next(value) ||
                !parsePositiveValue(value, shards, farm::kMaxShards)) {
                std::fprintf(stderr, "bad --shards value '%s'\n",
                             value.c_str());
                return usage(argv[0]);
            }
        } else if (arg == "--kill-shard") {
            if (!next(value) ||
                !parsePositiveValue(value, killShard,
                                    farm::kMaxShards)) {
                std::fprintf(stderr, "bad --kill-shard value '%s'\n",
                             value.c_str());
                return usage(argv[0]);
            }
        } else if (arg == "--kill-after-records") {
            if (!next(value) ||
                !parsePositiveValue(value, killAfter, 1000000)) {
                std::fprintf(stderr,
                             "bad --kill-after-records value '%s'\n",
                             value.c_str());
                return usage(argv[0]);
            }
        } else {
            std::fprintf(stderr, "unknown argument '%s'\n",
                         arg.c_str());
            return usage(argv[0]);
        }
    }
    if (bin.empty() || dir.empty())
        return usage(argv[0]);

    // Resolve the shard set: all of 1..N, or only the shards the
    // resume manifest blames for missing units.
    std::vector<unsigned> toRun;
    if (!resumePath.empty()) {
        farm::ResumeManifest manifest;
        std::string err;
        if (!farm::parseResumeManifest(resumePath, manifest, err)) {
            std::fprintf(stderr, "farm_runner: %s\n", err.c_str());
            return 2;
        }
        if (shards != 0 && shards != manifest.ofShards) {
            std::fprintf(stderr,
                         "farm_runner: --shards %llu contradicts "
                         "manifest of_shards %u\n",
                         static_cast<unsigned long long>(shards),
                         manifest.ofShards);
            return 2;
        }
        shards = manifest.ofShards;
        toRun = manifest.shards();
        std::fprintf(stderr,
                     "[farm_runner] resume: %zu missing unit%s, "
                     "re-running shard%s of %llu:",
                     manifest.missing.size(),
                     manifest.missing.size() == 1 ? "" : "s",
                     toRun.size() == 1 ? "" : "s",
                     static_cast<unsigned long long>(shards));
        for (unsigned k : toRun)
            std::fprintf(stderr, " %u", k);
        std::fprintf(stderr, "\n");
    } else {
        if (shards == 0) {
            std::fprintf(stderr,
                         "farm_runner: --shards N is required "
                         "(unless --resume)\n");
            return usage(argv[0]);
        }
        for (unsigned k = 1; k <= shards; ++k)
            toRun.push_back(k);
    }
    if (killShard > shards) {
        std::fprintf(stderr,
                     "farm_runner: --kill-shard %llu > --shards "
                     "%llu\n",
                     static_cast<unsigned long long>(killShard),
                     static_cast<unsigned long long>(shards));
        return 2;
    }

    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
        std::fprintf(stderr, "farm_runner: cannot create %s: %s\n",
                     dir.c_str(), ec.message().c_str());
        return 2;
    }

    const std::vector<std::string> passthrough = splitArgs(argsText);
    std::vector<Child> children;
    children.reserve(toRun.size());
    for (unsigned k : toRun) {
        Child c;
        if (!spawnShard(bin, passthrough, dir, k,
                        static_cast<unsigned>(shards), trace, c))
            return 2;
        children.push_back(c);
    }

    bool killed = false;
    bool failed = false;
    std::size_t running = children.size();
    const auto farmStart = std::chrono::steady_clock::now();
    auto lastBeat = farmStart;
    while (running > 0) {
        for (Child &c : children) {
            if (c.done)
                continue;
            int status = 0;
            const pid_t r = waitpid(c.pid, &status, WNOHANG);
            if (r == c.pid) {
                c.done = true;
                c.status = status;
                --running;
                const double wall =
                    std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - c.start)
                        .count();
                const std::size_t units =
                    fragmentRecords(c.partPath);
                const bool wasKill =
                    killed && c.shard == killShard &&
                    WIFSIGNALED(status) &&
                    WTERMSIG(status) == SIGKILL;
                if (wasKill) {
                    std::fprintf(stderr,
                                 "[farm_runner] shard %u killed as "
                                 "requested (fragment keeps its "
                                 "completed units)\n",
                                 c.shard);
                } else if (WIFEXITED(status) &&
                           WEXITSTATUS(status) == 0) {
                    std::fprintf(
                        stderr,
                        "[farm_runner] shard %u finished: %zu "
                        "unit%s in %.1fs (exit 0)\n",
                        c.shard, units, units == 1 ? "" : "s",
                        wall);
                } else {
                    failed = true;
                    std::fprintf(
                        stderr,
                        "[farm_runner] shard %u FAILED (%s %d) "
                        "after %zu unit%s in %.1fs; "
                        "see %s/shard_%u.err\n",
                        c.shard,
                        WIFSIGNALED(status) ? "signal" : "exit",
                        WIFSIGNALED(status) ? WTERMSIG(status)
                                            : WEXITSTATUS(status),
                        units, units == 1 ? "" : "s", wall,
                        dir.c_str(), c.shard);
                }
            }
        }
        // Heartbeat: every ~2s, total progress across shards plus a
        // crude ETA (elapsed scaled by remaining/done). Plan size
        // comes from any readable fragment — every shard's fragment
        // carries the full plan.
        const auto now = std::chrono::steady_clock::now();
        if (running > 0 && now - lastBeat >=
                               std::chrono::milliseconds(2000)) {
            lastBeat = now;
            std::size_t done = 0;
            std::size_t plan = 0;
            for (const Child &c : children) {
                std::size_t p = 0;
                done += fragmentRecords(c.partPath, &p);
                if (p > plan)
                    plan = p;
            }
            const double elapsed =
                std::chrono::duration<double>(now - farmStart)
                    .count();
            std::string eta = "?";
            if (done > 0 && plan >= done)
                eta = std::to_string(static_cast<long>(
                    elapsed * static_cast<double>(plan - done) /
                    static_cast<double>(done)));
            std::fprintf(stderr,
                         "[farm_runner] progress: %zu/%zu units, "
                         "%zu shard%s running, ~%ss left\n",
                         done, plan, running,
                         running == 1 ? "" : "s", eta.c_str());
        }
        // Fault injection: once the victim's fragment shows enough
        // completed records, SIGKILL it mid-sweep. Polling the
        // fragment (not a timer) keeps the test deterministic.
        if (killShard != 0 && !killed) {
            for (Child &c : children) {
                if (c.shard != killShard || c.done)
                    continue;
                if (fragmentRecords(c.partPath) >=
                    static_cast<std::size_t>(killAfter)) {
                    std::fprintf(
                        stderr,
                        "[farm_runner] killing shard %u (pid %d) "
                        "after %zu completed record(s)\n",
                        c.shard, static_cast<int>(c.pid),
                        fragmentRecords(c.partPath));
                    ::kill(c.pid, SIGKILL);
                    killed = true;
                }
            }
        }
        if (running > 0)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(20));
    }

    if (killShard != 0 && !killed) {
        // The victim finished before reaching the record threshold:
        // the fault was never injected, so the "resume" the caller
        // is about to test would be vacuous. Fail loudly.
        std::fprintf(stderr,
                     "farm_runner: --kill-shard %llu never reached "
                     "%llu completed record(s); kill not injected\n",
                     static_cast<unsigned long long>(killShard),
                     static_cast<unsigned long long>(killAfter));
        return 3;
    }
    return failed ? 3 : 0;
}
