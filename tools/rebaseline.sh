#!/usr/bin/env bash
# Regenerate the golden-test expectation block in
# tests/golden_test.cc — deliberately, instead of hand-editing
# floating-point literals.
#
# Builds the golden_baseline generator (which runs the exact
# configurations the tests run, from tests/golden_config.hh), then
# splices its output between the GOLDEN-BASELINE-BEGIN/END markers.
# Review the resulting diff and justify the model change in the PR.
#
# Usage: tools/rebaseline.sh [build-dir]   (default: build)

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
GOLDEN=tests/golden_test.cc

cmake -B "$BUILD_DIR" -S . > /dev/null
cmake --build "$BUILD_DIR" --target golden_baseline -j

BLOCK="$(mktemp)"
trap 'rm -f "$BLOCK" "$GOLDEN.tmp"' EXIT
"$BUILD_DIR/golden_baseline" > "$BLOCK"

awk -v blockfile="$BLOCK" '
    /GOLDEN-BASELINE-BEGIN/ {
        print
        while ((getline line < blockfile) > 0) print line
        close(blockfile)
        skipping = 1
        next
    }
    /GOLDEN-BASELINE-END/ { skipping = 0 }
    !skipping { print }
' "$GOLDEN" > "$GOLDEN.tmp"
mv "$GOLDEN.tmp" "$GOLDEN"

echo "rebaselined $GOLDEN:"
git --no-pager diff --stat -- "$GOLDEN" || true
echo "rebuild and rerun 'ctest -L golden' to confirm."
