/**
 * @file
 * Fragment joiner for the sweep farm (docs/REPRODUCTION.md, Farm
 * mode): merges the per-shard BENCH_*.part.json fragments a
 * farm_runner run produced into the single merged BENCH_*.json
 * report, byte-identical to what one unsharded `--json` run of the
 * same binary would have written (same serializer,
 * farm/merge.hh renderBenchJson; locked by the CI farm leg).
 *
 *   sweep_merge --out MERGED.json [--manifest PATH]
 *               [--result-cache FILE] [--wall-seconds S]
 *               [--workers W] [--trace IN]... [--trace-out OUT]
 *               FRAGMENT...
 *
 * --trace names one per-shard trace file (repeatable; the files
 * farm_runner --trace leaves behind) and --trace-out where to write
 * the union: span sets concatenate and are re-sorted into the
 * writer's canonical order, so the merged span count is exactly the
 * sum of the inputs'.
 *
 * Duplicate records (overlapping re-runs) are dropped under the
 * result-cache rule — same hash must mean same config and same
 * rows; a collision or contradiction is a hard error. When plan
 * units are missing (a killed shard), the merge writes a resume
 * manifest (--manifest, default OUT.resume.json) naming each hole
 * and its owning shard, and exits 4 so scripts can branch into
 * `farm_runner --resume`.
 *
 * --wall-seconds (default 0) and --workers (default 1) set the
 * merged report's provenance fields; the byte-identity comparison
 * pins the reference run the same way (DRISIM_JSON_WALL_SECONDS=0,
 * --jobs 1). --result-cache re-reads the shared sidecar after the
 * merge and reports how many memoized records the farm left behind.
 *
 * Exit codes: 0 merged, 2 error, 4 holes (manifest written).
 */

#include <cstdio>
#include <cstdlib>
#include <iterator>
#include <string>
#include <vector>

#include "farm/merge.hh"
#include "obs/trace.hh"
#include "sim/result_cache.hh"

using namespace drisim;

namespace
{

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s --out MERGED.json [--manifest PATH]\n"
        "          [--result-cache FILE] [--wall-seconds S]\n"
        "          [--workers W] [--trace IN]... [--trace-out OUT]\n"
        "          FRAGMENT...\n",
        argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string outPath;
    std::string manifestPath;
    std::string cachePath;
    std::string traceOutPath;
    double wallSeconds = 0.0;
    unsigned workers = 1;
    std::vector<std::string> fragments;
    std::vector<std::string> traces;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&](std::string &dst) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value after %s\n",
                             arg.c_str());
                return false;
            }
            dst = argv[++i];
            return true;
        };
        std::string value;
        if (arg == "--out") {
            if (!next(outPath))
                return usage(argv[0]);
        } else if (arg == "--manifest") {
            if (!next(manifestPath))
                return usage(argv[0]);
        } else if (arg == "--result-cache") {
            if (!next(cachePath))
                return usage(argv[0]);
        } else if (arg == "--trace") {
            if (!next(value))
                return usage(argv[0]);
            traces.push_back(value);
        } else if (arg == "--trace-out") {
            if (!next(traceOutPath))
                return usage(argv[0]);
        } else if (arg == "--wall-seconds") {
            if (!next(value))
                return usage(argv[0]);
            char *end = nullptr;
            wallSeconds = std::strtod(value.c_str(), &end);
            if (end == value.c_str() || *end != '\0') {
                std::fprintf(stderr, "bad --wall-seconds '%s'\n",
                             value.c_str());
                return 2;
            }
        } else if (arg == "--workers") {
            if (!next(value))
                return usage(argv[0]);
            char *end = nullptr;
            const unsigned long v =
                std::strtoul(value.c_str(), &end, 10);
            if (end == value.c_str() || *end != '\0' || v == 0) {
                std::fprintf(stderr, "bad --workers '%s'\n",
                             value.c_str());
                return 2;
            }
            workers = static_cast<unsigned>(v);
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "unknown argument '%s'\n",
                         arg.c_str());
            return usage(argv[0]);
        } else {
            fragments.push_back(arg);
        }
    }
    if (outPath.empty() || fragments.empty())
        return usage(argv[0]);
    if (manifestPath.empty())
        manifestPath = outPath + ".resume.json";
    if (traces.empty() != traceOutPath.empty()) {
        std::fprintf(stderr, "sweep_merge: --trace and --trace-out "
                             "go together\n");
        return usage(argv[0]);
    }

    farm::MergeResult merged;
    std::string error;

    // Trace union first: the span files are provenance, useful even
    // when the result merge below finds holes. Spans concatenate and
    // the writer re-sorts canonically, so the merged count is the
    // exact sum of the inputs'.
    if (!traces.empty()) {
        std::vector<obs::TraceSpan> all;
        for (const std::string &t : traces) {
            std::vector<obs::TraceSpan> spans;
            if (!obs::readTrace(t, spans, error)) {
                std::fprintf(stderr, "sweep_merge: %s\n",
                             error.c_str());
                return 2;
            }
            all.insert(all.end(),
                       std::make_move_iterator(spans.begin()),
                       std::make_move_iterator(spans.end()));
        }
        const std::size_t total = all.size();
        if (!obs::writeTraceFile(traceOutPath, std::move(all),
                                 error)) {
            std::fprintf(stderr, "sweep_merge: %s\n",
                         error.c_str());
            return 2;
        }
        std::fprintf(stderr,
                     "sweep_merge: merged %zu span%s from %zu "
                     "trace file%s into %s\n",
                     total, total == 1 ? "" : "s", traces.size(),
                     traces.size() == 1 ? "" : "s",
                     traceOutPath.c_str());
    }
    if (!farm::mergeFragments(fragments, merged, error)) {
        std::fprintf(stderr, "sweep_merge: %s\n", error.c_str());
        return 2;
    }

    if (merged.duplicates > 0)
        std::fprintf(stderr,
                     "sweep_merge: dropped %zu exact duplicate "
                     "record%s (overlapping re-runs)\n",
                     merged.duplicates,
                     merged.duplicates == 1 ? "" : "s");

    if (!cachePath.empty()) {
        // Re-read-on-merge: pick up every record concurrent shard
        // processes appended to the shared sidecar.
        sim::ResultCache cache(cachePath);
        cache.reload();
        std::fprintf(stderr,
                     "sweep_merge: result-cache sidecar %s holds "
                     "%zu record%s\n",
                     cachePath.c_str(), cache.size(),
                     cache.size() == 1 ? "" : "s");
    }

    if (!merged.missing.empty()) {
        std::fprintf(stderr,
                     "sweep_merge: %zu plan unit%s missing:\n",
                     merged.missing.size(),
                     merged.missing.size() == 1 ? "" : "s");
        for (const farm::MissingUnit &m : merged.missing)
            std::fprintf(
                stderr, "  unit %llu hash %s (owner shard %u/%u)\n",
                static_cast<unsigned long long>(m.index),
                m.hash.c_str(), m.shard, merged.ofShards);
        const std::string doc = farm::renderResumeManifest(
            merged.bench, merged.ofShards, merged.missing);
        if (!farm::writeFileAtomic(manifestPath, doc, error)) {
            std::fprintf(stderr, "sweep_merge: %s\n", error.c_str());
            return 2;
        }
        std::fprintf(stderr,
                     "sweep_merge: resume manifest written to %s "
                     "(farm_runner --resume)\n",
                     manifestPath.c_str());
        return 4;
    }

    const std::string doc = farm::renderBenchJson(
        merged.bench, farm::ShardPlan{}, wallSeconds, workers,
        merged.columns, merged.rows);
    if (!farm::writeFileAtomic(outPath, doc, error)) {
        std::fprintf(stderr, "sweep_merge: %s\n", error.c_str());
        return 2;
    }
    std::fprintf(stderr,
                 "sweep_merge: merged %zu row%s from %zu "
                 "fragment%s into %s\n",
                 merged.rows.size(),
                 merged.rows.size() == 1 ? "" : "s",
                 fragments.size(), fragments.size() == 1 ? "" : "s",
                 outPath.c_str());
    return 0;
}
