#!/usr/bin/env bash
# Farm-mode end-to-end smoke (docs/REPRODUCTION.md, Farm mode; the
# CI farm leg runs exactly this):
#
#   1. unsharded reference: one bench process, --json, pinned wall
#      clock and worker count,
#   2. 3-shard farm_runner run of the same sweep with one shard
#      SIGKILLed after its first completed unit,
#   3. sweep_merge on the fragments -> must report holes (exit 4)
#      and write a resume manifest,
#   4. farm_runner --resume re-runs only the killed shard; its
#      resumed fragment must recompute zero already-completed units
#      (result-cache hits stay 0: completed units are skipped
#      outright, never re-looked-up),
#   5. sweep_merge again -> merged BENCH json, byte-identical to the
#      reference.
#
# Usage: tools/farm_smoke.sh BUILD_DIR [WORK_DIR]
# Env: DRISIM_SCALE (default 0.05) scales the run length.

set -euo pipefail

BUILD_DIR=${1:?usage: farm_smoke.sh BUILD_DIR [WORK_DIR]}
WORK_DIR=${2:-$(mktemp -d /tmp/drisim_farm_smoke.XXXXXX)}
BENCH=${FARM_SMOKE_BENCH:-bench_figure4}
export DRISIM_SCALE=${DRISIM_SCALE:-0.05}
# Pin the provenance fields so the merged and reference reports can
# be compared byte-for-byte.
export DRISIM_JSON_WALL_SECONDS=0

mkdir -p "$WORK_DIR"
echo "== farm smoke: $BENCH, scale $DRISIM_SCALE, work dir $WORK_DIR"

echo "== 1. unsharded reference run"
"$BUILD_DIR/$BENCH" --jobs 1 --json "$WORK_DIR/reference.json" \
    > "$WORK_DIR/reference.out" 2> "$WORK_DIR/reference.err"

echo "== 2. 3-shard farm run, killing shard 2 after 1 unit"
# The kill is expected: farm_runner exits 0 when the only casualty
# is the requested victim.
"$BUILD_DIR/farm_runner" \
    --bin "$BUILD_DIR/$BENCH" --shards 3 --dir "$WORK_DIR/farm" \
    --args "--jobs 1 --result-cache $WORK_DIR/farm/cache.json" \
    --kill-shard 2 --kill-after-records 1

echo "== 3. merge must detect the hole and emit a manifest"
set +e
"$BUILD_DIR/sweep_merge" \
    --out "$WORK_DIR/merged.json" \
    --manifest "$WORK_DIR/resume.json" \
    "$WORK_DIR"/farm/shard_*.part.json
rc=$?
set -e
if [ "$rc" -ne 4 ]; then
    echo "FAIL: expected sweep_merge exit 4 (holes), got $rc" >&2
    exit 1
fi
[ -f "$WORK_DIR/resume.json" ] || {
    echo "FAIL: no resume manifest written" >&2; exit 1; }

echo "== 4. resume re-runs only the killed shard"
"$BUILD_DIR/farm_runner" \
    --bin "$BUILD_DIR/$BENCH" --dir "$WORK_DIR/farm" \
    --args "--jobs 1 --result-cache $WORK_DIR/farm/cache.json" \
    --resume "$WORK_DIR/resume.json"

# Zero-recompute proof: the resumed shard adopted its fragment's
# completed units, so it skipped them outright — its result-cache
# line must show hits=0 (a hit would mean a unit was re-entered and
# served from cache instead of being skipped).
err="$WORK_DIR/farm/shard_2.err"
grep -q "resumed 1 completed unit" "$err" || {
    echo "FAIL: resumed shard did not adopt its fragment:" >&2
    cat "$err" >&2; exit 1; }
grep -q "result-cache: hits=0 " "$err" || {
    echo "FAIL: resumed shard recomputed or re-looked-up completed" \
         "units (want hits=0):" >&2
    grep "result-cache:" "$err" >&2 || true; exit 1; }

echo "== 5. merge again and compare against the reference"
"$BUILD_DIR/sweep_merge" \
    --out "$WORK_DIR/merged.json" \
    "$WORK_DIR"/farm/shard_*.part.json

if ! cmp "$WORK_DIR/reference.json" "$WORK_DIR/merged.json"; then
    echo "FAIL: merged report differs from the unsharded run" >&2
    diff "$WORK_DIR/reference.json" "$WORK_DIR/merged.json" >&2 ||
        true
    exit 1
fi

echo "PASS: merged 3-shard (kill + resume) report is byte-identical"
echo "      to the unsharded run ($WORK_DIR/merged.json)"
