/**
 * @file
 * Golden-expectation generator: runs the exact golden-test
 * configurations (tests/golden_config.hh) and prints the
 * INSTANTIATE_TEST_SUITE_P block that tools/rebaseline.sh splices
 * between the GOLDEN-BASELINE markers in tests/golden_test.cc.
 *
 * Re-baselining is therefore a deliberate, reviewable act — rerun
 * the script, read the diff, and explain the model change in the PR
 * — never a hand-edit of floating-point literals.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "golden_config.hh"

using namespace drisim;

namespace
{

std::string
g(double v)
{
    // Up to 15 significant digits round-trips the doubles the tests
    // compare at 1e-9 slack while keeping the literals readable.
    return strFormat("%.15g", v);
}

void
printSingleLevel(const std::vector<std::string> &benches)
{
    std::printf("INSTANTIATE_TEST_SUITE_P(\n"
                "    PaperPath, GoldenSearch,\n"
                "    ::testing::Values(\n");
    for (std::size_t i = 0; i < benches.size(); ++i) {
        const std::string &name = benches[i];
        const SearchResult sr = golden::runGoldenSearch(name);
        const SearchCandidate &best = sr.best;
        std::printf(
            "        GoldenCase{\"%s\", %llu, %llu, %s,\n"
            "                   %s, %s, %s,\n"
            "                   %llu, %llu,\n"
            "                   \"%s\"}%s\n",
            name.c_str(),
            static_cast<unsigned long long>(
                best.dri.sizeBoundBytes),
            static_cast<unsigned long long>(best.dri.missBound),
            best.feasible ? "true" : "false",
            g(best.cmp.relativeEnergyDelay()).c_str(),
            g(best.cmp.slowdownPercent()).c_str(),
            g(best.cmp.averageSizeFraction()).c_str(),
            static_cast<unsigned long long>(
                sr.convDetailed.meas.cycles),
            static_cast<unsigned long long>(
                sr.convDetailed.meas.l1iMisses),
            golden::renderGoldenRow(name, sr).c_str(),
            i + 1 < benches.size() ? "," : "),");
    }
    std::printf(
        "    [](const ::testing::TestParamInfo<GoldenCase> &info) "
        "{\n"
        "        return std::string(info.param.benchmark);\n"
        "    });\n");
}

void
printMultiLevel(const std::vector<std::string> &benches)
{
    std::printf("\nINSTANTIATE_TEST_SUITE_P(\n"
                "    MultiLevelPath, MultiLevelGolden,\n"
                "    ::testing::Values(\n");
    for (std::size_t i = 0; i < benches.size(); ++i) {
        const std::string &name = benches[i];
        const MultiLevelSearchResult sr =
            golden::runGoldenMultiSearch(name, 1);
        const MultiLevelCandidate &best = sr.best;
        std::printf(
            "        MultiLevelGoldenCase{\"%s\", %llu, %llu, "
            "%llu, %llu, %s,\n"
            "                             %s, %s,\n"
            "                             %s, %s,\n"
            "                             %llu, %llu,\n"
            "                             \"%s\"}%s\n",
            name.c_str(),
            static_cast<unsigned long long>(best.l1.sizeBoundBytes),
            static_cast<unsigned long long>(best.l1.missBound),
            static_cast<unsigned long long>(best.l2.sizeBoundBytes),
            static_cast<unsigned long long>(best.l2.missBound),
            best.feasible ? "true" : "false",
            g(best.cmp.relativeEnergyDelay()).c_str(),
            g(best.cmp.slowdownPercent()).c_str(),
            g(best.cmp.l1AverageSizeFraction()).c_str(),
            g(best.cmp.l2AverageSizeFraction()).c_str(),
            static_cast<unsigned long long>(
                sr.convDetailed.meas.cycles),
            static_cast<unsigned long long>(sr.convDetailed.l2Misses),
            golden::renderMultiLevelGoldenRow(name, sr).c_str(),
            i + 1 < benches.size() ? "," : "),");
    }
    std::printf("    [](const ::testing::TestParamInfo"
                "<MultiLevelGoldenCase> &info) {\n"
                "        return std::string(info.param.benchmark);\n"
                "    });\n");
}

void
printCmp()
{
    const CmpSearchResult sr = golden::runGoldenCmpSearch(1);
    const CmpCandidate &best = sr.best;
    std::printf("\nINSTANTIATE_TEST_SUITE_P(\n"
                "    CmpPath, CmpGolden,\n"
                "    ::testing::Values(\n");
    std::printf(
        "        CmpGoldenCase{\"%s\", %llu, %llu, %llu, %llu, "
        "%s,\n"
        "                      %s, %s,\n"
        "                      %s, %s, %s,\n"
        "                      %llu, %llu, %llu,\n"
        "                      \"%s\"}),\n",
        cmpMixName(golden::goldenCmpBenches()).c_str(),
        static_cast<unsigned long long>(best.l1[0].missBound),
        static_cast<unsigned long long>(best.l1[1].missBound),
        static_cast<unsigned long long>(best.l2.sizeBoundBytes),
        static_cast<unsigned long long>(best.l2.missBound),
        best.feasible ? "true" : "false",
        g(best.cmp.relativeEnergyDelay()).c_str(),
        g(best.cmp.slowdownPercent()).c_str(),
        g(best.cmp.coreAverageSizeFraction(0)).c_str(),
        g(best.cmp.coreAverageSizeFraction(1)).c_str(),
        g(best.cmp.l2AverageSizeFraction()).c_str(),
        static_cast<unsigned long long>(
            sr.convDetailed.systemCycles),
        static_cast<unsigned long long>(sr.convDetailed.l2Misses),
        static_cast<unsigned long long>(
            sr.convDetailed.l2ContentionEvents),
        golden::renderCmpGoldenRow(sr).c_str());
    std::printf("    [](const ::testing::TestParamInfo"
                "<CmpGoldenCase> &) {\n"
                "        return std::string(\"compress_li\");\n"
                "    });\n");
}

void
printCoherentCmp()
{
    const golden::CoherentCmpGoldenRun run =
        golden::runGoldenCoherentCmp();
    const CmpRunOutput &pol = run.pol;
    const CmpComparison cc = compareCmp(
        MultiLevelConstants::paper(), toCmpMeasurement(run.conv),
        toCmpMeasurement(pol));
    std::printf("\nINSTANTIATE_TEST_SUITE_P(\n"
                "    CoherentCmpPath, CoherentCmpGolden,\n"
                "    ::testing::Values(\n");
    std::printf(
        "        CoherentCmpGoldenCase{\"%s\", %llu,\n"
        "                              %llu, %llu, %llu, %llu, "
        "%llu,\n"
        "                              %llu, %llu,\n"
        "                              %llu, %llu, %llu,\n"
        "                              %s,\n"
        "                              \"%s\"}),\n",
        "shared_image+shared_image",
        static_cast<unsigned long long>(pol.systemCycles),
        static_cast<unsigned long long>(pol.coherenceInvalidations),
        static_cast<unsigned long long>(pol.coherenceDowngrades),
        static_cast<unsigned long long>(pol.coherenceWritebacks),
        static_cast<unsigned long long>(pol.coherenceMsgCycles),
        static_cast<unsigned long long>(pol.directoryEvictions),
        static_cast<unsigned long long>(
            pol.cores[0].coherenceInvalidationsReceived),
        static_cast<unsigned long long>(
            pol.cores[1].coherenceInvalidationsReceived),
        static_cast<unsigned long long>(
            pol.cores[0].coherenceWakes),
        static_cast<unsigned long long>(
            pol.cores[0].coherenceRefetches),
        static_cast<unsigned long long>(
            pol.cores[1].coherenceRefetches),
        g(cc.relativeEnergyDelay()).c_str(),
        golden::renderCoherentCmpGoldenRow(run).c_str());
    std::printf("    [](const ::testing::TestParamInfo"
                "<CoherentCmpGoldenCase> &) {\n"
                "        return std::string(\"shared_image_x2\");\n"
                "    });\n");
}

void
printPolicy(const std::vector<std::string> &benches)
{
    std::printf("\nINSTANTIATE_TEST_SUITE_P(\n"
                "    PolicyPath, PolicyGolden,\n"
                "    ::testing::Values(\n");
    for (std::size_t i = 0; i < benches.size(); ++i) {
        const std::string &name = benches[i];
        const PolicySearchResult sr =
            golden::runGoldenPolicySearch(name, 1);
        std::printf(
            "        PolicyGoldenCase{\"%s\",\n"
            "                         %s, %s,\n"
            "                         %s, %s,\n"
            "                         %llu, %llu,\n"
            "                         \"%s\",\n"
            "                         \"%s\",\n"
            "                         \"%s\",\n"
            "                         \"%s\"}%s\n",
            name.c_str(),
            g(sr.bestPerKind[0].cmp.relativeEnergyDelay()).c_str(),
            g(sr.bestPerKind[1].cmp.relativeEnergyDelay()).c_str(),
            g(sr.bestPerKind[2].cmp.relativeEnergyDelay()).c_str(),
            g(sr.bestPerKind[3].cmp.relativeEnergyDelay()).c_str(),
            static_cast<unsigned long long>(
                sr.convDetailed.meas.cycles),
            static_cast<unsigned long long>(
                sr.convDetailed.meas.l1iMisses),
            golden::renderPolicyGoldenRow(name, sr, 0).c_str(),
            golden::renderPolicyGoldenRow(name, sr, 1).c_str(),
            golden::renderPolicyGoldenRow(name, sr, 2).c_str(),
            golden::renderPolicyGoldenRow(name, sr, 3).c_str(),
            i + 1 < benches.size() ? "," : "),");
    }
    std::printf("    [](const ::testing::TestParamInfo"
                "<PolicyGoldenCase> &info) {\n"
                "        return std::string(info.param.benchmark);\n"
                "    });\n");
}

} // namespace

int
main()
{
    const std::vector<std::string> benches{"compress", "li"};
    std::fprintf(stderr, "regenerating golden expectations for "
                         "compress and li (single-level, "
                         "multi-level, cmp, coherent-cmp, "
                         "policies)...\n");
    printSingleLevel(benches);
    printMultiLevel(benches);
    printCmp();
    printCoherentCmp();
    printPolicy(benches);
    return 0;
}
