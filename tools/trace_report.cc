/**
 * @file
 * Offline summarizer for the observability artifacts a run leaves
 * behind (docs/REPRODUCTION.md, "Tracing a run"):
 *
 *   trace_report [--trace FILE] [--metrics FILE]
 *                [--top K] [--series FILTER]
 *
 * --trace prints the per-category wall breakdown and the top-K
 * slowest spans of a chrome-trace JSON file (obs/trace.hh; K
 * defaults to 10). --metrics prints the phase table of an interval
 * CSV (obs/metrics.hh): per-series, per-interval CPI, L1I miss
 * rate, DRI active fraction/bytes, drowsy fraction and wake/resize
 * events — the time-resolved view the end-of-run aggregates hide.
 * --series keeps only metric series whose name contains FILTER
 * (e.g. "dri" or "core0"). At least one input is required; both
 * may be given.
 *
 * Exit codes: 0 ok, 2 usage or unreadable/malformed input.
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "obs/report.hh"
#include "obs/trace.hh"

using namespace drisim;

namespace
{

int
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--trace FILE] [--metrics FILE]\n"
                 "          [--top K] [--series FILTER]\n",
                 argv0);
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string tracePath;
    std::string metricsPath;
    std::string seriesFilter;
    std::size_t topK = 10;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&](std::string &dst) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value after %s\n",
                             arg.c_str());
                return false;
            }
            dst = argv[++i];
            return true;
        };
        std::string value;
        if (arg == "--trace") {
            if (!next(tracePath))
                return usage(argv[0]);
        } else if (arg == "--metrics") {
            if (!next(metricsPath))
                return usage(argv[0]);
        } else if (arg == "--series") {
            if (!next(seriesFilter))
                return usage(argv[0]);
        } else if (arg == "--top") {
            if (!next(value))
                return usage(argv[0]);
            char *end = nullptr;
            const unsigned long v =
                std::strtoul(value.c_str(), &end, 10);
            if (end == value.c_str() || *end != '\0' || v == 0) {
                std::fprintf(stderr, "bad --top '%s'\n",
                             value.c_str());
                return 2;
            }
            topK = static_cast<std::size_t>(v);
        } else {
            std::fprintf(stderr, "unknown argument '%s'\n",
                         arg.c_str());
            return usage(argv[0]);
        }
    }
    if (tracePath.empty() && metricsPath.empty())
        return usage(argv[0]);

    std::string error;
    if (!tracePath.empty()) {
        std::vector<obs::TraceSpan> spans;
        if (!obs::readTrace(tracePath, spans, error)) {
            std::fprintf(stderr, "trace_report: %s\n",
                         error.c_str());
            return 2;
        }
        std::fputs(obs::renderTraceReport(spans, topK).c_str(),
                   stdout);
    }
    if (!metricsPath.empty()) {
        obs::MetricsCsv csv;
        if (!obs::parseMetricsCsv(metricsPath, csv, error)) {
            std::fprintf(stderr, "trace_report: %s\n",
                         error.c_str());
            return 2;
        }
        if (!tracePath.empty())
            std::fputs("\n", stdout);
        std::fputs(obs::renderPhaseTable(csv, seriesFilter).c_str(),
                   stdout);
    }
    return 0;
}
