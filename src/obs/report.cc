/**
 * @file
 * Trace/metrics report rendering (tools/trace_report).
 */

#include "obs/report.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "util/str.hh"

namespace drisim::obs
{

namespace
{

std::vector<std::string>
splitCsvLine(const std::string &line)
{
    std::vector<std::string> cells;
    std::string cur;
    for (char c : line) {
        if (c == ',') {
            cells.push_back(cur);
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    cells.push_back(cur);
    return cells;
}

/** The headline metrics the phase table prints, in display order. */
const char *const kPhaseColumns[] = {
    "cpi",          "l1i_miss_rate", "active_fraction",
    "active_bytes", "drowsy_fraction", "wakes", "resizes"};

} // namespace

int
MetricsCsv::column(const std::string &metric) const
{
    for (std::size_t i = 2; i < columns.size(); ++i)
        if (columns[i] == metric)
            return static_cast<int>(i - 2);
    return -1;
}

bool
parseMetricsCsvText(const std::string &text, MetricsCsv &out,
                    std::string &error)
{
    out = MetricsCsv{};
    std::size_t pos = 0;
    bool header = true;
    while (pos < text.size()) {
        std::size_t eol = text.find('\n', pos);
        if (eol == std::string::npos)
            eol = text.size();
        const std::string line = text.substr(pos, eol - pos);
        pos = eol + 1;
        if (line.empty())
            continue;
        const std::vector<std::string> cells = splitCsvLine(line);
        if (header) {
            if (cells.size() < 2 || cells[0] != "series" ||
                cells[1] != "instrs") {
                error = "not an interval-metrics CSV header";
                return false;
            }
            out.columns = cells;
            header = false;
            continue;
        }
        if (cells.size() != out.columns.size()) {
            error = "CSV row width does not match header";
            return false;
        }
        MetricsCsv::Row row;
        row.series = cells[0];
        char *end = nullptr;
        row.instrs = std::strtoull(cells[1].c_str(), &end, 10);
        if (end == cells[1].c_str() || *end != '\0') {
            error = "bad instrs cell '" + cells[1] + "'";
            return false;
        }
        for (std::size_t i = 2; i < cells.size(); ++i) {
            const double v = std::strtod(cells[i].c_str(), &end);
            if (end == cells[i].c_str() || *end != '\0') {
                error = "bad value cell '" + cells[i] + "'";
                return false;
            }
            row.values.push_back(v);
        }
        out.rows.push_back(std::move(row));
    }
    if (header) {
        error = "empty metrics CSV";
        return false;
    }
    return true;
}

bool
parseMetricsCsv(const std::string &path, MetricsCsv &out,
                std::string &error)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f) {
        error = "cannot open '" + path + "'";
        return false;
    }
    std::string text;
    char buf[1 << 16];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, n);
    std::fclose(f);
    return parseMetricsCsvText(text, out, error);
}

std::string
renderTraceReport(const std::vector<TraceSpan> &spans,
                  std::size_t topK)
{
    std::string out =
        strFormat("trace report: %zu spans\n", spans.size());

    // Per-stage wall breakdown: where the wall-clock of a sweep
    // actually went, by span category.
    struct CatStats
    {
        std::size_t count = 0;
        std::uint64_t durMicros = 0;
    };
    std::map<std::string, CatStats> cats;
    for (const TraceSpan &s : spans) {
        CatStats &c = cats[s.cat];
        ++c.count;
        c.durMicros += s.dur;
    }
    out += "\nper-category breakdown:\n";
    out += strFormat("  %-12s %8s %12s\n", "category", "spans",
                     "total ms");
    for (const auto &[cat, c] : cats)
        out += strFormat("  %-12s %8zu %12.3f\n", cat.c_str(),
                         c.count,
                         static_cast<double>(c.durMicros) / 1000.0);

    // Top-K slowest spans; ties broken canonically so the report is
    // deterministic even on pinned (all-zero-duration) traces.
    std::vector<const TraceSpan *> byDur;
    byDur.reserve(spans.size());
    for (const TraceSpan &s : spans)
        byDur.push_back(&s);
    std::stable_sort(byDur.begin(), byDur.end(),
                     [](const TraceSpan *a, const TraceSpan *b) {
                         return a->dur > b->dur;
                     });
    if (byDur.size() > topK)
        byDur.resize(topK);
    out += strFormat("\ntop %zu slowest spans:\n", byDur.size());
    for (std::size_t i = 0; i < byDur.size(); ++i)
        out += strFormat(
            "  %2zu. %10.3f ms  %-12s %s\n", i + 1,
            static_cast<double>(byDur[i]->dur) / 1000.0,
            byDur[i]->cat.c_str(), byDur[i]->name.c_str());
    return out;
}

std::string
renderPhaseTable(const MetricsCsv &csv,
                 const std::string &seriesFilter)
{
    // Which headline columns this CSV actually carries.
    std::vector<std::pair<std::string, int>> cols;
    for (const char *name : kPhaseColumns) {
        const int idx = csv.column(name);
        if (idx >= 0)
            cols.emplace_back(name, idx);
    }

    // Rows grouped per series, preserving CSV (canonical) order.
    std::vector<std::string> order;
    std::map<std::string, std::vector<const MetricsCsv::Row *>>
        bySeries;
    for (const MetricsCsv::Row &r : csv.rows) {
        if (!seriesFilter.empty() &&
            r.series.find(seriesFilter) == std::string::npos)
            continue;
        if (bySeries.find(r.series) == bySeries.end())
            order.push_back(r.series);
        bySeries[r.series].push_back(&r);
    }

    std::string out;
    for (const std::string &series : order) {
        const auto &rows = bySeries[series];
        out += strFormat("series %s (%zu intervals)\n",
                         series.c_str(), rows.size());
        out += strFormat("  %8s %12s", "interval", "instrs");
        for (const auto &[name, idx] : cols)
            out += strFormat(" %15s", name.c_str());
        out += "\n";
        for (std::size_t i = 0; i < rows.size(); ++i) {
            out += strFormat(
                "  %8zu %12llu", i + 1,
                static_cast<unsigned long long>(rows[i]->instrs));
            for (const auto &[name, idx] : cols)
                out += strFormat(" %15.6g", rows[i]->values[idx]);
            out += "\n";
        }
    }
    if (out.empty())
        out = seriesFilter.empty()
                  ? std::string("no interval samples\n")
                  : "no series matching '" + seriesFilter + "'\n";
    return out;
}

} // namespace drisim::obs
