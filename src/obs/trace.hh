/**
 * @file
 * Chrome/Perfetto trace-event writer (catapult "trace event format",
 * the JSON flavour ui.perfetto.dev and chrome://tracing load).
 *
 * The simulator's layers emit complete ("ph":"X") spans: JobGraph
 * jobs (worker id, steal vs. local), detailed/fast/sampled run
 * segments, checkpoint save/restore, result-cache lookups and farm
 * per-unit execution. Spans are buffered in memory and written once
 * at exit in a canonical order (category, name, args, timestamps),
 * so the span *set* — not the scheduling — determines the output
 * bytes.
 *
 * Determinism contract (locked by tests/obs_test.cc): with
 * DRISIM_JSON_WALL_SECONDS set, every timestamp, duration and
 * worker annotation is pinned to zero, making the whole trace file
 * byte-identical at --jobs 1 vs --jobs 4.
 *
 * Strictly execution-only: no trace knob enters the ConfigKey and a
 * null writer costs one branch per hook.
 */

#ifndef DRISIM_OBS_TRACE_HH
#define DRISIM_OBS_TRACE_HH

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace drisim::obs
{

/** One complete ("ph":"X") trace event. */
struct TraceSpan
{
    std::string name;
    std::string cat;
    /** Microseconds since the writer's epoch (0 when pinned). */
    std::uint64_t ts = 0;
    /** Span length in microseconds (0 when pinned). */
    std::uint64_t dur = 0;
    /** Worker/thread lane (0 when pinned). */
    unsigned tid = 0;
    /** Extra key/value annotations, rendered in insertion order. */
    std::vector<std::pair<std::string, std::string>> args;
};

/**
 * True (and @p value filled) when DRISIM_JSON_WALL_SECONDS pins the
 * wall clock — the same env contract writeJsonReport honours, shared
 * here so traces, metrics and fragment wall seconds all pin off one
 * switch.
 */
bool pinnedWallSeconds(double &value);

/** Thread-safe span buffer + canonical writer for one trace file. */
class TraceWriter
{
  public:
    explicit TraceWriter(std::string path);

    /** Wall clock pinned (see pinnedWallSeconds)? */
    bool pinned() const { return pinned_; }

    /** Microseconds since construction; always 0 when pinned. */
    std::uint64_t nowMicros() const;

    /** Buffer one finished span (thread-safe). */
    void complete(TraceSpan span);

    std::size_t spanCount() const;
    const std::string &path() const { return path_; }

    /** Take a canonically ordered copy of the buffered spans. */
    std::vector<TraceSpan> spans() const;

    /** Render and write the trace file (canonical order). */
    bool write(std::string &error) const;

  private:
    std::string path_;
    bool pinned_ = false;
    std::chrono::steady_clock::time_point epoch_;
    mutable std::mutex mu_;
    std::vector<TraceSpan> spans_;
};

/**
 * RAII span: opens on construction, completes on destruction with
 * the measured duration. A null @p writer makes every member a
 * no-op, so hooks can be written unconditionally.
 */
class ScopedSpan
{
  public:
    ScopedSpan(TraceWriter *writer, std::string cat, std::string name,
               std::vector<std::pair<std::string, std::string>>
                   args = {});
    ~ScopedSpan();

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

    /** Append an annotation before the span closes. */
    void arg(std::string key, std::string value);

    /** Assign the span's thread lane (suppressed when pinned). */
    void tid(unsigned t);

  private:
    TraceWriter *writer_;
    TraceSpan span_;
    std::uint64_t start_ = 0;
};

/** @name Global trace sink
 *  Installed once by the bench front-ends (`--trace PATH`); null by
 *  default, so instrumented code pays one branch when tracing is
 *  off. Not a knob: never part of any run's identity.
 */
///@{
TraceWriter *trace();
TraceWriter *initTrace(const std::string &path);
void resetTrace(); ///< drop the installed writer (tests)
///@}

/** Canonically sort @p spans (category, name, args, timestamps). */
void sortSpans(std::vector<TraceSpan> &spans);

/** Render @p spans (already ordered) as a trace-event document. */
std::string renderTraceEvents(const std::vector<TraceSpan> &spans);

/** Parse a trace file this module wrote (strict, like the sidecar
 *  readers: any deviation fails the whole file). */
bool readTrace(const std::string &path, std::vector<TraceSpan> &out,
               std::string &error);

/** Sort + render + write @p spans to @p path (sweep_merge). */
bool writeTraceFile(const std::string &path,
                    std::vector<TraceSpan> spans, std::string &error);

} // namespace drisim::obs

#endif // DRISIM_OBS_TRACE_HH
