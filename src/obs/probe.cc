/**
 * @file
 * Probe registry implementation.
 */

#include "obs/probe.hh"

#include "util/logging.hh"

namespace drisim::obs
{

void
MetricRegistry::add(std::string name, std::function<double()> read)
{
    drisim_assert(read != nullptr, "probe '%s' has no reader",
                  name.c_str());
    probes_.push_back(Probe{std::move(name), std::move(read)});
}

std::vector<std::pair<std::string, double>>
MetricRegistry::sample() const
{
    std::vector<std::pair<std::string, double>> out;
    out.reserve(probes_.size());
    for (const Probe &p : probes_)
        out.emplace_back(p.name, p.read());
    return out;
}

} // namespace drisim::obs
