/**
 * @file
 * Interval time-series recorder: the sink the per-run samplers feed
 * every `metrics.interval` retired instructions (aligned down to the
 * fast model's 64-instruction retire batch so chunked execution
 * stays bit-identical to a single run).
 *
 * One *series* is one simulated run, named
 * `<bench>/<mode>#<confighash>` (or `<mix>/cmp#<hash>/coreK` for CMP
 * cores); each sample carries already-differenced per-interval
 * values (interval CPI, interval miss rates, resize/wake deltas,
 * instantaneous active bytes). The CSV emission canonicalizes
 * everything at write time — series sorted by name, columns the
 * sorted union of metric names — so output bytes depend only on the
 * sample set, never on worker scheduling (byte-identical at
 * --jobs 1 vs --jobs 4; locked by tests/obs_test.cc).
 *
 * Execution-only, like the trace writer: a null sink costs one
 * branch per hook, and no metrics knob enters the ConfigKey.
 */

#ifndef DRISIM_OBS_METRICS_HH
#define DRISIM_OBS_METRICS_HH

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/types.hh"

namespace drisim::obs
{

/** Default sampling interval in retired instructions. */
constexpr InstCount kDefaultMetricsInterval = 100 * 1000;

/** Buffers interval samples per series; writes one canonical CSV. */
class TimeSeriesRecorder
{
  public:
    TimeSeriesRecorder(std::string path,
                       InstCount interval = kDefaultMetricsInterval);

    /** Sampling interval, already aligned down to a multiple of 64
     *  (and at least 64). */
    InstCount interval() const { return interval_; }

    /**
     * Record one interval sample for @p series at cumulative
     * instruction count @p instrs (thread-safe). Values arrive as
     * (metric name, value) pairs; missing metrics render as 0.
     */
    void record(
        const std::string &series, std::uint64_t instrs,
        std::vector<std::pair<std::string, double>> values);

    std::size_t sampleCount() const;
    const std::string &path() const { return path_; }

    /** Render the canonical CSV document. */
    std::string renderCsv() const;

    /** Render + write the CSV to path(). */
    bool write(std::string &error) const;

  private:
    struct Sample
    {
        std::uint64_t instrs = 0;
        std::vector<std::pair<std::string, double>> values;
    };

    std::string path_;
    InstCount interval_;
    mutable std::mutex mu_;
    /** Keyed by series name: map order IS the canonical order. */
    std::map<std::string, std::vector<Sample>> series_;
};

/** @name Global metrics sink
 *  Installed by the bench front-ends (`--metrics PATH`); null by
 *  default. Not a knob: never part of any run's identity.
 */
///@{
TimeSeriesRecorder *metrics();
TimeSeriesRecorder *initMetrics(
    const std::string &path,
    InstCount interval = kDefaultMetricsInterval);
void resetMetrics(); ///< drop the installed recorder (tests)
///@}

} // namespace drisim::obs

#endif // DRISIM_OBS_METRICS_HH
