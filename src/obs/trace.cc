/**
 * @file
 * Trace-event buffering, canonical ordering, rendering and strict
 * re-reading (the reader only accepts what the renderer emits, like
 * every other sidecar format in the tree).
 */

#include "obs/trace.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "util/json.hh"

namespace drisim::obs
{

namespace
{

std::unique_ptr<TraceWriter> gTrace;

/** args rendered as a flat sort key for the canonical order. */
std::string
argsKey(const TraceSpan &s)
{
    std::string key;
    for (const auto &[k, v] : s.args) {
        key += k;
        key += '=';
        key += v;
        key += ';';
    }
    return key;
}

std::string
renderEvent(const TraceSpan &s)
{
    std::string out = "{\"name\": \"" + jsonEscape(s.name) +
                      "\", \"cat\": \"" + jsonEscape(s.cat) +
                      "\", \"ph\": \"X\", \"ts\": " +
                      std::to_string(s.ts) +
                      ", \"dur\": " + std::to_string(s.dur) +
                      ", \"pid\": 1, \"tid\": " +
                      std::to_string(s.tid) + ", \"args\": {";
    bool first = true;
    for (const auto &[k, v] : s.args) {
        if (!first)
            out += ", ";
        first = false;
        out += "\"" + jsonEscape(k) + "\": \"" + jsonEscape(v) +
               "\"";
    }
    out += "}}";
    return out;
}

bool
expectKey(JsonParser &p, const char *key)
{
    if (p.parseString() != key) {
        p.ok = false;
        return false;
    }
    return p.consume(':');
}

bool
readWholeFile(const std::string &path, std::string &out,
              std::string &error)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f) {
        error = "cannot open '" + path + "'";
        return false;
    }
    char buf[1 << 16];
    std::size_t n = 0;
    out.clear();
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out.append(buf, n);
    std::fclose(f);
    return true;
}

} // namespace

bool
pinnedWallSeconds(double &value)
{
    const char *env = std::getenv("DRISIM_JSON_WALL_SECONDS");
    if (!env)
        return false;
    char *end = nullptr;
    const double v = std::strtod(env, &end);
    if (end == env || *end != '\0')
        return false;
    value = v;
    return true;
}

TraceWriter::TraceWriter(std::string path) : path_(std::move(path))
{
    double pin = 0.0;
    pinned_ = pinnedWallSeconds(pin);
    epoch_ = std::chrono::steady_clock::now();
}

std::uint64_t
TraceWriter::nowMicros() const
{
    if (pinned_)
        return 0;
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
}

void
TraceWriter::complete(TraceSpan span)
{
    if (pinned_) {
        span.ts = 0;
        span.dur = 0;
        span.tid = 0;
    }
    std::lock_guard<std::mutex> lock(mu_);
    spans_.push_back(std::move(span));
}

std::size_t
TraceWriter::spanCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return spans_.size();
}

std::vector<TraceSpan>
TraceWriter::spans() const
{
    std::vector<TraceSpan> copy;
    {
        std::lock_guard<std::mutex> lock(mu_);
        copy = spans_;
    }
    sortSpans(copy);
    return copy;
}

bool
TraceWriter::write(std::string &error) const
{
    return writeTraceFile(path_, spans(), error);
}

ScopedSpan::ScopedSpan(
    TraceWriter *writer, std::string cat, std::string name,
    std::vector<std::pair<std::string, std::string>> args)
    : writer_(writer)
{
    if (!writer_)
        return;
    span_.cat = std::move(cat);
    span_.name = std::move(name);
    span_.args = std::move(args);
    start_ = writer_->nowMicros();
}

ScopedSpan::~ScopedSpan()
{
    if (!writer_)
        return;
    span_.ts = start_;
    span_.dur = writer_->nowMicros() - start_;
    writer_->complete(std::move(span_));
}

void
ScopedSpan::arg(std::string key, std::string value)
{
    if (!writer_)
        return;
    span_.args.emplace_back(std::move(key), std::move(value));
}

void
ScopedSpan::tid(unsigned t)
{
    if (!writer_)
        return;
    span_.tid = t;
}

TraceWriter *
trace()
{
    return gTrace.get();
}

TraceWriter *
initTrace(const std::string &path)
{
    gTrace = std::make_unique<TraceWriter>(path);
    return gTrace.get();
}

void
resetTrace()
{
    gTrace.reset();
}

void
sortSpans(std::vector<TraceSpan> &spans)
{
    std::stable_sort(
        spans.begin(), spans.end(),
        [](const TraceSpan &a, const TraceSpan &b) {
            if (a.cat != b.cat)
                return a.cat < b.cat;
            if (a.name != b.name)
                return a.name < b.name;
            const std::string ka = argsKey(a);
            const std::string kb = argsKey(b);
            if (ka != kb)
                return ka < kb;
            if (a.ts != b.ts)
                return a.ts < b.ts;
            if (a.dur != b.dur)
                return a.dur < b.dur;
            return a.tid < b.tid;
        });
}

std::string
renderTraceEvents(const std::vector<TraceSpan> &spans)
{
    std::string out = "{\"traceEvents\": [";
    bool first = true;
    for (const TraceSpan &s : spans) {
        out += first ? "\n" : ",\n";
        first = false;
        out += renderEvent(s);
    }
    out += "\n], \"displayTimeUnit\": \"ms\"}\n";
    return out;
}

bool
readTrace(const std::string &path, std::vector<TraceSpan> &out,
          std::string &error)
{
    std::string text;
    if (!readWholeFile(path, text, error))
        return false;

    JsonParser p(text);
    p.consume('{');
    expectKey(p, "traceEvents");
    p.consume('[');
    out.clear();
    while (p.ok && !p.peek(']')) {
        if (!out.empty())
            p.consume(',');
        TraceSpan s;
        p.consume('{');
        expectKey(p, "name");
        s.name = p.parseString();
        p.consume(',');
        expectKey(p, "cat");
        s.cat = p.parseString();
        p.consume(',');
        expectKey(p, "ph");
        if (p.parseString() != "X")
            p.ok = false;
        p.consume(',');
        expectKey(p, "ts");
        s.ts = p.parseUInt();
        p.consume(',');
        expectKey(p, "dur");
        s.dur = p.parseUInt();
        p.consume(',');
        expectKey(p, "pid");
        p.parseUInt();
        p.consume(',');
        expectKey(p, "tid");
        s.tid = static_cast<unsigned>(p.parseUInt());
        p.consume(',');
        expectKey(p, "args");
        p.consume('{');
        while (p.ok && !p.peek('}')) {
            if (!s.args.empty())
                p.consume(',');
            const std::string k = p.parseString();
            p.consume(':');
            const std::string v = p.parseString();
            s.args.emplace_back(k, v);
        }
        p.consume('}');
        p.consume('}');
        if (!p.ok)
            break;
        out.push_back(std::move(s));
    }
    p.consume(']');
    p.consume(',');
    expectKey(p, "displayTimeUnit");
    if (p.parseString() != "ms")
        p.ok = false;
    p.consume('}');
    if (!p.ok) {
        error = "malformed trace '" + path + "'";
        out.clear();
        return false;
    }
    return true;
}

bool
writeTraceFile(const std::string &path, std::vector<TraceSpan> spans,
               std::string &error)
{
    sortSpans(spans);
    const std::string doc = renderTraceEvents(spans);
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        error = "cannot write trace '" + path + "'";
        return false;
    }
    const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) ==
                    doc.size();
    std::fclose(f);
    if (!ok)
        error = "short write to '" + path + "'";
    return ok;
}

} // namespace drisim::obs
