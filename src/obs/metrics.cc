/**
 * @file
 * Interval time-series buffering and canonical CSV emission.
 */

#include "obs/metrics.hh"

#include <algorithm>
#include <cstdio>
#include <set>

#include "util/str.hh"

namespace drisim::obs
{

namespace
{

std::unique_ptr<TimeSeriesRecorder> gMetrics;

/** Shortest round-trippable rendering of a metric value. */
std::string
formatValue(double v)
{
    return strFormat("%.9g", v);
}

} // namespace

TimeSeriesRecorder::TimeSeriesRecorder(std::string path,
                                       InstCount interval)
    : path_(std::move(path))
{
    // Align to the fast model's retire batch so the metered run loop
    // (harness/runner.cc) splits at boundaries both core models
    // cross bit-identically (same rule as the checkpoint midpoint).
    interval_ = std::max<InstCount>(64, interval & ~InstCount{63});
}

void
TimeSeriesRecorder::record(
    const std::string &series, std::uint64_t instrs,
    std::vector<std::pair<std::string, double>> values)
{
    Sample s;
    s.instrs = instrs;
    s.values = std::move(values);
    std::lock_guard<std::mutex> lock(mu_);
    series_[series].push_back(std::move(s));
}

std::size_t
TimeSeriesRecorder::sampleCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t n = 0;
    for (const auto &[name, samples] : series_)
        n += samples.size();
    return n;
}

std::string
TimeSeriesRecorder::renderCsv() const
{
    std::lock_guard<std::mutex> lock(mu_);

    // Canonical column order: the sorted union of every metric name
    // seen anywhere, so the document's shape is independent of which
    // series happened to record first.
    std::set<std::string> names;
    for (const auto &[name, samples] : series_)
        for (const Sample &s : samples)
            for (const auto &[metric, value] : s.values)
                names.insert(metric);

    std::string out = "series,instrs";
    for (const std::string &n : names)
        out += "," + n;
    out += "\n";

    for (const auto &[name, samples] : series_) {
        for (const Sample &s : samples) {
            out += name + "," + std::to_string(s.instrs);
            for (const std::string &n : names) {
                double v = 0.0;
                for (const auto &[metric, value] : s.values)
                    if (metric == n) {
                        v = value;
                        break;
                    }
                out += "," + formatValue(v);
            }
            out += "\n";
        }
    }
    return out;
}

bool
TimeSeriesRecorder::write(std::string &error) const
{
    const std::string doc = renderCsv();
    std::FILE *f = std::fopen(path_.c_str(), "w");
    if (!f) {
        error = "cannot write metrics '" + path_ + "'";
        return false;
    }
    const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) ==
                    doc.size();
    std::fclose(f);
    if (!ok)
        error = "short write to '" + path_ + "'";
    return ok;
}

TimeSeriesRecorder *
metrics()
{
    return gMetrics.get();
}

TimeSeriesRecorder *
initMetrics(const std::string &path, InstCount interval)
{
    gMetrics = std::make_unique<TimeSeriesRecorder>(path, interval);
    return gMetrics.get();
}

void
resetMetrics()
{
    gMetrics.reset();
}

} // namespace drisim::obs
