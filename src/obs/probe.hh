/**
 * @file
 * Probe registry: named scalar readouts over live simulator state.
 *
 * A Probe is a (name, closure) pair the instrumented layer registers
 * once per run; the interval sampler (obs/metrics.hh) reads the
 * whole registry at each boundary. Everything here is strictly
 * execution-only observability: probes never feed back into the
 * simulation and none of their knobs enter the ConfigKey, so every
 * golden stays byte-identical whether or not anything is attached
 * (locked by tests/obs_test.cc and the options_test guard).
 *
 * Zero overhead when disabled: nothing in the simulator ever builds
 * a registry unless a sink (obs::metrics()) is installed — the fast
 * path in every hook is a single branch on a null pointer.
 */

#ifndef DRISIM_OBS_PROBE_HH
#define DRISIM_OBS_PROBE_HH

#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace drisim::obs
{

/** One named scalar readout of live simulator state. */
struct Probe
{
    std::string name;
    std::function<double()> read;
};

/**
 * An ordered collection of probes. Registration order is the
 * caller's; the CSV emission layer canonicalizes column order at
 * write time, so registration order never affects output bytes.
 */
class MetricRegistry
{
  public:
    /** Register @p read under @p name (names should be unique). */
    void add(std::string name, std::function<double()> read);

    const std::vector<Probe> &probes() const { return probes_; }

    /** Read every probe once, in registration order. */
    std::vector<std::pair<std::string, double>> sample() const;

  private:
    std::vector<Probe> probes_;
};

} // namespace drisim::obs

#endif // DRISIM_OBS_PROBE_HH
