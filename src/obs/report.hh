/**
 * @file
 * Offline summarization of the observability artifacts: the
 * trace-event files (obs/trace.hh) and interval-metrics CSVs
 * (obs/metrics.hh). tools/trace_report is a thin shell over these
 * renderers; keeping the logic here makes the report text testable
 * (tests/obs_test.cc pins the DRI active-size trajectory and the
 * per-interval drowsy wake reconstruction).
 */

#ifndef DRISIM_OBS_REPORT_HH
#define DRISIM_OBS_REPORT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.hh"

namespace drisim::obs
{

/** An interval-metrics CSV, parsed back into rows. */
struct MetricsCsv
{
    /** Full header: "series", "instrs", then metric columns. */
    std::vector<std::string> columns;

    struct Row
    {
        std::string series;
        std::uint64_t instrs = 0;
        /** One value per metric column (columns[2..]). */
        std::vector<double> values;
    };
    std::vector<Row> rows;

    /** Index into Row::values for @p metric, or -1 when absent. */
    int column(const std::string &metric) const;
};

/** Parse a CSV document renderCsv() produced. */
bool parseMetricsCsvText(const std::string &text, MetricsCsv &out,
                         std::string &error);

/** Parse a CSV file renderCsv() produced. */
bool parseMetricsCsv(const std::string &path, MetricsCsv &out,
                     std::string &error);

/**
 * Trace summary: per-category wall breakdown (span count, total
 * milliseconds) followed by the top-@p topK slowest spans.
 */
std::string renderTraceReport(const std::vector<TraceSpan> &spans,
                              std::size_t topK);

/**
 * Phase table: per-series, per-interval rows of the headline
 * metrics (CPI, L1I miss rate, active fraction/bytes, drowsy
 * fraction, wake and resize events). @p seriesFilter, when
 * non-empty, keeps only series whose name contains it.
 */
std::string renderPhaseTable(const MetricsCsv &csv,
                             const std::string &seriesFilter);

} // namespace drisim::obs

#endif // DRISIM_OBS_REPORT_HH
