/**
 * @file
 * Program builder: turns a declarative ProgramSpec into a laid-out
 * ProgramImage (functions, loops, call sites, addresses).
 */

#ifndef DRISIM_WORKLOAD_PROGRAM_HH
#define DRISIM_WORKLOAD_PROGRAM_HH

#include <string>
#include <vector>

#include "workload/cfg.hh"

namespace drisim
{

/** Declarative description of one phase. */
struct PhaseSpec
{
    std::string name = "phase";
    /** Instruction footprint of the phase's code, bytes. */
    std::uint64_t codeBytes = 2048;
    /** Dynamic instructions spent in the phase per visit. */
    InstCount dynInstrs = 1000 * 1000;
    OpMix mix{};
    /** Average body instructions per basic block. */
    unsigned avgBlockInstrs = 8;
    /** Mean trip count of inner loops. */
    std::uint64_t meanInnerTrips = 16;
    /** Taken-probability for non-loop conditional branches;
     *  values near 0.5 strain the predictor (go, gcc). */
    double branchBias = 0.85;
    /** 0 = driver calls functions round-robin; 1 = shuffled call
     *  sites with duplicates (irregular i-stream, gcc/go/perl). */
    double callIrregularity = 0.0;
    /**
     * Layout the phase's functions across this many banks placed
     * bankStrideBytes apart: with a 64 KB stride, banks collide in
     * a 64 KB direct-mapped cache (conflict misses, Figure 6).
     */
    unsigned conflictBanks = 1;
    std::uint64_t bankStrideBytes = 64 * 1024;
    /** Fraction of workers placed in the conflicting bank(s). */
    double conflictFraction = 0.25;
    /** In-bank offset of conflict banks (skips the hot driver). */
    std::uint64_t conflictSkipBytes = 2048;
    /** Worker function size range, instructions. */
    unsigned minFnInstrs = 96;
    unsigned maxFnInstrs = 384;
    /** Data working set for loads/stores. */
    std::uint64_t dataBytes = 32 * 1024;
    /**
     * Cross-core shared window (coherence workloads): a
     * sharedFraction of memory references lands in a sharedBytes
     * window at sharedBase, common to all cores running the image.
     * sharedBytes == 0 (the default) keeps the phase sharing-free
     * and its reference stream byte-identical to earlier versions.
     */
    std::uint64_t sharedBytes = 0;
    double sharedFraction = 0.0;
    Addr sharedBase = 0x2000'0000;
};

/** Declarative description of a whole benchmark program. */
struct ProgramSpec
{
    std::string name = "prog";
    std::uint64_t seed = 1;
    std::vector<PhaseSpec> phases;
    /** Base address of the text segment. */
    Addr textBase = 0x0040'0000;
    /** Base address of the data segment. */
    Addr dataBase = 0x1000'0000;
};

/** Build and lay out the program image. */
ProgramImage buildProgram(const ProgramSpec &spec);

} // namespace drisim

#endif // DRISIM_WORKLOAD_PROGRAM_HH
