/**
 * @file
 * Trace generation: interprets a ProgramImage CFG into the executed
 * instruction stream.
 */

#include "workload/generator.hh"

#include "util/logging.hh"

namespace drisim
{

TraceGenerator::TraceGenerator(const ProgramImage &image)
    : img_(image), rng_(image.seed)
{
    drisim_assert(!img_.phases.empty(), "program has no phases");
    reset();
}

void
TraceGenerator::reset()
{
    rng_ = Rng(img_.seed);
    phaseIdx_ = 0;
    emittedInPhase_ = 0;
    produced_ = 0;
    destCounter_ = 0;
    fpDestCounter_ = 0;
    for (auto &r : recentDest_)
        r = 1;
    recentIdx_ = 0;
    seqLoadOff_ = 0;
    seqStoreOff_ = 0;
    seqSharedOff_ = 0;
    stack_.clear();
    enterPhase(0);
}

void
TraceGenerator::enterPhase(size_t phase)
{
    phaseIdx_ = phase;
    emittedInPhase_ = 0;
    stack_.clear();
    pushFrame(img_.phases[phase].driver);
    seqLoadOff_ = 0;
    seqStoreOff_ = 0;
    seqSharedOff_ = 0;
}

void
TraceGenerator::pushFrame(int func)
{
    Frame f;
    f.func = func;
    f.block = 0;
    f.instr = 0;
    f.latchRemaining.assign(
        img_.functions[static_cast<size_t>(func)].blocks.size(), 0);
    stack_.push_back(std::move(f));
}

const BasicBlock &
TraceGenerator::blockOf(const Frame &f) const
{
    return img_.functions[static_cast<size_t>(f.func)]
        .blocks[static_cast<size_t>(f.block)];
}

Addr
TraceGenerator::loadAddress()
{
    const Phase &ph = img_.phases[phaseIdx_];
    // Shared-window references come first so a sharing-free phase
    // (sharedBytes == 0) draws exactly the same RNG sequence as
    // before the window existed.
    if (ph.sharedBytes != 0 && rng_.chance(ph.sharedFraction)) {
        seqSharedOff_ = (seqSharedOff_ + 8) % ph.sharedBytes;
        return ph.sharedBase + seqSharedOff_;
    }
    if (rng_.chance(0.7)) {
        seqLoadOff_ = (seqLoadOff_ + 8) % ph.dataBytes;
        return ph.dataBase + seqLoadOff_;
    }
    return ph.dataBase + (rng_.range(ph.dataBytes) & ~Addr{7});
}

Addr
TraceGenerator::storeAddress()
{
    const Phase &ph = img_.phases[phaseIdx_];
    if (ph.sharedBytes != 0 && rng_.chance(ph.sharedFraction)) {
        seqSharedOff_ = (seqSharedOff_ + 8) % ph.sharedBytes;
        return ph.sharedBase + seqSharedOff_;
    }
    if (rng_.chance(0.8)) {
        seqStoreOff_ = (seqStoreOff_ + 8) % ph.dataBytes;
        return ph.dataBase + seqStoreOff_;
    }
    return ph.dataBase + (rng_.range(ph.dataBytes) & ~Addr{7});
}

void
TraceGenerator::makeBodyInstr(Instr &out, Addr pc)
{
    const OpMix &mix = img_.phases[phaseIdx_].mix;
    out.pc = pc;
    out.taken = false;
    out.nextPc = pc + kInstrBytes;
    out.memAddr = 0;

    const double roll = rng_.uniform();
    double acc = mix.loadFrac;

    // Pick sources among recently produced values: real dependency
    // chains with distance 1..8.
    const std::uint8_t s1 =
        recentDest_[(recentIdx_ + 7) & 7]; // distance ~1
    const std::uint8_t s2 =
        recentDest_[rng_.range(8)];        // distance 1..8

    auto set_dest = [&](bool fp) {
        std::uint8_t d;
        if (fp) {
            d = static_cast<std::uint8_t>(33 + (fpDestCounter_++ % 27));
        } else {
            d = static_cast<std::uint8_t>(1 + (destCounter_++ % 27));
        }
        out.dest = d;
        recentDest_[recentIdx_ & 7] = d;
        ++recentIdx_;
    };

    if (roll < acc) {
        out.op = OpClass::Load;
        out.src1 = 30; // base register
        out.src2 = 0;
        set_dest(false);
        out.memAddr = loadAddress();
        return;
    }
    acc += mix.storeFrac;
    if (roll < acc) {
        out.op = OpClass::Store;
        out.src1 = s1;
        out.src2 = 30;
        out.dest = 0;
        out.memAddr = storeAddress();
        return;
    }
    acc += mix.fpFrac;
    if (roll < acc) {
        out.op = OpClass::FpAlu;
        out.src1 = s1 >= 33 ? s1 : 33;
        out.src2 = s2 >= 33 ? s2 : 34;
        set_dest(true);
        return;
    }
    acc += mix.mulFrac;
    if (roll < acc) {
        out.op = OpClass::IntMul;
        out.src1 = s1;
        out.src2 = s2;
        set_dest(false);
        return;
    }
    out.op = OpClass::IntAlu;
    out.src1 = s1;
    out.src2 = rng_.chance(0.6) ? s2 : std::uint8_t{0};
    set_dest(false);
}

bool
TraceGenerator::next(Instr &out)
{
    const Phase &phase = img_.phases[phaseIdx_];
    Frame &f = stack_.back();
    const BasicBlock &b = blockOf(f);
    const Addr pc = b.pcOf(f.instr);

    // Phase transition: splice in a jump to the next phase's driver.
    if (emittedInPhase_ >= phase.duration) {
        const size_t next_phase = (phaseIdx_ + 1) % img_.phases.size();
        const int next_driver = img_.phases[next_phase].driver;
        const Addr target =
            img_.functions[static_cast<size_t>(next_driver)]
                .blocks[0]
                .startPc;
        out = Instr{};
        out.pc = pc;
        out.op = OpClass::Jump;
        out.taken = true;
        out.nextPc = target;
        enterPhase(next_phase);
        ++produced_;
        return true;
    }

    const bool is_term = (f.instr == b.numInstrs - 1) &&
                         b.term != BlockTerm::FallThrough;

    if (!is_term) {
        makeBodyInstr(out, pc);
        ++f.instr;
        if (f.instr >= b.numInstrs) {
            // FallThrough into the sequential successor.
            f.block = b.fallthrough >= 0 ? b.fallthrough : f.block + 1;
            f.instr = 0;
        }
        ++emittedInPhase_;
        ++produced_;
        return true;
    }

    // Terminator.
    out = Instr{};
    out.pc = pc;
    out.memAddr = 0;
    switch (b.term) {
      case BlockTerm::CondBranch: {
        out.op = OpClass::Branch;
        out.src1 = recentDest_[(recentIdx_ + 7) & 7];
        const bool taken = rng_.chance(b.takenProb);
        out.taken = taken;
        const int next = taken ? b.target : b.fallthrough;
        const BasicBlock &nb = img_.functions[
            static_cast<size_t>(f.func)].blocks[
            static_cast<size_t>(next)];
        out.nextPc = taken ? nb.startPc : b.endPc();
        f.block = next;
        f.instr = 0;
        break;
      }
      case BlockTerm::LoopLatch: {
        out.op = OpClass::Branch;
        out.src1 = recentDest_[(recentIdx_ + 7) & 7];
        std::uint64_t rem =
            f.latchRemaining[static_cast<size_t>(f.block)];
        if (rem == 0) {
            rem = rng_.geometric(static_cast<double>(b.meanTrips));
        }
        --rem;
        const bool taken = rem > 0;
        f.latchRemaining[static_cast<size_t>(f.block)] =
            taken ? rem : 0;
        out.taken = taken;
        const int next = taken ? b.target : b.fallthrough;
        const BasicBlock &nb = img_.functions[
            static_cast<size_t>(f.func)].blocks[
            static_cast<size_t>(next)];
        out.nextPc = taken ? nb.startPc : b.endPc();
        f.block = next;
        f.instr = 0;
        break;
      }
      case BlockTerm::Jump: {
        out.op = OpClass::Jump;
        out.taken = true;
        const BasicBlock &nb = img_.functions[
            static_cast<size_t>(f.func)].blocks[
            static_cast<size_t>(b.target)];
        out.nextPc = nb.startPc;
        f.block = b.target;
        f.instr = 0;
        break;
      }
      case BlockTerm::Call: {
        out.op = OpClass::Call;
        out.taken = true;
        const Function &callee =
            img_.functions[static_cast<size_t>(b.callee)];
        out.nextPc = callee.blocks[0].startPc;
        // Park the caller at the return point before descending.
        f.block = b.fallthrough;
        f.instr = 0;
        pushFrame(b.callee);
        break;
      }
      case BlockTerm::Return: {
        out.op = OpClass::Return;
        out.taken = true;
        if (stack_.size() > 1) {
            stack_.pop_back();
            Frame &caller = stack_.back();
            out.nextPc = blockOf(caller).pcOf(caller.instr);
        } else {
            // The driver never returns; defensive restart.
            out.nextPc = img_.functions[
                static_cast<size_t>(f.func)].blocks[0].startPc;
            f.block = 0;
            f.instr = 0;
        }
        break;
      }
      case BlockTerm::FallThrough:
        drisim_panic("FallThrough cannot be a terminator");
    }

    ++emittedInPhase_;
    ++produced_;
    return true;
}

} // namespace drisim
