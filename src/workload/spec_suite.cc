/**
 * @file
 * The fifteen synthetic SPEC95 benchmark specs and their classes,
 * plus the class-4 sharing workloads that drive the CMP coherence
 * protocol (shared_image, producer, consumer).
 */

#include "workload/spec_suite.hh"

#include "util/logging.hh"

namespace drisim
{

namespace
{

constexpr std::uint64_t kKiB = 1024;
constexpr InstCount kM = 1000 * 1000;
constexpr InstCount kK = 1000;

PhaseSpec
phase(const std::string &name, std::uint64_t codeBytes,
      InstCount dynInstrs)
{
    PhaseSpec p;
    p.name = name;
    p.codeBytes = codeBytes;
    p.dynInstrs = dynInstrs;
    return p;
}

OpMix
fpMix(double fp)
{
    OpMix m;
    m.loadFrac = 0.24;
    m.storeFrac = 0.08;
    m.fpFrac = fp;
    m.mulFrac = 0.02;
    return m;
}

OpMix
intMix()
{
    OpMix m;
    m.loadFrac = 0.22;
    m.storeFrac = 0.11;
    m.fpFrac = 0.0;
    m.mulFrac = 0.03;
    return m;
}

std::vector<BenchmarkInfo>
buildSuite()
{
    std::vector<BenchmarkInfo> suite;

    auto add = [&](const std::string &name, int cls,
                   std::uint64_t seed,
                   std::vector<PhaseSpec> phases) {
        BenchmarkInfo info;
        info.name = name;
        info.benchClass = cls;
        info.spec.name = name;
        info.spec.seed = seed;
        info.spec.phases = std::move(phases);
        suite.push_back(std::move(info));
    };

    // ----- Class 1: small working sets in tight loops -------------
    {
        PhaseSpec init = phase("init", 24 * kKiB, 200 * kK);
        init.mix = fpMix(0.15);
        PhaseSpec main = phase("main", 2 * kKiB, 9800 * kK);
        main.mix = fpMix(0.30);
        main.meanInnerTrips = 24;
        main.dataBytes = 512 * kKiB;
        add("applu", 1, 101, {init, main});
    }
    {
        PhaseSpec init = phase("init", 16 * kKiB, 150 * kK);
        init.mix = intMix();
        PhaseSpec main = phase("main", 3 * kKiB, 9850 * kK);
        main.mix = intMix();
        main.meanInnerTrips = 20;
        main.dataBytes = 256 * kKiB;
        add("compress", 1, 102, {init, main});
    }
    {
        PhaseSpec init = phase("init", 16 * kKiB, 150 * kK);
        init.mix = intMix();
        PhaseSpec main = phase("main", 2 * kKiB, 9850 * kK);
        main.mix = intMix();
        main.callIrregularity = 0.5;
        main.meanInnerTrips = 12;
        main.dataBytes = 64 * kKiB;
        add("li", 1, 103, {init, main});
    }
    {
        PhaseSpec init = phase("init", 20 * kKiB, 150 * kK);
        init.mix = fpMix(0.2);
        PhaseSpec main = phase("main", 3 * kKiB / 2, 9850 * kK);
        main.mix = fpMix(0.35);
        main.meanInnerTrips = 32;
        main.dataBytes = 1024 * kKiB;
        add("mgrid", 1, 104, {init, main});
    }
    {
        // swim: tiny loops, but hot code split across two banks
        // 64 KB apart -> direct-mapped conflict misses (Figure 6).
        PhaseSpec init = phase("init", 20 * kKiB, 150 * kK);
        init.mix = fpMix(0.2);
        PhaseSpec main = phase("main", 5 * kKiB / 2, 9850 * kK);
        main.mix = fpMix(0.30);
        main.meanInnerTrips = 28;
        main.conflictBanks = 2;
        main.dataBytes = 1024 * kKiB;
        add("swim", 1, 105, {init, main});
    }

    // ----- Class 2: large working sets throughout -----------------
    {
        PhaseSpec main = phase("main", 20 * kKiB, 10 * kM);
        main.mix = fpMix(0.25);
        main.meanInnerTrips = 10;
        main.dataBytes = 512 * kKiB;
        add("apsi", 2, 201, {main});
    }
    {
        // fpppp: needs the whole 64 KB; long straight-line blocks.
        PhaseSpec main = phase("main", 60 * kKiB, 10 * kM);
        main.mix = fpMix(0.35);
        main.avgBlockInstrs = 20;
        main.meanInnerTrips = 6;
        main.dataBytes = 256 * kKiB;
        add("fpppp", 2, 202, {main});
    }
    {
        // go: big, irregular, poorly predictable, conflict-prone.
        PhaseSpec main = phase("main", 54 * kKiB, 10 * kM);
        main.mix = intMix();
        main.branchBias = 0.62;
        main.callIrregularity = 1.0;
        main.meanInnerTrips = 12;
        main.conflictBanks = 2;
        main.conflictFraction = 0.12;
        main.minFnInstrs = 256;
        main.maxFnInstrs = 768;
        main.dataBytes = 128 * kKiB;
        add("go", 2, 203, {main});
    }
    {
        PhaseSpec main = phase("main", 24 * kKiB, 10 * kM);
        main.mix = intMix();
        main.meanInnerTrips = 10;
        main.dataBytes = 128 * kKiB;
        add("m88ksim", 2, 204, {main});
    }
    {
        PhaseSpec main = phase("main", 32 * kKiB, 10 * kM);
        main.mix = intMix();
        main.callIrregularity = 0.8;
        main.meanInnerTrips = 8;
        main.dataBytes = 192 * kKiB;
        add("perl", 2, 205, {main});
    }

    // ----- Class 3: distinct phases --------------------------------
    {
        // gcc: many phases, murky boundaries, conflict-prone.
        PhaseSpec p0 = phase("parse", 48 * kKiB, 1500 * kK);
        p0.mix = intMix();
        p0.callIrregularity = 0.8;
        p0.branchBias = 0.75;
        p0.conflictBanks = 2;
        p0.conflictFraction = 0.08;
        p0.minFnInstrs = 192;
        p0.maxFnInstrs = 640;
        p0.meanInnerTrips = 16;
        PhaseSpec p1 = phase("expand", 28 * kKiB, 1000 * kK);
        p1.mix = intMix();
        PhaseSpec p2 = phase("optimize", 56 * kKiB, 1500 * kK);
        p2.mix = intMix();
        p2.callIrregularity = 0.8;
        p2.conflictBanks = 2;
        p2.conflictFraction = 0.08;
        p2.minFnInstrs = 192;
        p2.maxFnInstrs = 640;
        p2.meanInnerTrips = 16;
        PhaseSpec p3 = phase("regalloc", 20 * kKiB, 800 * kK);
        p3.mix = intMix();
        PhaseSpec p4 = phase("emit", 36 * kKiB, 1200 * kK);
        p4.mix = intMix();
        p4.callIrregularity = 0.6;
        add("gcc", 3, 301, {p0, p1, p2, p3, p4});
    }
    {
        // hydro2d: full-size init, then tiny loops (clear phases).
        PhaseSpec init = phase("init", 48 * kKiB, 1200 * kK);
        init.mix = fpMix(0.2);
        PhaseSpec main = phase("main", 2 * kKiB, 8800 * kK);
        main.mix = fpMix(0.35);
        main.meanInnerTrips = 24;
        main.conflictBanks = 2;
        main.dataBytes = 1024 * kKiB;
        add("hydro2d", 3, 302, {init, main});
    }
    {
        PhaseSpec init = phase("init", 32 * kKiB, 1000 * kK);
        init.mix = intMix();
        PhaseSpec main = phase("main", 2 * kKiB, 9000 * kK);
        main.mix = intMix();
        main.meanInnerTrips = 28;
        main.dataBytes = 512 * kKiB;
        add("ijpeg", 3, 303, {init, main});
    }
    {
        PhaseSpec p0 = phase("sweep", 32 * kKiB, 1500 * kK);
        p0.mix = fpMix(0.3);
        p0.conflictBanks = 2;
        p0.conflictFraction = 0.15;
        p0.minFnInstrs = 192;
        p0.maxFnInstrs = 512;
        p0.meanInnerTrips = 12;
        PhaseSpec p1 = phase("update", 6 * kKiB, 1500 * kK);
        p1.mix = fpMix(0.3);
        PhaseSpec p2 = phase("measure", 24 * kKiB, 1500 * kK);
        p2.mix = fpMix(0.25);
        PhaseSpec p3 = phase("adjust", 4 * kKiB, 1500 * kK);
        p3.mix = fpMix(0.3);
        add("su2cor", 3, 304, {p0, p1, p2, p3});
    }
    {
        // tomcatv: short phases, boundaries hard to track.
        PhaseSpec p0 = phase("mesh", 36 * kKiB, 1000 * kK);
        p0.mix = fpMix(0.3);
        p0.conflictBanks = 2;
        p0.conflictFraction = 0.12;
        p0.minFnInstrs = 192;
        p0.maxFnInstrs = 512;
        p0.meanInnerTrips = 14;
        PhaseSpec p1 = phase("residual", 16 * kKiB, 750 * kK);
        p1.mix = fpMix(0.3);
        p1.meanInnerTrips = 14;
        PhaseSpec p2 = phase("solve", 28 * kKiB, 750 * kK);
        p2.mix = fpMix(0.3);
        p2.conflictBanks = 2;
        p2.conflictFraction = 0.12;
        p2.meanInnerTrips = 14;
        PhaseSpec p3 = phase("smooth", 12 * kKiB, 600 * kK);
        p3.mix = fpMix(0.3);
        add("tomcatv", 3, 305, {p0, p1, p2, p3});
    }

    // ----- Class 4: cross-core sharing (coherence workloads) -------
    // Every core of a CMP runs the same image, so a phase's shared
    // window is genuinely common: stores from one core invalidate
    // (or downgrade) the copies the others cached. Appended after
    // the classic fifteen so all existing mixes and indices are
    // unchanged.
    {
        // shared_image: all cores read and moderately update one
        // shared image (read-mostly sharing, invalidations from the
        // update stores).
        PhaseSpec main = phase("main", 8 * kKiB, 10 * kM);
        main.mix = intMix();
        main.meanInnerTrips = 16;
        main.dataBytes = 64 * kKiB;
        main.sharedBytes = 64 * kKiB;
        main.sharedFraction = 0.4;
        add("shared_image", 4, 401, {main});
    }
    {
        // producer: store-heavy walker over a small shared buffer —
        // the invalidation source in producer/consumer pairs.
        PhaseSpec main = phase("main", 6 * kKiB, 10 * kM);
        OpMix m = intMix();
        m.storeFrac = 0.24;
        m.loadFrac = 0.14;
        main.mix = m;
        main.meanInnerTrips = 12;
        main.dataBytes = 32 * kKiB;
        main.sharedBytes = 32 * kKiB;
        main.sharedFraction = 0.5;
        add("producer", 4, 402, {main});
    }
    {
        // consumer: load-heavy walker over the same shared buffer —
        // refetches what the producer keeps invalidating.
        PhaseSpec main = phase("main", 6 * kKiB, 10 * kM);
        OpMix m = intMix();
        m.loadFrac = 0.32;
        m.storeFrac = 0.04;
        main.mix = m;
        main.meanInnerTrips = 12;
        main.dataBytes = 32 * kKiB;
        main.sharedBytes = 32 * kKiB;
        main.sharedFraction = 0.5;
        add("consumer", 4, 403, {main});
    }

    return suite;
}

} // namespace

const std::vector<BenchmarkInfo> &
specSuite()
{
    static const std::vector<BenchmarkInfo> suite = buildSuite();
    return suite;
}

const BenchmarkInfo &
findBenchmark(const std::string &name)
{
    for (const auto &b : specSuite()) {
        if (b.name == name)
            return b;
    }
    drisim_fatal("unknown benchmark '%s'", name.c_str());
}

} // namespace drisim
