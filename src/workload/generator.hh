/**
 * @file
 * The trace generator: interprets a ProgramImage CFG and produces
 * the executed instruction stream (InstrStream).
 *
 * Deterministic: the stream depends only on the image and its seed,
 * so paired conventional/DRI runs see byte-identical traces. The
 * stream is endless — phases cycle — and the caller bounds the run
 * by instruction count.
 */

#ifndef DRISIM_WORKLOAD_GENERATOR_HH
#define DRISIM_WORKLOAD_GENERATOR_HH

#include <vector>

#include "cpu/isa.hh"
#include "util/random.hh"
#include "workload/cfg.hh"

namespace drisim::sim
{
class CheckpointWriter;
class CheckpointReader;
} // namespace drisim::sim

namespace drisim
{

/** CFG interpreter producing the dynamic instruction stream. */
class TraceGenerator : public InstrStream
{
  public:
    /** @param image the program to execute (must outlive this). */
    explicit TraceGenerator(const ProgramImage &image);

    bool next(Instr &out) override;

    /** Phase currently executing. */
    size_t currentPhase() const { return phaseIdx_; }

    /** Instructions produced so far. */
    InstCount produced() const { return produced_; }

    /** Rewind to the initial state (same stream again). */
    void reset();

    /**
     * Serialize the interpreter state (sim/checkpoint.hh). The
     * image itself is not serialized: restore into a generator
     * built over the same ProgramImage.
     */
    void snapshotTo(sim::CheckpointWriter &w) const;
    void restoreFrom(sim::CheckpointReader &r);

  private:
    /** One call-stack activation. */
    struct Frame
    {
        int func = -1;
        int block = 0;
        unsigned instr = 0;
        /** Remaining trips per latch block; 0 = not active. */
        std::vector<std::uint64_t> latchRemaining;
    };

    void enterPhase(size_t phase);
    void pushFrame(int func);
    const BasicBlock &blockOf(const Frame &f) const;

    /** Fill in a body (non-control) instruction. */
    void makeBodyInstr(Instr &out, Addr pc);

    Addr loadAddress();
    Addr storeAddress();

    const ProgramImage &img_;
    Rng rng_;

    size_t phaseIdx_ = 0;
    InstCount emittedInPhase_ = 0;
    InstCount produced_ = 0;

    std::vector<Frame> stack_;

    /** Register-assignment state. */
    unsigned destCounter_ = 0;
    unsigned fpDestCounter_ = 0;
    std::uint8_t recentDest_[8] = {0};
    unsigned recentIdx_ = 0;

    /** Data-stream state. */
    Addr seqLoadOff_ = 0;
    Addr seqStoreOff_ = 0;
    /** Strided walk over the phase's cross-core shared window. */
    Addr seqSharedOff_ = 0;
};

} // namespace drisim

#endif // DRISIM_WORKLOAD_GENERATOR_HH
