/**
 * @file
 * Program builder: lowers a ProgramSpec into a laid-out ProgramImage.
 */

#include "workload/program.hh"

#include <algorithm>

#include "util/bitops.hh"
#include "util/logging.hh"
#include "util/random.hh"

namespace drisim
{

namespace
{

/** Builder for one phase's functions. */
class PhaseBuilder
{
  public:
    PhaseBuilder(const PhaseSpec &ps, Rng &rng) : ps_(ps), rng_(rng) {}

    /** Build one worker function of roughly @p targetInstrs. */
    Function
    buildWorker(unsigned targetInstrs, const std::string &name)
    {
        Function f;
        f.name = name;
        unsigned used = 0;

        auto body_len = [&]() -> unsigned {
            const unsigned avg = ps_.avgBlockInstrs;
            return static_cast<unsigned>(
                rng_.between(std::max(2u, avg / 2), avg + avg / 2));
        };

        // Entry straight-line block.
        f.blocks.push_back(makeBody(body_len()));
        used += f.blocks.back().numInstrs;

        // Loop nests until the budget is spent.
        while (used + 16 < targetInstrs) {
            const int header = static_cast<int>(f.blocks.size());
            f.blocks.push_back(makeBody(body_len()));
            used += f.blocks.back().numInstrs;

            // Optional forward skip branch inside the loop body
            // (hammocks make the branch predictor work for a living).
            if (rng_.chance(0.35) && used + 12 < targetInstrs) {
                BasicBlock cond = makeBody(body_len());
                cond.term = BlockTerm::CondBranch;
                cond.takenProb = 1.0 - ps_.branchBias;
                const int cond_id = static_cast<int>(f.blocks.size());
                cond.target = cond_id + 2;     // skip one block
                cond.fallthrough = cond_id + 1;
                f.blocks.push_back(cond);
                used += cond.numInstrs;

                f.blocks.push_back(makeBody(body_len()));
                used += f.blocks.back().numInstrs;
            }

            BasicBlock latch = makeBody(
                std::max(3u, body_len() / 2));
            latch.term = BlockTerm::LoopLatch;
            latch.target = header;
            latch.fallthrough = static_cast<int>(f.blocks.size()) + 1;
            latch.meanTrips =
                std::max<std::uint64_t>(2, rng_.geometric(
                    static_cast<double>(ps_.meanInnerTrips)));
            f.blocks.push_back(latch);
            used += f.blocks.back().numInstrs;
        }

        // Return block.
        BasicBlock ret = makeBody(2);
        ret.term = BlockTerm::Return;
        f.blocks.push_back(ret);

        fixupTargets(f);
        return f;
    }

    /**
     * Build the phase driver: one call site per entry of
     * @p callOrder, looping forever.
     */
    Function
    buildDriver(const std::vector<int> &callOrder,
                const std::string &name)
    {
        Function f;
        f.name = name;
        for (int callee : callOrder) {
            BasicBlock b = makeBody(3);
            b.term = BlockTerm::Call;
            b.callee = callee;
            b.fallthrough = static_cast<int>(f.blocks.size()) + 1;
            f.blocks.push_back(b);
        }
        BasicBlock loop = makeBody(2);
        loop.term = BlockTerm::Jump;
        loop.target = 0;
        f.blocks.push_back(loop);
        fixupTargets(f);
        return f;
    }

  private:
    BasicBlock
    makeBody(unsigned instrs)
    {
        BasicBlock b;
        b.numInstrs = std::max(1u, instrs);
        b.term = BlockTerm::FallThrough;
        b.fallthrough = -1; // sequential; set by fixup
        return b;
    }

    void
    fixupTargets(Function &f)
    {
        const int last = static_cast<int>(f.blocks.size()) - 1;
        for (int i = 0; i <= last; ++i) {
            BasicBlock &b = f.blocks[static_cast<size_t>(i)];
            if (b.fallthrough < 0 && b.term != BlockTerm::Return &&
                b.term != BlockTerm::Jump)
                b.fallthrough = std::min(i + 1, last);
            if (b.fallthrough > last)
                b.fallthrough = last;
            if (b.target > last)
                b.target = last;
        }
    }

    const PhaseSpec &ps_;
    Rng &rng_;
};

} // namespace

ProgramImage
buildProgram(const ProgramSpec &spec)
{
    drisim_assert(!spec.phases.empty(),
                  "a program needs at least one phase");
    ProgramImage img;
    img.name = spec.name;
    img.seed = spec.seed;
    Rng rng(spec.seed);

    Addr text_cursor = spec.textBase;
    Addr data_cursor = spec.dataBase;

    for (size_t pi = 0; pi < spec.phases.size(); ++pi) {
        const PhaseSpec &ps = spec.phases[pi];
        PhaseBuilder builder(ps, rng);
        Phase phase;
        phase.name = ps.name;
        phase.duration = ps.dynInstrs;
        phase.mix = ps.mix;
        phase.dataBase = data_cursor;
        phase.dataBytes = ps.dataBytes;
        phase.sharedBase = ps.sharedBase;
        phase.sharedBytes = ps.sharedBytes;
        phase.sharedFraction = ps.sharedFraction;

        // --- Workers ---------------------------------------------
        const std::uint64_t budget_instrs = ps.codeBytes / kInstrBytes;
        std::vector<int> workers;
        std::uint64_t used = 0;
        // Keep ~8% of the footprint for the driver's call sites.
        const std::uint64_t worker_budget =
            budget_instrs - std::min<std::uint64_t>(
                                budget_instrs / 12, 512);
        while (used < worker_budget) {
            std::uint64_t remaining = worker_budget - used;
            unsigned target = static_cast<unsigned>(std::min(
                remaining,
                rng.between(ps.minFnInstrs, ps.maxFnInstrs)));
            if (remaining < ps.minFnInstrs + ps.minFnInstrs / 2)
                target = static_cast<unsigned>(remaining);
            Function w = builder.buildWorker(
                std::max(32u, target),
                ps.name + "_w" + std::to_string(workers.size()));
            used += w.sizeBytes() / kInstrBytes;
            workers.push_back(static_cast<int>(img.functions.size()));
            img.functions.push_back(std::move(w));
        }

        // --- Driver call order -----------------------------------
        std::vector<int> order = workers;
        if (ps.callIrregularity > 0.0 && workers.size() > 1) {
            // Duplicate a fraction of call sites and shuffle.
            const size_t extra = static_cast<size_t>(
                ps.callIrregularity *
                static_cast<double>(workers.size()));
            for (size_t i = 0; i < extra; ++i)
                order.push_back(workers[rng.range(workers.size())]);
            for (size_t i = order.size(); i > 1; --i)
                std::swap(order[i - 1], order[rng.range(i)]);
        }

        const int driver_id = static_cast<int>(img.functions.size());
        img.functions.push_back(
            builder.buildDriver(order, ps.name + "_driver"));

        phase.driver = driver_id;
        phase.functions.push_back(driver_id);
        for (int w : workers)
            phase.functions.push_back(w);

        // --- Layout -----------------------------------------------
        // Most code sits in bank 0; a conflictFraction share of the
        // workers goes into banks bankStrideBytes away, which alias
        // with bank 0 modulo the stride (direct-mapped conflicts).
        // Conflict banks start conflictSkipBytes into the stride so
        // they collide with early workers, not the hot driver.
        const unsigned banks = std::max(1u, ps.conflictBanks);
        std::vector<Addr> bank_cursor(banks);
        bank_cursor[0] = text_cursor;
        // For small phases the skip would dodge the code entirely;
        // cap it at a third of the footprint.
        const std::uint64_t skip =
            std::min<std::uint64_t>(ps.conflictSkipBytes,
                                    ps.codeBytes / 3);
        for (unsigned b = 1; b < banks; ++b)
            bank_cursor[b] = text_cursor + b * ps.bankStrideBytes +
                             skip;

        auto place = [&](int fid, unsigned bank) {
            Function &f = img.functions[static_cast<size_t>(fid)];
            Addr pc = bank_cursor[bank];
            for (auto &blk : f.blocks) {
                blk.startPc = pc;
                pc += blk.numInstrs * kInstrBytes;
            }
            bank_cursor[bank] = roundUp(pc, 64);
        };
        place(driver_id, 0);

        // Every k-th worker lands in a conflict bank.
        const unsigned k =
            banks > 1 && ps.conflictFraction > 0.0
                ? std::max(2u, static_cast<unsigned>(
                                   1.0 / ps.conflictFraction + 0.5))
                : 0;
        unsigned conflict_rr = 1;
        for (size_t i = 0; i < workers.size(); ++i) {
            unsigned bank = 0;
            if (k != 0 && (i + 1) % k == 0) {
                bank = conflict_rr;
                conflict_rr = conflict_rr + 1 < banks
                                  ? conflict_rr + 1
                                  : 1;
            }
            place(workers[i], bank);
        }

        // Advance the text cursor past everything this phase laid
        // out, with a gap so phases never overlap.
        Addr high = 0;
        for (unsigned b = 0; b < banks; ++b)
            high = std::max(high, bank_cursor[b]);
        text_cursor = roundUp(high, 64 * 1024) + 64 * 1024;

        data_cursor = roundUp(data_cursor + ps.dataBytes, 4096) +
                      (1u << 20);

        img.phases.push_back(std::move(phase));
    }

    return img;
}

} // namespace drisim
