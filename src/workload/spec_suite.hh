/**
 * @file
 * The synthetic SPEC95 suite (see docs/DESIGN.md, Substitutions).
 *
 * Fifteen benchmark models named after the SPEC95 programs the paper
 * runs, each built to match its published i-cache behaviour class
 * (Section 5.3):
 *
 *  - class 1: small instruction working sets held in tight loops
 *    (applu, compress, li, mgrid, swim);
 *  - class 2: large working sets used throughout execution
 *    (apsi, fpppp, go, m88ksim, perl), fpppp needing the full 64 KB;
 *  - class 3: distinct phases with diverse i-cache requirements
 *    (gcc, hydro2d, ijpeg, su2cor, tomcatv).
 *
 * Benchmarks the paper reports as exhibiting direct-mapped conflict
 * misses (gcc, go, hydro2d, su2cor, swim, tomcatv — Figure 6) place
 * part of their hot code in banks 64 KB apart.
 *
 * Beyond the paper's fifteen, class 4 holds the sharing workloads
 * for the coherent CMP (shared_image, producer, consumer): phases
 * that route part of their references into a cross-core shared
 * window (workload/cfg.hh) to exercise the MSI protocol.
 */

#ifndef DRISIM_WORKLOAD_SPEC_SUITE_HH
#define DRISIM_WORKLOAD_SPEC_SUITE_HH

#include <string>
#include <vector>

#include "workload/program.hh"

namespace drisim
{

/** One benchmark: spec plus its paper classification. */
struct BenchmarkInfo
{
    std::string name;
    /** Paper class 1..3 (Section 5.3); 4 = sharing workloads. */
    int benchClass = 1;
    ProgramSpec spec;
};

/** The 15 paper benchmarks in presentation order, then the class-4
 *  sharing workloads (18 total). */
const std::vector<BenchmarkInfo> &specSuite();

/** Look up one benchmark by name (fatal if unknown). */
const BenchmarkInfo &findBenchmark(const std::string &name);

} // namespace drisim

#endif // DRISIM_WORKLOAD_SPEC_SUITE_HH
