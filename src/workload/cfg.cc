/**
 * @file
 * CFG construction and address-layout helpers.
 */

#include "workload/cfg.hh"

namespace drisim
{

std::uint64_t
Function::sizeBytes() const
{
    std::uint64_t n = 0;
    for (const auto &b : blocks)
        n += b.numInstrs;
    return n * kInstrBytes;
}

std::uint64_t
ProgramImage::totalCodeBytes() const
{
    std::uint64_t n = 0;
    for (const auto &f : functions)
        n += f.sizeBytes();
    return n;
}

std::uint64_t
ProgramImage::phaseCodeBytes(size_t p) const
{
    std::uint64_t n = 0;
    for (int f : phases.at(p).functions)
        n += functions[static_cast<size_t>(f)].sizeBytes();
    return n;
}

} // namespace drisim
