/**
 * @file
 * Static control-flow-graph structures for synthetic programs.
 *
 * A program image is a set of functions, each a vector of basic
 * blocks laid out at concrete addresses. The trace generator
 * interprets this CFG, so instruction-cache locality (loops,
 * footprints, conflicts, phases) emerges from real structure rather
 * than from a statistical address model.
 */

#ifndef DRISIM_WORKLOAD_CFG_HH
#define DRISIM_WORKLOAD_CFG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cpu/isa.hh"
#include "util/types.hh"

namespace drisim
{

/** How a basic block ends. */
enum class BlockTerm : std::uint8_t
{
    FallThrough, ///< no control instruction; next block is sequential
    CondBranch,  ///< conditional branch, probabilistic direction
    LoopLatch,   ///< conditional branch with counted trips (back edge)
    Jump,        ///< unconditional jump
    Call,        ///< call another function
    Return,      ///< return to the caller
};

/** One basic block. */
struct BasicBlock
{
    /** Assigned at layout time. */
    Addr startPc = 0;
    /** Total instructions including the terminator (>= 1). */
    unsigned numInstrs = 4;
    BlockTerm term = BlockTerm::FallThrough;
    /** Block id of the branch/jump target (within the function). */
    int target = -1;
    /** Block id of the fall-through successor (-1 = none). */
    int fallthrough = -1;
    /** Callee function id for Call terminators. */
    int callee = -1;
    /** Taken probability for CondBranch. */
    double takenProb = 0.5;
    /** Mean trip count for LoopLatch back edges. */
    std::uint64_t meanTrips = 8;

    /** Address of the instruction at index @p i. */
    Addr pcOf(unsigned i) const { return startPc + i * kInstrBytes; }

    /** Address just past the block. */
    Addr endPc() const { return startPc + numInstrs * kInstrBytes; }
};

/** A function: blocks in layout order; entry is block 0. */
struct Function
{
    std::string name;
    std::vector<BasicBlock> blocks;
    /** Static size in bytes (set at layout). */
    std::uint64_t sizeBytes() const;
};

/** Instruction mix of a phase (fractions of body instructions). */
struct OpMix
{
    double loadFrac = 0.22;
    double storeFrac = 0.10;
    double fpFrac = 0.0;
    double mulFrac = 0.02;
};

/** A phase: its code region (function ids), duration, behaviour. */
struct Phase
{
    std::string name;
    /** Function ids belonging to this phase (driver is first). */
    std::vector<int> functions;
    /** Driver function id (the phase's top-level loop). */
    int driver = -1;
    /** Dynamic instructions before moving to the next phase. */
    InstCount duration = 1000 * 1000;
    OpMix mix;
    /** Data region for loads/stores. */
    Addr dataBase = 0;
    std::uint64_t dataBytes = 32 * 1024;
    /**
     * Cross-core shared window: when sharedBytes != 0, a
     * sharedFraction of loads/stores is routed into
     * [sharedBase, sharedBase + sharedBytes) instead of the private
     * data region. Every core runs the same image, so the window is
     * genuinely shared and drives the coherence protocol.
     */
    Addr sharedBase = 0;
    std::uint64_t sharedBytes = 0;
    double sharedFraction = 0.0;
};

/** A fully-built program. */
struct ProgramImage
{
    std::string name;
    std::uint64_t seed = 1;
    std::vector<Function> functions;
    std::vector<Phase> phases;

    /** Total static code bytes across all functions. */
    std::uint64_t totalCodeBytes() const;

    /** Static code bytes reachable in phase @p p. */
    std::uint64_t phaseCodeBytes(size_t p) const;
};

} // namespace drisim

#endif // DRISIM_WORKLOAD_CFG_HH
