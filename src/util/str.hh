/**
 * @file
 * Small string helpers for table printing and option parsing.
 */

#ifndef DRISIM_UTIL_STR_HH
#define DRISIM_UTIL_STR_HH

#include <cstdint>
#include <string>
#include <vector>

namespace drisim
{

/** printf-style formatting into a std::string. */
std::string strFormat(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Split @p s on @p sep (no empty-token suppression). */
std::vector<std::string> strSplit(const std::string &s, char sep);

/** Trim ASCII whitespace from both ends. */
std::string strTrim(const std::string &s);

/**
 * Render a byte count with a binary suffix: 1024 -> "1K",
 * 65536 -> "64K", 1048576 -> "1M". Non-multiples fall back to bytes.
 */
std::string bytesToString(std::uint64_t bytes);

/**
 * Parse sizes like "64K", "1M", "512" into bytes.
 * Returns false on malformed input.
 */
bool parseBytes(const std::string &s, std::uint64_t &out);

} // namespace drisim

#endif // DRISIM_UTIL_STR_HH
