/**
 * @file
 * Leveled logging sinks.
 */

#include "util/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace drisim
{

namespace
{

void (*logHook)(LogLevel, const std::string &) = nullptr;

std::string
vformat(const char *fmt, va_list ap)
{
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap2);
    va_end(ap2);
    if (n < 0)
        return "<format error>";
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap);
    return std::string(buf.data(), static_cast<size_t>(n));
}

void
emit(LogLevel level, const std::string &msg)
{
    if (logHook) {
        logHook(level, msg);
        return;
    }
    const char *prefix = "";
    switch (level) {
      case LogLevel::Inform: prefix = "info: "; break;
      case LogLevel::Warn:   prefix = "warn: "; break;
      case LogLevel::Fatal:  prefix = "fatal: "; break;
      case LogLevel::Panic:  prefix = "panic: "; break;
    }
    std::fprintf(stderr, "%s%s\n", prefix, msg.c_str());
}

} // namespace

void
setLogHook(void (*hook)(LogLevel, const std::string &))
{
    logHook = hook;
}

void
panicImpl(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    emit(LogLevel::Panic,
         msg + " (" + file + ":" + std::to_string(line) + ")");
    std::abort();
}

void
fatalImpl(const char *file, int line, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string msg = vformat(fmt, ap);
    va_end(ap);
    emit(LogLevel::Fatal,
         msg + " (" + file + ":" + std::to_string(line) + ")");
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    emit(LogLevel::Warn, vformat(fmt, ap));
    va_end(ap);
}

void
inform(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    emit(LogLevel::Inform, vformat(fmt, ap));
    va_end(ap);
}

} // namespace drisim
