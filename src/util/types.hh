/**
 * @file
 * Fundamental scalar types shared by every drisim module.
 */

#ifndef DRISIM_UTIL_TYPES_HH
#define DRISIM_UTIL_TYPES_HH

#include <cstdint>

namespace drisim
{

/** A byte address in the simulated machine's physical address space. */
using Addr = std::uint64_t;

/** A count of clock cycles (the simulated core runs at 1 GHz). */
using Cycles = std::uint64_t;

/** A count of dynamic instructions. */
using InstCount = std::uint64_t;

/** A generic event/occurrence counter value. */
using Count = std::uint64_t;

/** Invalid/unset address sentinel. */
inline constexpr Addr kInvalidAddr = ~Addr{0};

} // namespace drisim

#endif // DRISIM_UTIL_TYPES_HH
