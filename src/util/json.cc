/**
 * @file
 * Minimal JSON reader/escaper shared by the sidecar and farm
 * layers.
 */

#include "util/json.hh"

#include <cstdio>

namespace drisim
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
JsonParser::parseString()
{
    std::string out;
    if (!consume('"'))
        return out;
    while (pos < s.size() && s[pos] != '"') {
        char c = s[pos++];
        if (c == '\\') {
            if (pos >= s.size()) {
                ok = false;
                return out;
            }
            const char e = s[pos++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'n': out += '\n'; break;
              case 't': out += '\t'; break;
              case 'r': out += '\r'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'u': {
                // Only the escapes jsonEscape emits: 4 hex digits,
                // code points below 0x100.
                if (pos + 4 > s.size()) {
                    ok = false;
                    return out;
                }
                unsigned v = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = s[pos++];
                    v <<= 4;
                    if (h >= '0' && h <= '9')
                        v |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        v |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        v |= static_cast<unsigned>(h - 'A' + 10);
                    else {
                        ok = false;
                        return out;
                    }
                }
                if (v > 0xff) {
                    ok = false;
                    return out;
                }
                out += static_cast<char>(v);
                break;
              }
              default: ok = false; return out;
            }
        } else {
            out += c;
        }
    }
    if (pos >= s.size()) {
        ok = false;
        return out;
    }
    ++pos; // closing quote
    return out;
}

std::uint64_t
JsonParser::parseUInt()
{
    skipWs();
    std::uint64_t v = 0;
    bool any = false;
    while (pos < s.size() && s[pos] >= '0' && s[pos] <= '9') {
        v = v * 10 + static_cast<std::uint64_t>(s[pos] - '0');
        ++pos;
        any = true;
    }
    if (!any)
        ok = false;
    return v;
}

bool
JsonParser::parseBool()
{
    skipWs();
    if (s.compare(pos, 4, "true") == 0) {
        pos += 4;
        return true;
    }
    if (s.compare(pos, 5, "false") == 0) {
        pos += 5;
        return false;
    }
    ok = false;
    return false;
}

std::map<std::string, std::string>
JsonParser::parseStringMap()
{
    std::map<std::string, std::string> out;
    if (!consume('{'))
        return out;
    if (peek('}')) {
        consume('}');
        return out;
    }
    do {
        std::string k = parseString();
        if (!ok || !consume(':'))
            return out;
        std::string v = parseString();
        if (!ok)
            return out;
        out[std::move(k)] = std::move(v);
    } while (ok && consume(','));
    // consume(',') failing set ok=false; the char must be '}'.
    ok = true;
    if (!consume('}'))
        ok = false;
    return out;
}

std::vector<std::string>
JsonParser::parseStringArray()
{
    std::vector<std::string> out;
    if (!consume('['))
        return out;
    if (peek(']')) {
        consume(']');
        return out;
    }
    do {
        out.push_back(parseString());
        if (!ok)
            return out;
    } while (ok && consume(','));
    ok = true;
    if (!consume(']'))
        ok = false;
    return out;
}

std::vector<std::vector<std::string>>
JsonParser::parseStringArrayArray()
{
    std::vector<std::vector<std::string>> out;
    if (!consume('['))
        return out;
    if (peek(']')) {
        consume(']');
        return out;
    }
    do {
        out.push_back(parseStringArray());
        if (!ok)
            return out;
    } while (ok && consume(','));
    ok = true;
    if (!consume(']'))
        ok = false;
    return out;
}

} // namespace drisim
