/**
 * @file
 * Status/error reporting in the gem5 style.
 *
 * panic()  — a drisim bug: a condition that must never happen
 *            regardless of user input. Aborts.
 * fatal()  — a user error (bad configuration, invalid parameters).
 *            Exits with status 1.
 * warn()   — something works but is suspicious or approximate.
 * inform() — normal progress messages.
 */

#ifndef DRISIM_UTIL_LOGGING_HH
#define DRISIM_UTIL_LOGGING_HH

#include <cstdarg>
#include <string>

namespace drisim
{

/** Severity used by the message hooks. */
enum class LogLevel { Inform, Warn, Fatal, Panic };

/**
 * Redirect log output for tests; pass nullptr to restore stderr.
 * The hook receives the fully-formatted message (no trailing \n).
 */
void setLogHook(void (*hook)(LogLevel, const std::string &));

/** Internal: format and emit, then abort. */
[[noreturn]] void panicImpl(const char *file, int line, const char *fmt,
                            ...) __attribute__((format(printf, 3, 4)));

/** Internal: format and emit, then exit(1). */
[[noreturn]] void fatalImpl(const char *file, int line, const char *fmt,
                            ...) __attribute__((format(printf, 3, 4)));

/** Emit a warning. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Emit an informational message. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

} // namespace drisim

/** Simulator-bug check: abort with location info. */
#define drisim_panic(...) \
    ::drisim::panicImpl(__FILE__, __LINE__, __VA_ARGS__)

/** User-error check: exit(1) with location info. */
#define drisim_fatal(...) \
    ::drisim::fatalImpl(__FILE__, __LINE__, __VA_ARGS__)

/** panic() unless the invariant @p cond holds. */
#define drisim_assert(cond, ...)                                        \
    do {                                                                \
        if (!(cond))                                                    \
            ::drisim::panicImpl(__FILE__, __LINE__, __VA_ARGS__);       \
    } while (0)

#endif // DRISIM_UTIL_LOGGING_HH
