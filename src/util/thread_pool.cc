/**
 * @file
 * Work-stealing task pool implementation.
 */

#include "util/thread_pool.hh"

#include "util/logging.hh"

namespace drisim
{

namespace
{

/** Slot of the current thread; -1 outside the pool. */
thread_local int tl_slot = -1;

} // namespace

WorkStealingPool::WorkStealingPool(unsigned background)
    : background_(background), deques_(background + 1)
{
    threads_.reserve(background_);
    for (unsigned slot = 1; slot <= background_; ++slot)
        threads_.emplace_back(
            [this, slot] { workerLoop(slot); });
}

WorkStealingPool::~WorkStealingPool()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    cv_.notify_all();
    for (auto &t : threads_)
        t.join();
}

int
WorkStealingPool::currentSlot()
{
    return tl_slot;
}

void
WorkStealingPool::submit(PoolTask task)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        const int slot = tl_slot;
        if (slot >= 0 &&
            static_cast<std::size_t>(slot) < deques_.size()) {
            deques_[static_cast<std::size_t>(slot)].push_back(
                std::move(task));
        } else {
            deques_[submitRound_ % deques_.size()].push_back(
                std::move(task));
            ++submitRound_;
        }
    }
    cv_.notify_one();
}

bool
WorkStealingPool::tryPop(unsigned slot, PoolTask &out)
{
    auto &own = deques_[slot];
    if (!own.empty()) {
        out = std::move(own.back());
        own.pop_back();
        return true;
    }
    for (std::size_t i = 1; i < deques_.size(); ++i) {
        auto &victim = deques_[(slot + i) % deques_.size()];
        if (!victim.empty()) {
            out = std::move(victim.front());
            victim.pop_front();
            return true;
        }
    }
    return false;
}

void
WorkStealingPool::workerLoop(unsigned slot)
{
    tl_slot = static_cast<int>(slot);
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
        PoolTask task;
        if (tryPop(slot, task)) {
            lock.unlock();
            task();
            task = nullptr; // release captures before relocking
            lock.lock();
            // A completion may unblock helpWhile() predicates or
            // expose newly-submitted dependents to sleeping peers.
            cv_.notify_all();
            continue;
        }
        if (stop_)
            return;
        cv_.wait(lock);
    }
}

void
WorkStealingPool::helpWhile(const std::function<bool()> &pending)
{
    drisim_assert(tl_slot == -1,
                  "helpWhile() re-entered from a pool slot");
    tl_slot = 0;
    std::unique_lock<std::mutex> lock(mu_);
    while (pending()) {
        PoolTask task;
        if (tryPop(0, task)) {
            lock.unlock();
            task();
            task = nullptr;
            lock.lock();
            cv_.notify_all();
            continue;
        }
        cv_.wait(lock);
    }
    lock.unlock();
    tl_slot = -1;
}

} // namespace drisim
