/**
 * @file
 * Seeded deterministic RNG streams.
 */

#include "util/random.hh"

#include <cassert>
#include <cmath>

namespace drisim
{

namespace
{

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

constexpr std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t x = seed;
    for (auto &s : s_)
        s = splitmix64(x);
    // Xoshiro must not start from the all-zero state.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0)
        s_[0] = 1;
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t
Rng::range(std::uint64_t bound)
{
    assert(bound > 0);
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
        std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::uint64_t
Rng::between(std::uint64_t lo, std::uint64_t hi)
{
    assert(lo <= hi);
    return lo + range(hi - lo + 1);
}

double
Rng::uniform()
{
    // 53 high-quality bits into [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

std::uint64_t
Rng::geometric(double mean)
{
    if (mean <= 1.0)
        return 1;
    // P(stop) per trial chosen so E[count] = mean.
    const double p = 1.0 / mean;
    double u = uniform();
    // Inverse CDF of the geometric distribution, clamped for safety.
    double v = std::log1p(-u) / std::log1p(-p);
    std::uint64_t n = static_cast<std::uint64_t>(v) + 1;
    return n == 0 ? 1 : n;
}

} // namespace drisim
