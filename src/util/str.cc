/**
 * @file
 * String/number formatting helpers (byte sizes, fixed-width doubles).
 */

#include "util/str.hh"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace drisim
{

std::string
strFormat(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    std::string out;
    if (n > 0) {
        std::vector<char> buf(static_cast<size_t>(n) + 1);
        std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
        out.assign(buf.data(), static_cast<size_t>(n));
    }
    va_end(ap2);
    va_end(ap);
    return out;
}

std::vector<std::string>
strSplit(const std::string &s, char sep)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : s) {
        if (c == sep) {
            out.push_back(cur);
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    out.push_back(cur);
    return out;
}

std::string
strTrim(const std::string &s)
{
    size_t b = 0;
    size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

std::string
bytesToString(std::uint64_t bytes)
{
    if (bytes >= (1ull << 20) && bytes % (1ull << 20) == 0)
        return std::to_string(bytes >> 20) + "M";
    if (bytes >= (1ull << 10) && bytes % (1ull << 10) == 0)
        return std::to_string(bytes >> 10) + "K";
    return std::to_string(bytes);
}

bool
parseBytes(const std::string &raw, std::uint64_t &out)
{
    std::string s = strTrim(raw);
    if (s.empty())
        return false;
    std::uint64_t mult = 1;
    char last = s.back();
    if (last == 'K' || last == 'k') {
        mult = 1ull << 10;
        s.pop_back();
    } else if (last == 'M' || last == 'm') {
        mult = 1ull << 20;
        s.pop_back();
    } else if (last == 'G' || last == 'g') {
        mult = 1ull << 30;
        s.pop_back();
    }
    if (s.empty())
        return false;
    std::uint64_t v = 0;
    for (char c : s) {
        if (!std::isdigit(static_cast<unsigned char>(c)))
            return false;
        v = v * 10 + static_cast<std::uint64_t>(c - '0');
    }
    out = v * mult;
    return true;
}

} // namespace drisim
