/**
 * @file
 * Bit-manipulation helpers used by the cache index/tag machinery.
 *
 * All helpers are constexpr and branch-light; the DRI i-cache mask
 * logic (Section 2.1 of the paper) is built on these.
 */

#ifndef DRISIM_UTIL_BITOPS_HH
#define DRISIM_UTIL_BITOPS_HH

#include <bit>
#include <cassert>
#include <cstdint>

namespace drisim
{

/** Return true iff @p v is a (non-zero) power of two. */
constexpr bool
isPowerOf2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/**
 * Floor of log2 of @p v.
 * @pre v != 0
 */
constexpr unsigned
floorLog2(std::uint64_t v)
{
    assert(v != 0);
    return 63u - static_cast<unsigned>(std::countl_zero(v));
}

/**
 * Exact log2 of @p v.
 * @pre v is a power of two
 */
constexpr unsigned
exactLog2(std::uint64_t v)
{
    assert(isPowerOf2(v));
    return floorLog2(v);
}

/** Ceiling of log2 of @p v (log2 rounded up). @pre v != 0 */
constexpr unsigned
ceilLog2(std::uint64_t v)
{
    assert(v != 0);
    return v == 1 ? 0 : floorLog2(v - 1) + 1;
}

/** A mask with the low @p n bits set (n may be 0..64). */
constexpr std::uint64_t
maskLow(unsigned n)
{
    return n >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << n) - 1);
}

/**
 * Extract bits [hi:lo] (inclusive, hi >= lo) of @p v, right-justified.
 */
constexpr std::uint64_t
bits(std::uint64_t v, unsigned hi, unsigned lo)
{
    assert(hi >= lo && hi < 64);
    return (v >> lo) & maskLow(hi - lo + 1);
}

/** Round @p v up to the next multiple of power-of-two @p align. */
constexpr std::uint64_t
roundUp(std::uint64_t v, std::uint64_t align)
{
    assert(isPowerOf2(align));
    return (v + align - 1) & ~(align - 1);
}

/** Round @p v down to a multiple of power-of-two @p align. */
constexpr std::uint64_t
roundDown(std::uint64_t v, std::uint64_t align)
{
    assert(isPowerOf2(align));
    return v & ~(align - 1);
}

} // namespace drisim

#endif // DRISIM_UTIL_BITOPS_HH
