/**
 * @file
 * Strict bounded integer parsing shared by every user-facing count
 * knob (`jobs=`, `cores=`, the sense-interval keys, ...).
 *
 * std::strtoull silently accepts a leading '-' and wraps the value,
 * so "jobs=-1" would ask for four billion workers and
 * "dri.interval=-1" for a 2^64-instruction sense interval. Routing
 * all such knobs through one parser rejects sign characters, junk
 * suffixes and out-of-range values uniformly instead of each call
 * site re-discovering the wraparound bug.
 */

#ifndef DRISIM_UTIL_PARSE_HH
#define DRISIM_UTIL_PARSE_HH

#include <cstdint>
#include <string_view>

namespace drisim
{

/**
 * Parse a plain-decimal unsigned integer in [0, maxValue].
 * Only digits are accepted — no sign, whitespace, or suffix — and
 * overflow past @p maxValue fails instead of wrapping. Returns false
 * without touching @p out on bad input.
 */
bool parseUnsignedValue(std::string_view text, std::uint64_t &out,
                        std::uint64_t maxValue = UINT64_MAX);

/**
 * parseUnsignedValue restricted to [1, maxValue]: the flavour for
 * counts where zero is meaningless (`cores=`, `interval=`).
 */
bool parsePositiveValue(std::string_view text, std::uint64_t &out,
                        std::uint64_t maxValue = UINT64_MAX);

} // namespace drisim

#endif // DRISIM_UTIL_PARSE_HH
