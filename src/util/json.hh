/**
 * @file
 * Minimal JSON reading/writing shared by the result-cache sidecar
 * (sim/result_cache.cc), the sweep-farm fragment/merge layer
 * (farm/fragment.cc) and the bench --json reports.
 *
 * Only the subset those artifacts use is supported: objects,
 * arrays, strings, unsigned integers and booleans. Any deviation
 * sets ok=false and the caller treats the whole document as
 * unusable — recompute, never serve garbage.
 */

#ifndef DRISIM_UTIL_JSON_HH
#define DRISIM_UTIL_JSON_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace drisim
{

/** Escape a string for embedding in a JSON document. Control
 *  characters (including newlines — required by the line-oriented
 *  sidecar format) are always escaped. */
std::string jsonEscape(const std::string &s);

/**
 * Hand-rolled recursive-descent reader over an in-memory document.
 * All parse methods leave ok=false on malformed input; callers
 * check ok once at the end (or wherever they need to bail).
 */
struct JsonParser
{
    const std::string &s;
    std::size_t pos = 0;
    bool ok = true;

    explicit JsonParser(const std::string &text) : s(text) {}

    void skipWs()
    {
        while (pos < s.size() &&
               (s[pos] == ' ' || s[pos] == '\t' || s[pos] == '\n' ||
                s[pos] == '\r'))
            ++pos;
    }

    bool consume(char c)
    {
        skipWs();
        if (pos < s.size() && s[pos] == c) {
            ++pos;
            return true;
        }
        ok = false;
        return false;
    }

    bool peek(char c)
    {
        skipWs();
        return pos < s.size() && s[pos] == c;
    }

    std::string parseString();
    std::uint64_t parseUInt();
    bool parseBool();

    /** Parse {"k":"v",...} of string values. */
    std::map<std::string, std::string> parseStringMap();

    /** Parse ["a","b",...] of strings. */
    std::vector<std::string> parseStringArray();

    /** Parse [["a",...],...] — an array of string arrays. */
    std::vector<std::vector<std::string>> parseStringArrayArray();
};

} // namespace drisim

#endif // DRISIM_UTIL_JSON_HH
