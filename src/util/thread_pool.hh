/**
 * @file
 * Work-stealing task pool underlying the harness executor.
 *
 * Tasks live in per-slot deques: a worker pops its own deque from
 * the back (newest first, so dependent continuations run while their
 * inputs are cache-warm) and steals from another slot's front (oldest
 * first, so stolen work is the least likely to be picked up soon by
 * its owner). Slot 0 belongs to the thread that calls helpWhile() —
 * the pool's owner participates in execution instead of blocking —
 * and slots 1..background belong to OS threads the pool owns.
 *
 * Queue manipulation is guarded by a single pool mutex. Tasks here
 * are whole cache simulations (milliseconds to seconds each), so
 * scheduling cost is noise; the coarse lock keeps the sleep/wake
 * logic evidently correct and ThreadSanitizer-clean rather than
 * micro-optimal.
 */

#ifndef DRISIM_UTIL_THREAD_POOL_HH
#define DRISIM_UTIL_THREAD_POOL_HH

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace drisim
{

/** A task: any callable; exceptions must be handled by the caller's
 *  wrapper (the pool itself never swallows or rethrows). */
using PoolTask = std::function<void()>;

class WorkStealingPool
{
  public:
    /**
     * @param background number of OS worker threads to spawn; 0 is
     * valid and makes helpWhile() execute everything on the calling
     * thread (the serial reference configuration).
     */
    explicit WorkStealingPool(unsigned background);

    /** Joins all workers. Queues must be drained first (the executor
     *  always runs graphs to completion before destruction). */
    ~WorkStealingPool();

    WorkStealingPool(const WorkStealingPool &) = delete;
    WorkStealingPool &operator=(const WorkStealingPool &) = delete;

    /** Total execution slots: background threads + the helping
     *  caller. */
    unsigned slots() const { return background_ + 1; }

    /**
     * Enqueue a task. When called from a pool slot (a worker thread
     * or the caller inside helpWhile()) the task goes to that slot's
     * own deque; otherwise slots are chosen round-robin.
     */
    void submit(PoolTask task);

    /**
     * Execute tasks on the calling thread (as slot 0) until
     * @p pending returns false. @p pending is evaluated under the
     * pool lock after every task completion, so any state it reads
     * must be updated by the tasks themselves (the executor uses a
     * remaining-jobs counter). Sleeps when no task is runnable.
     */
    void helpWhile(const std::function<bool()> &pending);

    /**
     * Slot index of the calling thread: 0 for the helping caller,
     * 1..background for pool threads, -1 for foreign threads.
     */
    static int currentSlot();

  private:
    void workerLoop(unsigned slot);

    /** Pop a task for @p slot: own deque back, then steal another
     *  deque's front. Requires the lock. */
    bool tryPop(unsigned slot, PoolTask &out);

    const unsigned background_;
    std::mutex mu_;
    std::condition_variable cv_;
    std::vector<std::deque<PoolTask>> deques_;
    std::vector<std::thread> threads_;
    unsigned submitRound_ = 0;
    bool stop_ = false;
};

} // namespace drisim

#endif // DRISIM_UTIL_THREAD_POOL_HH
