/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic choice in drisim (loop trip counts, branch
 * outcomes, data strides) flows through Xoshiro256** seeded from the
 * workload spec, so a given benchmark model always produces the exact
 * same dynamic instruction stream. This is what makes paired
 * conventional/DRI runs directly comparable.
 */

#ifndef DRISIM_UTIL_RANDOM_HH
#define DRISIM_UTIL_RANDOM_HH

#include <cstdint>

namespace drisim::sim
{
class CheckpointWriter;
class CheckpointReader;
} // namespace drisim::sim

namespace drisim
{

/**
 * Xoshiro256** PRNG (Blackman & Vigna). Deterministic, fast, and
 * identical across platforms — unlike std::mt19937 distributions.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed via SplitMix64 expansion. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound) (bound > 0). */
    std::uint64_t range(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive (lo <= hi). */
    std::uint64_t between(std::uint64_t lo, std::uint64_t hi);

    /** Uniform double in [0, 1). */
    double uniform();

    /** Bernoulli trial with probability @p p of true. */
    bool chance(double p);

    /**
     * Geometric-ish positive integer with mean approximately
     * @p mean (>= 1); used for loop trip counts.
     */
    std::uint64_t geometric(double mean);

    /** Serialize the generator state (sim/checkpoint.hh). */
    void snapshotTo(sim::CheckpointWriter &w) const;
    void restoreFrom(sim::CheckpointReader &r);

  private:
    std::uint64_t s_[4];
};

} // namespace drisim

#endif // DRISIM_UTIL_RANDOM_HH
