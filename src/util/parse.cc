/**
 * @file
 * Strict bounded integer parsing for user-facing count knobs.
 */

#include "util/parse.hh"

namespace drisim
{

bool
parseUnsignedValue(std::string_view text, std::uint64_t &out,
                   std::uint64_t maxValue)
{
    if (text.empty())
        return false;
    std::uint64_t v = 0;
    for (const char c : text) {
        if (c < '0' || c > '9')
            return false;
        const std::uint64_t digit =
            static_cast<std::uint64_t>(c - '0');
        // Guard the multiply, then the add, in unsigned-safe order
        // (maxValue - digit could underflow when digit > maxValue,
        // which is exactly the small-bound single-digit case).
        if (v > maxValue / 10)
            return false;
        v *= 10;
        if (digit > maxValue - v)
            return false;
        v += digit;
    }
    out = v;
    return true;
}

bool
parsePositiveValue(std::string_view text, std::uint64_t &out,
                   std::uint64_t maxValue)
{
    std::uint64_t v = 0;
    if (!parseUnsignedValue(text, v, maxValue) || v == 0)
        return false;
    out = v;
    return true;
}

} // namespace drisim
