/**
 * @file
 * Key=value option parsing and application to RunConfig/DriParams.
 */

#include "config/options.hh"

#include <cstdlib>

#include "harness/executor.hh"
#include "util/str.hh"

namespace drisim
{

namespace
{

bool
parseU64(const std::string &v, std::uint64_t &out)
{
    if (v.empty())
        return false;
    char *end = nullptr;
    out = std::strtoull(v.c_str(), &end, 10);
    return end && *end == '\0';
}

bool
parseBool(const std::string &v, bool &out)
{
    if (v == "1" || v == "true" || v == "yes") {
        out = true;
        return true;
    }
    if (v == "0" || v == "false" || v == "no") {
        out = false;
        return true;
    }
    return false;
}

} // namespace

bool
parseOptions(int argc, const char *const *argv, Options &out,
             std::string &error)
{
    for (int i = 1; i < argc; ++i) {
        const std::string token = argv[i];
        const size_t eq = token.find('=');
        if (eq == std::string::npos || eq == 0) {
            error = "malformed option '" + token +
                    "' (expected key=value)";
            return false;
        }
        const std::string key = token.substr(0, eq);
        const std::string value = token.substr(eq + 1);

        auto bad_value = [&] {
            error = "bad value for '" + key + "': '" + value + "'";
            return false;
        };

        std::uint64_t u = 0;
        if (key == "instrs") {
            if (!parseU64(value, u) || u == 0)
                return bad_value();
            out.run.maxInstrs = u;
        } else if (key == "jobs") {
            unsigned jobs = 0;
            if (!parseJobsValue(value, jobs))
                return bad_value();
            out.run.jobs = jobs;
        } else if (key == "benchmark") {
            if (value.empty())
                return bad_value();
            out.benchmark = value;
        } else if (key == "l1i.size") {
            if (!parseBytes(value, u) || u == 0)
                return bad_value();
            out.run.hier.l1i.sizeBytes = u;
            out.dri.sizeBytes = u;
        } else if (key == "l1i.assoc") {
            if (!parseU64(value, u) || u == 0)
                return bad_value();
            out.run.hier.l1i.assoc = static_cast<unsigned>(u);
            out.dri.assoc = static_cast<unsigned>(u);
        } else if (key == "l1i.block") {
            if (!parseBytes(value, u) || u == 0)
                return bad_value();
            out.run.hier.l1i.blockBytes = static_cast<unsigned>(u);
            out.dri.blockBytes = static_cast<unsigned>(u);
            out.run.core.fetchBlockBytes = static_cast<unsigned>(u);
        } else if (key == "dri.size_bound") {
            if (!parseBytes(value, u) || u == 0)
                return bad_value();
            out.dri.sizeBoundBytes = u;
        } else if (key == "dri.miss_bound") {
            if (!parseU64(value, u))
                return bad_value();
            out.dri.missBound = u;
        } else if (key == "dri.interval") {
            if (!parseU64(value, u) || u == 0)
                return bad_value();
            out.dri.senseInterval = u;
        } else if (key == "dri.divisibility") {
            if (!parseU64(value, u) || u < 2)
                return bad_value();
            out.dri.divisibility = static_cast<unsigned>(u);
        } else if (key == "dri.throttle_hold") {
            if (!parseU64(value, u))
                return bad_value();
            out.dri.throttleHoldIntervals =
                static_cast<unsigned>(u);
        } else if (key == "dri.adaptive") {
            bool b = true;
            if (!parseBool(value, b))
                return bad_value();
            out.dri.adaptive = b;
        } else if (key == "l2.size") {
            if (!parseBytes(value, u) || u == 0)
                return bad_value();
            out.run.hier.l2.sizeBytes = u;
        } else if (key == "l2.assoc") {
            if (!parseU64(value, u) || u == 0)
                return bad_value();
            out.run.hier.l2.assoc = static_cast<unsigned>(u);
        } else if (key == "l2.block") {
            if (!parseBytes(value, u) || u == 0)
                return bad_value();
            out.run.hier.l2.blockBytes = static_cast<unsigned>(u);
        } else if (key == "l2.dri") {
            bool b = false;
            if (!parseBool(value, b))
                return bad_value();
            out.run.hier.l2Dri = b;
        } else if (key == "l2.size_bound") {
            if (!parseBytes(value, u) || u == 0)
                return bad_value();
            out.run.hier.l2DriParams.sizeBoundBytes = u;
        } else if (key == "l2.miss_bound") {
            if (!parseU64(value, u))
                return bad_value();
            out.run.hier.l2DriParams.missBound = u;
        } else if (key == "l2.interval") {
            if (!parseU64(value, u) || u == 0)
                return bad_value();
            out.run.hier.l2DriParams.senseInterval = u;
        } else {
            out.unknown.push_back(key);
        }
    }
    error.clear();
    return true;
}

std::string
optionsUsage()
{
    return "options: instrs=N jobs=N benchmark=NAME l1i.size=64K "
           "l1i.assoc=N l1i.block=32 dri.size_bound=1K "
           "dri.miss_bound=N dri.interval=N dri.divisibility=2 "
           "dri.throttle_hold=N dri.adaptive=0|1 l2.size=1M "
           "l2.assoc=N l2.block=64 l2.dri=0|1 l2.size_bound=64K "
           "l2.miss_bound=N l2.interval=N";
}

} // namespace drisim
