/**
 * @file
 * Key=value option parsing and application to RunConfig/DriParams
 * and the CMP per-core overrides.
 */

#include "config/options.hh"

#include <memory>

#include "harness/executor.hh"
#include "util/logging.hh"
#include "util/parse.hh"
#include "util/str.hh"

namespace drisim
{

namespace
{

/**
 * Strict decimal u64 (util/parse.hh): rejects sign characters and
 * junk, so "-1" can never wrap to 2^64-1 here.
 */
bool
parseU64(const std::string &v, std::uint64_t &out)
{
    return parseUnsignedValue(v, out);
}

bool
parseBool(const std::string &v, bool &out)
{
    if (v == "1" || v == "true" || v == "yes") {
        out = true;
        return true;
    }
    if (v == "0" || v == "false" || v == "no") {
        out = false;
        return true;
    }
    return false;
}

/**
 * Split a "coreK.<sub>" key: fills @p core and @p sub and returns
 * true when @p key has that shape (K decimal, in range).
 */
bool
splitCoreKey(const std::string &key, unsigned &core,
             std::string &sub)
{
    if (key.rfind("core", 0) != 0)
        return false;
    const std::size_t dot = key.find('.', 4);
    if (dot == std::string::npos || dot == 4)
        return false;
    std::uint64_t k = 0;
    if (!parseUnsignedValue(key.substr(4, dot - 4), k,
                            kMaxCmpCores - 1))
        return false;
    core = static_cast<unsigned>(k);
    sub = key.substr(dot + 1);
    return true;
}

/** The override record for core @p k, created on first use. */
CoreOverride &
coreOverride(Options &out, unsigned k)
{
    if (out.coreOverrides.size() <= k)
        out.coreOverrides.resize(k + 1);
    return out.coreOverrides[k];
}

/** The override record for core @p k, with its DRI knobs made
 *  authoritative: on the first coreK.dri.* key they seed from the
 *  global dri.* template as parsed so far (put global dri.* keys
 *  before per-core ones). */
CoreOverride &
driOverride(Options &out, unsigned k)
{
    CoreOverride &o = coreOverride(out, k);
    if (!o.driKnobsSet) {
        o.driParams = out.dri;
        o.driKnobsSet = true;
    }
    return o;
}

/** The override record for core @p k, with its policy made
 *  authoritative: on the first coreK.policy* key it seeds from the
 *  global policy template as parsed so far (same ordering rule as
 *  driOverride). */
CoreOverride &
policyOverride(Options &out, unsigned k)
{
    CoreOverride &o = coreOverride(out, k);
    if (!o.policySet) {
        o.policy = out.policy;
        o.policySet = true;
    }
    return o;
}

/**
 * Parse one `policy*` sub-key ("", ".decay.interval", ...) into
 * @p policy. Every count goes through the strict bounded parser
 * (util/parse.hh), so "-1" is rejected instead of wrapping.
 * Returns false on a bad value; sets @p known false when the
 * sub-key is not a policy key at all.
 */
bool
applyPolicyKey(const std::string &sub, const std::string &value,
               PolicyConfig &policy, bool &known)
{
    known = true;
    std::uint64_t u = 0;
    if (sub.empty()) {
        PolicyKind kind;
        if (!parsePolicyKind(value, kind))
            return false;
        policy.kind = kind;
        return true;
    }
    if (sub == ".decay.interval") {
        if (!parsePositiveValue(value, u))
            return false;
        policy.decay.decayInterval = u;
        return true;
    }
    if (sub == ".decay.limit") {
        if (!parsePositiveValue(value, u, 64))
            return false;
        policy.decay.counterLimit = static_cast<unsigned>(u);
        return true;
    }
    if (sub == ".drowsy.interval") {
        if (!parsePositiveValue(value, u))
            return false;
        policy.drowsy.drowsyInterval = u;
        return true;
    }
    if (sub == ".drowsy.wake") {
        // 0 is legal (an idealized instant wake); the cap keeps a
        // typo from stalling every access for an epoch.
        if (!parseUnsignedValue(value, u, 1000))
            return false;
        policy.drowsy.wakeLatency = u;
        return true;
    }
    if (sub == ".ways.active") {
        // Strictly positive: way 0 is never gated.
        if (!parsePositiveValue(value, u, 256))
            return false;
        policy.ways.activeWays = static_cast<unsigned>(u);
        return true;
    }
    known = false;
    return false;
}

} // namespace

std::vector<CmpCoreConfig>
Options::cmpCores(bool driByDefault) const
{
    std::vector<CmpCoreConfig> cfgs;
    cfgs.reserve(cores);
    for (unsigned k = 0; k < cores; ++k) {
        CmpCoreConfig c;
        c.bench = benchmark;
        // The leg's intent gates every core: a conventional
        // baseline (driByDefault=false) never builds a leakage-
        // managed L1I no matter which per-core knobs were set, and
        // in the managed leg coreK.dri=0 opts a core out.
        c.dri = driByDefault;
        c.driParams = dri;
        c.policyKind = policy.kind;
        c.decay = policy.decay;
        c.drowsy = policy.drowsy;
        c.ways = policy.ways;
        if (k < coreOverrides.size()) {
            const CoreOverride &o = coreOverrides[k];
            if (!o.bench.empty())
                c.bench = o.bench;
            if (o.dri == 0)
                c.dri = false;
            // Knob records are authoritative only when a coreK.dri.*
            // key actually appeared; padding records keep following
            // the (final) global template.
            if (o.driKnobsSet)
                c.driParams = o.driParams;
            if (o.policySet) {
                c.policyKind = o.policy.kind;
                c.decay = o.policy.decay;
                c.drowsy = o.policy.drowsy;
                c.ways = o.policy.ways;
            }
        }
        cfgs.push_back(std::move(c));
    }
    return cfgs;
}

CmpConfig
Options::cmpConfig(bool driByDefault) const
{
    CmpConfig c;
    c.cores = cores;
    c.coherence = coherence;
    c.coreConfigs = cmpCores(driByDefault);
    return c;
}

PolicyConfig
Options::policyConfig() const
{
    PolicyConfig p = policy;
    p.dri = dri;
    return p;
}

bool
parseOptions(int argc, const char *const *argv, Options &out,
             std::string &error)
{
    for (int i = 1; i < argc; ++i) {
        const std::string token = argv[i];
        const size_t eq = token.find('=');
        if (eq == std::string::npos || eq == 0) {
            error = "malformed option '" + token +
                    "' (expected key=value)";
            return false;
        }
        const std::string key = token.substr(0, eq);
        const std::string value = token.substr(eq + 1);

        auto bad_value = [&] {
            error = "bad value for '" + key + "': '" + value + "'";
            return false;
        };

        std::uint64_t u = 0;
        unsigned core = 0;
        std::string sub;
        if (key == "instrs") {
            if (!parseU64(value, u) || u == 0)
                return bad_value();
            out.run.maxInstrs = u;
        } else if (key == "jobs") {
            unsigned jobs = 0;
            if (!parseJobsValue(value, jobs))
                return bad_value();
            out.run.jobs = jobs;
        } else if (key == "shard") {
            std::string shardErr;
            if (!farm::parseShardSpec(value, out.run.shard,
                                      shardErr)) {
                error = shardErr;
                return false;
            }
        } else if (key == "cores") {
            if (!parsePositiveValue(value, u, kMaxCmpCores))
                return bad_value();
            out.cores = static_cast<unsigned>(u);
        } else if (key == "coherence") {
            bool b = false;
            if (!parseBool(value, b))
                return bad_value();
            out.coherence.enabled = b;
        } else if (key == "coherence.entries") {
            if (!parsePositiveValue(value, u))
                return bad_value();
            out.coherence.directoryEntries = u;
        } else if (key == "coherence.msg_latency") {
            if (!parseU64(value, u))
                return bad_value();
            out.coherence.msgLatency = u;
        } else if (key == "benchmark") {
            if (value.empty())
                return bad_value();
            out.benchmark = value;
        } else if (key == "l1i.size") {
            if (!parseBytes(value, u) || u == 0)
                return bad_value();
            out.run.hier.l1i.sizeBytes = u;
            out.dri.sizeBytes = u;
        } else if (key == "l1i.assoc") {
            if (!parseU64(value, u) || u == 0)
                return bad_value();
            out.run.hier.l1i.assoc = static_cast<unsigned>(u);
            out.dri.assoc = static_cast<unsigned>(u);
        } else if (key == "l1i.block") {
            if (!parseBytes(value, u) || u == 0)
                return bad_value();
            out.run.hier.l1i.blockBytes = static_cast<unsigned>(u);
            out.dri.blockBytes = static_cast<unsigned>(u);
            out.run.core.fetchBlockBytes = static_cast<unsigned>(u);
        } else if (key == "dri.size_bound") {
            if (!parseBytes(value, u) || u == 0)
                return bad_value();
            out.dri.sizeBoundBytes = u;
        } else if (key == "dri.miss_bound") {
            if (!parseU64(value, u))
                return bad_value();
            out.dri.missBound = u;
        } else if (key == "dri.interval") {
            if (!parsePositiveValue(value, u))
                return bad_value();
            out.dri.senseInterval = u;
        } else if (key == "dri.divisibility") {
            if (!parseU64(value, u) || u < 2)
                return bad_value();
            out.dri.divisibility = static_cast<unsigned>(u);
        } else if (key == "dri.throttle_hold") {
            if (!parseU64(value, u))
                return bad_value();
            out.dri.throttleHoldIntervals =
                static_cast<unsigned>(u);
        } else if (key == "dri.adaptive") {
            bool b = true;
            if (!parseBool(value, b))
                return bad_value();
            out.dri.adaptive = b;
        } else if (key == "policy" ||
                   key.rfind("policy.", 0) == 0) {
            bool known = true;
            if (!applyPolicyKey(key.substr(6), value, out.policy,
                                known)) {
                if (known)
                    return bad_value();
                out.unknown.push_back(key);
            }
        } else if (key == "sample") {
            bool b = false;
            if (!parseBool(value, b))
                return bad_value();
            out.run.sampling.enabled = b;
        } else if (key == "sample.window") {
            if (!parsePositiveValue(value, u))
                return bad_value();
            out.run.sampling.detailedWindow = u;
        } else if (key == "sample.period") {
            if (!parsePositiveValue(value, u))
                return bad_value();
            out.run.sampling.period = u;
        } else if (key == "checkpoint_dir") {
            if (value.empty())
                return bad_value();
            out.run.checkpointDir = value;
        } else if (key == "result_cache") {
            if (value.empty())
                return bad_value();
            out.run.resultCache =
                std::make_shared<sim::ResultCache>(value);
        } else if (key == "trace") {
            if (value.empty())
                return bad_value();
            out.tracePath = value;
        } else if (key == "metrics") {
            if (value.empty())
                return bad_value();
            out.metricsPath = value;
        } else if (key == "metrics.interval") {
            if (!parsePositiveValue(value, u))
                return bad_value();
            out.metricsInterval = u;
        } else if (key == "l2.size") {
            if (!parseBytes(value, u) || u == 0)
                return bad_value();
            out.run.hier.l2.sizeBytes = u;
        } else if (key == "l2.assoc") {
            if (!parseU64(value, u) || u == 0)
                return bad_value();
            out.run.hier.l2.assoc = static_cast<unsigned>(u);
        } else if (key == "l2.block") {
            if (!parseBytes(value, u) || u == 0)
                return bad_value();
            out.run.hier.l2.blockBytes = static_cast<unsigned>(u);
        } else if (key == "l2.dri") {
            bool b = false;
            if (!parseBool(value, b))
                return bad_value();
            out.run.hier.l2Dri = b;
        } else if (key == "l2.size_bound") {
            if (!parseBytes(value, u) || u == 0)
                return bad_value();
            out.run.hier.l2DriParams.sizeBoundBytes = u;
        } else if (key == "l2.miss_bound") {
            if (!parseU64(value, u))
                return bad_value();
            out.run.hier.l2DriParams.missBound = u;
        } else if (key == "l2.interval") {
            if (!parsePositiveValue(value, u))
                return bad_value();
            out.run.hier.l2DriParams.senseInterval = u;
        } else if (key == "l1.mshrs") {
            if (!parseU64(value, u) || u > 256)
                return bad_value();
            // Both L1s and the DRI/policy template: the knob means
            // "make the private level non-blocking", not one array.
            out.run.hier.l1i.mshrs = static_cast<unsigned>(u);
            out.run.hier.l1d.mshrs = static_cast<unsigned>(u);
            out.dri.mshrs = static_cast<unsigned>(u);
        } else if (key == "l2.mshrs") {
            if (!parseU64(value, u) || u > 256)
                return bad_value();
            out.run.hier.l2.mshrs = static_cast<unsigned>(u);
        } else if (key == "dram.banked") {
            bool b = false;
            if (!parseBool(value, b))
                return bad_value();
            out.run.hier.dram.banked = b;
        } else if (key == "dram.banks") {
            if (!parsePositiveValue(value, u) || u > 64)
                return bad_value();
            out.run.hier.dram.banks = static_cast<unsigned>(u);
        } else if (key == "dram.row_hit") {
            if (!parsePositiveValue(value, u))
                return bad_value();
            out.run.hier.dram.rowHitLatency = u;
        } else if (key == "dram.row_miss") {
            if (!parsePositiveValue(value, u))
                return bad_value();
            out.run.hier.dram.rowMissLatency = u;
        } else if (key == "dram.queue") {
            if (!parsePositiveValue(value, u) || u > 1024)
                return bad_value();
            out.run.hier.dram.queueDepth = static_cast<unsigned>(u);
        } else if (splitCoreKey(key, core, sub)) {
            if (sub == "bench") {
                if (value.empty())
                    return bad_value();
                coreOverride(out, core).bench = value;
            } else if (sub == "dri") {
                bool b = false;
                if (!parseBool(value, b))
                    return bad_value();
                coreOverride(out, core).dri = b ? 1 : 0;
            } else if (sub == "dri.size_bound") {
                if (!parseBytes(value, u) || u == 0)
                    return bad_value();
                driOverride(out, core).driParams.sizeBoundBytes = u;
            } else if (sub == "dri.miss_bound") {
                if (!parseU64(value, u))
                    return bad_value();
                driOverride(out, core).driParams.missBound = u;
            } else if (sub == "dri.interval") {
                if (!parsePositiveValue(value, u))
                    return bad_value();
                driOverride(out, core).driParams.senseInterval = u;
            } else if (sub == "policy" ||
                       sub.rfind("policy.", 0) == 0) {
                // Parse into a scratch copy first so an unknown
                // sub-key cannot mark the core policy-authoritative.
                bool known = true;
                const CoreOverride &cur = coreOverride(out, core);
                PolicyConfig p =
                    cur.policySet ? cur.policy : out.policy;
                if (!applyPolicyKey(sub.substr(6), value, p,
                                    known)) {
                    if (known)
                        return bad_value();
                    out.unknown.push_back(key);
                } else {
                    policyOverride(out, core).policy = p;
                }
            } else {
                out.unknown.push_back(key);
            }
        } else {
            out.unknown.push_back(key);
        }
    }
    // coreK.* keys for cores the final `cores=` count never builds
    // would vanish silently in cmpCores(); warn once per orphaned
    // record instead (checked post-loop, so key order is free).
    for (std::size_t k = out.cores; k < out.coreOverrides.size();
         ++k) {
        const CoreOverride &o = out.coreOverrides[k];
        if (!o.bench.empty() || o.dri != -1 || o.driKnobsSet ||
            o.policySet)
            warn("core%zu.* options ignored: only %u core%s "
                 "configured (cores=%u)",
                 k, out.cores, out.cores == 1 ? " is" : "s are",
                 out.cores);
    }
    error.clear();
    return true;
}

std::string
optionsUsage()
{
    return "options: instrs=N jobs=N shard=K/N benchmark=NAME "
           "l1i.size=64K "
           "l1i.assoc=N l1i.block=32 dri.size_bound=1K "
           "dri.miss_bound=N dri.interval=N dri.divisibility=2 "
           "dri.throttle_hold=N dri.adaptive=0|1 "
           "policy=dri|decay|drowsy|ways policy.decay.interval=N "
           "policy.decay.limit=N policy.drowsy.interval=N "
           "policy.drowsy.wake=N policy.ways.active=N sample=0|1 "
           "sample.window=N sample.period=N checkpoint_dir=DIR "
           "result_cache=FILE trace=FILE metrics=FILE "
           "metrics.interval=N l2.size=1M "
           "l2.assoc=N l2.block=64 l2.dri=0|1 l2.size_bound=64K "
           "l2.miss_bound=N l2.interval=N l1.mshrs=N l2.mshrs=N "
           "dram.banked=0|1 dram.banks=N dram.row_hit=N "
           "dram.row_miss=N dram.queue=N cores=N coherence=0|1 "
           "coherence.entries=N coherence.msg_latency=N "
           "coreK.bench=NAME "
           "coreK.dri=0|1 coreK.dri.size_bound=1K "
           "coreK.dri.miss_bound=N coreK.dri.interval=N "
           "coreK.policy=NAME coreK.policy.decay.interval=N "
           "coreK.policy.decay.limit=N "
           "coreK.policy.drowsy.interval=N "
           "coreK.policy.drowsy.wake=N coreK.policy.ways.active=N";
}

} // namespace drisim
