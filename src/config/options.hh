/**
 * @file
 * Key=value option parsing shared by the examples and bench
 * binaries: overrides for run length, cache geometry and every DRI
 * parameter, so experiments are scriptable without recompiling.
 *
 * Accepted keys (sizes take 512 / 4K / 1M suffixes):
 *   instrs, jobs, shard, benchmark,
 *   l1i.size, l1i.assoc, l1i.block,
 *   dri.size_bound, dri.miss_bound, dri.interval,
 *   dri.divisibility, dri.throttle_hold, dri.adaptive,
 *   policy, policy.decay.interval, policy.decay.limit,
 *   policy.drowsy.interval, policy.drowsy.wake, policy.ways.active,
 *   sample, sample.window, sample.period,
 *   checkpoint_dir, result_cache,
 *   trace, metrics, metrics.interval,
 *   l2.size, l2.assoc, l2.block,
 *   l2.dri, l2.size_bound, l2.miss_bound, l2.interval,
 *   l1.mshrs, l2.mshrs,
 *   dram.banked, dram.banks, dram.row_hit, dram.row_miss,
 *   dram.queue,
 *   cores, coreK.bench, coreK.dri,
 *   coreK.dri.size_bound, coreK.dri.miss_bound, coreK.dri.interval,
 *   coreK.policy, coreK.policy.decay.interval,
 *   coreK.policy.drowsy.interval, coreK.policy.drowsy.wake,
 *   coreK.policy.ways.active
 *
 * `jobs` is the sweep worker count (0 = DRISIM_JOBS env, else
 * serial); see harness/executor.hh. `shard=K/N` assigns the run
 * 1-based shard K of an N-way sweep-farm partition
 * (src/farm/shard_plan.hh) — execution-only like `jobs`, it never
 * enters a run's identity key. The `l2.*` resize keys
 * configure the multi-level scenario (DRI-enabled L2,
 * mem/hierarchy.hh): `l2.dri=1` builds the L2 resizable, and the
 * bound/interval keys set its controller knobs (geometry always
 * follows l2.size/l2.assoc/l2.block).
 *
 * `l1.mshrs`/`l2.mshrs` give the private L1s (and the DRI/policy
 * template) / the L2 a non-blocking MSHR file of N entries (0, the
 * default, keeps the historical blocking path). `dram.banked=1`
 * replaces the flat Table 1 memory with the banked, queued model
 * (mem/dram.hh); `dram.banks`, `dram.row_hit`, `dram.row_miss` and
 * `dram.queue` tune it.
 *
 * `policy=dri|decay|drowsy|ways` selects the leakage technique
 * managing the L1 i-cache (policy/leakage_policy.hh); the
 * `policy.*` keys set the per-technique knobs (`dri` remains the
 * default and keeps its classic `dri.*` keys).
 *
 * `sample=1` switches detailed single-core runs to systematic
 * sampling (src/sim/sampling.hh) with `sample.window` detailed
 * instructions at the head of every `sample.period`-instruction
 * period. `checkpoint_dir=DIR` enables mid-run snapshot/restore
 * (src/sim/checkpoint.hh) and `result_cache=FILE` memoizes whole
 * runs into a JSON sidecar keyed by the canonical config hash
 * (src/sim/result_cache.hh). CMP runs ignore all three.
 *
 * `cores=N` switches consumers to the CMP scenario (system/cmp.hh):
 * N cores with private L1s over the shared L2. `coreK.bench=` gives
 * core K its own workload (default: the `benchmark` key), the
 * `coreK.dri.*` keys override that core's L1I resize knobs (they
 * start from the global `dri.*` template as parsed *so far*, so put
 * global keys first) and `coreK.policy*` picks and tunes that
 * core's leakage technique the same way. Every count key (`jobs`,
 * `cores`, the intervals, the wake latency, the active-way count,
 * ...) parses through the strict bounded parser (util/parse.hh):
 * "-1" is rejected everywhere instead of wrapping.
 */

#ifndef DRISIM_CONFIG_OPTIONS_HH
#define DRISIM_CONFIG_OPTIONS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/dri_params.hh"
#include "harness/runner.hh"
#include "policy/leakage_policy.hh"
#include "system/cmp.hh"

namespace drisim
{

/** Raw per-core overrides collected from coreK.* keys. */
struct CoreOverride
{
    /** coreK.bench; empty = use the global `benchmark`. */
    std::string bench;
    /** coreK.dri: -1 unset, else 0/1 (a per-core opt-out/in). */
    int dri = -1;
    /** Any coreK.dri.* knob appeared: driParams is authoritative
     *  for this core. Otherwise the core takes the final global
     *  dri.* template. */
    bool driKnobsSet = false;
    /** This core's L1I resize knobs (seeded from the global dri.*
     *  template at the point the first coreK.dri.* knob appears,
     *  so put global dri.* keys before per-core ones). */
    DriParams driParams{};
    /** Any coreK.policy* key appeared: policy is authoritative for
     *  this core (same seeding rule as driKnobsSet). */
    bool policySet = false;
    /** This core's leakage technique + knobs. */
    PolicyConfig policy{};
};

/** Parsed command-line experiment options. */
struct Options
{
    RunConfig run;
    DriParams dri;
    std::string benchmark = "compress";

    /** `policy=` + `policy.*`: the L1I leakage technique. The
     *  embedded DriParams is kept in sync with `dri` by
     *  policyConfig(). */
    PolicyConfig policy;

    /** `cores=`; 1 = the classic single-core scenario. */
    unsigned cores = 1;
    /** `coherence=` + `coherence.*`: MSI over the private L1s
     *  (mem/directory.hh); disabled by default. */
    CoherenceConfig coherence;
    /** Sparse coreK.* overrides (index = K). */
    std::vector<CoreOverride> coreOverrides;

    /** `trace=FILE`: Perfetto/chrome-trace span output
     *  (src/obs/trace.hh). Execution-only like `jobs` — never
     *  enters a run's identity key; empty = disabled. Consumers
     *  install it with obs::initTrace(). */
    std::string tracePath;
    /** `metrics=FILE`: interval time-series CSV output
     *  (src/obs/metrics.hh). Execution-only; empty = disabled. */
    std::string metricsPath;
    /** `metrics.interval=N`: instructions per metrics sample
     *  (0 = obs::kDefaultMetricsInterval). Execution-only. */
    std::uint64_t metricsInterval = 0;

    /** Keys that were not recognized (caller decides severity). */
    std::vector<std::string> unknown;

    /**
     * Resolve the per-core configs for a CMP run: one entry per
     * core, benchmarks defaulted to `benchmark`, knobs defaulted to
     * the global dri.* template. @p driByDefault is the leg's
     * intent — the DRI leg passes true, a conventional baseline
     * false — and gates every core: with it false all cores come
     * out conventional (so per-core knob keys can never pollute a
     * baseline), and with it true `coreK.dri=0` opts a core out.
     */
    std::vector<CmpCoreConfig> cmpCores(bool driByDefault) const;

    /** Full CmpConfig for a CMP run (shape + resolved cores). */
    CmpConfig cmpConfig(bool driByDefault) const;

    /**
     * The resolved global policy configuration: the `policy`
     * selection with its DriParams synchronized to the final `dri`
     * template (so `dri.*` keys keep working under `policy=dri`
     * and supply the shared geometry for every technique).
     */
    PolicyConfig policyConfig() const;
};

/**
 * Parse argv-style "key=value" tokens into Options.
 * Returns false (and fills @p error) on a malformed token or value;
 * unknown keys are collected, not fatal.
 */
bool parseOptions(int argc, const char *const *argv, Options &out,
                  std::string &error);

/** One-line usage text listing the accepted keys. */
std::string optionsUsage();

} // namespace drisim

#endif // DRISIM_CONFIG_OPTIONS_HH
