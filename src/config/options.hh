/**
 * @file
 * Key=value option parsing shared by the examples and bench
 * binaries: overrides for run length, cache geometry and every DRI
 * parameter, so experiments are scriptable without recompiling.
 *
 * Accepted keys (sizes take 512 / 4K / 1M suffixes):
 *   instrs, jobs, benchmark,
 *   l1i.size, l1i.assoc, l1i.block,
 *   dri.size_bound, dri.miss_bound, dri.interval,
 *   dri.divisibility, dri.throttle_hold, dri.adaptive,
 *   l2.size, l2.assoc, l2.block,
 *   l2.dri, l2.size_bound, l2.miss_bound, l2.interval
 *
 * `jobs` is the sweep worker count (0 = DRISIM_JOBS env, else
 * serial); see harness/executor.hh. The `l2.*` resize keys
 * configure the multi-level scenario (DRI-enabled L2,
 * mem/hierarchy.hh): `l2.dri=1` builds the L2 resizable, and the
 * bound/interval keys set its controller knobs (geometry always
 * follows l2.size/l2.assoc/l2.block).
 */

#ifndef DRISIM_CONFIG_OPTIONS_HH
#define DRISIM_CONFIG_OPTIONS_HH

#include <string>
#include <vector>

#include "core/dri_params.hh"
#include "harness/runner.hh"

namespace drisim
{

/** Parsed command-line experiment options. */
struct Options
{
    RunConfig run;
    DriParams dri;
    std::string benchmark = "compress";

    /** Keys that were not recognized (caller decides severity). */
    std::vector<std::string> unknown;
};

/**
 * Parse argv-style "key=value" tokens into Options.
 * Returns false (and fills @p error) on a malformed token or value;
 * unknown keys are collected, not fatal.
 */
bool parseOptions(int argc, const char *const *argv, Options &out,
                  std::string &error);

/** One-line usage text listing the accepted keys. */
std::string optionsUsage();

} // namespace drisim

#endif // DRISIM_CONFIG_OPTIONS_HH
