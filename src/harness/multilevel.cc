/**
 * @file
 * The (L1 size-bound x L2 size-bound) multi-level search, executed
 * as a JobGraph: calibrate -> fast grid -> select -> detailed
 * winner. Grid cells land in index-addressed slots and the
 * selection scans them in grid order, so results are bit-identical
 * at any worker count.
 */

#include "harness/multilevel.hh"

#include <algorithm>
#include <optional>

#include "harness/executor.hh"
#include "harness/table.hh"
#include "mem/hierarchy.hh"
#include "util/str.hh"

namespace drisim
{

MultiLevelMeasurement
toMultiLevelMeasurement(const RunOutput &out)
{
    MultiLevelMeasurement m;
    m.cycles = out.meas.cycles;
    m.instructions = out.meas.instructions;
    m.l1Bytes = out.meas.l1iBytes;
    m.l1AvgActiveFraction = out.meas.avgActiveFraction;
    m.l1Accesses = out.meas.l1iAccesses;
    m.l1Misses = out.meas.l1iMisses;
    m.l1ResizingTagBits = out.meas.resizingTagBits;
    m.l2Bytes = out.l2SizeBytes;
    m.l2AvgActiveFraction = out.l2AvgActiveFraction;
    m.l2Accesses = out.l2Accesses;
    m.l2Misses = out.l2Misses;
    m.l2ResizingTagBits = out.l2ResizingTagBits;
    m.memAccesses = out.memAccesses;
    return m;
}

MultiLevelSearchResult
searchMultiLevel(const BenchmarkInfo &bench, const RunConfig &config,
                 const DriParams &l1Template,
                 const DriParams &l2Template,
                 const MultiLevelSpace &space,
                 const MultiLevelConstants &constants,
                 double maxSlowdownPct, const RunOutput &convDetailed,
                 Executor *exec)
{
    MultiLevelSearchResult result;
    result.convDetailed = convDetailed;

    // Resolve the templates against the configured geometry once;
    // the cells then vary only the bounds.
    const DriParams l1_base =
        driParamsForLevel(config.hier.l1i, l1Template);
    const DriParams l2_base =
        driParamsForLevel(config.hier.l2, l2Template);

    struct Cell
    {
        std::uint64_t l1Bound;
        std::uint64_t l2Bound;
    };
    std::vector<Cell> cells;
    const std::uint64_t l1_set_bytes =
        static_cast<std::uint64_t>(l1_base.blockBytes) *
        l1_base.assoc;
    const std::uint64_t l2_set_bytes =
        static_cast<std::uint64_t>(l2_base.blockBytes) *
        l2_base.assoc;
    for (std::uint64_t b1 : space.l1SizeBounds) {
        if (b1 > l1_base.sizeBytes || b1 < l1_set_bytes)
            continue;
        for (std::uint64_t b2 : space.l2SizeBounds) {
            if (b2 > l2_base.sizeBytes || b2 < l2_set_bytes)
                continue;
            cells.push_back({b1, b2});
        }
    }

    std::optional<Executor> local;
    if (!exec)
        exec = &local.emplace(config.jobs);
    JobGraph graph;

    // Every cell is evaluated on the *detailed* core. The paper's
    // single-level search can lean on the fast fetch-driven model
    // because the L1 i-cache's behaviour is exact there; the L2's
    // is not — the fast model carries no d-cache traffic, so the
    // L2's miss flow, resize behaviour and slowdown are all wrong
    // there. The grid is small (|L1 bounds| x |L2 bounds|) and the
    // cells are independent executor jobs, so detailed evaluation
    // parallelizes instead of approximating.
    const MultiLevelMeasurement conv_meas =
        toMultiLevelMeasurement(convDetailed);
    const double l1_intervals =
        static_cast<double>(config.maxInstrs) /
        static_cast<double>(l1_base.senseInterval);
    const double l2_intervals =
        static_cast<double>(config.maxInstrs) /
        static_cast<double>(l2_base.senseInterval);
    const double conv_l1_mpi =
        l1_intervals > 0.0
            ? static_cast<double>(convDetailed.meas.l1iMisses) /
                  l1_intervals
            : 0.0;
    const double conv_l2_mpi =
        l2_intervals > 0.0
            ? static_cast<double>(convDetailed.l2Misses) /
                  l2_intervals
            : 0.0;

    auto cell_params = [&](const Cell &cell) {
        std::pair<DriParams, DriParams> p{l1_base, l2_base};
        p.first.sizeBoundBytes = cell.l1Bound;
        p.first.missBound = std::max<std::uint64_t>(
            space.missBoundFloor,
            static_cast<std::uint64_t>(space.l1MissBoundFactor *
                                       conv_l1_mpi));
        p.second.sizeBoundBytes = cell.l2Bound;
        p.second.missBound = std::max<std::uint64_t>(
            space.missBoundFloor,
            static_cast<std::uint64_t>(space.l2MissBoundFactor *
                                       conv_l2_mpi));
        return p;
    };

    auto evaluate = [&](const DriParams &p1, const DriParams &p2) {
        RunConfig ml = config;
        ml.hier.l2Dri = true;
        ml.hier.l2DriParams = p2;
        const RunOutput d = runDri(bench, ml, p1);
        MultiLevelCandidate cand;
        cand.l1 = p1;
        cand.l2 = p2;
        cand.cmp = compareMultiLevel(constants, conv_meas,
                                     toMultiLevelMeasurement(d));
        cand.feasible = maxSlowdownPct <= 0.0 ||
                        cand.cmp.slowdownPercent() <= maxSlowdownPct;
        return cand;
    };

    result.evaluated.resize(cells.size());
    std::vector<JobId> grid;
    grid.reserve(cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
        grid.push_back(graph.add(
            strFormat("%s/ml-sb1=%llu/sb2=%llu", bench.name.c_str(),
                      static_cast<unsigned long long>(
                          cells[i].l1Bound),
                      static_cast<unsigned long long>(
                          cells[i].l2Bound)),
            [&, i](const JobContext &) {
                const auto [p1, p2] = cell_params(cells[i]);
                result.evaluated[i] = evaluate(p1, p2);
            }));
    }

    graph.add(
        bench.name + "/ml-select",
        [&](const JobContext &) {
            // Index-order scan: independent of which worker
            // finished which cell first.
            bool have_best = false;
            double best_ed = 0.0;
            for (const MultiLevelCandidate &cand : result.evaluated) {
                if (!cand.feasible)
                    continue;
                const double ed = cand.cmp.relativeEnergyDelay();
                if (!have_best || ed < best_ed) {
                    have_best = true;
                    best_ed = ed;
                    result.best = cand;
                }
            }
            if (!have_best) {
                // Nothing met the constraint: fall back to the
                // least-harm configuration (full-size size-bounds
                // disable downsizing at both levels) and evaluate
                // it so the report carries real numbers.
                DriParams p1 = l1_base;
                p1.sizeBoundBytes = l1_base.sizeBytes;
                p1.missBound = std::max<std::uint64_t>(
                    space.missBoundFloor,
                    static_cast<std::uint64_t>(2.0 * conv_l1_mpi));
                DriParams p2 = l2_base;
                p2.sizeBoundBytes = l2_base.sizeBytes;
                p2.missBound = std::max<std::uint64_t>(
                    space.missBoundFloor,
                    static_cast<std::uint64_t>(2.0 * conv_l2_mpi));
                result.best = evaluate(p1, p2);
            }
        },
        grid);

    exec->run(graph);
    return result;
}

std::vector<std::string>
multiLevelRowCells(const std::string &bench,
                   const MultiLevelCandidate &cand)
{
    return {bench,
            bytesToString(cand.l1.sizeBoundBytes),
            std::to_string(cand.l1.missBound),
            bytesToString(cand.l2.sizeBoundBytes),
            std::to_string(cand.l2.missBound),
            fmtDouble(cand.cmp.relativeEnergyDelay(), 3),
            fmtDouble(cand.cmp.l1AverageSizeFraction(), 3),
            fmtDouble(cand.cmp.l2AverageSizeFraction(), 3),
            fmtDouble(cand.cmp.slowdownPercent(), 2) + "%"};
}

void
addHierarchyEnergyRows(Table &t, const HierarchyEnergy &h)
{
    for (const LevelEnergy &l : h.levels)
        t.addRow({l.level, fmtDouble(l.leakageNJ, 1),
                  fmtDouble(l.dynamicNJ, 1),
                  fmtDouble(l.totalNJ(), 1)});
    t.addRow({"hierarchy", fmtDouble(h.totalLeakageNJ(), 1),
              fmtDouble(h.totalDynamicNJ(), 1),
              fmtDouble(h.totalNJ(), 1)});
}

} // namespace drisim
