/**
 * @file
 * The (L1 size-bound x L2 size-bound) multi-level search, executed
 * as a JobGraph: calibrate -> fast grid -> select -> detailed
 * winner. Grid cells land in index-addressed slots and the
 * selection scans them in grid order, so results are bit-identical
 * at any worker count.
 */

#include "harness/multilevel.hh"

#include <algorithm>
#include <optional>

#include "harness/executor.hh"
#include "harness/table.hh"
#include "mem/hierarchy.hh"
#include "util/logging.hh"
#include "util/str.hh"

namespace drisim
{

MultiLevelMeasurement
toMultiLevelMeasurement(const RunOutput &out)
{
    MultiLevelMeasurement m;
    m.cycles = out.meas.cycles;
    m.instructions = out.meas.instructions;
    m.l1Bytes = out.meas.l1iBytes;
    m.l1AvgActiveFraction = out.meas.avgActiveFraction;
    m.l1Accesses = out.meas.l1iAccesses;
    m.l1Misses = out.meas.l1iMisses;
    m.l1ResizingTagBits = out.meas.resizingTagBits;
    m.l2Bytes = out.l2SizeBytes;
    m.l2AvgActiveFraction = out.l2AvgActiveFraction;
    m.l2Accesses = out.l2Accesses;
    m.l2Misses = out.l2Misses;
    m.l2ResizingTagBits = out.l2ResizingTagBits;
    m.memAccesses = out.memAccesses;
    return m;
}

MultiLevelSearchResult
searchMultiLevel(const BenchmarkInfo &bench, const RunConfig &config,
                 const DriParams &l1Template,
                 const DriParams &l2Template,
                 const MultiLevelSpace &space,
                 const MultiLevelConstants &constants,
                 double maxSlowdownPct, const RunOutput &convDetailed,
                 Executor *exec)
{
    MultiLevelSearchResult result;
    result.convDetailed = convDetailed;

    // Resolve the templates against the configured geometry once;
    // the cells then vary only the bounds.
    const DriParams l1_base =
        driParamsForLevel(config.hier.l1i, l1Template);
    const DriParams l2_base =
        driParamsForLevel(config.hier.l2, l2Template);

    struct Cell
    {
        std::uint64_t l1Bound;
        std::uint64_t l2Bound;
    };
    std::vector<Cell> cells;
    const std::uint64_t l1_set_bytes =
        static_cast<std::uint64_t>(l1_base.blockBytes) *
        l1_base.assoc;
    const std::uint64_t l2_set_bytes =
        static_cast<std::uint64_t>(l2_base.blockBytes) *
        l2_base.assoc;
    for (std::uint64_t b1 : space.l1SizeBounds) {
        if (b1 > l1_base.sizeBytes || b1 < l1_set_bytes)
            continue;
        for (std::uint64_t b2 : space.l2SizeBounds) {
            if (b2 > l2_base.sizeBytes || b2 < l2_set_bytes)
                continue;
            cells.push_back({b1, b2});
        }
    }

    std::optional<Executor> local;
    if (!exec)
        exec = &local.emplace(config.jobs);
    JobGraph graph;

    // Every cell is evaluated on the *detailed* core. The paper's
    // single-level search can lean on the fast fetch-driven model
    // because the L1 i-cache's behaviour is exact there; the L2's
    // is not — the fast model carries no d-cache traffic, so the
    // L2's miss flow, resize behaviour and slowdown are all wrong
    // there. The grid is small (|L1 bounds| x |L2 bounds|) and the
    // cells are independent executor jobs, so detailed evaluation
    // parallelizes instead of approximating.
    const MultiLevelMeasurement conv_meas =
        toMultiLevelMeasurement(convDetailed);
    const double l1_intervals =
        static_cast<double>(config.maxInstrs) /
        static_cast<double>(l1_base.senseInterval);
    const double l2_intervals =
        static_cast<double>(config.maxInstrs) /
        static_cast<double>(l2_base.senseInterval);
    const double conv_l1_mpi =
        l1_intervals > 0.0
            ? static_cast<double>(convDetailed.meas.l1iMisses) /
                  l1_intervals
            : 0.0;
    const double conv_l2_mpi =
        l2_intervals > 0.0
            ? static_cast<double>(convDetailed.l2Misses) /
                  l2_intervals
            : 0.0;

    auto cell_params = [&](const Cell &cell) {
        std::pair<DriParams, DriParams> p{l1_base, l2_base};
        p.first.sizeBoundBytes = cell.l1Bound;
        p.first.missBound = std::max<std::uint64_t>(
            space.missBoundFloor,
            static_cast<std::uint64_t>(space.l1MissBoundFactor *
                                       conv_l1_mpi));
        p.second.sizeBoundBytes = cell.l2Bound;
        p.second.missBound = std::max<std::uint64_t>(
            space.missBoundFloor,
            static_cast<std::uint64_t>(space.l2MissBoundFactor *
                                       conv_l2_mpi));
        return p;
    };

    auto evaluate = [&](const DriParams &p1, const DriParams &p2) {
        RunConfig ml = config;
        ml.hier.l2Dri = true;
        ml.hier.l2DriParams = p2;
        const RunOutput d = runDri(bench, ml, p1);
        MultiLevelCandidate cand;
        cand.l1 = p1;
        cand.l2 = p2;
        cand.cmp = compareMultiLevel(constants, conv_meas,
                                     toMultiLevelMeasurement(d));
        cand.feasible = maxSlowdownPct <= 0.0 ||
                        cand.cmp.slowdownPercent() <= maxSlowdownPct;
        return cand;
    };

    result.evaluated.resize(cells.size());
    std::vector<JobId> grid;
    grid.reserve(cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
        // Content-addressed job key: the cell's full run-key hash,
        // the same identity its result is memoized under.
        const auto [kp1, kp2] = cell_params(cells[i]);
        RunConfig kml = config;
        kml.hier.l2Dri = true;
        kml.hier.l2DriParams = kp2;
        grid.push_back(graph.add(
            strFormat("%s/ml-sb1=%llu/sb2=%llu#%s",
                      bench.name.c_str(),
                      static_cast<unsigned long long>(
                          cells[i].l1Bound),
                      static_cast<unsigned long long>(
                          cells[i].l2Bound),
                      runKeyDri(bench, kml, kp1).hashHex().c_str()),
            [&, i](const JobContext &) {
                const auto [p1, p2] = cell_params(cells[i]);
                result.evaluated[i] = evaluate(p1, p2);
            }));
    }

    graph.add(
        bench.name + "/ml-select",
        [&](const JobContext &) {
            // Index-order scan: independent of which worker
            // finished which cell first.
            bool have_best = false;
            double best_ed = 0.0;
            for (const MultiLevelCandidate &cand : result.evaluated) {
                if (!cand.feasible)
                    continue;
                const double ed = cand.cmp.relativeEnergyDelay();
                if (!have_best || ed < best_ed) {
                    have_best = true;
                    best_ed = ed;
                    result.best = cand;
                }
            }
            if (!have_best) {
                // Nothing met the constraint: fall back to the
                // least-harm configuration (full-size size-bounds
                // disable downsizing at both levels) and evaluate
                // it so the report carries real numbers.
                DriParams p1 = l1_base;
                p1.sizeBoundBytes = l1_base.sizeBytes;
                p1.missBound = std::max<std::uint64_t>(
                    space.missBoundFloor,
                    static_cast<std::uint64_t>(2.0 * conv_l1_mpi));
                DriParams p2 = l2_base;
                p2.sizeBoundBytes = l2_base.sizeBytes;
                p2.missBound = std::max<std::uint64_t>(
                    space.missBoundFloor,
                    static_cast<std::uint64_t>(2.0 * conv_l2_mpi));
                result.best = evaluate(p1, p2);
            }
        },
        grid);

    exec->run(graph);
    return result;
}

std::vector<std::string>
multiLevelRowCells(const std::string &bench,
                   const MultiLevelCandidate &cand)
{
    return {bench,
            bytesToString(cand.l1.sizeBoundBytes),
            std::to_string(cand.l1.missBound),
            bytesToString(cand.l2.sizeBoundBytes),
            std::to_string(cand.l2.missBound),
            fmtDouble(cand.cmp.relativeEnergyDelay(), 3),
            fmtDouble(cand.cmp.l1AverageSizeFraction(), 3),
            fmtDouble(cand.cmp.l2AverageSizeFraction(), 3),
            fmtDouble(cand.cmp.slowdownPercent(), 2) + "%"};
}

void
addHierarchyEnergyRows(Table &t, const HierarchyEnergy &h)
{
    for (const LevelEnergy &l : h.levels)
        t.addRow({l.level, fmtDouble(l.leakageNJ, 1),
                  fmtDouble(l.dynamicNJ, 1),
                  fmtDouble(l.totalNJ(), 1)});
    t.addRow({"hierarchy", fmtDouble(h.totalLeakageNJ(), 1),
              fmtDouble(h.totalDynamicNJ(), 1),
              fmtDouble(h.totalNJ(), 1)});
}

// ---------------------------------------------------------------------
// CMP search
// ---------------------------------------------------------------------

CmpMeasurement
toCmpMeasurement(const CmpRunOutput &out)
{
    CmpMeasurement m;
    m.cycles = out.systemCycles;
    m.cores.reserve(out.cores.size());
    for (const CmpCoreOutput &c : out.cores) {
        CmpCoreMeasurement cm;
        cm.l1Bytes = c.meas.l1iBytes;
        cm.l1AvgActiveFraction = c.meas.avgActiveFraction;
        cm.l1Accesses = c.meas.l1iAccesses;
        cm.l1Misses = c.meas.l1iMisses;
        cm.l1ResizingTagBits = c.meas.resizingTagBits;
        cm.l1DrowsyFraction = c.l1DrowsyFraction;
        cm.l1GatedFraction = c.l1GatedFraction;
        cm.wakeTransitions = c.wakeTransitions;
        m.cores.push_back(cm);
    }
    m.l2Bytes = out.l2SizeBytes;
    m.l2AvgActiveFraction = out.l2AvgActiveFraction;
    m.l2Accesses = out.l2Accesses;
    m.l2Misses = out.l2Misses;
    m.l2ResizingTagBits = out.l2ResizingTagBits;
    m.memAccesses = out.memAccesses;
    m.dramBusyCycles = out.dramBusyCycles;
    m.coherenceMessages =
        out.coherenceInvalidations + out.coherenceDowngrades;
    return m;
}

std::string
cmpMixName(const std::vector<std::string> &benches)
{
    std::string mix;
    for (const std::string &b : benches) {
        if (!mix.empty())
            mix += '+';
        mix += b;
    }
    return mix;
}

namespace
{

/** "x/y/z" rendering of one per-core column. */
std::string
joinCells(const std::vector<std::string> &cells)
{
    std::string out;
    for (const std::string &c : cells) {
        if (!out.empty())
            out += '/';
        out += c;
    }
    return out;
}

} // namespace

CmpSearchResult
searchCmp(const RunConfig &config, const CmpConfig &cmp,
          const std::string &defaultBench, const DriParams &l1Template,
          const DriParams &l2Template, const CmpSpace &space,
          const MultiLevelConstants &constants, double maxSlowdownPct,
          const CmpRunOutput &convDetailed, Executor *exec)
{
    CmpSearchResult result;
    result.convDetailed = convDetailed;

    const unsigned n = cmp.cores;
    drisim_assert(convDetailed.cores.size() == n,
                  "searchCmp: conventional baseline has %zu cores, "
                  "config asks for %u",
                  convDetailed.cores.size(), n);
    const std::vector<std::string> names =
        cmpBenchNames(cmp, defaultBench);
    const std::string mix = cmpMixName(names);

    // Resolve the templates against the configured geometry once;
    // the cells then vary only the bounds.
    const DriParams l1_base =
        driParamsForLevel(config.hier.l1i, l1Template);
    const DriParams l2_base =
        driParamsForLevel(config.hier.l2, l2Template);

    // Per-core conventional misses per sense interval: each core's
    // miss-bound is scaled to its *own* workload, which is the point
    // of per-core controllers in a heterogeneous mix.
    const CmpMeasurement conv_meas =
        toCmpMeasurement(convDetailed);
    const double l1_intervals =
        static_cast<double>(config.maxInstrs) /
        static_cast<double>(l1_base.senseInterval);
    std::vector<double> conv_l1_mpi(n, 0.0);
    for (unsigned k = 0; k < n; ++k)
        conv_l1_mpi[k] =
            l1_intervals > 0.0
                ? static_cast<double>(
                      convDetailed.cores[k].meas.l1iMisses) /
                      l1_intervals
                : 0.0;
    // The shared L2 senses system-wide retirement (system/cmp.hh),
    // so its interval count runs over the sum of all cores'
    // instructions.
    double total_instrs = 0.0;
    for (const CmpCoreOutput &c : convDetailed.cores)
        total_instrs +=
            static_cast<double>(c.meas.instructions);
    const double l2_intervals =
        total_instrs / static_cast<double>(l2_base.senseInterval);
    const double conv_l2_mpi =
        l2_intervals > 0.0
            ? static_cast<double>(convDetailed.l2Misses) /
                  l2_intervals
            : 0.0;

    auto l1_params = [&](unsigned core, double factor) {
        DriParams p = l1_base;
        p.missBound = std::max<std::uint64_t>(
            space.missBoundFloor,
            static_cast<std::uint64_t>(factor *
                                       conv_l1_mpi[core]));
        return p;
    };
    auto l2_params = [&](std::uint64_t bound) {
        DriParams p = l2_base;
        p.sizeBoundBytes = bound;
        p.missBound = std::max<std::uint64_t>(
            space.missBoundFloor,
            static_cast<std::uint64_t>(space.l2MissBoundFactor *
                                       conv_l2_mpi));
        return p;
    };

    // The grid: shared L2 size-bound (outer) x one miss-bound-factor
    // choice per core (mixed-radix inner, core 0 most significant).
    // The full cross product is |factors|^cores, which explodes —
    // and overflows size_t — at high core counts; past a sanity cap
    // the sweep degrades to one *shared* factor index (all cores
    // move together), keeping the cell count |factors| x |bounds|.
    struct Cell
    {
        std::uint64_t l2Bound;
        std::vector<unsigned> factorIdx; ///< one index per core
    };
    std::vector<Cell> cells;
    const std::uint64_t l2_set_bytes =
        static_cast<std::uint64_t>(l2_base.blockBytes) *
        l2_base.assoc;
    const std::size_t nfactors = space.l1MissBoundFactors.size();
    constexpr std::size_t kMaxFactorCombos = 1024;
    std::size_t combos = 1;
    bool uniform = nfactors < 2;
    if (!uniform) {
        for (unsigned k = 0; k < n; ++k) {
            if (combos > kMaxFactorCombos / nfactors) {
                uniform = true;
                result.sharedFactorSweep = true;
                warn("searchCmp: %zu^%u miss-bound combinations "
                     "exceed the %zu-cell cap; sweeping one shared "
                     "factor index across all cores instead",
                     nfactors, n, kMaxFactorCombos);
                break;
            }
            combos *= nfactors;
        }
    }
    if (uniform)
        combos = nfactors; // 0 factors -> no cells -> fallback
    for (std::uint64_t b2 : space.l2SizeBounds) {
        if (b2 > l2_base.sizeBytes || b2 < l2_set_bytes)
            continue;
        for (std::size_t c = 0; c < combos; ++c) {
            Cell cell;
            cell.l2Bound = b2;
            cell.factorIdx.resize(n);
            std::size_t rem = c;
            for (unsigned k = n; k-- > 0;) {
                cell.factorIdx[k] = static_cast<unsigned>(
                    uniform ? c : rem % nfactors);
                rem /= nfactors;
            }
            cells.push_back(std::move(cell));
        }
    }

    auto evaluate = [&](const std::vector<DriParams> &p1,
                        const DriParams &p2) {
        RunConfig ml = config;
        ml.hier.l2Dri = true;
        ml.hier.l2DriParams = p2;
        CmpConfig cc = cmp;
        cc.coreConfigs.clear();
        for (unsigned k = 0; k < n; ++k) {
            CmpCoreConfig core;
            core.bench = names[k];
            core.dri = true;
            core.driParams = p1[k];
            cc.coreConfigs.push_back(std::move(core));
        }
        const CmpRunOutput d = runCmp(ml, cc, defaultBench);
        CmpCandidate cand;
        cand.l1 = p1;
        cand.l2 = p2;
        cand.cmp = compareCmp(constants, conv_meas,
                              toCmpMeasurement(d));
        cand.feasible = maxSlowdownPct <= 0.0 ||
                        cand.cmp.slowdownPercent() <= maxSlowdownPct;
        return cand;
    };

    auto cell_l1_params = [&](const Cell &cell) {
        std::vector<DriParams> p1;
        p1.reserve(n);
        for (unsigned k = 0; k < n; ++k)
            p1.push_back(l1_params(
                k,
                space.l1MissBoundFactors[cell.factorIdx[k]]));
        return p1;
    };

    std::optional<Executor> local;
    if (!exec)
        exec = &local.emplace(config.jobs);
    JobGraph graph;

    // Every cell is a detailed CmpSystem run: the fast model carries
    // no d-cache traffic, so shared-L2 behaviour would be wrong
    // there (same reasoning as searchMultiLevel), and a CMP cell is
    // exactly the kind of coarse, independent work the executor
    // parallelizes well.
    result.evaluated.resize(cells.size());
    std::vector<JobId> grid;
    grid.reserve(cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
        std::string key = strFormat(
            "%s/cmp-l2b=%llu/f=", mix.c_str(),
            static_cast<unsigned long long>(cells[i].l2Bound));
        for (unsigned k = 0; k < n; ++k)
            key += strFormat("%s%u", k ? "-" : "",
                             cells[i].factorIdx[k]);
        grid.push_back(graph.add(
            std::move(key), [&, i](const JobContext &) {
                result.evaluated[i] =
                    evaluate(cell_l1_params(cells[i]),
                             l2_params(cells[i].l2Bound));
            }));
    }

    graph.add(
        mix + "/cmp-select",
        [&](const JobContext &) {
            // Index-order scan: independent of which worker
            // finished which cell first.
            bool have_best = false;
            double best_ed = 0.0;
            for (const CmpCandidate &cand : result.evaluated) {
                if (!cand.feasible)
                    continue;
                const double ed =
                    cand.cmp.relativeEnergyDelay();
                if (!have_best || ed < best_ed) {
                    have_best = true;
                    best_ed = ed;
                    result.best = cand;
                }
            }
            if (!have_best) {
                // Nothing met the constraint: fall back to the
                // least-harm configuration (full-size size-bounds
                // disable downsizing everywhere) and evaluate it so
                // the report carries real numbers.
                std::vector<DriParams> p1;
                for (unsigned k = 0; k < n; ++k) {
                    DriParams p = l1_base;
                    p.sizeBoundBytes = l1_base.sizeBytes;
                    p.missBound = std::max<std::uint64_t>(
                        space.missBoundFloor,
                        static_cast<std::uint64_t>(
                            2.0 * conv_l1_mpi[k]));
                    p1.push_back(p);
                }
                DriParams p2 = l2_base;
                p2.sizeBoundBytes = l2_base.sizeBytes;
                p2.missBound = std::max<std::uint64_t>(
                    space.missBoundFloor,
                    static_cast<std::uint64_t>(2.0 *
                                               conv_l2_mpi));
                result.best = evaluate(p1, p2);
            }
        },
        grid);

    exec->run(graph);
    return result;
}

std::vector<std::string>
cmpRowCells(const std::string &mix, const CmpCandidate &cand)
{
    std::vector<std::string> mbs;
    std::vector<std::string> sizes;
    for (std::size_t k = 0; k < cand.l1.size(); ++k) {
        mbs.push_back(std::to_string(cand.l1[k].missBound));
        sizes.push_back(
            fmtDouble(cand.cmp.coreAverageSizeFraction(k), 3));
    }
    return {mix,
            joinCells(mbs),
            bytesToString(cand.l2.sizeBoundBytes),
            std::to_string(cand.l2.missBound),
            fmtDouble(cand.cmp.relativeEnergyDelay(), 3),
            joinCells(sizes),
            fmtDouble(cand.cmp.l2AverageSizeFraction(), 3),
            fmtDouble(cand.cmp.slowdownPercent(), 2) + "%"};
}

} // namespace drisim
