/**
 * @file
 * Multi-level DRI search: the (L1 size-bound x L2 size-bound) grid
 * for a hierarchy that resizes both the L1 i-cache and the unified
 * L2 (after Bai et al.'s multi-level leakage trade-off methodology;
 * see docs/REPRODUCTION.md).
 *
 * Mirrors the Section 5.3 single-level search (harness/sweep.hh)
 * with one deliberate difference: every grid cell runs on the
 * *detailed* core. The fast fetch-driven model is exact for the L1
 * i-cache but carries no d-cache traffic, so the L2's miss flow,
 * resize behaviour and slowdown are all wrong there; the grid is
 * small and its cells are independent executor jobs, so detailed
 * evaluation parallelizes instead of approximating. Runs as a
 * JobGraph with index-addressed slots, so SearchResults are
 * bit-identical at any --jobs value (locked by golden tests).
 */

#ifndef DRISIM_HARNESS_MULTILEVEL_HH
#define DRISIM_HARNESS_MULTILEVEL_HH

#include <string>
#include <vector>

#include "energy/accounting.hh"
#include "harness/runner.hh"

namespace drisim
{

class Executor; // harness/executor.hh
class Table;    // harness/table.hh

/** Search-space definition for the two-level grid. */
struct MultiLevelSpace
{
    /** Candidate L1 size-bounds (bytes); filtered to the L1 range. */
    std::vector<std::uint64_t> l1SizeBounds{1024, 4096, 16384,
                                            65536};
    /** Candidate L2 size-bounds (bytes); filtered to the L2 range. */
    std::vector<std::uint64_t> l2SizeBounds{64 * 1024, 256 * 1024,
                                            1024 * 1024};
    /**
     * Miss-bounds as multiples of the conventional hierarchy's
     * misses per sense interval at each level (the paper's workable
     * miss-bounds sit one to two orders above the conventional miss
     * rate; the L2 sees far fewer misses, so its factor is lower).
     */
    double l1MissBoundFactor = 32.0;
    double l2MissBoundFactor = 8.0;
    /** Absolute floor for both miss-bounds (misses per interval). */
    std::uint64_t missBoundFloor = 16;
};

/** One evaluated two-level configuration. */
struct MultiLevelCandidate
{
    DriParams l1;
    DriParams l2;
    MultiLevelComparison cmp;
    bool feasible = true;
};

/** Outcome of a multi-level best-case search. */
struct MultiLevelSearchResult
{
    /** The winning configuration (lowest feasible energy-delay). */
    MultiLevelCandidate best;
    /** All detailed candidates in grid order (reporting/tests). */
    std::vector<MultiLevelCandidate> evaluated;
    /** Detailed conventional baseline used throughout. */
    RunOutput convDetailed;
};

/** Reduce a RunOutput to the multi-level measurement view. */
MultiLevelMeasurement toMultiLevelMeasurement(const RunOutput &out);

/**
 * Search the (L1 bound x L2 bound) grid for the lowest hierarchy
 * energy-delay.
 *
 * @param bench          the benchmark
 * @param config         run configuration with a *conventional* L2
 *                       (the search switches l2Dri on per cell)
 * @param l1Template     L1 DRI knobs not being searched
 * @param l2Template     L2 DRI knobs not being searched (geometry
 *                       always follows config.hier.l2)
 * @param space          the grid
 * @param constants      per-level energy constants
 * @param maxSlowdownPct constraint; <= 0 means unconstrained
 * @param convDetailed   pre-computed detailed conventional run
 * @param exec           optional executor to reuse; otherwise one is
 *                       created with config.jobs workers
 */
MultiLevelSearchResult searchMultiLevel(
    const BenchmarkInfo &bench, const RunConfig &config,
    const DriParams &l1Template, const DriParams &l2Template,
    const MultiLevelSpace &space, const MultiLevelConstants &constants,
    double maxSlowdownPct, const RunOutput &convDetailed,
    Executor *exec = nullptr);

/**
 * The summary cells bench_multilevel prints for one candidate
 * (shared with the golden tests so the rendered rows cannot drift):
 * benchmark, L1 bound, L1 miss-bound, L2 bound, L2 miss-bound,
 * rel-ED, L1 avg size, L2 avg size, slowdown.
 */
std::vector<std::string>
multiLevelRowCells(const std::string &bench,
                   const MultiLevelCandidate &cand);

/**
 * Append the per-level energy rows of @p h to @p t (columns: level,
 * leakage nJ, dynamic nJ, total nJ) followed by a "hierarchy" total
 * row that equals the column sums by construction.
 */
void addHierarchyEnergyRows(Table &t, const HierarchyEnergy &h);

// ---------------------------------------------------------------------
// CMP search (multiprogrammed mixes; see system/cmp.hh)
// ---------------------------------------------------------------------

/** Reduce a CmpRunOutput to the CMP measurement view. */
CmpMeasurement toCmpMeasurement(const CmpRunOutput &out);

/** "bench0+bench1+..." label for a CMP mix. */
std::string cmpMixName(const std::vector<std::string> &benches);

/**
 * Search-space definition for the CMP grid: each core's L1
 * miss-bound (as a factor over that core's own conventional misses
 * per sense interval) crossed with the shared L2 size-bound. The L1
 * size-bound is not searched — it comes from the L1 template — so
 * the grid stays |factors|^cores x |l2 bounds|. Past a 1024-cell
 * combination cap the per-core cross product degrades to a single
 * shared factor index (all cores move together), so wide CMPs sweep
 * |factors| x |l2 bounds| instead of exploding.
 */
struct CmpSpace
{
    /** Candidate per-core L1 miss-bound factors. */
    std::vector<double> l1MissBoundFactors{8.0, 32.0};
    /** Candidate shared-L2 size-bounds (bytes). */
    std::vector<std::uint64_t> l2SizeBounds{64 * 1024,
                                            1024 * 1024};
    /** L2 miss-bound factor over the conventional system's misses
     *  per L2 sense interval. */
    double l2MissBoundFactor = 8.0;
    /** Absolute floor for every miss-bound (misses per interval). */
    std::uint64_t missBoundFloor = 16;
};

/** One evaluated CMP configuration. */
struct CmpCandidate
{
    /** Per-core L1 DRI knobs (one entry per core). */
    std::vector<DriParams> l1;
    /** Shared-L2 resize knobs. */
    DriParams l2;
    CmpComparison cmp;
    bool feasible = true;
};

/** Outcome of a CMP best-case search. */
struct CmpSearchResult
{
    /** The winning configuration (lowest feasible system ED). */
    CmpCandidate best;
    /** All detailed candidates in grid order (reporting/tests). */
    std::vector<CmpCandidate> evaluated;
    /** Detailed conventional CMP baseline used throughout. */
    CmpRunOutput convDetailed;
    /**
     * The per-core factor cross product tripped the 1024-cell cap
     * and the sweep degraded to one shared factor index across all
     * cores. Logged as a warning when it happens; callers should
     * surface it next to the results (the grid no longer explores
     * per-core heterogeneity).
     */
    bool sharedFactorSweep = false;
};

/**
 * Search the (per-core L1 miss-bound x shared L2 size-bound) grid
 * for the lowest system energy-delay. Every cell is a detailed
 * CmpSystem run dispatched as an independent executor job
 * (index-addressed slots, index-order selection), so results are
 * byte-identical at any --jobs value (locked by golden tests).
 *
 * @param config         run configuration with a *conventional* L2
 *                       (the search switches l2Dri on per cell)
 * @param cmp            CMP shape; per-core benchmarks resolve
 *                       against @p defaultBench
 * @param defaultBench   benchmark for cores without coreK.bench
 * @param l1Template     L1 DRI knobs not being searched
 * @param l2Template     L2 DRI knobs not being searched
 * @param space          the grid
 * @param constants      per-level energy constants
 * @param maxSlowdownPct constraint on *system* time; <= 0 means
 *                       unconstrained
 * @param convDetailed   pre-computed conventional CMP baseline
 * @param exec           optional executor to reuse; otherwise one is
 *                       created with config.jobs workers
 */
CmpSearchResult searchCmp(
    const RunConfig &config, const CmpConfig &cmp,
    const std::string &defaultBench, const DriParams &l1Template,
    const DriParams &l2Template, const CmpSpace &space,
    const MultiLevelConstants &constants, double maxSlowdownPct,
    const CmpRunOutput &convDetailed, Executor *exec = nullptr);

/**
 * The summary cells bench_cmp prints for one candidate (shared with
 * the golden tests so the rendered rows cannot drift): mix,
 * per-core L1 miss-bounds, shared L2 bound + miss-bound, rel-ED,
 * per-core L1 avg sizes, L2 avg size, system slowdown.
 */
std::vector<std::string> cmpRowCells(const std::string &mix,
                                     const CmpCandidate &cand);

} // namespace drisim

#endif // DRISIM_HARNESS_MULTILEVEL_HH
