/**
 * @file
 * Multi-level DRI search: the (L1 size-bound x L2 size-bound) grid
 * for a hierarchy that resizes both the L1 i-cache and the unified
 * L2 (after Bai et al.'s multi-level leakage trade-off methodology;
 * see docs/REPRODUCTION.md).
 *
 * Mirrors the Section 5.3 single-level search (harness/sweep.hh)
 * with one deliberate difference: every grid cell runs on the
 * *detailed* core. The fast fetch-driven model is exact for the L1
 * i-cache but carries no d-cache traffic, so the L2's miss flow,
 * resize behaviour and slowdown are all wrong there; the grid is
 * small and its cells are independent executor jobs, so detailed
 * evaluation parallelizes instead of approximating. Runs as a
 * JobGraph with index-addressed slots, so SearchResults are
 * bit-identical at any --jobs value (locked by golden tests).
 */

#ifndef DRISIM_HARNESS_MULTILEVEL_HH
#define DRISIM_HARNESS_MULTILEVEL_HH

#include <string>
#include <vector>

#include "energy/accounting.hh"
#include "harness/runner.hh"

namespace drisim
{

class Executor; // harness/executor.hh
class Table;    // harness/table.hh

/** Search-space definition for the two-level grid. */
struct MultiLevelSpace
{
    /** Candidate L1 size-bounds (bytes); filtered to the L1 range. */
    std::vector<std::uint64_t> l1SizeBounds{1024, 4096, 16384,
                                            65536};
    /** Candidate L2 size-bounds (bytes); filtered to the L2 range. */
    std::vector<std::uint64_t> l2SizeBounds{64 * 1024, 256 * 1024,
                                            1024 * 1024};
    /**
     * Miss-bounds as multiples of the conventional hierarchy's
     * misses per sense interval at each level (the paper's workable
     * miss-bounds sit one to two orders above the conventional miss
     * rate; the L2 sees far fewer misses, so its factor is lower).
     */
    double l1MissBoundFactor = 32.0;
    double l2MissBoundFactor = 8.0;
    /** Absolute floor for both miss-bounds (misses per interval). */
    std::uint64_t missBoundFloor = 16;
};

/** One evaluated two-level configuration. */
struct MultiLevelCandidate
{
    DriParams l1;
    DriParams l2;
    MultiLevelComparison cmp;
    bool feasible = true;
};

/** Outcome of a multi-level best-case search. */
struct MultiLevelSearchResult
{
    /** The winning configuration (lowest feasible energy-delay). */
    MultiLevelCandidate best;
    /** All detailed candidates in grid order (reporting/tests). */
    std::vector<MultiLevelCandidate> evaluated;
    /** Detailed conventional baseline used throughout. */
    RunOutput convDetailed;
};

/** Reduce a RunOutput to the multi-level measurement view. */
MultiLevelMeasurement toMultiLevelMeasurement(const RunOutput &out);

/**
 * Search the (L1 bound x L2 bound) grid for the lowest hierarchy
 * energy-delay.
 *
 * @param bench          the benchmark
 * @param config         run configuration with a *conventional* L2
 *                       (the search switches l2Dri on per cell)
 * @param l1Template     L1 DRI knobs not being searched
 * @param l2Template     L2 DRI knobs not being searched (geometry
 *                       always follows config.hier.l2)
 * @param space          the grid
 * @param constants      per-level energy constants
 * @param maxSlowdownPct constraint; <= 0 means unconstrained
 * @param convDetailed   pre-computed detailed conventional run
 * @param exec           optional executor to reuse; otherwise one is
 *                       created with config.jobs workers
 */
MultiLevelSearchResult searchMultiLevel(
    const BenchmarkInfo &bench, const RunConfig &config,
    const DriParams &l1Template, const DriParams &l2Template,
    const MultiLevelSpace &space, const MultiLevelConstants &constants,
    double maxSlowdownPct, const RunOutput &convDetailed,
    Executor *exec = nullptr);

/**
 * The summary cells bench_multilevel prints for one candidate
 * (shared with the golden tests so the rendered rows cannot drift):
 * benchmark, L1 bound, L1 miss-bound, L2 bound, L2 miss-bound,
 * rel-ED, L1 avg size, L2 avg size, slowdown.
 */
std::vector<std::string>
multiLevelRowCells(const std::string &bench,
                   const MultiLevelCandidate &cand);

/**
 * Append the per-level energy rows of @p h to @p t (columns: level,
 * leakage nJ, dynamic nJ, total nJ) followed by a "hierarchy" total
 * row that equals the column sums by construction.
 */
void addHierarchyEnergyRows(Table &t, const HierarchyEnergy &h);

} // namespace drisim

#endif // DRISIM_HARNESS_MULTILEVEL_HH
