/**
 * @file
 * Fixed-width table rendering, ASCII bars and CSV export.
 */

#include "harness/table.hh"

#include <algorithm>

#include "util/logging.hh"
#include "util/str.hh"

namespace drisim
{

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    drisim_assert(cells.size() == headers_.size(),
                  "row has %zu cells, table has %zu columns",
                  cells.size(), headers_.size());
    rows_.push_back(std::move(cells));
}

void
Table::reserveRows(size_t n)
{
    rows_.resize(rows_.size() + n,
                 std::vector<std::string>(headers_.size()));
}

void
Table::setRow(size_t index, std::vector<std::string> cells)
{
    drisim_assert(index < rows_.size(),
                  "row %zu out of range (%zu rows)", index,
                  rows_.size());
    drisim_assert(cells.size() == headers_.size(),
                  "row has %zu cells, table has %zu columns",
                  cells.size(), headers_.size());
    rows_[index] = std::move(cells);
}

void
Table::print(std::ostream &os) const
{
    std::vector<size_t> width(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        width[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto print_row = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            os << row[c];
            if (c + 1 < row.size())
                os << std::string(width[c] - row[c].size() + 2, ' ');
        }
        os << "\n";
    };

    print_row(headers_);
    size_t total = 0;
    for (size_t c = 0; c < width.size(); ++c)
        total += width[c] + (c + 1 < width.size() ? 2 : 0);
    os << std::string(total, '-') << "\n";
    for (const auto &row : rows_)
        print_row(row);
}

void
Table::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            os << row[c];
            if (c + 1 < row.size())
                os << ",";
        }
        os << "\n";
    };
    emit(headers_);
    for (const auto &row : rows_)
        emit(row);
}

std::string
fmtDouble(double v, int decimals)
{
    return strFormat("%.*f", decimals, v);
}

std::string
fmtPercent(double fraction, int decimals)
{
    return strFormat("%.*f%%", decimals, 100.0 * fraction);
}

std::string
asciiBar(double value, unsigned width)
{
    double v = std::clamp(value, 0.0, 1.0);
    const unsigned n =
        static_cast<unsigned>(v * static_cast<double>(width) + 0.5);
    std::string bar(n, '#');
    bar.resize(width, ' ');
    return bar;
}

} // namespace drisim
