/**
 * @file
 * JobGraph scheduling on the work-stealing pool.
 */

#include "harness/executor.hh"

#include <cstdlib>
#include <thread>

#include "obs/trace.hh"
#include "util/logging.hh"
#include "util/parse.hh"
#include "util/str.hh"

namespace drisim
{

unsigned
hardwareJobCount()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

bool
parseJobsValue(std::string_view text, unsigned &out)
{
    // The shared strict parser (util/parse.hh) is what rejects the
    // "-1" wraparound; this wrapper only adds the worker sanity cap.
    std::uint64_t v = 0;
    if (!parseUnsignedValue(text, v, 4096))
        return false;
    out = static_cast<unsigned>(v);
    return true;
}

unsigned
defaultJobCount()
{
    const char *env = std::getenv("DRISIM_JOBS");
    if (env && *env) {
        unsigned v = 0;
        if (parseJobsValue(env, v))
            return v == 0 ? hardwareJobCount() : v;
        warn("ignoring malformed DRISIM_JOBS='%s'", env);
    }
    return 1;
}

unsigned
resolveJobCount(unsigned requested)
{
    return requested > 0 ? requested : defaultJobCount();
}

std::uint64_t
jobSeed(std::string_view key)
{
    // FNV-1a over the key bytes...
    std::uint64_t h = 1469598103934665603ull;
    for (const char c : key) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull;
    }
    // ...then a SplitMix64 finalizer so near-identical keys (grid
    // neighbours) land far apart.
    h += 0x9e3779b97f4a7c15ull;
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
    h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
    return h ^ (h >> 31);
}

JobId
JobGraph::add(std::string key,
              std::function<void(const JobContext &)> fn,
              std::vector<JobId> deps)
{
    const JobId id = jobs_.size();
    Job job;
    job.key = std::move(key);
    job.fn = std::move(fn);
    job.depCount = deps.size();
    job.pendingDeps = deps.size();
    jobs_.push_back(std::move(job));
    for (const JobId dep : deps) {
        drisim_assert(dep < id,
                      "job '%s' depends on job %zu, which has not "
                      "been added yet",
                      jobs_[id].key.c_str(), dep);
        jobs_[dep].dependents.push_back(id);
    }
    return id;
}

const std::string &
JobGraph::key(JobId id) const
{
    drisim_assert(id < jobs_.size(), "bad job id %zu", id);
    return jobs_[id].key;
}

JobState
JobGraph::state(JobId id) const
{
    drisim_assert(id < jobs_.size(), "bad job id %zu", id);
    return jobs_[id].state;
}

Executor::Executor(unsigned jobs)
    : pool_(resolveJobCount(jobs) - 1)
{
}

void
Executor::run(JobGraph &graph)
{
    drisim_assert(active_ == nullptr,
                  "Executor::run() is not re-entrant");
    active_ = &graph;
    cancelled_ = false;
    firstError_ = nullptr;
    remaining_.store(graph.jobs_.size(), std::memory_order_relaxed);

    // Reset before anything is submitted: once the first job is in
    // the pool its completions mutate dependents' state concurrently.
    for (auto &job : graph.jobs_) {
        job.state = JobState::Pending;
        job.pendingDeps = job.depCount;
    }
    const int submitSlot = WorkStealingPool::currentSlot();
    for (JobId id = 0; id < graph.jobs_.size(); ++id)
        if (graph.jobs_[id].depCount == 0)
            pool_.submit([this, &graph, id, submitSlot] {
                runJob(graph, id, submitSlot);
            });

    pool_.helpWhile([this] {
        return remaining_.load(std::memory_order_acquire) > 0;
    });

    active_ = nullptr;
    if (firstError_)
        std::rethrow_exception(firstError_);
}

void
Executor::runJob(JobGraph &graph, JobId id, int submitSlot)
{
    auto &job = graph.jobs_[id];

    JobState outcome;
    if (cancelled_) {
        outcome = JobState::Skipped;
    } else {
        JobContext ctx;
        ctx.id = id;
        ctx.seed = jobSeed(job.key);
        const int slot = WorkStealingPool::currentSlot();
        ctx.worker = slot >= 0 ? static_cast<unsigned>(slot) : 0;
        {
            std::lock_guard<std::mutex> lock(mu_);
            job.state = JobState::Running;
        }
        // One span per job body. Worker/steal annotations are
        // scheduling-dependent, so a pinned trace (byte-compared at
        // --jobs 1 vs --jobs 4) omits them.
        obs::TraceWriter *tw = obs::trace();
        obs::ScopedSpan span(tw, "job", job.key);
        if (tw && !tw->pinned()) {
            span.tid(ctx.worker);
            span.arg("worker", std::to_string(ctx.worker));
            span.arg("stolen", submitSlot >= 0 && submitSlot != slot
                                   ? "true"
                                   : "false");
        }
        try {
            job.fn(ctx);
            outcome = JobState::Done;
        } catch (...) {
            outcome = JobState::Failed;
            std::lock_guard<std::mutex> lock(mu_);
            cancelled_ = true;
            if (!firstError_)
                firstError_ = std::current_exception();
        }
    }

    std::vector<JobId> ready;
    {
        std::lock_guard<std::mutex> lock(mu_);
        job.state = outcome;
        for (const JobId dep : job.dependents) {
            // Dependents are released even when this job failed or
            // was skipped: with the graph cancelled they drain as
            // Skipped, keeping the remaining-jobs count exact.
            if (--graph.jobs_[dep].pendingDeps == 0)
                ready.push_back(dep);
        }
    }
    const int slot = WorkStealingPool::currentSlot();
    for (const JobId dep : ready)
        pool_.submit([this, &graph, dep, slot] {
            runJob(graph, dep, slot);
        });
    remaining_.fetch_sub(1, std::memory_order_acq_rel);
}

void
Executor::forEachIndex(
    std::string_view keyPrefix, std::size_t n,
    const std::function<void(std::size_t, const JobContext &)> &fn)
{
    JobGraph graph;
    for (std::size_t i = 0; i < n; ++i)
        graph.add(strFormat("%.*s/%zu",
                            static_cast<int>(keyPrefix.size()),
                            keyPrefix.data(), i),
                  [&fn, i](const JobContext &ctx) { fn(i, ctx); });
    run(graph);
}

} // namespace drisim
