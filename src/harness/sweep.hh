/**
 * @file
 * Best-case parameter search (paper Section 5.3): "we show the
 * best-case energy savings achieved under various combinations of
 * [miss-bound and size-bound] ... determined via simulation by
 * empirically searching the combination space."
 *
 * The search evaluates a (size-bound x miss-bound) grid with the
 * fast model, keeps the best energy-delay subject to an optional
 * slowdown constraint, and re-runs the winner on the detailed model.
 */

#ifndef DRISIM_HARNESS_SWEEP_HH
#define DRISIM_HARNESS_SWEEP_HH

#include <vector>

#include "energy/accounting.hh"
#include "harness/runner.hh"

namespace drisim
{

/** Search-space definition. */
struct SearchSpace
{
    /** Candidate size-bounds (bytes); filtered to <= cache size. */
    std::vector<std::uint64_t> sizeBounds{
        1024, 2048, 4096, 8192, 16384, 32768, 65536};
    /**
     * Candidate miss-bounds as multiples of the conventional
     * cache's misses per sense interval (the paper notes workable
     * miss-bounds sit one to two orders of magnitude above the
     * conventional miss rate).
     */
    std::vector<double> missBoundFactors{2.0, 8.0, 32.0, 128.0};
    /** Absolute floor for the miss-bound (misses per interval). */
    std::uint64_t missBoundFloor = 16;
};

/** One evaluated configuration. */
struct SearchCandidate
{
    DriParams dri;
    ComparisonResult cmp;
    bool feasible = true;
};

/** Outcome of a best-case search. */
struct SearchResult
{
    /** The winning configuration (detailed-model comparison). */
    SearchCandidate best;
    /** All fast-model candidates (for reporting/tests). */
    std::vector<SearchCandidate> evaluated;
    /** Detailed conventional baseline used for the final numbers. */
    RunOutput convDetailed;
};

/**
 * Search the grid for the lowest energy-delay.
 *
 * @param bench            the benchmark
 * @param config           run configuration (defines the base cache)
 * @param driTemplate      DRI knobs not being searched (interval,
 *                         divisibility, throttle, latency)
 * @param space            the grid
 * @param constants        energy constants
 * @param maxSlowdownPct   constraint; <= 0 means unconstrained
 * @param convDetailed     pre-computed detailed conventional run
 */
SearchResult searchBestEnergyDelay(
    const BenchmarkInfo &bench, const RunConfig &config,
    const DriParams &driTemplate, const SearchSpace &space,
    const EnergyConstants &constants, double maxSlowdownPct,
    const RunOutput &convDetailed);

/** Detailed paired evaluation of one explicit configuration. */
ComparisonResult evaluateDetailed(const BenchmarkInfo &bench,
                                  const RunConfig &config,
                                  const DriParams &dri,
                                  const EnergyConstants &constants,
                                  const RunOutput &convDetailed);

class Executor; // harness/executor.hh

/**
 * Detailed paired evaluation of several configurations, run as
 * independent executor jobs. Results come back in the order of
 * @p variants regardless of completion order. Pass an @p exec to
 * reuse an existing pool; otherwise one is created with config.jobs
 * workers for the call.
 */
std::vector<ComparisonResult> evaluateDetailedBatch(
    const BenchmarkInfo &bench, const RunConfig &config,
    const std::vector<DriParams> &variants,
    const EnergyConstants &constants, const RunOutput &convDetailed,
    Executor *exec = nullptr);

} // namespace drisim

#endif // DRISIM_HARNESS_SWEEP_HH
