/**
 * @file
 * The head-to-head leakage-policy search: a (policy x parameter)
 * grid evaluated per benchmark, answering "which leakage technique
 * wins, where?" (Bai et al.'s state-preserving vs state-destroying
 * trade-off; see docs/REPRODUCTION.md, Policy comparison study).
 *
 * Every cell is one PolicyConfig run on the *detailed* core and
 * scored by policy energy-delay against the shared conventional
 * baseline (energy/accounting.hh). The grid runs as a JobGraph with
 * index-addressed slots and index-order selection, so results are
 * byte-identical at any --jobs value (locked by golden tests). The
 * selection keeps one winner per policy kind — the point of the
 * study is the comparison, not a single champion.
 */

#ifndef DRISIM_HARNESS_POLICIES_HH
#define DRISIM_HARNESS_POLICIES_HH

#include <string>
#include <vector>

#include "energy/accounting.hh"
#include "harness/runner.hh"
#include "policy/leakage_policy.hh"

namespace drisim
{

class Executor; // harness/executor.hh

/** Search-space definition for the policy grid. */
struct PolicySpace
{
    /** Policies to compare, in report order. */
    std::vector<PolicyKind> kinds{
        PolicyKind::Dri, PolicyKind::Decay, PolicyKind::Drowsy,
        PolicyKind::StaticWays};

    // Dri: size-bounds crossed with one miss-bound factor over the
    // conventional misses per sense interval (the single-level
    // search's best-performing factor).
    std::vector<std::uint64_t> driSizeBounds{1024, 4096, 16384};
    double driMissBoundFactor = 32.0;
    std::uint64_t missBoundFloor = 16;

    /** Decay: generations to gate are fixed by the config template;
     *  the grid sweeps the generation length (instructions). */
    std::vector<InstCount> decayIntervals{25 * 1000, 100 * 1000,
                                          400 * 1000};

    /** Drowsy: episode lengths (instructions) x wake latencies. */
    std::vector<InstCount> drowsyIntervals{25 * 1000, 100 * 1000,
                                           400 * 1000};
    std::vector<Cycles> drowsyWakeLatencies{1};

    /** StaticWays: powered-way counts (filtered to [1, assoc]). */
    std::vector<unsigned> waysActive{1, 2};
};

/** One evaluated policy configuration. */
struct PolicyCandidate
{
    PolicyConfig config;
    PolicyComparison cmp;
    bool feasible = true;
};

/** Outcome of a policy head-to-head search. */
struct PolicySearchResult
{
    /**
     * The winner of each policy kind, in space.kinds order: the
     * lowest feasible energy-delay, or (when nothing met the
     * slowdown constraint) the lowest-slowdown cell with
     * feasible == false.
     */
    std::vector<PolicyCandidate> bestPerKind;

    /** All candidates in grid order (reporting/tests). */
    std::vector<PolicyCandidate> evaluated;

    /** Detailed conventional baseline used throughout. */
    RunOutput convDetailed;
};

/** Reduce a runPolicy() output to the accounting view. */
PolicyMeasurement toPolicyMeasurement(const RunOutput &out);

/**
 * Search the (policy x parameter) grid for each policy's best
 * energy-delay.
 *
 * @param bench          the benchmark
 * @param config         run configuration (conventional L2)
 * @param tmpl           policy knobs not being searched; tmpl.dri
 *                       carries the shared geometry (resolved
 *                       against config.hier.l1i) and the Dri
 *                       interval/divisibility/throttle knobs
 * @param space          the grid
 * @param constants      policy energy constants
 * @param maxSlowdownPct constraint; <= 0 means unconstrained
 * @param convDetailed   pre-computed detailed conventional run
 * @param exec           optional executor to reuse; otherwise one
 *                       is created with config.jobs workers
 */
PolicySearchResult searchPolicies(
    const BenchmarkInfo &bench, const RunConfig &config,
    const PolicyConfig &tmpl, const PolicySpace &space,
    const PolicyEnergyConstants &constants, double maxSlowdownPct,
    const RunOutput &convDetailed, Executor *exec = nullptr);

/**
 * The summary cells bench_policies prints for one candidate (shared
 * with the golden tests so the rendered rows cannot drift):
 * benchmark, policy, params, rel-ED, active fraction, drowsy
 * fraction, wake transitions, slowdown.
 */
std::vector<std::string>
policyRowCells(const std::string &bench, const PolicyCandidate &cand);

} // namespace drisim

#endif // DRISIM_HARNESS_POLICIES_HH
