/**
 * @file
 * Run orchestration: builds a benchmark's program image, wires the
 * hierarchy and core, runs, and extracts RunMeasurements. Supports
 * the detailed out-of-order model and the fast fetch-driven model
 * (used only for parameter search; see SimpleCore).
 */

#ifndef DRISIM_HARNESS_RUNNER_HH
#define DRISIM_HARNESS_RUNNER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/dri_params.hh"
#include "cpu/ooo_core.hh"
#include "farm/shard_plan.hh"
#include "energy/energy_model.hh"
#include "mem/hierarchy.hh"
#include "policy/leakage_policy.hh"
#include "sim/result_cache.hh"
#include "sim/sampling.hh"
#include "system/cmp.hh"
#include "workload/spec_suite.hh"

namespace drisim
{

struct ProgramImage; // workload/cfg.hh

/** Common knobs for one simulation run. */
struct RunConfig
{
    /**
     * Cache geometries (Table 1 defaults). Setting `hier.l2Dri`
     * turns any run — conventional or DRI L1I, fast or detailed —
     * into a multi-level scenario: the L2 is built resizable and is
     * driven by the core's retire/integrate callbacks alongside any
     * DRI L1I.
     */
    HierarchyParams hier{};
    /** Core shape (Table 1 defaults). */
    OooParams core{};
    /** Instructions to simulate. */
    InstCount maxInstrs = 10 * 1000 * 1000;
    /**
     * Worker count for sweep-shaped work (the --jobs knob): 0 defers
     * to the DRISIM_JOBS environment variable, absent which runs are
     * serial. Results are bit-identical at any value; see
     * harness/executor.hh.
     */
    unsigned jobs = 0;

    /**
     * Phase sampling (sim/sampling.hh): detailed windows separated
     * by functional fast-forward. Applies to the detailed entry
     * points only (the fast model is already an approximation);
     * changes results, so it participates in the run key. When
     * enabled, mid-run checkpointing is skipped.
     */
    sim::SamplingConfig sampling{};

    /**
     * Directory for mid-run architectural snapshots ("" = off).
     * A run first looks for a snapshot of its own key at the
     * midpoint; on a hit it restores and simulates only the second
     * half, bit-identically (locked by tests/checkpoint_test.cc).
     */
    std::string checkpointDir;

    /**
     * Sweep-farm shard assignment (--shard K/N, shard=K/N): a
     * sharded bench runs only the sweep units whose stable config
     * hash lands on this shard (farm/shard_plan.hh). Default =
     * unsharded. Execution-only, like jobs: which process ran a
     * unit cannot change its result, so the plan never enters run
     * keys (locked by tests/options_test.cc).
     */
    farm::ShardPlan shard;

    /**
     * Content-addressed result memoization (null = off). Completed
     * RunOutputs are stored under the canonical config hash and
     * served without simulating on later identical runs — across
     * entry points, binaries and processes (sim/result_cache.hh).
     * jobs/checkpointDir/resultCache never enter the key: they
     * cannot change results.
     */
    std::shared_ptr<sim::ResultCache> resultCache;
};

/** What one run produced. */
struct RunOutput
{
    RunMeasurement meas;
    double ipc = 0.0;
    double l1dMissRate = 0.0;
    double l2MissRate = 0.0;
    std::uint64_t l2Accesses = 0;
    std::uint64_t l2Misses = 0;
    std::uint64_t memAccesses = 0;
    /** Memory traffic split: demand fills vs background drains. */
    std::uint64_t memReads = 0;
    std::uint64_t memWritebacks = 0;
    std::uint64_t resizes = 0;
    std::uint64_t throttleEvents = 0;

    /** Non-blocking memory-system activity (all zero under the
     *  default blocking/flat configuration). */
    std::uint64_t mshrCoalesced = 0;
    std::uint64_t mshrFullStalls = 0;
    std::uint64_t mshrFullStallCycles = 0;
    /** Max in-flight misses observed at any one level. */
    std::uint64_t mshrPeakOccupancy = 0;
    std::uint64_t dramRowHits = 0;
    std::uint64_t dramRowMisses = 0;
    std::uint64_t dramQueueFullEvents = 0;
    std::uint64_t dramBusyCycles = 0;

    /** L2 activity (defaults describe a fixed, fully-powered L2). */
    std::uint64_t l2SizeBytes = 0;
    double l2AvgActiveFraction = 1.0;
    unsigned l2ResizingTagBits = 0;
    std::uint64_t l2Resizes = 0;

    /** Leakage-policy activity (runPolicy entry points; defaults
     *  describe a fixed, fully-powered L1I). */
    double l1DrowsyFraction = 0.0;
    std::uint64_t wakeTransitions = 0;
    std::uint64_t wakeStallCycles = 0;
    std::uint64_t policyBlocksLost = 0;
};

/**
 * Default run length honouring the DRISIM_SCALE environment
 * variable (a multiplier on 10 M instructions; see docs/DESIGN.md,
 * Scaling methodology).
 */
InstCount defaultRunInstrs();

/**
 * Build (or fetch) the cached deterministic program image for
 * @p bench. Thread-safe and read-mostly: concurrent runs of the same
 * benchmark share one image without serializing on a writer lock.
 * Sweep graphs may call this from a root job to warm the cache
 * before fanning out.
 */
const ProgramImage &programImageFor(const BenchmarkInfo &bench);

/** Detailed run with a conventional L1 i-cache. */
RunOutput runConventional(const BenchmarkInfo &bench,
                          const RunConfig &config);

/** Detailed run with a DRI L1 i-cache. */
RunOutput runDri(const BenchmarkInfo &bench, const RunConfig &config,
                 const DriParams &dri);

/** Fast-model calibration from a detailed conventional run. */
struct FastCalibration
{
    /** Base CPI once i-cache stalls are removed. */
    double baseCpi = 0.5;
    /** Stall-to-time transfer fraction. */
    double missOverlap = 0.85;
};

/**
 * Derive the fast-model calibration for a benchmark from its
 * detailed conventional run (see SimpleCore docs).
 */
FastCalibration calibrateFast(const BenchmarkInfo &bench,
                              const RunConfig &config,
                              const RunOutput &convDetailed);

/** Fast conventional run (search baseline). */
RunOutput runConventionalFast(const BenchmarkInfo &bench,
                              const RunConfig &config,
                              const FastCalibration &cal);

/** Fast DRI run (search candidate). */
RunOutput runDriFast(const BenchmarkInfo &bench, const RunConfig &config,
                     const DriParams &dri, const FastCalibration &cal);

/**
 * Detailed run with a leakage-policy-managed L1 i-cache
 * (policy/leakage_policy.hh). With policy.kind == Dri this is the
 * runDri() path through the adapter and produces bit-identical
 * results (locked by tests).
 */
RunOutput runPolicy(const BenchmarkInfo &bench, const RunConfig &config,
                    const PolicyConfig &policy);

/** Fast-model policy run (search candidate). */
RunOutput runPolicyFast(const BenchmarkInfo &bench,
                        const RunConfig &config,
                        const PolicyConfig &policy,
                        const FastCalibration &cal);

/**
 * Canonical configuration keys for the entry points above — every
 * knob that can change the run's result, in sorted-key canonical
 * form (sim/result_cache.hh). The hash of the key names the run in
 * the result cache, in the checkpoint store and in every --json
 * report row (config_hash), so artifacts from different binaries
 * and processes join on it. jobs/checkpointDir/resultCache are
 * deliberately absent: they cannot change results.
 */
sim::ConfigKey runKeyConventional(const BenchmarkInfo &bench,
                                  const RunConfig &config);
sim::ConfigKey runKeyDri(const BenchmarkInfo &bench,
                         const RunConfig &config, const DriParams &dri);
sim::ConfigKey runKeyPolicy(const BenchmarkInfo &bench,
                            const RunConfig &config,
                            const PolicyConfig &policy);
sim::ConfigKey runKeyCalibrate(const BenchmarkInfo &bench,
                               const RunConfig &config);
sim::ConfigKey runKeyConventionalFast(const BenchmarkInfo &bench,
                                      const RunConfig &config,
                                      const FastCalibration &cal);
sim::ConfigKey runKeyDriFast(const BenchmarkInfo &bench,
                             const RunConfig &config,
                             const DriParams &dri,
                             const FastCalibration &cal);
sim::ConfigKey runKeyPolicyFast(const BenchmarkInfo &bench,
                                const RunConfig &config,
                                const PolicyConfig &policy,
                                const FastCalibration &cal);

/**
 * The benchmark each CMP core runs: its coreK.bench override, or
 * @p defaultBench where none was given. One entry per configured
 * core.
 */
std::vector<std::string> cmpBenchNames(const CmpConfig &cmp,
                                       const std::string &defaultBench);

/**
 * Canonical key for a CMP run: every per-core flavour plus the
 * sharing model, including the coherence configuration — two runs
 * that differ only in coherence enablement, directory capacity or
 * message latency must never share a snapshot or report identity
 * (locked by tests/checkpoint_test.cc).
 */
sim::ConfigKey runKeyCmp(const RunConfig &config, const CmpConfig &cmp,
                         const std::string &defaultBench);

/**
 * Detailed CMP run (system/cmp.hh): N cores, private L1s
 * (conventional or DRI per cmp.coreConfigs), shared L2 (conventional
 * or resizable per config.hier.l2Dri), each core running
 * config.maxInstrs instructions of its own benchmark. With
 * cmp.cores == 1 this reproduces the single-core entry points
 * bit-for-bit (locked by tests).
 */
CmpRunOutput runCmp(const RunConfig &config, const CmpConfig &cmp,
                    const std::string &defaultBench);

} // namespace drisim

#endif // DRISIM_HARNESS_RUNNER_HH
