/**
 * @file
 * Parallel sweep/table execution engine.
 *
 * The paper's headline results come from empirically searching a
 * (size-bound x miss-bound) grid per benchmark (Section 5.3) — an
 * embarrassingly parallel workload the serial-era harness walked one
 * cell at a time. The executor runs such grids as a JobGraph on a
 * work-stealing pool while keeping every observable result
 * bit-identical to the serial walk:
 *
 *  - jobs carry a deterministic seed derived from their *key*
 *    (benchmark/parameter identity), never from submission or
 *    completion order;
 *  - results aggregate into index-addressed slots, so reductions
 *    scan them in grid order regardless of completion interleaving;
 *  - dependencies express the pipeline "fast-model grid -> select
 *    winner -> detailed re-run of the winner".
 *
 * `jobs == 1` degenerates to serial execution on the calling thread
 * and is the reference the determinism tests compare against.
 */

#ifndef DRISIM_HARNESS_EXECUTOR_HH
#define DRISIM_HARNESS_EXECUTOR_HH

#include <atomic>
#include <cstdint>
#include <exception>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "util/thread_pool.hh"

namespace drisim
{

/** max(1, std::thread::hardware_concurrency()). */
unsigned hardwareJobCount();

/**
 * Worker count when none is requested: the DRISIM_JOBS environment
 * variable if set to a positive integer ("0" means auto, i.e. the
 * hardware count), otherwise 1 (serial; parallelism is opt-in).
 */
unsigned defaultJobCount();

/** Resolve a --jobs style request: 0 defers to defaultJobCount(). */
unsigned resolveJobCount(unsigned requested);

/**
 * Parse a --jobs / DRISIM_JOBS value. Accepts only plain decimal
 * digits ("0" = auto) up to a sanity cap of 4096 workers — in
 * particular "-1" is rejected rather than wrapping to four billion
 * threads. Returns false without touching @p out on bad input.
 */
bool parseJobsValue(std::string_view text, unsigned &out);

/**
 * Deterministic 64-bit seed from a stable job key (FNV-1a with a
 * SplitMix64 finalizer). Identical across platforms and independent
 * of scheduling, so stochastic jobs stay reproducible at any worker
 * count.
 */
std::uint64_t jobSeed(std::string_view key);

/** Index of a job within its graph. */
using JobId = std::size_t;

/** Lifecycle of a job (terminal states: Done, Failed, Skipped). */
enum class JobState
{
    Pending, ///< waiting on dependencies
    Running, ///< body executing
    Done,    ///< body returned
    Failed,  ///< body threw (first failure is rethrown by run())
    Skipped  ///< cancelled before its body ran
};

/** What a job body may learn about itself. */
struct JobContext
{
    JobId id = 0;
    /** jobSeed(key) — feed this to Rng for per-job randomness. */
    std::uint64_t seed = 0;
    /** Executing pool slot (0 = the thread that called run()). */
    unsigned worker = 0;
};

/**
 * A DAG of jobs. Dependencies must refer to already-added jobs, so
 * graphs are acyclic by construction. Build is single-threaded; the
 * executor owns all state transitions during run().
 */
class JobGraph
{
  public:
    /**
     * Append a job.
     *
     * @param key  stable identity (e.g. "compress/sb=4096/mbf=32");
     *             seeds the job's RNG, names it in errors
     * @param fn   the body
     * @param deps jobs that must finish first (ids < this job's)
     */
    JobId add(std::string key,
              std::function<void(const JobContext &)> fn,
              std::vector<JobId> deps = {});

    std::size_t size() const { return jobs_.size(); }
    const std::string &key(JobId id) const;
    JobState state(JobId id) const;

  private:
    friend class Executor;

    struct Job
    {
        std::string key;
        std::function<void(const JobContext &)> fn;
        std::vector<JobId> dependents;
        std::size_t depCount = 0;
        std::size_t pendingDeps = 0;
        JobState state = JobState::Pending;
    };

    std::vector<Job> jobs_;
};

/**
 * Runs JobGraphs on a work-stealing pool of `jobs` slots (the
 * calling thread participates, so `jobs == 1` spawns no threads).
 * One Executor can run many graphs; workers persist across runs.
 */
class Executor
{
  public:
    /** @param jobs worker count; 0 = resolveJobCount(0). */
    explicit Executor(unsigned jobs = 0);

    /** Total workers, including the helping caller. */
    unsigned workers() const { return pool_.slots(); }

    /**
     * Execute every job, honouring dependencies. The first thrown
     * exception cancels all jobs that have not started (they end
     * Skipped) and is rethrown here once the graph is quiescent.
     * Not re-entrant: call from one thread, never from a job body.
     */
    void run(JobGraph &graph);

    /**
     * Convenience: run fn(i, ctx) for i in [0, n) as n independent
     * jobs keyed "<keyPrefix>/<i>".
     */
    void forEachIndex(
        std::string_view keyPrefix, std::size_t n,
        const std::function<void(std::size_t, const JobContext &)>
            &fn);

  private:
    /** @param submitSlot pool slot that enqueued the job (-1 for a
     *  foreign thread) — differing from the executing slot marks the
     *  job as stolen in the trace (obs/trace.hh). */
    void runJob(JobGraph &graph, JobId id, int submitSlot);

    WorkStealingPool pool_;

    /** Per-run state, guarded by mu_ (remaining_ is also read by the
     *  pool's pending-predicate under the pool lock, hence atomic). */
    std::mutex mu_;
    std::atomic<std::size_t> remaining_{0};
    std::atomic<bool> cancelled_{false};
    std::exception_ptr firstError_;
    JobGraph *active_ = nullptr;
};

} // namespace drisim

#endif // DRISIM_HARNESS_EXECUTOR_HH
