/**
 * @file
 * Run orchestration: builds the workload, wires hierarchy and core,
 * runs, and extracts measurements.
 */

#include "harness/runner.hh"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>

#include "core/dri_icache.hh"
#include "cpu/simple_core.hh"
#include "obs/metrics.hh"
#include "obs/probe.hh"
#include "obs/trace.hh"
#include "sim/checkpoint.hh"
#include "util/logging.hh"
#include "workload/generator.hh"

namespace drisim
{

namespace
{

/**
 * Program images are deterministic; build each benchmark once and
 * share it. Executor workers construct a TraceGenerator per run, so
 * the lookup is the harness's hottest synchronization point: reads
 * take a shared lock and proceed in parallel (the serial-era
 * exclusive mutex made every worker queue up here). A cache miss
 * builds outside any lock — two workers racing on a cold benchmark
 * do redundant deterministic work and the first insert wins.
 */
class ProgramImageCache
{
  public:
    const ProgramImage &get(const BenchmarkInfo &bench)
    {
        {
            std::shared_lock<std::shared_mutex> lock(mu_);
            auto it = cache_.find(bench.name);
            if (it != cache_.end())
                return *it->second;
        }
        auto img =
            std::make_unique<ProgramImage>(buildProgram(bench.spec));
        std::unique_lock<std::shared_mutex> lock(mu_);
        auto [it, inserted] =
            cache_.try_emplace(bench.name, std::move(img));
        (void)inserted;
        return *it->second;
    }

  private:
    std::shared_mutex mu_;
    std::map<std::string, std::unique_ptr<ProgramImage>> cache_;
};

ProgramImageCache &
imageCache()
{
    static ProgramImageCache cache;
    return cache;
}

const ProgramImage &
imageFor(const BenchmarkInfo &bench)
{
    return imageCache().get(bench);
}

RunMeasurement
measurementFromCounts(Cycles cycles, InstCount instrs,
                      std::uint64_t accesses, std::uint64_t misses,
                      double activeFraction, unsigned resizingBits,
                      std::uint64_t l1iBytes)
{
    RunMeasurement m;
    m.cycles = cycles;
    m.instructions = instrs;
    m.l1iAccesses = accesses;
    m.l1iMisses = misses;
    m.avgActiveFraction = activeFraction;
    m.resizingTagBits = resizingBits;
    m.l1iBytes = l1iBytes;
    return m;
}

/**
 * Copy the L2 view of a finished run into @p out, whatever flavour
 * of L2 the hierarchy was built with.
 */
void
fillL2Outputs(Hierarchy &hier, RunOutput &out)
{
    out.l2MissRate = hier.l2MissRate();
    out.l2Accesses = hier.l2Accesses();
    out.l2Misses = hier.l2Misses();
    out.memAccesses = hier.memAccesses();
    out.memReads = hier.memReads();
    out.memWritebacks = hier.memWritebacks();
    if (Dram *d = hier.dram()) {
        out.dramRowHits = d->rowHits();
        out.dramRowMisses = d->rowMisses();
        out.dramQueueFullEvents = d->queueFullEvents();
        out.dramBusyCycles = d->busyCycles();
    }
    if (ResizableCache *l2 = hier.driL2()) {
        out.l2SizeBytes = l2->params().sizeBytes;
        out.l2AvgActiveFraction = l2->averageActiveFraction();
        out.l2ResizingTagBits = l2->params().resizingTagBits();
        out.l2Resizes = l2->upsizes() + l2->downsizes();
        out.mshrCoalesced += l2->mshrCoalesced();
        out.mshrFullStalls += l2->mshrFullStalls();
        out.mshrFullStallCycles += l2->mshrFullStallCycles();
        out.mshrPeakOccupancy = std::max(out.mshrPeakOccupancy,
                                         l2->mshrPeakOccupancy());
    } else {
        out.l2SizeBytes = hier.params().l2.sizeBytes;
        out.mshrCoalesced += hier.l2().mshrCoalesced();
        out.mshrFullStalls += hier.l2().mshrFullStalls();
        out.mshrFullStallCycles += hier.l2().mshrFullStallCycles();
        out.mshrPeakOccupancy = std::max(
            out.mshrPeakOccupancy, hier.l2().mshrPeakOccupancy());
    }
    out.mshrCoalesced += hier.l1d().mshrCoalesced();
    out.mshrFullStalls += hier.l1d().mshrFullStalls();
    out.mshrFullStallCycles += hier.l1d().mshrFullStallCycles();
    out.mshrPeakOccupancy = std::max(out.mshrPeakOccupancy,
                                     hier.l1d().mshrPeakOccupancy());
    if (Cache *l1i = hier.convL1i()) {
        out.mshrCoalesced += l1i->mshrCoalesced();
        out.mshrFullStalls += l1i->mshrFullStalls();
        out.mshrFullStallCycles += l1i->mshrFullStallCycles();
        out.mshrPeakOccupancy = std::max(out.mshrPeakOccupancy,
                                         l1i->mshrPeakOccupancy());
    }
}

// ------------------------------------------------------------------
// Canonical run keys (see runner.hh: every result-bearing knob, no
// execution-strategy knobs)
// ------------------------------------------------------------------

void
addCacheKey(sim::ConfigKey &k, const std::string &p,
            const CacheParams &c)
{
    k.add(p + ".size", c.sizeBytes);
    k.add(p + ".assoc", static_cast<std::uint64_t>(c.assoc));
    k.add(p + ".block", static_cast<std::uint64_t>(c.blockBytes));
    k.add(p + ".lat", static_cast<std::uint64_t>(c.hitLatency));
    k.add(p + ".repl", static_cast<std::uint64_t>(c.repl));
    // Conditional so every pre-MSHR key (and hash) is unchanged.
    if (c.mshrs != 0)
        k.add(p + ".mshrs", static_cast<std::uint64_t>(c.mshrs));
}

void
addDriKey(sim::ConfigKey &k, const std::string &p, const DriParams &d)
{
    k.add(p + ".size", d.sizeBytes);
    k.add(p + ".assoc", static_cast<std::uint64_t>(d.assoc));
    k.add(p + ".block", static_cast<std::uint64_t>(d.blockBytes));
    k.add(p + ".lat", static_cast<std::uint64_t>(d.hitLatency));
    k.add(p + ".repl", static_cast<std::uint64_t>(d.repl));
    k.add(p + ".size_bound", d.sizeBoundBytes);
    k.add(p + ".miss_bound", d.missBound);
    k.add(p + ".sense_interval", d.senseInterval);
    k.add(p + ".divisibility",
          static_cast<std::uint64_t>(d.divisibility));
    k.add(p + ".throttle_bits",
          static_cast<std::uint64_t>(d.throttleBits));
    k.add(p + ".throttle_hold",
          static_cast<std::uint64_t>(d.throttleHoldIntervals));
    k.add(p + ".adaptive", d.adaptive);
    // Conditional so every pre-MSHR key (and hash) is unchanged.
    if (d.mshrs != 0)
        k.add(p + ".mshrs", static_cast<std::uint64_t>(d.mshrs));
}

void
addPolicyKey(sim::ConfigKey &k, const PolicyConfig &p)
{
    k.add("pol.kind", static_cast<std::uint64_t>(p.kind));
    addDriKey(k, "pol.dri", p.dri);
    k.add("pol.decay_interval", p.decay.decayInterval);
    k.add("pol.counter_limit",
          static_cast<std::uint64_t>(p.decay.counterLimit));
    k.add("pol.drowsy_interval", p.drowsy.drowsyInterval);
    k.add("pol.wake_latency",
          static_cast<std::uint64_t>(p.drowsy.wakeLatency));
    k.add("pol.active_ways",
          static_cast<std::uint64_t>(p.ways.activeWays));
}

void
addCalKey(sim::ConfigKey &k, const FastCalibration &cal)
{
    k.addDouble("cal.base_cpi", cal.baseCpi);
    k.addDouble("cal.miss_overlap", cal.missOverlap);
}

sim::ConfigKey
baseRunKey(const BenchmarkInfo &bench, const RunConfig &config)
{
    sim::ConfigKey k;
    k.add("bench", bench.name);
    k.add("instrs", config.maxInstrs);
    addCacheKey(k, "l1i", config.hier.l1i);
    addCacheKey(k, "l1d", config.hier.l1d);
    addCacheKey(k, "l2", config.hier.l2);
    k.add("l2_dri", config.hier.l2Dri);
    if (config.hier.l2Dri)
        addDriKey(k, "l2dri", config.hier.l2DriParams);

    const OooParams &c = config.core;
    k.add("core.fetch", static_cast<std::uint64_t>(c.fetchWidth));
    k.add("core.issue", static_cast<std::uint64_t>(c.issueWidth));
    k.add("core.commit", static_cast<std::uint64_t>(c.commitWidth));
    k.add("core.rob", static_cast<std::uint64_t>(c.robSize));
    k.add("core.lsq", static_cast<std::uint64_t>(c.lsqSize));
    k.add("core.fq", static_cast<std::uint64_t>(c.fetchQueueSize));
    k.add("core.redirect",
          static_cast<std::uint64_t>(c.redirectPenalty));
    k.add("core.fetch_block",
          static_cast<std::uint64_t>(c.fetchBlockBytes));
    k.add("core.mem_ports", static_cast<std::uint64_t>(c.memPorts));
    k.add("core.fp_ports", static_cast<std::uint64_t>(c.fpPorts));
    k.add("core.mul_ports", static_cast<std::uint64_t>(c.mulPorts));
    k.add("bp.bimodal",
          static_cast<std::uint64_t>(c.bpred.bimodalEntries));
    k.add("bp.gshare",
          static_cast<std::uint64_t>(c.bpred.gshareEntries));
    k.add("bp.chooser",
          static_cast<std::uint64_t>(c.bpred.chooserEntries));
    k.add("bp.history",
          static_cast<std::uint64_t>(c.bpred.historyBits));
    k.add("bp.btb_sets", static_cast<std::uint64_t>(c.bpred.btbSets));
    k.add("bp.btb_assoc",
          static_cast<std::uint64_t>(c.bpred.btbAssoc));
    k.add("bp.ras", static_cast<std::uint64_t>(c.bpred.rasDepth));

    k.add("sample", config.sampling.enabled);
    if (config.sampling.enabled) {
        k.add("sample.window", config.sampling.detailedWindow);
        k.add("sample.period", config.sampling.period);
    }
    // Conditional, like sample: flat-memory hashes stay stable.
    if (config.hier.dram.banked) {
        const DramParams &d = config.hier.dram;
        k.add("dram.banked", true);
        k.add("dram.banks", static_cast<std::uint64_t>(d.banks));
        k.add("dram.row_hit", d.rowHitLatency);
        k.add("dram.row_miss", d.rowMissLatency);
        k.add("dram.queue",
              static_cast<std::uint64_t>(d.queueDepth));
        k.add("dram.row_bytes",
              static_cast<std::uint64_t>(d.rowBytes));
    }
    return k;
}

// ------------------------------------------------------------------
// RunOutput <-> result-cache fields (exact string round-trip)
// ------------------------------------------------------------------

std::string
doubleField(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

bool
fieldU64(const sim::ResultCache::Fields &f, const char *name,
         std::uint64_t &out)
{
    const auto it = f.find(name);
    if (it == f.end() || it->second.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    const unsigned long long v =
        std::strtoull(it->second.c_str(), &end, 10);
    if (errno != 0 || end == nullptr || *end != '\0')
        return false;
    out = v;
    return true;
}

bool
fieldF64(const sim::ResultCache::Fields &f, const char *name,
         double &out)
{
    const auto it = f.find(name);
    if (it == f.end() || it->second.empty())
        return false;
    errno = 0;
    char *end = nullptr;
    const double v = std::strtod(it->second.c_str(), &end);
    if (errno != 0 || end == nullptr || *end != '\0')
        return false;
    out = v;
    return true;
}

sim::ResultCache::Fields
runOutputToFields(const RunOutput &out)
{
    sim::ResultCache::Fields f;
    // Payload layout version: bumped when fields are added so
    // pre-existing sidecar entries (which lack the new columns)
    // miss cleanly instead of being served with silent zeros.
    f["payload_v"] = "2";
    f["cycles"] = std::to_string(out.meas.cycles);
    f["instructions"] = std::to_string(out.meas.instructions);
    f["l1i_accesses"] = std::to_string(out.meas.l1iAccesses);
    f["l1i_misses"] = std::to_string(out.meas.l1iMisses);
    f["l1i_active_fraction"] = doubleField(out.meas.avgActiveFraction);
    f["l1i_tag_bits"] = std::to_string(out.meas.resizingTagBits);
    f["l1i_bytes"] = std::to_string(out.meas.l1iBytes);
    f["ipc"] = doubleField(out.ipc);
    f["l1d_miss_rate"] = doubleField(out.l1dMissRate);
    f["l2_miss_rate"] = doubleField(out.l2MissRate);
    f["l2_accesses"] = std::to_string(out.l2Accesses);
    f["l2_misses"] = std::to_string(out.l2Misses);
    f["mem_accesses"] = std::to_string(out.memAccesses);
    f["mem_reads"] = std::to_string(out.memReads);
    f["mem_writebacks"] = std::to_string(out.memWritebacks);
    f["mshr_coalesced"] = std::to_string(out.mshrCoalesced);
    f["mshr_full_stalls"] = std::to_string(out.mshrFullStalls);
    f["mshr_full_stall_cycles"] =
        std::to_string(out.mshrFullStallCycles);
    f["mshr_peak_occupancy"] = std::to_string(out.mshrPeakOccupancy);
    f["dram_row_hits"] = std::to_string(out.dramRowHits);
    f["dram_row_misses"] = std::to_string(out.dramRowMisses);
    f["dram_queue_full"] = std::to_string(out.dramQueueFullEvents);
    f["dram_busy_cycles"] = std::to_string(out.dramBusyCycles);
    f["resizes"] = std::to_string(out.resizes);
    f["throttle_events"] = std::to_string(out.throttleEvents);
    f["l2_size_bytes"] = std::to_string(out.l2SizeBytes);
    f["l2_active_fraction"] = doubleField(out.l2AvgActiveFraction);
    f["l2_tag_bits"] = std::to_string(out.l2ResizingTagBits);
    f["l2_resizes"] = std::to_string(out.l2Resizes);
    f["l1_drowsy_fraction"] = doubleField(out.l1DrowsyFraction);
    f["wake_transitions"] = std::to_string(out.wakeTransitions);
    f["wake_stall_cycles"] = std::to_string(out.wakeStallCycles);
    f["policy_blocks_lost"] = std::to_string(out.policyBlocksLost);
    return f;
}

/** Strict: any absent or malformed field rejects the entry, and the
 *  payload layout version must match exactly — entries written by a
 *  binary with a different column set miss and are recomputed. */
bool
runOutputFromFields(const sim::ResultCache::Fields &f, RunOutput &out)
{
    const auto pv = f.find("payload_v");
    if (pv == f.end() || pv->second != "2")
        return false;
    std::uint64_t u = 0;
    if (!fieldU64(f, "cycles", u))
        return false;
    out.meas.cycles = u;
    if (!fieldU64(f, "instructions", u))
        return false;
    out.meas.instructions = u;
    if (!fieldU64(f, "l1i_accesses", out.meas.l1iAccesses) ||
        !fieldU64(f, "l1i_misses", out.meas.l1iMisses) ||
        !fieldF64(f, "l1i_active_fraction",
                  out.meas.avgActiveFraction))
        return false;
    if (!fieldU64(f, "l1i_tag_bits", u))
        return false;
    out.meas.resizingTagBits = static_cast<unsigned>(u);
    if (!fieldU64(f, "l1i_bytes", out.meas.l1iBytes) ||
        !fieldF64(f, "ipc", out.ipc) ||
        !fieldF64(f, "l1d_miss_rate", out.l1dMissRate) ||
        !fieldF64(f, "l2_miss_rate", out.l2MissRate) ||
        !fieldU64(f, "l2_accesses", out.l2Accesses) ||
        !fieldU64(f, "l2_misses", out.l2Misses) ||
        !fieldU64(f, "mem_accesses", out.memAccesses) ||
        !fieldU64(f, "mem_reads", out.memReads) ||
        !fieldU64(f, "mem_writebacks", out.memWritebacks) ||
        !fieldU64(f, "mshr_coalesced", out.mshrCoalesced) ||
        !fieldU64(f, "mshr_full_stalls", out.mshrFullStalls) ||
        !fieldU64(f, "mshr_full_stall_cycles",
                  out.mshrFullStallCycles) ||
        !fieldU64(f, "mshr_peak_occupancy", out.mshrPeakOccupancy) ||
        !fieldU64(f, "dram_row_hits", out.dramRowHits) ||
        !fieldU64(f, "dram_row_misses", out.dramRowMisses) ||
        !fieldU64(f, "dram_queue_full", out.dramQueueFullEvents) ||
        !fieldU64(f, "dram_busy_cycles", out.dramBusyCycles) ||
        !fieldU64(f, "resizes", out.resizes) ||
        !fieldU64(f, "throttle_events", out.throttleEvents) ||
        !fieldU64(f, "l2_size_bytes", out.l2SizeBytes) ||
        !fieldF64(f, "l2_active_fraction", out.l2AvgActiveFraction))
        return false;
    if (!fieldU64(f, "l2_tag_bits", u))
        return false;
    out.l2ResizingTagBits = static_cast<unsigned>(u);
    if (!fieldU64(f, "l2_resizes", out.l2Resizes) ||
        !fieldF64(f, "l1_drowsy_fraction", out.l1DrowsyFraction) ||
        !fieldU64(f, "wake_transitions", out.wakeTransitions) ||
        !fieldU64(f, "wake_stall_cycles", out.wakeStallCycles) ||
        !fieldU64(f, "policy_blocks_lost", out.policyBlocksLost))
        return false;
    return true;
}

/**
 * Serve @p key from the result cache when possible, else compute via
 * @p impl and store. A hit whose payload fails strict field parsing
 * is recomputed and overwritten, never served.
 */
/** Instant ("dur":0) cache-lookup event on the trace timeline. */
void
cacheEvent(const char *name, const sim::ConfigKey &key)
{
    obs::TraceWriter *tw = obs::trace();
    if (!tw)
        return;
    obs::TraceSpan s;
    s.cat = "cache";
    s.name = name;
    s.ts = tw->nowMicros();
    s.args.emplace_back("key", key.hashHex());
    tw->complete(std::move(s));
}

template <typename Impl>
RunOutput
memoizedRun(const RunConfig &config, const sim::ConfigKey &key,
            Impl &&impl)
{
    if (!config.resultCache)
        return impl();
    sim::ResultCache::Fields f;
    if (config.resultCache->lookup(key, f)) {
        RunOutput out;
        if (runOutputFromFields(f, out)) {
            cacheEvent("hit", key);
            return out;
        }
    }
    cacheEvent("miss", key);
    const RunOutput out = impl();
    config.resultCache->store(key, runOutputToFields(out));
    return out;
}

/**
 * Run @p core to config.maxInstrs through the midpoint checkpoint
 * seam: restore and simulate only the second half when a snapshot of
 * this exact key exists, else simulate the first half, snapshot, and
 * continue. The split is aligned to the fast model's retire batch
 * (64) so both core models continue bit-identically. Disabled (plain
 * full run) when no checkpoint directory is configured or the run is
 * too short to split.
 */
template <typename Snap, typename Restore>
CoreStats
runCheckpointed(const RunConfig &config, const sim::ConfigKey &key,
                Core &core, TraceGenerator &gen, Snap &&snapExtra,
                Restore &&restoreExtra)
{
    const InstCount total = config.maxInstrs;
    const InstCount split = (total / 2) & ~InstCount{63};
    if (config.checkpointDir.empty() || split == 0 || split >= total)
        return core.run(gen, total);

    const sim::CheckpointStore store(config.checkpointDir);
    // v3: the coherence layer added per-block MSI state to every
    // tag store (plus a layout magic the reader verifies); stale
    // v1/v2 snapshots must miss, not crash.
    const std::string storeKey = "v3|" + key.canonical() + "|ckpt@" +
                                 std::to_string(split);
    std::string blob;
    if (store.load(storeKey, blob)) {
        {
            obs::ScopedSpan span(obs::trace(), "checkpoint",
                                 "restore");
            sim::CheckpointReader r(std::move(blob));
            r.beginSection("run");
            gen.restoreFrom(r);
            core.restoreFrom(r);
            restoreExtra(r);
            r.endSection();
        }
        return core.run(gen, total - split);
    }

    core.run(gen, split);
    {
        obs::ScopedSpan span(obs::trace(), "checkpoint", "save");
        sim::CheckpointWriter w;
        w.beginSection("run");
        gen.snapshotTo(w);
        core.snapshotTo(w);
        snapExtra(w);
        w.endSection();
        store.save(storeKey, w.bytes());
    }
    return core.run(gen, total - split);
}

/** The series a run's trace span and interval samples share. */
std::string
obsSeries(const BenchmarkInfo &bench, const char *mode,
          const sim::ConfigKey &key)
{
    return bench.name + "/" + mode + "#" + key.hashHex();
}

/**
 * Per-interval differencing over a probe registry of *cumulative*
 * readouts (obs/probe.hh). Entry points register probes under the
 * canonical names below; sample() derives the already-differenced
 * interval metrics the CSV carries — interval CPI and miss rates,
 * active/drowsy fractions from the cycle-area integrals, resize and
 * wake deltas, the instantaneous active-byte count.
 */
class IntervalSampler
{
  public:
    explicit IntervalSampler(std::string series)
        : series_(std::move(series))
    {
    }

    obs::MetricRegistry &registry() { return reg_; }

    void sample(const CoreStats &cs)
    {
        obs::TimeSeriesRecorder *m = obs::metrics();
        if (!m)
            return;
        std::map<std::string, double> cur;
        for (auto &[name, value] : reg_.sample())
            cur[name] = value;
        const auto has = [&cur](const char *name) {
            return cur.count(name) > 0;
        };

        const double dc = delta(cur, "cycles");
        const double di =
            static_cast<double>(cs.instructions) - prevInstrs_;

        std::vector<std::pair<std::string, double>> out;
        out.emplace_back("cycles", dc);
        out.emplace_back("cpi", di > 0.0 ? dc / di : 0.0);
        missRate(cur, "l1i", out);
        missRate(cur, "l1d", out);
        missRate(cur, "l2", out);

        const bool hasActive = has("active_cycle_area");
        double activeFraction = 1.0;
        if (hasActive) {
            activeFraction =
                fraction(delta(cur, "active_cycle_area"), dc);
            out.emplace_back("active_fraction", activeFraction);
        }
        if (has("drowsy_cycle_area"))
            out.emplace_back(
                "drowsy_fraction",
                fraction(delta(cur, "drowsy_cycle_area"), dc));
        if (has("active_bytes")) {
            out.emplace_back("active_bytes",
                             cur.at("active_bytes"));
        } else if (has("l1i_size_bytes")) {
            // No instantaneous size probe (time-integrated
            // policies): reconstruct the interval's average active
            // bytes from the fraction.
            out.emplace_back("active_bytes",
                             activeFraction *
                                 cur.at("l1i_size_bytes"));
        }
        for (const char *counter :
             {"resizes", "wakes", "wake_stall_cycles",
              "dram_busy_cycles", "coherence_invalidations",
              "coherence_wakes", "coherence_refetches"})
            if (has(counter))
                out.emplace_back(counter, delta(cur, counter));
        if (has("mshr_peak_occupancy"))
            out.emplace_back("mshr_peak_occupancy",
                             cur.at("mshr_peak_occupancy"));

        m->record(series_, cs.instructions, std::move(out));
        prev_ = std::move(cur);
        prevInstrs_ = static_cast<double>(cs.instructions);
    }

  private:
    double delta(const std::map<std::string, double> &cur,
                 const std::string &name)
    {
        const auto it = cur.find(name);
        if (it == cur.end())
            return 0.0;
        const auto pit = prev_.find(name);
        return it->second -
               (pit == prev_.end() ? 0.0 : pit->second);
    }

    static double fraction(double area, double cycles)
    {
        if (cycles <= 0.0)
            return 0.0;
        return std::min(1.0, std::max(0.0, area / cycles));
    }

    void missRate(const std::map<std::string, double> &cur,
                  const std::string &level,
                  std::vector<std::pair<std::string, double>> &out)
    {
        if (cur.count(level + "_accesses") == 0)
            return;
        const double da = delta(cur, level + "_accesses");
        const double dm = delta(cur, level + "_misses");
        out.emplace_back(level + "_miss_rate",
                         da > 0.0 ? dm / da : 0.0);
    }

    std::string series_;
    obs::MetricRegistry reg_;
    std::map<std::string, double> prev_;
    double prevInstrs_ = 0.0;
};

/** Common probes: core clock, D-side/L2 hierarchy counters. */
void
addHierProbes(obs::MetricRegistry &reg, Core &core, Hierarchy &hier)
{
    reg.add("cycles", [&core] {
        return static_cast<double>(core.stats().cycles);
    });
    reg.add("l1d_accesses", [&hier] {
        return static_cast<double>(hier.l1d().accesses());
    });
    reg.add("l1d_misses", [&hier] {
        return static_cast<double>(hier.l1d().misses());
    });
    reg.add("l2_accesses", [&hier] {
        return static_cast<double>(hier.l2Accesses());
    });
    reg.add("l2_misses", [&hier] {
        return static_cast<double>(hier.l2Misses());
    });
    reg.add("mshr_peak_occupancy", [&hier] {
        return static_cast<double>(
            hier.l1d().mshrPeakOccupancy());
    });
    if (Dram *d = hier.dram())
        reg.add("dram_busy_cycles", [d] {
            return static_cast<double>(d->busyCycles());
        });
}

/** Conventional L1I: full-size, always active. */
void
addConvL1iProbes(obs::MetricRegistry &reg, Cache &l1i,
                 std::uint64_t sizeBytes)
{
    reg.add("l1i_accesses", [&l1i] {
        return static_cast<double>(l1i.accesses());
    });
    reg.add("l1i_misses", [&l1i] {
        return static_cast<double>(l1i.misses());
    });
    reg.add("active_bytes", [sizeBytes] {
        return static_cast<double>(sizeBytes);
    });
}

/** DRI L1I: instantaneous size plus the active-area integral. */
void
addDriL1iProbes(obs::MetricRegistry &reg, DriICache &icache,
                Core &core)
{
    reg.add("l1i_accesses", [&icache] {
        return static_cast<double>(icache.accesses());
    });
    reg.add("l1i_misses", [&icache] {
        return static_cast<double>(icache.misses());
    });
    reg.add("active_cycle_area", [&icache, &core] {
        return icache.averageActiveFraction() *
               static_cast<double>(core.stats().cycles);
    });
    reg.add("active_bytes", [&icache] {
        return static_cast<double>(icache.currentSizeBytes());
    });
    reg.add("resizes", [&icache] {
        return static_cast<double>(icache.upsizes() +
                                   icache.downsizes());
    });
}

/** Leakage-policy L1I: time-integrated activity + wake events. */
void
addPolicyL1iProbes(obs::MetricRegistry &reg, LeakagePolicy &policy,
                   Core &core, std::uint64_t sizeBytes)
{
    reg.add("l1i_accesses", [&policy] {
        return static_cast<double>(policy.l1Accesses());
    });
    reg.add("l1i_misses", [&policy] {
        return static_cast<double>(policy.l1Misses());
    });
    reg.add("l1i_size_bytes", [sizeBytes] {
        return static_cast<double>(sizeBytes);
    });
    reg.add("active_cycle_area", [&policy, &core] {
        return policy.activity().avgActiveFraction *
               static_cast<double>(core.stats().cycles);
    });
    reg.add("drowsy_cycle_area", [&policy, &core] {
        return policy.activity().avgDrowsyFraction *
               static_cast<double>(core.stats().cycles);
    });
    reg.add("resizes", [&policy] {
        return static_cast<double>(policy.activity().resizes);
    });
    reg.add("wakes", [&policy] {
        return static_cast<double>(
            policy.activity().wakeTransitions);
    });
    reg.add("wake_stall_cycles", [&policy] {
        return static_cast<double>(
            policy.activity().wakeStallCycles);
    });
}

/**
 * Interval-metered alternative to runCheckpointed: chunk the run at
 * the recorder's interval (a multiple of the fast model's
 * 64-instruction retire batch, so chunked execution is bit-identical
 * to one call) and sample after every chunk. Only reached when a
 * metrics sink is installed; checkpoints are skipped for the run —
 * observability is execution-only, so results are unchanged either
 * way.
 */
template <typename Sampler>
CoreStats
runMetered(Core &core, TraceGenerator &gen, InstCount total,
           Sampler &&sample)
{
    const InstCount interval = obs::metrics()->interval();
    CoreStats cs = core.stats();
    InstCount done = 0;
    while (done < total) {
        const InstCount chunk = std::min(interval, total - done);
        const InstCount before = core.stats().instructions;
        cs = core.run(gen, chunk);
        const InstCount ran = cs.instructions - before;
        done += ran;
        sample(cs);
        if (ran < chunk)
            break; // stream drained
    }
    return cs;
}

} // namespace

sim::ConfigKey
runKeyConventional(const BenchmarkInfo &bench, const RunConfig &config)
{
    sim::ConfigKey k = baseRunKey(bench, config);
    k.add("mode", "conv");
    return k;
}

sim::ConfigKey
runKeyDri(const BenchmarkInfo &bench, const RunConfig &config,
          const DriParams &dri)
{
    sim::ConfigKey k = baseRunKey(bench, config);
    k.add("mode", "dri");
    addDriKey(k, "dri", dri);
    return k;
}

sim::ConfigKey
runKeyPolicy(const BenchmarkInfo &bench, const RunConfig &config,
             const PolicyConfig &policy)
{
    sim::ConfigKey k = baseRunKey(bench, config);
    k.add("mode", "policy");
    addPolicyKey(k, policy);
    return k;
}

sim::ConfigKey
runKeyCalibrate(const BenchmarkInfo &bench, const RunConfig &config)
{
    sim::ConfigKey k = baseRunKey(bench, config);
    k.add("mode", "calibrate");
    return k;
}

sim::ConfigKey
runKeyConventionalFast(const BenchmarkInfo &bench,
                       const RunConfig &config,
                       const FastCalibration &cal)
{
    sim::ConfigKey k = baseRunKey(bench, config);
    k.add("mode", "conv_fast");
    addCalKey(k, cal);
    return k;
}

sim::ConfigKey
runKeyDriFast(const BenchmarkInfo &bench, const RunConfig &config,
              const DriParams &dri, const FastCalibration &cal)
{
    sim::ConfigKey k = baseRunKey(bench, config);
    k.add("mode", "dri_fast");
    addDriKey(k, "dri", dri);
    addCalKey(k, cal);
    return k;
}

sim::ConfigKey
runKeyPolicyFast(const BenchmarkInfo &bench, const RunConfig &config,
                 const PolicyConfig &policy, const FastCalibration &cal)
{
    sim::ConfigKey k = baseRunKey(bench, config);
    k.add("mode", "policy_fast");
    addPolicyKey(k, policy);
    addCalKey(k, cal);
    return k;
}

const ProgramImage &
programImageFor(const BenchmarkInfo &bench)
{
    return imageFor(bench);
}

InstCount
defaultRunInstrs()
{
    const char *scale = std::getenv("DRISIM_SCALE");
    double mult = 1.0;
    if (scale && *scale) {
        mult = std::atof(scale);
        if (mult <= 0.0)
            mult = 1.0;
    }
    return static_cast<InstCount>(10.0e6 * mult);
}

RunOutput
runConventional(const BenchmarkInfo &bench, const RunConfig &config)
{
    const sim::ConfigKey key = runKeyConventional(bench, config);
    return memoizedRun(config, key, [&] {
        const std::string series = obsSeries(bench, "conv", key);
        obs::ScopedSpan runSpan(obs::trace(), "run", series);
        stats::StatGroup root("sim");
        Hierarchy hier(config.hier, &root, true);
        OooCore core(config.core, hier.l1i(), &hier.l1d(), &root);
        core.addResizable(hier.driL2());

        TraceGenerator gen(imageFor(bench));
        CoreStats cs;
        if (config.sampling.enabled) {
            cs = sim::runSampled(core, hier.l1i(), &hier.l1d(), gen,
                                 config.maxInstrs, config.sampling,
                                 config.core.fetchBlockBytes);
        } else if (obs::metrics()) {
            IntervalSampler sampler(series);
            addHierProbes(sampler.registry(), core, hier);
            addConvL1iProbes(sampler.registry(), *hier.convL1i(),
                             config.hier.l1i.sizeBytes);
            cs = runMetered(core, gen, config.maxInstrs,
                            [&](const CoreStats &s) {
                                sampler.sample(s);
                            });
        } else {
            cs = runCheckpointed(
                config, key, core, gen,
                [&](sim::CheckpointWriter &w) {
                    hier.snapshotTo(w);
                },
                [&](sim::CheckpointReader &r) {
                    hier.restoreFrom(r);
                });
        }

        RunOutput out;
        Cache *l1i = hier.convL1i();
        out.meas = measurementFromCounts(
            cs.cycles, cs.instructions, l1i->accesses(),
            l1i->misses(), 1.0, 0, config.hier.l1i.sizeBytes);
        out.ipc = cs.ipc();
        out.l1dMissRate = hier.l1d().missRate();
        fillL2Outputs(hier, out);
        return out;
    });
}

RunOutput
runDri(const BenchmarkInfo &bench, const RunConfig &config,
       const DriParams &dri)
{
    const sim::ConfigKey key = runKeyDri(bench, config, dri);
    return memoizedRun(config, key, [&] {
        const std::string series = obsSeries(bench, "dri", key);
        obs::ScopedSpan runSpan(obs::trace(), "run", series);
        stats::StatGroup root("sim");
        Hierarchy hier(config.hier, &root, false);
        DriICache icache(dri, hier.l2Level(), &root);
        hier.setL1I(&icache);
        OooCore core(config.core, &icache, &hier.l1d(), &root);
        core.setDri(&icache);
        core.addResizable(hier.driL2());

        TraceGenerator gen(imageFor(bench));
        CoreStats cs;
        if (config.sampling.enabled) {
            cs = sim::runSampled(core, &icache, &hier.l1d(), gen,
                                 config.maxInstrs, config.sampling,
                                 config.core.fetchBlockBytes);
        } else if (obs::metrics()) {
            IntervalSampler sampler(series);
            addHierProbes(sampler.registry(), core, hier);
            addDriL1iProbes(sampler.registry(), icache, core);
            cs = runMetered(core, gen, config.maxInstrs,
                            [&](const CoreStats &s) {
                                sampler.sample(s);
                            });
        } else {
            cs = runCheckpointed(
                config, key, core, gen,
                [&](sim::CheckpointWriter &w) {
                    hier.snapshotTo(w);
                    icache.snapshotTo(w);
                },
                [&](sim::CheckpointReader &r) {
                    hier.restoreFrom(r);
                    icache.restoreFrom(r);
                });
        }

        RunOutput out;
        out.meas = measurementFromCounts(
            cs.cycles, cs.instructions, icache.accesses(),
            icache.misses(), icache.averageActiveFraction(),
            dri.resizingTagBits(), dri.sizeBytes);
        out.ipc = cs.ipc();
        out.l1dMissRate = hier.l1d().missRate();
        fillL2Outputs(hier, out);
        out.resizes = icache.upsizes() + icache.downsizes();
        out.throttleEvents = icache.controller().throttleEvents();
        return out;
    });
}

namespace
{

FastCalibration
calibrateFastImpl(const BenchmarkInfo &bench, const RunConfig &config,
                  const RunOutput &convDetailed)
{
    FastCalibration cal;
    obs::ScopedSpan runSpan(obs::trace(), "run",
                            bench.name + "/calibrate");
    // Measure the conventional fetch-miss stall with the fast model
    // (independent of CPI), then solve baseCpi so the fast model
    // reproduces the detailed conventional cycle count.
    stats::StatGroup root("cal");
    Hierarchy hier(config.hier, &root, true);
    SimpleCoreParams scp;
    scp.baseCpi = 1.0; // irrelevant to stall measurement
    scp.fetchBlockBytes = config.hier.l1i.blockBytes;
    SimpleCore fast(scp, hier.l1i());
    TraceGenerator gen(imageFor(bench));
    fast.run(gen, config.maxInstrs);
    const double stall =
        static_cast<double>(fast.missStallCycles());

    const double instrs =
        static_cast<double>(convDetailed.meas.instructions);
    const double cycles =
        static_cast<double>(convDetailed.meas.cycles);
    drisim_assert(instrs > 0, "calibration needs a non-empty run");
    double base = (cycles - cal.missOverlap * stall) / instrs;
    if (base < 0.125)
        base = 0.125; // cannot beat the 8-wide ideal
    cal.baseCpi = base;
    return cal;
}

} // namespace

FastCalibration
calibrateFast(const BenchmarkInfo &bench, const RunConfig &config,
              const RunOutput &convDetailed)
{
    if (!config.resultCache)
        return calibrateFastImpl(bench, config, convDetailed);

    const sim::ConfigKey key = runKeyCalibrate(bench, config);
    sim::ResultCache::Fields f;
    FastCalibration cal;
    if (config.resultCache->lookup(key, f) &&
        fieldF64(f, "base_cpi", cal.baseCpi) &&
        fieldF64(f, "miss_overlap", cal.missOverlap))
        return cal;

    cal = calibrateFastImpl(bench, config, convDetailed);
    sim::ResultCache::Fields out;
    out["base_cpi"] = doubleField(cal.baseCpi);
    out["miss_overlap"] = doubleField(cal.missOverlap);
    config.resultCache->store(key, out);
    return cal;
}

RunOutput
runConventionalFast(const BenchmarkInfo &bench, const RunConfig &config,
                    const FastCalibration &cal)
{
    const sim::ConfigKey key =
        runKeyConventionalFast(bench, config, cal);
    return memoizedRun(config, key, [&] {
        const std::string series = obsSeries(bench, "conv-fast", key);
        obs::ScopedSpan runSpan(obs::trace(), "run", series);
        stats::StatGroup root("fast");
        Hierarchy hier(config.hier, &root, true);
        SimpleCoreParams scp;
        scp.baseCpi = cal.baseCpi;
        scp.missOverlap = cal.missOverlap;
        scp.fetchBlockBytes = config.hier.l1i.blockBytes;
        SimpleCore fast(scp, hier.l1i());
        fast.addResizable(hier.driL2());
        TraceGenerator gen(imageFor(bench));
        CoreStats cs;
        if (obs::metrics()) {
            IntervalSampler sampler(series);
            addHierProbes(sampler.registry(), fast, hier);
            addConvL1iProbes(sampler.registry(), *hier.convL1i(),
                             config.hier.l1i.sizeBytes);
            cs = runMetered(fast, gen, config.maxInstrs,
                            [&](const CoreStats &s) {
                                sampler.sample(s);
                            });
        } else {
            cs = runCheckpointed(
                config, key, fast, gen,
                [&](sim::CheckpointWriter &w) {
                    hier.snapshotTo(w);
                },
                [&](sim::CheckpointReader &r) {
                    hier.restoreFrom(r);
                });
        }

        RunOutput out;
        Cache *l1i = hier.convL1i();
        out.meas = measurementFromCounts(
            cs.cycles, cs.instructions, l1i->accesses(),
            l1i->misses(), 1.0, 0, config.hier.l1i.sizeBytes);
        out.ipc = cs.ipc();
        fillL2Outputs(hier, out);
        return out;
    });
}

std::vector<std::string>
cmpBenchNames(const CmpConfig &cmp, const std::string &defaultBench)
{
    std::vector<std::string> names;
    names.reserve(cmp.cores);
    for (unsigned k = 0; k < cmp.cores; ++k) {
        const CmpCoreConfig cfg = cmp.coreConfig(k);
        names.push_back(cfg.bench.empty() ? defaultBench
                                          : cfg.bench);
    }
    return names;
}

sim::ConfigKey
runKeyCmp(const RunConfig &config, const CmpConfig &cmp,
          const std::string &defaultBench)
{
    sim::ConfigKey k;
    k.add("mode", "cmp");
    k.add("instrs", config.maxInstrs);
    k.add("cores", static_cast<std::uint64_t>(cmp.cores));
    k.add("quantum", cmp.quantum);
    k.add("bus.banks", static_cast<std::uint64_t>(cmp.l2Banks));
    k.add("bus.penalty",
          static_cast<std::uint64_t>(cmp.l2ContentionPenalty));
    addCacheKey(k, "l1i", config.hier.l1i);
    addCacheKey(k, "l1d", config.hier.l1d);
    addCacheKey(k, "l2", config.hier.l2);
    k.add("l2_dri", config.hier.l2Dri);
    if (config.hier.l2Dri)
        addDriKey(k, "l2dri", config.hier.l2DriParams);
    if (config.hier.dram.banked) {
        const DramParams &d = config.hier.dram;
        k.add("dram.banked", true);
        k.add("dram.banks", static_cast<std::uint64_t>(d.banks));
        k.add("dram.row_hit", d.rowHitLatency);
        k.add("dram.row_miss", d.rowMissLatency);
        k.add("dram.queue", static_cast<std::uint64_t>(d.queueDepth));
        k.add("dram.row_bytes",
              static_cast<std::uint64_t>(d.rowBytes));
    }
    const std::vector<std::string> names =
        cmpBenchNames(cmp, defaultBench);
    for (unsigned c = 0; c < cmp.cores; ++c) {
        const CmpCoreConfig cc = cmp.coreConfig(c);
        const std::string p = "core" + std::to_string(c);
        k.add(p + ".bench", names[c]);
        k.add(p + ".dri", cc.dri);
        if (cc.dri) {
            k.add(p + ".policy",
                  static_cast<std::uint64_t>(cc.policyKind));
            addDriKey(k, p + ".dri", cc.driParams);
            k.add(p + ".decay_interval", cc.decay.decayInterval);
            k.add(p + ".counter_limit",
                  static_cast<std::uint64_t>(cc.decay.counterLimit));
            k.add(p + ".drowsy_interval", cc.drowsy.drowsyInterval);
            k.add(p + ".wake_latency",
                  static_cast<std::uint64_t>(cc.drowsy.wakeLatency));
            k.add(p + ".active_ways",
                  static_cast<std::uint64_t>(cc.ways.activeWays));
        }
    }
    // Conditional like dram.banked: non-coherent keys carry no
    // coherence columns, but a coherent run can never collide with
    // a non-coherent one (or with a differently-sized directory).
    if (cmp.coherence.enabled) {
        k.add("coh.enabled", true);
        k.add("coh.entries", cmp.coherence.directoryEntries);
        k.add("coh.msg_latency",
              static_cast<std::uint64_t>(cmp.coherence.msgLatency));
    }
    return k;
}

CmpRunOutput
runCmp(const RunConfig &config, const CmpConfig &cmp,
       const std::string &defaultBench)
{
    const std::vector<std::string> names =
        cmpBenchNames(cmp, defaultBench);
    std::vector<const ProgramImage *> images;
    images.reserve(names.size());
    for (const std::string &name : names)
        images.push_back(&imageFor(findBenchmark(name)));

    stats::StatGroup root("cmp");
    CmpSystem sys(cmp, config.hier, config.core, images, &root);
    obs::ScopedSpan runSpan(obs::trace(), "run",
                            defaultBench + "/cmp");
    if (obs::metrics())
        sys.setObsSeries(
            defaultBench + "/cmp#" +
            runKeyCmp(config, cmp, defaultBench).hashHex());
    CmpRunOutput out = sys.run(config.maxInstrs);
    for (std::size_t k = 0; k < out.cores.size(); ++k)
        out.cores[k].bench = names[k];
    return out;
}

namespace
{

/** Copy a finished policy's activity into @p out. */
void
fillPolicyOutputs(const LeakagePolicy &policy,
                  const PolicyConfig &config, CoreStats cs,
                  RunOutput &out)
{
    const PolicyActivity act = policy.activity();
    out.meas = measurementFromCounts(
        cs.cycles, cs.instructions, policy.l1Accesses(),
        policy.l1Misses(), act.avgActiveFraction,
        act.resizingTagBits, config.dri.sizeBytes);
    out.ipc = cs.ipc();
    out.l1DrowsyFraction = act.avgDrowsyFraction;
    out.wakeTransitions = act.wakeTransitions;
    out.wakeStallCycles = act.wakeStallCycles;
    out.policyBlocksLost = act.blocksLost;
    out.resizes = act.resizes;
    out.throttleEvents = act.throttleEvents;
}

} // namespace

RunOutput
runPolicy(const BenchmarkInfo &bench, const RunConfig &config,
          const PolicyConfig &policy)
{
    const sim::ConfigKey key = runKeyPolicy(bench, config, policy);
    return memoizedRun(config, key, [&] {
        const std::string series = obsSeries(bench, "policy", key);
        obs::ScopedSpan runSpan(obs::trace(), "run", series);
        stats::StatGroup root("sim");
        Hierarchy hier(config.hier, &root, false);
        std::unique_ptr<LeakagePolicy> l1i =
            makeLeakagePolicy(policy, hier.l2Level(), &root);
        hier.setL1I(l1i->level());
        OooCore core(config.core, l1i->level(), &hier.l1d(), &root);
        core.addRetireSink(l1i.get());
        core.addResizable(hier.driL2());

        TraceGenerator gen(imageFor(bench));
        CoreStats cs;
        if (config.sampling.enabled) {
            cs = sim::runSampled(core, l1i->level(), &hier.l1d(),
                                 gen, config.maxInstrs,
                                 config.sampling,
                                 config.core.fetchBlockBytes);
        } else if (obs::metrics()) {
            IntervalSampler sampler(series);
            addHierProbes(sampler.registry(), core, hier);
            addPolicyL1iProbes(sampler.registry(), *l1i, core,
                               policy.dri.sizeBytes);
            cs = runMetered(core, gen, config.maxInstrs,
                            [&](const CoreStats &s) {
                                sampler.sample(s);
                            });
        } else {
            cs = runCheckpointed(
                config, key, core, gen,
                [&](sim::CheckpointWriter &w) {
                    hier.snapshotTo(w);
                    l1i->snapshotTo(w);
                },
                [&](sim::CheckpointReader &r) {
                    hier.restoreFrom(r);
                    l1i->restoreFrom(r);
                });
        }

        RunOutput out;
        fillPolicyOutputs(*l1i, policy, cs, out);
        out.l1dMissRate = hier.l1d().missRate();
        fillL2Outputs(hier, out);
        return out;
    });
}

RunOutput
runPolicyFast(const BenchmarkInfo &bench, const RunConfig &config,
              const PolicyConfig &policy, const FastCalibration &cal)
{
    const sim::ConfigKey key =
        runKeyPolicyFast(bench, config, policy, cal);
    return memoizedRun(config, key, [&] {
        const std::string series =
            obsSeries(bench, "policy-fast", key);
        obs::ScopedSpan runSpan(obs::trace(), "run", series);
        stats::StatGroup root("fast");
        Hierarchy hier(config.hier, &root, false);
        std::unique_ptr<LeakagePolicy> l1i =
            makeLeakagePolicy(policy, hier.l2Level(), &root);
        hier.setL1I(l1i->level());
        SimpleCoreParams scp;
        scp.baseCpi = cal.baseCpi;
        scp.missOverlap = cal.missOverlap;
        scp.fetchBlockBytes = policy.dri.blockBytes;
        SimpleCore fast(scp, l1i->level());
        fast.addRetireSink(l1i.get());
        fast.addResizable(hier.driL2());
        TraceGenerator gen(imageFor(bench));
        CoreStats cs;
        if (obs::metrics()) {
            IntervalSampler sampler(series);
            addHierProbes(sampler.registry(), fast, hier);
            addPolicyL1iProbes(sampler.registry(), *l1i, fast,
                               policy.dri.sizeBytes);
            cs = runMetered(fast, gen, config.maxInstrs,
                            [&](const CoreStats &s) {
                                sampler.sample(s);
                            });
        } else {
            cs = runCheckpointed(
                config, key, fast, gen,
                [&](sim::CheckpointWriter &w) {
                    hier.snapshotTo(w);
                    l1i->snapshotTo(w);
                },
                [&](sim::CheckpointReader &r) {
                    hier.restoreFrom(r);
                    l1i->restoreFrom(r);
                });
        }

        RunOutput out;
        fillPolicyOutputs(*l1i, policy, cs, out);
        fillL2Outputs(hier, out);
        return out;
    });
}

RunOutput
runDriFast(const BenchmarkInfo &bench, const RunConfig &config,
           const DriParams &dri, const FastCalibration &cal)
{
    const sim::ConfigKey key = runKeyDriFast(bench, config, dri, cal);
    return memoizedRun(config, key, [&] {
        const std::string series = obsSeries(bench, "dri-fast", key);
        obs::ScopedSpan runSpan(obs::trace(), "run", series);
        stats::StatGroup root("fast");
        Hierarchy hier(config.hier, &root, false);
        DriICache icache(dri, hier.l2Level(), &root);
        hier.setL1I(&icache);
        SimpleCoreParams scp;
        scp.baseCpi = cal.baseCpi;
        scp.missOverlap = cal.missOverlap;
        scp.fetchBlockBytes = dri.blockBytes;
        SimpleCore fast(scp, &icache);
        fast.setDri(&icache);
        fast.addResizable(hier.driL2());
        TraceGenerator gen(imageFor(bench));
        CoreStats cs;
        if (obs::metrics()) {
            IntervalSampler sampler(series);
            addHierProbes(sampler.registry(), fast, hier);
            addDriL1iProbes(sampler.registry(), icache, fast);
            cs = runMetered(fast, gen, config.maxInstrs,
                            [&](const CoreStats &s) {
                                sampler.sample(s);
                            });
        } else {
            cs = runCheckpointed(
                config, key, fast, gen,
                [&](sim::CheckpointWriter &w) {
                    hier.snapshotTo(w);
                    icache.snapshotTo(w);
                },
                [&](sim::CheckpointReader &r) {
                    hier.restoreFrom(r);
                    icache.restoreFrom(r);
                });
        }

        RunOutput out;
        out.meas = measurementFromCounts(
            cs.cycles, cs.instructions, icache.accesses(),
            icache.misses(), icache.averageActiveFraction(),
            dri.resizingTagBits(), dri.sizeBytes);
        out.ipc = cs.ipc();
        fillL2Outputs(hier, out);
        out.resizes = icache.upsizes() + icache.downsizes();
        out.throttleEvents = icache.controller().throttleEvents();
        return out;
    });
}

} // namespace drisim
