/**
 * @file
 * Run orchestration: builds the workload, wires hierarchy and core,
 * runs, and extracts measurements.
 */

#include "harness/runner.hh"

#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>

#include "core/dri_icache.hh"
#include "cpu/simple_core.hh"
#include "util/logging.hh"
#include "workload/generator.hh"

namespace drisim
{

namespace
{

/**
 * Program images are deterministic; build each benchmark once and
 * share it. Executor workers construct a TraceGenerator per run, so
 * the lookup is the harness's hottest synchronization point: reads
 * take a shared lock and proceed in parallel (the serial-era
 * exclusive mutex made every worker queue up here). A cache miss
 * builds outside any lock — two workers racing on a cold benchmark
 * do redundant deterministic work and the first insert wins.
 */
class ProgramImageCache
{
  public:
    const ProgramImage &get(const BenchmarkInfo &bench)
    {
        {
            std::shared_lock<std::shared_mutex> lock(mu_);
            auto it = cache_.find(bench.name);
            if (it != cache_.end())
                return *it->second;
        }
        auto img =
            std::make_unique<ProgramImage>(buildProgram(bench.spec));
        std::unique_lock<std::shared_mutex> lock(mu_);
        auto [it, inserted] =
            cache_.try_emplace(bench.name, std::move(img));
        (void)inserted;
        return *it->second;
    }

  private:
    std::shared_mutex mu_;
    std::map<std::string, std::unique_ptr<ProgramImage>> cache_;
};

ProgramImageCache &
imageCache()
{
    static ProgramImageCache cache;
    return cache;
}

const ProgramImage &
imageFor(const BenchmarkInfo &bench)
{
    return imageCache().get(bench);
}

RunMeasurement
measurementFromCounts(Cycles cycles, InstCount instrs,
                      std::uint64_t accesses, std::uint64_t misses,
                      double activeFraction, unsigned resizingBits,
                      std::uint64_t l1iBytes)
{
    RunMeasurement m;
    m.cycles = cycles;
    m.instructions = instrs;
    m.l1iAccesses = accesses;
    m.l1iMisses = misses;
    m.avgActiveFraction = activeFraction;
    m.resizingTagBits = resizingBits;
    m.l1iBytes = l1iBytes;
    return m;
}

/**
 * Copy the L2 view of a finished run into @p out, whatever flavour
 * of L2 the hierarchy was built with.
 */
void
fillL2Outputs(Hierarchy &hier, RunOutput &out)
{
    out.l2MissRate = hier.l2MissRate();
    out.l2Accesses = hier.l2Accesses();
    out.l2Misses = hier.l2Misses();
    out.memAccesses = hier.mem().accesses();
    if (ResizableCache *l2 = hier.driL2()) {
        out.l2SizeBytes = l2->params().sizeBytes;
        out.l2AvgActiveFraction = l2->averageActiveFraction();
        out.l2ResizingTagBits = l2->params().resizingTagBits();
        out.l2Resizes = l2->upsizes() + l2->downsizes();
    } else {
        out.l2SizeBytes = hier.params().l2.sizeBytes;
    }
}

} // namespace

const ProgramImage &
programImageFor(const BenchmarkInfo &bench)
{
    return imageFor(bench);
}

InstCount
defaultRunInstrs()
{
    const char *scale = std::getenv("DRISIM_SCALE");
    double mult = 1.0;
    if (scale && *scale) {
        mult = std::atof(scale);
        if (mult <= 0.0)
            mult = 1.0;
    }
    return static_cast<InstCount>(10.0e6 * mult);
}

RunOutput
runConventional(const BenchmarkInfo &bench, const RunConfig &config)
{
    stats::StatGroup root("sim");
    Hierarchy hier(config.hier, &root, true);
    OooCore core(config.core, hier.l1i(), &hier.l1d(), &root);
    core.addResizable(hier.driL2());

    TraceGenerator gen(imageFor(bench));
    CoreStats cs = core.run(gen, config.maxInstrs);

    RunOutput out;
    Cache *l1i = hier.convL1i();
    out.meas = measurementFromCounts(
        cs.cycles, cs.instructions, l1i->accesses(), l1i->misses(),
        1.0, 0, config.hier.l1i.sizeBytes);
    out.ipc = cs.ipc();
    out.l1dMissRate = hier.l1d().missRate();
    fillL2Outputs(hier, out);
    return out;
}

RunOutput
runDri(const BenchmarkInfo &bench, const RunConfig &config,
       const DriParams &dri)
{
    stats::StatGroup root("sim");
    Hierarchy hier(config.hier, &root, false);
    DriICache icache(dri, hier.l2Level(), &root);
    hier.setL1I(&icache);
    OooCore core(config.core, &icache, &hier.l1d(), &root);
    core.setDri(&icache);
    core.addResizable(hier.driL2());

    TraceGenerator gen(imageFor(bench));
    CoreStats cs = core.run(gen, config.maxInstrs);

    RunOutput out;
    out.meas = measurementFromCounts(
        cs.cycles, cs.instructions, icache.accesses(), icache.misses(),
        icache.averageActiveFraction(), dri.resizingTagBits(),
        dri.sizeBytes);
    out.ipc = cs.ipc();
    out.l1dMissRate = hier.l1d().missRate();
    fillL2Outputs(hier, out);
    out.resizes = icache.upsizes() + icache.downsizes();
    out.throttleEvents = icache.controller().throttleEvents();
    return out;
}

FastCalibration
calibrateFast(const BenchmarkInfo &bench, const RunConfig &config,
              const RunOutput &convDetailed)
{
    FastCalibration cal;
    // Measure the conventional fetch-miss stall with the fast model
    // (independent of CPI), then solve baseCpi so the fast model
    // reproduces the detailed conventional cycle count.
    stats::StatGroup root("cal");
    Hierarchy hier(config.hier, &root, true);
    SimpleCoreParams scp;
    scp.baseCpi = 1.0; // irrelevant to stall measurement
    scp.fetchBlockBytes = config.hier.l1i.blockBytes;
    SimpleCore fast(scp, hier.l1i());
    TraceGenerator gen(imageFor(bench));
    fast.run(gen, config.maxInstrs);
    const double stall =
        static_cast<double>(fast.missStallCycles());

    const double instrs =
        static_cast<double>(convDetailed.meas.instructions);
    const double cycles =
        static_cast<double>(convDetailed.meas.cycles);
    drisim_assert(instrs > 0, "calibration needs a non-empty run");
    double base = (cycles - cal.missOverlap * stall) / instrs;
    if (base < 0.125)
        base = 0.125; // cannot beat the 8-wide ideal
    cal.baseCpi = base;
    return cal;
}

RunOutput
runConventionalFast(const BenchmarkInfo &bench, const RunConfig &config,
                    const FastCalibration &cal)
{
    stats::StatGroup root("fast");
    Hierarchy hier(config.hier, &root, true);
    SimpleCoreParams scp;
    scp.baseCpi = cal.baseCpi;
    scp.missOverlap = cal.missOverlap;
    scp.fetchBlockBytes = config.hier.l1i.blockBytes;
    SimpleCore fast(scp, hier.l1i());
    fast.addResizable(hier.driL2());
    TraceGenerator gen(imageFor(bench));
    CoreStats cs = fast.run(gen, config.maxInstrs);

    RunOutput out;
    Cache *l1i = hier.convL1i();
    out.meas = measurementFromCounts(
        cs.cycles, cs.instructions, l1i->accesses(), l1i->misses(),
        1.0, 0, config.hier.l1i.sizeBytes);
    out.ipc = cs.ipc();
    fillL2Outputs(hier, out);
    return out;
}

std::vector<std::string>
cmpBenchNames(const CmpConfig &cmp, const std::string &defaultBench)
{
    std::vector<std::string> names;
    names.reserve(cmp.cores);
    for (unsigned k = 0; k < cmp.cores; ++k) {
        const CmpCoreConfig cfg = cmp.coreConfig(k);
        names.push_back(cfg.bench.empty() ? defaultBench
                                          : cfg.bench);
    }
    return names;
}

CmpRunOutput
runCmp(const RunConfig &config, const CmpConfig &cmp,
       const std::string &defaultBench)
{
    const std::vector<std::string> names =
        cmpBenchNames(cmp, defaultBench);
    std::vector<const ProgramImage *> images;
    images.reserve(names.size());
    for (const std::string &name : names)
        images.push_back(&imageFor(findBenchmark(name)));

    stats::StatGroup root("cmp");
    CmpSystem sys(cmp, config.hier, config.core, images, &root);
    CmpRunOutput out = sys.run(config.maxInstrs);
    for (std::size_t k = 0; k < out.cores.size(); ++k)
        out.cores[k].bench = names[k];
    return out;
}

namespace
{

/** Copy a finished policy's activity into @p out. */
void
fillPolicyOutputs(const LeakagePolicy &policy,
                  const PolicyConfig &config, CoreStats cs,
                  RunOutput &out)
{
    const PolicyActivity act = policy.activity();
    out.meas = measurementFromCounts(
        cs.cycles, cs.instructions, policy.l1Accesses(),
        policy.l1Misses(), act.avgActiveFraction,
        act.resizingTagBits, config.dri.sizeBytes);
    out.ipc = cs.ipc();
    out.l1DrowsyFraction = act.avgDrowsyFraction;
    out.wakeTransitions = act.wakeTransitions;
    out.wakeStallCycles = act.wakeStallCycles;
    out.policyBlocksLost = act.blocksLost;
    out.resizes = act.resizes;
    out.throttleEvents = act.throttleEvents;
}

} // namespace

RunOutput
runPolicy(const BenchmarkInfo &bench, const RunConfig &config,
          const PolicyConfig &policy)
{
    stats::StatGroup root("sim");
    Hierarchy hier(config.hier, &root, false);
    std::unique_ptr<LeakagePolicy> l1i =
        makeLeakagePolicy(policy, hier.l2Level(), &root);
    hier.setL1I(l1i->level());
    OooCore core(config.core, l1i->level(), &hier.l1d(), &root);
    core.addRetireSink(l1i.get());
    core.addResizable(hier.driL2());

    TraceGenerator gen(imageFor(bench));
    CoreStats cs = core.run(gen, config.maxInstrs);

    RunOutput out;
    fillPolicyOutputs(*l1i, policy, cs, out);
    out.l1dMissRate = hier.l1d().missRate();
    fillL2Outputs(hier, out);
    return out;
}

RunOutput
runPolicyFast(const BenchmarkInfo &bench, const RunConfig &config,
              const PolicyConfig &policy, const FastCalibration &cal)
{
    stats::StatGroup root("fast");
    Hierarchy hier(config.hier, &root, false);
    std::unique_ptr<LeakagePolicy> l1i =
        makeLeakagePolicy(policy, hier.l2Level(), &root);
    hier.setL1I(l1i->level());
    SimpleCoreParams scp;
    scp.baseCpi = cal.baseCpi;
    scp.missOverlap = cal.missOverlap;
    scp.fetchBlockBytes = policy.dri.blockBytes;
    SimpleCore fast(scp, l1i->level());
    fast.addRetireSink(l1i.get());
    fast.addResizable(hier.driL2());
    TraceGenerator gen(imageFor(bench));
    CoreStats cs = fast.run(gen, config.maxInstrs);

    RunOutput out;
    fillPolicyOutputs(*l1i, policy, cs, out);
    fillL2Outputs(hier, out);
    return out;
}

RunOutput
runDriFast(const BenchmarkInfo &bench, const RunConfig &config,
           const DriParams &dri, const FastCalibration &cal)
{
    stats::StatGroup root("fast");
    Hierarchy hier(config.hier, &root, false);
    DriICache icache(dri, hier.l2Level(), &root);
    hier.setL1I(&icache);
    SimpleCoreParams scp;
    scp.baseCpi = cal.baseCpi;
    scp.missOverlap = cal.missOverlap;
    scp.fetchBlockBytes = dri.blockBytes;
    SimpleCore fast(scp, &icache);
    fast.setDri(&icache);
    fast.addResizable(hier.driL2());
    TraceGenerator gen(imageFor(bench));
    CoreStats cs = fast.run(gen, config.maxInstrs);

    RunOutput out;
    out.meas = measurementFromCounts(
        cs.cycles, cs.instructions, icache.accesses(), icache.misses(),
        icache.averageActiveFraction(), dri.resizingTagBits(),
        dri.sizeBytes);
    out.ipc = cs.ipc();
    fillL2Outputs(hier, out);
    out.resizes = icache.upsizes() + icache.downsizes();
    out.throttleEvents = icache.controller().throttleEvents();
    return out;
}

} // namespace drisim
