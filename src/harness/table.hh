/**
 * @file
 * Fixed-width table and ASCII-bar output for the bench binaries,
 * plus CSV export so results can be re-plotted.
 */

#ifndef DRISIM_HARNESS_TABLE_HH
#define DRISIM_HARNESS_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace drisim
{

/** A simple column-aligned text table. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Append one row (must match the header count). */
    void addRow(std::vector<std::string> cells);

    /**
     * Pre-size the table to @p n empty rows so parallel producers
     * can fill them by index: the rendered order is the slot order,
     * never the completion order.
     */
    void reserveRows(size_t n);

    /** Fill slot @p index (created by reserveRows or addRow). */
    void setRow(size_t index, std::vector<std::string> cells);

    /** Render with padded columns. */
    void print(std::ostream &os) const;

    /** Render as CSV. */
    void printCsv(std::ostream &os) const;

    size_t rows() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with @p decimals places. */
std::string fmtDouble(double v, int decimals = 3);

/** Format a percentage. */
std::string fmtPercent(double fraction, int decimals = 1);

/**
 * A horizontal ASCII bar of @p value scaled so 1.0 = @p width
 * characters (clamped), e.g. for normalized energy-delay plots.
 */
std::string asciiBar(double value, unsigned width = 40);

} // namespace drisim

#endif // DRISIM_HARNESS_TABLE_HH
