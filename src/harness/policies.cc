/**
 * @file
 * The (policy x parameter) head-to-head search, executed as a
 * JobGraph: every cell is a detailed runPolicy() evaluation landing
 * in an index-addressed slot; per-kind winners are selected by an
 * index-order scan, so results are bit-identical at any worker
 * count.
 */

#include "harness/policies.hh"

#include <algorithm>
#include <optional>

#include "harness/executor.hh"
#include "harness/table.hh"
#include "mem/hierarchy.hh"
#include "util/str.hh"

namespace drisim
{

PolicyMeasurement
toPolicyMeasurement(const RunOutput &out)
{
    PolicyMeasurement m;
    m.meas = out.meas;
    m.avgDrowsyFraction = out.l1DrowsyFraction;
    m.wakeTransitions = out.wakeTransitions;
    return m;
}

namespace
{

/** One grid cell: a full policy configuration. */
struct PolicyCell
{
    PolicyConfig config;
    std::size_t kindIndex; ///< index into space.kinds
};

/** Enumerate the grid in deterministic kind-major order. */
std::vector<PolicyCell>
enumerateCells(const PolicyConfig &base, const PolicySpace &space,
               double convMissesPerInterval)
{
    std::vector<PolicyCell> cells;
    for (std::size_t ki = 0; ki < space.kinds.size(); ++ki) {
        const PolicyKind kind = space.kinds[ki];
        PolicyConfig c = base;
        c.kind = kind;
        switch (kind) {
          case PolicyKind::Dri:
            for (std::uint64_t sb : space.driSizeBounds) {
                const std::uint64_t set_bytes =
                    static_cast<std::uint64_t>(c.dri.blockBytes) *
                    c.dri.assoc;
                if (sb > c.dri.sizeBytes || sb < set_bytes)
                    continue;
                PolicyCell cell{c, ki};
                cell.config.dri.sizeBoundBytes = sb;
                cell.config.dri.missBound =
                    std::max<std::uint64_t>(
                        space.missBoundFloor,
                        static_cast<std::uint64_t>(
                            space.driMissBoundFactor *
                            convMissesPerInterval));
                cells.push_back(std::move(cell));
            }
            break;
          case PolicyKind::Decay:
            for (InstCount iv : space.decayIntervals) {
                PolicyCell cell{c, ki};
                cell.config.decay.decayInterval = iv;
                cells.push_back(std::move(cell));
            }
            break;
          case PolicyKind::Drowsy:
            for (InstCount iv : space.drowsyIntervals) {
                for (Cycles wake : space.drowsyWakeLatencies) {
                    PolicyCell cell{c, ki};
                    cell.config.drowsy.drowsyInterval = iv;
                    cell.config.drowsy.wakeLatency = wake;
                    cells.push_back(std::move(cell));
                }
            }
            break;
          case PolicyKind::StaticWays:
            for (unsigned ways : space.waysActive) {
                if (ways < 1 || ways > c.dri.assoc)
                    continue;
                PolicyCell cell{c, ki};
                cell.config.ways.activeWays = ways;
                cells.push_back(std::move(cell));
            }
            break;
        }
    }
    return cells;
}

} // namespace

PolicySearchResult
searchPolicies(const BenchmarkInfo &bench, const RunConfig &config,
               const PolicyConfig &tmpl, const PolicySpace &space,
               const PolicyEnergyConstants &constants,
               double maxSlowdownPct, const RunOutput &convDetailed,
               Executor *exec)
{
    PolicySearchResult result;
    result.convDetailed = convDetailed;

    // Resolve the template against the configured geometry once;
    // cells then vary only their own policy's knobs.
    PolicyConfig base = tmpl;
    base.dri = driParamsForLevel(config.hier.l1i, tmpl.dri);

    const double intervals =
        static_cast<double>(config.maxInstrs) /
        static_cast<double>(base.dri.senseInterval);
    const double conv_mpi =
        intervals > 0.0
            ? static_cast<double>(convDetailed.meas.l1iMisses) /
                  intervals
            : 0.0;

    const std::vector<PolicyCell> cells =
        enumerateCells(base, space, conv_mpi);

    auto evaluate = [&](const PolicyConfig &pc) {
        const RunOutput d = runPolicy(bench, config, pc);
        PolicyCandidate cand;
        cand.config = pc;
        cand.cmp = comparePolicyRuns(constants,
                                     convDetailed.meas,
                                     toPolicyMeasurement(d));
        cand.feasible = maxSlowdownPct <= 0.0 ||
                        cand.cmp.slowdownPercent() <= maxSlowdownPct;
        return cand;
    };

    std::optional<Executor> local;
    if (!exec)
        exec = &local.emplace(config.jobs);
    JobGraph graph;

    // Every cell runs on the detailed core (same reasoning as the
    // multi-level search: cells are few, coarse and independent, so
    // detail parallelizes instead of approximating).
    result.evaluated.resize(cells.size());
    std::vector<JobId> grid;
    grid.reserve(cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
        // Content-addressed job key: the cell's full run-key hash,
        // the same identity its result is memoized under.
        grid.push_back(graph.add(
            strFormat("%s/policy=%s/%s#%s", bench.name.c_str(),
                      policyKindName(cells[i].config.kind),
                      cells[i].config.paramSummary().c_str(),
                      runKeyPolicy(bench, config, cells[i].config)
                          .hashHex()
                          .c_str()),
            [&, i](const JobContext &) {
                result.evaluated[i] = evaluate(cells[i].config);
            }));
    }

    graph.add(
        bench.name + "/policy-select",
        [&](const JobContext &) {
            // Index-order scans, one winner per kind: independent
            // of which worker finished which cell first.
            result.bestPerKind.resize(space.kinds.size());
            for (std::size_t ki = 0; ki < space.kinds.size();
                 ++ki) {
                bool have_best = false;
                double best_ed = 0.0;
                bool have_fallback = false;
                double best_slow = 0.0;
                std::size_t fallback = 0;
                for (std::size_t i = 0; i < cells.size(); ++i) {
                    if (cells[i].kindIndex != ki)
                        continue;
                    const PolicyCandidate &cand =
                        result.evaluated[i];
                    const double slow =
                        cand.cmp.slowdownPercent();
                    if (!have_fallback || slow < best_slow) {
                        have_fallback = true;
                        best_slow = slow;
                        fallback = i;
                    }
                    if (!cand.feasible)
                        continue;
                    const double ed =
                        cand.cmp.relativeEnergyDelay();
                    if (!have_best || ed < best_ed) {
                        have_best = true;
                        best_ed = ed;
                        result.bestPerKind[ki] = cand;
                    }
                }
                if (!have_best && have_fallback) {
                    // Nothing met the constraint: report the
                    // least-harm cell, marked infeasible.
                    result.bestPerKind[ki] =
                        result.evaluated[fallback];
                    result.bestPerKind[ki].feasible = false;
                } else if (!have_best && !have_fallback) {
                    // The grid filtered this kind down to zero
                    // cells (e.g. every waysActive value outside
                    // [1, assoc]): leave an explicit empty marker
                    // — correct kind, infeasible, zero cycles —
                    // so reports can skip it instead of showing a
                    // default-constructed "perfect" winner.
                    result.bestPerKind[ki].config.kind =
                        space.kinds[ki];
                    result.bestPerKind[ki].feasible = false;
                }
            }
        },
        grid);

    exec->run(graph);
    return result;
}

std::vector<std::string>
policyRowCells(const std::string &bench, const PolicyCandidate &cand)
{
    return {bench,
            policyKindName(cand.config.kind),
            cand.config.paramSummary(),
            fmtDouble(cand.cmp.relativeEnergyDelay(), 3),
            fmtDouble(cand.cmp.averageActiveFraction(), 3),
            fmtDouble(cand.cmp.averageDrowsyFraction(), 3),
            std::to_string(cand.cmp.run.wakeTransitions),
            fmtDouble(cand.cmp.slowdownPercent(), 2) + "%"};
}

} // namespace drisim
