/**
 * @file
 * Best-case (miss-bound x size-bound) search with fast-model
 * calibration and detailed re-run of the winner, executed as a
 * JobGraph: calibrate -> fast-model grid -> select -> detailed
 * winner. Grid cells land in index-addressed slots and the selection
 * scans them in grid order, so results are bit-identical at any
 * worker count.
 */

#include "harness/sweep.hh"

#include <algorithm>
#include <optional>

#include "harness/executor.hh"
#include "util/logging.hh"
#include "util/str.hh"

namespace drisim
{

ComparisonResult
evaluateDetailed(const BenchmarkInfo &bench, const RunConfig &config,
                 const DriParams &dri, const EnergyConstants &constants,
                 const RunOutput &convDetailed)
{
    RunOutput d = runDri(bench, config, dri);
    return compareRuns(constants, convDetailed.meas, d.meas);
}

std::vector<ComparisonResult>
evaluateDetailedBatch(const BenchmarkInfo &bench,
                      const RunConfig &config,
                      const std::vector<DriParams> &variants,
                      const EnergyConstants &constants,
                      const RunOutput &convDetailed, Executor *exec)
{
    std::vector<ComparisonResult> out(variants.size());
    std::optional<Executor> local;
    if (!exec)
        exec = &local.emplace(config.jobs);
    exec->forEachIndex(
        bench.name + "/detailed", variants.size(),
        [&](std::size_t i, const JobContext &) {
            out[i] = evaluateDetailed(bench, config, variants[i],
                                      constants, convDetailed);
        });
    return out;
}

SearchResult
searchBestEnergyDelay(const BenchmarkInfo &bench, const RunConfig &config,
                      const DriParams &driTemplate,
                      const SearchSpace &space,
                      const EnergyConstants &constants,
                      double maxSlowdownPct,
                      const RunOutput &convDetailed)
{
    SearchResult result;
    result.convDetailed = convDetailed;

    // Grid cells are fixed up front (the filter depends only on the
    // template); each cell's miss-bound is resolved inside its job
    // once the calibration stage has produced the conventional
    // misses-per-interval.
    struct Cell
    {
        std::uint64_t sizeBound;
        double factor;
    };
    std::vector<Cell> cells;
    for (std::uint64_t size_bound : space.sizeBounds) {
        if (size_bound > driTemplate.sizeBytes)
            continue;
        if (size_bound < static_cast<std::uint64_t>(
                             driTemplate.blockBytes) *
                             driTemplate.assoc)
            continue;
        for (double factor : space.missBoundFactors)
            cells.push_back({size_bound, factor});
    }

    Executor exec(config.jobs);
    JobGraph graph;

    // Content-addressed job keys (see bench_common::computeBase):
    // the base-config hash keeps job-keyed artifacts distinct
    // across differently-configured sweeps.
    const std::string cfgHash =
        runKeyConventional(bench, config).hashHex();

    FastCalibration cal;
    RunOutput conv_fast;
    double conv_misses_per_interval = 0.0;
    const JobId calibrate = graph.add(
        bench.name + "/calibrate", [&](const JobContext &) {
            cal = calibrateFast(bench, config, convDetailed);
            conv_fast = runConventionalFast(bench, config, cal);
            const double intervals =
                static_cast<double>(config.maxInstrs) /
                static_cast<double>(driTemplate.senseInterval);
            conv_misses_per_interval =
                intervals > 0.0
                    ? static_cast<double>(conv_fast.meas.l1iMisses) /
                          intervals
                    : 0.0;
        });

    result.evaluated.resize(cells.size());
    std::vector<JobId> grid;
    grid.reserve(cells.size());
    for (std::size_t i = 0; i < cells.size(); ++i) {
        grid.push_back(graph.add(
            strFormat("%s/sb=%llu/mbf=%g#%s", bench.name.c_str(),
                      static_cast<unsigned long long>(
                          cells[i].sizeBound),
                      cells[i].factor, cfgHash.c_str()),
            [&, i](const JobContext &) {
                DriParams p = driTemplate;
                p.sizeBoundBytes = cells[i].sizeBound;
                p.missBound = std::max<std::uint64_t>(
                    space.missBoundFloor,
                    static_cast<std::uint64_t>(
                        cells[i].factor *
                        conv_misses_per_interval));

                RunOutput d = runDriFast(bench, config, p, cal);
                SearchCandidate cand;
                cand.dri = p;
                cand.cmp =
                    compareRuns(constants, conv_fast.meas, d.meas);
                cand.feasible =
                    maxSlowdownPct <= 0.0 ||
                    cand.cmp.slowdownPercent() <= maxSlowdownPct;
                result.evaluated[i] = cand;
            },
            {calibrate}));
    }

    // The selection needs every grid slot AND the calibration
    // outputs (listing calibrate explicitly also covers the
    // empty-grid case, where it would otherwise run unordered).
    std::vector<JobId> selectDeps = grid;
    selectDeps.push_back(calibrate);

    DriParams best_params = driTemplate;
    const JobId select = graph.add(
        bench.name + "/select",
        [&](const JobContext &) {
            bool have_best = false;
            double best_ed = 0.0;
            for (const SearchCandidate &cand : result.evaluated) {
                if (!cand.feasible)
                    continue;
                const double ed = cand.cmp.relativeEnergyDelay();
                if (!have_best || ed < best_ed) {
                    have_best = true;
                    best_ed = ed;
                    best_params = cand.dri;
                }
            }
            if (!have_best) {
                // Nothing met the constraint: fall back to the
                // least-harm configuration (full-size size-bound
                // disables downsizing).
                best_params = driTemplate;
                best_params.sizeBoundBytes = driTemplate.sizeBytes;
                best_params.missBound = std::max<std::uint64_t>(
                    space.missBoundFloor,
                    static_cast<std::uint64_t>(
                        2.0 * conv_misses_per_interval));
            }
        },
        selectDeps);

    graph.add(
        bench.name + "/winner-detailed",
        [&](const JobContext &) {
            result.best.dri = best_params;
            result.best.cmp = evaluateDetailed(
                bench, config, best_params, constants, convDetailed);
            result.best.feasible =
                maxSlowdownPct <= 0.0 ||
                result.best.cmp.slowdownPercent() <= maxSlowdownPct;
        },
        {select});

    exec.run(graph);
    return result;
}

} // namespace drisim
