/**
 * @file
 * Best-case (miss-bound x size-bound) search with fast-model
 * calibration and detailed re-run of the winner.
 */

#include "harness/sweep.hh"

#include <algorithm>

#include "util/logging.hh"

namespace drisim
{

ComparisonResult
evaluateDetailed(const BenchmarkInfo &bench, const RunConfig &config,
                 const DriParams &dri, const EnergyConstants &constants,
                 const RunOutput &convDetailed)
{
    RunOutput d = runDri(bench, config, dri);
    return compareRuns(constants, convDetailed.meas, d.meas);
}

SearchResult
searchBestEnergyDelay(const BenchmarkInfo &bench, const RunConfig &config,
                      const DriParams &driTemplate,
                      const SearchSpace &space,
                      const EnergyConstants &constants,
                      double maxSlowdownPct,
                      const RunOutput &convDetailed)
{
    SearchResult result;
    result.convDetailed = convDetailed;

    const FastCalibration cal =
        calibrateFast(bench, config, convDetailed);
    const RunOutput conv_fast = runConventionalFast(bench, config, cal);

    // Conventional misses per sense interval, for miss-bound scaling.
    const double intervals =
        static_cast<double>(config.maxInstrs) /
        static_cast<double>(driTemplate.senseInterval);
    const double conv_misses_per_interval =
        intervals > 0.0
            ? static_cast<double>(conv_fast.meas.l1iMisses) / intervals
            : 0.0;

    bool have_best = false;
    double best_ed = 0.0;
    DriParams best_params = driTemplate;

    for (std::uint64_t size_bound : space.sizeBounds) {
        if (size_bound > driTemplate.sizeBytes)
            continue;
        if (size_bound < static_cast<std::uint64_t>(
                             driTemplate.blockBytes) *
                             driTemplate.assoc)
            continue;
        for (double factor : space.missBoundFactors) {
            DriParams p = driTemplate;
            p.sizeBoundBytes = size_bound;
            p.missBound = std::max<std::uint64_t>(
                space.missBoundFloor,
                static_cast<std::uint64_t>(
                    factor * conv_misses_per_interval));

            RunOutput d = runDriFast(bench, config, p, cal);
            SearchCandidate cand;
            cand.dri = p;
            cand.cmp =
                compareRuns(constants, conv_fast.meas, d.meas);
            cand.feasible =
                maxSlowdownPct <= 0.0 ||
                cand.cmp.slowdownPercent() <= maxSlowdownPct;
            result.evaluated.push_back(cand);

            if (!cand.feasible)
                continue;
            const double ed = cand.cmp.relativeEnergyDelay();
            if (!have_best || ed < best_ed) {
                have_best = true;
                best_ed = ed;
                best_params = p;
            }
        }
    }

    if (!have_best) {
        // Nothing met the constraint: fall back to the least-harm
        // configuration (full-size size-bound disables downsizing).
        best_params = driTemplate;
        best_params.sizeBoundBytes = driTemplate.sizeBytes;
        best_params.missBound = std::max<std::uint64_t>(
            space.missBoundFloor,
            static_cast<std::uint64_t>(2.0 *
                                       conv_misses_per_interval));
    }

    result.best.dri = best_params;
    result.best.cmp = evaluateDetailed(bench, config, best_params,
                                       constants, convDetailed);
    result.best.feasible =
        maxSlowdownPct <= 0.0 ||
        result.best.cmp.slowdownPercent() <= maxSlowdownPct;
    return result;
}

} // namespace drisim
