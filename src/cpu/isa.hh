/**
 * @file
 * The synthetic ISA: a decoded-instruction record and the stream
 * interface between workloads and CPU models.
 *
 * Instructions are 4 bytes; a 32-byte i-cache block holds 8. The
 * stream carries the *architecturally executed* path (trace-driven
 * simulation): branch outcomes and memory addresses are known, and
 * CPU models charge timing for mispredictions rather than fetching
 * wrong-path instructions (standard trace-driven approximation;
 * see docs/DESIGN.md, Trace-driven approximation).
 */

#ifndef DRISIM_CPU_ISA_HH
#define DRISIM_CPU_ISA_HH

#include <cstdint>

#include "util/types.hh"

namespace drisim
{

/** Instruction byte size (fixed-width ISA). */
inline constexpr unsigned kInstrBytes = 4;

/** Operation classes with distinct timing behaviour. */
enum class OpClass : std::uint8_t
{
    IntAlu,  ///< 1-cycle integer op
    IntMul,  ///< 3-cycle multiply/divide-lite
    FpAlu,   ///< 4-cycle floating-point op
    Load,    ///< d-cache read
    Store,   ///< d-cache write (at commit)
    Branch,  ///< conditional branch
    Jump,    ///< unconditional direct jump
    Call,    ///< function call (pushes RAS)
    Return,  ///< function return (pops RAS)
};

/** True if @p op redirects control flow. */
constexpr bool
isControl(OpClass op)
{
    return op == OpClass::Branch || op == OpClass::Jump ||
           op == OpClass::Call || op == OpClass::Return;
}

/** True if @p op references data memory. */
constexpr bool
isMem(OpClass op)
{
    return op == OpClass::Load || op == OpClass::Store;
}

/** One decoded, executed instruction. */
struct Instr
{
    /** Instruction address. */
    Addr pc = 0;
    /** Operation class. */
    OpClass op = OpClass::IntAlu;
    /** Destination register (0 = none; regs 1..63). */
    std::uint8_t dest = 0;
    /** Source registers (0 = none). */
    std::uint8_t src1 = 0;
    std::uint8_t src2 = 0;
    /** For control ops: did it take? (Jump/Call/Return: true.) */
    bool taken = false;
    /** Address of the next executed instruction. */
    Addr nextPc = 0;
    /** Effective address for Load/Store. */
    Addr memAddr = 0;
};

/** A supplier of the executed instruction path. */
class InstrStream
{
  public:
    virtual ~InstrStream() = default;

    /**
     * Produce the next executed instruction.
     * @return false when the program ends
     */
    virtual bool next(Instr &out) = 0;
};

} // namespace drisim

#endif // DRISIM_CPU_ISA_HH
