/**
 * @file
 * Hybrid bimodal+gshare predictor, BTB, and return-address stack.
 */

#include "cpu/branch_pred.hh"

#include "util/bitops.hh"
#include "util/logging.hh"

namespace drisim
{

BranchPredictor::BranchPredictor(const BranchPredParams &params,
                                 stats::StatGroup *parent)
    : params_(params),
      bimodal_(params.bimodalEntries, 1),  // weakly not-taken
      gshare_(params.gshareEntries, 1),
      chooser_(params.chooserEntries, 2),  // weakly prefer gshare
      btb_(static_cast<size_t>(params.btbSets) * params.btbAssoc),
      ras_(params.rasDepth, 0),
      group_(parent, "bpred"),
      lookups_(&group_, "lookups", "control-flow predictions made"),
      dirMispredicts_(&group_, "dir_mispredicts",
                      "direction mispredictions"),
      targetMispredicts_(&group_, "target_mispredicts",
                         "taken with wrong/unknown target"),
      btbHits_(&group_, "btb_hits", "BTB target hits"),
      rasPredictions_(&group_, "ras_predictions",
                      "returns predicted via RAS")
{
    drisim_assert(isPowerOf2(params.bimodalEntries) &&
                  isPowerOf2(params.gshareEntries) &&
                  isPowerOf2(params.chooserEntries) &&
                  isPowerOf2(params.btbSets),
                  "predictor tables must be power-of-two sized");
}

unsigned
BranchPredictor::bimodalIndex(Addr pc) const
{
    return static_cast<unsigned>((pc >> 2) &
                                 (params_.bimodalEntries - 1));
}

unsigned
BranchPredictor::gshareIndex(Addr pc) const
{
    const std::uint64_t hist =
        history_ & maskLow(params_.historyBits);
    return static_cast<unsigned>(((pc >> 2) ^ hist) &
                                 (params_.gshareEntries - 1));
}

unsigned
BranchPredictor::chooserIndex(Addr pc) const
{
    return static_cast<unsigned>((pc >> 2) &
                                 (params_.chooserEntries - 1));
}

void
BranchPredictor::bump(std::uint8_t &c, bool up)
{
    if (up) {
        if (c < 3)
            ++c;
    } else {
        if (c > 0)
            --c;
    }
}

BranchPredictor::BtbEntry *
BranchPredictor::btbLookup(Addr pc)
{
    const std::uint64_t set =
        (pc >> 2) & (params_.btbSets - 1);
    BtbEntry *base = &btb_[set * params_.btbAssoc];
    for (unsigned w = 0; w < params_.btbAssoc; ++w) {
        if (base[w].tag == pc)
            return &base[w];
    }
    return nullptr;
}

void
BranchPredictor::btbInstall(Addr pc, Addr target)
{
    const std::uint64_t set =
        (pc >> 2) & (params_.btbSets - 1);
    BtbEntry *base = &btb_[set * params_.btbAssoc];
    BtbEntry *victim = &base[0];
    for (unsigned w = 0; w < params_.btbAssoc; ++w) {
        if (base[w].tag == pc || base[w].tag == kInvalidAddr) {
            victim = &base[w];
            break;
        }
        if (base[w].lastTouch < victim->lastTouch)
            victim = &base[w];
    }
    victim->tag = pc;
    victim->target = target;
    victim->lastTouch = ++btbTick_;
}

BranchPrediction
BranchPredictor::predict(Addr pc, OpClass op)
{
    ++lookups_;
    BranchPrediction pred;

    switch (op) {
      case OpClass::Return:
        pred.taken = true;
        if (rasTop_ > 0) {
            --rasTop_;
            pred.target = ras_[rasTop_ % params_.rasDepth];
            ++rasPredictions_;
        }
        return pred;

      case OpClass::Call:
        // Push the return address (pc + 4) before predicting target.
        ras_[rasTop_ % params_.rasDepth] = pc + kInstrBytes;
        if (rasTop_ < 2 * params_.rasDepth)
            ++rasTop_;
        [[fallthrough]];

      case OpClass::Jump: {
        pred.taken = true;
        if (BtbEntry *e = btbLookup(pc)) {
            e->lastTouch = ++btbTick_;
            pred.target = e->target;
            ++btbHits_;
        }
        return pred;
      }

      case OpClass::Branch: {
        const bool bim = counterTaken(bimodal_[bimodalIndex(pc)]);
        const bool gsh = counterTaken(gshare_[gshareIndex(pc)]);
        const bool use_gshare =
            counterTaken(chooser_[chooserIndex(pc)]);
        pred.taken = use_gshare ? gsh : bim;
        if (pred.taken) {
            if (BtbEntry *e = btbLookup(pc)) {
                e->lastTouch = ++btbTick_;
                pred.target = e->target;
                ++btbHits_;
            }
        } else {
            pred.target = pc + kInstrBytes;
        }
        return pred;
      }

      default:
        drisim_panic("predict() on a non-control op");
    }
}

void
BranchPredictor::update(Addr pc, OpClass op, bool taken, Addr target)
{
    if (op == OpClass::Branch) {
        std::uint8_t &bim = bimodal_[bimodalIndex(pc)];
        std::uint8_t &gsh = gshare_[gshareIndex(pc)];
        std::uint8_t &cho = chooser_[chooserIndex(pc)];

        const bool bim_correct = counterTaken(bim) == taken;
        const bool gsh_correct = counterTaken(gsh) == taken;
        if (bim_correct != gsh_correct)
            bump(cho, gsh_correct);

        bump(bim, taken);
        bump(gsh, taken);

        history_ = (history_ << 1) | (taken ? 1 : 0);
    }
    if (taken && op != OpClass::Return)
        btbInstall(pc, target);
}

bool
BranchPredictor::mispredicted(const BranchPrediction &pred, bool taken,
                              Addr target)
{
    if (pred.taken != taken)
        return true;
    if (!taken)
        return false;
    return pred.target != target;
}

void
BranchPredictor::noteResolved(const BranchPrediction &pred, bool taken,
                              Addr target)
{
    if (pred.taken != taken) {
        ++dirMispredicts_;
    } else if (taken && pred.target != target) {
        ++targetMispredicts_;
    }
}

} // namespace drisim
