/**
 * @file
 * Fast fetch-driven timing estimator.
 *
 * The paper's methodology searches the (miss-bound, size-bound)
 * space per benchmark for the best energy-delay (Section 5.3). The
 * full out-of-order model is too slow to sweep; this model runs the
 * same instruction stream through the real i-cache (conventional or
 * DRI, including all resizing behaviour) but estimates time as
 *
 *     cycles = baseCpi * instructions + overlap * missStallCycles
 *
 * where baseCpi is calibrated per benchmark from one detailed
 * conventional run, and overlap accounts for the out-of-order
 * back-end hiding part of the fetch stall. Cache *behaviour* is
 * exact; only time is approximated. Winning configurations are
 * re-run on the detailed model for reporting.
 */

#ifndef DRISIM_CPU_SIMPLE_CORE_HH
#define DRISIM_CPU_SIMPLE_CORE_HH

#include <vector>

#include "core/dri_icache.hh"
#include "mem/memory.hh"
#include "cpu/isa.hh"
#include "cpu/ooo_core.hh"

namespace drisim
{

/** Fast-model configuration. */
struct SimpleCoreParams
{
    /** Base CPI with no extra i-cache stalls (calibrated). */
    double baseCpi = 0.5;
    /** Fraction of each fetch-miss stall that reaches total time. */
    double missOverlap = 0.85;
    /** Fetch-group block size (i-cache line). */
    unsigned fetchBlockBytes = 32;
};

/** Fetch-only fast model. */
class SimpleCore
{
  public:
    SimpleCore(const SimpleCoreParams &params, MemoryLevel *icache);

    /** Attach a DRI i-cache for retire/integration callbacks. */
    void setDri(DriICache *dri) { addResizable(dri); }

    /** Attach any resizable level (L1I or L2) for retire/integration
     *  callbacks. No-op on nullptr. */
    void addResizable(ResizableCache *cache)
    {
        if (cache)
            resizables_.push_back(cache);
    }

    /** Run the stream; returns estimated cycles and instructions. */
    CoreStats run(InstrStream &stream, InstCount maxInstrs);

    /** Total fetch-miss stall cycles observed (pre-overlap). */
    Cycles missStallCycles() const { return missStall_; }

  private:
    SimpleCoreParams params_;
    MemoryLevel *icache_;
    std::vector<ResizableCache *> resizables_;
    Cycles missStall_ = 0;
};

} // namespace drisim

#endif // DRISIM_CPU_SIMPLE_CORE_HH
