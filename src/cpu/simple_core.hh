/**
 * @file
 * Fast fetch-driven timing estimator.
 *
 * The paper's methodology searches the (miss-bound, size-bound)
 * space per benchmark for the best energy-delay (Section 5.3). The
 * full out-of-order model is too slow to sweep; this model runs the
 * same instruction stream through the real i-cache (conventional or
 * DRI, including all resizing behaviour) but estimates time as
 *
 *     cycles = baseCpi * instructions + overlap * missStallCycles
 *
 * where baseCpi is calibrated per benchmark from one detailed
 * conventional run, and overlap accounts for the out-of-order
 * back-end hiding part of the fetch stall. Cache *behaviour* is
 * exact; only time is approximated. Winning configurations are
 * re-run on the detailed model for reporting.
 */

#ifndef DRISIM_CPU_SIMPLE_CORE_HH
#define DRISIM_CPU_SIMPLE_CORE_HH

#include "core/dri_icache.hh"
#include "mem/memory.hh"
#include "cpu/core.hh"
#include "cpu/isa.hh"

namespace drisim
{

/** Fast-model configuration. */
struct SimpleCoreParams
{
    /** Base CPI with no extra i-cache stalls (calibrated). */
    double baseCpi = 0.5;
    /** Fraction of each fetch-miss stall that reaches total time. */
    double missOverlap = 0.85;
    /** Fetch-group block size (i-cache line). */
    unsigned fetchBlockBytes = 32;
};

/** Fetch-only fast model. */
class SimpleCore : public Core
{
  public:
    SimpleCore(const SimpleCoreParams &params, MemoryLevel *icache);

    /** Attach a DRI i-cache for retire/integration callbacks. */
    void setDri(DriICache *dri) { addResizable(dri); }

    /**
     * Run the stream for up to @p maxInstrs further instructions.
     * Resumable (Core contract): the fetch-block and retirement
     * bookkeeping persist, so interleaved quanta see the same cache
     * behaviour as one long run.
     * @return cumulative estimated cycles and instructions
     */
    CoreStats run(InstrStream &stream, InstCount maxInstrs) override;

    /** Cumulative stats over every run() call (Core contract). */
    CoreStats stats() const override;

    /** Stream exhausted; nothing in flight (Core contract). */
    bool drained() const override { return streamDone_; }

    /** Total fetch-miss stall cycles observed (pre-overlap). */
    Cycles missStallCycles() const { return missStall_; }

    /** Core contract: serialize/restore the estimator state. The
     *  continued run is bit-identical only when the split point is a
     *  multiple of the retire batch (64); see run()'s tail-flush
     *  note. The harness aligns its split accordingly. */
    void snapshotTo(sim::CheckpointWriter &w) const override;
    void restoreFrom(sim::CheckpointReader &r) override;

  private:
    /** Flush any buffered retirements to the attached levels. */
    void flushRetireBatch();

    SimpleCoreParams params_;
    MemoryLevel *icache_;
    Cycles missStall_ = 0;
    InstCount instrs_ = 0;
    Addr lastBlock_ = kInvalidAddr;
    InstCount retireBatch_ = 0;
    bool streamDone_ = false;
};

} // namespace drisim

#endif // DRISIM_CPU_SIMPLE_CORE_HH
