/**
 * @file
 * A compact cycle-stepped out-of-order core with the Table 1
 * configuration: 8-wide fetch/issue/commit, 128-entry reorder
 * buffer, 128-entry load/store queue, hybrid 2-level branch
 * predictor, 1 GHz.
 *
 * Trace-driven timing model. The instruction stream carries the
 * executed path; on a mispredicted control instruction, fetch stalls
 * until the branch resolves plus a redirect penalty (wrong-path
 * fetch is modeled as lost fetch bandwidth, not as cache pollution —
 * the standard trace-driven approximation). I-cache misses stall
 * fetch for the full fill latency; loads access the d-cache at
 * issue; stores write at commit.
 */

#ifndef DRISIM_CPU_OOO_CORE_HH
#define DRISIM_CPU_OOO_CORE_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "core/dri_icache.hh"
#include "mem/memory.hh"
#include "stats/stats.hh"
#include "cpu/branch_pred.hh"
#include "cpu/core.hh"
#include "cpu/isa.hh"

namespace drisim
{

/** Pipeline configuration (Table 1 defaults). */
struct OooParams
{
    unsigned fetchWidth = 8;
    unsigned issueWidth = 8;
    unsigned commitWidth = 8;
    unsigned robSize = 128;
    unsigned lsqSize = 128;
    unsigned fetchQueueSize = 32;
    /** Cycles to restart fetch after a branch resolves wrong. */
    Cycles redirectPenalty = 3;
    /** Fetch-group block granularity (i-cache line size). */
    unsigned fetchBlockBytes = 32;
    /** Per-class issue ports. */
    unsigned memPorts = 2;
    unsigned fpPorts = 4;
    unsigned mulPorts = 2;
    BranchPredParams bpred{};

    /** Execution latencies per op class (cycles). */
    static Cycles execLatency(OpClass op);
};

/** The out-of-order core. */
class OooCore : public Core
{
  public:
    /**
     * @param params pipeline shape
     * @param icache L1 instruction cache (conventional or DRI)
     * @param dcache L1 data cache
     * @param parent stats parent
     */
    OooCore(const OooParams &params, MemoryLevel *icache,
            MemoryLevel *dcache, stats::StatGroup *parent);

    /**
     * Attach a DRI i-cache for retirement notifications and active-
     * size integration (pass nullptr for conventional runs).
     */
    void setDri(DriICache *dri) { addResizable(dri); }

    /**
     * Run until @p stream ends or @p maxInstrs commit. Resumable
     * (Core contract): state persists across calls.
     * @return cumulative cycles and instructions executed
     */
    CoreStats run(InstrStream &stream, InstCount maxInstrs) override;

    /** Cumulative cycles/instructions (Core contract). */
    CoreStats stats() const override
    {
        CoreStats s;
        s.cycles = now_;
        s.instructions = committedInstrs_.value();
        return s;
    }

    /** Stream ended and pipeline empty (Core contract). */
    bool drained() const override
    {
        return streamDone_ && !instrPending_ &&
               fetchQueue_.empty() && seqHead_ == seqTail_;
    }

    BranchPredictor &predictor() { return bpred_; }

    /** Core contract: serialize/restore the full pipeline state.
     *  Split-and-continue is bit-identical at any split point. */
    void snapshotTo(sim::CheckpointWriter &w) const override;
    void restoreFrom(sim::CheckpointReader &r) override;

    Cycles cycles() const { return now_; }
    InstCount committed() const { return committedInstrs_.value(); }
    std::uint64_t icacheStallCycles() const
    {
        return icacheStallCycles_.value();
    }
    std::uint64_t branchStallCycles() const
    {
        return branchStallCycles_.value();
    }

  private:
    /** An in-flight instruction (ROB entry). */
    struct RobEntry
    {
        Instr instr;
        BranchPrediction pred;
        bool predMade = false;
        bool mispredict = false;
        /** -1 when free of that dependency. */
        std::int64_t prod1 = -1;
        std::int64_t prod2 = -1;
        /** Older store this load must wait for / forward from. */
        std::int64_t depStore = -1;
        bool issued = false;
        Cycles completeAt = 0;
    };

    /** A fetched, not yet dispatched instruction. */
    struct FetchedInstr
    {
        Instr instr;
        BranchPrediction pred;
        bool predMade = false;
        bool mispredict = false;
    };

    RobEntry &rob(std::int64_t seq)
    {
        return robBuf_[static_cast<size_t>(seq) % robBuf_.size()];
    }

    bool producerDone(std::int64_t seq) const;
    bool entryReady(const RobEntry &e) const;

    void doCommit();
    void doIssue();
    void doDispatch();
    void doFetch(InstrStream &stream);
    Cycles nextEventCycle() const;

    OooParams params_;
    MemoryLevel *icache_;
    MemoryLevel *dcache_;
    BranchPredictor bpred_;

    Cycles now_ = 0;

    /** ROB ring buffer: valid seqs are [seqHead_, seqTail_). */
    std::vector<RobEntry> robBuf_;
    std::int64_t seqHead_ = 0;
    std::int64_t seqTail_ = 0;

    std::vector<FetchedInstr> fetchQueue_;
    size_t fetchQueueHead_ = 0;

    /** Rename table: last in-flight writer per register. */
    std::int64_t lastWriter_[64];

    unsigned lsqOccupancy_ = 0;

    /** In-flight store seqs (store-to-load forwarding search). */
    std::deque<std::int64_t> storeSeqs_;

    /** Fetch state. */
    bool streamDone_ = false;
    Cycles fetchResumeAt_ = 0;
    bool haltedForBranch_ = false;
    std::int64_t stallBranchSeq_ = -1; ///< unresolved mispredict
    Cycles branchStallFrom_ = 0;
    Addr lastFetchBlock_ = kInvalidAddr;
    bool fetchStallIsIcache_ = false;
    unsigned fetchBlockBytes_ = 32;

    bool instrPending_ = false;
    Instr pendingInstr_{};

    /** Remaining instructions this run may commit (exact stop). */
    InstCount commitBudget_ = 0;

    /**
     * Cycle of the most recent doCommit(). When a run() call stops
     * mid-cycle on its commit budget, the next call re-enters
     * doCommit() at the same local cycle; the pair lets it deduct
     * the commits already performed so the boundary cycle never
     * exceeds commitWidth (split runs stay bit-identical to
     * uninterrupted ones; see tests/checkpoint_test.cc).
     */
    Cycles lastCommitCycle_ = ~Cycles{0};

    /** Per-cycle work counters (idle-skip detection). */
    unsigned commitsThisCycle_ = 0;
    unsigned issuesThisCycle_ = 0;
    unsigned dispatchesThisCycle_ = 0;
    unsigned fetchesThisCycle_ = 0;

    stats::StatGroup group_;
    stats::Scalar committedInstrs_;
    stats::Scalar simCycles_;
    stats::Scalar icacheStallCycles_;
    stats::Scalar branchStallCycles_;
    stats::Scalar robFullStalls_;
    stats::Scalar loadForwards_;
    stats::Scalar mispredicts_;
};

} // namespace drisim

#endif // DRISIM_CPU_OOO_CORE_HH
