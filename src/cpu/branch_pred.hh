/**
 * @file
 * The Table 1 branch predictor: a 2-level hybrid (bimodal + gshare
 * with a chooser), a set-associative BTB, and a return-address stack.
 */

#ifndef DRISIM_CPU_BRANCH_PRED_HH
#define DRISIM_CPU_BRANCH_PRED_HH

#include <cstdint>
#include <vector>

#include "stats/stats.hh"
#include "util/types.hh"
#include "cpu/isa.hh"

namespace drisim::sim
{
class CheckpointWriter;
class CheckpointReader;
} // namespace drisim::sim

namespace drisim
{

/** Hybrid predictor configuration. */
struct BranchPredParams
{
    unsigned bimodalEntries = 4096;
    unsigned gshareEntries = 4096;
    unsigned chooserEntries = 4096;
    unsigned historyBits = 12;
    unsigned btbSets = 512;
    unsigned btbAssoc = 4;
    unsigned rasDepth = 32;
};

/** A fetch-time branch prediction. */
struct BranchPrediction
{
    bool taken = false;
    /** Predicted target; kInvalidAddr when the BTB misses. */
    Addr target = kInvalidAddr;
};

/** 2-level hybrid predictor + BTB + RAS. */
class BranchPredictor
{
  public:
    BranchPredictor(const BranchPredParams &params,
                    stats::StatGroup *parent);

    /**
     * Predict the control instruction at @p pc. Speculatively
     * updates the RAS (calls push, returns pop) the way a fetch
     * engine would.
     *
     * @param pc fetch address of the control instruction
     * @param op which control class it is
     */
    BranchPrediction predict(Addr pc, OpClass op);

    /**
     * Train on the resolved outcome.
     *
     * @param pc     branch address
     * @param op     control class
     * @param taken  actual direction
     * @param target actual target (installed in the BTB if taken)
     */
    void update(Addr pc, OpClass op, bool taken, Addr target);

    /**
     * Was this (prediction, outcome) pair a misprediction needing a
     * pipeline redirect? Direction or target mismatch counts.
     */
    static bool mispredicted(const BranchPrediction &pred, bool taken,
                             Addr target);

    std::uint64_t lookups() const { return lookups_.value(); }
    std::uint64_t dirMispredicts() const
    {
        return dirMispredicts_.value();
    }

    /** Record outcome-vs-prediction stats (called by the core). */
    void noteResolved(const BranchPrediction &pred, bool taken,
                      Addr target);

    /** Serialize tables + history + BTB + RAS + stats
     *  (sim/checkpoint.hh). Restore requires identical params. */
    void snapshotTo(sim::CheckpointWriter &w) const;
    void restoreFrom(sim::CheckpointReader &r);

  private:
    unsigned bimodalIndex(Addr pc) const;
    unsigned gshareIndex(Addr pc) const;
    unsigned chooserIndex(Addr pc) const;

    static bool counterTaken(std::uint8_t c) { return c >= 2; }
    static void bump(std::uint8_t &c, bool up);

    BranchPredParams params_;
    std::vector<std::uint8_t> bimodal_;
    std::vector<std::uint8_t> gshare_;
    std::vector<std::uint8_t> chooser_;
    std::uint64_t history_ = 0;

    /** BTB: direct arrays of (tag, target) per set/way. */
    struct BtbEntry
    {
        Addr tag = kInvalidAddr;
        Addr target = 0;
        std::uint64_t lastTouch = 0;
    };
    std::vector<BtbEntry> btb_;
    std::uint64_t btbTick_ = 0;

    std::vector<Addr> ras_;
    unsigned rasTop_ = 0;

    stats::StatGroup group_;
    stats::Scalar lookups_;
    stats::Scalar dirMispredicts_;
    stats::Scalar targetMispredicts_;
    stats::Scalar btbHits_;
    stats::Scalar rasPredictions_;

    BtbEntry *btbLookup(Addr pc);
    void btbInstall(Addr pc, Addr target);
};

} // namespace drisim

#endif // DRISIM_CPU_BRANCH_PRED_HH
