/**
 * @file
 * The Core interface: what the harness and the CMP scheduler need
 * from a CPU model, independent of how it models time.
 *
 * Both CPU models implement it — OooCore (the detailed cycle-stepped
 * pipeline) and SimpleCore (the fast fetch-driven estimator used by
 * the parameter search). A Core:
 *
 *  - consumes an InstrStream through run(), which is *resumable*:
 *    each call continues from the previous machine state and retires
 *    up to maxInstrs further instructions, so a scheduler can
 *    interleave several cores over a shared memory system in
 *    round-robin quanta (system/cmp.hh);
 *  - broadcasts retirement counts and cycle advancement to any
 *    attached RetireSinks — resizable cache levels (the gated-Vdd
 *    controllers sample at sense-interval boundaries and integrate
 *    active size over time) and leakage-policy caches
 *    (policy/leakage_policy.hh);
 *  - exposes cumulative stats() so callers can measure per-quantum
 *    progress as deltas.
 */

#ifndef DRISIM_CPU_CORE_HH
#define DRISIM_CPU_CORE_HH

#include <vector>

#include "cpu/isa.hh"
#include "mem/resizable_cache.hh"
#include "util/types.hh"

namespace drisim::sim
{
class CheckpointWriter;
class CheckpointReader;
} // namespace drisim::sim

namespace drisim
{

/** Results of one simulation run (cumulative across run() calls). */
struct CoreStats
{
    Cycles cycles = 0;
    InstCount instructions = 0;
    double ipc() const
    {
        return cycles == 0 ? 0.0
                           : static_cast<double>(instructions) /
                                 static_cast<double>(cycles);
    }
};

/** Abstract CPU model over an instruction stream. */
class Core
{
  public:
    virtual ~Core() = default;

    /**
     * Attach any resizable cache level (DRI L1I, L1D or a private
     * view of a shared L2) for retirement notifications and
     * active-size integration; each level resizes under its own
     * controller. No-op on nullptr.
     */
    void addResizable(ResizableCache *cache)
    {
        if (cache)
            sinks_.push_back(cache);
    }

    /**
     * Attach any other retirement/time consumer (a leakage-policy
     * cache, policy/leakage_policy.hh). Broadcast order follows
     * attachment order. No-op on nullptr.
     */
    void addRetireSink(RetireSink *sink)
    {
        if (sink)
            sinks_.push_back(sink);
    }

    /**
     * Run until @p stream ends or @p maxInstrs further instructions
     * retire. Resumable: machine state (pipeline occupancy, local
     * clock, committed count) persists across calls.
     * @return cumulative cycles and instructions
     */
    virtual CoreStats run(InstrStream &stream,
                          InstCount maxInstrs) = 0;

    /** Cumulative cycles/instructions over every run() call. */
    virtual CoreStats stats() const = 0;

    /**
     * True once the stream has ended and no in-flight work remains —
     * further run() calls cannot make progress.
     */
    virtual bool drained() const = 0;

    /**
     * Serialize the full machine state — pipeline, local clock,
     * committed counts, predictor — so a later restoreFrom() into an
     * identically-configured core continues bit-identically
     * (sim/checkpoint.hh). Attached sinks are serialized separately
     * by the owner.
     */
    virtual void snapshotTo(sim::CheckpointWriter &w) const = 0;
    virtual void restoreFrom(sim::CheckpointReader &r) = 0;

    /**
     * Sampler seam (sim/sampling.hh): forward externally-simulated
     * progress to the attached sinks so resize/policy intervals keep
     * ticking across fast-forwarded regions.
     */
    void broadcastRetire(InstCount n) { retire(n); }
    void broadcastCycles(Cycles delta) { integrate(delta); }

  protected:
    /** Broadcast @p n retired instructions to attached sinks. */
    void retire(InstCount n)
    {
        for (RetireSink *sink : sinks_)
            sink->onRetire(n);
    }

    /** Broadcast @p delta elapsed cycles to attached sinks. */
    void integrate(Cycles delta)
    {
        for (RetireSink *sink : sinks_)
            sink->onCycles(delta);
    }

    bool hasResizables() const { return !sinks_.empty(); }

  private:
    std::vector<RetireSink *> sinks_;
};

} // namespace drisim

#endif // DRISIM_CPU_CORE_HH
