/**
 * @file
 * Cycle-stepped out-of-order core: fetch/issue/commit pipeline with
 * ROB/LSQ occupancy and misprediction timing.
 */

#include "cpu/ooo_core.hh"

#include <algorithm>
#include <limits>

#include "util/logging.hh"

namespace drisim
{

namespace
{

constexpr Cycles kNoEvent = std::numeric_limits<Cycles>::max();

/** Word granularity for store-to-load forwarding. */
constexpr unsigned kForwardShift = 3; // 8-byte words

} // namespace

Cycles
OooParams::execLatency(OpClass op)
{
    switch (op) {
      case OpClass::IntAlu:  return 1;
      case OpClass::IntMul:  return 3;
      case OpClass::FpAlu:   return 4;
      case OpClass::Load:    return 1; // + d-cache
      case OpClass::Store:   return 1;
      case OpClass::Branch:  return 1;
      case OpClass::Jump:    return 1;
      case OpClass::Call:    return 1;
      case OpClass::Return:  return 1;
    }
    return 1;
}

OooCore::OooCore(const OooParams &params, MemoryLevel *icache,
                 MemoryLevel *dcache, stats::StatGroup *parent)
    : params_(params),
      icache_(icache),
      dcache_(dcache),
      bpred_(params.bpred, parent),
      robBuf_(params.robSize),
      group_(parent, "core"),
      committedInstrs_(&group_, "committed", "instructions committed"),
      simCycles_(&group_, "cycles", "cycles simulated"),
      icacheStallCycles_(&group_, "icache_stall_cycles",
                         "fetch-stall cycles charged to i-cache misses"),
      branchStallCycles_(&group_, "branch_stall_cycles",
                         "fetch-stall cycles charged to mispredicts"),
      robFullStalls_(&group_, "rob_full_stalls",
                     "dispatch stalls with a full ROB"),
      loadForwards_(&group_, "load_forwards",
                    "loads forwarded from in-flight stores"),
      mispredicts_(&group_, "mispredicts",
                   "control instructions needing a redirect")
{
    drisim_assert(params.robSize > 0 && params.fetchWidth > 0 &&
                  params.issueWidth > 0 && params.commitWidth > 0,
                  "core widths must be positive");
    fetchBlockBytes_ = params.fetchBlockBytes;
    for (auto &w : lastWriter_)
        w = -1;
}

bool
OooCore::producerDone(std::int64_t seq) const
{
    if (seq < 0 || seq < seqHead_)
        return true;
    const RobEntry &e =
        robBuf_[static_cast<size_t>(seq) % robBuf_.size()];
    return e.issued && e.completeAt <= now_;
}

bool
OooCore::entryReady(const RobEntry &e) const
{
    return producerDone(e.prod1) && producerDone(e.prod2);
}

void
OooCore::doCommit()
{
    unsigned n = 0;
    // Commits already performed at this cycle by a previous run()
    // call that stopped here on its budget: the boundary cycle's
    // total must not exceed commitWidth.
    const unsigned already =
        lastCommitCycle_ == now_ ? commitsThisCycle_ : 0;
    lastCommitCycle_ = now_;
    unsigned width =
        params_.commitWidth > already ? params_.commitWidth - already
                                      : 0;
    // Stop at exactly the run's instruction budget so paired runs
    // compare cycle counts at identical instruction counts.
    if (commitBudget_ < width)
        width = static_cast<unsigned>(commitBudget_);
    while (n < width && seqHead_ < seqTail_) {
        RobEntry &e = rob(seqHead_);
        if (!e.issued || e.completeAt > now_)
            break;
        if (e.instr.op == OpClass::Store && dcache_)
            dcache_->accessAt(e.instr.memAddr, AccessType::Store,
                              now_);
        if (isMem(e.instr.op)) {
            drisim_assert(lsqOccupancy_ > 0, "LSQ underflow");
            --lsqOccupancy_;
        }
        if (e.instr.dest != 0 &&
            lastWriter_[e.instr.dest] == seqHead_)
            lastWriter_[e.instr.dest] = -1;
        ++seqHead_;
        ++n;
    }
    if (n > 0) {
        committedInstrs_ += n;
        commitBudget_ -= n;
        retire(n);
    }
    commitsThisCycle_ = already + n;
}

void
OooCore::doIssue()
{
    unsigned issued = 0;
    unsigned mem_used = 0;
    unsigned fp_used = 0;
    unsigned mul_used = 0;

    for (std::int64_t seq = seqHead_;
         seq < seqTail_ && issued < params_.issueWidth; ++seq) {
        RobEntry &e = rob(seq);
        if (e.issued)
            continue;
        if (!entryReady(e))
            continue;

        const OpClass op = e.instr.op;
        if (isMem(op) && mem_used >= params_.memPorts)
            continue;
        if (op == OpClass::FpAlu && fp_used >= params_.fpPorts)
            continue;
        if (op == OpClass::IntMul && mul_used >= params_.mulPorts)
            continue;

        Cycles lat = OooParams::execLatency(op);
        if (op == OpClass::Load) {
            if (e.depStore >= seqHead_) {
                // The matching store is still in flight: wait for
                // its data, then forward (no d-cache access).
                if (!producerDone(e.depStore))
                    continue;
                lat += 1;
                ++loadForwards_;
            } else if (dcache_) {
                lat += dcache_->accessAt(e.instr.memAddr,
                                         AccessType::Load, now_)
                           .latency;
            }
            ++mem_used;
        } else if (op == OpClass::Store) {
            ++mem_used;
        } else if (op == OpClass::FpAlu) {
            ++fp_used;
        } else if (op == OpClass::IntMul) {
            ++mul_used;
        }

        e.issued = true;
        e.completeAt = now_ + lat;
        ++issued;
    }
    issuesThisCycle_ = issued;
}

void
OooCore::doDispatch()
{
    unsigned n = 0;
    while (n < params_.fetchWidth &&
           fetchQueueHead_ < fetchQueue_.size()) {
        if (seqTail_ - seqHead_ >=
            static_cast<std::int64_t>(params_.robSize)) {
            ++robFullStalls_;
            break;
        }
        FetchedInstr &f = fetchQueue_[fetchQueueHead_];
        if (isMem(f.instr.op) && lsqOccupancy_ >= params_.lsqSize)
            break;

        RobEntry &e = rob(seqTail_);
        e.instr = f.instr;
        e.pred = f.pred;
        e.predMade = f.predMade;
        e.mispredict = f.mispredict;
        e.issued = false;
        e.completeAt = 0;
        e.prod1 = f.instr.src1 ? lastWriter_[f.instr.src1] : -1;
        e.prod2 = f.instr.src2 ? lastWriter_[f.instr.src2] : -1;
        e.depStore = -1;

        if (f.instr.op == OpClass::Load) {
            const Addr word = f.instr.memAddr >> kForwardShift;
            for (auto it = storeSeqs_.rbegin();
                 it != storeSeqs_.rend(); ++it) {
                if (*it < seqHead_)
                    break;
                const RobEntry &s = rob(*it);
                if ((s.instr.memAddr >> kForwardShift) == word) {
                    e.depStore = *it;
                    break;
                }
            }
        } else if (f.instr.op == OpClass::Store) {
            storeSeqs_.push_back(seqTail_);
        }

        if (isMem(f.instr.op))
            ++lsqOccupancy_;
        if (f.instr.dest != 0)
            lastWriter_[f.instr.dest] = seqTail_;
        if (f.mispredict)
            stallBranchSeq_ = seqTail_;

        ++seqTail_;
        ++fetchQueueHead_;
        ++n;
    }
    if (fetchQueueHead_ == fetchQueue_.size()) {
        fetchQueue_.clear();
        fetchQueueHead_ = 0;
    }
    // Garbage-collect committed stores from the forwarding list.
    while (!storeSeqs_.empty() && storeSeqs_.front() < seqHead_)
        storeSeqs_.pop_front();
    dispatchesThisCycle_ = n;
}

void
OooCore::doFetch(InstrStream &stream)
{
    fetchesThisCycle_ = 0;

    // Branch-redirect bookkeeping: once the offending control
    // instruction resolves, fetch restarts after the penalty.
    if (haltedForBranch_) {
        if (stallBranchSeq_ >= 0) {
            const RobEntry &e = rob(stallBranchSeq_);
            const bool resolved =
                stallBranchSeq_ < seqHead_ ||
                (e.issued && e.completeAt <= now_);
            if (resolved) {
                const Cycles resolve_at =
                    stallBranchSeq_ < seqHead_ ? now_ : e.completeAt;
                const Cycles resume =
                    resolve_at + params_.redirectPenalty;
                if (resume > fetchResumeAt_) {
                    fetchResumeAt_ = resume;
                    fetchStallIsIcache_ = false;
                }
                branchStallCycles_ +=
                    resume > branchStallFrom_
                        ? resume - branchStallFrom_
                        : 0;
                haltedForBranch_ = false;
                stallBranchSeq_ = -1;
            } else {
                return;
            }
        } else {
            return; // mispredicted instr still awaiting dispatch
        }
    }

    if (now_ < fetchResumeAt_)
        return;

    if (streamDone_ && !instrPending_)
        return;

    while (fetchesThisCycle_ < params_.fetchWidth) {
        if (fetchQueue_.size() - fetchQueueHead_ >=
            params_.fetchQueueSize)
            break;

        Instr instr;
        if (instrPending_) {
            instr = pendingInstr_;
            instrPending_ = false;
        } else if (!stream.next(instr)) {
            streamDone_ = true;
            break;
        }

        // One i-cache access per block the fetch group touches.
        const Addr block = instr.pc / fetchBlockBytes_;
        if (block != lastFetchBlock_) {
            AccessResult r = icache_->accessAt(
                instr.pc, AccessType::InstFetch, now_);
            lastFetchBlock_ = block;
            if (!r.hit) {
                // Fill in progress: stall, keep the instruction.
                pendingInstr_ = instr;
                instrPending_ = true;
                fetchResumeAt_ = now_ + r.latency;
                fetchStallIsIcache_ = true;
                icacheStallCycles_ += r.latency - 1;
                break;
            }
            if (r.latency > 1) {
                // Slow hit: the line is present but not readable
                // yet (a drowsy line's rail recharging). Stall the
                // extra cycles; the kept instruction re-enters
                // without re-accessing the cache, so the wake is
                // charged exactly once.
                pendingInstr_ = instr;
                instrPending_ = true;
                fetchResumeAt_ = now_ + (r.latency - 1);
                fetchStallIsIcache_ = true;
                icacheStallCycles_ += r.latency - 1;
                break;
            }
        }

        FetchedInstr f;
        f.instr = instr;
        if (isControl(instr.op)) {
            f.pred = bpred_.predict(instr.pc, instr.op);
            f.predMade = true;
            const Addr actual_target = instr.nextPc;
            bpred_.noteResolved(f.pred, instr.taken, actual_target);
            f.mispredict = BranchPredictor::mispredicted(
                f.pred, instr.taken, actual_target);
            bpred_.update(instr.pc, instr.op, instr.taken,
                          actual_target);
        }
        fetchQueue_.push_back(f);
        ++fetchesThisCycle_;

        if (isControl(instr.op)) {
            if (f.mispredict) {
                ++mispredicts_;
                haltedForBranch_ = true;
                stallBranchSeq_ = -1; // set at dispatch
                branchStallFrom_ = now_;
                lastFetchBlock_ = kInvalidAddr;
                break;
            }
            if (instr.taken) {
                // Taken-branch fetch break; resume at the target
                // next cycle.
                lastFetchBlock_ = kInvalidAddr;
                break;
            }
        }
    }
}

Cycles
OooCore::nextEventCycle() const
{
    Cycles next = kNoEvent;
    if (fetchResumeAt_ > now_)
        next = std::min(next, fetchResumeAt_);
    for (std::int64_t seq = seqHead_; seq < seqTail_; ++seq) {
        const RobEntry &e =
            robBuf_[static_cast<size_t>(seq) % robBuf_.size()];
        if (e.issued && e.completeAt > now_)
            next = std::min(next, e.completeAt);
    }
    return next;
}

CoreStats
OooCore::run(InstrStream &stream, InstCount maxInstrs)
{
    const InstCount target = committedInstrs_.value() + maxInstrs;
    commitBudget_ = maxInstrs;

    while (true) {
        doCommit();
        if (committedInstrs_.value() >= target)
            break;
        doIssue();
        doDispatch();
        doFetch(stream);

        const bool drained = streamDone_ && !instrPending_ &&
                             fetchQueue_.empty() &&
                             seqHead_ == seqTail_;
        if (drained)
            break;

        Cycles delta = 1;
        const bool idle = commitsThisCycle_ == 0 &&
                          issuesThisCycle_ == 0 &&
                          dispatchesThisCycle_ == 0 &&
                          fetchesThisCycle_ == 0;
        if (idle) {
            const Cycles next = nextEventCycle();
            drisim_assert(next != kNoEvent,
                          "core deadlocked at cycle %llu",
                          static_cast<unsigned long long>(now_));
            if (next > now_)
                delta = next - now_;
        }
        now_ += delta;
        integrate(delta);
    }

    simCycles_.set(now_);
    return stats();
}

} // namespace drisim
