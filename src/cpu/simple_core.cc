/**
 * @file
 * Fast fetch-driven timing estimator used by the parameter search.
 */

#include "cpu/simple_core.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace drisim
{

namespace
{

/** Retirements buffered between resize-controller notifications. */
constexpr InstCount kRetireBatch = 64;

} // namespace

SimpleCore::SimpleCore(const SimpleCoreParams &params,
                       MemoryLevel *icache)
    : params_(params), icache_(icache)
{
    drisim_assert(params.baseCpi > 0.0, "base CPI must be positive");
}

void
SimpleCore::flushRetireBatch()
{
    if (retireBatch_ > 0)
        retire(retireBatch_);
    retireBatch_ = 0;
}

CoreStats
SimpleCore::run(InstrStream &stream, InstCount maxInstrs)
{
    const Cycles hit_latency = 1;
    InstCount remaining = maxInstrs;

    Instr instr;
    while (remaining > 0 && stream.next(instr)) {
        const Addr block = instr.pc / params_.fetchBlockBytes;
        if (block != lastBlock_) {
            // The fast model has no cycle-accurate clock; its
            // deterministic approximation (retired instructions
            // plus accumulated stall) orders fetches well enough
            // for the MSHR/DRAM models and checkpoints cleanly.
            AccessResult r = icache_->accessAt(
                instr.pc, AccessType::InstFetch,
                instrs_ + missStall_);
            // Anything beyond the single-cycle hit is fetch stall:
            // a fill, or a slow hit (a drowsy line's wake-up).
            if (r.latency > hit_latency)
                missStall_ += r.latency - hit_latency;
            lastBlock_ = block;
        }
        if (isControl(instr.op) && instr.taken)
            lastBlock_ = kInvalidAddr;

        ++instrs_;
        --remaining;
        ++retireBatch_;
        if (retireBatch_ == kRetireBatch) {
            if (hasResizables()) {
                // Approximate cycle integration at base CPI.
                const double step =
                    params_.baseCpi *
                    static_cast<double>(retireBatch_);
                const Cycles step_cycles =
                    static_cast<Cycles>(std::llround(step));
                retire(retireBatch_);
                integrate(step_cycles);
            }
            retireBatch_ = 0;
        }
    }
    if (remaining > 0)
        streamDone_ = true;
    // Partial batches reach the controllers at quantum boundaries
    // (matching the historical end-of-run flush). Their cycle share
    // is deliberately NOT integrated: the fast model's time is an
    // estimate and the tail is < 64 * baseCpi cycles per run()
    // call, while the retirement count must be exact for the
    // sense-interval arithmetic. The detailed model integrates
    // exactly; golden numbers pin this behaviour.
    flushRetireBatch();
    return stats();
}

CoreStats
SimpleCore::stats() const
{
    CoreStats s;
    s.instructions = instrs_;
    s.cycles = static_cast<Cycles>(std::llround(
        params_.baseCpi * static_cast<double>(instrs_) +
        params_.missOverlap * static_cast<double>(missStall_)));
    return s;
}

} // namespace drisim
