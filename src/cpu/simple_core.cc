/**
 * @file
 * Fast fetch-driven timing estimator used by the parameter search.
 */

#include "cpu/simple_core.hh"

#include <cmath>

#include "util/logging.hh"

namespace drisim
{

SimpleCore::SimpleCore(const SimpleCoreParams &params,
                       MemoryLevel *icache)
    : params_(params), icache_(icache)
{
    drisim_assert(params.baseCpi > 0.0, "base CPI must be positive");
}

CoreStats
SimpleCore::run(InstrStream &stream, InstCount maxInstrs)
{
    InstCount instrs = 0;
    Addr last_block = kInvalidAddr;
    const Cycles hit_latency = 1;
    InstCount retire_batch = 0;
    double active_cycles = 0.0; // integrated as estimated cycles

    Instr instr;
    while (instrs < maxInstrs && stream.next(instr)) {
        const Addr block = instr.pc / params_.fetchBlockBytes;
        if (block != last_block) {
            AccessResult r =
                icache_->access(instr.pc, AccessType::InstFetch);
            if (!r.hit)
                missStall_ += r.latency - hit_latency;
            last_block = block;
        }
        if (isControl(instr.op) && instr.taken)
            last_block = kInvalidAddr;

        ++instrs;
        ++retire_batch;
        if (retire_batch == 64) {
            if (!resizables_.empty()) {
                // Approximate cycle integration at base CPI.
                const double step =
                    params_.baseCpi * static_cast<double>(retire_batch);
                active_cycles += step;
                const Cycles step_cycles =
                    static_cast<Cycles>(std::llround(step));
                for (ResizableCache *rc : resizables_) {
                    rc->retireInstructions(retire_batch);
                    rc->integrateCycles(step_cycles);
                }
            }
            retire_batch = 0;
        }
    }
    if (retire_batch > 0)
        for (ResizableCache *rc : resizables_)
            rc->retireInstructions(retire_batch);

    CoreStats s;
    s.instructions = instrs;
    s.cycles = static_cast<Cycles>(std::llround(
        params_.baseCpi * static_cast<double>(instrs) +
        params_.missOverlap * static_cast<double>(missStall_)));
    return s;
}

} // namespace drisim
