/**
 * @file
 * SMARTS/SimPoint-style systematic phase sampling.
 *
 * The detailed core runs only a window at the head of each sampling
 * period; the rest of the period is fast-forwarded with the
 * functional model (block-granularity i-cache accesses over the same
 * instruction stream), so cache and leakage-policy state stay warm
 * and the DRI/decay/drowsy interval machinery keeps ticking via the
 * core's retire/cycle broadcast. The d-cache is functionally warmed
 * too (one access per Load/Store), SMARTS-style, so detailed windows
 * re-enter with live cache contents instead of paying stale-miss
 * penalties. Each skip's time is extrapolated from the CPI of the
 * detailed window that heads its own period, which tracks program
 * phases that a cumulative average would smear.
 *
 * Cache *behaviour* stays exact; only time is approximated, and only
 * for the fast-forwarded fraction. The measured error bounds are
 * pinned by tests/sampling_test.cc and documented in
 * docs/REPRODUCTION.md ("Fast mode").
 */

#ifndef DRISIM_SIM_SAMPLING_HH
#define DRISIM_SIM_SAMPLING_HH

#include "cpu/core.hh"
#include "mem/memory.hh"
#include "util/types.hh"

namespace drisim::sim
{

/** Systematic-sampling knobs (config key `sample.*`, flag --sample). */
struct SamplingConfig
{
    /** Off by default: detailed simulation end to end. */
    bool enabled = false;

    /** Detailed instructions at the head of each period. */
    InstCount detailedWindow = 200 * 1000;

    /** Period length (window + fast-forward), instructions. */
    InstCount period = 1000 * 1000;
};

/**
 * Run @p core over @p stream for up to @p maxInstrs instructions
 * under systematic sampling.
 *
 * @param core            the detailed model (resumable; sinks stay
 *                        attached and keep receiving broadcasts
 *                        during fast-forward)
 * @param icache          the L1 i-cache the functional model touches
 * @param dcache          the L1 d-cache warmed on Load/Store (may be
 *                        null for i-side-only models)
 * @param stream          the shared instruction stream
 * @param maxInstrs       total instructions (detailed + skipped)
 * @param config          sampling shape (config.enabled assumed)
 * @param fetchBlockBytes fetch-group granularity (i-cache line)
 * @return total instructions and estimated cycles
 */
CoreStats runSampled(Core &core, MemoryLevel *icache,
                     MemoryLevel *dcache, InstrStream &stream,
                     InstCount maxInstrs, const SamplingConfig &config,
                     unsigned fetchBlockBytes);

} // namespace drisim::sim

#endif // DRISIM_SIM_SAMPLING_HH
