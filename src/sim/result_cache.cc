/**
 * @file
 * Canonical config hashing and the JSON result sidecar.
 */

#include "sim/result_cache.hh"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "sim/checkpoint.hh"

namespace drisim::sim
{

// ---------------------------------------------------------------
// ConfigKey
// ---------------------------------------------------------------

ConfigKey &
ConfigKey::add(std::string_view key, std::string_view value)
{
    pairs_.emplace_back(std::string(key), std::string(value));
    return *this;
}

ConfigKey &
ConfigKey::add(std::string_view key, const char *value)
{
    return add(key, std::string_view(value));
}

ConfigKey &
ConfigKey::add(std::string_view key, std::uint64_t value)
{
    return add(key, std::string_view(std::to_string(value)));
}

ConfigKey &
ConfigKey::add(std::string_view key, bool value)
{
    return add(key, std::string_view(value ? "1" : "0"));
}

ConfigKey &
ConfigKey::addDouble(std::string_view key, double value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    return add(key, std::string_view(buf));
}

std::string
ConfigKey::canonical() const
{
    auto sorted = pairs_;
    std::sort(sorted.begin(), sorted.end());
    std::string out;
    for (const auto &[k, v] : sorted) {
        out += k;
        out += '=';
        out += v;
        out += ';';
    }
    return out;
}

std::string
ConfigKey::hashHex() const
{
    return toHex64(fnv1a64(canonical()));
}

// ---------------------------------------------------------------
// Minimal JSON reader — only the subset the sidecar uses (objects,
// strings, integers). Any deviation fails the whole parse and the
// cache starts empty: recompute, never serve garbage.
// ---------------------------------------------------------------

namespace
{

struct JsonParser
{
    const std::string &s;
    std::size_t pos = 0;
    bool ok = true;

    void skipWs()
    {
        while (pos < s.size() &&
               (s[pos] == ' ' || s[pos] == '\t' || s[pos] == '\n' ||
                s[pos] == '\r'))
            ++pos;
    }

    bool consume(char c)
    {
        skipWs();
        if (pos < s.size() && s[pos] == c) {
            ++pos;
            return true;
        }
        ok = false;
        return false;
    }

    bool peek(char c)
    {
        skipWs();
        return pos < s.size() && s[pos] == c;
    }

    std::string parseString()
    {
        std::string out;
        if (!consume('"'))
            return out;
        while (pos < s.size() && s[pos] != '"') {
            char c = s[pos++];
            if (c == '\\') {
                if (pos >= s.size()) {
                    ok = false;
                    return out;
                }
                const char e = s[pos++];
                switch (e) {
                  case '"': out += '"'; break;
                  case '\\': out += '\\'; break;
                  case '/': out += '/'; break;
                  case 'n': out += '\n'; break;
                  case 't': out += '\t'; break;
                  case 'r': out += '\r'; break;
                  case 'b': out += '\b'; break;
                  case 'f': out += '\f'; break;
                  default: ok = false; return out;
                }
            } else {
                out += c;
            }
        }
        if (pos >= s.size()) {
            ok = false;
            return out;
        }
        ++pos; // closing quote
        return out;
    }

    std::uint64_t parseUInt()
    {
        skipWs();
        std::uint64_t v = 0;
        bool any = false;
        while (pos < s.size() && s[pos] >= '0' && s[pos] <= '9') {
            v = v * 10 + static_cast<std::uint64_t>(s[pos] - '0');
            ++pos;
            any = true;
        }
        if (!any)
            ok = false;
        return v;
    }

    /** Parse {"k":"v",...} of string values. */
    std::map<std::string, std::string> parseStringMap()
    {
        std::map<std::string, std::string> out;
        if (!consume('{'))
            return out;
        if (peek('}')) {
            consume('}');
            return out;
        }
        do {
            std::string k = parseString();
            if (!ok || !consume(':'))
                return out;
            std::string v = parseString();
            if (!ok)
                return out;
            out[std::move(k)] = std::move(v);
        } while (ok && consume(','));
        // consume(',') failing set ok=false; the char must be '}'.
        ok = true;
        if (!consume('}'))
            ok = false;
        return out;
    }
};

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default: out += c;
        }
    }
    return out;
}

} // namespace

// ---------------------------------------------------------------
// ResultCache
// ---------------------------------------------------------------

ResultCache::ResultCache(std::string path) : path_(std::move(path)) {}

ResultCache::~ResultCache()
{
    try {
        flush();
    } catch (...) {
        // A failed final flush only loses memoization, not results.
    }
}

void
ResultCache::ensureLoadedLocked()
{
    if (loaded_)
        return;
    loaded_ = true;
    loadSidecarLocked();
}

void
ResultCache::loadSidecarLocked()
{
    std::ifstream in(path_, std::ios::binary);
    if (!in)
        return; // no sidecar yet: start empty
    const std::string contents((std::istreambuf_iterator<char>(in)),
                               std::istreambuf_iterator<char>());

    // {"version":1,"entries":{hash:{"config":c,"fields":{...}},...}}
    JsonParser p{contents};
    std::map<std::string, Entry> parsed;
    if (!p.consume('{'))
        return;
    if (p.parseString() != "version" || !p.ok || !p.consume(':'))
        return;
    if (p.parseUInt() != 1 || !p.ok)
        return; // unknown schema: recompute everything
    if (!p.consume(',') || p.parseString() != "entries" || !p.ok ||
        !p.consume(':') || !p.consume('{'))
        return;
    if (!p.peek('}')) {
        do {
            std::string hash = p.parseString();
            if (!p.ok || !p.consume(':') || !p.consume('{'))
                return;
            Entry e;
            if (p.parseString() != "config" || !p.ok ||
                !p.consume(':'))
                return;
            e.config = p.parseString();
            if (!p.ok || !p.consume(',') ||
                p.parseString() != "fields" || !p.ok ||
                !p.consume(':'))
                return;
            e.fields = p.parseStringMap();
            if (!p.ok || !p.consume('}'))
                return;
            parsed[std::move(hash)] = std::move(e);
        } while (p.ok && p.consume(','));
        p.ok = true;
    }
    if (!p.consume('}') || !p.consume('}'))
        return;

    entries_ = std::move(parsed);
}

bool
ResultCache::lookup(const ConfigKey &key, Fields &out)
{
    const std::string canon = key.canonical();
    const std::string hash = toHex64(fnv1a64(canon));

    std::lock_guard<std::mutex> lock(mu_);
    ensureLoadedLocked();
    const auto it = entries_.find(hash);
    if (it == entries_.end() || it->second.config != canon) {
        ++counters_.misses;
        return false;
    }
    out = it->second.fields;
    ++counters_.hits;
    return true;
}

void
ResultCache::store(const ConfigKey &key, const Fields &fields)
{
    const std::string canon = key.canonical();
    const std::string hash = toHex64(fnv1a64(canon));

    std::lock_guard<std::mutex> lock(mu_);
    ensureLoadedLocked();
    Entry &e = entries_[hash];
    e.config = canon;
    e.fields = fields;
    dirty_ = true;
    ++counters_.stores;
}

void
ResultCache::flush()
{
    std::lock_guard<std::mutex> lock(mu_);
    if (!dirty_)
        return;

    std::string out = "{\"version\":1,\"entries\":{";
    bool firstEntry = true;
    for (const auto &[hash, e] : entries_) {
        if (!firstEntry)
            out += ',';
        firstEntry = false;
        out += '"';
        out += jsonEscape(hash);
        out += "\":{\"config\":\"";
        out += jsonEscape(e.config);
        out += "\",\"fields\":{";
        bool firstField = true;
        for (const auto &[k, v] : e.fields) {
            if (!firstField)
                out += ',';
            firstField = false;
            out += '"';
            out += jsonEscape(k);
            out += "\":\"";
            out += jsonEscape(v);
            out += '"';
        }
        out += "}}";
    }
    out += "}}";

    const std::string tmp = path_ + ".tmp";
    {
        std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
        if (!f)
            return; // persist failure loses memoization only
        f.write(out.data(), static_cast<std::streamsize>(out.size()));
        if (!f)
            return;
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path_, ec);
    if (!ec)
        dirty_ = false;
}

ResultCache::Counters
ResultCache::counters() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return counters_;
}

} // namespace drisim::sim
