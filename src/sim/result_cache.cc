/**
 * @file
 * Canonical config hashing and the append-only newline-delimited
 * result sidecar.
 */

#include "sim/result_cache.hh"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "sim/checkpoint.hh"
#include "util/json.hh"

namespace drisim::sim
{

// ---------------------------------------------------------------
// ConfigKey
// ---------------------------------------------------------------

ConfigKey &
ConfigKey::add(std::string_view key, std::string_view value)
{
    pairs_.emplace_back(std::string(key), std::string(value));
    return *this;
}

ConfigKey &
ConfigKey::add(std::string_view key, const char *value)
{
    return add(key, std::string_view(value));
}

ConfigKey &
ConfigKey::add(std::string_view key, std::uint64_t value)
{
    return add(key, std::string_view(std::to_string(value)));
}

ConfigKey &
ConfigKey::add(std::string_view key, bool value)
{
    return add(key, std::string_view(value ? "1" : "0"));
}

ConfigKey &
ConfigKey::addDouble(std::string_view key, double value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    return add(key, std::string_view(buf));
}

std::string
ConfigKey::canonical() const
{
    auto sorted = pairs_;
    std::sort(sorted.begin(), sorted.end());
    std::string out;
    for (const auto &[k, v] : sorted) {
        out += k;
        out += '=';
        out += v;
        out += ';';
    }
    return out;
}

std::uint64_t
ConfigKey::hash() const
{
    return fnv1a64(canonical());
}

std::string
ConfigKey::hashHex() const
{
    return toHex64(hash());
}

// ---------------------------------------------------------------
// ResultCache
// ---------------------------------------------------------------

ResultCache::ResultCache(std::string path) : path_(std::move(path)) {}

ResultCache::~ResultCache()
{
    try {
        flush();
    } catch (...) {
        // A failed final flush only loses memoization, not results.
    }
}

void
ResultCache::ensureLoadedLocked()
{
    if (loaded_)
        return;
    loaded_ = true;
    loadSidecarLocked();
}

void
ResultCache::loadSidecarLocked()
{
    std::ifstream in(path_, std::ios::binary);
    if (!in)
        return; // no sidecar yet: start empty
    const std::string contents((std::istreambuf_iterator<char>(in)),
                               std::istreambuf_iterator<char>());

    // One {"hash":h,"config":c,"fields":{...}} record per line. A
    // line that fails to parse — torn tail of a killed writer,
    // hand-edited junk — is skipped on its own; every other record
    // survives. A trailing chunk without '\n' is by definition an
    // incomplete append and is never parsed.
    std::size_t start = 0;
    while (start < contents.size()) {
        const std::size_t nl = contents.find('\n', start);
        if (nl == std::string::npos)
            break; // torn final append
        const std::string line = contents.substr(start, nl - start);
        start = nl + 1;
        if (line.empty())
            continue;

        JsonParser p{line};
        if (!p.consume('{') || p.parseString() != "hash" || !p.ok ||
            !p.consume(':'))
            continue;
        std::string hash = p.parseString();
        if (!p.ok || !p.consume(',') ||
            p.parseString() != "config" || !p.ok || !p.consume(':'))
            continue;
        Entry e;
        e.config = p.parseString();
        if (!p.ok || !p.consume(',') ||
            p.parseString() != "fields" || !p.ok || !p.consume(':'))
            continue;
        e.fields = p.parseStringMap();
        if (!p.ok || !p.consume('}') || !p.ok)
            continue;
        p.skipWs();
        if (p.pos != line.size())
            continue; // trailing junk: treat the line as torn
        entries_[std::move(hash)] = std::move(e);
    }
}

bool
ResultCache::lookup(const ConfigKey &key, Fields &out)
{
    const std::string canon = key.canonical();
    const std::string hash = toHex64(fnv1a64(canon));

    std::lock_guard<std::mutex> lock(mu_);
    ensureLoadedLocked();
    const auto it = entries_.find(hash);
    if (it == entries_.end() || it->second.config != canon) {
        ++counters_.misses;
        return false;
    }
    out = it->second.fields;
    ++counters_.hits;
    return true;
}

void
ResultCache::store(const ConfigKey &key, const Fields &fields)
{
    const std::string canon = key.canonical();
    const std::string hash = toHex64(fnv1a64(canon));

    std::lock_guard<std::mutex> lock(mu_);
    ensureLoadedLocked();
    Entry &e = entries_[hash];
    e.config = canon;
    e.fields = fields;
    pending_.push_back(hash);
    ++counters_.stores;
}

std::string
ResultCache::renderRecord(const std::string &hash,
                          const Entry &e) const
{
    std::string out = "{\"hash\":\"";
    out += jsonEscape(hash);
    out += "\",\"config\":\"";
    out += jsonEscape(e.config);
    out += "\",\"fields\":{";
    bool first = true;
    for (const auto &[k, v] : e.fields) {
        if (!first)
            out += ',';
        first = false;
        out += '"';
        out += jsonEscape(k);
        out += "\":\"";
        out += jsonEscape(v);
        out += '"';
    }
    out += "}}\n";
    return out;
}

void
ResultCache::flush()
{
    std::lock_guard<std::mutex> lock(mu_);
    if (pending_.empty())
        return;

    std::string out;
    for (const std::string &hash : pending_) {
        const auto it = entries_.find(hash);
        if (it != entries_.end())
            out += renderRecord(hash, it->second);
    }

    // One O_APPEND write of whole lines: POSIX appends land wholly
    // at EOF, so concurrent flushing processes (sharded farm runs
    // on one sidecar) interleave records, never bytes of a record.
    const int fd = ::open(path_.c_str(),
                          O_RDWR | O_CREAT | O_APPEND, 0644);
    if (fd < 0)
        return; // persist failure loses memoization only
    // A tail without '\n' (torn write of a killed process, hand
    // edits) would glue our first record onto the junk line and
    // lose it too; a leading newline quarantines the junk to its
    // own (skipped) line. Cooperating writers always end in '\n',
    // so a race here at worst adds a blank line the loader skips.
    struct stat st{};
    if (::fstat(fd, &st) == 0 && st.st_size > 0) {
        char last = '\n';
        if (::pread(fd, &last, 1, st.st_size - 1) == 1 &&
            last != '\n')
            out.insert(out.begin(), '\n');
    }
    std::size_t done = 0;
    bool failed = false;
    while (done < out.size()) {
        const ssize_t n =
            ::write(fd, out.data() + done, out.size() - done);
        if (n <= 0) {
            failed = true;
            break;
        }
        done += static_cast<std::size_t>(n);
    }
    ::close(fd);
    if (!failed)
        pending_.clear();
}

void
ResultCache::reload()
{
    flush();
    std::lock_guard<std::mutex> lock(mu_);
    entries_.clear();
    loaded_ = true;
    loadSidecarLocked();
}

bool
ResultCache::lookupHash(const std::string &hashHex,
                        std::string &config, Fields &fields)
{
    std::lock_guard<std::mutex> lock(mu_);
    ensureLoadedLocked();
    const auto it = entries_.find(hashHex);
    if (it == entries_.end())
        return false;
    config = it->second.config;
    fields = it->second.fields;
    return true;
}

std::size_t
ResultCache::size()
{
    std::lock_guard<std::mutex> lock(mu_);
    ensureLoadedLocked();
    return entries_.size();
}

ResultCache::Counters
ResultCache::counters() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return counters_;
}

} // namespace drisim::sim
