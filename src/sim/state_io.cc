/**
 * @file
 * snapshotTo()/restoreFrom() implementations for every serializable
 * component, collected in the sim layer: the components declare the
 * pair in their headers (against forward-declared writer/reader
 * types), and this translation unit supplies the encodings, so the
 * serialization format lives in one place next to its primitives
 * (sim/checkpoint.hh).
 *
 * Conventions: geometry/config is NOT serialized — snapshots restore
 * into an identically-configured twin, and the store key plus the
 * typed tags catch mismatches. Sizes that the config implies (table
 * lengths, set counts) are written anyway and verified on restore.
 */

#include <cstring>

#include "cpu/branch_pred.hh"
#include "cpu/ooo_core.hh"
#include "cpu/simple_core.hh"
#include "mem/cache.hh"
#include "mem/directory.hh"
#include "mem/hierarchy.hh"
#include "mem/memory.hh"
#include "mem/resizable_cache.hh"
#include "mem/tag_store.hh"
#include "policy/decay_policy.hh"
#include "policy/dri_policy.hh"
#include "policy/drowsy_policy.hh"
#include "policy/policy_cache.hh"
#include "sim/checkpoint.hh"
#include "stats/stats.hh"
#include "util/random.hh"
#include "workload/generator.hh"

namespace drisim
{

namespace
{

using sim::CheckpointError;
using sim::CheckpointReader;
using sim::CheckpointWriter;

void
expectU64(CheckpointReader &r, std::uint64_t want, const char *what)
{
    const std::uint64_t got = r.getU64();
    if (got != want)
        throw CheckpointError(std::string(what) + " mismatch");
}

template <typename Byte>
void
putByteVector(CheckpointWriter &w, const std::vector<Byte> &v)
{
    static_assert(sizeof(Byte) == 1);
    w.putString(std::string_view(
        reinterpret_cast<const char *>(v.data()), v.size()));
}

template <typename Byte>
void
getByteVector(CheckpointReader &r, std::vector<Byte> &v,
              const char *what)
{
    static_assert(sizeof(Byte) == 1);
    const std::string s = r.getString();
    if (s.size() != v.size())
        throw CheckpointError(std::string(what) + " size mismatch");
    std::memcpy(v.data(), s.data(), s.size());
}

void
putInstr(CheckpointWriter &w, const Instr &i)
{
    w.putU64(i.pc);
    w.putU64(static_cast<std::uint64_t>(i.op));
    w.putU64(i.dest);
    w.putU64(i.src1);
    w.putU64(i.src2);
    w.putBool(i.taken);
    w.putU64(i.nextPc);
    w.putU64(i.memAddr);
}

void
getInstr(CheckpointReader &r, Instr &i)
{
    i.pc = r.getU64();
    i.op = static_cast<OpClass>(r.getU64());
    i.dest = static_cast<std::uint8_t>(r.getU64());
    i.src1 = static_cast<std::uint8_t>(r.getU64());
    i.src2 = static_cast<std::uint8_t>(r.getU64());
    i.taken = r.getBool();
    i.nextPc = r.getU64();
    i.memAddr = r.getU64();
}

} // namespace

// ---------------------------------------------------------------
// util/random
// ---------------------------------------------------------------

void
Rng::snapshotTo(sim::CheckpointWriter &w) const
{
    for (const std::uint64_t s : s_)
        w.putU64(s);
}

void
Rng::restoreFrom(sim::CheckpointReader &r)
{
    for (std::uint64_t &s : s_)
        s = r.getU64();
}

// ---------------------------------------------------------------
// workload/generator
// ---------------------------------------------------------------

void
TraceGenerator::snapshotTo(sim::CheckpointWriter &w) const
{
    w.beginSection("gen");
    rng_.snapshotTo(w);
    w.putU64(phaseIdx_);
    w.putU64(emittedInPhase_);
    w.putU64(produced_);
    w.putU64(stack_.size());
    for (const Frame &f : stack_) {
        w.putI64(f.func);
        w.putI64(f.block);
        w.putU64(f.instr);
        w.putU64(f.latchRemaining.size());
        for (const std::uint64_t rem : f.latchRemaining)
            w.putU64(rem);
    }
    w.putU64(destCounter_);
    w.putU64(fpDestCounter_);
    for (const std::uint8_t d : recentDest_)
        w.putU64(d);
    w.putU64(recentIdx_);
    w.putU64(seqLoadOff_);
    w.putU64(seqStoreOff_);
    w.putU64(seqSharedOff_);
    w.endSection();
}

void
TraceGenerator::restoreFrom(sim::CheckpointReader &r)
{
    r.beginSection("gen");
    rng_.restoreFrom(r);
    phaseIdx_ = r.getU64();
    emittedInPhase_ = r.getU64();
    produced_ = r.getU64();
    stack_.clear();
    const std::uint64_t frames = r.getU64();
    for (std::uint64_t k = 0; k < frames; ++k) {
        Frame f;
        f.func = static_cast<int>(r.getI64());
        f.block = static_cast<int>(r.getI64());
        f.instr = static_cast<unsigned>(r.getU64());
        f.latchRemaining.resize(r.getU64());
        for (std::uint64_t &rem : f.latchRemaining)
            rem = r.getU64();
        stack_.push_back(std::move(f));
    }
    destCounter_ = static_cast<unsigned>(r.getU64());
    fpDestCounter_ = static_cast<unsigned>(r.getU64());
    for (std::uint8_t &d : recentDest_)
        d = static_cast<std::uint8_t>(r.getU64());
    recentIdx_ = static_cast<unsigned>(r.getU64());
    seqLoadOff_ = r.getU64();
    seqStoreOff_ = r.getU64();
    seqSharedOff_ = r.getU64();
    r.endSection();
}

} // namespace drisim

// ---------------------------------------------------------------
// stats
// ---------------------------------------------------------------

namespace drisim::stats
{

void
Scalar::snapshotTo(sim::CheckpointWriter &w) const
{
    w.putU64(value_);
}

void
Scalar::restoreFrom(sim::CheckpointReader &r)
{
    value_ = r.getU64();
}

void
Average::snapshotTo(sim::CheckpointWriter &w) const
{
    w.putF64(sum_);
    w.putU64(count_);
}

void
Average::restoreFrom(sim::CheckpointReader &r)
{
    sum_ = r.getF64();
    count_ = r.getU64();
}

void
Distribution::snapshotTo(sim::CheckpointWriter &w) const
{
    w.putU64(buckets_.size());
    for (const std::uint64_t b : buckets_)
        w.putU64(b);
    w.putU64(underflow_);
    w.putU64(overflow_);
    w.putU64(samples_);
    w.putF64(sum_);
}

void
Distribution::restoreFrom(sim::CheckpointReader &r)
{
    const std::uint64_t n = r.getU64();
    if (n != buckets_.size())
        throw sim::CheckpointError("distribution bucket mismatch");
    for (std::uint64_t &b : buckets_)
        b = r.getU64();
    underflow_ = r.getU64();
    overflow_ = r.getU64();
    samples_ = r.getU64();
    sum_ = r.getF64();
}

void
StatGroup::snapshotTo(sim::CheckpointWriter &w) const
{
    w.beginSection(name_);
    for (const StatBase *s : stats_)
        s->snapshotTo(w);
    for (const StatGroup *c : children_)
        c->snapshotTo(w);
    w.endSection();
}

void
StatGroup::restoreFrom(sim::CheckpointReader &r)
{
    r.beginSection(name_);
    for (StatBase *s : stats_)
        s->restoreFrom(r);
    for (StatGroup *c : children_)
        c->restoreFrom(r);
    r.endSection();
}

} // namespace drisim::stats

namespace drisim
{

// ---------------------------------------------------------------
// mem/tag_store
// ---------------------------------------------------------------

namespace
{

/**
 * Layout magic leading every v3 tag-store stream. v1/v2 streams
 * started with numSets_ (a small power of two), so a v3 reader that
 * opens an old stream sees a wild mismatch here and reports a
 * version error instead of silently mis-restoring per-block
 * coherence state.
 */
constexpr std::uint64_t kTagStoreLayoutV3 = 0x6472'6973'2d76'3303ULL;

} // namespace

void
TagStore::snapshotTo(sim::CheckpointWriter &w) const
{
    w.beginSection("tags");
    w.putU64(kTagStoreLayoutV3);
    w.putU64(numSets_);
    w.putU64(assoc_);
    w.putU64(tick_);
    for (const CacheBlk &b : blocks_) {
        w.putU64(b.blockAddr);
        w.putBool(b.valid);
        w.putBool(b.dirty);
        w.putU64(b.lastTouch);
        w.putU64(static_cast<std::uint64_t>(b.cstate));
    }
    w.endSection();
}

void
TagStore::restoreFrom(sim::CheckpointReader &r)
{
    r.beginSection("tags");
    if (r.getU64() != kTagStoreLayoutV3)
        throw CheckpointError(
            "tag-store layout version mismatch (pre-v3 snapshot?)");
    expectU64(r, numSets_, "tag-store sets");
    expectU64(r, assoc_, "tag-store assoc");
    tick_ = r.getU64();
    for (CacheBlk &b : blocks_) {
        b.blockAddr = r.getU64();
        b.valid = r.getBool();
        b.dirty = r.getBool();
        b.lastTouch = r.getU64();
        b.cstate = static_cast<CoherenceState>(r.getU64());
    }
    r.endSection();
}

// ---------------------------------------------------------------
// mem/directory
// ---------------------------------------------------------------

void
SparseDirectory::snapshotTo(sim::CheckpointWriter &w) const
{
    w.beginSection("dir");
    w.putU64(maxEntries_);
    w.putU64(tick_);
    w.putU64(allocations_);
    w.putU64(capacityEvictions_);
    for (const Entry &e : slots_) {
        w.putU64(e.block);
        w.putU64(e.sharers);
        w.putI64(e.owner);
        w.putU64(e.lastTouch);
        w.putBool(e.valid);
    }
    w.endSection();
}

void
SparseDirectory::restoreFrom(sim::CheckpointReader &r)
{
    r.beginSection("dir");
    expectU64(r, maxEntries_, "directory capacity");
    tick_ = r.getU64();
    allocations_ = r.getU64();
    capacityEvictions_ = r.getU64();
    index_.clear();
    for (std::size_t i = 0; i < slots_.size(); ++i) {
        Entry &e = slots_[i];
        e.block = r.getU64();
        e.sharers = r.getU64();
        e.owner = static_cast<int>(r.getI64());
        e.lastTouch = r.getU64();
        e.valid = r.getBool();
        if (e.valid)
            index_.emplace(e.block, i);
    }
    r.endSection();
}

void
CoherenceController::snapshotTo(sim::CheckpointWriter &w) const
{
    w.beginSection("coherence");
    dir_.snapshotTo(w);
    for (const CoreStats &s : stats_) {
        w.putU64(s.invalidationsReceived);
        w.putU64(s.invalidationsCaused);
        w.putU64(s.downgradesReceived);
        w.putU64(s.coherenceWritebacks);
        w.putU64(s.messageCycles);
    }
    w.endSection();
}

void
CoherenceController::restoreFrom(sim::CheckpointReader &r)
{
    r.beginSection("coherence");
    dir_.restoreFrom(r);
    for (CoreStats &s : stats_) {
        s.invalidationsReceived = r.getU64();
        s.invalidationsCaused = r.getU64();
        s.downgradesReceived = r.getU64();
        s.coherenceWritebacks = r.getU64();
        s.messageCycles = r.getU64();
    }
    r.endSection();
}

// ---------------------------------------------------------------
// mem/cache + mem/memory
// ---------------------------------------------------------------

void
Cache::snapshotTo(sim::CheckpointWriter &w) const
{
    w.beginSection("cache");
    store_.snapshotTo(w);
    mshr_.snapshotTo(w);
    group_.snapshotTo(w);
    w.endSection();
}

void
Cache::restoreFrom(sim::CheckpointReader &r)
{
    r.beginSection("cache");
    store_.restoreFrom(r);
    mshr_.restoreFrom(r);
    group_.restoreFrom(r);
    r.endSection();
}

void
MainMemory::snapshotTo(sim::CheckpointWriter &w) const
{
    w.beginSection("mem");
    group_.snapshotTo(w);
    w.endSection();
}

void
MainMemory::restoreFrom(sim::CheckpointReader &r)
{
    r.beginSection("mem");
    group_.restoreFrom(r);
    r.endSection();
}

// ---------------------------------------------------------------
// core/resize_controller + mem/resizable_cache
// ---------------------------------------------------------------

void
ResizeController::snapshotTo(sim::CheckpointWriter &w) const
{
    w.beginSection("controller");
    w.putU64(missCount_);
    w.putU64(instrsIntoInterval_);
    w.putU64(intervals_);
    w.putU64(throttleCounter_);
    w.putU64(freezeRemaining_);
    w.putU64(throttleEvents_);
    w.putU64(static_cast<std::uint64_t>(lastApplied_));
    w.endSection();
}

void
ResizeController::restoreFrom(sim::CheckpointReader &r)
{
    r.beginSection("controller");
    missCount_ = r.getU64();
    instrsIntoInterval_ = r.getU64();
    intervals_ = r.getU64();
    throttleCounter_ = static_cast<unsigned>(r.getU64());
    freezeRemaining_ = static_cast<unsigned>(r.getU64());
    throttleEvents_ = r.getU64();
    lastApplied_ = static_cast<ResizeDecision>(r.getU64());
    r.endSection();
}

void
ResizableCache::snapshotTo(sim::CheckpointWriter &w) const
{
    w.beginSection("rcache");
    w.putU64(mask_.numSets());
    controller_.snapshotTo(w);
    store_.snapshotTo(w);
    mshr_.snapshotTo(w);
    w.putF64(activeSetCycles_);
    w.putU64(integratedCycles_);
    putByteVector(w, coherenceLost_);
    group_.snapshotTo(w);
    w.endSection();
}

void
ResizableCache::restoreFrom(sim::CheckpointReader &r)
{
    r.beginSection("rcache");
    mask_.setNumSets(r.getU64());
    controller_.restoreFrom(r);
    store_.restoreFrom(r);
    mshr_.restoreFrom(r);
    activeSetCycles_ = r.getF64();
    integratedCycles_ = r.getU64();
    getByteVector(r, coherenceLost_, "rcache coherence-lost bits");
    group_.restoreFrom(r);
    r.endSection();
}

// ---------------------------------------------------------------
// mem/hierarchy
// ---------------------------------------------------------------

void
Hierarchy::snapshotTo(sim::CheckpointWriter &w) const
{
    w.beginSection("hier");
    w.putBool(dram_ != nullptr);
    if (dram_)
        dram_->snapshotTo(w);
    else
        mem_->snapshotTo(w);
    w.putBool(driL2_ != nullptr);
    if (driL2_)
        driL2_->snapshotTo(w);
    else
        l2_->snapshotTo(w);
    l1d_->snapshotTo(w);
    w.putBool(convL1i_ != nullptr);
    if (convL1i_)
        convL1i_->snapshotTo(w);
    w.endSection();
}

void
Hierarchy::restoreFrom(sim::CheckpointReader &r)
{
    r.beginSection("hier");
    if (r.getBool() != (dram_ != nullptr))
        throw sim::CheckpointError("memory flavour mismatch");
    if (dram_)
        dram_->restoreFrom(r);
    else
        mem_->restoreFrom(r);
    if (r.getBool() != (driL2_ != nullptr))
        throw sim::CheckpointError("L2 flavour mismatch");
    if (driL2_)
        driL2_->restoreFrom(r);
    else
        l2_->restoreFrom(r);
    l1d_->restoreFrom(r);
    if (r.getBool() != (convL1i_ != nullptr))
        throw sim::CheckpointError("L1I flavour mismatch");
    if (convL1i_)
        convL1i_->restoreFrom(r);
    r.endSection();
}

// ---------------------------------------------------------------
// cpu/branch_pred
// ---------------------------------------------------------------

void
BranchPredictor::snapshotTo(sim::CheckpointWriter &w) const
{
    w.beginSection("bpred");
    putByteVector(w, bimodal_);
    putByteVector(w, gshare_);
    putByteVector(w, chooser_);
    w.putU64(history_);
    w.putU64(btb_.size());
    for (const BtbEntry &e : btb_) {
        w.putU64(e.tag);
        w.putU64(e.target);
        w.putU64(e.lastTouch);
    }
    w.putU64(btbTick_);
    w.putU64(ras_.size());
    for (const Addr a : ras_)
        w.putU64(a);
    w.putU64(rasTop_);
    group_.snapshotTo(w);
    w.endSection();
}

void
BranchPredictor::restoreFrom(sim::CheckpointReader &r)
{
    r.beginSection("bpred");
    getByteVector(r, bimodal_, "bimodal");
    getByteVector(r, gshare_, "gshare");
    getByteVector(r, chooser_, "chooser");
    history_ = r.getU64();
    expectU64(r, btb_.size(), "btb size");
    for (BtbEntry &e : btb_) {
        e.tag = r.getU64();
        e.target = r.getU64();
        e.lastTouch = r.getU64();
    }
    btbTick_ = r.getU64();
    expectU64(r, ras_.size(), "ras size");
    for (Addr &a : ras_)
        a = r.getU64();
    rasTop_ = static_cast<unsigned>(r.getU64());
    group_.restoreFrom(r);
    r.endSection();
}

// ---------------------------------------------------------------
// cpu/simple_core
// ---------------------------------------------------------------

void
SimpleCore::snapshotTo(sim::CheckpointWriter &w) const
{
    w.beginSection("simple_core");
    w.putU64(missStall_);
    w.putU64(instrs_);
    w.putU64(lastBlock_);
    w.putU64(retireBatch_);
    w.putBool(streamDone_);
    w.endSection();
}

void
SimpleCore::restoreFrom(sim::CheckpointReader &r)
{
    r.beginSection("simple_core");
    missStall_ = r.getU64();
    instrs_ = r.getU64();
    lastBlock_ = r.getU64();
    retireBatch_ = r.getU64();
    streamDone_ = r.getBool();
    r.endSection();
}

// ---------------------------------------------------------------
// cpu/ooo_core
// ---------------------------------------------------------------

void
OooCore::snapshotTo(sim::CheckpointWriter &w) const
{
    const auto putRobEntry = [&w](const RobEntry &e) {
        putInstr(w, e.instr);
        w.putBool(e.pred.taken);
        w.putU64(e.pred.target);
        w.putBool(e.predMade);
        w.putBool(e.mispredict);
        w.putI64(e.prod1);
        w.putI64(e.prod2);
        w.putI64(e.depStore);
        w.putBool(e.issued);
        w.putU64(e.completeAt);
    };

    w.beginSection("ooo_core");
    w.putU64(now_);
    w.putU64(robBuf_.size());
    for (const RobEntry &e : robBuf_)
        putRobEntry(e);
    w.putI64(seqHead_);
    w.putI64(seqTail_);
    w.putU64(fetchQueue_.size());
    for (const FetchedInstr &f : fetchQueue_) {
        putInstr(w, f.instr);
        w.putBool(f.pred.taken);
        w.putU64(f.pred.target);
        w.putBool(f.predMade);
        w.putBool(f.mispredict);
    }
    w.putU64(fetchQueueHead_);
    for (const std::int64_t s : lastWriter_)
        w.putI64(s);
    w.putU64(lsqOccupancy_);
    w.putU64(storeSeqs_.size());
    for (const std::int64_t s : storeSeqs_)
        w.putI64(s);
    w.putBool(streamDone_);
    w.putU64(fetchResumeAt_);
    w.putBool(haltedForBranch_);
    w.putI64(stallBranchSeq_);
    w.putU64(branchStallFrom_);
    w.putU64(lastFetchBlock_);
    w.putBool(fetchStallIsIcache_);
    w.putBool(instrPending_);
    putInstr(w, pendingInstr_);
    w.putU64(lastCommitCycle_);
    w.putU64(commitsThisCycle_);
    bpred_.snapshotTo(w);
    group_.snapshotTo(w);
    w.endSection();
}

void
OooCore::restoreFrom(sim::CheckpointReader &r)
{
    const auto getRobEntry = [&r](RobEntry &e) {
        getInstr(r, e.instr);
        e.pred.taken = r.getBool();
        e.pred.target = r.getU64();
        e.predMade = r.getBool();
        e.mispredict = r.getBool();
        e.prod1 = r.getI64();
        e.prod2 = r.getI64();
        e.depStore = r.getI64();
        e.issued = r.getBool();
        e.completeAt = r.getU64();
    };

    r.beginSection("ooo_core");
    now_ = r.getU64();
    expectU64(r, robBuf_.size(), "rob size");
    for (RobEntry &e : robBuf_)
        getRobEntry(e);
    seqHead_ = r.getI64();
    seqTail_ = r.getI64();
    fetchQueue_.resize(r.getU64());
    for (FetchedInstr &f : fetchQueue_) {
        getInstr(r, f.instr);
        f.pred.taken = r.getBool();
        f.pred.target = r.getU64();
        f.predMade = r.getBool();
        f.mispredict = r.getBool();
    }
    fetchQueueHead_ = r.getU64();
    for (std::int64_t &s : lastWriter_)
        s = r.getI64();
    lsqOccupancy_ = static_cast<unsigned>(r.getU64());
    storeSeqs_.resize(r.getU64());
    for (std::int64_t &s : storeSeqs_)
        s = r.getI64();
    streamDone_ = r.getBool();
    fetchResumeAt_ = r.getU64();
    haltedForBranch_ = r.getBool();
    stallBranchSeq_ = r.getI64();
    branchStallFrom_ = r.getU64();
    lastFetchBlock_ = r.getU64();
    fetchStallIsIcache_ = r.getBool();
    instrPending_ = r.getBool();
    getInstr(r, pendingInstr_);
    lastCommitCycle_ = r.getU64();
    commitsThisCycle_ = static_cast<unsigned>(r.getU64());
    bpred_.restoreFrom(r);
    group_.restoreFrom(r);
    r.endSection();
}

// ---------------------------------------------------------------
// policy caches
// ---------------------------------------------------------------

void
PolicyCacheBase::snapshotTo(sim::CheckpointWriter &w) const
{
    w.beginSection("policy_cache");
    Cache::snapshotTo(w);
    w.putU64(instrsIntoInterval_);
    w.putU64(integratedCycles_);
    w.putF64(activeLineCycles_);
    w.putF64(drowsyLineCycles_);
    w.putU64(wakeTransitions_);
    w.putU64(wakeStallCycles_);
    w.putU64(coherenceWakes_);
    w.putU64(coherenceRefetches_);
    putByteVector(w, coherenceLost_);
    snapshotExtra(w);
    w.endSection();
}

void
PolicyCacheBase::restoreFrom(sim::CheckpointReader &r)
{
    r.beginSection("policy_cache");
    Cache::restoreFrom(r);
    instrsIntoInterval_ = r.getU64();
    integratedCycles_ = r.getU64();
    activeLineCycles_ = r.getF64();
    drowsyLineCycles_ = r.getF64();
    wakeTransitions_ = r.getU64();
    wakeStallCycles_ = r.getU64();
    coherenceWakes_ = r.getU64();
    coherenceRefetches_ = r.getU64();
    getByteVector(r, coherenceLost_, "policy coherence-lost bits");
    restoreExtra(r);
    r.endSection();
}

void
DecayCache::snapshotExtra(sim::CheckpointWriter &w) const
{
    w.putU64(counters_.size());
    for (const unsigned c : counters_)
        w.putU64(c);
    putByteVector(w, lit_);
    w.putU64(powered_);
    w.putU64(generations_);
    w.putU64(blocksLost_);
}

void
DecayCache::restoreExtra(sim::CheckpointReader &r)
{
    expectU64(r, counters_.size(), "decay counters");
    for (unsigned &c : counters_)
        c = static_cast<unsigned>(r.getU64());
    getByteVector(r, lit_, "decay lit bits");
    powered_ = r.getU64();
    generations_ = r.getU64();
    blocksLost_ = r.getU64();
}

void
DrowsyCache::snapshotExtra(sim::CheckpointWriter &w) const
{
    putByteVector(w, drowsy_);
    w.putU64(drowsyCount_);
    w.putU64(episodes_);
}

void
DrowsyCache::restoreExtra(sim::CheckpointReader &r)
{
    getByteVector(r, drowsy_, "drowsy bits");
    drowsyCount_ = r.getU64();
    episodes_ = r.getU64();
}

void
DriPolicy::snapshotTo(sim::CheckpointWriter &w) const
{
    icache_.snapshotTo(w);
}

void
DriPolicy::restoreFrom(sim::CheckpointReader &r)
{
    icache_.restoreFrom(r);
}

} // namespace drisim
