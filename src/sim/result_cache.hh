/**
 * @file
 * Content-addressed result memoization.
 *
 * A run's full semantic configuration is collected into a ConfigKey
 * (unordered k=v pairs), canonicalized by sorting, and hashed; cell
 * results are stored under the hash in a sidecar shared across
 * bench binaries, runs and *processes* — the same dedup idea as
 * programImageFor(), applied to results instead of images.
 *
 * The sidecar is newline-delimited JSON: one self-contained record
 * per line, appended with a single O_APPEND write per flush so any
 * number of concurrent writer processes (a sharded sweep farm,
 * tools/farm_runner) interleave whole records, never bytes. A torn
 * or corrupt line — a writer killed mid-append, a hand-edited file
 * — invalidates only itself: the loader skips it and keeps every
 * other record (two-process hammer locked by
 * tests/result_cache_test.cc). Later records win, which is
 * harmless: results are deterministic functions of the config.
 *
 * Values are stored as strings and compared/parsed exactly, so a
 * cached result is byte-identical to a recomputed one. The stored
 * record keeps the full canonical config string and lookup compares
 * it, so a hash collision (or hand-edited sidecar) is a miss, never
 * a wrong answer.
 */

#ifndef DRISIM_SIM_RESULT_CACHE_HH
#define DRISIM_SIM_RESULT_CACHE_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace drisim::sim
{

/**
 * Builder for a run's canonical configuration identity. Insertion
 * order is irrelevant: canonical() sorts by key, so semantically
 * identical configs hash equal however they were assembled.
 */
class ConfigKey
{
  public:
    ConfigKey &add(std::string_view key, std::string_view value);
    ConfigKey &add(std::string_view key, const char *value);
    ConfigKey &add(std::string_view key, std::uint64_t value);
    ConfigKey &add(std::string_view key, bool value);
    /** Doubles rendered with %.17g: exact round-trip. */
    ConfigKey &addDouble(std::string_view key, double value);

    /** Sorted "k=v;" concatenation — the hashed identity. */
    std::string canonical() const;

    /** FNV-1a of canonical() — the sweep-farm shard key. */
    std::uint64_t hash() const;

    /** 16-hex-digit rendering of hash(). */
    std::string hashHex() const;

  private:
    std::vector<std::pair<std::string, std::string>> pairs_;
};

/**
 * Persistent result memoization keyed by ConfigKey. Thread-safe
 * within a process; safe against concurrent writer processes on one
 * sidecar (append-only records, see file comment). Loaded lazily,
 * written back by flush() (also on destruction).
 */
class ResultCache
{
  public:
    /** Result payload: field name -> exact string value. */
    using Fields = std::map<std::string, std::string>;

    struct Counters
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t stores = 0;
    };

    /** @param path sidecar file (created on first flush). */
    explicit ResultCache(std::string path);
    ~ResultCache();

    ResultCache(const ResultCache &) = delete;
    ResultCache &operator=(const ResultCache &) = delete;

    /** @return true and fill @p out on a verified hit. */
    bool lookup(const ConfigKey &key, Fields &out);

    void store(const ConfigKey &key, const Fields &fields);

    /** Append records stored since the last flush to the sidecar
     *  (one O_APPEND write: concurrent flushing processes never
     *  tear each other's records). */
    void flush();

    /**
     * Re-read the sidecar, merging records appended by other
     * processes since this instance loaded (sweep_merge's
     * re-read-on-merge). Unflushed local stores are flushed first,
     * so nothing pending is lost.
     */
    void reload();

    /**
     * Merge-side accessor: the record stored under @p hashHex, if
     * any. Fills the full canonical config (for collision checks
     * against fragment rows) and the payload fields.
     */
    bool lookupHash(const std::string &hashHex, std::string &config,
                    Fields &fields);

    /** Number of loaded + stored records currently visible. */
    std::size_t size();

    Counters counters() const;

    const std::string &path() const { return path_; }

  private:
    struct Entry
    {
        std::string config; ///< full canonical string, verified
        Fields fields;
    };

    void ensureLoadedLocked();
    void loadSidecarLocked();
    std::string renderRecord(const std::string &hash,
                             const Entry &e) const;

    std::string path_;
    bool loaded_ = false;
    std::map<std::string, Entry> entries_; ///< by hash hex
    std::vector<std::string> pending_;     ///< hashes not yet flushed
    Counters counters_;
    mutable std::mutex mu_;
};

} // namespace drisim::sim

#endif // DRISIM_SIM_RESULT_CACHE_HH
