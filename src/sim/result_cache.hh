/**
 * @file
 * Content-addressed result memoization.
 *
 * A run's full semantic configuration is collected into a ConfigKey
 * (unordered k=v pairs), canonicalized by sorting, and hashed; cell
 * results are stored under the hash in a JSON sidecar shared across
 * bench binaries and across runs — the same dedup idea as
 * programImageFor(), applied to results instead of images.
 *
 * Values are stored as strings and compared/parsed exactly, so a
 * cached result is byte-identical to a recomputed one. The stored
 * entry keeps the full canonical config string and lookup compares
 * it, so a hash collision (or hand-edited sidecar) is a miss, never
 * a wrong answer. A sidecar that fails to parse is treated as empty:
 * recompute, never serve.
 */

#ifndef DRISIM_SIM_RESULT_CACHE_HH
#define DRISIM_SIM_RESULT_CACHE_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace drisim::sim
{

/**
 * Builder for a run's canonical configuration identity. Insertion
 * order is irrelevant: canonical() sorts by key, so semantically
 * identical configs hash equal however they were assembled.
 */
class ConfigKey
{
  public:
    ConfigKey &add(std::string_view key, std::string_view value);
    ConfigKey &add(std::string_view key, const char *value);
    ConfigKey &add(std::string_view key, std::uint64_t value);
    ConfigKey &add(std::string_view key, bool value);
    /** Doubles rendered with %.17g: exact round-trip. */
    ConfigKey &addDouble(std::string_view key, double value);

    /** Sorted "k=v;" concatenation — the hashed identity. */
    std::string canonical() const;

    /** 16-hex-digit FNV-1a of canonical(). */
    std::string hashHex() const;

  private:
    std::vector<std::pair<std::string, std::string>> pairs_;
};

/**
 * Persistent result memoization keyed by ConfigKey. Thread-safe;
 * loaded lazily, written back by flush() (also on destruction).
 */
class ResultCache
{
  public:
    /** Result payload: field name -> exact string value. */
    using Fields = std::map<std::string, std::string>;

    struct Counters
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;
        std::uint64_t stores = 0;
    };

    /** @param path JSON sidecar file (created on first flush). */
    explicit ResultCache(std::string path);
    ~ResultCache();

    ResultCache(const ResultCache &) = delete;
    ResultCache &operator=(const ResultCache &) = delete;

    /** @return true and fill @p out on a verified hit. */
    bool lookup(const ConfigKey &key, Fields &out);

    void store(const ConfigKey &key, const Fields &fields);

    /** Persist dirty entries to the sidecar. */
    void flush();

    Counters counters() const;

    const std::string &path() const { return path_; }

  private:
    struct Entry
    {
        std::string config; ///< full canonical string, verified
        Fields fields;
    };

    void ensureLoadedLocked();
    void loadSidecarLocked();

    std::string path_;
    bool loaded_ = false;
    bool dirty_ = false;
    std::map<std::string, Entry> entries_; ///< by hash hex
    Counters counters_;
    mutable std::mutex mu_;
};

} // namespace drisim::sim

#endif // DRISIM_SIM_RESULT_CACHE_HH
