/**
 * @file
 * Serializable-state interface for checkpoint/restore.
 *
 * Components expose snapshotTo(CheckpointWriter&) / restoreFrom
 * (CheckpointReader&) member functions built from the typed
 * primitives here. The encoding is type-tagged so a reader that
 * drifts out of sync with the writer fails loudly (CheckpointError)
 * instead of silently misinterpreting bytes, and sectioned so
 * component boundaries are verified by name.
 *
 * CheckpointStore persists blobs keyed by an arbitrary string: the
 * file embeds the full key and a format magic, both verified on
 * load, so a stale or foreign file is treated as a miss, never
 * deserialized.
 */

#ifndef DRISIM_SIM_CHECKPOINT_HH
#define DRISIM_SIM_CHECKPOINT_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

namespace drisim::sim
{

/** Thrown on any malformed or mismatching checkpoint stream. */
class CheckpointError : public std::runtime_error
{
  public:
    explicit CheckpointError(const std::string &what)
        : std::runtime_error("checkpoint: " + what)
    {}
};

/** Accumulates a type-tagged serialization of component state. */
class CheckpointWriter
{
  public:
    void putU64(std::uint64_t v);
    void putI64(std::int64_t v);
    /** Exact bit pattern — round-trips NaN and -0.0. */
    void putF64(double v);
    void putBool(bool v);
    void putString(std::string_view s);

    /** Open a named section (component boundary). */
    void beginSection(std::string_view name);
    void endSection();

    /** The serialized blob. Valid only when all sections closed. */
    const std::string &bytes() const;

  private:
    void raw64(std::uint64_t v);

    std::string buf_;
    unsigned depth_ = 0;
};

/**
 * Reads a blob produced by CheckpointWriter. Every accessor verifies
 * the type tag (and section name) before consuming; any mismatch or
 * premature end of stream throws CheckpointError.
 */
class CheckpointReader
{
  public:
    explicit CheckpointReader(std::string bytes);

    std::uint64_t getU64();
    std::int64_t getI64();
    double getF64();
    bool getBool();
    std::string getString();

    void beginSection(std::string_view name);
    void endSection();

    /** True when every byte has been consumed. */
    bool atEnd() const { return pos_ == buf_.size(); }

  private:
    char takeTag();
    void expectTag(char want);
    std::uint64_t raw64();
    std::string takeBytes(std::uint64_t n);

    std::string buf_;
    std::size_t pos_ = 0;
};

/** Process-wide checkpoint activity, for bench-side reporting. */
struct CheckpointCounters
{
    std::uint64_t saves = 0;
    std::uint64_t restores = 0;
};

CheckpointCounters checkpointCounters();

/**
 * Directory of checkpoint blobs addressed by string key. Files are
 * named by a hash of the key but store the full key; load() verifies
 * magic and key and reports a miss on any mismatch or corruption.
 */
class CheckpointStore
{
  public:
    /** Creates @p dir (and parents) if needed. */
    explicit CheckpointStore(std::string dir);

    /** @return true and fill @p blobOut on a verified hit. */
    bool load(const std::string &key, std::string &blobOut) const;

    /** Atomically (write-then-rename) persist @p blob under @p key. */
    void save(const std::string &key, const std::string &blob) const;

    const std::string &dir() const { return dir_; }

  private:
    std::string pathFor(const std::string &key) const;

    std::string dir_;
};

/** FNV-1a 64-bit over @p s. */
std::uint64_t fnv1a64(std::string_view s);

/** 16-digit lowercase hex of @p v. */
std::string toHex64(std::uint64_t v);

/** Inverse of toHex64 (lowercase hex, up to 16 digits); 0 on any
 *  non-hex input. */
std::uint64_t fromHex64(std::string_view s);

} // namespace drisim::sim

#endif // DRISIM_SIM_CHECKPOINT_HH
